module Fat_tree = Ppdc_topology.Fat_tree
module Random_topology = Ppdc_topology.Random_topology
module Cost_matrix = Ppdc_topology.Cost_matrix
module Workload = Ppdc_traffic.Workload
module Flow = Ppdc_traffic.Flow
module Rng = Ppdc_prelude.Rng
open Ppdc_core
open Ppdc_extensions

let k4_problem ~l ~n ~seed =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let rng = Rng.create seed in
  let flows = Workload.generate_on_fat_tree ~rng ~l ft in
  Problem.make ~cm ~flows ~n ()

(* --- capacity ---------------------------------------------------------- *)

let test_capacity_validate () =
  let problem = k4_problem ~l:4 ~n:4 ~seed:1 in
  Capacity.validate problem ~capacity:2 [| 0; 0; 1; 1 |];
  Alcotest.(check bool) "over capacity rejected" false
    (Capacity.is_valid problem ~capacity:2 [| 0; 0; 0; 1 |]);
  Alcotest.(check bool) "plain distinct ok at capacity 1" true
    (Capacity.is_valid problem ~capacity:1 [| 0; 1; 2; 3 |]);
  Alcotest.(check bool) "repeat rejected at capacity 1" false
    (Capacity.is_valid problem ~capacity:1 [| 0; 0; 1; 2 |])

let test_capacity_stacks_whole_chain () =
  let problem = k4_problem ~l:6 ~n:4 ~seed:2 in
  let rates = Flow.base_rates (Problem.flows problem) in
  let out = Capacity.solve problem ~rates ~capacity:4 in
  Alcotest.(check int) "one block" 1 out.blocks;
  let s = out.placement.(0) in
  Alcotest.(check bool) "all co-located" true
    (Array.for_all (( = ) s) out.placement);
  (* Stacking on one switch zeroes the chain-internal cost, so the cost
     is the best single-switch attach sum — the n=1 optimum. *)
  let n1 = Problem.with_n problem 1 in
  let best_single = Placement_opt.solve n1 ~rates () in
  Alcotest.(check (float 1e-6)) "equals the single-switch optimum"
    best_single.cost out.cost

let test_capacity_one_equals_plain_dp () =
  for seed = 1 to 4 do
    let problem = k4_problem ~l:8 ~n:4 ~seed in
    let rates = Flow.base_rates (Problem.flows problem) in
    let plain = Placement_dp.solve problem ~rates () in
    let capped = Capacity.solve problem ~rates ~capacity:1 in
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "capacity 1 = paper model (seed %d)" seed)
      plain.cost capped.cost
  done

let test_capacity_block_reduction_is_optimal () =
  (* The reduction theorem: optimal capacity-TOP equals optimal TOP on
     ceil(n/c) block switches, expanded. Certify against the direct
     capacity-aware exhaustive search. *)
  for seed = 1 to 3 do
    let problem = k4_problem ~l:5 ~n:4 ~seed in
    let rates = Flow.base_rates (Problem.flows problem) in
    List.iter
      (fun capacity ->
        let direct, proved =
          Capacity.solve_optimal problem ~rates ~capacity ()
        in
        Alcotest.(check bool) "search completed" true proved;
        let q = (4 + capacity - 1) / capacity in
        let reduced = Problem.with_n problem q in
        let blocks = Placement_opt.solve reduced ~rates () in
        Alcotest.(check bool) "reduced search completed" true
          blocks.proven_optimal;
        Alcotest.(check (float 1e-6))
          (Printf.sprintf "reduction exact (seed %d, c=%d)" seed capacity)
          blocks.cost direct.cost)
      [ 1; 2; 4 ]
  done

let test_capacity_monotone_in_capacity () =
  let problem = k4_problem ~l:8 ~n:4 ~seed:5 in
  let rates = Flow.base_rates (Problem.flows problem) in
  let cost c = (fst (Capacity.solve_optimal problem ~rates ~capacity:c ())).cost in
  let c1 = cost 1 and c2 = cost 2 and c4 = cost 4 in
  Alcotest.(check bool) "capacity 2 <= capacity 1" true (c2 <= c1 +. 1e-9);
  Alcotest.(check bool) "capacity 4 <= capacity 2" true (c4 <= c2 +. 1e-9)

(* --- multi-SFC ---------------------------------------------------------- *)

let two_chain_instance ~seed =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let rng = Rng.create seed in
  let flows = Workload.generate_on_fat_tree ~rng ~l:10 ft in
  let spec =
    {
      Multi_sfc.chains = [| Chain.typical 3; Chain.typical 4 |];
      assignment = Array.init 10 (fun i -> i mod 2);
    }
  in
  (Multi_sfc.make ~cm ~flows ~spec, flows)

let test_multi_sfc_make_validation () =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let rng = Rng.create 1 in
  let flows = Workload.generate_on_fat_tree ~rng ~l:4 ft in
  let reject name spec =
    Alcotest.(check bool) name true
      (try
         ignore (Multi_sfc.make ~cm ~flows ~spec);
         false
       with Invalid_argument _ -> true)
  in
  reject "assignment length"
    { Multi_sfc.chains = [| Chain.typical 2 |]; assignment = [| 0 |] };
  reject "chain index range"
    { Multi_sfc.chains = [| Chain.typical 2 |]; assignment = [| 0; 0; 0; 1 |] };
  reject "empty chain bucket"
    {
      Multi_sfc.chains = [| Chain.typical 2; Chain.typical 3 |];
      assignment = [| 0; 0; 0; 0 |];
    }

let test_multi_sfc_place_disjoint () =
  let t, flows = two_chain_instance ~seed:3 in
  let rates = Flow.base_rates flows in
  let out = Multi_sfc.place t ~rates in
  Multi_sfc.validate t out.placement;
  Alcotest.(check int) "chain 0 length" 3 (Array.length out.placement.(0));
  Alcotest.(check int) "chain 1 length" 4 (Array.length out.placement.(1));
  Alcotest.(check (float 1e-6)) "cost recomputes" out.cost
    (Multi_sfc.total_cost t ~rates out.placement)

let test_multi_sfc_single_chain_degenerates () =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let rng = Rng.create 4 in
  let flows = Workload.generate_on_fat_tree ~rng ~l:8 ft in
  let t =
    Multi_sfc.make ~cm ~flows
      ~spec:
        {
          Multi_sfc.chains = [| Chain.typical 4 |];
          assignment = Array.make 8 0;
        }
  in
  let rates = Flow.base_rates flows in
  let multi = Multi_sfc.place t ~rates in
  let plain =
    Placement_dp.solve (Problem.make ~cm ~flows ~n:4 ()) ~rates ()
  in
  Alcotest.(check (float 1e-6)) "one chain = plain TOP" plain.cost multi.cost

let test_multi_sfc_flows_partition () =
  let t, flows = two_chain_instance ~seed:5 in
  let c0 = Multi_sfc.flows_of_chain t 0 and c1 = Multi_sfc.flows_of_chain t 1 in
  Alcotest.(check int) "partition sizes" (Array.length flows)
    (Array.length c0 + Array.length c1);
  Array.iter
    (fun (f : Flow.t) ->
      Alcotest.(check int) "chain 0 flows are even ids" 0 (f.id mod 2))
    c0

let test_multi_sfc_migrate_improves () =
  let t, flows = two_chain_instance ~seed:6 in
  let rates0 = Flow.base_rates flows in
  let current = (Multi_sfc.place t ~rates:rates0).placement in
  let rng = Rng.create 99 in
  let rates = Workload.redraw_rates ~rng flows in
  let out, migration_cost, moves = Multi_sfc.migrate t ~rates ~mu:10.0 ~current in
  Multi_sfc.validate t out.placement;
  Alcotest.(check bool) "non-negative accounting" true
    (migration_cost >= 0.0 && moves >= 0);
  let stay = Multi_sfc.total_cost t ~rates current in
  Alcotest.(check bool) "migrate <= stay" true (out.cost <= stay +. 1e-6)

(* --- restricted problems (the mechanism multi-SFC relies on) ------------ *)

let test_restricted_problem () =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let rng = Rng.create 7 in
  let flows = Workload.generate_on_fat_tree ~rng ~l:6 ft in
  let candidates = [| 4; 5; 6; 7; 8 |] in
  let problem = Problem.make ~switch_candidates:candidates ~cm ~flows ~n:3 () in
  let rates = Flow.base_rates flows in
  let dp = Placement_dp.solve problem ~rates () in
  Array.iter
    (fun s ->
      Alcotest.(check bool) "placement stays inside candidates" true
        (Array.exists (( = ) s) candidates))
    dp.placement;
  let opt = Placement_opt.solve problem ~rates () in
  Array.iter
    (fun s ->
      Alcotest.(check bool) "optimal stays inside candidates" true
        (Array.exists (( = ) s) candidates))
    opt.placement;
  let rates' = Workload.redraw_rates ~rng flows in
  let mp = Mpareto.migrate problem ~rates:rates' ~mu:5.0 ~current:dp.placement () in
  Array.iter
    (fun s ->
      Alcotest.(check bool) "migration rests inside candidates" true
        (Array.exists (( = ) s) candidates))
    mp.migration

(* --- replication --------------------------------------------------------- *)

let test_replication_single_copy_equals_eq1 () =
  for seed = 1 to 4 do
    let problem = k4_problem ~l:8 ~n:4 ~seed in
    let rates = Flow.base_rates (Problem.flows problem) in
    let rng = Rng.create (seed * 7) in
    let p = Placement.random ~rng problem in
    let d = Replication.of_placement p in
    Replication.validate problem d;
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "single copies = Eq.1 (seed %d)" seed)
      (Cost.comm_cost problem ~rates p)
      (Replication.comm_cost problem ~rates d)
  done

let test_replication_viterbi_matches_bruteforce () =
  let problem = k4_problem ~l:2 ~n:3 ~seed:9 in
  let d =
    { Replication.replicas = [| [| 0; 4 |]; [| 1; 5 |]; [| 2 |] |] }
  in
  Replication.validate problem d;
  let flows = Problem.flows problem in
  Array.iter
    (fun (f : Flow.t) ->
      let c = Problem.cost problem in
      let brute = ref infinity in
      Array.iter
        (fun a ->
          Array.iter
            (fun b ->
              Array.iter
                (fun e ->
                  let route =
                    c f.src_host a +. c a b +. c b e +. c e f.dst_host
                  in
                  if route < !brute then brute := route)
                d.replicas.(2))
            d.replicas.(1))
        d.replicas.(0);
      Alcotest.(check (float 1e-9)) "viterbi = brute force" !brute
        (Replication.flow_route_cost problem d ~src:f.src_host ~dst:f.dst_host))
    flows

let test_replication_never_hurts () =
  for seed = 1 to 4 do
    let problem = k4_problem ~l:10 ~n:4 ~seed in
    let rates = Flow.base_rates (Problem.flows problem) in
    let base = Replication.place problem ~rates ~budget:0 in
    let replicated = Replication.place problem ~rates ~budget:4 in
    Replication.validate problem replicated.deployment;
    Alcotest.(check bool)
      (Printf.sprintf "budget 4 <= budget 0 (seed %d)" seed)
      true
      (replicated.cost <= base.cost +. 1e-6);
    Alcotest.(check bool) "added within budget" true (replicated.added <= 4)
  done

let test_replication_budget_zero_is_dp () =
  let problem = k4_problem ~l:8 ~n:4 ~seed:11 in
  let rates = Flow.base_rates (Problem.flows problem) in
  let base = Replication.place problem ~rates ~budget:0 in
  let dp = Placement_dp.solve problem ~rates () in
  Alcotest.(check (float 1e-6)) "budget 0 = Algo 3" dp.cost base.cost;
  Alcotest.(check int) "n copies" (Problem.n problem)
    (Replication.total_replicas base.deployment)

let test_replication_rejects_conflicts () =
  let problem = k4_problem ~l:4 ~n:2 ~seed:12 in
  let reject name replicas =
    Alcotest.(check bool) name true
      (try
         Replication.validate problem { Replication.replicas };
         false
       with Invalid_argument _ -> true)
  in
  reject "shared switch across VNFs" [| [| 0 |]; [| 0 |] |];
  reject "duplicate copy" [| [| 0; 0 |]; [| 1 |] |];
  reject "empty replica set" [| [| 0 |]; [||] |];
  reject "wrong arity" [| [| 0 |] |]

(* --- simulated annealing -------------------------------------------------- *)

let test_anneal_between_optimal_and_random () =
  for seed = 1 to 3 do
    let problem = k4_problem ~l:10 ~n:4 ~seed in
    let rates = Flow.base_rates (Problem.flows problem) in
    let rng = Rng.create (seed * 1000) in
    let annealed = Placement_anneal.solve ~rng problem ~rates in
    Placement.validate problem annealed.placement;
    let opt = Placement_opt.solve problem ~rates () in
    Alcotest.(check bool)
      (Printf.sprintf "anneal >= optimal (seed %d)" seed)
      true
      (annealed.cost >= opt.cost -. 1e-6);
    Alcotest.(check (float 1e-6)) "reported cost recomputes"
      (Cost.comm_cost problem ~rates annealed.placement)
      annealed.cost;
    (* With 20k proposals on a 20-switch fabric the anneal should land
       within 20% of optimal. *)
    Alcotest.(check bool)
      (Printf.sprintf "anneal within 1.2x optimal (seed %d)" seed)
      true
      (annealed.cost <= 1.2 *. opt.cost)
  done

let test_anneal_deterministic () =
  let problem = k4_problem ~l:8 ~n:3 ~seed:4 in
  let rates = Flow.base_rates (Problem.flows problem) in
  let run () = (Placement_anneal.solve ~rng:(Rng.create 5) problem ~rates).cost in
  Alcotest.(check (float 0.0)) "same rng seed, same anneal" (run ()) (run ())

let test_capacity_one_matches_placement_validate () =
  let problem = k4_problem ~l:4 ~n:3 ~seed:20 in
  let rng = Rng.create 21 in
  for _ = 1 to 20 do
    let p = Placement.random ~rng problem in
    Alcotest.(check bool) "capacity-1 validity = plain validity"
      (Placement.is_valid problem p)
      (Capacity.is_valid problem ~capacity:1 p)
  done

let test_replication_respects_candidates () =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let rng = Rng.create 22 in
  let flows = Workload.generate_on_fat_tree ~rng ~l:8 ft in
  let candidates = [| 0; 1; 2; 3; 4; 5; 6; 7 |] in
  let problem =
    Problem.make ~switch_candidates:candidates ~cm ~flows ~n:3 ()
  in
  let rates = Flow.base_rates flows in
  let out = Replication.place problem ~rates ~budget:3 in
  Replication.validate problem out.deployment;
  Array.iter
    (Array.iter (fun s ->
         Alcotest.(check bool) "replica inside candidates" true
           (Array.exists (( = ) s) candidates)))
    out.deployment.replicas

let test_multi_sfc_exclusion_under_migration () =
  (* After per-chain migration, chains must still be pairwise disjoint
     even when their targets would prefer the same hot switches. *)
  for seed = 1 to 4 do
    let t, flows = two_chain_instance ~seed in
    let rates0 = Flow.base_rates flows in
    let current = (Multi_sfc.place t ~rates:rates0).placement in
    let rng = Rng.create (seed * 5) in
    let rates = Workload.redraw_rates ~rng flows in
    let out, _, _ = Multi_sfc.migrate t ~rates ~mu:0.0 ~current in
    (* mu = 0 maximizes movement; validate still must pass. *)
    Multi_sfc.validate t out.placement
  done

(* --- link failures ---------------------------------------------------------- *)

let test_failures_preserve_connectivity () =
  for seed = 1 to 5 do
    let ft = Fat_tree.build 4 in
    let rng = Rng.create seed in
    let degraded, failed =
      Failures.fail_links ~rng ~fraction:0.3 ft.graph
    in
    Alcotest.(check bool) "some links failed" true (List.length failed > 0);
    (* compute raises on disconnection *)
    ignore (Cost_matrix.compute degraded);
    List.iter
      (fun (u, v) ->
        Alcotest.(check bool) "failed links are switch-switch" true
          (Ppdc_topology.Graph.is_switch ft.graph u
          && Ppdc_topology.Graph.is_switch ft.graph v))
      failed
  done

let test_failures_fraction_zero () =
  let ft = Fat_tree.build 4 in
  let rng = Rng.create 1 in
  let degraded, failed = Failures.fail_links ~rng ~fraction:0.0 ft.graph in
  Alcotest.(check int) "nothing failed" 0 (List.length failed);
  Alcotest.(check int) "same edge count"
    (Ppdc_topology.Graph.num_edges ft.graph)
    (Ppdc_topology.Graph.num_edges degraded)

let test_failures_floor_semantics () =
  (* A k=4 fat-tree has 32 switch-switch links. The budget is the
     floor, not the rounding: 0.049 · 32 = 1.568 buys exactly 1 link,
     and 0.03 · 32 = 0.96 buys none. *)
  let ft = Fat_tree.build 4 in
  let switch_links =
    List.filter
      (fun (u, v, _) ->
        Ppdc_topology.Graph.is_switch ft.graph u
        && Ppdc_topology.Graph.is_switch ft.graph v)
      (Ppdc_topology.Graph.edges ft.graph)
  in
  Alcotest.(check int) "k=4 switch links" 32 (List.length switch_links);
  let _, failed =
    Failures.fail_links ~rng:(Rng.create 1) ~fraction:0.049 ft.graph
  in
  Alcotest.(check int) "0.049 buys exactly one link" 1 (List.length failed);
  let degraded, failed =
    Failures.fail_links ~rng:(Rng.create 1) ~fraction:0.03 ft.graph
  in
  Alcotest.(check int) "0.03 buys nothing" 0 (List.length failed);
  (* A zero budget returns the input graph itself — same digest, so
     the server's cache key does not churn. *)
  Alcotest.(check bool) "zero budget returns the graph unchanged" true
    (degraded == ft.graph)

let test_failures_no_switch_links () =
  (* A single switch with hosts has no switch-switch links at all: any
     fraction is a no-op and the graph comes back unchanged. *)
  let g =
    Ppdc_topology.Graph.(
      make
        ~kinds:[| Switch; Host; Host |]
        ~edges:[ (0, 1, 1.0); (0, 2, 1.0) ])
  in
  let degraded, failed = Failures.fail_links ~rng:(Rng.create 3) ~fraction:1.0 g in
  Alcotest.(check int) "nothing to fail" 0 (List.length failed);
  Alcotest.(check bool) "graph unchanged" true (degraded == g)

let test_failures_rejects_bad_fraction () =
  let ft = Fat_tree.build 4 in
  let reject fraction =
    try
      ignore (Failures.fail_links ~rng:(Rng.create 1) ~fraction ft.graph);
      Alcotest.failf "fraction %f accepted" fraction
    with Invalid_argument _ -> ()
  in
  reject (-0.1);
  reject 1.5;
  reject Float.nan;
  reject Float.infinity

let prop_failures_sound =
  QCheck.Test.make
    ~name:"degraded stays connected; failures switch-switch, within budget"
    ~count:60
    QCheck.(pair (int_bound 10_000) (float_range 0.0 1.0))
    (fun (seed, fraction) ->
      let rng = Rng.create (seed + 1) in
      let rt =
        Random_topology.build ~rng
          ~num_switches:(2 + Rng.int rng 10)
          ~extra_edges:(Rng.int rng 12)
          ~hosts_per_switch:(1 + Rng.int rng 2)
          ()
      in
      let g = rt.graph in
      let switch_links =
        List.length
          (List.filter
             (fun (u, v, _) ->
               Ppdc_topology.Graph.is_switch g u
               && Ppdc_topology.Graph.is_switch g v)
             (Ppdc_topology.Graph.edges g))
      in
      let budget =
        int_of_float (fraction *. float_of_int switch_links)
      in
      let degraded, failed = Failures.fail_links ~rng ~fraction g in
      (* compute raises on a disconnected graph *)
      ignore (Cost_matrix.compute degraded);
      List.length failed <= budget
      && List.for_all
           (fun (u, v) ->
             Ppdc_topology.Graph.is_switch g u
             && Ppdc_topology.Graph.is_switch g v)
           failed
      && (budget > 0 || degraded == g))

let test_failures_impact_matches_cold_pipeline () =
  (* impact now repairs the matrix incrementally; with the same RNG
     seed it must report exactly what the old cold-recompute pipeline
     did. *)
  let problem = k4_problem ~l:10 ~n:4 ~seed:6 in
  let rates = Flow.base_rates (Problem.flows problem) in
  let placement = (Placement_dp.solve problem ~rates ()).placement in
  let out =
    Failures.impact ~rng:(Rng.create 8) ~fraction:0.25 ~mu:100.0 problem
      ~rates ~placement
  in
  let degraded_graph, failed =
    Failures.fail_links ~rng:(Rng.create 8) ~fraction:0.25
      (Problem.graph problem)
  in
  Alcotest.(check (list (pair int int))) "same failures" failed out.failed;
  let cold =
    Problem.make
      ~cm:(Cost_matrix.compute degraded_graph)
      ~flows:(Problem.flows problem) ~n:(Problem.n problem) ()
  in
  let cost_after = Cost.comm_cost cold ~rates placement in
  let response = Mpareto.migrate cold ~rates ~mu:100.0 ~current:placement () in
  Alcotest.(check (float 0.0)) "bit-equal degraded cost" cost_after
    out.cost_after;
  Alcotest.(check (float 0.0)) "bit-equal migrated cost" response.total_cost
    out.cost_migrated;
  Alcotest.(check int) "same moves" response.moved out.moved

let test_failures_impact_story () =
  let problem = k4_problem ~l:10 ~n:4 ~seed:6 in
  let rates = Flow.base_rates (Problem.flows problem) in
  let placement = (Placement_dp.solve problem ~rates ()).placement in
  let rng = Rng.create 8 in
  let out =
    Failures.impact ~rng ~fraction:0.25 ~mu:100.0 problem ~rates ~placement
  in
  (* Rerouting around failures can only lengthen paths... *)
  Alcotest.(check bool) "degradation raises cost" true
    (out.cost_after >= out.cost_before -. 1e-6);
  (* ...and the migration response never loses to staying put. *)
  Alcotest.(check bool) "migration response helps or stays" true
    (out.cost_migrated <= out.cost_after +. 1e-6)

let () =
  Alcotest.run "ppdc_extensions"
    [
      ( "capacity",
        [
          Alcotest.test_case "capacity-aware validation" `Quick
            test_capacity_validate;
          Alcotest.test_case "capacity >= n stacks the chain" `Quick
            test_capacity_stacks_whole_chain;
          Alcotest.test_case "capacity 1 = paper model" `Quick
            test_capacity_one_equals_plain_dp;
          Alcotest.test_case "block reduction is exact" `Quick
            test_capacity_block_reduction_is_optimal;
          Alcotest.test_case "cost monotone in capacity" `Quick
            test_capacity_monotone_in_capacity;
        ] );
      ( "multi-sfc",
        [
          Alcotest.test_case "construction validation" `Quick
            test_multi_sfc_make_validation;
          Alcotest.test_case "placements are chain-disjoint" `Quick
            test_multi_sfc_place_disjoint;
          Alcotest.test_case "single chain degenerates to TOP" `Quick
            test_multi_sfc_single_chain_degenerates;
          Alcotest.test_case "flows partition by chain" `Quick
            test_multi_sfc_flows_partition;
          Alcotest.test_case "migration never hurts" `Quick
            test_multi_sfc_migrate_improves;
        ] );
      ( "restricted-problems",
        [
          Alcotest.test_case "all algorithms respect candidate switches"
            `Quick test_restricted_problem;
        ] );
      ( "annealing",
        [
          Alcotest.test_case "lands between optimal and random" `Quick
            test_anneal_between_optimal_and_random;
          Alcotest.test_case "deterministic from seed" `Quick
            test_anneal_deterministic;
        ] );
      ( "restricted-interactions",
        [
          Alcotest.test_case "capacity-1 equals plain validity" `Quick
            test_capacity_one_matches_placement_validate;
          Alcotest.test_case "replication respects candidates" `Quick
            test_replication_respects_candidates;
          Alcotest.test_case "multi-SFC disjoint after mu=0 migration" `Quick
            test_multi_sfc_exclusion_under_migration;
        ] );
      ( "failures",
        [
          Alcotest.test_case "connectivity preserved" `Quick
            test_failures_preserve_connectivity;
          Alcotest.test_case "fraction 0 is a no-op" `Quick
            test_failures_fraction_zero;
          Alcotest.test_case "budget is the floor" `Quick
            test_failures_floor_semantics;
          Alcotest.test_case "no switch-switch links is a no-op" `Quick
            test_failures_no_switch_links;
          Alcotest.test_case "bad fractions rejected" `Quick
            test_failures_rejects_bad_fraction;
          QCheck_alcotest.to_alcotest prop_failures_sound;
          Alcotest.test_case "impact = cold-recompute pipeline" `Quick
            test_failures_impact_matches_cold_pipeline;
          Alcotest.test_case "degrade-and-respond story" `Quick
            test_failures_impact_story;
        ] );
      ( "replication",
        [
          Alcotest.test_case "single copy equals Eq. 1" `Quick
            test_replication_single_copy_equals_eq1;
          Alcotest.test_case "viterbi equals brute force" `Quick
            test_replication_viterbi_matches_bruteforce;
          Alcotest.test_case "replication never hurts" `Quick
            test_replication_never_hurts;
          Alcotest.test_case "budget 0 is Algo 3" `Quick
            test_replication_budget_zero_is_dp;
          Alcotest.test_case "conflicting deployments rejected" `Quick
            test_replication_rejects_conflicts;
        ] );
    ]
