(* Differential suite for dynamic APSP repair (Cost_matrix.repair_to /
   delete_edge / increase_weight / decrease_weight / restore_edge).

   The oracle is the full recompute: after any sequence of edge
   deletions, weight increases, decreases, and edge restores, the
   repaired matrix must be bit-identical — dist by IEEE bit pattern,
   pred exactly — to a cold [Cost_matrix.compute] on the current
   graph, for both engines. The repair's whole claim is that
   unaffected rows need no work — trees that avoided a
   deleted/increased edge, sources for which a relaxed edge is not
   competitive; these tests are what keeps that claim honest. *)

module Graph = Ppdc_topology.Graph
module Shortest_paths = Ppdc_topology.Shortest_paths
module Cost_matrix = Ppdc_topology.Cost_matrix
module Fat_tree = Ppdc_topology.Fat_tree
module Random_topology = Ppdc_topology.Random_topology
module Failures = Ppdc_extensions.Failures
module Rng = Ppdc_prelude.Rng
module Parallel = Ppdc_prelude.Parallel

let with_domains d f =
  let prev = Parallel.domain_count () in
  Parallel.set_domains d;
  Fun.protect ~finally:(fun () -> Parallel.set_domains prev) f

(* --- helpers ----------------------------------------------------------- *)

let matrices_bit_equal a b =
  let n = Cost_matrix.num_nodes a in
  if Cost_matrix.num_nodes b <> n then false
  else begin
    let da = Cost_matrix.costs a and db = Cost_matrix.costs b in
    let ok = ref true in
    for i = 0 to (n * n) - 1 do
      if Int64.bits_of_float da.{i} <> Int64.bits_of_float db.{i} then
        ok := false
    done;
    (* pred is not exported raw; extracted paths are a faithful witness
       of the whole predecessor tree (every node's parent appears on
       some path), and [path] walks pred directly. *)
    for src = 0 to n - 1 do
      for dst = 0 to n - 1 do
        if Cost_matrix.path a ~src ~dst <> Cost_matrix.path b ~src ~dst then
          ok := false
      done
    done;
    !ok
  end

let kinds_of g = Array.init (Graph.num_nodes g) (Graph.kind g)

let connected_without_edge g (u, v) =
  let uf = Ppdc_prelude.Union_find.create (Graph.num_nodes g) in
  List.iter
    (fun (a, b, _) ->
      if not ((a = u && b = v) || (a = v && b = u)) then
        ignore (Ppdc_prelude.Union_find.union uf a b))
    (Graph.edges g);
  Ppdc_prelude.Union_find.count_sets uf = 1

let random_graph seed =
  let rng = Rng.create seed in
  let weighted = Rng.int rng 2 = 0 in
  let rt =
    Random_topology.build
      ?weight:
        (if weighted then Some (fun () -> Rng.uniform rng ~lo:0.25 ~hi:4.0)
         else None)
      ~rng
      ~num_switches:(3 + Rng.int rng 8)
      ~extra_edges:(Rng.int rng 10)
      ~hosts_per_switch:(1 + Rng.int rng 3)
      ()
  in
  rt.graph

(* --- the qcheck differential property ---------------------------------- *)

(* Random graph, then a random sequence of deletions, weight
   increases, weight decreases, and delete-then-restore pairs; at
   every step the repaired matrix must be bit-equal to a cold compute
   on the mutated graph. Deletions that would disconnect the graph are
   skipped (repair would — correctly — raise, as compute does; that
   contract has its own test below). *)
let prop_repair_matches_cold_compute =
  QCheck.Test.make ~name:"repaired matrix = cold compute (bit-exact)"
    ~count:40
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create (seed + 7919) in
      let g = ref (random_graph seed) in
      let cm = ref (Cost_matrix.compute !g) in
      let steps = 2 + Rng.int rng 4 in
      let ok = ref true in
      let apply next =
        g := Cost_matrix.graph next;
        cm := next;
        if not (matrices_bit_equal !cm (Cost_matrix.compute !g)) then
          ok := false
      in
      for _ = 1 to steps do
        let edges = Array.of_list (Graph.edges !g) in
        let u, v, w = edges.(Rng.int rng (Array.length edges)) in
        match Rng.int rng 4 with
        | 0 when connected_without_edge !g (u, v) ->
            apply (Cost_matrix.delete_edge !cm ~u ~v)
        | 1 ->
            let weight = w *. (1.0 +. Rng.uniform rng ~lo:0.1 ~hi:1.5) in
            apply (Cost_matrix.increase_weight !cm ~u ~v ~weight)
        | 2 ->
            let weight = w *. Rng.uniform rng ~lo:0.2 ~hi:0.9 in
            apply (Cost_matrix.decrease_weight !cm ~u ~v ~weight)
        | _ when connected_without_edge !g (u, v) ->
            (* Fail the link, then bring it back at a (possibly new)
               weight: the Link_failure/Link_repair path the event
               simulator drives. *)
            apply (Cost_matrix.delete_edge !cm ~u ~v);
            let weight =
              if Rng.int rng 2 = 0 then w
              else w *. Rng.uniform rng ~lo:0.5 ~hi:2.0
            in
            apply (Cost_matrix.restore_edge !cm ~u ~v ~weight)
        | _ -> ()
      done;
      !ok)

(* Mixed deltas through the one-shot [repair_to] entry point: diff a
   graph against a derivative with simultaneous deletions, increases,
   decreases, and an added edge. *)
let prop_repair_to_mixed_deltas =
  QCheck.Test.make ~name:"repair_to localizes mixed deltas (bit-exact)"
    ~count:40
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create (seed + 4241) in
      let g = random_graph seed in
      let cm = Cost_matrix.compute g in
      (* Mutate the edge list wholesale: reweight ~a third of the edges
         in either direction, drop one droppable edge, and add a
         switch-switch edge where none exists. *)
      let edges = Graph.edges g in
      let reweighted =
        List.map
          (fun (u, v, w) ->
            match Rng.int rng 3 with
            | 0 -> (u, v, w *. Rng.uniform rng ~lo:0.3 ~hi:0.95)
            | 1 -> (u, v, w *. Rng.uniform rng ~lo:1.05 ~hi:2.0)
            | _ -> (u, v, w))
          edges
      in
      let dropped =
        match
          List.find_opt (fun (u, v, _) -> connected_without_edge g (u, v)) edges
        with
        | Some (u, v, _) ->
            List.filter (fun (a, b, _) -> not (a = u && b = v)) reweighted
        | None -> reweighted
      in
      let sw = Graph.switches g in
      let extra =
        let pair = ref None in
        Array.iter
          (fun a ->
            Array.iter
              (fun b ->
                if !pair = None && a < b && Graph.edge_weight g a b = None then
                  pair := Some (a, b))
              sw)
          sw;
        !pair
      in
      let final_edges =
        match extra with
        | Some (a, b) -> (a, b, Rng.uniform rng ~lo:0.5 ~hi:2.0) :: dropped
        | None -> dropped
      in
      let g' = Graph.make ~kinds:(kinds_of g) ~edges:final_edges in
      match Cost_matrix.repair_to cm g' with
      | None -> QCheck.Test.fail_report "repair_to refused an edge-level delta"
      | Some (repaired, _) ->
          matrices_bit_equal repaired (Cost_matrix.compute g'))

(* Same property through the [repair_to] entry point (the server's
   path): degrade with Failures.fail_links — several links at once —
   and repair from the healthy parent in one call. *)
let prop_repair_to_matches_fail_links =
  QCheck.Test.make ~name:"repair_to over fail_links = cold compute"
    ~count:40
    QCheck.(int_bound 100_000)
    (fun seed ->
      let g = random_graph seed in
      let cm = Cost_matrix.compute g in
      let degraded, failed =
        Failures.fail_links ~rng:(Rng.create (seed + 13)) ~fraction:0.3 g
      in
      match Cost_matrix.repair_to cm degraded with
      | None -> QCheck.Test.fail_report "repair_to refused a pure deletion"
      | Some (repaired, rows) ->
          if failed = [] && rows <> 0 then
            QCheck.Test.fail_report "no failures but rows re-ran";
          matrices_bit_equal repaired (Cost_matrix.compute degraded))

let prop_repair_engine_parity =
  QCheck.Test.make ~name:"repair rows agree across heap/dial engines"
    ~count:25
    QCheck.(int_bound 100_000)
    (fun seed ->
      (* Unit weights so both engines are available. *)
      let rng = Rng.create seed in
      let rt =
        Random_topology.build ~rng
          ~num_switches:(3 + Rng.int rng 8)
          ~extra_edges:(2 + Rng.int rng 8)
          ~hosts_per_switch:(1 + Rng.int rng 2)
          ()
      in
      let g = rt.graph in
      let degraded, _ =
        Failures.fail_links ~rng:(Rng.create (seed + 29)) ~fraction:0.25 g
      in
      let repair algo =
        match
          Cost_matrix.repair_to ~algo (Cost_matrix.compute ~algo g) degraded
        with
        | Some (cm, _) -> cm
        | None -> QCheck.Test.fail_report "repair_to refused a pure deletion"
      in
      matrices_bit_equal
        (repair Shortest_paths.Heap)
        (repair Shortest_paths.Dial))

(* --- unit tests -------------------------------------------------------- *)

let test_fat_tree_single_link_locality () =
  (* One failed link on a fat-tree must not re-run every row: the
     point of the affected-source characterization is locality. *)
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let degraded, failed =
    (* fraction chosen so ⌊fraction · 32 switch links⌋ = 1 *)
    Failures.fail_links ~rng:(Rng.create 5) ~fraction:0.04 ft.graph
  in
  Alcotest.(check int) "exactly one link failed" 1 (List.length failed);
  match Cost_matrix.repair_to cm degraded with
  | None -> Alcotest.fail "repair_to refused a single deletion"
  | Some (repaired, rows) ->
      let n = Cost_matrix.num_nodes cm in
      Alcotest.(check bool) "some rows repaired" true (rows > 0);
      Alcotest.(check bool)
        (Printf.sprintf "locality: %d of %d rows re-ran" rows n)
        true
        (rows < n);
      Alcotest.(check bool) "bit-equal to cold compute" true
        (matrices_bit_equal repaired (Cost_matrix.compute degraded))

let test_repair_shares_storage_when_identical () =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  (* Same structure rebuilt from scratch: zero changes, zero rows. *)
  let clone = Graph.make ~kinds:(kinds_of ft.graph) ~edges:(Graph.edges ft.graph) in
  match Cost_matrix.repair_to cm clone with
  | Some (cm', 0) ->
      Alcotest.(check bool) "dist storage shared" true
        (Cost_matrix.costs cm' == Cost_matrix.costs cm)
  | Some (_, rows) -> Alcotest.failf "identical graph re-ran %d rows" rows
  | None -> Alcotest.fail "identical graph judged incompatible"

let test_repair_handles_relaxing_deltas () =
  (* Edge additions and weight decreases used to be refused (ROADMAP
     item 1); they are now repaired in place via the Relax
     localization. Only a structurally different fabric is refused. *)
  let ft = Fat_tree.build 4 in
  let g = ft.graph in
  let cm = Cost_matrix.compute g in
  let kinds = kinds_of g in
  let edges = Graph.edges g in
  (* An added edge: pick two switches with no edge between them. *)
  let sw = Graph.switches g in
  let extra =
    let pair = ref None in
    Array.iter
      (fun a ->
        Array.iter
          (fun b ->
            if !pair = None && a < b && Graph.edge_weight g a b = None then
              pair := Some (a, b))
          sw)
      sw;
    Option.get !pair
  in
  let added =
    Graph.make ~kinds ~edges:((fst extra, snd extra, 1.0) :: edges)
  in
  (match Cost_matrix.repair_to cm added with
  | None -> Alcotest.fail "edge addition refused"
  | Some (repaired, _) ->
      Alcotest.(check bool) "edge addition repaired bit-exactly" true
        (matrices_bit_equal repaired (Cost_matrix.compute added)));
  (* A weight decrease. *)
  let u0, v0, w0 = List.hd edges in
  let decreased =
    Graph.make ~kinds
      ~edges:
        ((u0, v0, w0 /. 2.0)
        :: List.filter (fun (a, b, _) -> not (a = u0 && b = v0)) edges)
  in
  (match Cost_matrix.repair_to cm decreased with
  | None -> Alcotest.fail "weight decrease refused"
  | Some (repaired, _) ->
      Alcotest.(check bool) "weight decrease repaired bit-exactly" true
        (matrices_bit_equal repaired (Cost_matrix.compute decreased)));
  (* A different fabric entirely is still refused. *)
  let other = Fat_tree.build 2 in
  Alcotest.(check bool) "node-count mismatch refused" true
    (Cost_matrix.repair_to cm other.graph = None)

let test_decrease_weight_contracts () =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let u, v, w = List.hd (Graph.edges ft.graph) in
  (try
     ignore (Cost_matrix.decrease_weight cm ~u ~v ~weight:(w *. 2.0));
     Alcotest.fail "increase not rejected"
   with Invalid_argument _ -> ());
  (try
     ignore (Cost_matrix.decrease_weight cm ~u ~v ~weight:0.0);
     Alcotest.fail "zero weight not rejected"
   with Invalid_argument _ -> ());
  Alcotest.check_raises "missing edge"
    (Invalid_argument "Cost_matrix.decrease_weight: no such edge") (fun () ->
      ignore (Cost_matrix.decrease_weight cm ~u:0 ~v:1 ~weight:0.5));
  (* Equal weight: nothing to repair, storage shared. *)
  let same = Cost_matrix.decrease_weight cm ~u ~v ~weight:w in
  Alcotest.(check bool) "equal weight shares storage" true
    (Cost_matrix.costs same == Cost_matrix.costs cm);
  (* Order of endpoints must not matter. *)
  let a = Cost_matrix.decrease_weight cm ~u ~v ~weight:(w /. 2.0) in
  let b = Cost_matrix.decrease_weight cm ~u:v ~v:u ~weight:(w /. 2.0) in
  Alcotest.(check bool) "endpoint order irrelevant" true
    (matrices_bit_equal a b);
  Alcotest.(check bool) "bit-equal to cold compute" true
    (matrices_bit_equal a (Cost_matrix.compute (Cost_matrix.graph a)))

let test_restore_edge_contracts () =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let u, v, w = List.hd (Graph.edges ft.graph) in
  (* Restoring a present edge is an error — that is decrease/increase
     territory. *)
  Alcotest.check_raises "edge already present"
    (Invalid_argument "Cost_matrix.restore_edge: edge already present")
    (fun () -> ignore (Cost_matrix.restore_edge cm ~u ~v ~weight:w));
  (try
     ignore (Cost_matrix.restore_edge cm ~u:0 ~v:1 ~weight:Float.nan);
     Alcotest.fail "NaN weight not rejected"
   with Invalid_argument _ -> ());
  (* Delete then restore at the original weight: bit-identical to the
     matrix we started from (the repair truly undoes the failure). *)
  let deleted = Cost_matrix.delete_edge cm ~u ~v in
  let restored = Cost_matrix.restore_edge deleted ~u ~v ~weight:w in
  Alcotest.(check bool) "delete;restore round-trips bit-exactly" true
    (matrices_bit_equal restored cm);
  (* And the repair is local: restoring the link at a weight longer
     than any distance gap makes it competitive for no source at all —
     the endpoint-distance test must skip every row. (At the original
     unit weight nearly every source sees an equal-cost candidate, so
     a unit fat-tree is the wrong fabric for a row-count bound.) *)
  let relaxed =
    Graph.make
      ~kinds:(kinds_of (Cost_matrix.graph deleted))
      ~edges:
        ((min u v, max u v, 64.0) :: Graph.edges (Cost_matrix.graph deleted))
  in
  match Cost_matrix.repair_to deleted relaxed with
  | None -> Alcotest.fail "long restore refused"
  | Some (long, rows) ->
      Alcotest.(check int) "irrelevant restore re-runs no rows" 0 rows;
      Alcotest.(check bool) "bit-equal to cold compute" true
        (matrices_bit_equal long (Cost_matrix.compute relaxed))

let test_delete_edge_contracts () =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  Alcotest.check_raises "missing edge"
    (Invalid_argument "Cost_matrix.delete_edge: no such edge") (fun () ->
      ignore (Cost_matrix.delete_edge cm ~u:0 ~v:1));
  (* Deleting a host's only uplink disconnects it: repair must refuse
     like compute does. *)
  let host = (Graph.hosts ft.graph).(0) in
  let uplink =
    match Graph.neighbors ft.graph host with
    | (sw, _) :: _ -> sw
    | [] -> Alcotest.fail "host without uplink"
  in
  (try
     ignore (Cost_matrix.delete_edge cm ~u:host ~v:uplink);
     Alcotest.fail "disconnecting deletion not rejected"
   with Invalid_argument _ -> ())

let test_increase_weight_contracts () =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let u, v, w = List.hd (Graph.edges ft.graph) in
  (try
     ignore (Cost_matrix.increase_weight cm ~u ~v ~weight:(w /. 2.0));
     Alcotest.fail "decrease not rejected"
   with Invalid_argument _ -> ());
  (* Equal weight: nothing to repair, storage shared. *)
  let same = Cost_matrix.increase_weight cm ~u ~v ~weight:w in
  Alcotest.(check bool) "equal weight shares storage" true
    (Cost_matrix.costs same == Cost_matrix.costs cm);
  (* Order of endpoints must not matter. *)
  let a = Cost_matrix.increase_weight cm ~u ~v ~weight:(w +. 2.0) in
  let b = Cost_matrix.increase_weight cm ~u:v ~v:u ~weight:(w +. 2.0) in
  Alcotest.(check bool) "endpoint order irrelevant" true
    (matrices_bit_equal a b)

let test_parent_matrix_untouched () =
  (* The parent may still be cached under its own digest: repair must
     never mutate it. *)
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let n = Cost_matrix.num_nodes cm in
  let before = Array.init (n * n) (fun i -> (Cost_matrix.costs cm).{i}) in
  let degraded, _ =
    Failures.fail_links ~rng:(Rng.create 5) ~fraction:0.04 ft.graph
  in
  (match Cost_matrix.repair_to cm degraded with
  | Some (_, rows) -> Alcotest.(check bool) "repaired" true (rows > 0)
  | None -> Alcotest.fail "refused");
  let after = Cost_matrix.costs cm in
  let ok = ref true in
  for i = 0 to (n * n) - 1 do
    if Int64.bits_of_float before.(i) <> Int64.bits_of_float after.{i} then
      ok := false
  done;
  Alcotest.(check bool) "parent rows unchanged" true !ok

let test_repair_under_domains () =
  (* The affected-row fan-out goes through the same Parallel pool as
     compute; the result must not depend on the domain count. *)
  let ft = Fat_tree.build 4 in
  let degraded, _ =
    Failures.fail_links ~rng:(Rng.create 9) ~fraction:0.1 ft.graph
  in
  let repair_at d =
    with_domains d (fun () ->
        match Cost_matrix.repair_to (Cost_matrix.compute ft.graph) degraded with
        | Some (cm, _) -> cm
        | None -> Alcotest.fail "refused")
  in
  Alcotest.(check bool) "1-domain = 4-domain repair" true
    (matrices_bit_equal (repair_at 1) (repair_at 4))

let qsuite name tests =
  (name, List.map (fun t -> QCheck_alcotest.to_alcotest t) tests)

let () =
  Alcotest.run "ppdc_dynamic"
    [
      qsuite "differential"
        [
          prop_repair_matches_cold_compute;
          prop_repair_to_mixed_deltas;
          prop_repair_to_matches_fail_links;
          prop_repair_engine_parity;
        ];
      ( "repair",
        [
          Alcotest.test_case "single-link locality on a fat-tree" `Quick
            test_fat_tree_single_link_locality;
          Alcotest.test_case "identical graph shares storage" `Quick
            test_repair_shares_storage_when_identical;
          Alcotest.test_case "relaxing deltas repaired" `Quick
            test_repair_handles_relaxing_deltas;
          Alcotest.test_case "delete_edge contracts" `Quick
            test_delete_edge_contracts;
          Alcotest.test_case "increase_weight contracts" `Quick
            test_increase_weight_contracts;
          Alcotest.test_case "decrease_weight contracts" `Quick
            test_decrease_weight_contracts;
          Alcotest.test_case "restore_edge contracts" `Quick
            test_restore_edge_contracts;
          Alcotest.test_case "parent matrix untouched" `Quick
            test_parent_matrix_untouched;
          Alcotest.test_case "domain-count independence" `Quick
            test_repair_under_domains;
        ] );
    ]
