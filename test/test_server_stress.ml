(* Stress and regression tests for the concurrent ppdc.rpc/1 daemon:
   parallel clients against one server (id echo, no interleaving
   corruption, results identical to sequential execution, counters),
   explicit overload rejection, queue-wait deadlines, socket-file
   cleanup on an accept-loop exception, and the client-side response
   timeout against a deliberately stalled server. *)

module Json = Ppdc_prelude.Json
module Obs = Ppdc_prelude.Obs
module Engine = Ppdc_server.Engine
module Transport = Ppdc_server.Transport

(* --- response helpers ------------------------------------------------- *)

let response_id line =
  match Json.member "id" (Json.parse line) with
  | Some v -> v
  | None -> Alcotest.failf "response without id: %s" line

let expect_ok line =
  let j = Json.parse line in
  match (Json.member "ok" j, Json.member "result" j) with
  | Some (Json.Bool true), Some r -> r
  | _ -> Alcotest.failf "expected ok response, got: %s" line

let expect_error line =
  let j = Json.parse line in
  match (Json.member "ok" j, Json.member "error" j) with
  | Some (Json.Bool false), Some err -> (
      match Json.member "code" err with
      | Some (Json.Str code) -> code
      | _ -> Alcotest.failf "error without code: %s" line)
  | _ -> Alcotest.failf "expected error response, got: %s" line

let num_field j key =
  match Json.member key j with
  | Some (Json.Num n) -> n
  | _ -> Alcotest.failf "expected numeric field %s in %s" key (Json.to_string j)

let member_exn j key =
  match Json.member key j with
  | Some v -> v
  | None -> Alcotest.failf "missing field %s in %s" key (Json.to_string j)

(* --- server / raw-socket harness -------------------------------------- *)

let sock_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "ppdc-%d-%s.sock" (Unix.getpid ()) name)

(* Boot a daemon in its own domain, wait for the listener (on_ready),
   and guarantee shutdown + join however the test body exits. *)
let with_server ?workers ?max_pending ?request_timeout name f =
  let path = sock_path name in
  (try Sys.remove path with Sys_error _ -> ());
  let engine = Engine.create ~cache_capacity:4 () in
  let ready = Atomic.make false in
  let srv =
    Domain.spawn (fun () ->
        Transport.serve_unix ?workers ?max_pending ?request_timeout
          ~on_ready:(fun () -> Atomic.set ready true)
          ~path engine)
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while
    (not (Atomic.get ready))
    && Float.compare (Unix.gettimeofday ()) deadline < 0
  do
    Unix.sleepf 0.005
  done;
  if not (Atomic.get ready) then Alcotest.fail "server never became ready";
  Fun.protect
    ~finally:(fun () ->
      (try
         ignore
           (Transport.call ~timeout:5.0 ~path
              [ {|{"id":"bye","method":"shutdown"}|} ])
       with _ -> ());
      Domain.join srv)
    (fun () -> f path)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let send_line fd line =
  let data = line ^ "\n" in
  ignore (Unix.write_substring fd data 0 (String.length data))

let recv_line ?(timeout = 10.0) fd =
  let buf = Buffer.create 128 in
  let b = Bytes.create 1 in
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    let remaining = deadline -. Unix.gettimeofday () in
    if Float.compare remaining 0.0 <= 0 then
      Alcotest.failf "recv_line: no line within %gs (got %S)" timeout
        (Buffer.contents buf);
    match Unix.select [ fd ] [] [] remaining with
    | [], _, _ ->
        Alcotest.failf "recv_line: no line within %gs (got %S)" timeout
          (Buffer.contents buf)
    | _ -> (
        match Unix.read fd b 0 1 with
        | 0 ->
            Alcotest.failf "recv_line: connection closed (got %S)"
              (Buffer.contents buf)
        | _ ->
            if Char.equal (Bytes.get b 0) '\n' then Buffer.contents buf
            else begin
              Buffer.add_char buf (Bytes.get b 0);
              go ()
            end)
  in
  go ()

(* --- concurrent clients ----------------------------------------------- *)

let num_clients = 4

(* One client's conversation: its own session, interleaved methods,
   every request carrying a unique string id. *)
let client_requests i =
  let s = Printf.sprintf "c%d" i in
  [
    ( Printf.sprintf "%s-load" s,
      Printf.sprintf
        {|{"id":"%s-load","method":"load_topology","params":{"session":"%s","k":4,"l":6,"n":3,"seed":%d}}|}
        s s (i + 1) );
    ( Printf.sprintf "%s-p1" s,
      Printf.sprintf
        {|{"id":"%s-p1","method":"place","params":{"session":"%s","algo":"dp"}}|}
        s s );
    ( Printf.sprintf "%s-r" s,
      Printf.sprintf
        {|{"id":"%s-r","method":"rates_update","params":{"session":"%s","seed":%d}}|}
        s s (100 + i) );
    ( Printf.sprintf "%s-m" s,
      Printf.sprintf
        {|{"id":"%s-m","method":"migrate","params":{"session":"%s","algo":"mpareto","mu":100}}|}
        s s );
    ( Printf.sprintf "%s-p2" s,
      Printf.sprintf
        {|{"id":"%s-p2","method":"place","params":{"session":"%s","algo":"dp"}}|}
        s s );
  ]

(* The solver-output fields that must be schedule-independent. Fields
   like cache_hit and elapsed_ms legitimately depend on timing and are
   excluded. *)
let deterministic_fields = function
  | "place" -> [ "algo"; "placement"; "cost" ]
  | "migrate" ->
      [ "algo"; "placement"; "moved"; "migration_cost"; "comm_cost"; "total_cost" ]
  | _ -> []

let meth_of_request req =
  match Json.member "method" (Json.parse req) with
  | Some (Json.Str m) -> m
  | _ -> Alcotest.failf "request without method: %s" req

let test_concurrent_clients () =
  with_server ~workers:2 "stress" @@ fun path ->
  let conversations = Array.init num_clients client_requests in
  let clients =
    Array.map
      (fun conv ->
        Domain.spawn (fun () ->
            Transport.call ~timeout:60.0 ~path (List.map snd conv)))
      conversations
  in
  let responses = Array.map Domain.join clients in
  (* Every request got exactly its own id back, in order, ok:true. *)
  Array.iteri
    (fun i conv ->
      let resp = responses.(i) in
      Alcotest.(check int)
        "one response per request" (List.length conv) (List.length resp);
      List.iter2
        (fun (id, _) line ->
          ignore (expect_ok line);
          Alcotest.(check bool)
            (Printf.sprintf "id %s echoed" id)
            true
            (Json.equal (Json.Str id) (response_id line)))
        conv resp)
    conversations;
  (* The same conversations replayed sequentially on a fresh engine
     produce identical solver outputs (placement, costs) — concurrency
     must not change a single bit of the paper-visible results. *)
  let sequential = Engine.create ~cache_capacity:4 () in
  Array.iteri
    (fun i conv ->
      List.iter2
        (fun (id, req) line ->
          let seq_line = Engine.handle_line sequential req in
          let fields = deterministic_fields (meth_of_request req) in
          let concurrent_result = expect_ok line in
          let sequential_result = expect_ok seq_line in
          List.iter
            (fun key ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: %s identical to sequential" id key)
                true
                (Json.equal
                   (member_exn concurrent_result key)
                   (member_exn sequential_result key)))
            fields)
        conv responses.(i))
    conversations;
  (* Final stats account for exactly the requests sent. *)
  let stats =
    expect_ok
      (List.hd
         (Transport.call ~timeout:30.0 ~path [ {|{"id":"st","method":"stats"}|} ]))
  in
  let requests = member_exn stats "requests" in
  let sent = (num_clients * 5) + 1 (* the stats request itself *) in
  Alcotest.(check int)
    "requests.total equals requests sent" sent
    (int_of_float (num_field requests "total"));
  Alcotest.(check int)
    "no errors" 0
    (int_of_float (num_field requests "errors"));
  let by_method = member_exn requests "by_method" in
  Alcotest.(check int)
    "place count" (2 * num_clients)
    (int_of_float (num_field by_method "place"));
  let server = member_exn stats "server" in
  Alcotest.(check int)
    "stats reports the worker pool" 2
    (int_of_float (num_field server "workers"))

(* --- overload ----------------------------------------------------------- *)

let test_overload_rejection () =
  with_server ~workers:1 ~max_pending:0 "overload" @@ fun path ->
  (* A occupies the only worker (a connection holds its worker until it
     closes)... *)
  let a = connect path in
  Unix.sleepf 0.3;
  (* ...so B must be rejected — with a structured response, not a
     dropped connection. *)
  let b = connect path in
  let line = recv_line b in
  Alcotest.(check string) "overloaded code" "overloaded" (expect_error line);
  Alcotest.(check bool)
    "overloaded id null" true
    (Json.equal Json.Null (response_id line));
  (* The rejected connection is then closed by the server. *)
  (match Unix.select [ b ] [] [] 5.0 with
  | [], _, _ -> Alcotest.fail "rejected connection not closed"
  | _ ->
      Alcotest.(check int)
        "EOF after rejection" 0
        (Unix.read b (Bytes.create 1) 0 1));
  Unix.close b;
  (* A was never disturbed and sees the rejection in the gauges. *)
  send_line a {|{"id":"a1","method":"stats"}|};
  let stats = expect_ok (recv_line a) in
  let server = member_exn stats "server" in
  Alcotest.(check int)
    "one rejected connection" 1
    (int_of_float (num_field server "rejected"));
  Unix.close a

(* --- deadlines ---------------------------------------------------------- *)

let test_queue_wait_deadline () =
  with_server ~workers:1 ~request_timeout:0.05 "deadline" @@ fun path ->
  let a = connect path in
  (* B's first request goes out immediately, but B has to wait for the
     only worker far beyond the 50 ms budget. *)
  let b = connect path in
  send_line b {|{"id":"b1","method":"health"}|};
  Unix.sleepf 0.3;
  (* A itself idled 0.3 s before its first request — that must NOT
     count against A's deadline (the budget covers queueing, not
     client think time). *)
  send_line a {|{"id":"a1","method":"health"}|};
  ignore (expect_ok (recv_line a));
  Unix.close a;
  (* The worker moves on to B: the first request spent its whole budget
     queued and is answered deadline_exceeded with its id echoed — and
     the worker survives to serve the next request normally. *)
  let r1 = recv_line b in
  Alcotest.(check string)
    "deadline_exceeded code" "deadline_exceeded" (expect_error r1);
  Alcotest.(check bool)
    "deadline id echoed" true
    (Json.equal (Json.Str "b1") (response_id r1));
  send_line b {|{"id":"b2","method":"stats"}|};
  let r2 = recv_line b in
  let stats = expect_ok r2 in
  Alcotest.(check bool)
    "next request served normally" true
    (Json.equal (Json.Str "b2") (response_id r2));
  Alcotest.(check int)
    "stats counts the deadline miss" 1
    (int_of_float
       (num_field (member_exn stats "requests") "deadline_exceeded"));
  Unix.close b

(* --- socket-file cleanup on accept-loop exception ----------------------- *)

let test_socket_cleanup_on_exception () =
  let path = sock_path "leak" in
  (try Sys.remove path with Sys_error _ -> ());
  let engine = Engine.create () in
  (* on_ready runs inside the accept-loop's protected region; raising
     from it stands in for any accept-loop failure. Before the fix the
     socket file survived an exceptional exit. *)
  (match
     Transport.serve_unix ~workers:1
       ~on_ready:(fun () -> failwith "boom")
       ~path engine
   with
  | () -> Alcotest.fail "serve_unix returned despite the exception"
  | exception Failure msg -> Alcotest.(check string) "exception" "boom" msg);
  Alcotest.(check bool)
    "socket file removed on exceptional exit" false (Sys.file_exists path)

(* --- client-side response timeout --------------------------------------- *)

let test_call_timeout_on_stalled_server () =
  let path = sock_path "stall" in
  (try Sys.remove path with Sys_error _ -> ());
  let ready = Atomic.make false in
  (* A daemon that accepts and reads but never answers. *)
  let srv =
    Domain.spawn (fun () ->
        let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind sock (Unix.ADDR_UNIX path);
        Unix.listen sock 1;
        Atomic.set ready true;
        let fd, _ = Unix.accept sock in
        let b = Bytes.create 1024 in
        let rec drain () = if Unix.read fd b 0 1024 > 0 then drain () in
        (try drain () with Unix.Unix_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        (try Unix.close sock with Unix.Unix_error _ -> ());
        try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.005
  done;
  (match
     Transport.call ~timeout:0.25 ~path [ {|{"id":1,"method":"health"}|} ]
   with
  | _ -> Alcotest.fail "expected Transport.call to time out"
  | exception Failure msg ->
      Alcotest.(check bool)
        (Printf.sprintf "distinguishable timeout failure: %s" msg)
        true
        (let re = "timed out" in
         let len = String.length re in
         let n = String.length msg in
         let rec find i = i + len <= n && (String.equal (String.sub msg i len) re || find (i + 1)) in
         find 0));
  Domain.join srv

let () =
  (* The CI stress step runs this binary directly with PPDC_METRICS set
     and uploads the NDJSON it writes. *)
  (match Obs.env_path () with
  | Some path ->
      Obs.set_enabled true;
      at_exit (fun () -> Obs.export ~path)
  | None -> ());
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  Alcotest.run "ppdc_server_stress"
    [
      ( "concurrency",
        [
          Alcotest.test_case
            "parallel clients: id echo, sequential equivalence, counters"
            `Quick test_concurrent_clients;
        ] );
      ( "overload",
        [
          Alcotest.test_case "full pool answers a structured overloaded error"
            `Quick test_overload_rejection;
          Alcotest.test_case "queue wait past --request-timeout answers \
                              deadline_exceeded" `Quick test_queue_wait_deadline;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "socket file removed when the accept loop dies"
            `Quick test_socket_cleanup_on_exception;
          Alcotest.test_case "call ~timeout raises on a stalled daemon" `Quick
            test_call_timeout_on_stalled_server;
        ] );
    ]
