(* Stress and regression tests for the concurrent ppdc.rpc/1 daemon:
   parallel clients against one server (id echo, no interleaving
   corruption, results identical to sequential execution, counters),
   explicit overload rejection, queue-wait deadlines, socket-file
   cleanup on an accept-loop exception, and the client-side response
   timeout against a deliberately stalled server. *)

module Json = Ppdc_prelude.Json
module Obs = Ppdc_prelude.Obs
module Engine = Ppdc_server.Engine
module Registry = Ppdc_server.Registry
module Transport = Ppdc_server.Transport

(* --- response helpers ------------------------------------------------- *)

let response_id line =
  match Json.member "id" (Json.parse line) with
  | Some v -> v
  | None -> Alcotest.failf "response without id: %s" line

let expect_ok line =
  let j = Json.parse line in
  match (Json.member "ok" j, Json.member "result" j) with
  | Some (Json.Bool true), Some r -> r
  | _ -> Alcotest.failf "expected ok response, got: %s" line

let expect_error line =
  let j = Json.parse line in
  match (Json.member "ok" j, Json.member "error" j) with
  | Some (Json.Bool false), Some err -> (
      match Json.member "code" err with
      | Some (Json.Str code) -> code
      | _ -> Alcotest.failf "error without code: %s" line)
  | _ -> Alcotest.failf "expected error response, got: %s" line

let num_field j key =
  match Json.member key j with
  | Some (Json.Num n) -> n
  | _ -> Alcotest.failf "expected numeric field %s in %s" key (Json.to_string j)

let member_exn j key =
  match Json.member key j with
  | Some v -> v
  | None -> Alcotest.failf "missing field %s in %s" key (Json.to_string j)

(* --- server / raw-socket harness -------------------------------------- *)

let sock_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "ppdc-%d-%s.sock" (Unix.getpid ()) name)

(* Boot a daemon in its own domain, wait for the listener (on_ready),
   and guarantee shutdown + join however the test body exits. The
   engine options feed the registry budgets/fairness caps for the
   eviction and fairness choreographies. *)
let with_server ?workers ?max_pending ?request_timeout ?engine ?shards
    ?session_budget ?tenant_sessions ?tenant_bytes ?tenant_inflight name f =
  let path = sock_path name in
  (try Sys.remove path with Sys_error _ -> ());
  let engine =
    match engine with
    | Some e -> e
    | None ->
        Engine.create ~cache_capacity:4 ?shards ?session_budget
          ?tenant_sessions ?tenant_bytes ?tenant_inflight ()
  in
  let ready = Atomic.make false in
  let srv =
    Domain.spawn (fun () ->
        Transport.serve_unix ?workers ?max_pending ?request_timeout
          ~on_ready:(fun () -> Atomic.set ready true)
          ~path engine)
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while
    (not (Atomic.get ready))
    && Float.compare (Unix.gettimeofday ()) deadline < 0
  do
    Unix.sleepf 0.005
  done;
  if not (Atomic.get ready) then Alcotest.fail "server never became ready";
  Fun.protect
    ~finally:(fun () ->
      (try
         ignore
           (Transport.call ~timeout:5.0 ~path
              [ {|{"id":"bye","method":"shutdown"}|} ])
       with _ -> ());
      Domain.join srv)
    (fun () -> f path)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let send_line fd line =
  let data = line ^ "\n" in
  ignore (Unix.write_substring fd data 0 (String.length data))

let recv_line ?(timeout = 10.0) fd =
  let buf = Buffer.create 128 in
  let b = Bytes.create 1 in
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    let remaining = deadline -. Unix.gettimeofday () in
    if Float.compare remaining 0.0 <= 0 then
      Alcotest.failf "recv_line: no line within %gs (got %S)" timeout
        (Buffer.contents buf);
    match Unix.select [ fd ] [] [] remaining with
    | [], _, _ ->
        Alcotest.failf "recv_line: no line within %gs (got %S)" timeout
          (Buffer.contents buf)
    | _ -> (
        match Unix.read fd b 0 1 with
        | 0 ->
            Alcotest.failf "recv_line: connection closed (got %S)"
              (Buffer.contents buf)
        | _ ->
            if Char.equal (Bytes.get b 0) '\n' then Buffer.contents buf
            else begin
              Buffer.add_char buf (Bytes.get b 0);
              go ()
            end)
  in
  go ()

(* --- concurrent clients ----------------------------------------------- *)

let num_clients = 4

(* One client's conversation: its own session, interleaved methods,
   every request carrying a unique string id. *)
let client_requests i =
  let s = Printf.sprintf "c%d" i in
  [
    ( Printf.sprintf "%s-load" s,
      Printf.sprintf
        {|{"id":"%s-load","method":"load_topology","params":{"session":"%s","k":4,"l":6,"n":3,"seed":%d}}|}
        s s (i + 1) );
    ( Printf.sprintf "%s-p1" s,
      Printf.sprintf
        {|{"id":"%s-p1","method":"place","params":{"session":"%s","algo":"dp"}}|}
        s s );
    ( Printf.sprintf "%s-r" s,
      Printf.sprintf
        {|{"id":"%s-r","method":"rates_update","params":{"session":"%s","seed":%d}}|}
        s s (100 + i) );
    ( Printf.sprintf "%s-m" s,
      Printf.sprintf
        {|{"id":"%s-m","method":"migrate","params":{"session":"%s","algo":"mpareto","mu":100}}|}
        s s );
    ( Printf.sprintf "%s-p2" s,
      Printf.sprintf
        {|{"id":"%s-p2","method":"place","params":{"session":"%s","algo":"dp"}}|}
        s s );
  ]

(* The solver-output fields that must be schedule-independent. Fields
   like cache_hit and elapsed_ms legitimately depend on timing and are
   excluded. *)
let deterministic_fields = function
  | "place" -> [ "algo"; "placement"; "cost" ]
  | "migrate" ->
      [ "algo"; "placement"; "moved"; "migration_cost"; "comm_cost"; "total_cost" ]
  | _ -> []

let meth_of_request req =
  match Json.member "method" (Json.parse req) with
  | Some (Json.Str m) -> m
  | _ -> Alcotest.failf "request without method: %s" req

let test_concurrent_clients () =
  with_server ~workers:2 "stress" @@ fun path ->
  let conversations = Array.init num_clients client_requests in
  let clients =
    Array.map
      (fun conv ->
        Domain.spawn (fun () ->
            Transport.call ~timeout:60.0 ~path (List.map snd conv)))
      conversations
  in
  let responses = Array.map Domain.join clients in
  (* Every request got exactly its own id back, in order, ok:true. *)
  Array.iteri
    (fun i conv ->
      let resp = responses.(i) in
      Alcotest.(check int)
        "one response per request" (List.length conv) (List.length resp);
      List.iter2
        (fun (id, _) line ->
          ignore (expect_ok line);
          Alcotest.(check bool)
            (Printf.sprintf "id %s echoed" id)
            true
            (Json.equal (Json.Str id) (response_id line)))
        conv resp)
    conversations;
  (* The same conversations replayed sequentially on a fresh engine
     produce identical solver outputs (placement, costs) — concurrency
     must not change a single bit of the paper-visible results. *)
  let sequential = Engine.create ~cache_capacity:4 () in
  Array.iteri
    (fun i conv ->
      List.iter2
        (fun (id, req) line ->
          let seq_line = Engine.handle_line sequential req in
          let fields = deterministic_fields (meth_of_request req) in
          let concurrent_result = expect_ok line in
          let sequential_result = expect_ok seq_line in
          List.iter
            (fun key ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: %s identical to sequential" id key)
                true
                (Json.equal
                   (member_exn concurrent_result key)
                   (member_exn sequential_result key)))
            fields)
        conv responses.(i))
    conversations;
  (* Final stats account for exactly the requests sent. *)
  let stats =
    expect_ok
      (List.hd
         (Transport.call ~timeout:30.0 ~path [ {|{"id":"st","method":"stats"}|} ]))
  in
  let requests = member_exn stats "requests" in
  let sent = (num_clients * 5) + 1 (* the stats request itself *) in
  Alcotest.(check int)
    "requests.total equals requests sent" sent
    (int_of_float (num_field requests "total"));
  Alcotest.(check int)
    "no errors" 0
    (int_of_float (num_field requests "errors"));
  let by_method = member_exn requests "by_method" in
  Alcotest.(check int)
    "place count" (2 * num_clients)
    (int_of_float (num_field by_method "place"));
  let server = member_exn stats "server" in
  Alcotest.(check int)
    "stats reports the worker pool" 2
    (int_of_float (num_field server "workers"))

(* --- overload ----------------------------------------------------------- *)

let test_overload_rejection () =
  with_server ~workers:1 ~max_pending:0 "overload" @@ fun path ->
  (* A occupies the only worker (a connection holds its worker until it
     closes)... *)
  let a = connect path in
  Unix.sleepf 0.3;
  (* ...so B must be rejected — with a structured response, not a
     dropped connection. *)
  let b = connect path in
  let line = recv_line b in
  Alcotest.(check string) "overloaded code" "overloaded" (expect_error line);
  Alcotest.(check bool)
    "overloaded id null" true
    (Json.equal Json.Null (response_id line));
  (* The rejected connection is then closed by the server. *)
  (match Unix.select [ b ] [] [] 5.0 with
  | [], _, _ -> Alcotest.fail "rejected connection not closed"
  | _ ->
      Alcotest.(check int)
        "EOF after rejection" 0
        (Unix.read b (Bytes.create 1) 0 1));
  Unix.close b;
  (* A was never disturbed and sees the rejection in the gauges. *)
  send_line a {|{"id":"a1","method":"stats"}|};
  let stats = expect_ok (recv_line a) in
  let server = member_exn stats "server" in
  Alcotest.(check int)
    "one rejected connection" 1
    (int_of_float (num_field server "rejected"));
  Unix.close a

(* --- deadlines ---------------------------------------------------------- *)

let test_queue_wait_deadline () =
  with_server ~workers:1 ~request_timeout:0.05 "deadline" @@ fun path ->
  let a = connect path in
  (* B's first request goes out immediately, but B has to wait for the
     only worker far beyond the 50 ms budget. *)
  let b = connect path in
  send_line b {|{"id":"b1","method":"health"}|};
  Unix.sleepf 0.3;
  (* A itself idled 0.3 s before its first request — that must NOT
     count against A's deadline (the budget covers queueing, not
     client think time). *)
  send_line a {|{"id":"a1","method":"health"}|};
  ignore (expect_ok (recv_line a));
  Unix.close a;
  (* The worker moves on to B: the first request spent its whole budget
     queued and is answered deadline_exceeded with its id echoed — and
     the worker survives to serve the next request normally. *)
  let r1 = recv_line b in
  Alcotest.(check string)
    "deadline_exceeded code" "deadline_exceeded" (expect_error r1);
  Alcotest.(check bool)
    "deadline id echoed" true
    (Json.equal (Json.Str "b1") (response_id r1));
  send_line b {|{"id":"b2","method":"stats"}|};
  let r2 = recv_line b in
  let stats = expect_ok r2 in
  Alcotest.(check bool)
    "next request served normally" true
    (Json.equal (Json.Str "b2") (response_id r2));
  Alcotest.(check int)
    "stats counts the deadline miss" 1
    (int_of_float
       (num_field (member_exn stats "requests") "deadline_exceeded"));
  Unix.close b

(* --- eviction choreography ---------------------------------------------- *)

(* Deterministic LRU eviction under a per-tenant session cap: filling
   tenant "t" past tenant_sessions=2 must evict exactly its
   least-recently-used session, announce the victim in the create's
   response, answer later requests for the victim with session_evicted
   (id echoed), and keep serving the survivors. *)
let test_tenant_session_eviction () =
  with_server ~workers:1 ~tenant_sessions:2 "evict" @@ fun path ->
  let load s =
    Printf.sprintf
      {|{"id":"load-%s","method":"load_topology","params":{"session":"%s","k":4,"l":4,"n":2,"seed":1}}|}
      s s
  in
  let place ~id s =
    Printf.sprintf {|{"id":"%s","method":"place","params":{"session":"%s"}}|}
      id s
  in
  let responses =
    Transport.call ~timeout:60.0 ~path
      [
        load "t-a"; load "t-b"; load "t-c";
        place ~id:"victim" "t-a";
        place ~id:"b-ok" "t-b"; place ~id:"c-ok" "t-c";
        {|{"id":"st","method":"stats"}|};
      ]
  in
  match responses with
  | [ ra; rb; rc; victim; b_ok; c_ok; st ] ->
      ignore (expect_ok ra);
      ignore (expect_ok rb);
      (* The third create pushes tenant "t" to 3 > 2: its LRU session
         (t-a, the oldest stamp) is announced as the victim. *)
      let rc = expect_ok rc in
      (match member_exn rc "evicted" with
      | Json.List [ ev ] ->
          Alcotest.(check bool)
            "t-a is the announced victim" true
            (Json.equal (Json.Str "t-a") (member_exn ev "session"));
          Alcotest.(check bool)
            "eviction reason is the tenant session cap" true
            (Json.equal (Json.Str "tenant_sessions") (member_exn ev "reason"))
      | other ->
          Alcotest.failf "expected exactly one eviction, got %s"
            (Json.to_string other));
      (* The evicted session answers with the structured code and the
         request's own id — a client can tell eviction from typo. *)
      Alcotest.(check string)
        "session_evicted code" "session_evicted" (expect_error victim);
      Alcotest.(check bool)
        "evicted answer echoes the request id" true
        (Json.equal (Json.Str "victim") (response_id victim));
      (* Service continues for the survivors. *)
      ignore (expect_ok b_ok);
      ignore (expect_ok c_ok);
      let stats = expect_ok st in
      let registry = member_exn stats "registry" in
      Alcotest.(check int)
        "registry.sessions" 2
        (int_of_float (num_field registry "sessions"));
      Alcotest.(check int)
        "one tenant_sessions eviction counted" 1
        (int_of_float
           (num_field (member_exn registry "evictions") "tenant_sessions"));
      Alcotest.(check int)
        "one evicted answer counted" 1
        (int_of_float (num_field registry "evicted_answers"))
  | rs -> Alcotest.failf "expected 7 responses, got %d" (List.length rs)

(* --- two-tenant fairness choreography ------------------------------------ *)

(* Deterministic fairness: while one noisy request is provably inside
   its handler (the registry put hook parks it, holding the tenant's
   single in-flight slot), a second noisy request must be rejected with
   a structured overloaded answer, and a quiet tenant sharing the pool
   must keep being served ok with a bounded wait. No race: the second
   request is only sent after the hook reports the first one in. *)
let test_noisy_tenant_fairness () =
  (* The parked put holds its session's shard lock. Everything that
     must proceed (or fail fast) while it is parked takes other shard
     locks: enter_tenant locks the *tenant's home shard* (both for the
     rejected noisy request and for the quiet tenant), and the quiet
     create locks the quiet session's shard. Probe the stable hash for
     names that keep all of those off the parked shard. *)
  let probe : unit Registry.t = Registry.create ~shards:8 () in
  let noisy_name =
    let rec pick i =
      if i > 25 then Alcotest.fail "no noisy session off its home shard"
      else
        let name = Printf.sprintf "noisy-%c" (Char.chr (Char.code 'a' + i)) in
        if Registry.shard_id probe name <> Registry.shard_id probe "noisy" then
          name
        else pick (i + 1)
    in
    pick 0
  in
  let parked_shard = Registry.shard_id probe noisy_name in
  let quiet_name =
    let tenants = [ "quiet"; "calm"; "idle"; "tame" ] in
    let rec pick = function
      | [] -> Alcotest.fail "no quiet session off the parked shard"
      | (tenant, i) :: rest ->
          let name = Printf.sprintf "%s-%c" tenant (Char.chr (Char.code 'a' + i)) in
          if
            Registry.shard_id probe tenant <> parked_shard
            && Registry.shard_id probe name <> parked_shard
          then name
          else pick rest
    in
    pick
      (List.concat_map
         (fun tenant -> List.init 26 (fun i -> (tenant, i)))
         tenants)
  in
  let engine =
    Engine.create ~cache_capacity:4 ~shards:8 ~tenant_inflight:1 ()
  in
  let inside = Atomic.make false and release = Atomic.make false in
  Engine.set_registry_test_hook engine
    (Some
       (fun name ->
         if String.equal (Registry.tenant_of name) "noisy" then begin
           Atomic.set inside true;
           let deadline = Unix.gettimeofday () +. 10.0 in
           while
             (not (Atomic.get release))
             && Float.compare (Unix.gettimeofday ()) deadline < 0
           do
             Unix.sleepf 0.002
           done
         end));
  with_server ~engine ~workers:3 "fairness" @@ fun path ->
  let load ~id s =
    Printf.sprintf
      {|{"id":"%s","method":"load_topology","params":{"session":"%s","k":4,"l":4,"n":2,"seed":1}}|}
      id s
  in
  let a = connect path in
  let b = connect path in
  let q = connect path in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set release true;
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ a; b; q ])
  @@ fun () ->
  (* Park the noisy tenant's first request inside its handler. *)
  send_line a (load ~id:"n1" noisy_name);
  let deadline = Unix.gettimeofday () +. 10.0 in
  while
    (not (Atomic.get inside))
    && Float.compare (Unix.gettimeofday ()) deadline < 0
  do
    Unix.sleepf 0.002
  done;
  if not (Atomic.get inside) then
    Alcotest.fail "noisy request never reached its handler";
  (* The tenant is now pinned at its in-flight cap of 1: a second noisy
     request must bounce with the structured overloaded answer. *)
  (* Rejected at the admission gate, before any registry lock: only the
     tenant prefix matters, the session never gets created. *)
  send_line b (load ~id:"n2" "noisy-second");
  let rejected_line = recv_line b in
  Alcotest.(check string)
    "second noisy request rejected" "overloaded" (expect_error rejected_line);
  Alcotest.(check bool)
    "rejection echoes the request id" true
    (Json.equal (Json.Str "n2") (response_id rejected_line));
  (* Meanwhile the quiet tenant keeps being served: the fairness cap —
     not a saturated pool — absorbed the noisy burst. Waits measured
     while the noisy handler is still parked. *)
  let quiet_waits =
    List.map
      (fun req ->
        let t0 = Unix.gettimeofday () in
        send_line q req;
        ignore (expect_ok (recv_line q));
        Unix.gettimeofday () -. t0)
      [
        load ~id:"q0" quiet_name;
        Printf.sprintf
          {|{"id":"q1","method":"place","params":{"session":"%s"}}|}
          quiet_name;
        Printf.sprintf
          {|{"id":"q2","method":"place","params":{"session":"%s"}}|}
          quiet_name;
      ]
  in
  let worst = List.fold_left Float.max 0.0 quiet_waits in
  Alcotest.(check bool)
    (Printf.sprintf "quiet tenant waits bounded (worst %.3fs)" worst)
    true (Float.compare worst 5.0 < 0);
  (* Release the parked handler: the noisy tenant recovers and is
     served normally once its slot frees up. *)
  Atomic.set release true;
  ignore (expect_ok (recv_line a));
  send_line a
    (Printf.sprintf {|{"id":"n3","method":"place","params":{"session":"%s"}}|}
       noisy_name);
  ignore (expect_ok (recv_line a));
  send_line q {|{"id":"st","method":"stats"}|};
  let stats = expect_ok (recv_line q) in
  let fairness = member_exn stats "fairness" in
  Alcotest.(check bool)
    "fairness.rejections counted" true
    (int_of_float (num_field fairness "rejections") >= 1)

(* --- socket-file cleanup on accept-loop exception ----------------------- *)

let test_socket_cleanup_on_exception () =
  let path = sock_path "leak" in
  (try Sys.remove path with Sys_error _ -> ());
  let engine = Engine.create () in
  (* on_ready runs inside the accept-loop's protected region; raising
     from it stands in for any accept-loop failure. Before the fix the
     socket file survived an exceptional exit. *)
  (match
     Transport.serve_unix ~workers:1
       ~on_ready:(fun () -> failwith "boom")
       ~path engine
   with
  | () -> Alcotest.fail "serve_unix returned despite the exception"
  | exception Failure msg -> Alcotest.(check string) "exception" "boom" msg);
  Alcotest.(check bool)
    "socket file removed on exceptional exit" false (Sys.file_exists path)

(* --- client-side response timeout --------------------------------------- *)

let test_call_timeout_on_stalled_server () =
  let path = sock_path "stall" in
  (try Sys.remove path with Sys_error _ -> ());
  let ready = Atomic.make false in
  (* A daemon that accepts and reads but never answers. *)
  let srv =
    Domain.spawn (fun () ->
        let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind sock (Unix.ADDR_UNIX path);
        Unix.listen sock 1;
        Atomic.set ready true;
        let fd, _ = Unix.accept sock in
        let b = Bytes.create 1024 in
        let rec drain () = if Unix.read fd b 0 1024 > 0 then drain () in
        (try drain () with Unix.Unix_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        (try Unix.close sock with Unix.Unix_error _ -> ());
        try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.005
  done;
  (match
     Transport.call ~timeout:0.25 ~path [ {|{"id":1,"method":"health"}|} ]
   with
  | _ -> Alcotest.fail "expected Transport.call to time out"
  | exception Failure msg ->
      Alcotest.(check bool)
        (Printf.sprintf "distinguishable timeout failure: %s" msg)
        true
        (let re = "timed out" in
         let len = String.length re in
         let n = String.length msg in
         let rec find i = i + len <= n && (String.equal (String.sub msg i len) re || find (i + 1)) in
         find 0));
  Domain.join srv

let () =
  (* The CI stress step runs this binary directly with PPDC_METRICS set
     and uploads the NDJSON it writes. *)
  (match Obs.env_path () with
  | Some path ->
      Obs.set_enabled true;
      at_exit (fun () -> Obs.export ~path)
  | None -> ());
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  Alcotest.run "ppdc_server_stress"
    [
      ( "concurrency",
        [
          Alcotest.test_case
            "parallel clients: id echo, sequential equivalence, counters"
            `Quick test_concurrent_clients;
        ] );
      ( "overload",
        [
          Alcotest.test_case "full pool answers a structured overloaded error"
            `Quick test_overload_rejection;
          Alcotest.test_case "queue wait past --request-timeout answers \
                              deadline_exceeded" `Quick test_queue_wait_deadline;
        ] );
      ( "tenancy",
        [
          Alcotest.test_case
            "tenant session cap evicts LRU and answers session_evicted"
            `Quick test_tenant_session_eviction;
          Alcotest.test_case
            "noisy tenant is rejected, quiet tenant keeps being served"
            `Quick test_noisy_tenant_fairness;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "socket file removed when the accept loop dies"
            `Quick test_socket_cleanup_on_exception;
          Alcotest.test_case "call ~timeout raises on a stalled daemon" `Quick
            test_call_timeout_on_stalled_server;
        ] );
    ]
