module Pqueue = Ppdc_prelude.Pqueue
module Union_find = Ppdc_prelude.Union_find
module Rng = Ppdc_prelude.Rng
module Stats = Ppdc_prelude.Stats
module Table = Ppdc_prelude.Table
module Obs = Ppdc_prelude.Obs
module Json = Ppdc_prelude.Json
module Lru = Ppdc_prelude.Lru
module Clock = Ppdc_prelude.Clock
module Parallel = Ppdc_prelude.Parallel
module Mutexes = Ppdc_prelude.Mutexes
module Work_queue = Ppdc_prelude.Work_queue

(* --- priority queue -------------------------------------------------- *)

let test_pqueue_orders () =
  let q = Pqueue.create () in
  List.iter (fun p -> Pqueue.push q p (int_of_float p)) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order = List.init 5 (fun _ ->
      match Pqueue.pop_min q with Some (_, x) -> x | None -> -1)
  in
  Alcotest.(check (list int)) "ascending" [ 1; 2; 3; 4; 5 ] order;
  Alcotest.(check bool) "empty after drain" true (Pqueue.is_empty q)

let test_pqueue_peek_and_clear () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "peek empty" true (Pqueue.peek_min q = None);
  Pqueue.push q 2.0 "b";
  Pqueue.push q 1.0 "a";
  (match Pqueue.peek_min q with
  | Some (p, x) ->
      Alcotest.(check (float 0.0)) "peek priority" 1.0 p;
      Alcotest.(check string) "peek value" "a" x
  | None -> Alcotest.fail "expected an element");
  Alcotest.(check int) "length" 2 (Pqueue.length q);
  Pqueue.clear q;
  Alcotest.(check int) "cleared" 0 (Pqueue.length q)

let test_pqueue_grows () =
  let q = Pqueue.create () in
  for i = 1000 downto 1 do
    Pqueue.push q (float_of_int i) i
  done;
  Alcotest.(check int) "holds 1000" 1000 (Pqueue.length q);
  (match Pqueue.pop_min q with
  | Some (_, x) -> Alcotest.(check int) "min of 1000" 1 x
  | None -> Alcotest.fail "expected an element")

let prop_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue pops in sorted order" ~count:200
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun priorities ->
      let q = Pqueue.create () in
      List.iteri (fun i p -> Pqueue.push q p i) priorities;
      let rec drain acc =
        match Pqueue.pop_min q with
        | None -> List.rev acc
        | Some (p, _) -> drain (p :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare priorities)

(* --- stable priority queue -------------------------------------------- *)

let test_stable_fifo_on_ties () =
  let q = Pqueue.Stable.create () in
  List.iteri
    (fun i p -> Pqueue.Stable.push q p i)
    [ 2.0; 1.0; 2.0; 1.0; 2.0; 1.0 ];
  let rec drain acc =
    match Pqueue.Stable.pop_min q with
    | None -> List.rev acc
    | Some (_, x) -> drain (x :: acc)
  in
  (* Equal priorities must pop in push order: all the 1.0s in insertion
     order, then all the 2.0s in insertion order. *)
  Alcotest.(check (list int)) "FIFO within equal keys" [ 1; 3; 5; 0; 2; 4 ]
    (drain [])

let test_stable_rejects_nan () =
  let q = Pqueue.Stable.create () in
  Alcotest.(check bool) "NaN priority raises" true
    (try
       Pqueue.Stable.push q Float.nan 0;
       false
     with Invalid_argument _ -> true)

let test_stable_to_sorted_list_preserves () =
  let q = Pqueue.Stable.create () in
  List.iteri (fun i p -> Pqueue.Stable.push q p i) [ 3.0; 1.0; 2.0; 1.0 ];
  let snapshot = Pqueue.Stable.to_sorted_list q in
  Alcotest.(check (list int)) "snapshot in pop order" [ 1; 3; 2; 0 ]
    (List.map snd snapshot);
  Alcotest.(check int) "queue untouched" 4 (Pqueue.Stable.length q);
  (match Pqueue.Stable.peek_min q with
  | Some (p, x) ->
      Alcotest.(check (float 0.0)) "peek prio" 1.0 p;
      Alcotest.(check int) "peek value" 1 x
  | None -> Alcotest.fail "expected an element");
  Pqueue.Stable.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.Stable.is_empty q)

(* Model check: interleaved pushes and pops against a sorted-list
   model keyed by (priority, insertion sequence). *)
let prop_stable_matches_model =
  QCheck.Test.make ~name:"stable pqueue = sorted-list model" ~count:300
    QCheck.(list (pair (int_range 0 9) bool))
    (fun script ->
      let q = Pqueue.Stable.create () in
      let model = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun (bucket, do_pop) ->
          if do_pop then begin
            let expected =
              match
                List.sort
                  (fun (pa, sa, _) (pb, sb, _) ->
                    match Float.compare pa pb with
                    | 0 -> Int.compare sa sb
                    | c -> c)
                  !model
              with
              | [] -> None
              | ((p, _, x) as hd) :: _ ->
                  model := List.filter (fun e -> e != hd) !model;
                  Some (p, x)
            in
            if Pqueue.Stable.pop_min q <> expected then ok := false
          end
          else begin
            (* Few buckets on purpose: collisions are the point. *)
            let p = float_of_int bucket in
            Pqueue.Stable.push q p !seq;
            model := (p, !seq, !seq) :: !model;
            incr seq
          end)
        script;
      let rec drain () =
        match Pqueue.Stable.pop_min q with
        | None -> !model = []
        | Some got ->
            (match
               List.sort
                 (fun (pa, sa, _) (pb, sb, _) ->
                   match Float.compare pa pb with
                   | 0 -> Int.compare sa sb
                   | c -> c)
                 !model
             with
            | ((p, _, x) as hd) :: _ when (p, x) = got ->
                model := List.filter (fun e -> e != hd) !model;
                drain ()
            | _ -> false)
      in
      !ok && drain ())

(* --- union-find ------------------------------------------------------- *)

let test_union_find_basic () =
  let uf = Union_find.create 6 in
  Alcotest.(check int) "six singletons" 6 (Union_find.count_sets uf);
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 2 3);
  Alcotest.(check bool) "0~1" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "0!~2" false (Union_find.same uf 0 2);
  ignore (Union_find.union uf 1 3);
  Alcotest.(check bool) "0~3 after chain" true (Union_find.same uf 0 3);
  Alcotest.(check int) "set size" 4 (Union_find.size uf 2);
  Alcotest.(check int) "three sets" 3 (Union_find.count_sets uf)

let test_union_find_self_union () =
  let uf = Union_find.create 3 in
  let r = Union_find.union uf 1 1 in
  Alcotest.(check int) "self union is no-op" (Union_find.find uf 1) r;
  Alcotest.(check int) "still 3 sets" 3 (Union_find.count_sets uf)

let prop_union_find_transitive =
  QCheck.Test.make ~name:"union-find equivalence is transitive" ~count:100
    QCheck.(list (pair (int_bound 19) (int_bound 19)))
    (fun unions ->
      let uf = Union_find.create 20 in
      List.iter (fun (a, b) -> ignore (Union_find.union uf a b)) unions;
      (* Check transitivity on all triples. *)
      let ok = ref true in
      for a = 0 to 19 do
        for b = 0 to 19 do
          for c = 0 to 19 do
            if
              Union_find.same uf a b && Union_find.same uf b c
              && not (Union_find.same uf a c)
            then ok := false
          done
        done
      done;
      !ok)

(* --- rng --------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_independence () =
  let a = Rng.create 42 in
  let b = Rng.split a in
  let xs = List.init 50 (fun _ -> Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Rng.int b 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    Alcotest.(check bool) "int in bound" true (x >= 0 && x < 10);
    let f = Rng.uniform rng ~lo:2.0 ~hi:5.0 in
    Alcotest.(check bool) "uniform in range" true (f >= 2.0 && f < 5.0)
  done

let test_rng_int_rejects_bad_bound () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_shuffle_is_permutation () =
  let rng = Rng.create 5 in
  let arr = Array.init 100 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check bool) "permutation" true (sorted = Array.init 100 (fun i -> i))

let test_rng_uniformity_rough () =
  (* chi-square-ish sanity: 10 buckets, 10k draws, each bucket within
     [800, 1200]. *)
  let rng = Rng.create 11 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let b = Rng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d balanced" i)
        true
        (c > 800 && c < 1200))
    buckets

(* --- stats ------------------------------------------------------------- *)

let test_stats_known_values () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "sample variance" (32.0 /. 7.0) (Stats.variance xs)

let test_stats_summary_ci () =
  let xs = Array.make 20 10.0 in
  let s = Stats.summary xs in
  Alcotest.(check (float 1e-9)) "mean of constants" 10.0 s.mean;
  Alcotest.(check (float 1e-9)) "zero ci" 0.0 s.ci95;
  Alcotest.(check int) "n" 20 s.n

let test_stats_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.percentile xs 0.5);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.percentile xs 1.0);
  Alcotest.(check (float 1e-9)) "interpolated" 1.5 (Stats.percentile xs 0.125)

let test_stats_empty_raises () =
  Alcotest.check_raises "summary of empty"
    (Invalid_argument "Stats.summary: empty data") (fun () ->
      ignore (Stats.summary [||]))

let test_stats_percentile_rejects_nan () =
  (* Regression: polymorphic [compare] placed NaN at an arbitrary rank
     and the interpolation silently produced garbage. *)
  Alcotest.check_raises "NaN rejected"
    (Invalid_argument "Stats.percentile: NaN in data") (fun () ->
      ignore (Stats.percentile [| 1.0; Float.nan; 3.0 |] 0.5));
  (* Float.compare must still order negative zero, infinities, etc. *)
  Alcotest.(check (float 0.0)) "infinities ordered" 1.0
    (Stats.percentile [| Float.infinity; 1.0; Float.neg_infinity |] 0.5)

let prop_stats_mean_bounds =
  QCheck.Test.make ~name:"mean lies within min and max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let arr = Array.of_list xs in
      let s = Stats.summary arr in
      s.min <= s.mean +. 1e-9 && s.mean <= s.max +. 1e-9)

(* --- observability ------------------------------------------------------ *)

(* Obs state is global; each test starts from a clean, enabled slate and
   leaves the layer disabled. *)
let with_obs f =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.set_enabled false)
    f

let test_obs_disabled_is_noop () =
  Obs.set_enabled false;
  Obs.reset ();
  Obs.incr "c";
  Obs.observe "h" 1.0;
  Obs.observe_span "s" 0.5;
  Obs.emit "e" [ ("k", Obs.Int 1) ];
  Alcotest.(check int) "no work recorded" 0
    (Obs.time "t" (fun () ->
         let snap = Obs.snapshot () in
         List.length snap.Obs.counters
         + List.length snap.Obs.spans
         + List.length snap.Obs.hists
         + List.length snap.Obs.events))

let test_obs_counters_and_hists () =
  with_obs @@ fun () ->
  Obs.incr "c";
  Obs.incr ~by:4 "c";
  Obs.observe "h" 1.0;
  Obs.observe "h" 3.0;
  Obs.observe "h" Float.nan (* dropped: summaries stay NaN-free *);
  let x = Obs.time "span" (fun () -> 42) in
  Alcotest.(check int) "time passes the result through" 42 x;
  let snap = Obs.snapshot () in
  Alcotest.(check (list (pair string int))) "counter summed" [ ("c", 5) ]
    snap.Obs.counters;
  (match snap.Obs.hists with
  | [ ("h", d) ] ->
      Alcotest.(check int) "two finite samples" 2 d.Obs.count;
      Alcotest.(check (float 1e-9)) "mean" 2.0 d.Obs.mean;
      Alcotest.(check (float 1e-9)) "p50" 2.0 d.Obs.p50;
      Alcotest.(check (float 1e-9)) "max" 3.0 d.Obs.max
  | _ -> Alcotest.fail "expected exactly one histogram");
  (match snap.Obs.spans with
  | [ ("span", d) ] ->
      Alcotest.(check int) "one timing" 1 d.Obs.count;
      Alcotest.(check bool) "non-negative duration" true (d.Obs.total >= 0.0)
  | _ -> Alcotest.fail "expected exactly one span")

let test_obs_events_ordered () =
  with_obs @@ fun () ->
  for i = 0 to 4 do
    Obs.emit "tick" [ ("i", Obs.Int i) ]
  done;
  let snap = Obs.snapshot () in
  Alcotest.(check (list int)) "sequence order" [ 0; 1; 2; 3; 4 ]
    (List.map (fun (e : Obs.event) -> e.Obs.seq) snap.Obs.events)

let test_obs_merges_domain_shards () =
  with_obs @@ fun () ->
  (* Each task bumps the same counter once; the merged snapshot must see
     every bump no matter how many domains the pool used. *)
  let tasks = 64 in
  Parallel.parallel_for tasks (fun i ->
      Obs.incr "work";
      Obs.observe "task_index" (float_of_int i));
  let snap = Obs.snapshot () in
  Alcotest.(check (list (pair string int))) "all bumps merged"
    [ ("work", tasks) ] snap.Obs.counters;
  match snap.Obs.hists with
  | [ ("task_index", d) ] ->
      Alcotest.(check int) "all samples merged" tasks d.Obs.count
  | _ -> Alcotest.fail "expected exactly one histogram"

let test_obs_ndjson_roundtrip () =
  with_obs @@ fun () ->
  Obs.incr ~by:7 "solver.runs";
  Obs.observe_span "solve" 0.25;
  Obs.emit "epoch"
    [
      ("policy", Obs.String "mPareto \"quoted\"\n");
      ("hour", Obs.Int 3);
      ("cost", Obs.Float 12.5);
      ("moved", Obs.Bool true);
    ];
  let text = Obs.to_ndjson (Obs.snapshot ()) in
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
  in
  let records = List.map Json.parse lines in
  let typed kind =
    List.filter
      (fun r -> Json.member "type" r = Some (Json.Str kind))
      records
  in
  Alcotest.(check int) "one meta line" 1 (List.length (typed "meta"));
  (match typed "event" with
  | [ e ] ->
      Alcotest.(check bool) "string field survives escaping" true
        (Json.member "policy" e = Some (Json.Str "mPareto \"quoted\"\n"));
      Alcotest.(check bool) "numeric field" true
        (Json.member "cost" e = Some (Json.Num 12.5))
  | _ -> Alcotest.fail "expected exactly one event");
  (match typed "counter" with
  | [ c ] ->
      Alcotest.(check bool) "counter value" true
        (Json.member "value" c = Some (Json.Num 7.0))
  | _ -> Alcotest.fail "expected exactly one counter");
  match typed "span" with
  | [ s ] ->
      Alcotest.(check bool) "span total" true
        (Json.member "total_s" s = Some (Json.Num 0.25))
  | _ -> Alcotest.fail "expected exactly one span"

let test_obs_json_parser_rejects_garbage () =
  List.iter
    (fun text ->
      Alcotest.(check bool) (Printf.sprintf "rejects %S" text) true
        (try
           ignore (Json.parse text);
           false
         with Failure _ -> true))
    [ ""; "{"; "{\"a\":}"; "[1,]"; "{\"a\":1} trailing"; "\"unterminated" ]

(* --- table ------------------------------------------------------------- *)

let test_table_renders () =
  let t = Table.create ~title:"demo" ~columns:[ "x"; "y" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "10"; "20" ];
  let s = Table.to_string t in
  Alcotest.(check bool) "has title" true
    (String.length s > 0 && String.sub s 0 7 = "== demo");
  Alcotest.(check bool) "has row" true
    (String.length s > 0
    && String.split_on_char '\n' s |> List.exists (fun l -> l = "10  20"))

let test_table_rejects_bad_row () =
  let t = Table.create ~title:"demo" ~columns:[ "x"; "y" ] in
  Alcotest.(check bool) "raises on arity mismatch" true
    (try
       Table.add_row t [ "1" ];
       false
     with Invalid_argument _ -> true)

let test_table_csv_quotes () =
  let t = Table.create ~title:"q" ~columns:[ "a" ] in
  Table.add_row t [ "x,y" ];
  Table.add_row t [ "pla\"in" ];
  let csv = Table.to_csv t in
  Alcotest.(check bool) "comma cell quoted" true
    (String.split_on_char '\n' csv |> List.exists (fun l -> l = "\"x,y\""));
  Alcotest.(check bool) "quote escaped" true
    (String.split_on_char '\n' csv
    |> List.exists (fun l -> l = "\"pla\"\"in\""))

(* --- json ------------------------------------------------------------- *)

let test_json_print_known () =
  let v =
    Json.Obj
      [
        ("id", Json.Num 3.0);
        ("ok", Json.Bool true);
        ("msg", Json.Str "a\"b\nc");
        ("xs", Json.List [ Json.Null; Json.Num (-0.5) ]);
      ]
  in
  Alcotest.(check string) "compact one-line"
    {|{"id":3,"ok":true,"msg":"a\"b\nc","xs":[null,-0.5]}|}
    (Json.to_string v)

let test_json_nonfinite_prints_null () =
  Alcotest.(check string) "nan" "null" (Json.to_string (Json.Num Float.nan));
  Alcotest.(check string) "inf" "[null]"
    (Json.to_string (Json.List [ Json.Num Float.infinity ]))

let test_json_member () =
  let v = Json.parse {| {"a": 1, "b": [true, null]} |} in
  (match Json.member "b" v with
  | Some (Json.List [ Json.Bool true; Json.Null ]) -> ()
  | _ -> Alcotest.fail "member b");
  Alcotest.(check bool) "absent key" true
    (Option.is_none (Json.member "z" v));
  Alcotest.(check bool) "member of non-object" true
    (Option.is_none (Json.member "a" Json.Null))

let json_gen =
  let open QCheck.Gen in
  let key = string_size ~gen:printable (0 -- 6) in
  let num =
    oneof
      [
        float_range (-1e9) 1e9;
        map float_of_int (int_range (-1000000) 1000000);
      ]
  in
  sized_size (0 -- 3)
  @@ fix (fun self n ->
         let leaf =
           oneof
             [
               return Json.Null;
               map (fun b -> Json.Bool b) bool;
               map (fun x -> Json.Num x) num;
               map (fun s -> Json.Str s) (string_size ~gen:printable (0 -- 8));
             ]
         in
         if n = 0 then leaf
         else
           frequency
             [
               (2, leaf);
               ( 1,
                 map
                   (fun xs -> Json.List xs)
                   (list_size (0 -- 4) (self (n - 1))) );
               ( 1,
                 map
                   (fun kvs -> Json.Obj kvs)
                   (list_size (0 -- 4) (pair key (self (n - 1)))) );
             ])

let prop_json_print_parse_roundtrip =
  QCheck.Test.make ~name:"print/parse round-trip" ~count:300
    (QCheck.make ~print:Json.to_string json_gen)
    (fun v -> Json.equal v (Json.parse (Json.to_string v)))

(* --- lru -------------------------------------------------------------- *)

let test_lru_rejects_bad_capacity () =
  match Lru.create ~capacity:0 with
  | (_ : (int, int) Lru.t) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_lru_evicts_least_recent () =
  let c = Lru.create ~capacity:2 in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  (* Touch "a" so "b" becomes the eviction candidate. *)
  Alcotest.(check (option int)) "a hit" (Some 1) (Lru.find c "a");
  Lru.put c "c" 3;
  Alcotest.(check int) "bounded" 2 (Lru.length c);
  Alcotest.(check bool) "b evicted" false (Lru.mem c "b");
  Alcotest.(check bool) "a kept by recency refresh" true (Lru.mem c "a");
  Alcotest.(check bool) "c present" true (Lru.mem c "c")

let test_lru_put_replaces () =
  let c = Lru.create ~capacity:2 in
  Lru.put c "a" 1;
  Lru.put c "a" 10;
  Alcotest.(check int) "no duplicate entry" 1 (Lru.length c);
  Alcotest.(check (option int)) "latest value wins" (Some 10) (Lru.find c "a")

let test_lru_find_or_add () =
  let c = Lru.create ~capacity:4 in
  let builds = ref 0 in
  let build () =
    incr builds;
    42
  in
  let hit1, v1 = Lru.find_or_add c "k" build in
  let hit2, v2 = Lru.find_or_add c "k" build in
  Alcotest.(check (pair bool int)) "miss builds" (false, 42) (hit1, v1);
  Alcotest.(check (pair bool int)) "hit reuses" (true, 42) (hit2, v2);
  Alcotest.(check int) "built exactly once" 1 !builds;
  Alcotest.(check int) "one hit counted" 1 (Lru.hits c);
  Alcotest.(check int) "one miss counted" 1 (Lru.misses c)

let prop_lru_keeps_most_recent =
  QCheck.Test.make
    ~name:"length bounded and most-recent keys resident" ~count:200
    QCheck.(pair (int_range 1 5) (small_list (int_bound 9)))
    (fun (cap, keys) ->
      let c = Lru.create ~capacity:cap in
      List.iter (fun k -> Lru.put c k (k * 7)) keys;
      (* Most recent [cap] distinct keys (a repeated put refreshes
         recency, so scan newest to oldest). *)
      let recent =
        List.fold_left
          (fun acc k -> if List.mem k acc then acc else acc @ [ k ])
          [] (List.rev keys)
        |> List.filteri (fun i _ -> i < cap)
      in
      Lru.length c <= cap
      && List.for_all (fun k -> Lru.find c k = Some (k * 7)) recent)

let test_lru_peek_leaves_state_alone () =
  (* peek must answer without touching recency or the hit/miss
     counters — it exists so the server can read a parent matrix for
     incremental repair without skewing the cache statistics its tests
     and operators rely on. *)
  let c = Lru.create ~capacity:2 in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  Alcotest.(check (option int)) "peek finds" (Some 1) (Lru.peek c "a");
  Alcotest.(check (option int)) "peek misses silently" None (Lru.peek c "x");
  Alcotest.(check int) "no hits counted" 0 (Lru.hits c);
  Alcotest.(check int) "no misses counted" 0 (Lru.misses c);
  (* "a" was peeked, not touched: it is still the eviction candidate. *)
  Lru.put c "c" 3;
  Alcotest.(check bool) "peek did not refresh recency" false (Lru.mem c "a");
  Alcotest.(check bool) "b survived" true (Lru.mem c "b")

(* --- clock ------------------------------------------------------------ *)

let test_clock_monotone () =
  (* The monotonic clock never runs backwards, even across a sleep —
     the property Unix.gettimeofday cannot promise (NTP steps). *)
  let prev = ref (Clock.now ()) in
  for i = 0 to 999 do
    if i = 500 then Unix.sleepf 0.001;
    let t = Clock.now () in
    if Float.compare t !prev < 0 then
      Alcotest.failf "clock went backwards: %.9f after %.9f" t !prev;
    prev := t
  done

let test_clock_elapsed () =
  let t0 = Clock.now () in
  Unix.sleepf 0.01;
  let dt = Clock.elapsed_s ~since:t0 in
  Alcotest.(check bool) "elapsed covers the sleep" true
    (Float.compare dt 0.01 >= 0);
  Alcotest.(check bool) "elapsed is sane (< 10 s)" true
    (Float.compare dt 10.0 < 0)

(* --- work queue -------------------------------------------------------- *)

(* Deterministic harness: every job records its dispatch order and then
   parks on a shared gate, so a test can fill lanes with the pool
   provably busy, observe which jobs did or did not start, then release
   the gate and drain. With one worker the recorded order IS the
   dequeue order — exactly what the DRR fairness tests need. *)
let parking_pool ~workers ?max_pending:(max_pending = 16) ?tenant_pending
    ?tenant_active () =
  let gate = Atomic.make true in
  let order_mutex = Mutex.create () in
  let order = ref [] in
  let q =
    Work_queue.create ~workers ~max_pending ?tenant_pending ?tenant_active
      (fun name ->
        Mutexes.with_lock order_mutex (fun () -> order := name :: !order);
        while Atomic.get gate do
          Unix.sleepf 0.001
        done)
  in
  let started () =
    Mutexes.with_lock order_mutex (fun () -> List.rev !order)
  in
  (q, gate, started)

let wait_for ?(timeout = 5.0) what pred =
  let deadline = Unix.gettimeofday () +. timeout in
  while
    (not (pred ())) && Float.compare (Unix.gettimeofday ()) deadline < 0
  do
    Unix.sleepf 0.001
  done;
  if not (pred ()) then Alcotest.failf "timed out waiting for %s" what

let check_push msg expected got =
  let name = function
    | Work_queue.Accepted -> "Accepted"
    | Work_queue.Overloaded -> "Overloaded"
    | Work_queue.Stopped -> "Stopped"
  in
  Alcotest.(check string) msg (name expected) (name got)

(* Without tenants every push lands in the shared anonymous lane and
   the pool is the original global FIFO: dispatch order = push order. *)
let test_wq_untenanted_fifo () =
  let q, gate, started = parking_pool ~workers:1 () in
  check_push "first job accepted" Work_queue.Accepted (Work_queue.push q "j0");
  wait_for "worker to pick up j0" (fun () -> Work_queue.active q = 1);
  List.iter
    (fun j -> check_push (j ^ " accepted") Work_queue.Accepted (Work_queue.push q j))
    [ "j1"; "j2"; "j3"; "j4" ];
  Alcotest.(check int) "four jobs pending" 4 (Work_queue.depth q);
  Atomic.set gate false;
  Work_queue.shutdown q;
  Alcotest.(check (list string))
    "FIFO dispatch order"
    [ "j0"; "j1"; "j2"; "j3"; "j4" ]
    (started ());
  Alcotest.(check int) "all completed" 5 (Work_queue.completed q);
  Alcotest.(check int) "none failed" 0 (Work_queue.failures q)

(* tenant_pending bounds one tenant's lane even when the global queue
   has plenty of room, and the rejection is attributed to the lane cap
   in tenant_rejected; other tenants are unaffected. *)
let test_wq_tenant_pending_cap () =
  let q, gate, _started = parking_pool ~workers:1 ~tenant_pending:2 () in
  check_push "occupant accepted" Work_queue.Accepted (Work_queue.push q "busy");
  wait_for "worker to park" (fun () -> Work_queue.active q = 1);
  check_push "a1 accepted" Work_queue.Accepted (Work_queue.push ~tenant:"a" q "a1");
  check_push "a2 accepted" Work_queue.Accepted (Work_queue.push ~tenant:"a" q "a2");
  check_push "a3 hits the lane cap" Work_queue.Overloaded
    (Work_queue.push ~tenant:"a" q "a3");
  Alcotest.(check int) "lane rejection counted" 1 (Work_queue.tenant_rejected q);
  Alcotest.(check int) "also in the global count" 1 (Work_queue.rejected q);
  check_push "tenant b still has room" Work_queue.Accepted
    (Work_queue.push ~tenant:"b" q "b1");
  Atomic.set gate false;
  Work_queue.shutdown q;
  Alcotest.(check int) "accepted jobs all ran" 4 (Work_queue.completed q)

(* tenant_active: a tenant at its executing cap has its lane skipped —
   its queued job stays pending while another tenant's job (pushed
   later) is dispatched past it. *)
let test_wq_tenant_active_cap () =
  let q, gate, started =
    parking_pool ~workers:2 ~tenant_active:1 ()
  in
  check_push "a1 accepted" Work_queue.Accepted (Work_queue.push ~tenant:"a" q "a1");
  wait_for "a1 to start" (fun () -> Work_queue.active q = 1);
  (* Tenant a is at its cap: a2 is accepted but must NOT start even
     though a worker is idle. *)
  check_push "a2 accepted" Work_queue.Accepted (Work_queue.push ~tenant:"a" q "a2");
  check_push "b1 accepted" Work_queue.Accepted (Work_queue.push ~tenant:"b" q "b1");
  wait_for "b1 to start past a2" (fun () -> Work_queue.active q = 2);
  Alcotest.(check (list string)) "a2 skipped while a is capped"
    [ "a1"; "b1" ] (started ());
  Alcotest.(check int) "a2 still pending" 1 (Work_queue.depth q);
  Atomic.set gate false;
  Work_queue.shutdown q;
  Alcotest.(check int) "a2 ran after a completion freed the slot" 3
    (Work_queue.completed q)

(* Deficit-round-robin with unit job cost = per-tenant round-robin: a
   three-deep burst from one tenant does not get three consecutive
   slots while other tenants wait. *)
let test_wq_drr_rotation () =
  let q, gate, started = parking_pool ~workers:1 () in
  check_push "occupant accepted" Work_queue.Accepted (Work_queue.push q "busy");
  wait_for "worker to park" (fun () -> Work_queue.active q = 1);
  List.iter
    (fun (tenant, j) ->
      check_push (j ^ " accepted") Work_queue.Accepted
        (Work_queue.push ~tenant q j))
    [ ("a", "a1"); ("a", "a2"); ("a", "a3"); ("b", "b1"); ("c", "c1") ];
  Atomic.set gate false;
  Work_queue.shutdown q;
  Alcotest.(check (list string))
    "per-tenant round-robin dispatch"
    [ "busy"; "a1"; "b1"; "c1"; "a2"; "a3" ]
    (started ())

(* shutdown drains everything already accepted, then rejects. *)
let test_wq_shutdown_drains () =
  let q, gate, _started =
    parking_pool ~workers:2 ~tenant_pending:4 ~tenant_active:2 ()
  in
  List.iter
    (fun j ->
      check_push (j ^ " accepted") Work_queue.Accepted
        (Work_queue.push ~tenant:"t" q j))
    [ "t1"; "t2"; "t3"; "t4" ];
  Atomic.set gate false;
  Work_queue.shutdown q;
  Alcotest.(check int) "all four drained" 4 (Work_queue.completed q);
  Alcotest.(check int) "nothing left pending" 0 (Work_queue.depth q);
  check_push "push after shutdown" Work_queue.Stopped (Work_queue.push q "late")

let qsuite name tests = (name, List.map (fun t -> QCheck_alcotest.to_alcotest t) tests)

let () =
  Alcotest.run "ppdc_prelude"
    [
      ( "pqueue",
        [
          Alcotest.test_case "pops in priority order" `Quick test_pqueue_orders;
          Alcotest.test_case "peek and clear" `Quick test_pqueue_peek_and_clear;
          Alcotest.test_case "grows past initial capacity" `Quick
            test_pqueue_grows;
        ] );
      ( "pqueue-stable",
        [
          Alcotest.test_case "FIFO on equal keys" `Quick
            test_stable_fifo_on_ties;
          Alcotest.test_case "rejects NaN priorities" `Quick
            test_stable_rejects_nan;
          Alcotest.test_case "snapshot without draining" `Quick
            test_stable_to_sorted_list_preserves;
        ] );
      qsuite "pqueue-properties"
        [ prop_pqueue_sorts; prop_stable_matches_model ];
      ( "union-find",
        [
          Alcotest.test_case "union and find" `Quick test_union_find_basic;
          Alcotest.test_case "self union" `Quick test_union_find_self_union;
        ] );
      qsuite "union-find-properties" [ prop_union_find_transitive ];
      ( "rng",
        [
          Alcotest.test_case "deterministic from seed" `Quick
            test_rng_deterministic;
          Alcotest.test_case "split gives a fresh stream" `Quick
            test_rng_split_independence;
          Alcotest.test_case "draws respect bounds" `Quick test_rng_bounds;
          Alcotest.test_case "rejects non-positive bound" `Quick
            test_rng_int_rejects_bad_bound;
          Alcotest.test_case "shuffle is a permutation" `Quick
            test_rng_shuffle_is_permutation;
          Alcotest.test_case "rough uniformity" `Quick test_rng_uniformity_rough;
        ] );
      ( "stats",
        [
          Alcotest.test_case "known mean and variance" `Quick
            test_stats_known_values;
          Alcotest.test_case "summary of constants" `Quick test_stats_summary_ci;
          Alcotest.test_case "percentiles" `Quick test_stats_percentile;
          Alcotest.test_case "empty input raises" `Quick test_stats_empty_raises;
          Alcotest.test_case "NaN rejected in percentile" `Quick
            test_stats_percentile_rejects_nan;
        ] );
      qsuite "stats-properties" [ prop_stats_mean_bounds ];
      ( "obs",
        [
          Alcotest.test_case "disabled layer is a no-op" `Quick
            test_obs_disabled_is_noop;
          Alcotest.test_case "counters, histograms, spans" `Quick
            test_obs_counters_and_hists;
          Alcotest.test_case "events keep sequence order" `Quick
            test_obs_events_ordered;
          Alcotest.test_case "domain shards merge" `Quick
            test_obs_merges_domain_shards;
          Alcotest.test_case "ndjson round-trip" `Quick
            test_obs_ndjson_roundtrip;
          Alcotest.test_case "json parser rejects garbage" `Quick
            test_obs_json_parser_rejects_garbage;
        ] );
      ( "table",
        [
          Alcotest.test_case "aligned rendering" `Quick test_table_renders;
          Alcotest.test_case "arity checking" `Quick test_table_rejects_bad_row;
          Alcotest.test_case "csv quoting" `Quick test_table_csv_quotes;
        ] );
      ( "json",
        [
          Alcotest.test_case "compact printing" `Quick test_json_print_known;
          Alcotest.test_case "non-finite numbers print as null" `Quick
            test_json_nonfinite_prints_null;
          Alcotest.test_case "member lookup" `Quick test_json_member;
        ] );
      qsuite "json-properties" [ prop_json_print_parse_roundtrip ];
      ( "lru",
        [
          Alcotest.test_case "rejects capacity < 1" `Quick
            test_lru_rejects_bad_capacity;
          Alcotest.test_case "evicts the least recent" `Quick
            test_lru_evicts_least_recent;
          Alcotest.test_case "put replaces in place" `Quick
            test_lru_put_replaces;
          Alcotest.test_case "find_or_add builds once" `Quick
            test_lru_find_or_add;
          Alcotest.test_case "peek leaves recency and counters alone" `Quick
            test_lru_peek_leaves_state_alone;
        ] );
      qsuite "lru-properties" [ prop_lru_keeps_most_recent ];
      ( "clock",
        [
          Alcotest.test_case "monotone nondecreasing" `Quick
            test_clock_monotone;
          Alcotest.test_case "elapsed_s spans a sleep" `Quick
            test_clock_elapsed;
        ] );
      ( "work-queue",
        [
          Alcotest.test_case "untenanted pushes are a global FIFO" `Quick
            test_wq_untenanted_fifo;
          Alcotest.test_case "tenant_pending caps one lane" `Quick
            test_wq_tenant_pending_cap;
          Alcotest.test_case "tenant_active skips a capped lane" `Quick
            test_wq_tenant_active_cap;
          Alcotest.test_case "DRR rotates across tenants" `Quick
            test_wq_drr_rotation;
          Alcotest.test_case "shutdown drains then rejects" `Quick
            test_wq_shutdown_drains;
        ] );
    ]
