(* ppdc-lint fixture tests: run the analysis over the fixture corpus's
   .cmt trees and assert each rule R1–R5 fires on its must-trigger
   module and stays silent on its must-not-trigger (including
   [@ppdc.allow]-suppressed) twin. Also smoke-tests the CLI binary:
   output shape and the non-zero exit code the CI gate relies on. *)

module L = Ppdc_lint_core.Lint_core

(* cwd under `dune runtest` is _build/default/test/lint; the fixture
   library's typed trees live in its .objs/byte dir. *)
let fixtures_dir = "fixtures/.ppdc_lint_fixtures.objs/byte"

let findings =
  (* lib_prefixes [""]: treat the fixtures as library code so the
     lib-gated rules R3/R4 apply. *)
  lazy (L.scan ~lib_prefixes:[ "" ] [ fixtures_dir ])

let in_file name =
  List.filter
    (fun (f : L.finding) -> String.equal (Filename.basename f.file) name)
    (Lazy.force findings)

let test_corpus_present () =
  let ok =
    Sys.file_exists fixtures_dir
    && Array.exists
         (fun f -> Filename.check_suffix f ".cmt")
         (Sys.readdir fixtures_dir)
  in
  Alcotest.(check bool) "fixture .cmt corpus built" true ok

let test_triggers name rule () =
  let fs = in_file name in
  Alcotest.(check bool)
    (Printf.sprintf "%s raises at least one %s" name rule)
    true
    (List.exists (fun (f : L.finding) -> String.equal f.rule rule) fs);
  List.iter
    (fun (f : L.finding) ->
      Alcotest.(check string)
        (Printf.sprintf "%s only raises %s (got %s at line %d)" name rule
           f.rule f.line)
        rule f.rule)
    fs

let test_clean name () =
  let fs = in_file name in
  Alcotest.(check int)
    (Printf.sprintf "%s is clean, got: %s" name
       (String.concat " | " (List.map L.to_string fs)))
    0 (List.length fs)

let test_trigger_counts () =
  (* Pin the exact shape of the must-trigger corpus so a silently
     weakened rule cannot pass by firing once out of many sites. *)
  List.iter
    (fun (name, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "%s finding count" name)
        expected
        (List.length (in_file name)))
    [
      ("r1_bad.ml", 4);
      ("r2_bad.ml", 2);
      ("r3_bad.ml", 2);
      ("r4_bad.ml", 3);
      ("r5_bad.ml", 5);
      ("r6_bad.ml", 2);
      ("r6_cross_b.ml", 1);
      ("r6_shard.ml", 1);
      ("r7_bad.ml", 3);
      ("r8_bad.ml", 4);
    ]

let test_cross_module () =
  (* The r6_cross pair only fires through the summary/fixpoint layer:
     the provider file is clean, the consumer carries exactly one R6
     whose message names the witness chain into the other module. *)
  Alcotest.(check int) "provider file clean" 0
    (List.length (in_file "r6_cross_a.ml"));
  match in_file "r6_cross_b.ml" with
  | [ f ] ->
      Alcotest.(check string) "rule is R6" "R6" f.rule;
      let contains needle hay =
        let n = String.length needle in
        let rec go i =
          i + n <= String.length hay
          && (String.equal (String.sub hay i n) needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "witness names the cross-module callee: %s" f.msg)
        true
        (contains "R6_cross_a.take_a" f.msg)
  | fs ->
      Alcotest.fail
        (Printf.sprintf "expected exactly one cross-module finding, got %d"
           (List.length fs))

let test_to_string () =
  match in_file "r1_bad.ml" with
  | [] -> Alcotest.fail "expected at least one r1_bad finding"
  | f :: _ ->
      let s = L.to_string f in
      Alcotest.(check bool)
        (Printf.sprintf "finding renders as file:line:col [rule] msg: %s" s)
        true
        (String.length s > 0
        && Filename.basename f.file = "r1_bad.ml"
        && f.line > 0
        &&
        let marker = Printf.sprintf ":%d:%d [R1-poly-compare] " f.line f.col in
        let rec contains i =
          if i + String.length marker > String.length s then false
          else if String.equal (String.sub s i (String.length marker)) marker
          then true
          else contains (i + 1)
        in
        contains 0)

let test_cli () =
  let exe = "../../tools/lint/ppdc_lint.exe" in
  Alcotest.(check bool) "ppdc-lint binary built" true (Sys.file_exists exe);
  let out = Filename.temp_file "ppdc_lint_test" ".out" in
  let code =
    Sys.command
      (Printf.sprintf "%s -q --lib-prefix '' %s > %s 2>/dev/null"
         (Filename.quote exe) (Filename.quote fixtures_dir)
         (Filename.quote out))
  in
  Alcotest.(check int) "exit code 1 when findings exist" 1 code;
  let ic = open_in out in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove out;
  let lines = List.rev !lines in
  Alcotest.(check int) "CLI prints one line per finding"
    (List.length (Lazy.force findings))
    (List.length lines);
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "finding line mentions a rule tag: %s" line)
        true
        (List.exists
           (fun (id, slug) ->
             let tag = Printf.sprintf "[%s-%s]" id slug in
             let rec contains i =
               if i + String.length tag > String.length line then false
               else if
                 String.equal (String.sub line i (String.length tag)) tag
               then true
               else contains (i + 1)
             in
             contains 0)
           L.rule_slugs))
    lines;
  (* And the gate direction: an empty corpus exits 0. *)
  let empty = Filename.temp_file "ppdc_lint_empty" ".d" in
  Sys.remove empty;
  Sys.mkdir empty 0o755;
  let code_clean =
    Sys.command
      (Printf.sprintf "%s -q %s > /dev/null 2>&1" (Filename.quote exe)
         (Filename.quote empty))
  in
  Sys.rmdir empty;
  Alcotest.(check int) "exit code 0 when clean" 0 code_clean

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains needle hay =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay
    && (String.equal (String.sub hay i n) needle || go (i + 1))
  in
  go 0

let count_occurrences needle hay =
  let n = String.length needle in
  let rec go i acc =
    if i + n > String.length hay then acc
    else if String.equal (String.sub hay i n) needle then go (i + n) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let exe = "../../tools/lint/ppdc_lint.exe"

let test_sarif () =
  let out = Filename.temp_file "ppdc_lint_sarif" ".sarif" in
  let code =
    Sys.command
      (Printf.sprintf
         "%s -q --lib-prefix '' --sarif-out %s %s > /dev/null 2>&1"
         (Filename.quote exe) (Filename.quote out)
         (Filename.quote fixtures_dir))
  in
  Alcotest.(check int) "text gate still exits 1" 1 code;
  let sarif = read_file out in
  Sys.remove out;
  Alcotest.(check bool) "declares SARIF 2.1.0" true
    (contains {|"version":"2.1.0"|} sarif);
  Alcotest.(check bool) "references the 2.1.0 schema" true
    (contains "sarif-schema-2.1.0.json" sarif);
  (* one result per finding, one reusable rule descriptor per R-id *)
  Alcotest.(check int) "one result object per finding"
    (List.length (Lazy.force findings))
    (count_occurrences {|"ruleId":|} sarif);
  List.iter
    (fun (id, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "rule descriptor for %s present" id)
        true
        (contains (Printf.sprintf {|"id":"%s"|} id) sarif))
    L.rule_slugs

let test_baseline () =
  let base = Filename.temp_file "ppdc_lint_base" ".baseline" in
  (* Recording the corpus as a baseline must succeed and exit 0 even
     though the corpus is full of findings... *)
  let code_write =
    Sys.command
      (Printf.sprintf
         "%s -q --lib-prefix '' --write-baseline %s %s > /dev/null 2>&1"
         (Filename.quote exe) (Filename.quote base)
         (Filename.quote fixtures_dir))
  in
  Alcotest.(check int) "write-baseline exits 0" 0 code_write;
  Alcotest.(check bool) "baseline is non-empty" true
    (String.length (read_file base) > 0);
  (* ... and gating against that baseline must then pass: nothing new. *)
  let code_gate =
    Sys.command
      (Printf.sprintf
         "%s -q --lib-prefix '' --baseline %s %s > /dev/null 2>&1"
         (Filename.quote exe) (Filename.quote base)
         (Filename.quote fixtures_dir))
  in
  Alcotest.(check int) "baselined corpus gates clean" 0 code_gate;
  (* An emptied baseline reinstates the failure. *)
  let oc = open_out base in
  close_out oc;
  let code_empty =
    Sys.command
      (Printf.sprintf
         "%s -q --lib-prefix '' --baseline %s %s > /dev/null 2>&1"
         (Filename.quote exe) (Filename.quote base)
         (Filename.quote fixtures_dir))
  in
  Sys.remove base;
  Alcotest.(check int) "empty baseline exits 1 again" 1 code_empty;
  (* A missing baseline file is a usage error, not a silent pass. *)
  let code_missing =
    Sys.command
      (Printf.sprintf
         "%s -q --lib-prefix '' --baseline %s %s > /dev/null 2>&1"
         (Filename.quote exe)
         (Filename.quote (base ^ ".does-not-exist"))
         (Filename.quote fixtures_dir))
  in
  Alcotest.(check int) "missing baseline exits 2" 2 code_missing

let () =
  Alcotest.run "ppdc-lint"
    [
      ("corpus", [ Alcotest.test_case "cmt corpus present" `Quick
                     test_corpus_present ]);
      ( "must-trigger",
        [
          Alcotest.test_case "R1 poly-compare" `Quick
            (test_triggers "r1_bad.ml" "R1");
          Alcotest.test_case "R2 float-equality" `Quick
            (test_triggers "r2_bad.ml" "R2");
          Alcotest.test_case "R3 quadratic-list" `Quick
            (test_triggers "r3_bad.ml" "R3");
          Alcotest.test_case "R4 domain-unsafe-global" `Quick
            (test_triggers "r4_bad.ml" "R4");
          Alcotest.test_case "R5 sentinel-escape" `Quick
            (test_triggers "r5_bad.ml" "R5");
          Alcotest.test_case "R6 lock-order" `Quick
            (test_triggers "r6_bad.ml" "R6");
          Alcotest.test_case "R7 unsafe-locking" `Quick
            (test_triggers "r7_bad.ml" "R7");
          Alcotest.test_case "R8 parallel-purity" `Quick
            (test_triggers "r8_bad.ml" "R8");
          Alcotest.test_case "R6 cross-module via summaries" `Quick
            test_cross_module;
          Alcotest.test_case "R6 sharded-registry order via helper" `Quick
            (test_triggers "r6_shard.ml" "R6");
          Alcotest.test_case "exact counts" `Quick test_trigger_counts;
        ] );
      ( "must-not-trigger",
        [
          Alcotest.test_case "R1 fixed + suppressed" `Quick
            (test_clean "r1_ok.ml");
          Alcotest.test_case "R2 fixed + suppressed" `Quick
            (test_clean "r2_ok.ml");
          Alcotest.test_case "R3 fixed + suppressed" `Quick
            (test_clean "r3_ok.ml");
          Alcotest.test_case "R4 annotated + suppressed" `Quick
            (test_clean "r4_ok.ml");
          Alcotest.test_case "R5 documented + suppressed" `Quick
            (test_clean "r5_ok.ml");
          Alcotest.test_case "R6 ordered + suppressed" `Quick
            (test_clean "r6_ok.ml");
          Alcotest.test_case "R7 structured + suppressed" `Quick
            (test_clean "r7_ok.ml");
          Alcotest.test_case "R8 pure + exempted + suppressed" `Quick
            (test_clean "r8_ok.ml");
        ] );
      ( "cli",
        [
          Alcotest.test_case "rendering" `Quick test_to_string;
          Alcotest.test_case "exit codes and output" `Quick test_cli;
          Alcotest.test_case "sarif emitter" `Quick test_sarif;
          Alcotest.test_case "baseline workflow" `Quick test_baseline;
        ] );
    ]
