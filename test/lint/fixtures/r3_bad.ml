(* Must trigger R3-quadratic-list: List.nth in library code (the
   Stroll_dp level-store bug was exactly this inside a loop). *)

let level (store : float list) i = List.nth store i

let total (store : float list) =
  let acc = ref 0.0 in
  for i = 0 to List.length store - 1 do
    acc := !acc +. List.nth store i
  done;
  !acc
