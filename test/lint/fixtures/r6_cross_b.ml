(* Consumer half of the cross-module R6 fixture: holds the inner class
   and calls into [R6_cross_a.take_a], which acquires the outer class —
   an inversion of the order declared in r6_cross_a.ml, visible only
   through the cross-file summary fixpoint.
   Expected: exactly 1 R6 finding. *)

module Mutexes = struct
  let with_lock m f =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f
end

let mutex_b = Mutex.create () [@@ppdc.guards "r6x_b"]

let bad () = Mutexes.with_lock mutex_b (fun () -> R6_cross_a.take_a ())
