(* Must NOT trigger R1: explicit float comparators, int instantiations,
   and one deliberate polymorphic sort suppressed with [@ppdc.allow]. *)

let sort_rates (rates : float list) = List.sort Float.compare rates

let worst (pairs : (float * int) list) =
  List.sort (fun (a, _) (b, _) -> Float.compare b a) pairs

let has_rate (r : float) rates = List.exists (Float.equal r) rates

let cheaper (a : float) b = Float.min a b

(* compare at int is fine: ints have no NaN. *)
let sort_ids (ids : int list) = List.sort compare ids

let sort_raw (rates : float list) =
  (List.sort compare rates [@ppdc.allow "R1"])
