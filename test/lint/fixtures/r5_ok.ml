(* Must NOT trigger R5: the sentinel contract is documented in the mli
   with [@@ppdc.sentinel], the helper is not exported, the raise-instead
   variant returns no sentinel, and one site is explicitly allowed. *)

let mean_rate = function
  | [] -> nan
  | rates -> List.fold_left ( +. ) 0.0 rates /. float_of_int (List.length rates)

(* Not exported by the mli: internal sentinels are the caller's business. *)
let unexported_default () = infinity

let min_cost = function
  | [] -> invalid_arg "R5_ok.min_cost: empty"
  | c :: _ -> c +. unexported_default () *. 0.0

let fallback_rate empty = if empty then (nan [@ppdc.allow "R5"]) else 0.0

(* Empty-literal returns that must NOT trigger the ambiguous-empty
   check: an option makes "no route" distinct from "empty route"; the
   always-empty function has no non-empty path to be confused with;
   one contract is documented in the mli; one site is allowed. *)
let route reachable stops = if reachable then Some (0 :: stops) else None

let no_stops () = []

let slots_of ok = if ok then [| 1; 2 |] else [||]

let stale_entries fresh = if fresh then ([] [@ppdc.allow "R5"]) else [ 1 ]
