(* Must trigger R5-sentinel-escape: functions exported by the mli can
   return nan / infinity / a negative-index array sentinel, and the mli
   does not document it with [@@ppdc.sentinel] (the solve_n2 bug). *)

let mean_rate = function
  | [] -> nan
  | rates -> List.fold_left ( +. ) 0.0 rates /. float_of_int (List.length rates)

let best_pair feasible = if feasible then [| 0; 1 |] else [| -1; -1 |]

let min_cost = function [] -> infinity | c :: _ -> c

(* Ambiguous empty sentinel: [] on the unreachable path is
   indistinguishable from a legitimately empty result (the old
   path_from_pred shape). *)
let route reachable stops = if reachable then 0 :: stops else []

let slots_of ok = if ok then [| 1; 2 |] else [||]
