(* Must trigger R1-poly-compare: the polymorphic compare family
   instantiated at float (or a type containing float). *)

let sort_rates (rates : float list) = List.sort compare rates

let worst (pairs : (float * int) list) =
  List.sort (fun (a, _) (b, _) -> compare b a) pairs

let has_rate (r : float) rates = List.mem r rates

let cheaper (a : float) b = min a b
