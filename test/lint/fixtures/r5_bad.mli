val mean_rate : float list -> float
val best_pair : bool -> int array
val min_cost : float list -> float
val route : bool -> int list -> int list
val slots_of : bool -> int array
