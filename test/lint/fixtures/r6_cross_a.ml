(* Provider half of the cross-module R6 fixture: declares the order and
   owns the outer-class mutex. [r6_cross_b.ml] inverts the order by
   calling [take_a] under its own (inner-class) lock — a violation no
   single-file analysis can see. This file itself is clean. *)

[@@@ppdc.lock_order "r6x_a r6x_b"]

module Mutexes = struct
  let with_lock m f =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f
end

let mutex_a = Mutex.create () [@@ppdc.guards "r6x_a"]
let take_a () = Mutexes.with_lock mutex_a (fun () -> ())
