(* R8 must-trigger: impure closures handed to Parallel entry points —
   a write to captured state not keyed by the loop variable, a
   lock acquisition, and a call whose summary transitively locks.
   Expected: exactly 4 R8 findings. *)

module Parallel = struct
  let parallel_for n f =
    for i = 0 to n - 1 do
      f i
    done
end

module Mutexes = struct
  let with_lock m f =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f
end

(* Captured ref: every domain races on [total]. *)
let sum_ref n =
  let total = ref 0 in
  Parallel.parallel_for n (fun i -> total := !total + i);
  !total

(* Captured array written at a fixed index: last writer wins. *)
let last_write n =
  let cell = Array.make 1 0 in
  Parallel.parallel_for n (fun _i -> cell.(0) <- 1);
  cell.(0)

(* Taking a lock inside the closure serializes the pool. *)
let locking n =
  let m = Mutex.create () in
  Parallel.parallel_for n (fun _i ->
      Mutex.lock m;
      Mutex.unlock m)

let tally_mutex = Mutex.create () [@@ppdc.guards "r8b_tally"]
let tally = ref 0
[@@ppdc.domain_safe "incremented under tally_mutex only"]

let bump () = Mutexes.with_lock tally_mutex (fun () -> incr tally)

(* The lock hides inside a callee: only the summary can see it. *)
let hidden_lock n = Parallel.parallel_for n (fun _i -> bump ())
