(* R6 probe for the engine's sharded-registry lock order: the "shard"
   class is acquired inside a helper carrying [@@ppdc.calls_under], the
   shape Ppdc_server uses for Registry.find/put, so this pins that R6
   sees through the helper rather than only through a literal
   with_lock. One inversion (cache held, then shard via the helper)
   must fire; the declared shard -> session -> cache nesting and an
   allow-waived inversion must stay silent.
   Expected: exactly 1 R6 finding. *)

[@@@ppdc.lock_order "shard session cache"]

module Mutexes = struct
  let with_lock m f =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f
end

type t = {
  shard_m : Mutex.t; [@ppdc.guards "shard"]
  session_m : Mutex.t; [@ppdc.guards "session"]
  cache_m : Mutex.t; [@ppdc.guards "cache"]
}

(* The engine's registry shape: the shard lock lives behind a helper
   whose summary advertises the class it holds. *)
let with_shard t f = Mutexes.with_lock t.shard_m f [@@ppdc.calls_under "shard"]

(* Must trigger: the cache lock is held while the helper re-enters the
   shard class — the inversion is only visible through with_shard's
   summary. *)
let inverted t = Mutexes.with_lock t.cache_m (fun () -> with_shard t (fun () -> ()))

(* Must not trigger: the declared order, all three classes nested the
   right way round through the same helper. *)
let ordered t =
  with_shard t (fun () ->
      Mutexes.with_lock t.session_m (fun () ->
          Mutexes.with_lock t.cache_m (fun () -> ())))

(* A deliberate, documented inversion stays silent under an allow. *)
let waived t =
  Mutexes.with_lock t.session_m (fun () ->
      (with_shard t (fun () -> ()) [@ppdc.allow "R6"]))
