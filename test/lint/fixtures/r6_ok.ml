(* R6 must-not-trigger: nesting that follows the declared order, plus
   an inversion explicitly suppressed with [@ppdc.allow "R6"]. *)

[@@@ppdc.lock_order "r6o_outer r6o_inner"]

module Mutexes = struct
  let with_lock m f =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f
end

let outer_mutex = Mutex.create () [@@ppdc.guards "r6o_outer"]
let inner_mutex = Mutex.create () [@@ppdc.guards "r6o_inner"]

(* Correct direction: outer first, inner inside. *)
let nested () =
  Mutexes.with_lock outer_mutex (fun () ->
      Mutexes.with_lock inner_mutex (fun () -> ()))

(* Sequential (non-nested) acquisitions are always fine. *)
let sequential () =
  Mutexes.with_lock inner_mutex (fun () -> ());
  Mutexes.with_lock outer_mutex (fun () -> ())

(* A deliberate, documented inversion stays silent under an allow. *)
let waived () =
  Mutexes.with_lock inner_mutex (fun () ->
      (Mutexes.with_lock outer_mutex (fun () -> ()) [@ppdc.allow "R6"]))
