(* Must NOT trigger R3: random access through arrays, structural list
   iteration, and one suppressed legacy access. *)

let level (store : float array) i = store.(i)
let total (store : float list) = List.fold_left ( +. ) 0.0 store

let legacy_level (store : float list) i =
  (List.nth store i [@ppdc.allow "R3"])
