(* Must NOT trigger R4: documented discipline, sanctioned concurrency
   primitives, function-local mutability, and an explicit allow. *)

let cache : (string, int) Hashtbl.t = Hashtbl.create 16
[@@ppdc.domain_safe "fixture: all access under an imaginary mutex"]

let cache_mutex = Mutex.create ()
let hits = Atomic.make 0

(* Mutable state created inside a function never outlives the call. *)
let local_sum n =
  let buf = Array.make n 0.0 in
  Array.fold_left ( +. ) 0.0 buf

let legacy_counter = ref 0 [@@ppdc.allow "R4"]
