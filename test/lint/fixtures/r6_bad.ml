(* R6 must-trigger: lock-order inversions against the declared
   [@@@ppdc.lock_order], one direct and one hidden behind a call (the
   second is only visible through the summary/fixpoint layer).
   Expected: exactly 2 R6 findings. *)

[@@@ppdc.lock_order "r6b_outer r6b_inner"]

module Mutexes = struct
  let with_lock m f =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f
end

let outer_mutex = Mutex.create () [@@ppdc.guards "r6b_outer"]
let inner_mutex = Mutex.create () [@@ppdc.guards "r6b_inner"]

(* Direct inversion: acquires the outer class while holding the inner. *)
let direct () =
  Mutexes.with_lock inner_mutex (fun () ->
      Mutexes.with_lock outer_mutex (fun () -> ()))

let take_outer () = Mutexes.with_lock outer_mutex (fun () -> ())

(* Same inversion, but the outer acquisition happens inside a callee —
   only the transitive summary of [take_outer] can see it. *)
let via_call () = Mutexes.with_lock inner_mutex (fun () -> take_outer ())
