(* R7 must-not-trigger: exception-safe locking shapes, plus an explicit
   [@ppdc.allow "R7"] waiver. *)

module Mutexes = struct
  let with_lock m f =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f
end

let m = Mutex.create ()

(* The blessed helper. *)
let structured f = Mutexes.with_lock m f

(* Fun.protect directly: releases on every path. *)
let protect_shape f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* A manual span is fine when everything before the unlock is provably
   non-raising. *)
let counter = ref 0 [@@ppdc.domain_safe "only touched while holding m"]

let manual_nonraising () =
  Mutex.lock m;
  counter := !counter + 1;
  Mutex.unlock m

(* A deliberate bare lock (e.g. handing the mutex to a caller that
   promises to unlock) stays silent under an allow. *)
let handoff f =
  (Mutex.lock m [@ppdc.allow "R7"]);
  let x = f () in
  Mutex.unlock m;
  x
