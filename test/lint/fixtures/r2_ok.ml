(* Must NOT trigger R2: Float.equal, int equality, and one deliberate
   exact comparison suppressed with [@ppdc.allow]. *)

let is_idle (load : float) = Float.equal load 0.0
let changed (a : float) (b : float) = not (Float.equal a b)
let same_id (a : int) (b : int) = a = b
(* Note the extra parens: in [(a = b [@attr])] the attribute would bind
   to [b] alone, leaving the [=] occurrence unsuppressed. *)
let exact_hit (a : float) (b : float) = ((a = b) [@ppdc.allow "R2"])
