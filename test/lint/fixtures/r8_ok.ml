(* R8 must-not-trigger: the blessed parallel shapes — writes keyed by
   the loop variable, closure-local state, an exempted callee, and an
   explicit [@ppdc.allow "R8"] waiver. *)

module Parallel = struct
  let parallel_for n f =
    for i = 0 to n - 1 do
      f i
    done
end

module Mutexes = struct
  let with_lock m f =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f
end

(* Each iteration owns its slot: indexed by the loop variable. *)
let fill n =
  let slots = Array.make (max n 1) 0 in
  Parallel.parallel_for n (fun i -> slots.(i) <- 2 * i);
  slots

(* State created inside the closure is private to the iteration. *)
let local_state n =
  Parallel.parallel_for n (fun i ->
      let acc = ref 0 in
      acc := !acc + i;
      ignore !acc)

let note_mutex = Mutex.create ()

(* A callee marked [@@ppdc.domain_safe] is exempt from the roll-up —
   the same mechanism that blesses Obs.with_shard in the prelude. *)
let note _i = Mutexes.with_lock note_mutex (fun () -> ())
[@@ppdc.domain_safe "uncontended, never held across user code"]

let instrumented n = Parallel.parallel_for n (fun i -> note i)

(* A deliberate racy write stays silent under an allow. *)
let waived n =
  let total = ref 0 in
  Parallel.parallel_for n (fun i -> (total := !total + i) [@ppdc.allow "R8"]);
  !total
