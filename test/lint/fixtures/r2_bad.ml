(* Must trigger R2-float-equality: =/<> at type float. *)

let is_idle (load : float) = load = 0.0
let changed (a : float) (b : float) = a <> b
