val mean_rate : float list -> float
[@@ppdc.sentinel "returns nan on an empty rate list"]

val min_cost : float list -> float
val fallback_rate : bool -> float
