val mean_rate : float list -> float
[@@ppdc.sentinel "returns nan on an empty rate list"]

val min_cost : float list -> float
val fallback_rate : bool -> float
val route : bool -> int list -> int list option
val no_stops : unit -> int list
val slots_of : bool -> int array
[@@ppdc.sentinel "the empty array means the slot table is closed"]
val stale_entries : bool -> int list
