(* R7 must-trigger: locks whose unlock is missing or unreachable on the
   exception path. Expected: exactly 3 R7 findings. *)

let m = Mutex.create ()

(* No unlock at all: if the caller forgets, the mutex leaks. *)
let missing_unlock f =
  Mutex.lock m;
  f ()

(* The unlock exists but [f ()] can raise before reaching it. *)
let raising_span f =
  Mutex.lock m;
  let x = f () in
  Mutex.unlock m;
  x

(* A lock taken on one branch only can never be matched to an unlock. *)
let conditional_lock b =
  if b then Mutex.lock m
