(* Must trigger R4-domain-unsafe-global: top-level mutable state with
   no [@@ppdc.domain_safe] contract (the Runner cache bug). *)

let cache : (string, int) Hashtbl.t = Hashtbl.create 16
let hits = ref 0
let scratch = Array.make 8 0.0
