(* Differential oracle for the flat (CSR + Bigarray) graph stack.

   The adjacency representation, the all-pairs storage layout, and the
   dial shortest-path engine were all replaced at once; this suite pins
   each replacement against an independent reference:

   - [Legacy]: the old nested [(int * float) array array] adjacency and
     a scan-minimum Dijkstra with the same tie-break discipline. The
     CSR engines must reproduce its rows bit-for-bit.
   - digest: the graph digest serializes the abstract structure only,
     so it must not move when the adjacency representation does — the
     RPC server's cost-matrix cache keys depend on that.
   - solvers: Placement_dp / Placement_opt / Mpareto must be
     bit-identical whether the cost matrix was computed by the heap or
     the dial engine, at 1 and at 4 domains. *)

module Graph = Ppdc_topology.Graph
module Shortest_paths = Ppdc_topology.Shortest_paths
module Cost_matrix = Ppdc_topology.Cost_matrix
module Fat_tree = Ppdc_topology.Fat_tree
module Random_topology = Ppdc_topology.Random_topology
module Rng = Ppdc_prelude.Rng
module Parallel = Ppdc_prelude.Parallel
module Workload = Ppdc_traffic.Workload
module Flow = Ppdc_traffic.Flow
open Ppdc_core

let with_domains d f =
  let prev = Parallel.domain_count () in
  Parallel.set_domains d;
  Fun.protect ~finally:(fun () -> Parallel.set_domains prev) f

(* --- the legacy oracle ---------------------------------------------------- *)

module Legacy = struct
  (* Nested adjacency, reconstructed from the abstract edge list the
     same way the pre-CSR [Graph.make] built it. *)
  type t = { n : int; adj : (int * float) list array }

  let of_graph g =
    let n = Graph.num_nodes g in
    let adj = Array.make n [] in
    List.iter
      (fun (u, v, w) ->
        adj.(u) <- (v, w) :: adj.(u);
        adj.(v) <- (u, w) :: adj.(v))
      (Graph.edges g);
    { n; adj }

  (* Scan-minimum Dijkstra — O(n²), no queue at all, so its settle
     order is transparently "smallest distance, then smallest index".
     Same relaxation discipline as the production engines: strict
     improvement rewrites dist/pred; an equal-cost candidate only pulls
     pred towards the lower-numbered predecessor while the target is
     unsettled. Identical float arithmetic (one [+.] per relaxation)
     means the rows must agree bit-for-bit, not just within epsilon. *)
  let dijkstra t ~src =
    let dist = Array.make t.n infinity in
    let pred = Array.make t.n (-1) in
    let settled = Array.make t.n false in
    dist.(src) <- 0.0;
    pred.(src) <- src;
    let continue = ref true in
    while !continue do
      let u = ref (-1) in
      for v = 0 to t.n - 1 do
        if
          (not settled.(v))
          && Float.is_finite dist.(v)
          && (!u = -1 || dist.(v) < dist.(!u))
        then u := v
      done;
      if !u = -1 then continue := false
      else begin
        let u = !u in
        settled.(u) <- true;
        List.iter
          (fun (v, w) ->
            let candidate = dist.(u) +. w in
            if candidate < dist.(v) then begin
              dist.(v) <- candidate;
              pred.(v) <- u
            end
            else if
              Float.equal candidate dist.(v)
              && (not settled.(v))
              && u < pred.(v)
            then pred.(v) <- u)
          t.adj.(u)
      end
    done;
    (dist, pred)
end

(* --- graph structure parity ----------------------------------------------- *)

let sorted_neighbors l =
  List.sort compare (List.map (fun (v, w) -> (v, Int64.bits_of_float w)) l)

let random_graph seed =
  let rng = Rng.create seed in
  let weighted = Rng.int rng 2 = 0 in
  let rt =
    Random_topology.build
      ?weight:
        (if weighted then Some (fun () -> Rng.uniform rng ~lo:0.25 ~hi:4.0)
         else None)
      ~rng
      ~num_switches:(3 + Rng.int rng 10)
      ~extra_edges:(Rng.int rng 12)
      ~hosts_per_switch:(1 + Rng.int rng 3)
      ()
  in
  rt.graph

let prop_csr_matches_nested_adjacency =
  QCheck.Test.make ~name:"CSR adjacency = nested-list adjacency" ~count:100
    QCheck.(int_bound 100_000)
    (fun seed ->
      let g = random_graph seed in
      let legacy = Legacy.of_graph g in
      let ok = ref true in
      for u = 0 to Graph.num_nodes g - 1 do
        let csr = ref [] in
        Graph.iter_neighbors g u (fun v w -> csr := (v, w) :: !csr);
        if sorted_neighbors !csr <> sorted_neighbors legacy.adj.(u) then
          ok := false;
        if Graph.degree g u <> List.length legacy.adj.(u) then ok := false
      done;
      !ok)

let test_digest_known_value () =
  (* Captured before the CSR refactor; the digest is a function of the
     abstract structure and must never move with the representation
     (the RPC server's LRU is keyed by it). *)
  let ft = Fat_tree.build 4 in
  Alcotest.(check string) "k=4 fat-tree digest frozen"
    "6dfc41f3ad6d4a864b9fb1c23a372841"
    (Graph.digest ft.graph)

let prop_digest_matches_reference_serialization =
  (* Recompute the documented serialization from the abstract accessors
     only — independent of any internal layout. *)
  QCheck.Test.make ~name:"digest = hash of canonical serialization" ~count:50
    QCheck.(int_bound 100_000)
    (fun seed ->
      let g = random_graph seed in
      let b = Buffer.create 256 in
      Buffer.add_string b "ppdc.graph/1|";
      Buffer.add_string b (string_of_int (Graph.num_nodes g));
      Buffer.add_char b '|';
      for v = 0 to Graph.num_nodes g - 1 do
        Buffer.add_char b (if Graph.is_host g v then 'h' else 's')
      done;
      List.iter
        (fun (u, v, w) ->
          Buffer.add_string b
            (Printf.sprintf "|%d,%d,%Ld" u v (Int64.bits_of_float w)))
        (List.sort compare
           (List.map
              (fun (u, v, w) -> (min u v, max u v, w))
              (Graph.edges g)));
      Digest.to_hex (Digest.string (Buffer.contents b)) = Graph.digest g)

(* --- shortest-path parity -------------------------------------------------- *)

let rows_equal ~n (dist_a, pred_a) (dist_b, pred_b) =
  let ok = ref true in
  for v = 0 to n - 1 do
    if Int64.bits_of_float dist_a.(v) <> Int64.bits_of_float dist_b.(v) then
      ok := false;
    if pred_a.(v) <> pred_b.(v) then ok := false
  done;
  !ok

let prop_dijkstra_matches_legacy =
  QCheck.Test.make ~name:"CSR dijkstra rows = legacy oracle rows (bit-exact)"
    ~count:75
    QCheck.(int_bound 100_000)
    (fun seed ->
      let g = random_graph seed in
      let legacy = Legacy.of_graph g in
      let n = Graph.num_nodes g in
      let ok = ref true in
      for src = 0 to n - 1 do
        let reference = Legacy.dijkstra legacy ~src in
        if not (rows_equal ~n (Shortest_paths.dijkstra g ~src) reference) then
          ok := false
      done;
      !ok)

let prop_dial_matches_heap =
  QCheck.Test.make ~name:"dial rows = heap rows on integral weights"
    ~count:75
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let rt =
        Random_topology.build
          ~weight:(fun () -> float_of_int (1 + Rng.int rng 7))
          ~rng
          ~num_switches:(3 + Rng.int rng 10)
          ~extra_edges:(Rng.int rng 12)
          ~hosts_per_switch:(1 + Rng.int rng 2)
          ()
      in
      let g = rt.graph in
      let n = Graph.num_nodes g in
      (match Graph.integral_weights g with
      | Some _ -> ()
      | None -> QCheck.Test.fail_report "integral graph not detected");
      let ok = ref true in
      for src = 0 to n - 1 do
        if
          not
            (rows_equal ~n
               (Shortest_paths.dijkstra ~algo:Shortest_paths.Dial g ~src)
               (Shortest_paths.dijkstra ~algo:Shortest_paths.Heap g ~src))
        then ok := false
      done;
      !ok)

let test_cost_matrix_engine_parity () =
  let ft = Fat_tree.build 4 in
  let cm_dial = Cost_matrix.compute ~algo:Shortest_paths.Dial ft.graph in
  let cm_heap = Cost_matrix.compute ~algo:Shortest_paths.Heap ft.graph in
  let n = Cost_matrix.num_nodes cm_dial in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if
        Int64.bits_of_float (Cost_matrix.cost cm_dial u v)
        <> Int64.bits_of_float (Cost_matrix.cost cm_heap u v)
      then
        Alcotest.failf "cost (%d,%d): dial %h vs heap %h" u v
          (Cost_matrix.cost cm_dial u v)
          (Cost_matrix.cost cm_heap u v);
      if Cost_matrix.path cm_dial ~src:u ~dst:v <> Cost_matrix.path cm_heap ~src:u ~dst:v
      then Alcotest.failf "path (%d,%d) differs between engines" u v
    done
  done

(* --- solver parity: dial-built vs heap-built cost matrix ------------------- *)

type solver_bundle = {
  dp : Placement_dp.outcome;
  opt : Placement_opt.outcome;
  mp : Mpareto.outcome;
}

let solve_bundle ~algo ~domains =
  with_domains domains (fun () ->
      let ft = Fat_tree.build 4 in
      let cm = Cost_matrix.compute ~algo ft.graph in
      let rng = Rng.create 11 in
      let flows = Workload.generate_on_fat_tree ~rng ~l:10 ft in
      let problem = Problem.make ~cm ~flows ~n:3 () in
      let rates = Flow.base_rates flows in
      let dp = Placement_dp.solve problem ~rates () in
      let opt = Placement_opt.solve problem ~rates () in
      let mp =
        Mpareto.migrate problem ~rates ~mu:50.0 ~current:dp.placement ()
      in
      { dp; opt; mp })

let check_bundles name a b =
  Alcotest.(check (array int)) (name ^ " dp placement") a.dp.placement
    b.dp.placement;
  Alcotest.(check (float 0.0)) (name ^ " dp cost") a.dp.cost b.dp.cost;
  Alcotest.(check (float 0.0))
    (name ^ " dp objective") a.dp.objective b.dp.objective;
  Alcotest.(check (array int)) (name ^ " opt placement") a.opt.placement
    b.opt.placement;
  Alcotest.(check (float 0.0)) (name ^ " opt cost") a.opt.cost b.opt.cost;
  Alcotest.(check (array int)) (name ^ " mpareto migration") a.mp.migration
    b.mp.migration;
  Alcotest.(check (float 0.0))
    (name ^ " mpareto total") a.mp.total_cost b.mp.total_cost;
  Alcotest.(check (float 0.0))
    (name ^ " mpareto migration cost") a.mp.migration_cost b.mp.migration_cost;
  Alcotest.(check (float 0.0))
    (name ^ " mpareto comm cost") a.mp.comm_cost b.mp.comm_cost;
  Alcotest.(check int) (name ^ " mpareto moved") a.mp.moved b.mp.moved

let test_solvers_engine_parity () =
  let heap1 = solve_bundle ~algo:Shortest_paths.Heap ~domains:1 in
  let dial1 = solve_bundle ~algo:Shortest_paths.Dial ~domains:1 in
  let dial4 = solve_bundle ~algo:Shortest_paths.Dial ~domains:4 in
  let heap4 = solve_bundle ~algo:Shortest_paths.Heap ~domains:4 in
  check_bundles "heap1-vs-dial1" heap1 dial1;
  check_bundles "heap1-vs-dial4" heap1 dial4;
  check_bundles "heap1-vs-heap4" heap1 heap4

let qsuite name tests =
  (name, List.map (fun t -> QCheck_alcotest.to_alcotest t) tests)

let () =
  Alcotest.run "ppdc_flatgraph"
    [
      qsuite "adjacency" [ prop_csr_matches_nested_adjacency ];
      ( "digest",
        [
          Alcotest.test_case "frozen k=4 value" `Quick test_digest_known_value;
        ] );
      qsuite "digest-properties" [ prop_digest_matches_reference_serialization ];
      ( "engines",
        [
          Alcotest.test_case "cost-matrix dial/heap parity" `Quick
            test_cost_matrix_engine_parity;
          Alcotest.test_case "solver outcomes independent of engine/domains"
            `Quick test_solvers_engine_parity;
        ] );
      qsuite "engine-properties"
        [ prop_dijkstra_matches_legacy; prop_dial_matches_heap ];
    ]
