module Flow = Ppdc_traffic.Flow
module Workload = Ppdc_traffic.Workload
module Diurnal = Ppdc_traffic.Diurnal
module Fat_tree = Ppdc_topology.Fat_tree
module Rng = Ppdc_prelude.Rng

(* --- flows -------------------------------------------------------------- *)

let test_flow_make_and_rates () =
  let f = Flow.make ~id:0 ~src_host:3 ~dst_host:7 ~base_rate:42.0 ~coast:East in
  Alcotest.(check int) "id" 0 f.id;
  let flows =
    [| f; Flow.make ~id:1 ~src_host:1 ~dst_host:2 ~base_rate:8.0 ~coast:West |]
  in
  Alcotest.(check (array (float 0.0))) "base rates" [| 42.0; 8.0 |]
    (Flow.base_rates flows);
  Alcotest.(check (float 0.0)) "total" 50.0
    (Flow.total_rate (Flow.base_rates flows))

let test_flow_rejects_negative () =
  Alcotest.(check bool) "negative rate" true
    (try
       ignore (Flow.make ~id:0 ~src_host:0 ~dst_host:1 ~base_rate:(-1.0) ~coast:East);
       false
     with Invalid_argument _ -> true)

(* --- workload generator --------------------------------------------------- *)

let test_rate_mix_buckets () =
  let rng = Rng.create 42 in
  let light = ref 0 and medium = ref 0 and heavy = ref 0 in
  let samples = 20_000 in
  for _ = 1 to samples do
    let r = Workload.sample_rate rng Workload.facebook_mix in
    Alcotest.(check bool) "rate in [0, 10000]" true (r >= 0.0 && r <= 10_000.0);
    if r < 3000.0 then incr light
    else if r <= 7000.0 then incr medium
    else incr heavy
  done;
  let share x = float_of_int !x /. float_of_int samples in
  Alcotest.(check bool) "~25% light" true (Float.abs (share light -. 0.25) < 0.02);
  Alcotest.(check bool) "~70% medium" true (Float.abs (share medium -. 0.70) < 0.02);
  Alcotest.(check bool) "~5% heavy" true (Float.abs (share heavy -. 0.05) < 0.01)

let test_rack_locality () =
  let ft = Fat_tree.build 8 in
  let rng = Rng.create 7 in
  let flows = Workload.generate_on_fat_tree ~rng ~l:5000 ft in
  let local = ref 0 in
  Array.iter
    (fun (f : Flow.t) ->
      if Fat_tree.rack_of_host ft f.src_host = Fat_tree.rack_of_host ft f.dst_host
      then incr local)
    flows;
  let share = float_of_int !local /. 5000.0 in
  Alcotest.(check bool) "~80% intra-rack" true (Float.abs (share -. 0.8) < 0.03)

let test_coast_split () =
  (* Coast follows the source pod, so with uniform rack draws roughly
     half the flows are on each coast — and the assignment is exactly
     "first half of the pods = east". *)
  let ft = Fat_tree.build 4 in
  let rng = Rng.create 7 in
  let flows = Workload.generate_on_fat_tree ~rng ~l:1000 ft in
  let east = ref 0 in
  Array.iter
    (fun (f : Flow.t) ->
      let expected =
        if Fat_tree.pod_of_host ft f.src_host < 2 then Flow.East else Flow.West
      in
      Alcotest.(check bool) "coast matches source pod" true (f.coast = expected);
      if f.coast = East then incr east)
    flows;
  Alcotest.(check bool) "roughly half east" true
    (!east > 400 && !east < 600)

let test_workload_deterministic () =
  let ft = Fat_tree.build 4 in
  let gen seed =
    Workload.generate_on_fat_tree ~rng:(Rng.create seed) ~l:50 ft
  in
  Alcotest.(check bool) "same seed" true (gen 3 = gen 3);
  Alcotest.(check bool) "different seed" true (gen 3 <> gen 4)

let test_generate_on_hosts () =
  let hosts = [| 10; 11; 12 |] in
  let rng = Rng.create 5 in
  let flows = Workload.generate_on_hosts ~rng ~l:200 ~hosts () in
  Array.iter
    (fun (f : Flow.t) ->
      Alcotest.(check bool) "src from pool" true (Array.exists (( = ) f.src_host) hosts);
      Alcotest.(check bool) "dst from pool" true (Array.exists (( = ) f.dst_host) hosts))
    flows

let test_rack_skew_concentrates () =
  let ft = Fat_tree.build 8 in
  let count_top_share skew =
    let rng = Rng.create 17 in
    let flows = Workload.generate_on_fat_tree ~rack_skew:skew ~rng ~l:2000 ft in
    let per_rack = Hashtbl.create 32 in
    Array.iter
      (fun (f : Flow.t) ->
        let r = Fat_tree.rack_of_host ft f.src_host in
        Hashtbl.replace per_rack r
          (1 + Option.value (Hashtbl.find_opt per_rack r) ~default:0))
      flows;
    let counts =
      Hashtbl.fold (fun _ c acc -> c :: acc) per_rack []
      |> List.sort (fun a b -> compare b a)
    in
    match counts with
    | top :: _ -> float_of_int top /. 2000.0
    | [] -> 0.0
  in
  let uniform = count_top_share 0.0 in
  let skewed = count_top_share 1.5 in
  Alcotest.(check bool) "uniform spreads (top rack < 10%)" true (uniform < 0.1);
  Alcotest.(check bool) "skewed concentrates (top rack > 20%)" true
    (skewed > 0.2)

let test_rack_skew_rejects_negative () =
  let ft = Fat_tree.build 4 in
  let rng = Rng.create 1 in
  Alcotest.(check bool) "negative skew" true
    (try
       ignore (Workload.generate_on_fat_tree ~rack_skew:(-1.0) ~rng ~l:1 ft);
       false
     with Invalid_argument _ -> true)

let test_redraw_preserves_length () =
  let ft = Fat_tree.build 4 in
  let rng = Rng.create 5 in
  let flows = Workload.generate_on_fat_tree ~rng ~l:30 ft in
  let rates = Workload.redraw_rates ~rng flows in
  Alcotest.(check int) "same length" 30 (Array.length rates);
  Array.iter
    (fun r -> Alcotest.(check bool) "valid range" true (r >= 0.0 && r <= 10_000.0))
    rates

(* --- diurnal model ----------------------------------------------------------- *)

let test_tau_shape () =
  let m = Diurnal.default in
  Alcotest.(check (float 1e-9)) "zero at h=0" 0.0 (Diurnal.tau m 0);
  Alcotest.(check (float 1e-9)) "peak at noon" 0.8 (Diurnal.tau m 6);
  Alcotest.(check (float 1e-9)) "zero at h=N" 0.0 (Diurnal.tau m 12);
  Alcotest.(check (float 1e-9)) "eq9 at h=3" (2.0 *. 3.0 /. 12.0 *. 0.8)
    (Diurnal.tau m 3);
  (* Monotone up to noon, down after. *)
  for h = 1 to 5 do
    Alcotest.(check bool) "rising" true (Diurnal.tau m (h + 1) > Diurnal.tau m h)
  done;
  for h = 6 to 11 do
    Alcotest.(check bool) "falling" true (Diurnal.tau m (h + 1) < Diurnal.tau m h)
  done

let test_tau_out_of_range () =
  let m = Diurnal.default in
  Alcotest.(check (float 1e-9)) "negative hour" 0.0 (Diurnal.tau m (-2));
  Alcotest.(check (float 1e-9)) "past the day" 0.0 (Diurnal.tau m 20)

let test_coast_offset () =
  let m = Diurnal.default in
  Alcotest.(check (float 1e-9)) "west lags by 3h" (Diurnal.tau m 2)
    (Diurnal.scale m ~coast:West ~hour:5);
  Alcotest.(check (float 1e-9)) "east at face value" (Diurnal.tau m 5)
    (Diurnal.scale m ~coast:East ~hour:5);
  (* The offset wraps modulo the period: the early west hours carry the
     tail of the west curve (hour 2 ≡ τ_{11}), they are not dead air. *)
  Alcotest.(check (float 1e-9)) "west wraps early" (Diurnal.tau m 11)
    (Diurnal.scale m ~coast:West ~hour:2);
  Alcotest.(check (float 1e-9)) "west curve zero-point at hour 3"
    (Diurnal.tau m 12)
    (Diurnal.scale m ~coast:West ~hour:3)

let test_coast_equal_daily_volume () =
  (* Regression: the clamped (non-wrapping) offset zeroed west hours
     1..3 and dropped the tail of the west curve, so a west flow moved
     strictly less daily volume than an identical east flow. *)
  let m = Diurnal.default in
  let daily coast =
    let total = ref 0.0 in
    for hour = 1 to m.Diurnal.hours do
      total := !total +. Diurnal.scale m ~coast ~hour
    done;
    !total
  in
  Alcotest.(check (float 1e-9)) "east and west daily volume" (daily Flow.East)
    (daily Flow.West)

let test_scale_zero_outside_day () =
  let m = Diurnal.default in
  List.iter
    (fun hour ->
      Alcotest.(check (float 0.0)) "east zero outside day" 0.0
        (Diurnal.scale m ~coast:East ~hour);
      Alcotest.(check (float 0.0)) "west zero outside day" 0.0
        (Diurnal.scale m ~coast:West ~hour))
    [ -1; 0; m.Diurnal.hours + 1; m.Diurnal.hours + 5 ]

let test_rates_at () =
  let m = Diurnal.default in
  let flows =
    [|
      Flow.make ~id:0 ~src_host:0 ~dst_host:1 ~base_rate:1000.0 ~coast:East;
      Flow.make ~id:1 ~src_host:0 ~dst_host:1 ~base_rate:1000.0 ~coast:West;
    |]
  in
  let rates = Diurnal.rates_at m ~flows ~hour:6 in
  Alcotest.(check (float 1e-9)) "east at peak" 800.0 rates.(0);
  Alcotest.(check (float 1e-9)) "west three hours behind" (1000.0 *. Diurnal.tau m 3)
    rates.(1)

(* --- traces -------------------------------------------------------------- *)

let sample_trace () =
  let ft = Fat_tree.build 4 in
  let rng = Rng.create 3 in
  let flows = Workload.generate_on_fat_tree ~rng ~l:6 ft in
  Ppdc_traffic.Trace.of_diurnal Diurnal.default ~flows

let test_trace_of_diurnal () =
  let t = sample_trace () in
  Alcotest.(check int) "12 epochs" 12 (Ppdc_traffic.Trace.num_epochs t);
  Alcotest.(check int) "6 flows" 6 (Ppdc_traffic.Trace.num_flows t);
  (* Epoch 0 is hour 1: west-coast flows run the wrapped tail of their
     curve (τ_{10} for the default 12-hour day). *)
  let m = Ppdc_traffic.Diurnal.default in
  let first = Ppdc_traffic.Trace.rates_at t ~epoch:0 in
  Array.iteri
    (fun i r ->
      if t.flows.(i).Flow.coast = West then
        Alcotest.(check (float 1e-9)) "west tail at hour 1"
          (t.flows.(i).Flow.base_rate *. Ppdc_traffic.Diurnal.tau m 10)
          r)
    first

let test_trace_csv_roundtrip () =
  let t = sample_trace () in
  let t' = Ppdc_traffic.Trace.of_csv (Ppdc_traffic.Trace.to_csv t) in
  Alcotest.(check bool) "flows round-trip" true (t.flows = t'.flows);
  Alcotest.(check bool) "rates round-trip" true (t.rates = t'.rates)

let test_trace_file_roundtrip () =
  let t = sample_trace () in
  let path = Filename.temp_file "ppdc-trace" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ppdc_traffic.Trace.save t ~path;
      let t' = Ppdc_traffic.Trace.load ~path in
      Alcotest.(check bool) "file round-trip" true
        (t.flows = t'.flows && t.rates = t'.rates))

let test_trace_churn () =
  let ft = Fat_tree.build 4 in
  let rng = Rng.create 9 in
  let flows = Workload.generate_on_fat_tree ~rng ~l:20 ft in
  let t = Ppdc_traffic.Trace.churn ~rng:(Rng.create 5) ~epochs:10 flows in
  Alcotest.(check int) "epochs" 10 (Ppdc_traffic.Trace.num_epochs t);
  (* Every flow has a contiguous active window with positive rates. *)
  Array.iteri
    (fun i (f : Flow.t) ->
      let active =
        List.init 10 (fun e -> (Ppdc_traffic.Trace.rates_at t ~epoch:e).(i) > 0.0)
      in
      let switches_on_off =
        List.fold_left
          (fun (prev, changes) now ->
            (now, if now <> prev then changes + 1 else changes))
          (false, 0) active
        |> snd
      in
      Alcotest.(check bool) "window is contiguous" true (switches_on_off <= 2);
      Alcotest.(check bool) "flow is active at least once" true
        (List.exists Fun.id active);
      (* Jitter keeps rates near the base while active. *)
      List.iteri
        (fun e on ->
          if on then begin
            let r = (Ppdc_traffic.Trace.rates_at t ~epoch:e).(i) in
            Alcotest.(check bool) "rate within jitter band" true
              (r >= 0.8 *. f.base_rate -. 1e-9 && r <= 1.2 *. f.base_rate +. 1e-9)
          end)
        active)
    flows

let test_trace_churn_validation () =
  let ft = Fat_tree.build 4 in
  let rng = Rng.create 9 in
  let flows = Workload.generate_on_fat_tree ~rng ~l:2 ft in
  let reject name f =
    Alcotest.(check bool) name true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  reject "one epoch" (fun () ->
      Ppdc_traffic.Trace.churn ~rng:(Rng.create 1) ~epochs:1 flows);
  reject "bad jitter" (fun () ->
      Ppdc_traffic.Trace.churn ~rng:(Rng.create 1) ~epochs:5 ~jitter:2.0 flows)

let test_trace_rejects_garbage () =
  let reject name text =
    Alcotest.(check bool) name true
      (try
         ignore (Ppdc_traffic.Trace.of_csv text);
         false
       with Invalid_argument _ -> true)
  in
  reject "empty" "";
  reject "bad header" "nope\n";
  reject "bad number"
    "flow,src_host,dst_host,base_rate,coast\n0,1,2,xyz,east\n";
  reject "bad coast"
    "flow,src_host,dst_host,base_rate,coast\n0,1,2,1.0,north\n";
  reject "ragged rates"
    "flow,src_host,dst_host,base_rate,coast\n0,1,2,1.0,east\nrates,0,1.0,2.0\n"

let test_trace_epoch_column_validated () =
  (* Regression: the epoch column used to be ignored, so gapped,
     duplicated or reordered rates rows were silently renumbered by
     line position. *)
  let header = "flow,src_host,dst_host,base_rate,coast\n0,1,2,1.0,east\n" in
  let reject name rows =
    Alcotest.(check bool) name true
      (try
         ignore (Ppdc_traffic.Trace.of_csv (header ^ rows));
         false
       with Invalid_argument _ -> true)
  in
  reject "gap" "rates,0,1.0\nrates,2,2.0\n";
  reject "duplicate" "rates,0,1.0\nrates,0,2.0\n";
  reject "reordered" "rates,1,1.0\nrates,0,2.0\n";
  reject "not starting at zero" "rates,1,1.0\n";
  reject "non-integer epoch" "rates,x,1.0\n";
  (* Dense in-order epochs parse, and the epochs keep their indices. *)
  let t = Ppdc_traffic.Trace.of_csv (header ^ "rates,0,1.0\nrates,1,2.0\n") in
  Alcotest.(check (float 0.0)) "epoch 1 kept" 2.0
    (Ppdc_traffic.Trace.rates_at t ~epoch:1).(0);
  (* And to_csv output round-trips through the validation. *)
  let rt = Ppdc_traffic.Trace.of_csv (Ppdc_traffic.Trace.to_csv t) in
  Alcotest.(check int) "round-trip epochs" 2 (Ppdc_traffic.Trace.num_epochs rt)

let prop_tau_bounded =
  QCheck.Test.make ~name:"tau stays within [0, 1]" ~count:500
    QCheck.(pair (int_range (-5) 25) (float_bound_inclusive 1.0))
    (fun (h, tau_min) ->
      let m = { Diurnal.hours = 12; tau_min } in
      let t = Diurnal.tau m h in
      t >= 0.0 && t <= 1.0)

let qsuite name tests = (name, List.map (fun t -> QCheck_alcotest.to_alcotest t) tests)

let () =
  Alcotest.run "ppdc_traffic"
    [
      ( "flow",
        [
          Alcotest.test_case "construction and rate vectors" `Quick
            test_flow_make_and_rates;
          Alcotest.test_case "negative rate rejected" `Quick
            test_flow_rejects_negative;
        ] );
      ( "workload",
        [
          Alcotest.test_case "facebook 25/70/5 rate mix" `Quick
            test_rate_mix_buckets;
          Alcotest.test_case "80% rack locality" `Quick test_rack_locality;
          Alcotest.test_case "coast split" `Quick test_coast_split;
          Alcotest.test_case "seed determinism" `Quick
            test_workload_deterministic;
          Alcotest.test_case "arbitrary host pools" `Quick
            test_generate_on_hosts;
          Alcotest.test_case "rate redraw" `Quick test_redraw_preserves_length;
          Alcotest.test_case "rack skew concentrates traffic" `Quick
            test_rack_skew_concentrates;
          Alcotest.test_case "rack skew validation" `Quick
            test_rack_skew_rejects_negative;
        ] );
      ( "diurnal",
        [
          Alcotest.test_case "Eq. 9 shape" `Quick test_tau_shape;
          Alcotest.test_case "zero outside the day" `Quick test_tau_out_of_range;
          Alcotest.test_case "3-hour coast offset" `Quick test_coast_offset;
          Alcotest.test_case "equal daily volume per coast" `Quick
            test_coast_equal_daily_volume;
          Alcotest.test_case "scale zero outside the day" `Quick
            test_scale_zero_outside_day;
          Alcotest.test_case "per-flow rate vectors" `Quick test_rates_at;
        ] );
      ( "trace",
        [
          Alcotest.test_case "diurnal trace" `Quick test_trace_of_diurnal;
          Alcotest.test_case "csv round-trip" `Quick test_trace_csv_roundtrip;
          Alcotest.test_case "file round-trip" `Quick test_trace_file_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick
            test_trace_rejects_garbage;
          Alcotest.test_case "epoch column validated" `Quick
            test_trace_epoch_column_validated;
          Alcotest.test_case "churn windows" `Quick test_trace_churn;
          Alcotest.test_case "churn validation" `Quick
            test_trace_churn_validation;
        ] );
      qsuite "diurnal-properties" [ prop_tau_bounded ];
    ]
