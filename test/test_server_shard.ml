(* Model-based and regression tests for the sharded session registry
   (DESIGN.md §4j).

   The oracle is a single flat table + one global LRU stamp counter —
   the semantics the registry documents: budgets enforced in order
   (tenant sessions, tenant bytes, global budget), victims chosen by
   globally-minimal recency stamp excluding the entry just created,
   evicted names tombstoned so lookups answer Was_evicted. Because the
   registry's stamps come from one global logical clock, a sequential
   op sequence must produce *identical* observable behavior at every
   shard count — the property qcheck replays at shards 1, 2 and 8
   against the model.

   Two companion regressions: solver outputs served through engines at
   different shard counts are bit-identical (sharding must never leak
   into paper-visible results), and two session creates on different
   shards hold their shard critical sections concurrently (the old
   global registry lock would serialize them). *)

module Json = Ppdc_prelude.Json
module Rng = Ppdc_prelude.Rng
module Registry = Ppdc_server.Registry
module Engine = Ppdc_server.Engine

(* --- reference model ---------------------------------------------------- *)

type mentry = {
  m_name : string;
  m_tenant : string;
  mutable m_value : int;
  mutable m_bytes : int;
  mutable m_stamp : int;
}

type model = {
  mutable live : mentry list;  (* unordered; stamps order recency *)
  mutable tombs : string list;
  mutable clock : int;
  m_budget : int option;
  m_tenant_sessions : int option;
  m_tenant_bytes : int option;
  mutable m_evicted_budget : int;
  mutable m_evicted_tenant_sessions : int;
  mutable m_evicted_tenant_bytes : int;
}

let model_create ~budget ~tenant_sessions ~tenant_bytes =
  {
    live = [];
    tombs = [];
    clock = 0;
    m_budget = budget;
    m_tenant_sessions = tenant_sessions;
    m_tenant_bytes = tenant_bytes;
    m_evicted_budget = 0;
    m_evicted_tenant_sessions = 0;
    m_evicted_tenant_bytes = 0;
  }

let next_stamp m =
  let s = m.clock in
  m.clock <- s + 1;
  s

let m_find_live m name =
  List.find_opt (fun e -> String.equal e.m_name name) m.live

let m_remove m name =
  m.live <- List.filter (fun e -> not (String.equal e.m_name name)) m.live;
  if not (List.mem name m.tombs) then m.tombs <- name :: m.tombs

(* Globally-oldest live entry matching the tenant filter, never the
   entry just created — the registry's victim_scan over one shared
   stamp clock. *)
let m_victim m ?tenant ~keep () =
  List.fold_left
    (fun best e ->
      let matches =
        (not (String.equal e.m_name keep))
        && match tenant with
           | Some tn -> String.equal e.m_tenant tn
           | None -> true
      in
      if not matches then best
      else
        match best with
        | Some b when b.m_stamp <= e.m_stamp -> best
        | _ -> Some e)
    None m.live

let m_tenant_usage m tenant =
  List.fold_left
    (fun (n, b) e ->
      if String.equal e.m_tenant tenant then (n + 1, b + e.m_bytes) else (n, b))
    (0, 0) m.live

let m_enforce m ~tenant ~keep =
  let evictions = ref [] in
  let evict_matching ?tenant reason =
    match m_victim m ?tenant ~keep () with
    | None -> false
    | Some v ->
        m_remove m v.m_name;
        (match reason with
        | Registry.Budget -> m.m_evicted_budget <- m.m_evicted_budget + 1
        | Registry.Tenant_sessions ->
            m.m_evicted_tenant_sessions <- m.m_evicted_tenant_sessions + 1
        | Registry.Tenant_bytes ->
            m.m_evicted_tenant_bytes <- m.m_evicted_tenant_bytes + 1);
        evictions :=
          (v.m_name, v.m_tenant, Registry.reason_slug reason) :: !evictions;
        true
  in
  (match m.m_tenant_sessions with
  | None -> ()
  | Some cap ->
      let continue = ref true in
      while !continue && fst (m_tenant_usage m tenant) > cap do
        continue := evict_matching ~tenant Registry.Tenant_sessions
      done);
  (match m.m_tenant_bytes with
  | None -> ()
  | Some cap ->
      let continue = ref true in
      while !continue && snd (m_tenant_usage m tenant) > cap do
        continue := evict_matching ~tenant Registry.Tenant_bytes
      done);
  (match m.m_budget with
  | None -> ()
  | Some cap ->
      let continue = ref true in
      while !continue && List.length m.live > cap do
        continue := evict_matching Registry.Budget
      done);
  List.rev !evictions

let m_put m ~name ~bytes v =
  let tenant = Registry.tenant_of name in
  let stamp = next_stamp m in
  m.tombs <- List.filter (fun n -> not (String.equal n name)) m.tombs;
  let replaced =
    match m_find_live m name with
    | Some e ->
        e.m_value <- v;
        e.m_bytes <- bytes;
        e.m_stamp <- stamp;
        true
    | None ->
        m.live <-
          { m_name = name; m_tenant = tenant; m_value = v; m_bytes = bytes;
            m_stamp = stamp }
          :: m.live;
        false
  in
  (replaced, m_enforce m ~tenant ~keep:name)

let m_find m name =
  match m_find_live m name with
  | Some e ->
      e.m_stamp <- next_stamp m;
      Printf.sprintf "found=%d" e.m_value
  | None -> if List.mem name m.tombs then "evicted" else "unknown"

let m_evict m name =
  match m_find_live m name with
  | Some _ ->
      m_remove m name;
      true
  | None -> false

(* --- op sequences -------------------------------------------------------- *)

type op = Put of string * int * int | Find of string | Evict of string

let name_pool =
  Array.of_list
    ("solo"
    :: List.concat_map
         (fun t ->
           List.map (fun i -> Printf.sprintf "%s-%d" t i) [ 0; 1; 2; 3 ])
         [ "a"; "b"; "c" ])

let byte_sizes = [| 40; 120; 260 |]

let gen_ops seed =
  let rng = Rng.create seed in
  let len = 30 + Rng.int rng 50 in
  List.init len (fun i ->
      let name = Rng.pick rng name_pool in
      match Rng.int rng 10 with
      | 0 | 1 | 2 | 3 -> Put (name, Rng.pick rng byte_sizes, i)
      | 4 | 5 | 6 | 7 -> Find name
      | _ -> Evict name)

let format_evictions evs =
  String.concat ","
    (List.map (fun (n, t, r) -> Printf.sprintf "%s/%s/%s" n t r) evs)

(* Run the ops and produce a trace of every observable: per-op results
   plus the final length, live-name set and eviction counters. Model
   and registry must produce the same trace; registries at different
   shard counts therefore also agree with each other. *)
let model_trace ops ~budget ~tenant_sessions ~tenant_bytes =
  let m = model_create ~budget ~tenant_sessions ~tenant_bytes in
  let lines =
    List.map
      (function
        | Put (name, bytes, v) ->
            let replaced, evs = m_put m ~name ~bytes v in
            Printf.sprintf "put %s -> replaced=%b evicted=[%s]" name replaced
              (format_evictions evs)
        | Find name -> Printf.sprintf "find %s -> %s" name (m_find m name)
        | Evict name -> Printf.sprintf "evict %s -> %b" name (m_evict m name))
      ops
  in
  let names =
    List.sort String.compare (List.map (fun e -> e.m_name) m.live)
  in
  lines
  @ [
      Printf.sprintf "length=%d" (List.length m.live);
      Printf.sprintf "names=[%s]" (String.concat "," names);
      Printf.sprintf "counters=%d/%d/%d" m.m_evicted_budget
        m.m_evicted_tenant_sessions m.m_evicted_tenant_bytes;
    ]

let registry_trace ops ~shards ~budget ~tenant_sessions ~tenant_bytes =
  let reg : int Registry.t =
    Registry.create ~shards ?session_budget:budget ?tenant_sessions
      ?tenant_bytes ()
  in
  let lines =
    List.map
      (function
        | Put (name, bytes, v) ->
            let o = Registry.put reg ~name ~bytes v in
            Printf.sprintf "put %s -> replaced=%b evicted=[%s]" name
              o.Registry.replaced
              (format_evictions
                 (List.map
                    (fun e ->
                      ( e.Registry.victim,
                        e.Registry.victim_tenant,
                        Registry.reason_slug e.Registry.reason ))
                    o.Registry.evicted))
        | Find name ->
            Printf.sprintf "find %s -> %s" name
              (match Registry.find reg name with
              | Registry.Found v -> Printf.sprintf "found=%d" v
              | Registry.Was_evicted -> "evicted"
              | Registry.Unknown -> "unknown")
        | Evict name ->
            Printf.sprintf "evict %s -> %b" name (Registry.evict reg name))
      ops
  in
  let names =
    List.sort String.compare
      (Registry.fold reg ~init:[] ~f:(fun acc ~name ~tenant:_ _ ->
           name :: acc))
  in
  let sizes = Registry.shard_sizes reg in
  if Array.fold_left ( + ) 0 sizes <> Registry.length reg then
    QCheck.Test.fail_reportf "shard sizes do not sum to length";
  let c = Registry.counters reg in
  lines
  @ [
      Printf.sprintf "length=%d" (Registry.length reg);
      Printf.sprintf "names=[%s]" (String.concat "," names);
      Printf.sprintf "counters=%d/%d/%d" c.Registry.evicted_budget
        c.Registry.evicted_tenant_sessions c.Registry.evicted_tenant_bytes;
    ]

let seed_gen = QCheck.int_bound 1_000_000

let model_test =
  QCheck.Test.make ~name:"registry matches flat-table model at shards 1/2/8"
    ~count:150 seed_gen (fun seed ->
      let ops = gen_ops seed in
      let budget = Some 6
      and tenant_sessions = Some 2
      and tenant_bytes = Some 300 in
      let expected = model_trace ops ~budget ~tenant_sessions ~tenant_bytes in
      List.for_all
        (fun shards ->
          let got =
            registry_trace ops ~shards ~budget ~tenant_sessions ~tenant_bytes
          in
          if got <> expected then
            QCheck.Test.fail_reportf
              "shards=%d diverged from model (seed %d):\n%s"
              shards seed
              (String.concat "\n"
                 (List.concat_map
                    (fun (e, g) ->
                      if String.equal e g then []
                      else [ Printf.sprintf "  model: %s\n  reg:   %s" e g ])
                    (List.combine expected got)))
          else true)
        [ 1; 2; 8 ])

(* Unbudgeted run: no evictions ever, every find hits, and the three
   shard counts agree — the degenerate case that proves budgets are
   the only eviction source. *)
let unbudgeted_test =
  QCheck.Test.make ~name:"unbudgeted registry never evicts" ~count:50 seed_gen
    (fun seed ->
      let ops = gen_ops seed in
      let expected =
        model_trace ops ~budget:None ~tenant_sessions:None ~tenant_bytes:None
      in
      List.for_all
        (fun shards ->
          registry_trace ops ~shards ~budget:None ~tenant_sessions:None
            ~tenant_bytes:None
          = expected)
        [ 1; 2; 8 ])

(* --- solver determinism across shard counts ------------------------------ *)

let expect_ok line =
  let j = Json.parse line in
  match (Json.member "ok" j, Json.member "result" j) with
  | Some (Json.Bool true), Some r -> r
  | _ -> Alcotest.failf "expected ok response, got: %s" line

let member_exn j key =
  match Json.member key j with
  | Some v -> v
  | None -> Alcotest.failf "missing field %s in %s" key (Json.to_string j)

(* Paper-visible solver outputs; timing fields (elapsed_ms, cache_hit)
   legitimately differ between runs. *)
let deterministic_fields = function
  | "place" -> [ "algo"; "placement"; "cost" ]
  | "migrate" ->
      [ "algo"; "placement"; "moved"; "migration_cost"; "comm_cost";
        "total_cost" ]
  | "load_topology" -> [ "session"; "tenant"; "hosts"; "flows"; "digest" ]
  | _ -> []

let determinism_script =
  [
    ( "load_topology",
      {|{"id":1,"method":"load_topology","params":{"session":"a-0","k":4,"l":6,"n":3,"seed":1}}|}
    );
    ( "load_topology",
      {|{"id":2,"method":"load_topology","params":{"session":"b-0","k":4,"l":6,"n":3,"seed":2}}|}
    );
    ( "load_topology",
      {|{"id":3,"method":"load_topology","params":{"session":"c-0","k":4,"l":4,"n":2,"seed":3}}|}
    );
    ("place", {|{"id":4,"method":"place","params":{"session":"a-0"}}|});
    ( "place",
      {|{"id":5,"method":"place","params":{"session":"b-0","algo":"dp"}}|} );
    ( "migrate",
      {|{"id":6,"method":"migrate","params":{"session":"a-0","mu":100}}|} );
    ( "rates_update",
      {|{"id":7,"method":"rates_update","params":{"session":"c-0","seed":9}}|}
    );
    ("place", {|{"id":8,"method":"place","params":{"session":"c-0"}}|});
    ( "migrate",
      {|{"id":9,"method":"migrate","params":{"session":"c-0","algo":"mpareto","mu":100}}|}
    );
  ]

let test_solver_outputs_shard_independent () =
  let run shards =
    let e = Engine.create ~shards () in
    List.map (fun (meth, req) -> (meth, Engine.handle_line e req))
      determinism_script
  in
  let reference = run 1 in
  List.iter
    (fun shards ->
      let got = run shards in
      List.iter2
        (fun (meth, ref_line) (_, got_line) ->
          let ref_result = expect_ok ref_line
          and got_result = expect_ok got_line in
          List.iter
            (fun key ->
              Alcotest.(check bool)
                (Printf.sprintf "shards=%d %s.%s bit-identical" shards meth key)
                true
                (Json.equal
                   (member_exn ref_result key)
                   (member_exn got_result key)))
            (deterministic_fields meth))
        reference got)
    [ 2; 8 ]

(* --- concurrent creates on distinct shards -------------------------------- *)

(* Regression: session construction happens outside the shard critical
   section, and shard locks are per-shard — so two creates whose names
   hash to different shards must both be able to sit inside their shard
   critical sections at the same time. The registry test hook runs
   under the shard lock of every put; blocking in it until *both*
   creates arrive proves the sections overlap (the old single
   registry-wide mutex would deadlock this barrier, which the timeout
   converts into a clean failure). *)
let test_concurrent_creates_distinct_shards () =
  let probe : int Registry.t = Registry.create ~shards:2 () in
  let pick_name shard =
    let rec go i =
      if i > 1000 then Alcotest.fail "no name found for shard"
      else
        let name = Printf.sprintf "t%d-s%d" shard i in
        if Registry.shard_id probe name = shard then name else go (i + 1)
    in
    go 0
  in
  let name0 = pick_name 0 and name1 = pick_name 1 in
  let engine = Engine.create ~shards:2 () in
  let arrived = Atomic.make 0 in
  let proceed = Atomic.make false in
  let both_inside = Atomic.make false in
  Engine.set_registry_test_hook engine
    (Some
       (fun _name ->
         Atomic.incr arrived;
         let t0 = Unix.gettimeofday () in
         while
           (not (Atomic.get proceed)) && Unix.gettimeofday () -. t0 < 5.0
         do
           if Atomic.get arrived >= 2 then Atomic.set both_inside true;
           Domain.cpu_relax ()
         done));
  let load name =
    Domain.spawn (fun () ->
        Engine.handle_line engine
          (Printf.sprintf
             {|{"id":"%s","method":"load_topology","params":{"session":"%s","k":4,"l":4,"n":2,"seed":1}}|}
             name name))
  in
  let d0 = load name0 and d1 = load name1 in
  let t0 = Unix.gettimeofday () in
  while (not (Atomic.get both_inside)) && Unix.gettimeofday () -. t0 < 5.0 do
    Unix.sleepf 0.002
  done;
  Atomic.set proceed true;
  let r0 = Domain.join d0 and r1 = Domain.join d1 in
  Engine.set_registry_test_hook engine None;
  ignore (expect_ok r0);
  ignore (expect_ok r1);
  Alcotest.(check bool)
    "both creates were inside their shard critical sections concurrently"
    true (Atomic.get both_inside)

let qsuite tests = List.map (fun t -> QCheck_alcotest.to_alcotest t) tests

let () =
  Alcotest.run "ppdc_server_shard"
    [
      ("model", qsuite [ model_test; unbudgeted_test ]);
      ( "determinism",
        [
          Alcotest.test_case "solver outputs identical at shards 1/2/8"
            `Quick test_solver_outputs_shard_independent;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "creates on distinct shards overlap" `Quick
            test_concurrent_creates_distinct_shards;
        ] );
    ]
