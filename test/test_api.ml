(* API-contract tests: the reusable-table stroll interface, printers, and
   the solver pipeline on a leaf-spine fabric (no fat-tree assumptions
   anywhere in the core). *)

module Graph = Ppdc_topology.Graph
module Fat_tree = Ppdc_topology.Fat_tree
module Leaf_spine = Ppdc_topology.Leaf_spine
module Cost_matrix = Ppdc_topology.Cost_matrix
module Workload = Ppdc_traffic.Workload
module Flow = Ppdc_traffic.Flow
module Rng = Ppdc_prelude.Rng
open Ppdc_core

(* --- Stroll_dp table reuse ----------------------------------------------- *)

let test_stroll_table_reuse () =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let switches = Graph.switches ft.graph in
  let dst = ft.hosts.(15) in
  let table =
    Stroll_dp.prepare ~cm ~dst ~candidates:switches ~extras:(Array.copy ft.hosts)
  in
  (* Queries from several sources against one table must agree with
     fresh one-shot solves. *)
  Array.iter
    (fun src ->
      if src <> dst then begin
        for n = 1 to 4 do
          let via_table = Stroll_dp.query table ~src ~n () in
          let one_shot = Stroll_dp.solve ~cm ~src ~dst ~n () in
          match via_table with
          | Some r ->
              Alcotest.(check (float 1e-9))
                (Printf.sprintf "table = solve (src %d, n %d)" src n)
                one_shot.cost r.cost
          | None -> Alcotest.fail "query unexpectedly failed"
        done
      end)
    (Array.sub ft.hosts 0 4)

let test_stroll_query_exclusions () =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let switches = Graph.switches ft.graph in
  let src = ft.hosts.(0) and dst = ft.hosts.(15) in
  let table = Stroll_dp.prepare ~cm ~dst ~candidates:switches ~extras:[| src |] in
  match Stroll_dp.query table ~src ~n:3 () with
  | None -> Alcotest.fail "baseline query failed"
  | Some base ->
      (* Excluding the switches it used forces a different (not cheaper)
         stroll. *)
      let excluded = base.switches in
      (match Stroll_dp.query table ~src ~n:3 ~exclude:excluded () with
      | None -> ()  (* acceptable: exclusion can exhaust the edge budget *)
      | Some other ->
          Array.iter
            (fun s ->
              Alcotest.(check bool) "excluded switch not reused" true
                (not (Array.exists (( = ) s) excluded)))
            other.switches;
          Alcotest.(check bool) "exclusion cannot be cheaper" true
            (other.cost >= base.cost -. 1e-9))

(* --- printers -------------------------------------------------------------- *)

let test_printers () =
  let p = [| 3; 7; 1 |] in
  Alcotest.(check string) "placement pp" "[f1@s3 f2@s7 f3@s1]"
    (Format.asprintf "%a" Placement.pp p);
  let chain = Chain.make [| "fw"; "cache" |] in
  Alcotest.(check string) "chain pp" "fw -> cache"
    (Format.asprintf "%a" Chain.pp chain);
  let flow =
    Flow.make ~id:2 ~src_host:9 ~dst_host:4 ~base_rate:12.5 ~coast:West
  in
  Alcotest.(check string) "flow pp" "flow2(9->4, λ=12.5, west)"
    (Format.asprintf "%a" Flow.pp flow);
  let ft = Fat_tree.build 2 in
  Alcotest.(check string) "graph pp" "graph{hosts=2 switches=5 edges=6}"
    (Format.asprintf "%a" Graph.pp ft.graph)

(* --- leaf-spine pipeline ----------------------------------------------------- *)

let test_full_pipeline_on_leaf_spine () =
  let ls = Leaf_spine.build ~spines:4 ~leaves:8 ~hosts_per_leaf:4 () in
  let cm = Cost_matrix.compute ls.graph in
  let rng = Rng.create 6 in
  let flows = Workload.generate_on_hosts ~rng ~l:20 ~hosts:ls.hosts () in
  let problem = Problem.make ~cm ~flows ~n:5 () in
  let rates = Flow.base_rates flows in
  let dp = Placement_dp.solve problem ~rates () in
  Placement.validate problem dp.placement;
  let opt = Placement_opt.solve problem ~rates () in
  Alcotest.(check bool) "proved" true opt.proven_optimal;
  Alcotest.(check bool) "dp within 1.5x optimal" true
    (dp.cost <= 1.5 *. opt.cost);
  (* On a leaf-spine, the optimal chain for spread traffic alternates
     between the spine layer (2 hops to everyone) and leaves. Migrate
     after a redraw and make sure the machinery holds. *)
  let rates' = Workload.redraw_rates ~rng flows in
  let mp = Mpareto.migrate problem ~rates:rates' ~mu:50.0 ~current:dp.placement () in
  Alcotest.(check bool) "migration never hurts" true
    (mp.total_cost <= Cost.comm_cost problem ~rates:rates' dp.placement +. 1e-6);
  (* Link loads + flow metrics work off-fat-tree too. *)
  let loads = Link_load.compute problem ~rates:rates' mp.migration in
  Alcotest.(check bool) "loads consistent with Eq. 1" true
    (Float.abs (Link_load.weighted_total loads -. mp.comm_cost)
    <= 1e-6 *. Float.max 1.0 mp.comm_cost);
  let metrics = Flow_metrics.compute problem mp.migration in
  Alcotest.(check bool) "metrics sane" true
    (metrics.mean_delay > 0.0 && metrics.max_delay >= metrics.p95_delay)

(* --- problem derivation -------------------------------------------------------- *)

let test_problem_derivation () =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let rng = Rng.create 3 in
  let flows = Workload.generate_on_fat_tree ~rng ~l:6 ft in
  let problem = Problem.make ~cm ~flows ~n:3 () in
  let widened = Problem.with_n problem 5 in
  Alcotest.(check int) "with_n changes n" 5 (Problem.n widened);
  Alcotest.(check int) "with_n keeps flows" 6 (Problem.num_flows widened);
  let rehomed =
    Problem.with_flows problem
      (Array.map
         (fun (f : Flow.t) -> { f with Flow.src_host = ft.hosts.(0) })
         flows)
  in
  Array.iter
    (fun (f : Flow.t) ->
      Alcotest.(check int) "with_flows rehomes sources" ft.hosts.(0) f.src_host)
    (Problem.flows rehomed);
  let restricted = Problem.with_switches problem [| 0; 1; 2; 3 |] in
  Alcotest.(check int) "with_switches restricts" 4
    (Array.length (Problem.switches restricted));
  Alcotest.(check bool) "candidate membership" true
    (Problem.is_candidate restricted 2 && not (Problem.is_candidate restricted 9))

let () =
  Alcotest.run "ppdc_api"
    [
      ( "stroll-table",
        [
          Alcotest.test_case "reuse equals one-shot" `Quick
            test_stroll_table_reuse;
          Alcotest.test_case "exclusions respected" `Quick
            test_stroll_query_exclusions;
        ] );
      ("printers", [ Alcotest.test_case "pp output" `Quick test_printers ]);
      ( "leaf-spine-pipeline",
        [
          Alcotest.test_case "end-to-end on a 2-tier Clos" `Quick
            test_full_pipeline_on_leaf_spine;
        ] );
      ( "problem-derivation",
        [
          Alcotest.test_case "with_n / with_flows / with_switches" `Quick
            test_problem_derivation;
        ] );
    ]
