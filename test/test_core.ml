(* Core-library tests anchored on the paper's worked examples:
   - Example 1 / Fig. 3: the 5-switch linear PPDC where the optimal
     placement costs 410, the rate swap raises it to 1004, and mPareto
     recovers 410 + 6 migration = 416 total;
   - Fig. 4: the optimal 2-stroll of cost 6 that is a walk, not a path;
   - Theorem 4: TOM with mu = 0 degenerates to TOP. *)

module Graph = Ppdc_topology.Graph
module Cost_matrix = Ppdc_topology.Cost_matrix
module Linear = Ppdc_topology.Linear
module Fat_tree = Ppdc_topology.Fat_tree
module Flow = Ppdc_traffic.Flow
module Workload = Ppdc_traffic.Workload
module Rng = Ppdc_prelude.Rng
open Ppdc_core

let check_float = Alcotest.(check (float 1e-9))

(* --- Fig. 1 / Fig. 3 fixture --------------------------------------- *)

(* Linear PPDC: switches 0..4 in a chain, host 5 at switch 0 (h1), host 6
   at switch 4 (h2). Flow 0 has both VMs on h1, flow 1 both on h2. *)
let fig3 () =
  let lin = Linear.build ~num_switches:5 () in
  let h1 = lin.hosts.(0) and h2 = lin.hosts.(1) in
  let cm = Cost_matrix.compute lin.graph in
  let flows =
    [|
      Flow.make ~id:0 ~src_host:h1 ~dst_host:h1 ~base_rate:100.0 ~coast:East;
      Flow.make ~id:1 ~src_host:h2 ~dst_host:h2 ~base_rate:1.0 ~coast:West;
    |]
  in
  Problem.make ~cm ~flows ~n:2 ()

let test_fig3_initial_placement () =
  let problem = fig3 () in
  let rates = [| 100.0; 1.0 |] in
  let opt = Placement_opt.solve problem ~rates () in
  Alcotest.(check bool) "proved" true opt.proven_optimal;
  check_float "optimal cost 410" 410.0 opt.cost;
  let dp = Placement_dp.solve problem ~rates () in
  check_float "DP matches optimal here" 410.0 dp.cost

let test_fig3_rate_swap_cost () =
  let problem = fig3 () in
  (* Paper's initial optimal placement: f1 at s1, f2 at s2. *)
  let p = [| 0; 1 |] in
  check_float "C_a under initial rates" 410.0
    (Cost.comm_cost problem ~rates:[| 100.0; 1.0 |] p);
  check_float "C_a after the swap" 1004.0
    (Cost.comm_cost problem ~rates:[| 1.0; 100.0 |] p)

let test_fig3_mpareto_migration () =
  let problem = fig3 () in
  let rates = [| 1.0; 100.0 |] in
  let outcome = Mpareto.migrate problem ~rates ~mu:1.0 ~current:[| 0; 1 |] () in
  check_float "migration cost 6" 6.0 outcome.migration_cost;
  check_float "post-migration C_a 410" 410.0 outcome.comm_cost;
  check_float "total 416" 416.0 outcome.total_cost;
  Alcotest.(check int) "both VNFs moved" 2 outcome.moved

let test_fig3_migration_is_paper_example () =
  (* The paper reports a 58.6% reduction: 1 - 416/1004. *)
  let problem = fig3 () in
  let rates = [| 1.0; 100.0 |] in
  let stay = Cost.comm_cost problem ~rates [| 0; 1 |] in
  let outcome = Mpareto.migrate problem ~rates ~mu:1.0 ~current:[| 0; 1 |] () in
  let reduction = 1.0 -. (outcome.total_cost /. stay) in
  Alcotest.(check bool) "~58.6% reduction"
    true
    (Float.abs (reduction -. 0.586) < 0.01)

(* --- Fig. 4: optimal stroll is a walk ------------------------------- *)

(* Nodes: s=4 (host), t=5 (host), switches A=0, B=1, C=2, D=3.
   Weights: s-A=2, A-B=3, B-t=2 (the cost-7 path) and s-D=2, D-t=2,
   t-C=1 (enabling the cost-6 walk s,D,t,C,t). *)
let fig4_cm () =
  let kinds =
    [| Graph.Switch; Graph.Switch; Graph.Switch; Graph.Switch; Graph.Host; Graph.Host |]
  in
  let edges =
    [ (4, 0, 2.0); (0, 1, 3.0); (1, 5, 2.0); (4, 3, 2.0); (3, 5, 2.0); (5, 2, 1.0) ]
  in
  Cost_matrix.compute (Graph.make ~kinds ~edges)

let test_fig4_dp_stroll_finds_walk () =
  let cm = fig4_cm () in
  let r = Stroll_dp.solve ~cm ~src:4 ~dst:5 ~n:2 () in
  check_float "2-stroll cost 6" 6.0 r.cost;
  Alcotest.(check int) "visits two distinct switches" 2
    (Array.length r.switches)

let test_fig4_exact_matches () =
  let cm = fig4_cm () in
  let e = Stroll_exact.solve ~cm ~src:4 ~dst:5 ~n:2 () in
  Alcotest.(check bool) "proved" true e.proven_optimal;
  check_float "exact 2-stroll cost 6" 6.0 e.cost

let test_fig4_primal_dual_within_guarantee () =
  let cm = fig4_cm () in
  let pd = Stroll_primal_dual.solve ~cm ~src:4 ~dst:5 ~n:2 () in
  Alcotest.(check bool) "within 2x optimal + slack"
    true
    (pd.cost <= (2.0 *. 6.0) +. 1e-6);
  Alcotest.(check int) "visits 2 switches" 2 (Array.length pd.switches)

(* --- stroll properties on a fat-tree --------------------------------- *)

let k4_problem ~l ~n ~seed =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let rng = Rng.create seed in
  let flows = Workload.generate_on_fat_tree ~rng ~l ft in
  (Problem.make ~cm ~flows ~n (), ft)

let test_seven_stroll_on_fat_tree () =
  (* Example 3: placing 7 VNFs between two hosts of a k=4 fat-tree needs
     a 7-stroll; with unit weights its optimum is the 8-edge path. *)
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let h4 = ft.hosts.(3) and h5 = ft.hosts.(4) in
  let dp = Stroll_dp.solve ~cm ~src:h4 ~dst:h5 ~n:7 () in
  Alcotest.(check int) "7 distinct switches" 7 (Array.length dp.switches);
  let exact = Stroll_exact.solve ~cm ~src:h4 ~dst:h5 ~n:7 () in
  Alcotest.(check bool) "proved" true exact.proven_optimal;
  check_float "optimal 7-stroll is the 8-edge path" 8.0 exact.cost;
  Alcotest.(check bool) "DP within 2x of optimal"
    true
    (dp.cost <= 2.0 *. exact.cost)

let test_dp_stroll_never_beats_exact () =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  for n = 1 to 6 do
    let src = ft.hosts.(0) and dst = ft.hosts.(7) in
    let dp = Stroll_dp.solve ~cm ~src ~dst ~n () in
    let exact = Stroll_exact.solve ~cm ~src ~dst ~n () in
    Alcotest.(check bool)
      (Printf.sprintf "dp >= exact at n=%d" n)
      true
      (dp.cost >= exact.cost -. 1e-9);
    Alcotest.(check bool)
      (Printf.sprintf "dp within 2+eps at n=%d" n)
      true
      (dp.cost <= (2.0 *. exact.cost) +. 1e-9)
  done

let test_closed_stroll_src_eq_dst () =
  (* Regression: when src = dst the optimal 1-stroll is the immediate
     out-and-back dst -> u -> dst. The DP's no-backtrack rule used to
     ban exactly that walk (every level-1 successor is dst), forcing a
     3-edge detour that broke the 2x bound. On a unit-weight fat-tree
     the closed 1-stroll from a host is host -> edge switch -> host,
     cost 2. *)
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let h = ft.hosts.(5) in
  let dp = Stroll_dp.solve ~cm ~src:h ~dst:h ~n:1 () in
  check_float "closed 1-stroll is out-and-back" 2.0 dp.cost;
  Alcotest.(check int) "two edges" 2 dp.edges;
  let exact = Stroll_exact.solve ~cm ~src:h ~dst:h ~n:1 () in
  check_float "exact agrees" 2.0 exact.cost;
  for n = 1 to 4 do
    let dp = Stroll_dp.solve ~cm ~src:h ~dst:h ~n () in
    let exact = Stroll_exact.solve ~cm ~src:h ~dst:h ~n () in
    Alcotest.(check bool)
      (Printf.sprintf "closed stroll within 2x at n=%d" n)
      true
      ((not exact.proven_optimal)
      || dp.cost <= (2.0 *. exact.cost) +. 1e-9)
  done

let test_stroll_switches_distinct () =
  let problem, ft = k4_problem ~l:4 ~n:5 ~seed:7 in
  ignore problem;
  let cm = Cost_matrix.compute ft.graph in
  let r = Stroll_dp.solve ~cm ~src:ft.hosts.(1) ~dst:ft.hosts.(9) ~n:5 () in
  let sorted = Array.copy r.switches in
  Array.sort compare sorted;
  let distinct = Array.length sorted in
  let dedup =
    Array.to_list sorted |> List.sort_uniq compare |> List.length
  in
  Alcotest.(check int) "no duplicates" distinct dedup

(* --- placement algorithms ------------------------------------------- *)

let test_dp_placement_close_to_optimal () =
  let problem, _ = k4_problem ~l:6 ~n:4 ~seed:11 in
  let rates = Flow.base_rates (Problem.flows problem) in
  let dp = Placement_dp.solve problem ~rates () in
  let opt = Placement_opt.solve problem ~rates () in
  Alcotest.(check bool) "proved" true opt.proven_optimal;
  Alcotest.(check bool) "dp >= opt" true (dp.cost >= opt.cost -. 1e-9);
  Alcotest.(check bool) "dp within 1.5x of opt" true
    (dp.cost <= 1.5 *. opt.cost);
  Placement.validate problem dp.placement;
  Placement.validate problem opt.placement

let test_placement_cost_equals_eq1 () =
  let problem, _ = k4_problem ~l:5 ~n:3 ~seed:3 in
  let rates = Flow.base_rates (Problem.flows problem) in
  let dp = Placement_dp.solve problem ~rates () in
  check_float "reported cost = Eq.1 evaluation" dp.cost
    (Cost.comm_cost problem ~rates dp.placement)

let test_rescore_never_worse () =
  for seed = 1 to 5 do
    let problem, _ = k4_problem ~l:8 ~n:5 ~seed in
    let rates = Flow.base_rates (Problem.flows problem) in
    let plain = Placement_dp.solve problem ~rates () in
    let rescored = Placement_dp.solve problem ~rates ~rescore:true () in
    Alcotest.(check bool)
      (Printf.sprintf "rescore <= plain (seed %d)" seed)
      true
      (rescored.cost <= plain.cost +. 1e-9)
  done

(* --- migration ------------------------------------------------------- *)

let test_theorem4_mu_zero_degenerates_to_top () =
  let problem, _ = k4_problem ~l:5 ~n:3 ~seed:21 in
  let rates = Flow.base_rates (Problem.flows problem) in
  let rng = Rng.create 99 in
  let current = Placement.random ~rng problem in
  let top = Placement_opt.solve problem ~rates () in
  let tom = Migration_opt.solve problem ~rates ~mu:0.0 ~current () in
  Alcotest.(check bool) "both proved" true
    (top.proven_optimal && tom.proven_optimal);
  check_float "TOM(mu=0) = TOP" top.cost tom.cost

let test_mpareto_never_worse_than_staying () =
  for seed = 1 to 6 do
    let problem, _ = k4_problem ~l:6 ~n:4 ~seed in
    let rng = Rng.create (seed * 13) in
    let rates0 = Flow.base_rates (Problem.flows problem) in
    let current = (Placement_dp.solve problem ~rates:rates0 ()).placement in
    let rates1 = Workload.redraw_rates ~rng (Problem.flows problem) in
    let outcome = Mpareto.migrate problem ~rates:rates1 ~mu:100.0 ~current () in
    let stay = Cost.comm_cost problem ~rates:rates1 current in
    Alcotest.(check bool)
      (Printf.sprintf "mpareto <= stay (seed %d)" seed)
      true
      (outcome.total_cost <= stay +. 1e-9)
  done

let test_mpareto_not_better_than_exhaustive () =
  for seed = 1 to 4 do
    let problem, _ = k4_problem ~l:4 ~n:3 ~seed in
    let rng = Rng.create (seed * 7) in
    let rates0 = Flow.base_rates (Problem.flows problem) in
    let current = (Placement_dp.solve problem ~rates:rates0 ()).placement in
    let rates = Workload.redraw_rates ~rng (Problem.flows problem) in
    let mp = Mpareto.migrate problem ~rates ~mu:50.0 ~current () in
    let opt = Migration_opt.solve problem ~rates ~mu:50.0 ~current () in
    Alcotest.(check bool) "proved" true opt.proven_optimal;
    Alcotest.(check bool)
      (Printf.sprintf "opt <= mpareto (seed %d)" seed)
      true
      (opt.cost <= mp.total_cost +. 1e-9)
  done

let test_mpareto_row0_is_current () =
  let problem, _ = k4_problem ~l:4 ~n:3 ~seed:5 in
  let rates = Flow.base_rates (Problem.flows problem) in
  let rng = Rng.create 2 in
  let current = Placement.random ~rng problem in
  let outcome = Mpareto.migrate problem ~rates ~mu:1e6 ~current () in
  (* Enormous mu: migration can never pay off, so mPareto stays put. *)
  Alcotest.(check bool) "no movement under huge mu" true
    (Placement.equal outcome.migration current);
  check_float "zero migration cost" 0.0 outcome.migration_cost

let test_frontier_rows_interpolate () =
  let problem, _ = k4_problem ~l:4 ~n:3 ~seed:8 in
  let rng = Rng.create 31 in
  let src = Placement.random ~rng problem in
  let dst = Placement.random ~rng problem in
  let paths = Frontier.migration_paths problem ~src ~dst in
  let rows = Frontier.parallel paths in
  Alcotest.(check bool) "row 0 = src" true (rows.(0) = src);
  Alcotest.(check bool) "last row = dst" true
    (rows.(Array.length rows - 1) = dst)

let test_frontier_search_sandwich () =
  for seed = 1 to 4 do
    let problem, _ = k4_problem ~l:6 ~n:4 ~seed in
    let rng = Rng.create (seed * 17) in
    let current = Placement.random ~rng problem in
    let rates = Workload.redraw_rates ~rng (Problem.flows problem) in
    let mu = 200.0 in
    let parallel = Mpareto.migrate problem ~rates ~mu ~current () in
    let full = Frontier_search.migrate problem ~rates ~mu ~current () in
    let opt = Migration_opt.solve problem ~rates ~mu ~current () in
    Alcotest.(check bool) "full frontier set explored" false full.truncated;
    Alcotest.(check bool)
      (Printf.sprintf "full <= parallel (seed %d)" seed)
      true
      (full.total_cost <= parallel.total_cost +. 1e-6);
    Alcotest.(check bool)
      (Printf.sprintf "optimal <= full (seed %d)" seed)
      true
      (opt.cost <= full.total_cost +. 1e-6);
    Placement.validate problem full.migration
  done

let test_frontier_search_truncation () =
  let problem, _ = k4_problem ~l:6 ~n:4 ~seed:9 in
  let rng = Rng.create 41 in
  let current = Placement.random ~rng problem in
  let rates = Workload.redraw_rates ~rng (Problem.flows problem) in
  let out =
    Frontier_search.migrate problem ~rates ~mu:1.0 ~current
      ~max_combinations:1 ()
  in
  (* Even fully truncated, "stay" guards the result. *)
  let stay = Cost.comm_cost problem ~rates current in
  Alcotest.(check bool) "never worse than staying" true
    (out.total_cost <= stay +. 1e-6);
  Alcotest.(check bool) "evaluation count bounded" true
    (out.frontiers_evaluated <= 1)

(* --- cost decomposition ---------------------------------------------- *)

let test_total_cost_decomposition () =
  let problem, _ = k4_problem ~l:5 ~n:3 ~seed:17 in
  let rates = Flow.base_rates (Problem.flows problem) in
  let rng = Rng.create 4 in
  let a = Placement.random ~rng problem in
  let b = Placement.random ~rng problem in
  let mu = 123.0 in
  check_float "C_t = C_b + C_a"
    (Cost.total_cost problem ~rates ~mu ~src:a ~dst:b)
    (Cost.migration_cost problem ~mu ~src:a ~dst:b
    +. Cost.comm_cost problem ~rates b)

let test_attach_consistency () =
  let problem, _ = k4_problem ~l:7 ~n:4 ~seed:23 in
  let rates = Flow.base_rates (Problem.flows problem) in
  let att = Cost.attach problem ~rates in
  let rng = Rng.create 77 in
  for _ = 1 to 10 do
    let p = Placement.random ~rng problem in
    check_float "attach-based C_a = direct C_a"
      (Cost.comm_cost problem ~rates p)
      (Cost.comm_cost_with_attach problem att p)
  done

(* --- flow metrics -------------------------------------------------------- *)

let test_flow_metrics_fig2 () =
  (* Fig. 2's single flow: with the chain on its shortest path region,
     route >= direct always; the known instance gives route 10 for the
     black dashed flow. *)
  let problem, _ = k4_problem ~l:5 ~n:3 ~seed:13 in
  let rates = Flow.base_rates (Problem.flows problem) in
  let p = (Placement_dp.solve problem ~rates ()).placement in
  let m = Flow_metrics.compute problem p in
  Array.iter
    (fun (pf : Flow_metrics.per_flow) ->
      Alcotest.(check bool) "route >= direct" true
        (pf.route_delay >= pf.direct_delay -. 1e-9);
      Alcotest.(check bool) "stretch >= 1 for separated pairs" true
        (pf.direct_delay = 0.0 || pf.stretch >= 1.0 -. 1e-9))
    m.per_flow;
  Alcotest.(check bool) "mean <= p95 <= max" true
    (m.mean_delay <= m.p95_delay +. 1e-9 && m.p95_delay <= m.max_delay +. 1e-9)

let test_flow_metrics_consistency_with_cost () =
  (* Rate-weighted sum of route delays must equal C_a. *)
  let problem, _ = k4_problem ~l:7 ~n:4 ~seed:14 in
  let rates = Flow.base_rates (Problem.flows problem) in
  let rng = Rng.create 15 in
  let p = Placement.random ~rng problem in
  let m = Flow_metrics.compute problem p in
  let weighted =
    Array.fold_left
      (fun acc (pf : Flow_metrics.per_flow) ->
        acc +. (rates.(pf.flow) *. pf.route_delay))
      0.0 m.per_flow
  in
  Alcotest.(check bool) "sum rate*route = C_a" true
    (Float.abs (weighted -. Cost.comm_cost problem ~rates p)
    <= 1e-6 *. Float.max 1.0 weighted)

(* --- link loads -------------------------------------------------------- *)

let test_link_load_equals_eq1 () =
  for seed = 1 to 5 do
    let problem, _ = k4_problem ~l:8 ~n:4 ~seed in
    let rates = Flow.base_rates (Problem.flows problem) in
    let rng = Rng.create (seed * 3) in
    let p = Placement.random ~rng problem in
    let loads = Link_load.compute problem ~rates p in
    Alcotest.(check bool)
      (Printf.sprintf "sum of load*weight = C_a (seed %d)" seed)
      true
      (Float.abs (Link_load.weighted_total loads -. Cost.comm_cost problem ~rates p)
      <= 1e-6 *. Float.max 1.0 (Cost.comm_cost problem ~rates p))
  done

let test_link_load_structure () =
  let problem = fig3 () in
  (* Fig. 3(a): f1@s0, f2@s1, rates <100,1>. Flow 0 (both VMs on h1 at
     s0): h1-s0 carries 100 twice (in and out) = 200; link s0-s1 carries
     100 + ... flow 1 (h2 at s4): h2..s0 legs cross s3-s4 etc. *)
  let loads = Link_load.compute problem ~rates:[| 100.0; 1.0 |] [| 0; 1 |] in
  let h1 = 5 in
  Alcotest.(check (float 1e-9)) "host uplink carries flow 0 twice" 200.0
    (Link_load.load loads h1 0);
  Alcotest.(check bool) "hottest list is sorted" true
    (match Link_load.hottest loads 3 with
    | (_, _, a) :: (_, _, b) :: _ -> a >= b
    | _ -> false);
  Alcotest.(check bool) "max >= mean" true
    (Link_load.max_load loads >= Link_load.mean_load loads)

let test_link_load_nan_rate_rejected () =
  (* Regression for the poly-compare hazard (ppdc-lint R1): a NaN rate
     used to flow into the load table and let [hottest]'s old
     polymorphic sort rank the poisoned edge arbitrarily. *)
  let problem = fig3 () in
  Alcotest.check_raises "NaN rate rejected"
    (Invalid_argument "Link_load.compute: NaN rate for flow 1") (fun () ->
      ignore (Link_load.compute problem ~rates:[| 100.0; Float.nan |] [| 0; 1 |]))

let test_link_load_edgeless_mean_is_zero () =
  (* Regression: 0 total / 0 edges used to evaluate to NaN. *)
  let g = Ppdc_topology.Graph.make ~kinds:[| Ppdc_topology.Graph.Switch |] ~edges:[] in
  let idle = Link_load.of_graph g in
  Alcotest.(check (float 0.0)) "edgeless mean is zero" 0.0
    (Link_load.mean_load idle);
  Alcotest.(check bool) "finite, not NaN" false
    (Float.is_nan (Link_load.mean_load idle));
  (* And an idle table over a real graph reports zero everywhere. *)
  let problem = fig3 () in
  let idle = Link_load.of_graph (Problem.graph problem) in
  Alcotest.(check (float 0.0)) "idle mean" 0.0 (Link_load.mean_load idle);
  Alcotest.(check (float 0.0)) "idle max" 0.0 (Link_load.max_load idle)

let () =
  Alcotest.run "ppdc_core"
    [
      ( "fig3-anchor",
        [
          Alcotest.test_case "initial optimal placement costs 410" `Quick
            test_fig3_initial_placement;
          Alcotest.test_case "rate swap raises C_a to 1004" `Quick
            test_fig3_rate_swap_cost;
          Alcotest.test_case "mPareto migrates for 6 and lands at 410" `Quick
            test_fig3_mpareto_migration;
          Alcotest.test_case "58.6% total-cost reduction" `Quick
            test_fig3_migration_is_paper_example;
        ] );
      ( "fig4-stroll",
        [
          Alcotest.test_case "DP stroll finds the cost-6 walk" `Quick
            test_fig4_dp_stroll_finds_walk;
          Alcotest.test_case "exact stroll agrees" `Quick test_fig4_exact_matches;
          Alcotest.test_case "primal-dual within its guarantee" `Quick
            test_fig4_primal_dual_within_guarantee;
        ] );
      ( "stroll",
        [
          Alcotest.test_case "7-stroll on k=4 fat-tree (Example 3)" `Quick
            test_seven_stroll_on_fat_tree;
          Alcotest.test_case "DP bounded by exact and 2x exact" `Quick
            test_dp_stroll_never_beats_exact;
          Alcotest.test_case "closed stroll (src = dst) is out-and-back"
            `Quick test_closed_stroll_src_eq_dst;
          Alcotest.test_case "stroll switches are distinct" `Quick
            test_stroll_switches_distinct;
        ] );
      ( "placement",
        [
          Alcotest.test_case "DP close to optimal" `Quick
            test_dp_placement_close_to_optimal;
          Alcotest.test_case "reported cost equals Eq. 1" `Quick
            test_placement_cost_equals_eq1;
          Alcotest.test_case "rescoring never hurts" `Quick
            test_rescore_never_worse;
        ] );
      ( "migration",
        [
          Alcotest.test_case "Theorem 4: TOM(mu=0) = TOP" `Quick
            test_theorem4_mu_zero_degenerates_to_top;
          Alcotest.test_case "mPareto never worse than staying" `Quick
            test_mpareto_never_worse_than_staying;
          Alcotest.test_case "mPareto never beats exhaustive TOM" `Quick
            test_mpareto_not_better_than_exhaustive;
          Alcotest.test_case "huge mu freezes the placement" `Quick
            test_mpareto_row0_is_current;
          Alcotest.test_case "parallel frontiers interpolate p to p'" `Quick
            test_frontier_rows_interpolate;
          Alcotest.test_case "Definition-1 search sandwiched by Algo 5/6"
            `Quick test_frontier_search_sandwich;
          Alcotest.test_case "Definition-1 search truncation" `Quick
            test_frontier_search_truncation;
        ] );
      ( "flow-metrics",
        [
          Alcotest.test_case "route/stretch invariants" `Quick
            test_flow_metrics_fig2;
          Alcotest.test_case "rate-weighted delays reproduce C_a" `Quick
            test_flow_metrics_consistency_with_cost;
        ] );
      ( "link-load",
        [
          Alcotest.test_case "weighted loads reproduce Eq. 1" `Quick
            test_link_load_equals_eq1;
          Alcotest.test_case "per-link accounting on Fig. 3" `Quick
            test_link_load_structure;
          Alcotest.test_case "edgeless mean load is zero" `Quick
            test_link_load_edgeless_mean_is_zero;
          Alcotest.test_case "NaN rate rejected (poly-compare regression)"
            `Quick test_link_load_nan_rate_rejected;
        ] );
      ( "cost-model",
        [
          Alcotest.test_case "C_t decomposes into C_b + C_a" `Quick
            test_total_cost_decomposition;
          Alcotest.test_case "attach sums match direct evaluation" `Quick
            test_attach_consistency;
        ] );
    ]
