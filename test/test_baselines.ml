module Fat_tree = Ppdc_topology.Fat_tree
module Cost_matrix = Ppdc_topology.Cost_matrix
module Flow = Ppdc_traffic.Flow
module Workload = Ppdc_traffic.Workload
module Rng = Ppdc_prelude.Rng
open Ppdc_core
open Ppdc_baselines

let k4_problem ~l ~n ~seed =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let rng = Rng.create seed in
  let flows = Workload.generate_on_fat_tree ~rng ~l ft in
  Problem.make ~cm ~flows ~n ()

(* --- placement baselines ----------------------------------------------- *)

let test_steering_valid_and_consistent () =
  for seed = 1 to 5 do
    let problem = k4_problem ~l:6 ~n:4 ~seed in
    let rates = Flow.base_rates (Problem.flows problem) in
    let s = Steering.place problem ~rates in
    Placement.validate problem s.placement;
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "cost is Eq.1 (seed %d)" seed)
      (Cost.comm_cost problem ~rates s.placement)
      s.cost
  done

let test_greedy_valid_and_consistent () =
  for seed = 1 to 5 do
    let problem = k4_problem ~l:6 ~n:4 ~seed in
    let rates = Flow.base_rates (Problem.flows problem) in
    let g = Greedy_liu.place problem ~rates in
    Placement.validate problem g.placement;
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "cost is Eq.1 (seed %d)" seed)
      (Cost.comm_cost problem ~rates g.placement)
      g.cost
  done

let test_dp_beats_baselines_on_average () =
  (* The paper's Fig. 9 claim in miniature: averaged over seeds, DP is at
     least as cheap as Steering and Greedy. *)
  let dp_total = ref 0.0 and steering_total = ref 0.0 and greedy_total = ref 0.0 in
  for seed = 1 to 10 do
    let problem = k4_problem ~l:10 ~n:5 ~seed in
    let rates = Flow.base_rates (Problem.flows problem) in
    dp_total := !dp_total +. (Placement_dp.solve problem ~rates ()).cost;
    steering_total := !steering_total +. (Steering.place problem ~rates).cost;
    greedy_total := !greedy_total +. (Greedy_liu.place problem ~rates).cost
  done;
  Alcotest.(check bool) "DP <= Steering on average" true
    (!dp_total <= !steering_total +. 1e-6);
  Alcotest.(check bool) "DP <= Greedy on average" true
    (!dp_total <= !greedy_total +. 1e-6)

let test_baselines_single_vnf () =
  let problem = k4_problem ~l:4 ~n:1 ~seed:2 in
  let rates = Flow.base_rates (Problem.flows problem) in
  let s = Steering.place problem ~rates in
  let opt = Placement_opt.solve problem ~rates () in
  (* With one VNF, Steering's greedy choice IS the optimum. *)
  Alcotest.(check (float 1e-6)) "steering optimal for n=1" opt.cost s.cost

(* --- VM machinery ------------------------------------------------------- *)

let test_vm_enumeration () =
  let problem = k4_problem ~l:3 ~n:2 ~seed:1 in
  let vms = Vm.all problem in
  Alcotest.(check int) "2l VMs" 6 (Array.length vms);
  let flows = Problem.flows problem in
  Array.iter
    (fun vm ->
      let h = Vm.host flows vm in
      Alcotest.(check bool) "host is a host" true
        (Ppdc_topology.Graph.is_host (Problem.graph problem) h))
    vms

let test_vm_move () =
  let problem = k4_problem ~l:3 ~n:2 ~seed:1 in
  let flows = Problem.flows problem in
  let vm = { Vm.flow = 1; endpoint = Vm.Dst } in
  let target =
    (Ppdc_topology.Graph.hosts (Problem.graph problem)).(0)
  in
  let moved = Vm.move flows ~vm ~to_host:target in
  Alcotest.(check int) "dst rehosted" target moved.(1).Flow.dst_host;
  Alcotest.(check int) "src untouched" flows.(1).Flow.src_host
    moved.(1).Flow.src_host;
  Alcotest.(check int) "other flows untouched" flows.(0).Flow.dst_host
    moved.(0).Flow.dst_host

let test_occupancy_and_capacity () =
  let problem = k4_problem ~l:8 ~n:2 ~seed:3 in
  let occ = Vm.occupancy problem (Problem.flows problem) in
  Alcotest.(check int) "total occupancy = 2l" 16 (Array.fold_left ( + ) 0 occ);
  let cap = Vm.default_capacity problem in
  Alcotest.(check bool) "initial state feasible" true
    (Array.for_all (fun o -> o <= cap) occ)

(* --- PLAN ---------------------------------------------------------------- *)

let plan_setup ~seed =
  let problem = k4_problem ~l:8 ~n:3 ~seed in
  let rates0 = Flow.base_rates (Problem.flows problem) in
  let placement = (Placement_dp.solve problem ~rates:rates0 ()).placement in
  let rng = Rng.create (seed * 31) in
  let rates = Workload.redraw_rates ~rng (Problem.flows problem) in
  (problem, placement, rates)

let test_plan_improves_or_stays () =
  for seed = 1 to 5 do
    let problem, placement, rates = plan_setup ~seed in
    let before = Cost.comm_cost problem ~rates placement in
    let out = Plan.migrate problem ~rates ~mu_vm:1.0 ~placement () in
    Alcotest.(check bool)
      (Printf.sprintf "total <= staying (seed %d)" seed)
      true
      (out.total_cost <= before +. 1e-6)
  done

let test_plan_respects_capacity () =
  let problem, placement, rates = plan_setup ~seed:4 in
  let cap = Vm.default_capacity problem in
  let out = Plan.migrate problem ~rates ~mu_vm:1.0 ~placement ~capacity:cap () in
  let occ = Vm.occupancy problem out.flows in
  Alcotest.(check bool) "capacity respected" true
    (Array.for_all (fun o -> o <= cap) occ)

let test_plan_huge_mu_no_moves () =
  let problem, placement, rates = plan_setup ~seed:5 in
  let out = Plan.migrate problem ~rates ~mu_vm:1e9 ~placement () in
  Alcotest.(check int) "no migrations" 0 out.migrations;
  Alcotest.(check (float 1e-9)) "no migration cost" 0.0 out.migration_cost

let test_plan_max_moves () =
  let problem, placement, rates = plan_setup ~seed:6 in
  let out = Plan.migrate problem ~rates ~mu_vm:0.0 ~placement ~max_moves:2 () in
  Alcotest.(check bool) "bounded moves" true (out.migrations <= 2)

let test_plan_cost_decomposition () =
  let problem, placement, rates = plan_setup ~seed:7 in
  let out = Plan.migrate problem ~rates ~mu_vm:1.0 ~placement () in
  let moved_problem = Problem.with_flows problem out.flows in
  Alcotest.(check (float 1e-6)) "comm cost recomputes"
    (Cost.comm_cost moved_problem ~rates placement)
    out.comm_cost;
  Alcotest.(check (float 1e-6)) "total = parts"
    (out.migration_cost +. out.comm_cost)
    out.total_cost

(* --- MCF migration --------------------------------------------------------- *)

let test_mcf_improves_or_stays () =
  for seed = 1 to 5 do
    let problem, placement, rates = plan_setup ~seed in
    let before = Cost.comm_cost problem ~rates placement in
    let out = Mcf_migration.migrate problem ~rates ~mu_vm:1.0 ~placement () in
    Alcotest.(check bool)
      (Printf.sprintf "total <= staying (seed %d)" seed)
      true
      (out.total_cost <= before +. 1e-6)
  done

let test_mcf_at_least_as_good_as_plan () =
  (* MCF computes the globally optimal VM reassignment; PLAN is greedy. *)
  for seed = 1 to 5 do
    let problem, placement, rates = plan_setup ~seed in
    let plan = Plan.migrate problem ~rates ~mu_vm:1.0 ~placement () in
    let mcf =
      Mcf_migration.migrate problem ~rates ~mu_vm:1.0 ~placement
        ~candidate_limit:1000 ()
    in
    Alcotest.(check bool)
      (Printf.sprintf "mcf <= plan (seed %d)" seed)
      true
      (mcf.total_cost <= plan.total_cost +. 1e-6)
  done

let test_mcf_respects_capacity () =
  let problem, placement, rates = plan_setup ~seed:9 in
  let cap = Vm.default_capacity problem in
  let out =
    Mcf_migration.migrate problem ~rates ~mu_vm:1.0 ~placement ~capacity:cap ()
  in
  let occ = Vm.occupancy problem out.flows in
  Alcotest.(check bool) "capacity respected" true
    (Array.for_all (fun o -> o <= cap) occ)

let test_mcf_huge_mu_no_moves () =
  let problem, placement, rates = plan_setup ~seed:10 in
  let out = Mcf_migration.migrate problem ~rates ~mu_vm:1e9 ~placement () in
  Alcotest.(check int) "no migrations" 0 out.migrations

(* --- NoMigration & cross-baseline ---------------------------------------- *)

let test_no_migration () =
  let problem, placement, rates = plan_setup ~seed:11 in
  let out = No_migration.evaluate problem ~rates ~placement in
  Alcotest.(check (float 1e-6)) "pure comm cost"
    (Cost.comm_cost problem ~rates placement)
    out.total_cost

let test_plan_nan_rate_rejected () =
  (* Regression for the poly-compare hazard (ppdc-lint R1): a NaN rate
     used to produce NaN utilities that the old polymorphic descending
     sort ordered arbitrarily, silently reordering the whole candidate
     list. Plan now fails loudly instead. *)
  let problem, placement, rates = plan_setup ~seed:8 in
  rates.(0) <- Float.nan;
  Alcotest.check_raises "NaN rate rejected"
    (Invalid_argument "Plan.migrate: NaN rate for flow 0") (fun () ->
      ignore (Plan.migrate problem ~rates ~mu_vm:1.0 ~placement ()))

let test_vnf_migration_beats_vm_migration_here () =
  (* The paper's central comparison: on average, mPareto (VNF moves)
     outperforms PLAN and MCF (VM moves) under rate churn. *)
  let mp_total = ref 0.0 and plan_total = ref 0.0 and mcf_total = ref 0.0 in
  for seed = 1 to 8 do
    let problem, placement, rates = plan_setup ~seed in
    (* Paper regime: migrating ~100 MB of VNF/VM state vs ~1 KB packets
       puts mu at 10^4. *)
    let mu = 1e4 in
    let mp = Mpareto.migrate problem ~rates ~mu ~current:placement () in
    let plan = Plan.migrate problem ~rates ~mu_vm:mu ~placement () in
    let mcf = Mcf_migration.migrate problem ~rates ~mu_vm:mu ~placement () in
    mp_total := !mp_total +. mp.total_cost;
    plan_total := !plan_total +. plan.total_cost;
    mcf_total := !mcf_total +. mcf.total_cost
  done;
  Alcotest.(check bool) "mPareto <= PLAN" true (!mp_total <= !plan_total +. 1e-6);
  Alcotest.(check bool) "mPareto <= MCF" true (!mp_total <= !mcf_total +. 1e-6)

let () =
  Alcotest.run "ppdc_baselines"
    [
      ( "placement-baselines",
        [
          Alcotest.test_case "Steering validity" `Quick
            test_steering_valid_and_consistent;
          Alcotest.test_case "Greedy validity" `Quick
            test_greedy_valid_and_consistent;
          Alcotest.test_case "DP beats both on average (Fig. 9)" `Quick
            test_dp_beats_baselines_on_average;
          Alcotest.test_case "n=1 degenerates to optimal" `Quick
            test_baselines_single_vnf;
        ] );
      ( "vm",
        [
          Alcotest.test_case "enumeration" `Quick test_vm_enumeration;
          Alcotest.test_case "moves" `Quick test_vm_move;
          Alcotest.test_case "occupancy and capacity" `Quick
            test_occupancy_and_capacity;
        ] );
      ( "plan",
        [
          Alcotest.test_case "never worse than staying" `Quick
            test_plan_improves_or_stays;
          Alcotest.test_case "respects capacity" `Quick
            test_plan_respects_capacity;
          Alcotest.test_case "huge mu freezes VMs" `Quick
            test_plan_huge_mu_no_moves;
          Alcotest.test_case "max_moves bound" `Quick test_plan_max_moves;
          Alcotest.test_case "NaN rate rejected (poly-compare regression)"
            `Quick test_plan_nan_rate_rejected;
          Alcotest.test_case "cost decomposition" `Quick
            test_plan_cost_decomposition;
        ] );
      ( "mcf-migration",
        [
          Alcotest.test_case "never worse than staying" `Quick
            test_mcf_improves_or_stays;
          Alcotest.test_case "at least as good as PLAN" `Quick
            test_mcf_at_least_as_good_as_plan;
          Alcotest.test_case "respects capacity" `Quick
            test_mcf_respects_capacity;
          Alcotest.test_case "huge mu freezes VMs" `Quick
            test_mcf_huge_mu_no_moves;
        ] );
      ( "cross",
        [
          Alcotest.test_case "NoMigration is pure comm cost" `Quick
            test_no_migration;
          Alcotest.test_case "VNF migration beats VM migration (Fig. 11)" `Quick
            test_vnf_migration_beats_vm_migration_here;
        ] );
    ]
