(* Integration tests: the experiment registry end-to-end (every paper
   artifact regenerates without error in quick mode) plus cross-library
   flows that exercise the whole stack. *)

module Mode = Ppdc_experiments.Mode
module Registry = Ppdc_experiments.Registry
module Table = Ppdc_prelude.Table
module Rng = Ppdc_prelude.Rng
module Fat_tree = Ppdc_topology.Fat_tree
module Random_topology = Ppdc_topology.Random_topology
module Cost_matrix = Ppdc_topology.Cost_matrix
module Workload = Ppdc_traffic.Workload
module Flow = Ppdc_traffic.Flow
open Ppdc_core

let test_registry_ids_unique () =
  let ids = Registry.ids () in
  Alcotest.(check int) "no duplicate ids"
    (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_registry_find () =
  Alcotest.(check bool) "fig9 exists" true (Registry.find "fig9" <> None);
  Alcotest.(check bool) "case-insensitive" true (Registry.find "FIG9" <> None);
  Alcotest.(check bool) "unknown id" true (Registry.find "fig99" = None)

(* Each experiment regenerates in quick mode and yields renderable,
   non-empty tables. Split per experiment so a failure names itself. *)
let experiment_case (e : Registry.entry) =
  Alcotest.test_case e.id `Slow (fun () ->
      let tables = e.run Mode.Quick in
      Alcotest.(check bool) "at least one table" true (tables <> []);
      List.iter
        (fun t ->
          let rendered = Table.to_string t in
          Alcotest.(check bool)
            (Table.title t ^ " renders")
            true
            (String.length rendered > 0);
          let csv = Table.to_csv t in
          Alcotest.(check bool)
            (Table.title t ^ " has data rows")
            true
            (List.length (String.split_on_char '\n' csv) > 2))
        tables)

(* The TOP -> TOM pipeline on a topology the paper never drew: a random
   jellyfish-style fabric. Everything must still hold ("the problems and
   solutions apply to any data center topology"). *)
let test_pipeline_on_random_topology () =
  let rng = Rng.create 5 in
  let rt =
    Random_topology.build
      ~weight:(fun () -> Rng.uniform rng ~lo:0.5 ~hi:2.5)
      ~rng ~num_switches:25 ~extra_edges:15 ~hosts_per_switch:2 ()
  in
  let cm = Cost_matrix.compute rt.graph in
  let flows = Workload.generate_on_hosts ~rng ~l:15 ~hosts:rt.hosts () in
  let problem = Problem.make ~cm ~flows ~n:4 () in
  let rates = Flow.base_rates flows in
  let dp = Placement_dp.solve problem ~rates () in
  Placement.validate problem dp.placement;
  let opt = Placement_opt.solve problem ~rates () in
  Alcotest.(check bool) "optimal proved" true opt.proven_optimal;
  Alcotest.(check bool) "dp >= opt" true (dp.cost >= opt.cost -. 1e-9);
  let rates' = Workload.redraw_rates ~rng flows in
  let mp =
    Mpareto.migrate problem ~rates:rates' ~mu:10.0 ~current:dp.placement ()
  in
  Placement.validate problem mp.migration;
  let stay = Cost.comm_cost problem ~rates:rates' dp.placement in
  Alcotest.(check bool) "migration never hurts" true
    (mp.total_cost <= stay +. 1e-9);
  let baselines_total =
    let s = Ppdc_baselines.Steering.place problem ~rates in
    let g = Ppdc_baselines.Greedy_liu.place problem ~rates in
    Placement.validate problem s.placement;
    Placement.validate problem g.placement;
    s.cost +. g.cost
  in
  Alcotest.(check bool) "baselines produced finite costs" true
    (Float.is_finite baselines_total)

(* The Fig. 2 scenario: a k=4 fat-tree with an SFC of 3 VNFs and two
   flows of very different rates; the heavy flow's route must end up
   shorter than the light flow's. *)
let test_fig2_heavy_flow_gets_short_route () =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let heavy_src = ft.hosts.(0) and heavy_dst = ft.hosts.(1) in
  let light_src = ft.hosts.(8) and light_dst = ft.hosts.(15) in
  let flows =
    [|
      Flow.make ~id:0 ~src_host:heavy_src ~dst_host:heavy_dst ~base_rate:100.0
        ~coast:East;
      Flow.make ~id:1 ~src_host:light_src ~dst_host:light_dst ~base_rate:1.0
        ~coast:West;
    |]
  in
  let problem = Problem.make ~cm ~flows ~n:3 () in
  let rates = Flow.base_rates flows in
  let p = (Placement_opt.solve problem ~rates ()).placement in
  let route src dst =
    Cost_matrix.cost cm src p.(0)
    +. Cost.chain_cost problem p
    +. Cost_matrix.cost cm p.(2) dst
  in
  Alcotest.(check bool) "heavy route shorter than light route" true
    (route heavy_src heavy_dst <= route light_src light_dst)

(* Chain catalogue. *)
let test_chain_module () =
  let c = Chain.typical 5 in
  Alcotest.(check int) "length" 5 (Chain.length c);
  Alcotest.(check string) "ingress is the firewall" "firewall" (Chain.name c 0);
  Alcotest.(check bool) "access functions first" true
    (Chain.kind c 0 = Chain.Access);
  Alcotest.(check bool) "13 VNFs max" true
    (try
       ignore (Chain.typical 14);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "duplicates rejected" true
    (try
       ignore (Chain.make [| "a"; "a" |]);
       false
     with Invalid_argument _ -> true);
  let custom = Chain.make [| "fw"; "cache" |] in
  Alcotest.(check (array string)) "names round-trip" [| "fw"; "cache" |]
    (Chain.names custom)

let () =
  Alcotest.run "ppdc_integration"
    [
      ( "registry",
        [
          Alcotest.test_case "unique ids" `Quick test_registry_ids_unique;
          Alcotest.test_case "lookup" `Quick test_registry_find;
        ] );
      ("experiments-run", List.map experiment_case Registry.all);
      ( "cross-library",
        [
          Alcotest.test_case "full pipeline on a random topology" `Quick
            test_pipeline_on_random_topology;
          Alcotest.test_case "Fig. 2: heavy flow gets the short route" `Quick
            test_fig2_heavy_flow_gets_short_route;
          Alcotest.test_case "chain catalogue" `Quick test_chain_module;
        ] );
    ]
