(* Tests for the ppdc.rpc/1 daemon: engine-level unit tests that drive
   [Engine.handle_line] directly, and a [--stdio] integration test that
   spawns the real binary and walks every method plus the malformed
   cases, checking the server answers each with a structured error and
   keeps serving. *)

module Json = Ppdc_prelude.Json
module Clock = Ppdc_prelude.Clock
module Engine = Ppdc_server.Engine

(* --- response helpers ------------------------------------------------- *)

let response_id line =
  match Json.member "id" (Json.parse line) with
  | Some v -> v
  | None -> Alcotest.failf "response without id: %s" line

let expect_ok line =
  let j = Json.parse line in
  match (Json.member "ok" j, Json.member "result" j) with
  | Some (Json.Bool true), Some r -> r
  | _ -> Alcotest.failf "expected ok response, got: %s" line

let expect_error line =
  let j = Json.parse line in
  match (Json.member "ok" j, Json.member "error" j) with
  | Some (Json.Bool false), Some err -> (
      match Json.member "code" err with
      | Some (Json.Str code) -> code
      | _ -> Alcotest.failf "error without code: %s" line)
  | _ -> Alcotest.failf "expected error response, got: %s" line

let bool_field result key =
  match Json.member key result with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.failf "expected bool field %s" key

let str_field result key =
  match Json.member key result with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.failf "expected string field %s" key

(* --- engine unit tests ------------------------------------------------ *)

let eng () = Engine.create ~cache_capacity:4 ()

let load e ?(session = "s") ?(k = 4) ?(l = 6) ?(n = 3) () =
  expect_ok
    (Engine.handle_line e
       (Printf.sprintf
          {|{"id":0,"method":"load_topology","params":{"session":%S,"k":%d,"l":%d,"n":%d}}|}
          session k l n))

let test_engine_health () =
  let e = eng () in
  let r = expect_ok (Engine.handle_line e {|{"id":1,"method":"health"}|}) in
  Alcotest.(check string) "schema" "ppdc.rpc/1" (str_field r "schema");
  Alcotest.(check bool) "not stopped" false (Engine.stopped e)

let test_engine_errors_echo_id () =
  let e = eng () in
  (* Unparseable line: error with id null. *)
  let bad = Engine.handle_line e "{nope" in
  Alcotest.(check string) "parse error" "parse_error" (expect_error bad);
  Alcotest.(check bool) "id null" true (Json.equal Json.Null (response_id bad));
  (* Valid JSON that is not a request object. *)
  Alcotest.(check string) "invalid request" "invalid_request"
    (expect_error (Engine.handle_line e "[1,2]"));
  (* Unknown method echoes the (string) id. *)
  let unk = Engine.handle_line e {|{"id":"x7","method":"frobnicate"}|} in
  Alcotest.(check string) "unknown method" "unknown_method" (expect_error unk);
  Alcotest.(check bool) "id echoed" true
    (Json.equal (Json.Str "x7") (response_id unk));
  (* Missing session. *)
  let ghost =
    Engine.handle_line e {|{"id":9,"method":"place","params":{"session":"g"}}|}
  in
  Alcotest.(check string) "unknown session" "unknown_session"
    (expect_error ghost);
  Alcotest.(check bool) "numeric id echoed" true
    (Json.equal (Json.Num 9.0) (response_id ghost));
  (* The engine survives all of the above. *)
  ignore (expect_ok (Engine.handle_line e {|{"id":10,"method":"health"}|}));
  (* The canned overlong response is a well-formed line_too_long error. *)
  Alcotest.(check string) "overlong canned" "line_too_long"
    (expect_error Engine.overlong_response);
  Alcotest.(check bool) "overlong id null" true
    (Json.equal Json.Null (response_id Engine.overlong_response))

let test_engine_place_uses_cache () =
  let e = eng () in
  ignore (load e ());
  let place () =
    expect_ok
      (Engine.handle_line e
         {|{"id":1,"method":"place","params":{"session":"s","algo":"dp"}}|})
  in
  let first = place () in
  let second = place () in
  Alcotest.(check bool) "first place misses" false (bool_field first "cache_hit");
  Alcotest.(check bool) "second place hits" true (bool_field second "cache_hit");
  (* Same fabric, same workload: the answer must not depend on the cache. *)
  let render r key = Json.to_string (Option.get (Json.member key r)) in
  Alcotest.(check string) "same placement" (render first "placement")
    (render second "placement");
  Alcotest.(check string) "same cost" (render first "cost") (render second "cost");
  let stats = expect_ok (Engine.handle_line e {|{"id":2,"method":"stats"}|}) in
  match Json.member "cache" stats with
  | Some cache -> (
      match (Json.member "hits" cache, Json.member "entries" cache) with
      | Some (Json.Num h), Some (Json.Num n) ->
          Alcotest.(check bool) "stats report a hit" true (h >= 1.0);
          Alcotest.(check bool) "one fabric cached" true
            (Float.compare n 1.0 = 0)
      | _ -> Alcotest.fail "stats.cache missing hits/entries")
  | None -> Alcotest.fail "stats without cache section"

let test_engine_migrate_flow () =
  let e = eng () in
  ignore (load e ());
  (* Migration without a placement is a structured refusal. *)
  Alcotest.(check string) "migrate before place" "invalid_params"
    (expect_error
       (Engine.handle_line e
          {|{"id":1,"method":"migrate","params":{"session":"s"}}|}));
  ignore
    (expect_ok
       (Engine.handle_line e
          {|{"id":2,"method":"place","params":{"session":"s"}}|}));
  ignore
    (expect_ok
       (Engine.handle_line e
          {|{"id":3,"method":"rates_update","params":{"session":"s","seed":2}}|}));
  let m =
    expect_ok
      (Engine.handle_line e
         {|{"id":4,"method":"migrate","params":{"session":"s","algo":"mpareto","mu":100}}|})
  in
  Alcotest.(check string) "algo echoed" "mpareto" (str_field m "algo");
  Alcotest.(check bool) "migrate reuses cached matrix" true
    (bool_field m "cache_hit")

let test_engine_simulate_events () =
  let e = eng () in
  ignore (load e ());
  let r =
    expect_ok
      (Engine.handle_line e
         {|{"id":1,"method":"simulate_events","params":{"session":"s","mu":1e4,"trigger":"threshold:1.2","probe_every":0.5}}|})
  in
  Alcotest.(check string) "trigger echoed" "threshold" (str_field r "trigger");
  Alcotest.(check string) "default policy" "mPareto" (str_field r "policy");
  let numf key =
    match Json.member key r with
    | Some (Json.Num x) -> x
    | _ -> Alcotest.failf "expected numeric field %s" key
  in
  Alcotest.(check bool) "events processed" true (numf "events" > 0.0);
  Alcotest.(check bool) "total = comm + migration" true
    (Float.compare (numf "total_cost")
       (numf "comm_cost" +. numf "migration_cost")
    = 0);
  (* The replay runs on copies: the session still has no placement, so
     a migrate must still be refused. *)
  Alcotest.(check string) "session placement untouched" "invalid_params"
    (expect_error
       (Engine.handle_line e
          {|{"id":2,"method":"migrate","params":{"session":"s"}}|}));
  (* Bad trigger grammar is a structured refusal. *)
  Alcotest.(check string) "bad trigger" "invalid_params"
    (expect_error
       (Engine.handle_line e
          {|{"id":3,"method":"simulate_events","params":{"session":"s","trigger":"sometimes"}}|}))

let test_engine_fail_links_changes_digest () =
  let e = eng () in
  let loaded = load e ~k:4 () in
  let before = str_field loaded "digest" in
  let degraded =
    expect_ok
      (Engine.handle_line e
         {|{"id":1,"method":"fail_links","params":{"session":"s","fraction":0.05,"seed":3}}|})
  in
  let after = str_field degraded "digest" in
  Alcotest.(check bool) "digest changed" false (String.equal before after);
  (* The degraded fabric is new to the cache: its first place misses. *)
  let p =
    expect_ok
      (Engine.handle_line e
         {|{"id":2,"method":"place","params":{"session":"s"}}|})
  in
  Alcotest.(check bool) "degraded fabric misses" false (bool_field p "cache_hit")

let num_field j key =
  match Json.member key j with
  | Some (Json.Num n) -> n
  | _ -> Alcotest.failf "expected numeric field %s" key

let test_engine_fail_links_repairs_warm_cache () =
  (* When the healthy fabric's matrix is already cached, fail_links
     derives the degraded matrix incrementally and installs it under
     the new digest — so the first place after the failure is a warm
     hit, not a cold all-pairs rebuild. *)
  let e = eng () in
  ignore (load e ~k:4 ());
  let place id =
    expect_ok
      (Engine.handle_line e
         (Printf.sprintf
            {|{"id":%d,"method":"place","params":{"session":"s","algo":"dp"}}|}
            id))
  in
  ignore (place 1);
  let degraded =
    expect_ok
      (Engine.handle_line e
         {|{"id":2,"method":"fail_links","params":{"session":"s","fraction":0.05,"seed":3}}|})
  in
  Alcotest.(check bool) "links failed" true
    (num_field degraded "failed_count" >= 1.0);
  Alcotest.(check bool) "matrix repaired" true
    (bool_field degraded "repaired_cost_matrix");
  Alcotest.(check bool) "matrix cached after repair" true
    (bool_field degraded "cached_cost_matrix");
  let p = place 3 in
  Alcotest.(check bool) "first place after failure is warm" true
    (bool_field p "cache_hit");
  let stats = expect_ok (Engine.handle_line e {|{"id":4,"method":"stats"}|}) in
  match Json.member "cache" stats with
  | Some cache ->
      Alcotest.(check bool) "one repair counted" true
        (Float.compare (num_field cache "repairs") 1.0 = 0);
      Alcotest.(check bool) "one cold rebuild counted" true
        (Float.compare (num_field cache "rebuilds") 1.0 = 0)
  | None -> Alcotest.fail "stats without cache section"

let test_engine_failure_log_ordering () =
  (* Two failure episodes: the session's stats log must be their
     concatenation in episode order, oldest first. *)
  let e = eng () in
  ignore (load e ~k:4 ());
  let episode id seed =
    let r =
      expect_ok
        (Engine.handle_line e
           (Printf.sprintf
              {|{"id":%d,"method":"fail_links","params":{"session":"s","fraction":0.05,"seed":%d}}|}
              id seed))
    in
    match Json.member "failed" r with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "fail_links without failed list"
  in
  let first = episode 1 3 in
  let second = episode 2 11 in
  let stats = expect_ok (Engine.handle_line e {|{"id":3,"method":"stats"}|}) in
  match Json.member "sessions" stats with
  | Some (Json.List [ session ]) -> (
      Alcotest.(check bool) "failed_links counts both episodes" true
        (Float.compare
           (num_field session "failed_links")
           (float_of_int (List.length first + List.length second))
        = 0);
      match Json.member "failed" session with
      | Some (Json.List logged) ->
          Alcotest.(check string) "log is episode-ordered"
            (Json.to_string (Json.List (first @ second)))
            (Json.to_string (Json.List logged))
      | _ -> Alcotest.fail "session stats without failed log")
  | _ -> Alcotest.fail "stats without a single session"

let test_engine_invalid_params () =
  let e = eng () in
  ignore (load e ());
  Alcotest.(check string) "bogus algo" "invalid_params"
    (expect_error
       (Engine.handle_line e
          {|{"id":1,"method":"place","params":{"session":"s","algo":"bogus"}}|}));
  Alcotest.(check string) "seed+scale both given" "invalid_params"
    (expect_error
       (Engine.handle_line e
          {|{"id":2,"method":"rates_update","params":{"session":"s","seed":1,"scale":2.0}}|}));
  (* Odd fat-tree arity is rejected by the builder; the engine turns
     the exception into a structured error and keeps serving. *)
  Alcotest.(check string) "odd k" "invalid_params"
    (expect_error
       (Engine.handle_line e
          {|{"id":3,"method":"load_topology","params":{"session":"t","k":3}}|}));
  ignore (expect_ok (Engine.handle_line e {|{"id":4,"method":"health"}|}))

let test_engine_shutdown () =
  let e = eng () in
  ignore (expect_ok (Engine.handle_line e {|{"id":1,"method":"shutdown"}|}));
  Alcotest.(check bool) "stopped" true (Engine.stopped e)

let test_engine_deadline () =
  let e = eng () in
  (* Deadlines live on the monotonic Clock timebase, not the wall
     clock: an already-expired deadline means the handler never
     starts, the error echoes the id, and the engine keeps serving. *)
  let late =
    Engine.handle_line ~deadline:(Clock.now () -. 1.0) e
      {|{"id":"d1","method":"health"}|}
  in
  Alcotest.(check string) "deadline code" "deadline_exceeded"
    (expect_error late);
  Alcotest.(check bool) "deadline id echoed" true
    (Json.equal (Json.Str "d1") (response_id late));
  (* A generous deadline changes nothing. *)
  ignore
    (expect_ok
       (Engine.handle_line ~deadline:(Clock.now () +. 60.0) e
          {|{"id":"d2","method":"health"}|}));
  let stats = expect_ok (Engine.handle_line e {|{"id":"d3","method":"stats"}|}) in
  match Json.member "requests" stats with
  | Some req -> (
      match Json.member "deadline_exceeded" req with
      | Some (Json.Num n) ->
          Alcotest.(check bool) "one deadline miss counted" true
            (Float.compare n 1.0 = 0)
      | _ -> Alcotest.fail "stats without deadline_exceeded counter")
  | None -> Alcotest.fail "stats without requests section"

let test_engine_overloaded_response () =
  (* The canned rejection the socket transport writes before it ever
     reads a request: well-formed, code overloaded, id null. *)
  Alcotest.(check string) "overloaded canned" "overloaded"
    (expect_error Engine.overloaded_response);
  Alcotest.(check bool) "overloaded id null" true
    (Json.equal Json.Null (response_id Engine.overloaded_response))

(* --- protocol fuzzing -------------------------------------------------- *)

(* Random request lines: valid templates, truncated JSON, arbitrary
   bytes (NULs included), and lines far beyond the transport's bound.
   Newlines are scrubbed (the protocol frames by line; we fuzz line
   contents) and anything containing "shutdown" is skipped so [stopped]
   may only flip when a test means it to. *)
let fuzz_line_gen =
  let open QCheck.Gen in
  let scrub s =
    String.map (fun c -> if Char.equal c '\n' then ' ' else c) s
  in
  let template =
    oneofl
      [
        {|{"id":1,"method":"health"}|};
        {|{"id":"z","method":"stats"}|};
        {|{"id":2,"method":"place","params":{"session":"fz"}}|};
        {|{"id":3,"method":"load_topology","params":{"session":"fz","k":4,"l":3,"n":2}}|};
        {|{"id":4,"method":"rates_update","params":{"session":"fz","scale":2}}|};
        {|{"method":"health"}|};
        {|{"id":null,"method":"migrate","params":{"session":"fz"}}|};
        {|{"id":[1,2],"method":true}|};
        "[]";
        "null";
      ]
  in
  let truncated =
    map2
      (fun t k -> String.sub t 0 (min k (String.length t)))
      template (int_bound 40)
  in
  let junk =
    map scrub (string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 64))
  in
  let huge =
    map (fun c -> String.make 2000 (Char.chr (32 + (c mod 90)))) (int_bound 255)
  in
  frequency [ (3, template); (2, truncated); (3, junk); (1, huge) ]

let fuzz_lines =
  QCheck.make
    ~print:(fun ls -> String.concat " | " (List.map (Printf.sprintf "%S") ls))
    QCheck.Gen.(list_size (int_range 1 20) fuzz_line_gen)

let skip_line l =
  let needle = "shutdown" in
  let nl = String.length needle and n = String.length l in
  let rec find i =
    i + nl <= n && (String.equal (String.sub l i nl) needle || find (i + 1))
  in
  find 0

let is_response line =
  match Json.parse line with
  | exception Failure _ -> false
  | j -> ( match Json.member "ok" j with Some (Json.Bool _) -> true | _ -> false)

let prop_engine_fuzz =
  QCheck.Test.make ~count:300
    ~name:"handle_line is total: one well-formed line, never raises or stops"
    fuzz_lines
    (fun lines ->
      let e = eng () in
      List.iter
        (fun line ->
          if not (skip_line line) then begin
            let resp =
              try Engine.handle_line e line
              with exn ->
                QCheck.Test.fail_reportf "handle_line raised %s on %S"
                  (Printexc.to_string exn) line
            in
            if String.contains resp '\n' then
              QCheck.Test.fail_reportf "embedded newline in response to %S" line;
            if not (is_response resp) then
              QCheck.Test.fail_reportf "malformed response %S to %S" resp line;
            if Engine.stopped e then
              QCheck.Test.fail_reportf "%S stopped the engine" line
          end)
        lines;
      (* Still serving after the whole barrage. *)
      ignore (expect_ok (Engine.handle_line e {|{"id":"after","method":"health"}|}));
      true)

(* The same barrage through the transport's line loop: every non-blank
   input line gets exactly one response line, oversized ones included
   (answered [line_too_long] after resync). *)
let run_serve_channel lines =
  let in_path = Filename.temp_file "ppdc-fuzz" ".in" in
  let out_path = Filename.temp_file "ppdc-fuzz" ".out" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ in_path; out_path ])
    (fun () ->
      let oc0 = open_out_bin in_path in
      List.iter
        (fun l ->
          output_string oc0 l;
          output_char oc0 '\n')
        lines;
      close_out oc0;
      let e = eng () in
      let ic = open_in_bin in_path and oc = open_out_bin out_path in
      Ppdc_server.Transport.serve_channel ~max_line:256 e ic oc;
      close_in ic;
      close_out oc;
      let ic2 = open_in_bin out_path in
      let responses = ref [] in
      (try
         while true do
           responses := input_line ic2 :: !responses
         done
       with End_of_file -> ());
      close_in ic2;
      (e, List.rev !responses))

let prop_serve_channel_fuzz =
  QCheck.Test.make ~count:150
    ~name:"serve_channel: one response line per non-blank request line"
    fuzz_lines
    (fun lines ->
      let lines = List.filter (fun l -> not (skip_line l)) lines in
      let e, responses = run_serve_channel lines in
      (* A line past the 256-byte bound is always answered (line_too_long),
         even when it would otherwise trim to blank; within the bound,
         blank lines are skipped. *)
      let answered l = String.length l > 256 || String.trim l <> "" in
      let expected = List.length (List.filter answered lines) in
      if List.length responses <> expected then
        QCheck.Test.fail_reportf "%d responses to %d non-blank lines"
          (List.length responses) expected;
      List.iter
        (fun r ->
          if not (is_response r) then
            QCheck.Test.fail_reportf "malformed response line %S" r)
        responses;
      if Engine.stopped e then
        QCheck.Test.fail_reportf "fuzz input stopped the engine";
      true)

let test_serve_channel_shutdown_stops () =
  (* [stopped] flips exactly on a real shutdown: the loop answers it,
     stops reading, and later lines are never served. *)
  let e, responses =
    run_serve_channel
      [
        {|{"id":1,"method":"health"}|};
        {|{"id":2,"method":"shutdown"}|};
        {|{"id":3,"method":"health"}|};
      ]
  in
  Alcotest.(check int) "served up to shutdown only" 2 (List.length responses);
  List.iter (fun r -> ignore (expect_ok r)) responses;
  Alcotest.(check bool) "stopped" true (Engine.stopped e)

(* --- stdio integration ------------------------------------------------ *)

let find_binary () =
  match Sys.getenv_opt "PPDC_BIN" with
  | Some p -> p
  | None ->
      Filename.concat
        (Filename.dirname Sys.executable_name)
        "../bin/ppdc.exe"

let test_stdio_protocol () =
  let bin = find_binary () in
  if not (Sys.file_exists bin) then
    Alcotest.failf "ppdc binary not found at %s (set PPDC_BIN)" bin;
  let from_server, to_server =
    Unix.open_process_args bin
      [| bin; "serve"; "--stdio"; "--max-line"; "4096" |]
  in
  let rpc line =
    output_string to_server line;
    output_char to_server '\n';
    flush to_server;
    input_line from_server
  in
  (* Every method answers over the wire. *)
  ignore (expect_ok (rpc {|{"id":1,"method":"health"}|}));
  ignore
    (expect_ok
       (rpc
          {|{"id":2,"method":"load_topology","params":{"session":"s","k":4,"l":6,"n":3}}|}));
  let p1 = expect_ok (rpc {|{"id":3,"method":"place","params":{"session":"s"}}|}) in
  let p2 = expect_ok (rpc {|{"id":4,"method":"place","params":{"session":"s"}}|}) in
  Alcotest.(check bool) "cold place misses" false (bool_field p1 "cache_hit");
  Alcotest.(check bool) "warm place hits" true (bool_field p2 "cache_hit");
  ignore
    (expect_ok
       (rpc
          {|{"id":5,"method":"migrate","params":{"session":"s","algo":"mpareto","mu":100}}|}));
  ignore
    (expect_ok
       (rpc
          {|{"id":6,"method":"rates_update","params":{"session":"s","scale":1.5}}|}));
  ignore
    (expect_ok
       (rpc
          {|{"id":7,"method":"fail_links","params":{"session":"s","fraction":0.05}}|}));
  ignore (expect_ok (rpc {|{"id":8,"method":"stats"}|}));
  (* Malformed JSON: structured error, id null, server keeps serving. *)
  let bad = rpc "{this is not json" in
  Alcotest.(check string) "malformed line" "parse_error" (expect_error bad);
  Alcotest.(check bool) "malformed id null" true
    (Json.equal Json.Null (response_id bad));
  (* Unknown method and missing session echo their ids. *)
  let unk = rpc {|{"id":41,"method":"nope"}|} in
  Alcotest.(check string) "unknown method" "unknown_method" (expect_error unk);
  Alcotest.(check bool) "unknown method id" true
    (Json.equal (Json.Num 41.0) (response_id unk));
  let missing = rpc {|{"id":43,"method":"place","params":{"session":"nope"}}|} in
  Alcotest.(check string) "missing session" "unknown_session"
    (expect_error missing);
  Alcotest.(check bool) "missing session id" true
    (Json.equal (Json.Num 43.0) (response_id missing));
  (* Oversized line: drained up to its newline, answered line_too_long
     (the parser never saw the id, so it is null), stream resyncs. *)
  let oversized =
    Printf.sprintf {|{"id":44,"method":"health","params":{"pad":%S}}|}
      (String.make 5000 'x')
  in
  let too_long = rpc oversized in
  Alcotest.(check string) "oversized line" "line_too_long"
    (expect_error too_long);
  Alcotest.(check bool) "oversized id null" true
    (Json.equal Json.Null (response_id too_long));
  (* Still serving after every error above. *)
  ignore (expect_ok (rpc {|{"id":45,"method":"health"}|}));
  ignore (expect_ok (rpc {|{"id":46,"method":"shutdown"}|}));
  match Unix.close_process (from_server, to_server) with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED c -> Alcotest.failf "server exited with %d" c
  | Unix.WSIGNALED s | Unix.WSTOPPED s ->
      Alcotest.failf "server killed by signal %d" s

let () =
  Alcotest.run "ppdc_server"
    [
      ( "engine",
        [
          Alcotest.test_case "health" `Quick test_engine_health;
          Alcotest.test_case "errors echo the request id" `Quick
            test_engine_errors_echo_id;
          Alcotest.test_case "repeated place hits the matrix cache" `Quick
            test_engine_place_uses_cache;
          Alcotest.test_case "migrate lifecycle" `Quick test_engine_migrate_flow;
          Alcotest.test_case "simulate_events runs on copies" `Quick
            test_engine_simulate_events;
          Alcotest.test_case "fail_links rekeys the cache" `Quick
            test_engine_fail_links_changes_digest;
          Alcotest.test_case "fail_links repairs a warm cache" `Quick
            test_engine_fail_links_repairs_warm_cache;
          Alcotest.test_case "failure log is episode-ordered" `Quick
            test_engine_failure_log_ordering;
          Alcotest.test_case "invalid params are contained" `Quick
            test_engine_invalid_params;
          Alcotest.test_case "shutdown" `Quick test_engine_shutdown;
          Alcotest.test_case "expired deadline is admission control" `Quick
            test_engine_deadline;
          Alcotest.test_case "canned overloaded response" `Quick
            test_engine_overloaded_response;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest prop_engine_fuzz;
          QCheck_alcotest.to_alcotest prop_serve_channel_fuzz;
          Alcotest.test_case "stopped flips only on real shutdown" `Quick
            test_serve_channel_shutdown_stops;
        ] );
      ( "stdio",
        [
          Alcotest.test_case "full protocol over --stdio" `Quick
            test_stdio_protocol;
        ] );
    ]
