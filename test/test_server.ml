(* Tests for the ppdc.rpc/1 daemon: engine-level unit tests that drive
   [Engine.handle_line] directly, and a [--stdio] integration test that
   spawns the real binary and walks every method plus the malformed
   cases, checking the server answers each with a structured error and
   keeps serving. *)

module Json = Ppdc_prelude.Json
module Engine = Ppdc_server.Engine

(* --- response helpers ------------------------------------------------- *)

let response_id line =
  match Json.member "id" (Json.parse line) with
  | Some v -> v
  | None -> Alcotest.failf "response without id: %s" line

let expect_ok line =
  let j = Json.parse line in
  match (Json.member "ok" j, Json.member "result" j) with
  | Some (Json.Bool true), Some r -> r
  | _ -> Alcotest.failf "expected ok response, got: %s" line

let expect_error line =
  let j = Json.parse line in
  match (Json.member "ok" j, Json.member "error" j) with
  | Some (Json.Bool false), Some err -> (
      match Json.member "code" err with
      | Some (Json.Str code) -> code
      | _ -> Alcotest.failf "error without code: %s" line)
  | _ -> Alcotest.failf "expected error response, got: %s" line

let bool_field result key =
  match Json.member key result with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.failf "expected bool field %s" key

let str_field result key =
  match Json.member key result with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.failf "expected string field %s" key

(* --- engine unit tests ------------------------------------------------ *)

let eng () = Engine.create ~cache_capacity:4 ()

let load e ?(session = "s") ?(k = 4) ?(l = 6) ?(n = 3) () =
  expect_ok
    (Engine.handle_line e
       (Printf.sprintf
          {|{"id":0,"method":"load_topology","params":{"session":%S,"k":%d,"l":%d,"n":%d}}|}
          session k l n))

let test_engine_health () =
  let e = eng () in
  let r = expect_ok (Engine.handle_line e {|{"id":1,"method":"health"}|}) in
  Alcotest.(check string) "schema" "ppdc.rpc/1" (str_field r "schema");
  Alcotest.(check bool) "not stopped" false (Engine.stopped e)

let test_engine_errors_echo_id () =
  let e = eng () in
  (* Unparseable line: error with id null. *)
  let bad = Engine.handle_line e "{nope" in
  Alcotest.(check string) "parse error" "parse_error" (expect_error bad);
  Alcotest.(check bool) "id null" true (Json.equal Json.Null (response_id bad));
  (* Valid JSON that is not a request object. *)
  Alcotest.(check string) "invalid request" "invalid_request"
    (expect_error (Engine.handle_line e "[1,2]"));
  (* Unknown method echoes the (string) id. *)
  let unk = Engine.handle_line e {|{"id":"x7","method":"frobnicate"}|} in
  Alcotest.(check string) "unknown method" "unknown_method" (expect_error unk);
  Alcotest.(check bool) "id echoed" true
    (Json.equal (Json.Str "x7") (response_id unk));
  (* Missing session. *)
  let ghost =
    Engine.handle_line e {|{"id":9,"method":"place","params":{"session":"g"}}|}
  in
  Alcotest.(check string) "unknown session" "unknown_session"
    (expect_error ghost);
  Alcotest.(check bool) "numeric id echoed" true
    (Json.equal (Json.Num 9.0) (response_id ghost));
  (* The engine survives all of the above. *)
  ignore (expect_ok (Engine.handle_line e {|{"id":10,"method":"health"}|}));
  (* The canned overlong response is a well-formed line_too_long error. *)
  Alcotest.(check string) "overlong canned" "line_too_long"
    (expect_error Engine.overlong_response);
  Alcotest.(check bool) "overlong id null" true
    (Json.equal Json.Null (response_id Engine.overlong_response))

let test_engine_place_uses_cache () =
  let e = eng () in
  ignore (load e ());
  let place () =
    expect_ok
      (Engine.handle_line e
         {|{"id":1,"method":"place","params":{"session":"s","algo":"dp"}}|})
  in
  let first = place () in
  let second = place () in
  Alcotest.(check bool) "first place misses" false (bool_field first "cache_hit");
  Alcotest.(check bool) "second place hits" true (bool_field second "cache_hit");
  (* Same fabric, same workload: the answer must not depend on the cache. *)
  let render r key = Json.to_string (Option.get (Json.member key r)) in
  Alcotest.(check string) "same placement" (render first "placement")
    (render second "placement");
  Alcotest.(check string) "same cost" (render first "cost") (render second "cost");
  let stats = expect_ok (Engine.handle_line e {|{"id":2,"method":"stats"}|}) in
  match Json.member "cache" stats with
  | Some cache -> (
      match (Json.member "hits" cache, Json.member "entries" cache) with
      | Some (Json.Num h), Some (Json.Num n) ->
          Alcotest.(check bool) "stats report a hit" true (h >= 1.0);
          Alcotest.(check bool) "one fabric cached" true
            (Float.compare n 1.0 = 0)
      | _ -> Alcotest.fail "stats.cache missing hits/entries")
  | None -> Alcotest.fail "stats without cache section"

let test_engine_migrate_flow () =
  let e = eng () in
  ignore (load e ());
  (* Migration without a placement is a structured refusal. *)
  Alcotest.(check string) "migrate before place" "invalid_params"
    (expect_error
       (Engine.handle_line e
          {|{"id":1,"method":"migrate","params":{"session":"s"}}|}));
  ignore
    (expect_ok
       (Engine.handle_line e
          {|{"id":2,"method":"place","params":{"session":"s"}}|}));
  ignore
    (expect_ok
       (Engine.handle_line e
          {|{"id":3,"method":"rates_update","params":{"session":"s","seed":2}}|}));
  let m =
    expect_ok
      (Engine.handle_line e
         {|{"id":4,"method":"migrate","params":{"session":"s","algo":"mpareto","mu":100}}|})
  in
  Alcotest.(check string) "algo echoed" "mpareto" (str_field m "algo");
  Alcotest.(check bool) "migrate reuses cached matrix" true
    (bool_field m "cache_hit")

let test_engine_fail_links_changes_digest () =
  let e = eng () in
  let loaded = load e ~k:4 () in
  let before = str_field loaded "digest" in
  let degraded =
    expect_ok
      (Engine.handle_line e
         {|{"id":1,"method":"fail_links","params":{"session":"s","fraction":0.05,"seed":3}}|})
  in
  let after = str_field degraded "digest" in
  Alcotest.(check bool) "digest changed" false (String.equal before after);
  (* The degraded fabric is new to the cache: its first place misses. *)
  let p =
    expect_ok
      (Engine.handle_line e
         {|{"id":2,"method":"place","params":{"session":"s"}}|})
  in
  Alcotest.(check bool) "degraded fabric misses" false (bool_field p "cache_hit")

let test_engine_invalid_params () =
  let e = eng () in
  ignore (load e ());
  Alcotest.(check string) "bogus algo" "invalid_params"
    (expect_error
       (Engine.handle_line e
          {|{"id":1,"method":"place","params":{"session":"s","algo":"bogus"}}|}));
  Alcotest.(check string) "seed+scale both given" "invalid_params"
    (expect_error
       (Engine.handle_line e
          {|{"id":2,"method":"rates_update","params":{"session":"s","seed":1,"scale":2.0}}|}));
  (* Odd fat-tree arity is rejected by the builder; the engine turns
     the exception into a structured error and keeps serving. *)
  Alcotest.(check string) "odd k" "invalid_params"
    (expect_error
       (Engine.handle_line e
          {|{"id":3,"method":"load_topology","params":{"session":"t","k":3}}|}));
  ignore (expect_ok (Engine.handle_line e {|{"id":4,"method":"health"}|}))

let test_engine_shutdown () =
  let e = eng () in
  ignore (expect_ok (Engine.handle_line e {|{"id":1,"method":"shutdown"}|}));
  Alcotest.(check bool) "stopped" true (Engine.stopped e)

(* --- stdio integration ------------------------------------------------ *)

let find_binary () =
  match Sys.getenv_opt "PPDC_BIN" with
  | Some p -> p
  | None ->
      Filename.concat
        (Filename.dirname Sys.executable_name)
        "../bin/ppdc.exe"

let test_stdio_protocol () =
  let bin = find_binary () in
  if not (Sys.file_exists bin) then
    Alcotest.failf "ppdc binary not found at %s (set PPDC_BIN)" bin;
  let from_server, to_server =
    Unix.open_process_args bin
      [| bin; "serve"; "--stdio"; "--max-line"; "4096" |]
  in
  let rpc line =
    output_string to_server line;
    output_char to_server '\n';
    flush to_server;
    input_line from_server
  in
  (* Every method answers over the wire. *)
  ignore (expect_ok (rpc {|{"id":1,"method":"health"}|}));
  ignore
    (expect_ok
       (rpc
          {|{"id":2,"method":"load_topology","params":{"session":"s","k":4,"l":6,"n":3}}|}));
  let p1 = expect_ok (rpc {|{"id":3,"method":"place","params":{"session":"s"}}|}) in
  let p2 = expect_ok (rpc {|{"id":4,"method":"place","params":{"session":"s"}}|}) in
  Alcotest.(check bool) "cold place misses" false (bool_field p1 "cache_hit");
  Alcotest.(check bool) "warm place hits" true (bool_field p2 "cache_hit");
  ignore
    (expect_ok
       (rpc
          {|{"id":5,"method":"migrate","params":{"session":"s","algo":"mpareto","mu":100}}|}));
  ignore
    (expect_ok
       (rpc
          {|{"id":6,"method":"rates_update","params":{"session":"s","scale":1.5}}|}));
  ignore
    (expect_ok
       (rpc
          {|{"id":7,"method":"fail_links","params":{"session":"s","fraction":0.05}}|}));
  ignore (expect_ok (rpc {|{"id":8,"method":"stats"}|}));
  (* Malformed JSON: structured error, id null, server keeps serving. *)
  let bad = rpc "{this is not json" in
  Alcotest.(check string) "malformed line" "parse_error" (expect_error bad);
  Alcotest.(check bool) "malformed id null" true
    (Json.equal Json.Null (response_id bad));
  (* Unknown method and missing session echo their ids. *)
  let unk = rpc {|{"id":41,"method":"nope"}|} in
  Alcotest.(check string) "unknown method" "unknown_method" (expect_error unk);
  Alcotest.(check bool) "unknown method id" true
    (Json.equal (Json.Num 41.0) (response_id unk));
  let missing = rpc {|{"id":43,"method":"place","params":{"session":"nope"}}|} in
  Alcotest.(check string) "missing session" "unknown_session"
    (expect_error missing);
  Alcotest.(check bool) "missing session id" true
    (Json.equal (Json.Num 43.0) (response_id missing));
  (* Oversized line: drained up to its newline, answered line_too_long
     (the parser never saw the id, so it is null), stream resyncs. *)
  let oversized =
    Printf.sprintf {|{"id":44,"method":"health","params":{"pad":%S}}|}
      (String.make 5000 'x')
  in
  let too_long = rpc oversized in
  Alcotest.(check string) "oversized line" "line_too_long"
    (expect_error too_long);
  Alcotest.(check bool) "oversized id null" true
    (Json.equal Json.Null (response_id too_long));
  (* Still serving after every error above. *)
  ignore (expect_ok (rpc {|{"id":45,"method":"health"}|}));
  ignore (expect_ok (rpc {|{"id":46,"method":"shutdown"}|}));
  match Unix.close_process (from_server, to_server) with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED c -> Alcotest.failf "server exited with %d" c
  | Unix.WSIGNALED s | Unix.WSTOPPED s ->
      Alcotest.failf "server killed by signal %d" s

let () =
  Alcotest.run "ppdc_server"
    [
      ( "engine",
        [
          Alcotest.test_case "health" `Quick test_engine_health;
          Alcotest.test_case "errors echo the request id" `Quick
            test_engine_errors_echo_id;
          Alcotest.test_case "repeated place hits the matrix cache" `Quick
            test_engine_place_uses_cache;
          Alcotest.test_case "migrate lifecycle" `Quick test_engine_migrate_flow;
          Alcotest.test_case "fail_links rekeys the cache" `Quick
            test_engine_fail_links_changes_digest;
          Alcotest.test_case "invalid params are contained" `Quick
            test_engine_invalid_params;
          Alcotest.test_case "shutdown" `Quick test_engine_shutdown;
        ] );
      ( "stdio",
        [
          Alcotest.test_case "full protocol over --stdio" `Quick
            test_stdio_protocol;
        ] );
    ]
