(* Discrete-event simulator tests: the Event_engine ↔ hour-engine
   bit-identity regression (the tentpole's acceptance criterion),
   trigger-policy semantics, event-stream constructors, and the
   elapsed-time cost accounting. *)

module Fat_tree = Ppdc_topology.Fat_tree
module Cost_matrix = Ppdc_topology.Cost_matrix
module Workload = Ppdc_traffic.Workload
module Diurnal = Ppdc_traffic.Diurnal
module Trace = Ppdc_traffic.Trace
module Events = Ppdc_traffic.Events
module Rng = Ppdc_prelude.Rng
module Parallel = Ppdc_prelude.Parallel
module Scenario = Ppdc_sim.Scenario
module Engine = Ppdc_sim.Engine
module Event_engine = Ppdc_sim.Event_engine
open Ppdc_core

let with_domains d f =
  let prev = Parallel.domain_count () in
  Parallel.set_domains d;
  Fun.protect ~finally:(fun () -> Parallel.set_domains prev) f

let problem ?(l = 20) ?(n = 4) ~seed () =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let rng = Rng.create seed in
  let flows = Workload.generate_on_fat_tree ~rng ~l ft in
  Problem.make ~cm ~flows ~n ()

let scenario ?l ?n ?(mu = 1e3) ~seed () =
  Scenario.make ~mu (problem ?l ?n ~seed ())

let all_policies =
  Engine.[ Mpareto; Optimal; Mpareto_lookahead; Plan; Mcf; No_migration ]

let bits = Int64.bits_of_float

let check_bits msg a b =
  Alcotest.(check int64) msg (bits a) (bits b)

(* --- hour-engine equivalence --------------------------------------------- *)

(* The mapping between the two records: the hour engine charges hour
   [i]'s comm *at* epoch [i], the event engine charges the segment
   [i, i+1) when the *next* event (or the horizon) closes it. So hour
   [i] (0-based) pairs record [i]'s migration with record [i+1]'s comm
   charge (the tail segment for the last hour). *)
let check_equivalent ~msg sc policy =
  let day = Engine.run_day sc ~policy in
  let stream = Scenario.events_of_diurnal sc in
  let replay =
    Event_engine.run sc ~policy ~trigger:(Event_engine.Periodic 1.0)
      ~events:stream ()
  in
  let n = Array.length day.Engine.hours in
  let name fmt = Printf.sprintf "%s %s: %s" msg (Engine.policy_name policy) fmt in
  Alcotest.(check int) (name "one record per hour") n
    (Array.length replay.Event_engine.records);
  Alcotest.(check int) (name "fires every hour") n
    replay.Event_engine.reconfigurations;
  Alcotest.(check (array int))
    (name "same initial placement")
    day.Engine.initial_placement replay.Event_engine.initial_placement;
  let total = ref 0.0 in
  Array.iteri
    (fun i (h : Engine.hour_record) ->
      let r = replay.Event_engine.records.(i) in
      let comm =
        if i + 1 < n then replay.Event_engine.records.(i + 1).comm_charge
        else replay.Event_engine.final_comm
      in
      check_bits (name (Printf.sprintf "hour %d comm" h.hour)) h.comm_cost comm;
      check_bits
        (name (Printf.sprintf "hour %d migration" h.hour))
        h.migration_cost r.migration_cost;
      Alcotest.(check int)
        (name (Printf.sprintf "hour %d moves" h.hour))
        h.migrations r.moved;
      Alcotest.(check bool) (name "every hour fires") true r.fired;
      total := !total +. (comm +. h.migration_cost))
    day.Engine.hours;
  check_bits (name "day total reassembles") day.Engine.total_cost !total;
  Alcotest.(check int) (name "total moves") day.Engine.total_migrations
    replay.Event_engine.total_moves

let test_periodic_hourly_equals_run_day () =
  let sc = scenario ~seed:4 () in
  List.iter (check_equivalent ~msg:"hourly" sc) all_policies

let test_equivalence_qcheck () =
  QCheck.Test.make ~count:6 ~name:"Periodic 1h replay = run_day (all policies)"
    QCheck.(
      quad (int_range 1 1000) (int_range 5 14) (int_range 2 4) (int_range 0 2))
    (fun (seed, l, n, mu_idx) ->
      let mu = [| 1e2; 1e3; 1e4 |].(mu_idx) in
      let sc = scenario ~l ~n ~mu ~seed () in
      List.iter (check_equivalent ~msg:"qcheck" sc) all_policies;
      true)
  |> QCheck_alcotest.to_alcotest

let test_equivalence_across_domains () =
  (* The replay must be bit-identical at any domain count (the policy
     steps are deterministically parallel; everything else is
     sequential). *)
  let sc = scenario ~seed:9 () in
  let stream = Scenario.events_of_diurnal sc in
  let run () =
    Event_engine.run sc ~policy:Engine.Mpareto
      ~trigger:(Event_engine.Periodic 1.0) ~events:stream ()
  in
  let a = with_domains 1 run and b = with_domains 4 run in
  check_bits "total comm" a.Event_engine.total_comm b.Event_engine.total_comm;
  check_bits "total migration" a.Event_engine.total_migration
    b.Event_engine.total_migration;
  Alcotest.(check (array int)) "final placement" a.Event_engine.final_placement
    b.Event_engine.final_placement;
  with_domains 4 (fun () ->
      List.iter (check_equivalent ~msg:"4 domains" sc) all_policies)

(* --- trigger semantics ---------------------------------------------------- *)

let constant_stream sc ~epochs ~scale =
  let flows = Problem.flows sc.Scenario.problem in
  let vec =
    Array.map (fun r -> r *. scale) (Ppdc_traffic.Flow.base_rates flows)
  in
  Events.of_trace (Trace.make ~flows ~rates:(Array.make epochs vec))

let test_on_event_fires_everywhere () =
  let sc = scenario ~seed:2 () in
  let stream = constant_stream sc ~epochs:5 ~scale:1.0 in
  let run =
    Event_engine.run sc ~policy:Engine.Mpareto ~trigger:Event_engine.On_event
      ~events:stream ()
  in
  Alcotest.(check int) "fires at every processed event" 5
    run.Event_engine.reconfigurations

let test_periodic_span () =
  let sc = scenario ~seed:2 () in
  let stream = constant_stream sc ~epochs:6 ~scale:1.0 in
  let run =
    Event_engine.run sc ~policy:Engine.Mpareto
      ~trigger:(Event_engine.Periodic 2.0) ~events:stream ()
  in
  (* Events at t = 0..5; due at 0, then 2, 4, ... → fires at 0, 2, 4. *)
  Alcotest.(check int) "every other event" 3 run.Event_engine.reconfigurations;
  let fired =
    Array.to_list
      (Array.map (fun r -> r.Event_engine.fired) run.Event_engine.records)
  in
  Alcotest.(check (list bool)) "alternating"
    [ true; false; true; false; true; false ]
    fired

let test_threshold_fires_once_on_constant_load () =
  let sc = scenario ~seed:3 () in
  let stream = constant_stream sc ~epochs:6 ~scale:1.0 in
  let run =
    Event_engine.run sc ~policy:Engine.Mpareto
      ~trigger:(Event_engine.Threshold 1.2) ~events:stream ()
  in
  (* The pre-traffic baseline is a zero cost rate, so the first traffic
     fires; constant load never drifts 20% past the post-reconfig
     baseline again. *)
  Alcotest.(check int) "exactly one reconfiguration" 1
    run.Event_engine.reconfigurations;
  Alcotest.(check bool) "the first event fired" true
    run.Event_engine.records.(0).Event_engine.fired

let spike_stream sc =
  (* rates ×1 (fire), ×10 (spike while disarmed), ×1 (re-arm), ×10
     (spike while armed → fire). *)
  let flows = Problem.flows sc.Scenario.problem in
  let base = Ppdc_traffic.Flow.base_rates flows in
  let at scale = Array.map (fun r -> r *. scale) base in
  Events.of_trace
    (Trace.make ~flows ~rates:[| at 1.0; at 10.0; at 1.0; at 10.0 |])

let test_hysteresis_disarms_and_rearms () =
  let sc = scenario ~seed:3 () in
  let run =
    Event_engine.run sc ~policy:Engine.Mpareto
      ~trigger:(Event_engine.Hysteresis { up = 1.5; down = 1.1 })
      ~events:(spike_stream sc) ()
  in
  let fired =
    Array.to_list
      (Array.map (fun r -> r.Event_engine.fired) run.Event_engine.records)
  in
  (* t0 fires (baseline was zero); t1's spike finds the trigger
     disarmed; t2's return to baseline re-arms it; t3's spike fires. *)
  Alcotest.(check (list bool)) "disarm then re-arm"
    [ true; false; false; true ]
    fired;
  let threshold =
    Event_engine.run sc ~policy:Engine.Mpareto
      ~trigger:(Event_engine.Threshold 1.5) ~events:(spike_stream sc) ()
  in
  (* Without the disarm, the same spike at t1 fires too. *)
  Alcotest.(check bool) "threshold fires on the t1 spike" true
    threshold.Event_engine.records.(1).Event_engine.fired

let test_migration_delay_suppresses_triggers () =
  let sc = scenario ~seed:5 () in
  let stream = Scenario.events_of_diurnal sc in
  let run =
    Event_engine.run ~migration_delay:2.5 sc ~policy:Engine.Mpareto
      ~trigger:Event_engine.On_event ~events:stream ()
  in
  (* While a migration is in flight no trigger may fire: consecutive
     firings after a real move are at least the delay apart. *)
  let last_move_fire = ref neg_infinity in
  Array.iter
    (fun (r : Event_engine.event_record) ->
      if r.fired then begin
        Alcotest.(check bool)
          (Printf.sprintf "no firing mid-flight (t=%g)" r.time)
          true
          (r.time -. !last_move_fire >= 2.5 -. 1e-9);
        if r.moved > 0 then last_move_fire := r.time
      end)
    run.Event_engine.records;
  Alcotest.(check bool) "completion events were replayed" true
    (Array.exists
       (fun (r : Event_engine.event_record) -> r.kind = "migration_complete")
       run.Event_engine.records)

(* --- cost accounting ------------------------------------------------------ *)

let test_elapsed_time_charging () =
  let sc = scenario ~seed:6 () in
  let l = Problem.num_flows sc.Scenario.problem in
  let stream =
    Events.make ~horizon:1.0
      [
        { Events.time = 0.25; kind = Events.Flow_arrival { flow = 0; rate = 50.0 } };
        { Events.time = 0.75; kind = Events.Flow_departure { flow = 0 } };
      ]
  in
  let run =
    Event_engine.run sc ~policy:Engine.No_migration
      ~trigger:Event_engine.On_event ~events:stream ()
  in
  let rates = Array.make l 0.0 in
  rates.(0) <- 50.0;
  let c =
    Cost.comm_cost sc.Scenario.problem ~rates run.Event_engine.initial_placement
  in
  check_bits "pre-traffic segment is free"
    0.0 run.Event_engine.records.(0).Event_engine.comm_charge;
  check_bits "active segment charges 0.5 × C_a" (0.5 *. c)
    run.Event_engine.records.(1).Event_engine.comm_charge;
  check_bits "post-departure tail is free" 0.0 run.Event_engine.final_comm;
  check_bits "total" (0.5 *. c) run.Event_engine.total_comm

let test_failure_episode_replay () =
  let sc = scenario ~seed:7 () in
  let episode =
    Scenario.failure_episode ~rng:(Rng.create 11) ~at:3.0 ~duration:4.0
      ~fraction:0.15 sc
  in
  Alcotest.(check bool) "episode failed something" true
    (Events.length episode > 0);
  let stream = Events.merge (Scenario.events_of_diurnal sc) episode in
  let go () =
    Event_engine.run sc ~policy:Engine.Mpareto
      ~trigger:(Event_engine.Periodic 1.0) ~events:stream ()
  in
  let run = go () and again = go () in
  check_bits "deterministic replay" run.Event_engine.total_cost
    again.Event_engine.total_cost;
  let kinds =
    Array.fold_left
      (fun acc (r : Event_engine.event_record) ->
        if List.mem r.kind acc then acc else r.kind :: acc)
      [] run.Event_engine.records
  in
  Alcotest.(check bool) "failures and repairs were processed" true
    (List.mem "link_failure" kinds && List.mem "link_repair" kinds);
  (* Degraded fabric can only cost more: compare against the
     episode-free day under the same trigger. *)
  let clean =
    Event_engine.run sc ~policy:Engine.No_migration
      ~trigger:(Event_engine.Periodic 1.0)
      ~events:(Scenario.events_of_diurnal sc) ()
  in
  let degraded =
    Event_engine.run sc ~policy:Engine.No_migration
      ~trigger:(Event_engine.Periodic 1.0) ~events:stream ()
  in
  Alcotest.(check bool) "failures never cheapen a frozen placement" true
    (degraded.Event_engine.total_comm >= clean.Event_engine.total_comm -. 1e-9)

(* --- stream constructors -------------------------------------------------- *)

let test_of_trace_structure () =
  let sc = scenario ~seed:1 () in
  let flows = Problem.flows sc.Scenario.problem in
  let trace = Trace.of_diurnal Diurnal.default ~flows in
  let stream = Events.of_trace trace in
  Alcotest.(check int) "one event per epoch plus the horizon vector"
    (Trace.num_epochs trace + 1)
    (Events.length stream);
  check_bits "horizon = epochs"
    (float_of_int (Trace.num_epochs trace))
    (Events.horizon stream);
  match List.rev (Events.events stream) with
  | last :: _ ->
      check_bits "final vector sits at the horizon" (Events.horizon stream)
        last.Events.time;
      (match last.Events.kind with
      | Events.Rate_update updates ->
          Alcotest.(check bool) "and is all-zero" true
            (List.for_all (fun (_, r) -> Float.compare r 0.0 = 0) updates)
      | _ -> Alcotest.fail "expected a Rate_update at the horizon")
  | [] -> Alcotest.fail "empty stream"

let test_poisson_stream () =
  let sc = scenario ~seed:8 () in
  let flows = Problem.flows sc.Scenario.problem in
  let make seed =
    Events.poisson ~rng:(Rng.create seed) ~horizon:12.0 ~mean_active:4.0 flows
  in
  let a = make 5 and b = make 5 and c = make 6 in
  Alcotest.(check int) "seeded determinism" (Events.length a) (Events.length b);
  List.iter2
    (fun (x : Events.event) (y : Events.event) ->
      check_bits "same times" x.time y.time)
    (Events.events a) (Events.events b);
  Alcotest.(check bool) "different seeds differ" true
    (Events.length a <> Events.length c
    || List.exists2
         (fun (x : Events.event) (y : Events.event) ->
           Float.compare x.time y.time <> 0)
         (Events.events a) (Events.events c));
  (* Per-flow ordering: arrival strictly before departure, both inside
     the horizon. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (e : Events.event) ->
      Alcotest.(check bool) "inside horizon" true
        (e.time >= 0.0 && e.time < 12.0);
      match e.kind with
      | Events.Flow_arrival { flow; rate } ->
          Alcotest.(check bool) "positive rate" true (rate > 0.0);
          Hashtbl.replace seen flow e.time
      | Events.Flow_departure { flow } ->
          Alcotest.(check bool) "departure after arrival" true
            (match Hashtbl.find_opt seen flow with
            | Some t -> e.time > t
            | None -> false)
      | _ -> Alcotest.fail "unexpected kind in a poisson stream")
    (Events.events a);
  (* A poisson stream must drive the engine end to end. *)
  let run =
    Event_engine.run sc ~policy:Engine.Mpareto
      ~trigger:(Event_engine.Threshold 1.3) ~events:a ()
  in
  Alcotest.(check bool) "engine consumed the stream" true
    (Array.length run.Event_engine.records = Events.length a)

let test_merge_is_stable () =
  let ev t = { Events.time = t; kind = Events.Probe } in
  let a = Events.make ~horizon:2.0 [ ev 0.5; ev 1.0 ] in
  let b =
    Events.make ~horizon:3.0
      [ { Events.time = 1.0; kind = Events.Flow_departure { flow = 0 } } ]
  in
  let m = Events.merge a b in
  check_bits "horizon is the max" 3.0 (Events.horizon m);
  match Events.events m with
  | [ e1; e2; e3 ] ->
      check_bits "sorted" 0.5 e1.Events.time;
      (match (e2.Events.kind, e3.Events.kind) with
      | Events.Probe, Events.Flow_departure _ -> ()
      | _ -> Alcotest.fail "equal-time events must keep a-before-b order")
  | _ -> Alcotest.fail "expected three events"

let test_trigger_parsing () =
  let roundtrip s t =
    Alcotest.(check string) s
      (Event_engine.trigger_name t)
      (Event_engine.trigger_name (Event_engine.trigger_of_string s))
  in
  roundtrip "periodic:1.5" (Event_engine.Periodic 1.5);
  roundtrip "threshold:1.3" (Event_engine.Threshold 1.3);
  roundtrip "hysteresis:1.5,1.1"
    (Event_engine.Hysteresis { up = 1.5; down = 1.1 });
  roundtrip "on-event" Event_engine.On_event;
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " rejected") true
        (try
           ignore (Event_engine.trigger_of_string s);
           false
         with Invalid_argument _ -> true))
    [ "periodic:-1"; "periodic:nope"; "hysteresis:1.0,2.0"; "sometimes"; "" ]

let test_stream_validation () =
  let reject name f =
    Alcotest.(check bool) name true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  reject "negative time" (fun () ->
      Events.make ~horizon:1.0 [ { Events.time = -1.0; kind = Events.Probe } ]);
  reject "negative rate" (fun () ->
      Events.make ~horizon:1.0
        [ { Events.time = 0.0;
            kind = Events.Flow_arrival { flow = 0; rate = -1.0 } } ]);
  reject "self-loop link" (fun () ->
      Events.make ~horizon:1.0
        [ { Events.time = 0.0; kind = Events.Link_failure { u = 3; v = 3 } } ]);
  reject "nan horizon" (fun () -> Events.make ~horizon:Float.nan []);
  let sc = scenario ~seed:1 () in
  reject "out-of-range flow id at run time" (fun () ->
      Event_engine.run sc ~policy:Engine.No_migration
        ~trigger:Event_engine.On_event
        ~events:
          (Events.make ~horizon:1.0
             [ { Events.time = 0.0;
                 kind = Events.Flow_arrival { flow = 9999; rate = 1.0 } } ])
        ())

(* --- observability -------------------------------------------------------- *)

let test_metrics_instrumentation () =
  let module Obs = Ppdc_prelude.Obs in
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.set_enabled false)
    (fun () ->
      let sc = scenario ~seed:2 () in
      let run =
        Event_engine.run sc ~policy:Engine.Mpareto
          ~trigger:(Event_engine.Periodic 2.0)
          ~events:(Scenario.events_of_diurnal sc) ()
      in
      let snap = Obs.snapshot () in
      let events =
        List.filter (fun (e : Obs.event) -> e.Obs.name = "sim.event")
          snap.Obs.events
      in
      Alcotest.(check int) "one sim.event per processed event"
        (Array.length run.Event_engine.records)
        (List.length events);
      Alcotest.(check bool) "trigger counter" true
        (List.exists
           (fun (name, v) ->
             name = "sim.trigger.periodic"
             && v = run.Event_engine.reconfigurations)
           snap.Obs.counters);
      Alcotest.(check bool) "reconfig span recorded" true
        (List.mem_assoc "sim.reconfig" snap.Obs.spans))

let () =
  Alcotest.run "ppdc_events"
    [
      ( "equivalence",
        [
          Alcotest.test_case "Periodic 1h = run_day, all policies" `Quick
            test_periodic_hourly_equals_run_day;
          test_equivalence_qcheck ();
          Alcotest.test_case "bit-identical across domain counts" `Quick
            test_equivalence_across_domains;
        ] );
      ( "triggers",
        [
          Alcotest.test_case "on-event fires everywhere" `Quick
            test_on_event_fires_everywhere;
          Alcotest.test_case "periodic span" `Quick test_periodic_span;
          Alcotest.test_case "threshold fires once on constant load" `Quick
            test_threshold_fires_once_on_constant_load;
          Alcotest.test_case "hysteresis disarms and re-arms" `Quick
            test_hysteresis_disarms_and_rearms;
          Alcotest.test_case "migration delay suppresses triggers" `Quick
            test_migration_delay_suppresses_triggers;
          Alcotest.test_case "trigger spec parsing" `Quick test_trigger_parsing;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "elapsed-time comm charging" `Quick
            test_elapsed_time_charging;
          Alcotest.test_case "failure episode replay" `Quick
            test_failure_episode_replay;
        ] );
      ( "streams",
        [
          Alcotest.test_case "of_trace structure" `Quick test_of_trace_structure;
          Alcotest.test_case "poisson churn" `Quick test_poisson_stream;
          Alcotest.test_case "merge stability" `Quick test_merge_is_stable;
          Alcotest.test_case "stream validation" `Quick test_stream_validation;
        ] );
      ( "observability",
        [
          Alcotest.test_case "sim.event / sim.trigger / sim.reconfig" `Quick
            test_metrics_instrumentation;
        ] );
    ]
