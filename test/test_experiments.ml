(* Tests for the experiment infrastructure itself: mode parameters,
   runner statistics, and table scaling invariants. (End-to-end runs of
   every experiment live in test_integration.ml.) *)

module Mode = Ppdc_experiments.Mode
module Runner = Ppdc_experiments.Runner
module Stats = Ppdc_prelude.Stats
module Flow = Ppdc_traffic.Flow
open Ppdc_core

let test_mode_env () =
  Alcotest.(check string) "quick name" "quick" (Mode.name Mode.Quick);
  Alcotest.(check string) "full name" "full" (Mode.name Mode.Full)

let test_mode_scaling_invariants () =
  (* Full mode must dominate quick mode on every scale knob. *)
  Alcotest.(check bool) "trials grow" true
    (Mode.trials Mode.Full > Mode.trials Mode.Quick);
  Alcotest.(check bool) "placement fabric grows" true
    (Mode.k_placement Mode.Full > Mode.k_placement Mode.Quick);
  Alcotest.(check bool) "dynamic fabric grows" true
    (Mode.k_dynamic Mode.Full > Mode.k_dynamic Mode.Quick);
  Alcotest.(check bool) "l_dynamic reaches the paper's 1000" true
    (Mode.l_dynamic Mode.Full = 1000);
  Alcotest.(check bool) "n sweep reaches the paper's 13" true
    (List.mem 13 (Mode.n_sweep Mode.Full));
  Alcotest.(check bool) "paper's mu in full mode" true
    (Mode.mu_dynamic Mode.Full = (1e4, 1e5));
  (* Fat-tree arity must stay even or the builder rejects it. *)
  List.iter
    (fun mode ->
      Alcotest.(check int) "k_placement even" 0 (Mode.k_placement mode mod 2);
      Alcotest.(check int) "k_dynamic even" 0 (Mode.k_dynamic mode mod 2))
    [ Mode.Quick; Mode.Full ]

let test_runner_average_protocol () =
  (* average must call f with seeds 1..trials exactly once each. *)
  let seen = ref [] in
  let summary =
    Runner.average ~trials:7 (fun ~seed ->
        seen := seed :: !seen;
        float_of_int seed)
  in
  Alcotest.(check (list int)) "seeds 1..7" [ 1; 2; 3; 4; 5; 6; 7 ]
    (List.sort compare !seen);
  Alcotest.(check int) "n recorded" 7 summary.Stats.n;
  Alcotest.(check (float 1e-9)) "mean of 1..7" 4.0 summary.Stats.mean

let test_runner_instance_determinism () =
  let build () =
    let problem = Runner.fat_tree_problem ~k:4 ~l:12 ~n:3 ~seed:5 () in
    Flow.base_rates (Problem.flows problem)
  in
  Alcotest.(check bool) "same seed, same instance" true (build () = build ());
  let other =
    Flow.base_rates
      (Problem.flows (Runner.fat_tree_problem ~k:4 ~l:12 ~n:3 ~seed:6 ()))
  in
  Alcotest.(check bool) "different seed differs" true (build () <> other)

let test_runner_weighted_differs () =
  let unweighted = Runner.fat_tree_problem ~k:4 ~l:5 ~n:3 ~seed:1 () in
  let weighted =
    Runner.fat_tree_problem ~weighted:true ~k:4 ~l:5 ~n:3 ~seed:1 ()
  in
  (* Unit topology has integral costs; the delay-sampled one does not. *)
  Alcotest.(check bool) "unweighted costs integral" true
    (Float.is_integer (Problem.cost unweighted 0 1));
  Alcotest.(check bool) "weighted costs vary" true
    (not (Float.is_integer (Problem.cost weighted 0 1))
    || Problem.cost weighted 0 1 <> Problem.cost weighted 0 2)

let test_mean_cell_format () =
  let s = Stats.summary [| 10.0; 12.0; 14.0 |] in
  let cell = Runner.mean_cell s in
  Alcotest.(check bool) "mean±ci shape" true
    (String.contains cell '\xc2' || String.contains cell '+'
    || String.length cell > 3)

let test_cost_matrix_cache_bounded () =
  (* More distinct fabrics than the LRU can hold: live entries must
     stay capped while warm fabrics still hit. *)
  let ks = [ 2; 4; 6; 8; 10 ] in
  Alcotest.(check bool) "test exceeds capacity" true
    (List.length ks > Runner.cost_matrix_cache_capacity);
  List.iter (fun k -> ignore (Runner.unweighted_fat_tree k)) ks;
  let len, hits_before, _ = Runner.cost_matrix_cache_stats () in
  Alcotest.(check bool) "live entries capped" true
    (len <= Runner.cost_matrix_cache_capacity);
  (* The most recent fabric is resident: re-asking is a hit. *)
  ignore (Runner.unweighted_fat_tree 10);
  let _, hits_after, _ = Runner.cost_matrix_cache_stats () in
  Alcotest.(check bool) "warm fabric hits" true (hits_after > hits_before);
  (* k=2 was evicted (5 fabrics through a 4-entry cache): re-asking
     rebuilds, and the cache stays capped. *)
  let _, _, misses_before = Runner.cost_matrix_cache_stats () in
  ignore (Runner.unweighted_fat_tree 2);
  let len2, _, misses_after = Runner.cost_matrix_cache_stats () in
  Alcotest.(check bool) "evicted fabric misses" true
    (misses_after > misses_before);
  Alcotest.(check bool) "still capped after refill" true
    (len2 <= Runner.cost_matrix_cache_capacity)

let () =
  Alcotest.run "ppdc_experiments_infra"
    [
      ( "mode",
        [
          Alcotest.test_case "env names" `Quick test_mode_env;
          Alcotest.test_case "full dominates quick" `Quick
            test_mode_scaling_invariants;
        ] );
      ( "runner",
        [
          Alcotest.test_case "seed protocol" `Quick test_runner_average_protocol;
          Alcotest.test_case "instance determinism" `Quick
            test_runner_instance_determinism;
          Alcotest.test_case "weighted instances differ" `Quick
            test_runner_weighted_differs;
          Alcotest.test_case "cell formatting" `Quick test_mean_cell_format;
          Alcotest.test_case "cost-matrix cache stays bounded" `Quick
            test_cost_matrix_cache_bounded;
        ] );
    ]
