(* Edge cases and failure injection for the core library: degenerate
   chain lengths, tours (src = dst), exhausted budgets, validation
   errors, and restricted instances. *)

module Graph = Ppdc_topology.Graph
module Fat_tree = Ppdc_topology.Fat_tree
module Linear = Ppdc_topology.Linear
module Cost_matrix = Ppdc_topology.Cost_matrix
module Workload = Ppdc_traffic.Workload
module Flow = Ppdc_traffic.Flow
module Rng = Ppdc_prelude.Rng
open Ppdc_core

let k4 () =
  let ft = Fat_tree.build 4 in
  (ft, Cost_matrix.compute ft.graph)

let k4_problem ~l ~n ~seed =
  let ft, cm = k4 () in
  let rng = Rng.create seed in
  let flows = Workload.generate_on_fat_tree ~rng ~l ft in
  Problem.make ~cm ~flows ~n ()

(* --- problem validation --------------------------------------------------- *)

let test_problem_validation () =
  let ft, cm = k4 () in
  let flow = Flow.make ~id:0 ~src_host:ft.hosts.(0) ~dst_host:ft.hosts.(1) ~base_rate:1.0 ~coast:East in
  let reject name f =
    Alcotest.(check bool) name true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  reject "n = 0" (fun () -> Problem.make ~cm ~flows:[| flow |] ~n:0 ());
  reject "n > switches" (fun () -> Problem.make ~cm ~flows:[| flow |] ~n:21 ());
  reject "no flows" (fun () -> Problem.make ~cm ~flows:[||] ~n:2 ());
  reject "endpoint not a host" (fun () ->
      let bad = Flow.make ~id:0 ~src_host:0 ~dst_host:ft.hosts.(0) ~base_rate:1.0 ~coast:East in
      Problem.make ~cm ~flows:[| bad |] ~n:2 ());
  reject "candidate not a switch" (fun () ->
      Problem.make ~switch_candidates:[| ft.hosts.(0) |] ~cm ~flows:[| flow |]
        ~n:1 ());
  reject "duplicate candidate" (fun () ->
      Problem.make ~switch_candidates:[| 0; 0 |] ~cm ~flows:[| flow |] ~n:1 ());
  reject "n > candidates" (fun () ->
      Problem.make ~switch_candidates:[| 0; 1 |] ~cm ~flows:[| flow |] ~n:3 ())

let test_rate_vector_validation () =
  let problem = k4_problem ~l:3 ~n:2 ~seed:1 in
  let p = [| 0; 1 |] in
  let reject name rates =
    Alcotest.(check bool) name true
      (try
         ignore (Cost.comm_cost problem ~rates p);
         false
       with Invalid_argument _ -> true)
  in
  reject "wrong length" [| 1.0 |];
  reject "negative rate" [| 1.0; -1.0; 2.0 |];
  reject "nan rate" [| 1.0; Float.nan; 2.0 |];
  reject "infinite rate" [| 1.0; infinity; 2.0 |]

let test_placement_validation_messages () =
  let problem = k4_problem ~l:3 ~n:3 ~seed:1 in
  Alcotest.(check bool) "wrong length" false
    (Placement.is_valid problem [| 0; 1 |]);
  Alcotest.(check bool) "host in placement" false
    (Placement.is_valid problem [| 0; 1; 20 |]);
  Alcotest.(check bool) "duplicate switch" false
    (Placement.is_valid problem [| 0; 1; 1 |]);
  Alcotest.(check bool) "valid one" true (Placement.is_valid problem [| 0; 1; 2 |])

(* --- chain length extremes --------------------------------------------------- *)

let test_n_equals_one () =
  let problem = k4_problem ~l:6 ~n:1 ~seed:2 in
  let rates = Flow.base_rates (Problem.flows problem) in
  let dp = Placement_dp.solve problem ~rates () in
  let opt = Placement_opt.solve problem ~rates () in
  Alcotest.(check bool) "proved" true opt.proven_optimal;
  Alcotest.(check (float 1e-6)) "n=1 DP is optimal" opt.cost dp.cost;
  Alcotest.(check int) "single VNF" 1 (Array.length dp.placement)

let test_n_equals_two () =
  let problem = k4_problem ~l:6 ~n:2 ~seed:3 in
  let rates = Flow.base_rates (Problem.flows problem) in
  let dp = Placement_dp.solve problem ~rates () in
  let opt = Placement_opt.solve problem ~rates () in
  Alcotest.(check bool) "proved" true opt.proven_optimal;
  Alcotest.(check (float 1e-6)) "n=2 DP scan is optimal" opt.cost dp.cost

let test_n_equals_num_switches () =
  (* Every switch hosts a VNF: placement is a permutation of V_s. *)
  let lin = Linear.build ~num_switches:4 () in
  let cm = Cost_matrix.compute lin.graph in
  let flows =
    [| Flow.make ~id:0 ~src_host:lin.hosts.(0) ~dst_host:lin.hosts.(1)
         ~base_rate:5.0 ~coast:East |]
  in
  let problem = Problem.make ~cm ~flows ~n:4 () in
  let rates = [| 5.0 |] in
  let opt = Placement_opt.solve problem ~rates () in
  Alcotest.(check bool) "proved" true opt.proven_optimal;
  (* Chain must sweep the line: 5 * (1 + 3 + 1) hops. *)
  Alcotest.(check (float 1e-6)) "line sweep cost" 25.0 opt.cost;
  let dp = Placement_dp.solve problem ~rates () in
  Alcotest.(check bool) "dp feasible too" true
    (Placement.is_valid problem dp.placement)

(* --- strolls: tours and tiny cases ------------------------------------------- *)

let test_stroll_tour_src_equals_dst () =
  (* Fig. 5 of the paper: a 2-tour from h1 back to h1 in the linear PPDC
     visits s1 and s2 for cost 1+1+1+1 = 4? No: h1-s1-s2-s1-h1 = 4 hops
     but only 2 distinct switches; optimal cost 4. *)
  let lin = Linear.build ~num_switches:5 () in
  let cm = Cost_matrix.compute lin.graph in
  let h1 = lin.hosts.(0) in
  let r = Stroll_dp.solve ~cm ~src:h1 ~dst:h1 ~n:2 () in
  Alcotest.(check int) "visits 2 distinct switches" 2 (Array.length r.switches);
  Alcotest.(check (float 1e-9)) "optimal 2-tour costs 4" 4.0 r.cost;
  let e = Stroll_exact.solve ~cm ~src:h1 ~dst:h1 ~n:2 () in
  Alcotest.(check (float 1e-9)) "exact agrees" 4.0 e.cost

let test_stroll_n_zero () =
  let _, cm = k4 () in
  let ft = Fat_tree.build 4 in
  let r = Stroll_dp.solve ~cm ~src:ft.hosts.(0) ~dst:ft.hosts.(15) ~n:0 () in
  Alcotest.(check int) "no switches" 0 (Array.length r.switches);
  Alcotest.(check (float 1e-9)) "direct distance" 6.0 r.cost

(* Regression: the n = 0 fast path used to ignore [max_edges] entirely
   and hand back the direct hop even when the budget forbade it. *)
let test_stroll_n_zero_honors_max_edges () =
  let ft, cm = k4 () in
  let src = ft.hosts.(0) and dst = ft.hosts.(15) in
  let table =
    Stroll_dp.prepare ~cm ~dst
      ~candidates:(Graph.switches (Cost_matrix.graph cm))
      ~extras:[| src; dst |]
  in
  Alcotest.(check bool) "budget 0 with src <> dst finds nothing" true
    (Stroll_dp.query table ~src ~n:0 ~max_edges:0 () = None);
  (match Stroll_dp.query table ~src ~n:0 ~max_edges:1 () with
  | Some r -> Alcotest.(check int) "budget 1 is the direct hop" 1 r.edges
  | None -> Alcotest.fail "budget 1 must admit the direct hop");
  (match Stroll_dp.query table ~src:dst ~n:0 ~max_edges:0 () with
  | Some r -> Alcotest.(check int) "empty tour fits budget 0" 0 r.edges
  | None -> Alcotest.fail "src = dst needs no edges");
  (* [exclude] only withdraws counting credit, so with n = 0 it is
     accepted and changes nothing. *)
  match Stroll_dp.query table ~src ~n:0 ~exclude:[| dst |] () with
  | Some r -> Alcotest.(check int) "exclude is a no-op at n = 0" 1 r.edges
  | None -> Alcotest.fail "exclude must not break the n = 0 path"

(* Regression: an undersized eligible set used to die on an internal
   [assert] deep inside the greedy walk instead of a clear error. *)
let test_nearest_neighbour_undersized_rejected () =
  let ft, cm = k4 () in
  let switches = Graph.switches (Cost_matrix.graph cm) in
  Alcotest.(check bool) "2 eligible for n = 3 raises Invalid_argument" true
    (try
       ignore
         (Stroll_dp.nearest_neighbour ~cm ~src:ft.hosts.(0)
            ~dst:ft.hosts.(15) ~n:3
            ~eligible:[| switches.(0); switches.(1) |]);
       false
     with Invalid_argument _ -> true)

let test_stroll_insufficient_candidates () =
  let lin = Linear.build ~num_switches:3 () in
  let cm = Cost_matrix.compute lin.graph in
  Alcotest.(check bool) "too few switches raises" true
    (try
       ignore
         (Stroll_dp.solve ~cm ~src:lin.hosts.(0) ~dst:lin.hosts.(1) ~n:4 ());
       false
     with Invalid_argument _ -> true)

let test_stroll_exhausted_edge_budget_falls_back () =
  let ft, cm = k4 () in
  (* max_edges below n+1 forces the nearest-neighbour fallback. *)
  let r =
    Stroll_dp.solve ~cm ~src:ft.hosts.(0) ~dst:ft.hosts.(15) ~n:5 ~max_edges:3
      ()
  in
  Alcotest.(check int) "fallback still yields 5 switches" 5
    (Array.length r.switches);
  let sorted = List.sort_uniq compare (Array.to_list r.switches) in
  Alcotest.(check int) "fallback switches distinct" 5 (List.length sorted)

let test_primal_dual_on_fat_tree () =
  let ft, cm = k4 () in
  let src = ft.hosts.(0) and dst = ft.hosts.(12) in
  for n = 1 to 5 do
    let pd = Stroll_primal_dual.solve ~cm ~src ~dst ~n () in
    Alcotest.(check int)
      (Printf.sprintf "pd visits %d switches" n)
      n
      (Array.length pd.switches);
    let exact = Stroll_exact.solve ~cm ~src ~dst ~n () in
    Alcotest.(check bool)
      (Printf.sprintf "pd within 2x+slack at n=%d" n)
      true
      (pd.cost <= (2.0 *. exact.cost) +. 1e-6)
  done

(* --- budget exhaustion -------------------------------------------------------- *)

let test_placement_opt_budget_exhaustion () =
  let problem = k4_problem ~l:8 ~n:5 ~seed:4 in
  let rates = Flow.base_rates (Problem.flows problem) in
  let starved = Placement_opt.solve problem ~rates ~budget:3 () in
  Alcotest.(check bool) "flagged as unproven" false starved.proven_optimal;
  (* Still returns the DP incumbent, a valid placement. *)
  Placement.validate problem starved.placement;
  let dp = Placement_dp.solve problem ~rates () in
  Alcotest.(check bool) "incumbent at least as good as DP" true
    (starved.cost <= dp.cost +. 1e-6)

let test_migration_opt_budget_exhaustion () =
  let problem = k4_problem ~l:8 ~n:4 ~seed:5 in
  let rates = Flow.base_rates (Problem.flows problem) in
  let rng = Rng.create 9 in
  let current = Placement.random ~rng problem in
  let starved =
    Migration_opt.solve problem ~rates ~mu:10.0 ~current ~budget:3 ()
  in
  Alcotest.(check bool) "flagged as unproven" false starved.proven_optimal;
  let mp = Mpareto.migrate problem ~rates ~mu:10.0 ~current () in
  Alcotest.(check bool) "incumbent at least as good as mPareto" true
    (starved.cost <= mp.total_cost +. 1e-6)

let test_stroll_exact_budget_exhaustion () =
  let ft, cm = k4 () in
  (* No incumbent and a 2-node budget: the search cannot finish and must
     fall back to the greedy stroll, flagged as unproven. *)
  let starved =
    Stroll_exact.solve ~cm ~src:ft.hosts.(0) ~dst:ft.hosts.(15) ~n:5 ~budget:2
      ()
  in
  Alcotest.(check bool) "flagged" false starved.proven_optimal;
  Alcotest.(check int) "fallback produces 5 switches" 5
    (Array.length starved.switches);
  Alcotest.(check bool) "finite cost" true (Float.is_finite starved.cost)

(* --- pair_limit --------------------------------------------------------------- *)

(* Regression: when pair_limit leaves no valid (ingress, egress) pair —
   the same switch tops both A_in and A_out — solve_n2 used to return
   the sentinel placement [|-1; -1|] with cost = infinity instead of
   failing loudly. *)
let test_n2_no_feasible_pair_rejected () =
  let ft, cm = k4 () in
  let h0 = ft.hosts.(0) in
  (* A rack-mate of h0: both hosts hang off the same edge switch, so that
     switch strictly minimizes A_in and A_out simultaneously. *)
  let h1 =
    match
      Array.find_opt
        (fun h -> h <> h0 && Cost_matrix.cost cm h0 h = 2.0)
        ft.hosts
    with
    | Some h -> h
    | None -> Alcotest.fail "k=4 fat tree must have rack-mates"
  in
  let flow =
    Flow.make ~id:0 ~src_host:h0 ~dst_host:h1 ~base_rate:5.0 ~coast:East
  in
  let problem = Problem.make ~cm ~flows:[| flow |] ~n:2 () in
  let rates = Flow.base_rates (Problem.flows problem) in
  Alcotest.(check bool) "pair_limit 1 with one top switch raises" true
    (try
       let o = Placement_dp.solve problem ~rates ~pair_limit:1 () in
       (* Seed behaviour: a silent [|-1; -1|] at infinite cost. *)
       ignore o;
       false
     with Invalid_argument _ -> true);
  (* Widening the pool keeps the instance solvable. *)
  let o = Placement_dp.solve problem ~rates ~pair_limit:2 () in
  Placement.validate problem o.placement;
  Alcotest.(check bool) "finite cost with pair_limit 2" true
    (Float.is_finite o.cost)

let test_pair_limit_extremes () =
  let problem = k4_problem ~l:8 ~n:4 ~seed:6 in
  let rates = Flow.base_rates (Problem.flows problem) in
  let full = Placement_dp.solve problem ~rates () in
  let cap_all = Placement_dp.solve problem ~rates ~pair_limit:1000 () in
  Alcotest.(check (float 1e-6)) "cap beyond |Vs| = full scan" full.cost
    cap_all.cost;
  let cap_one = Placement_dp.solve problem ~rates ~pair_limit:1 () in
  Placement.validate problem cap_one.placement;
  Alcotest.(check bool) "cap=1 still feasible, never better" true
    (cap_one.cost >= full.cost -. 1e-6)

(* --- mu extremes ---------------------------------------------------------------- *)

let test_migration_mu_validation () =
  let problem = k4_problem ~l:4 ~n:3 ~seed:7 in
  Alcotest.(check bool) "negative mu rejected" true
    (try
       ignore
         (Cost.migration_cost problem ~mu:(-1.0) ~src:[| 0; 1; 2 |]
            ~dst:[| 0; 1; 2 |]);
       false
     with Invalid_argument _ -> true)

let test_mpareto_requires_valid_current () =
  let problem = k4_problem ~l:4 ~n:3 ~seed:8 in
  let rates = Flow.base_rates (Problem.flows problem) in
  Alcotest.(check bool) "invalid current rejected" true
    (try
       ignore (Mpareto.migrate problem ~rates ~mu:1.0 ~current:[| 0; 0; 1 |] ());
       false
     with Invalid_argument _ -> true)

(* --- ILP export -------------------------------------------------------------- *)

let test_ilp_export_structure () =
  let problem = k4_problem ~l:4 ~n:3 ~seed:10 in
  let rates = Flow.base_rates (Problem.flows problem) in
  let lp = Ilp.top_lp problem ~rates in
  let count_lines prefix =
    String.split_on_char '\n' lp
    |> List.filter (fun l ->
           String.length l > String.length prefix
           && String.sub (String.trim l) 0 (min (String.length prefix) (String.length (String.trim l))) = prefix)
    |> List.length
  in
  Alcotest.(check int) "one row per VNF" 3 (count_lines "vnf_");
  Alcotest.(check int) "one row per switch" 20 (count_lines "switch_");
  Alcotest.(check int) "three McCormick rows per pair variable"
    (3 * 2 * 20 * 20)
    (count_lines "mc_");
  Alcotest.(check int) "declared binaries" (3 * 20) (count_lines "x_");
  Alcotest.(check bool) "sections present" true
    (count_lines "Minimize" = 0
    (* Minimize has no leading space; just check membership: *)
    || true);
  Alcotest.(check int) "variable count formula" ((3 * 20) + (2 * 400))
    (Ilp.variable_count problem);
  Alcotest.(check int) "constraint count formula" (3 + 20 + (3 * 2 * 400))
    (Ilp.constraint_count problem)

let test_ilp_tom_adds_migration_terms () =
  let problem = k4_problem ~l:4 ~n:2 ~seed:11 in
  let rates = Flow.base_rates (Problem.flows problem) in
  let current = [| 0; 1 |] in
  let top = Ilp.top_lp problem ~rates in
  let tom = Ilp.tom_lp problem ~rates ~mu:1000.0 ~current in
  (* The migration legs merge into the existing x coefficients, so the
     documents differ in values (not necessarily in length). *)
  Alcotest.(check bool) "TOM objective differs from TOP" true (tom <> top);
  Alcotest.(check bool) "mu = 0 degenerates to TOP" true
    (Ilp.tom_lp problem ~rates ~mu:0.0 ~current = top);
  Alcotest.(check bool) "negative mu rejected" true
    (try
       ignore (Ilp.tom_lp problem ~rates ~mu:(-1.0) ~current);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "ppdc_core_edge_cases"
    [
      ( "validation",
        [
          Alcotest.test_case "problem construction" `Quick
            test_problem_validation;
          Alcotest.test_case "rate vectors" `Quick test_rate_vector_validation;
          Alcotest.test_case "placements" `Quick
            test_placement_validation_messages;
          Alcotest.test_case "negative mu" `Quick test_migration_mu_validation;
          Alcotest.test_case "mPareto current placement" `Quick
            test_mpareto_requires_valid_current;
        ] );
      ( "chain-extremes",
        [
          Alcotest.test_case "n = 1" `Quick test_n_equals_one;
          Alcotest.test_case "n = 2" `Quick test_n_equals_two;
          Alcotest.test_case "n = |V_s| (line sweep)" `Quick
            test_n_equals_num_switches;
        ] );
      ( "stroll-extremes",
        [
          Alcotest.test_case "tour with src = dst" `Quick
            test_stroll_tour_src_equals_dst;
          Alcotest.test_case "n = 0 is the direct hop" `Quick
            test_stroll_n_zero;
          Alcotest.test_case "n = 0 honors max_edges" `Quick
            test_stroll_n_zero_honors_max_edges;
          Alcotest.test_case "undersized nearest-neighbour rejected" `Quick
            test_nearest_neighbour_undersized_rejected;
          Alcotest.test_case "insufficient candidates" `Quick
            test_stroll_insufficient_candidates;
          Alcotest.test_case "edge-budget fallback" `Quick
            test_stroll_exhausted_edge_budget_falls_back;
          Alcotest.test_case "primal-dual across n" `Quick
            test_primal_dual_on_fat_tree;
        ] );
      ( "budget-exhaustion",
        [
          Alcotest.test_case "Algo 4 under a starved budget" `Quick
            test_placement_opt_budget_exhaustion;
          Alcotest.test_case "Algo 6 under a starved budget" `Quick
            test_migration_opt_budget_exhaustion;
          Alcotest.test_case "exact stroll under a starved budget" `Quick
            test_stroll_exact_budget_exhaustion;
        ] );
      ( "ilp-export",
        [
          Alcotest.test_case "LP structure and counts" `Quick
            test_ilp_export_structure;
          Alcotest.test_case "TOM adds migration terms" `Quick
            test_ilp_tom_adds_migration_terms;
        ] );
      ( "pair-limit",
        [
          Alcotest.test_case "extreme caps" `Quick test_pair_limit_extremes;
          Alcotest.test_case "no feasible n = 2 pair rejected" `Quick
            test_n2_no_feasible_pair_rejected;
        ] );
    ]
