module Mcf = Ppdc_mcf.Min_cost_flow
module Rng = Ppdc_prelude.Rng

let test_single_path () =
  let net = Mcf.create ~num_nodes:3 in
  let a = Mcf.add_arc net ~src:0 ~dst:1 ~capacity:5 ~cost:2.0 in
  let b = Mcf.add_arc net ~src:1 ~dst:2 ~capacity:3 ~cost:1.0 in
  let r = Mcf.solve net ~source:0 ~sink:2 in
  Alcotest.(check int) "flow limited by bottleneck" 3 r.flow;
  Alcotest.(check (float 1e-9)) "cost" 9.0 r.cost;
  Alcotest.(check int) "arc a carries 3" 3 (Mcf.flow_on net a);
  Alcotest.(check int) "arc b carries 3" 3 (Mcf.flow_on net b)

let test_prefers_cheap_path () =
  (* Two parallel paths 0->1->3 (cost 1+1) and 0->2->3 (cost 5+5); one
     unit should take the cheap one. *)
  let net = Mcf.create ~num_nodes:4 in
  let cheap = Mcf.add_arc net ~src:0 ~dst:1 ~capacity:1 ~cost:1.0 in
  ignore (Mcf.add_arc net ~src:1 ~dst:3 ~capacity:1 ~cost:1.0);
  let dear = Mcf.add_arc net ~src:0 ~dst:2 ~capacity:1 ~cost:5.0 in
  ignore (Mcf.add_arc net ~src:2 ~dst:3 ~capacity:1 ~cost:5.0);
  let r = Mcf.solve ~max_flow:1 net ~source:0 ~sink:3 in
  Alcotest.(check int) "one unit" 1 r.flow;
  Alcotest.(check (float 1e-9)) "cheapest route" 2.0 r.cost;
  Alcotest.(check int) "cheap arc used" 1 (Mcf.flow_on net cheap);
  Alcotest.(check int) "dear arc idle" 0 (Mcf.flow_on net dear)

let test_residual_rerouting () =
  (* Classic example where the second augmentation must push flow back
     over the first path's arc. *)
  let net = Mcf.create ~num_nodes:4 in
  ignore (Mcf.add_arc net ~src:0 ~dst:1 ~capacity:1 ~cost:1.0);
  ignore (Mcf.add_arc net ~src:0 ~dst:2 ~capacity:1 ~cost:10.0);
  ignore (Mcf.add_arc net ~src:1 ~dst:2 ~capacity:1 ~cost:(-8.0));
  ignore (Mcf.add_arc net ~src:1 ~dst:3 ~capacity:1 ~cost:10.0);
  ignore (Mcf.add_arc net ~src:2 ~dst:3 ~capacity:1 ~cost:1.0);
  let r = Mcf.solve net ~source:0 ~sink:3 in
  Alcotest.(check int) "max flow 2" 2 r.flow;
  (* Optimal: 0-1-2-3 = 1-8+1 = -6 and 0-2 impossible (cap used) ->
     0-1? arc capacity 1... routes: unit A 0-1-2-3 (-6), unit B
     0-2(10)+2-3 used... 2-3 capacity 1 taken, so B: 0-1 full.
     Actually only paths: A: 0-1-2-3 cost -6; then B must use 0-2 and
     2-3 is saturated; residual 3-2 reverses A to 0-1-3: B effective
     0-2 (10), push back 2-1 (+8), 1-3 (10) => total A'+B' =
     0-1-2-3 & 0-2-1-3 = (1 -8 1) + (10 8 10) = 22? Let the solver
     decide; assert against brute force instead. *)
  Alcotest.(check (float 1e-9)) "min cost" 22.0 (r.cost +. 0.0)

let test_disconnected_sink () =
  let net = Mcf.create ~num_nodes:3 in
  ignore (Mcf.add_arc net ~src:0 ~dst:1 ~capacity:1 ~cost:1.0);
  let r = Mcf.solve net ~source:0 ~sink:2 in
  Alcotest.(check int) "no flow" 0 r.flow;
  Alcotest.(check (float 1e-9)) "no cost" 0.0 r.cost

(* Regression: nodes unreachable from the source used to receive a
   fabricated potential of 0.0 instead of keeping [infinity]. A fake
   finite potential breaks Johnson's invariant — an arc inside (or out
   of) the unreachable region can then show a negative reduced cost,
   which Dijkstra-with-potentials silently mis-handles. *)
let test_unreachable_potentials_stay_infinite () =
  (* 0 -> 1 is the reachable part; 2 -> 3 (negative cost) is a region
     the source cannot reach. *)
  let net = Mcf.create ~num_nodes:4 in
  ignore (Mcf.add_arc net ~src:0 ~dst:1 ~capacity:1 ~cost:1.0);
  ignore (Mcf.add_arc net ~src:2 ~dst:3 ~capacity:1 ~cost:(-5.0));
  let pot = Mcf.initial_potentials net ~source:0 in
  Alcotest.(check (float 0.0)) "source potential" 0.0 pot.(0);
  Alcotest.(check (float 0.0)) "reachable potential" 1.0 pot.(1);
  Alcotest.(check bool) "unreachable node 2 keeps infinity" true
    (Float.equal pot.(2) infinity);
  Alcotest.(check bool) "unreachable node 3 keeps infinity" true
    (Float.equal pot.(3) infinity);
  (* Johnson invariant over the arcs we added: every capacitated arc
     between finite-potential nodes has non-negative reduced cost. With
     the former 0.0 sentinel, the arc 2 -> 3 had both potentials finite
     and reduced cost -5. *)
  List.iter
    (fun (src, dst, cost) ->
      if Float.is_finite pot.(src) && Float.is_finite pot.(dst) then
        Alcotest.(check bool) "non-negative reduced cost" true
          (cost +. pot.(src) -. pot.(dst) >= -1e-9))
    [ (0, 1, 1.0); (2, 3, -5.0) ]

let test_solve_with_unreachable_negative_region () =
  (* The unreachable region also points INTO the reachable part with a
     negative arc; solve must ignore it and still route the reachable
     flow correctly. *)
  let net = Mcf.create ~num_nodes:5 in
  let a = Mcf.add_arc net ~src:0 ~dst:1 ~capacity:2 ~cost:3.0 in
  let b = Mcf.add_arc net ~src:1 ~dst:2 ~capacity:2 ~cost:1.0 in
  ignore (Mcf.add_arc net ~src:3 ~dst:4 ~capacity:1 ~cost:(-7.0));
  ignore (Mcf.add_arc net ~src:4 ~dst:1 ~capacity:1 ~cost:(-50.0));
  let r = Mcf.solve net ~source:0 ~sink:2 in
  Alcotest.(check int) "flow" 2 r.flow;
  Alcotest.(check (float 1e-9)) "cost ignores unreachable arcs" 8.0 r.cost;
  Alcotest.(check int) "forward arc a" 2 (Mcf.flow_on net a);
  Alcotest.(check int) "forward arc b" 2 (Mcf.flow_on net b)

let test_solve_twice_rejected () =
  let net = Mcf.create ~num_nodes:2 in
  ignore (Mcf.add_arc net ~src:0 ~dst:1 ~capacity:1 ~cost:1.0);
  ignore (Mcf.solve net ~source:0 ~sink:1);
  Alcotest.(check bool) "second solve raises" true
    (try
       ignore (Mcf.solve net ~source:0 ~sink:1);
       false
     with Invalid_argument _ -> true)

let test_add_arc_validation () =
  let net = Mcf.create ~num_nodes:2 in
  let reject name f =
    Alcotest.(check bool) name true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  reject "bad node" (fun () -> Mcf.add_arc net ~src:0 ~dst:9 ~capacity:1 ~cost:1.0);
  reject "negative capacity" (fun () ->
      Mcf.add_arc net ~src:0 ~dst:1 ~capacity:(-1) ~cost:1.0);
  reject "nan cost" (fun () ->
      Mcf.add_arc net ~src:0 ~dst:1 ~capacity:1 ~cost:Float.nan)

(* Brute-force check on random assignment problems: n workers to n jobs,
   min total cost. The MCF solution must match exhaustive search. *)
let brute_force_assignment costs =
  let n = Array.length costs in
  let best = ref infinity in
  let used = Array.make n false in
  let rec go worker acc =
    if acc < !best then begin
      if worker = n then best := acc
      else
        for job = 0 to n - 1 do
          if not used.(job) then begin
            used.(job) <- true;
            go (worker + 1) (acc +. costs.(worker).(job));
            used.(job) <- false
          end
        done
    end
  in
  go 0 0.0;
  !best

let mcf_assignment costs =
  let n = Array.length costs in
  (* nodes: 0 = source, 1..n workers, n+1..2n jobs, 2n+1 sink *)
  let net = Mcf.create ~num_nodes:((2 * n) + 2) in
  let sink = (2 * n) + 1 in
  for w = 0 to n - 1 do
    ignore (Mcf.add_arc net ~src:0 ~dst:(1 + w) ~capacity:1 ~cost:0.0);
    for j = 0 to n - 1 do
      ignore
        (Mcf.add_arc net ~src:(1 + w) ~dst:(1 + n + j) ~capacity:1
           ~cost:costs.(w).(j))
    done
  done;
  for j = 0 to n - 1 do
    ignore (Mcf.add_arc net ~src:(1 + n + j) ~dst:sink ~capacity:1 ~cost:0.0)
  done;
  let r = Mcf.solve net ~source:0 ~sink in
  Alcotest.(check int) "perfect assignment" n r.flow;
  r.cost

let test_assignment_matches_brute_force () =
  let rng = Rng.create 31 in
  for _ = 1 to 20 do
    let n = 2 + Rng.int rng 4 in
    let costs =
      Array.init n (fun _ -> Array.init n (fun _ -> Rng.float rng 100.0))
    in
    Alcotest.(check (float 1e-6)) "assignment optimal"
      (brute_force_assignment costs) (mcf_assignment costs)
  done

(* Transportation problem with host capacities > 1, checked against an
   exhaustive assignment search. *)
let brute_force_transport costs capacity =
  let workers = Array.length costs in
  let slots = Array.length costs.(0) in
  let used = Array.make slots 0 in
  let best = ref infinity in
  let rec go w acc =
    if acc < !best then begin
      if w = workers then best := acc
      else
        for j = 0 to slots - 1 do
          if used.(j) < capacity then begin
            used.(j) <- used.(j) + 1;
            go (w + 1) (acc +. costs.(w).(j));
            used.(j) <- used.(j) - 1
          end
        done
    end
  in
  go 0 0.0;
  !best

let mcf_transport costs capacity =
  let workers = Array.length costs in
  let slots = Array.length costs.(0) in
  let net = Mcf.create ~num_nodes:(2 + workers + slots) in
  let sink = 1 + workers + slots in
  for w = 0 to workers - 1 do
    ignore (Mcf.add_arc net ~src:0 ~dst:(1 + w) ~capacity:1 ~cost:0.0);
    for j = 0 to slots - 1 do
      ignore
        (Mcf.add_arc net ~src:(1 + w) ~dst:(1 + workers + j) ~capacity:1
           ~cost:costs.(w).(j))
    done
  done;
  for j = 0 to slots - 1 do
    ignore (Mcf.add_arc net ~src:(1 + workers + j) ~dst:sink ~capacity ~cost:0.0)
  done;
  let r = Mcf.solve net ~source:0 ~sink in
  Alcotest.(check int) "all workers placed" workers r.flow;
  r.cost

let test_transport_matches_brute_force () =
  let rng = Rng.create 77 in
  for _ = 1 to 15 do
    let workers = 3 + Rng.int rng 3 in
    let slots = 2 + Rng.int rng 2 in
    let capacity = 2 + Rng.int rng 2 in
    if workers <= slots * capacity then begin
      let costs =
        Array.init workers (fun _ ->
            Array.init slots (fun _ -> Rng.float rng 50.0))
      in
      Alcotest.(check (float 1e-6)) "transport optimal"
        (brute_force_transport costs capacity)
        (mcf_transport costs capacity)
    end
  done

let test_max_flow_cap_respected () =
  let net = Mcf.create ~num_nodes:2 in
  ignore (Mcf.add_arc net ~src:0 ~dst:1 ~capacity:10 ~cost:1.0);
  let r = Mcf.solve ~max_flow:4 net ~source:0 ~sink:1 in
  Alcotest.(check int) "flow capped" 4 r.flow;
  Alcotest.(check (float 1e-9)) "cost of 4 units" 4.0 r.cost

let prop_flow_conservation =
  QCheck.Test.make ~name:"cost is sum of arc flows times costs" ~count:50
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 6 in
      let net = Mcf.create ~num_nodes:n in
      let arcs = ref [] in
      for _ = 1 to 12 do
        let src = Rng.int rng (n - 1) in
        let dst = 1 + Rng.int rng (n - 1) in
        if src <> dst then begin
          let cost = Rng.float rng 10.0 in
          let capacity = 1 + Rng.int rng 3 in
          let a = Mcf.add_arc net ~src ~dst ~capacity ~cost in
          arcs := (a, cost) :: !arcs
        end
      done;
      let r = Mcf.solve net ~source:0 ~sink:(n - 1) in
      let recomputed =
        List.fold_left
          (fun acc (a, c) -> acc +. (float_of_int (Mcf.flow_on net a) *. c))
          0.0 !arcs
      in
      Float.abs (recomputed -. r.cost) < 1e-6)

let qsuite name tests = (name, List.map (fun t -> QCheck_alcotest.to_alcotest t) tests)

let () =
  Alcotest.run "ppdc_mcf"
    [
      ( "min-cost-flow",
        [
          Alcotest.test_case "single path bottleneck" `Quick test_single_path;
          Alcotest.test_case "prefers cheaper path" `Quick
            test_prefers_cheap_path;
          Alcotest.test_case "reroutes through residual arcs" `Quick
            test_residual_rerouting;
          Alcotest.test_case "disconnected sink" `Quick test_disconnected_sink;
          Alcotest.test_case "unreachable potentials stay infinite" `Quick
            test_unreachable_potentials_stay_infinite;
          Alcotest.test_case "solve with unreachable negative region" `Quick
            test_solve_with_unreachable_negative_region;
          Alcotest.test_case "double solve rejected" `Quick
            test_solve_twice_rejected;
          Alcotest.test_case "arc validation" `Quick test_add_arc_validation;
          Alcotest.test_case "assignment matches brute force" `Quick
            test_assignment_matches_brute_force;
          Alcotest.test_case "capacitated transport matches brute force"
            `Quick test_transport_matches_brute_force;
          Alcotest.test_case "max_flow cap respected" `Quick
            test_max_flow_cap_respected;
        ] );
      qsuite "mcf-properties" [ prop_flow_conservation ];
    ]
