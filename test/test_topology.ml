module Graph = Ppdc_topology.Graph
module Fat_tree = Ppdc_topology.Fat_tree
module Linear = Ppdc_topology.Linear
module Random_topology = Ppdc_topology.Random_topology
module Shortest_paths = Ppdc_topology.Shortest_paths
module Cost_matrix = Ppdc_topology.Cost_matrix
module Rng = Ppdc_prelude.Rng

(* --- graph ------------------------------------------------------------- *)

let tiny_graph () =
  (* switches 0,1,2 in a triangle with uneven weights, host 3 at switch 0,
     host 4 at switch 2. *)
  Graph.make
    ~kinds:[| Switch; Switch; Switch; Host; Host |]
    ~edges:[ (0, 1, 1.0); (1, 2, 1.0); (0, 2, 5.0); (0, 3, 1.0); (2, 4, 1.0) ]

let tiny_edges = [ (0, 1, 1.0); (1, 2, 1.0); (0, 2, 5.0); (0, 3, 1.0); (2, 4, 1.0) ]
let tiny_kinds () =
  [| Graph.Switch; Graph.Switch; Graph.Switch; Graph.Host; Graph.Host |]

let test_digest_edge_order_independent () =
  let g1 = Graph.make ~kinds:(tiny_kinds ()) ~edges:tiny_edges in
  let g2 = Graph.make ~kinds:(tiny_kinds ()) ~edges:(List.rev tiny_edges) in
  let g3 =
    Graph.make ~kinds:(tiny_kinds ())
      ~edges:(List.map (fun (u, v, w) -> (v, u, w)) tiny_edges)
  in
  Alcotest.(check string) "reversed edge list" (Graph.digest g1)
    (Graph.digest g2);
  Alcotest.(check string) "flipped endpoints" (Graph.digest g1)
    (Graph.digest g3);
  Alcotest.(check string) "deterministic across builds" (Graph.digest g1)
    (Graph.digest (Graph.make ~kinds:(tiny_kinds ()) ~edges:tiny_edges))

let test_digest_sensitive_to_structure () =
  let digest_with edges =
    Graph.digest (Graph.make ~kinds:(tiny_kinds ()) ~edges)
  in
  let base = digest_with tiny_edges in
  let heavier =
    digest_with
      (List.map
         (fun (u, v, w) -> if u = 0 && v = 2 then (u, v, w +. 0.5) else (u, v, w))
         tiny_edges)
  in
  let sparser =
    digest_with (List.filter (fun (u, v, _) -> not (u = 0 && v = 2)) tiny_edges)
  in
  Alcotest.(check bool) "single weight edit changes digest" false
    (String.equal base heavier);
  Alcotest.(check bool) "edge removal changes digest" false
    (String.equal base sparser);
  Alcotest.(check bool) "weight edit and removal differ" false
    (String.equal heavier sparser)

let test_graph_counts () =
  let g = tiny_graph () in
  Alcotest.(check int) "nodes" 5 (Graph.num_nodes g);
  Alcotest.(check int) "edges" 5 (Graph.num_edges g);
  Alcotest.(check int) "hosts" 2 (Graph.num_hosts g);
  Alcotest.(check int) "switches" 3 (Graph.num_switches g);
  Alcotest.(check int) "degree of 0" 3 (Graph.degree g 0)

let test_graph_edge_weight () =
  let g = tiny_graph () in
  Alcotest.(check (option (float 0.0))) "existing" (Some 5.0)
    (Graph.edge_weight g 0 2);
  Alcotest.(check (option (float 0.0))) "symmetric" (Some 5.0)
    (Graph.edge_weight g 2 0);
  Alcotest.(check (option (float 0.0))) "missing" None (Graph.edge_weight g 1 3)

let test_graph_rejections () =
  let kinds = [| Graph.Switch; Graph.Host; Graph.Host |] in
  let reject name edges =
    Alcotest.(check bool) name true
      (try
         ignore (Graph.make ~kinds ~edges);
         false
       with Invalid_argument _ -> true)
  in
  reject "self loop" [ (0, 0, 1.0) ];
  reject "host-host edge" [ (1, 2, 1.0) ];
  reject "zero weight" [ (0, 1, 0.0) ];
  reject "duplicate edge" [ (0, 1, 1.0); (1, 0, 2.0) ];
  reject "out of range" [ (0, 7, 1.0) ]

let test_graph_map_weights () =
  let g = tiny_graph () in
  let doubled = Graph.map_weights g (fun _ _ w -> 2.0 *. w) in
  Alcotest.(check (option (float 0.0))) "doubled" (Some 10.0)
    (Graph.edge_weight doubled 0 2)

(* --- fat tree ---------------------------------------------------------- *)

let test_fat_tree_sizes () =
  List.iter
    (fun k ->
      let ft = Fat_tree.build k in
      Alcotest.(check int)
        (Printf.sprintf "k=%d hosts" k)
        (k * k * k / 4)
        (Graph.num_hosts ft.graph);
      Alcotest.(check int)
        (Printf.sprintf "k=%d switches" k)
        (5 * k * k / 4)
        (Graph.num_switches ft.graph);
      (* Edge count: (k/2)^2 * k core links + (k/2)^2 * k agg-edge links +
         k^3/4 host links. *)
      Alcotest.(check int)
        (Printf.sprintf "k=%d edges" k)
        ((k * k * k / 4) + (k * k * k / 4) + (k * k * k / 4))
        (Graph.num_edges ft.graph))
    [ 2; 4; 8 ]

let test_fat_tree_k2_is_fig1_linear () =
  (* The paper notes its k=2 fat-tree is the Fig. 1 linear PPDC: 5 switches
     in a path, hosts at both ends. *)
  let ft = Fat_tree.build 2 in
  let cm = Cost_matrix.compute ft.graph in
  let h1 = ft.hosts.(0) and h2 = ft.hosts.(1) in
  Alcotest.(check (float 0.0)) "host-host distance 6" 6.0
    (Cost_matrix.cost cm h1 h2)

let test_fat_tree_host_structure () =
  let ft = Fat_tree.build 4 in
  Alcotest.(check int) "16 hosts" 16 (Array.length ft.hosts);
  Alcotest.(check int) "8 racks" 8 (Fat_tree.num_racks ft);
  Array.iter
    (fun h ->
      let rack = Fat_tree.rack_of_host ft h in
      let esw = Fat_tree.edge_switch_of_host ft h in
      Alcotest.(check bool) "host adjacent to its edge switch" true
        (Graph.edge_weight ft.graph h esw <> None);
      Alcotest.(check bool) "host listed in its rack" true
        (Array.exists (( = ) h) (Fat_tree.hosts_of_rack ft rack)))
    ft.hosts

let test_fat_tree_pods () =
  let ft = Fat_tree.build 4 in
  (* Hosts 0,1 share rack 0 in pod 0; the last host lives in pod 3. *)
  Alcotest.(check int) "pod of first host" 0 (Fat_tree.pod_of_host ft ft.hosts.(0));
  Alcotest.(check int) "pod of last host" 3
    (Fat_tree.pod_of_host ft ft.hosts.(15))

let test_fat_tree_distances () =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let same_rack = Cost_matrix.cost cm ft.hosts.(0) ft.hosts.(1) in
  let same_pod = Cost_matrix.cost cm ft.hosts.(0) ft.hosts.(2) in
  let cross_pod = Cost_matrix.cost cm ft.hosts.(0) ft.hosts.(15) in
  Alcotest.(check (float 0.0)) "same rack = 2 hops" 2.0 same_rack;
  Alcotest.(check (float 0.0)) "same pod = 4 hops" 4.0 same_pod;
  Alcotest.(check (float 0.0)) "cross pod = 6 hops" 6.0 cross_pod

let test_fat_tree_rejects_odd_k () =
  Alcotest.(check bool) "odd k" true
    (try
       ignore (Fat_tree.build 3);
       false
     with Invalid_argument _ -> true)

(* --- linear ------------------------------------------------------------ *)

let test_linear_structure () =
  let lin = Linear.build ~num_switches:5 () in
  Alcotest.(check int) "5 switches" 5 (Graph.num_switches lin.graph);
  Alcotest.(check int) "2 hosts" 2 (Graph.num_hosts lin.graph);
  let cm = Cost_matrix.compute lin.graph in
  Alcotest.(check (float 0.0)) "end-to-end = 6" 6.0
    (Cost_matrix.cost cm lin.hosts.(0) lin.hosts.(1))

let test_linear_custom_hosts () =
  let lin = Linear.build ~num_switches:4 ~host_positions:[ 1; 1; 3 ] () in
  Alcotest.(check int) "3 hosts" 3 (Graph.num_hosts lin.graph);
  let cm = Cost_matrix.compute lin.graph in
  Alcotest.(check (float 0.0)) "co-located hosts 2 apart" 2.0
    (Cost_matrix.cost cm lin.hosts.(0) lin.hosts.(1))

(* --- leaf-spine --------------------------------------------------------- *)

let test_leaf_spine_structure () =
  let ls =
    Ppdc_topology.Leaf_spine.build ~spines:4 ~leaves:6 ~hosts_per_leaf:3 ()
  in
  Alcotest.(check int) "switches" 10 (Graph.num_switches ls.graph);
  Alcotest.(check int) "hosts" 18 (Graph.num_hosts ls.graph);
  Alcotest.(check int) "links" ((4 * 6) + 18) (Graph.num_edges ls.graph);
  let cm = Cost_matrix.compute ls.graph in
  (* Same-rack hosts are 2 apart, cross-rack exactly 4. *)
  Alcotest.(check (float 0.0)) "same rack" 2.0
    (Cost_matrix.cost cm ls.hosts.(0) ls.hosts.(1));
  Alcotest.(check (float 0.0)) "cross rack" 4.0
    (Cost_matrix.cost cm ls.hosts.(0) ls.hosts.(17));
  (* Spines are 2 hops from every host. *)
  Array.iter
    (fun h ->
      Alcotest.(check (float 0.0)) "spine equidistance" 2.0
        (Cost_matrix.cost cm ls.spines.(0) h))
    ls.hosts

let test_leaf_spine_host_mapping () =
  let ls =
    Ppdc_topology.Leaf_spine.build ~spines:2 ~leaves:3 ~hosts_per_leaf:2 ()
  in
  Array.iteri
    (fun i h ->
      let leaf = Ppdc_topology.Leaf_spine.leaf_of_host ls h in
      Alcotest.(check int) "leaf by index" ls.leaves.(i / 2) leaf;
      Alcotest.(check bool) "host adjacent to its leaf" true
        (Graph.edge_weight ls.graph h leaf <> None))
    ls.hosts;
  Alcotest.(check bool) "rejects counts < 1" true
    (try
       ignore (Ppdc_topology.Leaf_spine.build ~spines:0 ~leaves:1 ~hosts_per_leaf:1 ());
       false
     with Invalid_argument _ -> true)

(* --- random topology ---------------------------------------------------- *)

let test_random_topology_connected () =
  for seed = 1 to 5 do
    let rng = Rng.create seed in
    let rt =
      Random_topology.build ~rng ~num_switches:30 ~extra_edges:20
        ~hosts_per_switch:2 ()
    in
    Alcotest.(check int) "hosts" 60 (Graph.num_hosts rt.graph);
    (* compute raises if disconnected *)
    ignore (Cost_matrix.compute rt.graph)
  done

let test_random_topology_deterministic () =
  let build seed =
    let rng = Rng.create seed in
    (Random_topology.build ~rng ~num_switches:10 ~extra_edges:5
       ~hosts_per_switch:1 ())
      .graph |> Graph.edges
  in
  Alcotest.(check bool) "same seed, same graph" true (build 3 = build 3);
  Alcotest.(check bool) "different seed differs" true (build 3 <> build 4)

(* --- shortest paths ------------------------------------------------------ *)

let test_dijkstra_simple () =
  let g = tiny_graph () in
  let dist, pred = Shortest_paths.dijkstra g ~src:0 in
  Alcotest.(check (float 0.0)) "to self" 0.0 dist.(0);
  Alcotest.(check (float 0.0)) "around the heavy edge" 2.0 dist.(2);
  Alcotest.(check (option (list int))) "path avoids the weight-5 edge"
    (Some [ 0; 1; 2 ])
    (Shortest_paths.path_from_pred ~pred ~src:0 ~dst:2 ())

(* Regression: an edge weight small enough to vanish in float addition
   ([d +. w = d]) makes a node settle at the same priority as its own
   ancestor. Without the settled guard on the equal-cost tie-break, the
   late settler rewrites the already-settled ancestor's predecessor —
   here pred(1) became 0 while pred(0) = 1, a cycle that sent path
   extraction into an infinite loop. *)
let test_dijkstra_settled_guard () =
  let g =
    Graph.make
      ~kinds:[| Host; Switch; Switch; Host |]
      ~edges:[ (1, 3, 1.0); (0, 1, 1e-300) ]
  in
  let dist, pred = Shortest_paths.dijkstra g ~src:3 in
  Alcotest.(check (float 0.0)) "src" 0.0 dist.(3);
  Alcotest.(check (float 0.0)) "one hop" 1.0 dist.(1);
  Alcotest.(check (float 0.0)) "tiny edge vanishes in the sum" 1.0 dist.(0);
  Alcotest.(check bool) "isolated node unreachable" true
    (Float.equal dist.(2) infinity);
  (* Every pred chain must reach the source within n steps; checked
     BEFORE any path extraction so a reintroduced cycle fails the test
     instead of hanging it. *)
  let n = Graph.num_nodes g in
  for v = 0 to n - 1 do
    if pred.(v) <> -1 then begin
      let current = ref v and steps = ref 0 in
      while !current <> 3 && !steps <= n do
        current := pred.(!current);
        incr steps
      done;
      Alcotest.(check bool) "pred chain reaches the source" true (!steps <= n)
    end
  done;
  Alcotest.(check int) "pred of 1 frozen at settlement" 3 pred.(1);
  Alcotest.(check (option (list int))) "path through the tiny edge"
    (Some [ 3; 1; 0 ])
    (Shortest_paths.path_from_pred ~pred ~src:3 ~dst:0 ());
  Alcotest.(check (option (list int))) "unreachable destination is None" None
    (Shortest_paths.path_from_pred ~pred ~src:3 ~dst:2 ())

let test_cost_matrix_metric_properties () =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let n = Cost_matrix.num_nodes cm in
  for u = 0 to n - 1 do
    Alcotest.(check (float 0.0)) "identity" 0.0 (Cost_matrix.cost cm u u)
  done;
  let rng = Rng.create 9 in
  for _ = 1 to 200 do
    let u = Rng.int rng n and v = Rng.int rng n and w = Rng.int rng n in
    let d a b = Cost_matrix.cost cm a b in
    Alcotest.(check (float 1e-9)) "symmetry" (d u v) (d v u);
    Alcotest.(check bool) "triangle inequality" true
      (d u w <= d u v +. d v w +. 1e-9)
  done

let test_cost_matrix_paths_consistent () =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let rng = Rng.create 13 in
  let n = Cost_matrix.num_nodes cm in
  for _ = 1 to 100 do
    let u = Rng.int rng n and v = Rng.int rng n in
    let p = Cost_matrix.path cm ~src:u ~dst:v in
    (* Path endpoints and length match the cost (unit weights). *)
    (match p with
    | [] -> Alcotest.fail "connected graph must give a path"
    | first :: _ ->
        Alcotest.(check int) "starts at src" u first;
        Alcotest.(check int) "ends at dst" v (List.nth p (List.length p - 1)));
    Alcotest.(check (float 1e-9)) "hop count = cost on unit weights"
      (Cost_matrix.cost cm u v)
      (float_of_int (List.length p - 1))
  done

let test_cost_matrix_switch_path () =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let sp =
    Cost_matrix.switch_path cm ~src:ft.hosts.(0) ~dst:ft.hosts.(15)
  in
  Alcotest.(check int) "cross-pod switch path has 5 switches" 5
    (List.length sp);
  List.iter
    (fun v ->
      Alcotest.(check bool) "all switches" true (Graph.is_switch ft.graph v))
    sp

let test_diameter () =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  Alcotest.(check (float 0.0)) "k=4 fat-tree diameter (host to host)" 6.0
    (Cost_matrix.diameter cm)

let test_disconnected_rejected () =
  let g =
    Graph.make
      ~kinds:[| Switch; Switch; Host |]
      ~edges:[ (0, 2, 1.0) ]
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Cost_matrix.compute g);
       false
     with Invalid_argument _ -> true)

let prop_dijkstra_tree_consistent =
  QCheck.Test.make ~name:"dijkstra distances obey edge relaxations" ~count:50
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let rt =
        Random_topology.build
          ~weight:(fun () -> Rng.uniform rng ~lo:0.5 ~hi:3.0)
          ~rng ~num_switches:15 ~extra_edges:10 ~hosts_per_switch:1 ()
      in
      let dist, _ = Shortest_paths.dijkstra rt.graph ~src:0 in
      let ok = ref true in
      List.iter
        (fun (u, v, w) ->
          if dist.(v) > dist.(u) +. w +. 1e-9 then ok := false;
          if dist.(u) > dist.(v) +. w +. 1e-9 then ok := false)
        (Graph.edges rt.graph);
      !ok)

let prop_path_cost_matches_dist =
  QCheck.Test.make ~name:"extracted path cost equals dijkstra distance"
    ~count:50
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let rt =
        Random_topology.build
          ~weight:(fun () -> Rng.uniform rng ~lo:0.5 ~hi:3.0)
          ~rng ~num_switches:12 ~extra_edges:8 ~hosts_per_switch:2 ()
      in
      let g = rt.graph in
      let n = Graph.num_nodes g in
      let src = Rng.int rng n in
      let dist, pred = Shortest_paths.dijkstra g ~src in
      let ok = ref true in
      for dst = 0 to n - 1 do
        match Shortest_paths.path_from_pred ~pred ~src ~dst () with
        | None -> ok := false (* the builder always yields connected graphs *)
        | Some p ->
            let rec walk_cost = function
              | a :: (b :: _ as rest) -> (
                  match Graph.edge_weight g a b with
                  | Some w -> w +. walk_cost rest
                  | None -> infinity (* consecutive nodes must share an edge *))
              | _ -> 0.0
            in
            if Float.abs (walk_cost p -. dist.(dst)) > 1e-9 then ok := false
      done;
      !ok)

(* --- dot export ----------------------------------------------------------- *)

let test_dot_export () =
  let g = tiny_graph () in
  let dot = Ppdc_topology.Dot.of_graph ~highlight:[ 1 ] g in
  Alcotest.(check bool) "document shape" true
    (String.length dot > 0
    && String.sub dot 0 11 = "graph ppdc "
    && dot.[String.length dot - 2] = '}');
  let contains needle =
    let nl = String.length needle and dl = String.length dot in
    let rec go i = i + nl <= dl && (String.sub dot i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "switch labelled s0" true (contains "label=\"s0\"");
  Alcotest.(check bool) "host labelled h0" true (contains "label=\"h0\"");
  Alcotest.(check bool) "highlight filled" true (contains "fillcolor");
  Alcotest.(check bool) "weighted edge labelled" true (contains "[label=\"5\"]");
  Alcotest.(check bool) "five edges" true
    (List.length (String.split_on_char '-' dot) > 5)

let qsuite name tests = (name, List.map (fun t -> QCheck_alcotest.to_alcotest t) tests)

let () =
  Alcotest.run "ppdc_topology"
    [
      ( "graph",
        [
          Alcotest.test_case "counts" `Quick test_graph_counts;
          Alcotest.test_case "edge weights" `Quick test_graph_edge_weight;
          Alcotest.test_case "invalid inputs rejected" `Quick
            test_graph_rejections;
          Alcotest.test_case "map_weights" `Quick test_graph_map_weights;
        ] );
      ( "digest",
        [
          Alcotest.test_case "insertion-order independent" `Quick
            test_digest_edge_order_independent;
          Alcotest.test_case "structure-sensitive" `Quick
            test_digest_sensitive_to_structure;
        ] );
      ( "fat-tree",
        [
          Alcotest.test_case "node and edge counts" `Quick test_fat_tree_sizes;
          Alcotest.test_case "k=2 equals Fig. 1's linear PPDC" `Quick
            test_fat_tree_k2_is_fig1_linear;
          Alcotest.test_case "host/rack structure" `Quick
            test_fat_tree_host_structure;
          Alcotest.test_case "pod indexing" `Quick test_fat_tree_pods;
          Alcotest.test_case "hop distances" `Quick test_fat_tree_distances;
          Alcotest.test_case "odd k rejected" `Quick test_fat_tree_rejects_odd_k;
        ] );
      ( "linear",
        [
          Alcotest.test_case "Fig. 1 chain" `Quick test_linear_structure;
          Alcotest.test_case "custom host positions" `Quick
            test_linear_custom_hosts;
        ] );
      ( "leaf-spine",
        [
          Alcotest.test_case "structure and distances" `Quick
            test_leaf_spine_structure;
          Alcotest.test_case "host/leaf mapping" `Quick
            test_leaf_spine_host_mapping;
        ] );
      ( "random-topology",
        [
          Alcotest.test_case "always connected" `Quick
            test_random_topology_connected;
          Alcotest.test_case "seed-deterministic" `Quick
            test_random_topology_deterministic;
        ] );
      ( "shortest-paths",
        [
          Alcotest.test_case "dijkstra picks the cheap detour" `Quick
            test_dijkstra_simple;
          Alcotest.test_case "tie-break frozen at settlement (pred cycle)"
            `Quick test_dijkstra_settled_guard;
          Alcotest.test_case "metric: identity/symmetry/triangle" `Quick
            test_cost_matrix_metric_properties;
          Alcotest.test_case "extracted paths match costs" `Quick
            test_cost_matrix_paths_consistent;
          Alcotest.test_case "switch-only paths" `Quick
            test_cost_matrix_switch_path;
          Alcotest.test_case "diameter" `Quick test_diameter;
          Alcotest.test_case "disconnected graphs rejected" `Quick
            test_disconnected_rejected;
        ] );
      ( "dot",
        [ Alcotest.test_case "graphviz export" `Quick test_dot_export ] );
      qsuite "shortest-paths-properties"
        [ prop_dijkstra_tree_consistent; prop_path_cost_matches_dist ];
    ]
