(* The Parallel module's combinator laws (qcheck) and the
   sequential-vs-parallel determinism contract: every solver and
   experiment output must be bit-identical under PPDC_DOMAINS=1 and
   PPDC_DOMAINS=4. *)

module Parallel = Ppdc_prelude.Parallel
module Stats = Ppdc_prelude.Stats
module Rng = Ppdc_prelude.Rng
module Table = Ppdc_prelude.Table
module Fat_tree = Ppdc_topology.Fat_tree
module Cost_matrix = Ppdc_topology.Cost_matrix
module Workload = Ppdc_traffic.Workload
module Flow = Ppdc_traffic.Flow
module Mode = Ppdc_experiments.Mode
module Registry = Ppdc_experiments.Registry
module Runner = Ppdc_experiments.Runner
open Ppdc_core

let with_domains d f =
  let prev = Parallel.domain_count () in
  Parallel.set_domains d;
  Fun.protect ~finally:(fun () -> Parallel.set_domains prev) f

(* --- combinator laws (qcheck) ------------------------------------------- *)

let prop_map_matches_array_map =
  QCheck.Test.make ~name:"parallel_map ≡ Array.map" ~count:50
    QCheck.(array small_int)
    (fun a ->
      let f x = (x * 37) - (x * x) in
      with_domains 4 (fun () -> Parallel.parallel_map f a) = Array.map f a)

let prop_init_matches_array_init =
  QCheck.Test.make ~name:"init ≡ Array.init" ~count:50
    QCheck.(int_bound 500)
    (fun n ->
      let f i = (i * 13) mod 7 in
      with_domains 4 (fun () -> Parallel.init n f) = Array.init n f)

let prop_reduce_is_index_ordered =
  (* The combine is order-sensitive, so this only holds if the reduction
     really runs in index order regardless of the schedule. *)
  QCheck.Test.make ~name:"map_reduce folds in index order" ~count:50
    QCheck.(array small_int)
    (fun a ->
      let n = Array.length a in
      let map i = a.(i) in
      let combine acc x = (acc * 31) + x in
      let sequential = Array.fold_left combine 17 (Array.init n map) in
      with_domains 4 (fun () ->
          Parallel.map_reduce ~n ~map ~init:17 ~combine)
      = sequential)

(* --- scheduling details -------------------------------------------------- *)

let test_parallel_for_covers_all_indices () =
  with_domains 4 (fun () ->
      let n = 1000 in
      let slots = Array.make n 0 in
      Parallel.parallel_for n (fun i -> slots.(i) <- (2 * i) + 1);
      Alcotest.(check int)
        "every index ran exactly once" (n * n)
        (Array.fold_left ( + ) 0 slots))

let test_lowest_index_exception_wins () =
  with_domains 4 (fun () ->
      let observed =
        try
          Parallel.parallel_for 64 (fun i ->
              if i = 3 || i = 7 || i = 60 then
                failwith (string_of_int i));
          "no exception"
        with Failure msg -> msg
      in
      Alcotest.(check string) "failure of index 3 is re-raised" "3" observed)

let test_nested_sections_degrade_gracefully () =
  with_domains 4 (fun () ->
      let outer =
        Parallel.parallel_map
          (fun x ->
            Parallel.map_reduce ~n:10
              ~map:(fun i -> x + i)
              ~init:0 ~combine:( + ))
          (Array.init 6 (fun i -> 100 * i))
      in
      let expected =
        Array.init 6 (fun i -> (10 * 100 * i) + 45)
      in
      Alcotest.(check (array int)) "nested results" expected outer)

let test_set_domains_validation () =
  Alcotest.(check bool) "zero domains rejected" true
    (try
       Parallel.set_domains 0;
       false
     with Invalid_argument _ -> true)

(* --- solver determinism --------------------------------------------------- *)

type bundle = {
  costs : float array array;
  dp : Placement_dp.outcome;
  dp_rescore : Placement_dp.outcome;
  dp_limited : Placement_dp.outcome;
  opt_placement : Placement.t;
  opt_cost : float;
  stroll : Stroll_dp.result;
}

let bundle_under domains =
  with_domains domains (fun () ->
      let ft = Fat_tree.build 4 in
      let cm = Cost_matrix.compute ft.graph in
      let rng = Rng.create 3 in
      let flows = Workload.generate_on_fat_tree ~rng ~l:12 ft in
      let problem = Problem.make ~cm ~flows ~n:4 () in
      let rates = Flow.base_rates flows in
      let nodes = Cost_matrix.num_nodes cm in
      let costs =
        Array.init nodes (fun u ->
            Array.init nodes (fun v -> Cost_matrix.cost cm u v))
      in
      let opt = Placement_opt.solve problem ~rates () in
      {
        costs;
        dp = Placement_dp.solve problem ~rates ();
        dp_rescore = Placement_dp.solve problem ~rates ~rescore:true ();
        dp_limited = Placement_dp.solve problem ~rates ~pair_limit:3 ();
        opt_placement = opt.placement;
        opt_cost = opt.cost;
        stroll =
          Stroll_dp.solve ~cm ~src:ft.hosts.(0)
            ~dst:ft.hosts.(Array.length ft.hosts - 1)
            ~n:5 ();
      })

let check_outcome name (a : Placement_dp.outcome) (b : Placement_dp.outcome) =
  Alcotest.(check (array int)) (name ^ " placement") a.placement b.placement;
  Alcotest.(check (float 0.0)) (name ^ " cost") a.cost b.cost;
  Alcotest.(check (float 0.0)) (name ^ " objective") a.objective b.objective

let test_solvers_bit_identical () =
  let seq = bundle_under 1 and par = bundle_under 4 in
  Array.iteri
    (fun u row ->
      Alcotest.(check (array (float 0.0)))
        (Printf.sprintf "all-pairs row %d" u)
        row par.costs.(u))
    seq.costs;
  check_outcome "dp" seq.dp par.dp;
  check_outcome "dp+rescore" seq.dp_rescore par.dp_rescore;
  check_outcome "dp+pair_limit" seq.dp_limited par.dp_limited;
  Alcotest.(check (array int))
    "optimal placement" seq.opt_placement par.opt_placement;
  Alcotest.(check (float 0.0)) "optimal cost" seq.opt_cost par.opt_cost;
  Alcotest.(check (array int)) "stroll walk" seq.stroll.walk par.stroll.walk;
  Alcotest.(check (float 0.0)) "stroll cost" seq.stroll.cost par.stroll.cost

let test_trial_loop_bit_identical () =
  let day domains =
    with_domains domains (fun () ->
        Runner.average ~trials:6 (fun ~seed ->
            let problem =
              Runner.fat_tree_problem ~k:4 ~l:8 ~n:3 ~seed ()
            in
            let rates = Flow.base_rates (Problem.flows problem) in
            (Placement_dp.solve problem ~rates ()).cost))
  in
  let a = day 1 and b = day 4 in
  Alcotest.(check (float 0.0)) "mean" a.Stats.mean b.Stats.mean;
  Alcotest.(check (float 0.0)) "ci95" a.Stats.ci95 b.Stats.ci95;
  Alcotest.(check (float 0.0)) "min" a.Stats.min b.Stats.min;
  Alcotest.(check (float 0.0)) "max" a.Stats.max b.Stats.max

let test_experiment_tables_bit_identical () =
  let render domains id =
    with_domains domains (fun () ->
        match Registry.find id with
        | Some e -> List.map Table.to_csv (e.run Mode.Quick)
        | None -> Alcotest.failf "experiment %s not registered" id)
  in
  List.iter
    (fun id ->
      Alcotest.(check (list string))
        (id ^ " tables") (render 1 id) (render 4 id))
    [ "example1"; "fig8" ]

let () =
  let qtest = QCheck_alcotest.to_alcotest in
  Alcotest.run "ppdc_parallel"
    [
      ( "combinators",
        [
          qtest prop_map_matches_array_map;
          qtest prop_init_matches_array_init;
          qtest prop_reduce_is_index_ordered;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "parallel_for covers all indices" `Quick
            test_parallel_for_covers_all_indices;
          Alcotest.test_case "lowest-index exception wins" `Quick
            test_lowest_index_exception_wins;
          Alcotest.test_case "nested sections degrade gracefully" `Quick
            test_nested_sections_degrade_gracefully;
          Alcotest.test_case "set_domains validation" `Quick
            test_set_domains_validation;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "solvers bit-identical (1 vs 4 domains)" `Quick
            test_solvers_bit_identical;
          Alcotest.test_case "trial loops bit-identical" `Quick
            test_trial_loop_bit_identical;
          Alcotest.test_case "experiment tables bit-identical" `Quick
            test_experiment_tables_bit_identical;
        ] );
    ]
