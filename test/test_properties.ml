(* Property-based tests (qcheck) over randomly generated PPDC instances.

   Each property draws a whole problem — topology, workload, rates — from
   a seed, so shrinking reports a reproducible counterexample seed. *)

module Graph = Ppdc_topology.Graph
module Fat_tree = Ppdc_topology.Fat_tree
module Random_topology = Ppdc_topology.Random_topology
module Cost_matrix = Ppdc_topology.Cost_matrix
module Workload = Ppdc_traffic.Workload
module Flow = Ppdc_traffic.Flow
module Rng = Ppdc_prelude.Rng
open Ppdc_core

(* --- generators --------------------------------------------------------- *)

(* A random connected PPDC with flows: either a small fat-tree or a
   random fabric, 3..12 flows, n in 2..4. *)
let random_problem seed =
  let rng = Rng.create seed in
  let use_fat_tree = Rng.bool rng in
  let cm, hosts =
    if use_fat_tree then begin
      let ft = Fat_tree.build 4 in
      (Cost_matrix.compute ft.graph, ft.hosts)
    end
    else begin
      let rt =
        Random_topology.build
          ~weight:(fun () -> Rng.uniform rng ~lo:0.5 ~hi:3.0)
          ~rng
          ~num_switches:(8 + Rng.int rng 10)
          ~extra_edges:(Rng.int rng 12) ~hosts_per_switch:1 ()
      in
      (Cost_matrix.compute rt.graph, rt.hosts)
    end
  in
  let l = 3 + Rng.int rng 10 in
  let flows = Workload.generate_on_hosts ~rng ~l ~hosts () in
  let n = 2 + Rng.int rng 3 in
  let problem = Problem.make ~cm ~flows ~n () in
  let rates = Flow.base_rates flows in
  (problem, rates, rng)

let seed_gen = QCheck.int_bound 100_000

let property ?(count = 60) name f =
  QCheck.Test.make ~name ~count seed_gen f

(* --- cost model ---------------------------------------------------------- *)

let prop_comm_cost_nonnegative =
  property "C_a is non-negative" (fun seed ->
      let problem, rates, rng = random_problem seed in
      let p = Placement.random ~rng problem in
      Cost.comm_cost problem ~rates p >= 0.0)

let prop_attach_agrees_with_direct =
  property "attach-based C_a equals direct Eq. 1" (fun seed ->
      let problem, rates, rng = random_problem seed in
      let att = Cost.attach problem ~rates in
      let p = Placement.random ~rng problem in
      let a = Cost.comm_cost problem ~rates p in
      let b = Cost.comm_cost_with_attach problem att p in
      Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 a)

let prop_scaling_rates_scales_cost =
  property "C_a is linear in the rate vector" (fun seed ->
      let problem, rates, rng = random_problem seed in
      let p = Placement.random ~rng problem in
      let doubled = Array.map (fun r -> 2.0 *. r) rates in
      let a = Cost.comm_cost problem ~rates p in
      let b = Cost.comm_cost problem ~rates:doubled p in
      Float.abs (b -. (2.0 *. a)) <= 1e-6 *. Float.max 1.0 b)

let prop_migration_cost_symmetric =
  property "C_b(p,m) = C_b(m,p) (metric symmetry)" (fun seed ->
      let problem, _, rng = random_problem seed in
      let a = Placement.random ~rng problem in
      let b = Placement.random ~rng problem in
      let mu = 1.0 +. Rng.float rng 100.0 in
      Float.abs
        (Cost.migration_cost problem ~mu ~src:a ~dst:b
        -. Cost.migration_cost problem ~mu ~src:b ~dst:a)
      <= 1e-6)

let prop_migration_cost_identity =
  property "C_b(p,p) = 0 and moved = 0" (fun seed ->
      let problem, _, rng = random_problem seed in
      let p = Placement.random ~rng problem in
      Cost.migration_cost problem ~mu:123.0 ~src:p ~dst:p = 0.0
      && Cost.moved ~src:p ~dst:p = 0)

let prop_migration_triangle =
  property "C_b obeys the triangle inequality" (fun seed ->
      let problem, _, rng = random_problem seed in
      let a = Placement.random ~rng problem in
      let b = Placement.random ~rng problem in
      let c = Placement.random ~rng problem in
      let d x y = Cost.migration_cost problem ~mu:1.0 ~src:x ~dst:y in
      d a c <= d a b +. d b c +. 1e-6)

(* --- placement algorithms ------------------------------------------------- *)

let prop_dp_upper_bounds_optimal =
  property ~count:40 "Optimal <= DP <= Steering-or-random" (fun seed ->
      let problem, rates, rng = random_problem seed in
      let dp = (Placement_dp.solve problem ~rates ()).cost in
      let opt = (Placement_opt.solve problem ~rates ()).cost in
      let random_cost =
        Cost.comm_cost problem ~rates (Placement.random ~rng problem)
      in
      opt <= dp +. 1e-6 && dp <= random_cost +. 1e-6)

let prop_placements_valid =
  property ~count:40 "every algorithm returns a valid placement" (fun seed ->
      let problem, rates, _ = random_problem seed in
      Placement.is_valid problem (Placement_dp.solve problem ~rates ()).placement
      && Placement.is_valid problem
           (Placement_opt.solve problem ~rates ()).placement
      && Placement.is_valid problem
           (Ppdc_baselines.Steering.place problem ~rates).placement
      && Placement.is_valid problem
           (Ppdc_baselines.Greedy_liu.place problem ~rates).placement)

let prop_optimal_is_permutation_invariant_lower_bound =
  property ~count:30 "optimal placement beats any sampled placement"
    (fun seed ->
      let problem, rates, rng = random_problem seed in
      let opt = (Placement_opt.solve problem ~rates ()).cost in
      let ok = ref true in
      for _ = 1 to 10 do
        let p = Placement.random ~rng problem in
        if Cost.comm_cost problem ~rates p < opt -. 1e-6 then ok := false
      done;
      !ok)

(* --- strolls ---------------------------------------------------------------- *)

let prop_stroll_dp_bounded =
  property ~count:40 "exact <= DP-stroll <= 2·exact (metric instances)"
    (fun seed ->
      let problem, _, rng = random_problem seed in
      let cm = Problem.cm problem in
      let g = Problem.graph problem in
      let hosts = Graph.hosts g in
      let src = Rng.pick rng hosts and dst = Rng.pick rng hosts in
      let n = 1 + Rng.int rng 3 in
      if Graph.num_switches g < n + 2 then true
      else begin
        let dp = Stroll_dp.solve ~cm ~src ~dst ~n () in
        let exact =
          Stroll_exact.solve ~cm ~src ~dst ~n
            ~incumbent:(dp.cost, dp.switches) ()
        in
        exact.cost <= dp.cost +. 1e-6
        && (not exact.proven_optimal || dp.cost <= (2.0 *. exact.cost) +. 1e-6)
      end)

let prop_stroll_visits_requested_count =
  property ~count:40 "stroll returns exactly n distinct switches" (fun seed ->
      let problem, _, rng = random_problem seed in
      let cm = Problem.cm problem in
      let g = Problem.graph problem in
      let hosts = Graph.hosts g in
      let src = Rng.pick rng hosts and dst = Rng.pick rng hosts in
      let n = 1 + Rng.int rng 3 in
      if Graph.num_switches g < n + 2 then true
      else begin
        let dp = Stroll_dp.solve ~cm ~src ~dst ~n () in
        Array.length dp.switches = n
        && List.length (List.sort_uniq compare (Array.to_list dp.switches)) = n
        && Array.for_all (fun s -> s <> src && s <> dst) dp.switches
      end)

let prop_theorem1_top1_equals_stroll =
  property ~count:30 "Theorem 1: TOP-1 optimum = n-stroll optimum" (fun seed ->
      let problem, _, rng = random_problem seed in
      let g = Problem.graph problem in
      let hosts = Graph.hosts g in
      let src = Rng.pick rng hosts and dst = Rng.pick rng hosts in
      let n = min (Problem.n problem) (Graph.num_switches g - 2) in
      if n < 1 then true
      else begin
        let rate = 1.0 +. Rng.float rng 100.0 in
        let flow =
          Ppdc_traffic.Flow.make ~id:0 ~src_host:src ~dst_host:dst
            ~base_rate:rate ~coast:East
        in
        let single =
          Problem.make ~cm:(Problem.cm problem) ~flows:[| flow |] ~n ()
        in
        let top = Placement_opt.solve single ~rates:[| rate |] () in
        let stroll =
          Stroll_exact.solve ~cm:(Problem.cm problem) ~src ~dst ~n ()
        in
        (not (top.proven_optimal && stroll.proven_optimal))
        || Float.abs (top.cost -. (rate *. stroll.cost))
           <= 1e-6 *. Float.max 1.0 top.cost
      end)

(* --- migration ---------------------------------------------------------------- *)

let prop_mpareto_sandwich =
  property ~count:40 "Optimal-TOM <= mPareto <= stay" (fun seed ->
      let problem, rates, rng = random_problem seed in
      let current = Placement.random ~rng problem in
      let rates' = Workload.redraw_rates ~rng (Problem.flows problem) in
      let mu = Rng.float rng 1000.0 in
      let mp = Mpareto.migrate problem ~rates:rates' ~mu ~current () in
      let stay = Cost.comm_cost problem ~rates:rates' current in
      let opt =
        Migration_opt.solve problem ~rates:rates' ~mu ~current
          ~incumbent:mp.migration ()
      in
      ignore rates;
      mp.total_cost <= stay +. 1e-6 && opt.cost <= mp.total_cost +. 1e-6)

let prop_mpareto_accounting =
  property ~count:40 "mPareto outcome accounting is consistent" (fun seed ->
      let problem, _, rng = random_problem seed in
      let current = Placement.random ~rng problem in
      let rates = Workload.redraw_rates ~rng (Problem.flows problem) in
      let mu = Rng.float rng 500.0 in
      let mp = Mpareto.migrate problem ~rates ~mu ~current () in
      let recomputed_b =
        Cost.migration_cost problem ~mu ~src:current ~dst:mp.migration
      in
      let recomputed_a = Cost.comm_cost problem ~rates mp.migration in
      Float.abs (mp.migration_cost -. recomputed_b) <= 1e-6
      && Float.abs (mp.comm_cost -. recomputed_a)
         <= 1e-6 *. Float.max 1.0 recomputed_a
      && Float.abs (mp.total_cost -. (mp.migration_cost +. mp.comm_cost))
         <= 1e-6)

let prop_frontier_pareto_shape =
  property ~count:40 "parallel frontiers: C_b rises monotonically" (fun seed ->
      let problem, _, rng = random_problem seed in
      let current = Placement.random ~rng problem in
      let rates = Workload.redraw_rates ~rng (Problem.flows problem) in
      let mp = Mpareto.migrate problem ~rates ~mu:100.0 ~current () in
      let rec rising = function
        | (a : Mpareto.point) :: (b : Mpareto.point) :: rest ->
            a.migration_cost <= b.migration_cost +. 1e-6
            && rising (b :: rest)
        | _ -> true
      in
      rising mp.points)

let prop_tom_mu_zero_equals_top =
  property ~count:30 "Theorem 4 over random instances" (fun seed ->
      let problem, rates, rng = random_problem seed in
      let current = Placement.random ~rng problem in
      let top = Placement_opt.solve problem ~rates () in
      let tom = Migration_opt.solve problem ~rates ~mu:0.0 ~current () in
      (not (top.proven_optimal && tom.proven_optimal))
      || Float.abs (top.cost -. tom.cost) <= 1e-6 *. Float.max 1.0 top.cost)

(* --- traces ------------------------------------------------------------------- *)

let prop_trace_roundtrip =
  property ~count:40 "trace CSV round-trips" (fun seed ->
      let problem, _, rng = random_problem seed in
      let flows = Problem.flows problem in
      let epochs = 2 + Rng.int rng 10 in
      let trace = Ppdc_traffic.Trace.churn ~rng ~epochs flows in
      let back = Ppdc_traffic.Trace.of_csv (Ppdc_traffic.Trace.to_csv trace) in
      back.Ppdc_traffic.Trace.flows = trace.Ppdc_traffic.Trace.flows
      && back.Ppdc_traffic.Trace.rates = trace.Ppdc_traffic.Trace.rates)

let prop_trace_diurnal_consistent =
  property ~count:40 "diurnal trace equals Diurnal.rates_at" (fun seed ->
      let problem, _, _ = random_problem seed in
      let flows = Problem.flows problem in
      let m = Ppdc_traffic.Diurnal.default in
      let trace = Ppdc_traffic.Trace.of_diurnal m ~flows in
      let ok = ref true in
      for hour = 1 to m.hours do
        if
          Ppdc_traffic.Trace.rates_at trace ~epoch:(hour - 1)
          <> Ppdc_traffic.Diurnal.rates_at m ~flows ~hour
        then ok := false
      done;
      !ok)

(* --- extensions ------------------------------------------------------------------ *)

let prop_capacity_monotone =
  property ~count:30 "capacity never raises the DP cost" (fun seed ->
      let problem, rates, _ = random_problem seed in
      let c1 = (Ppdc_extensions.Capacity.solve problem ~rates ~capacity:1).cost in
      let c2 = (Ppdc_extensions.Capacity.solve problem ~rates ~capacity:2).cost in
      (* Both are heuristic DP results of the reduction, but c=2 places
         ceil(n/2) blocks and stacking is free, so the reduction can only
         shrink the chain; compare against c=1 with tolerance for DP
         noise. *)
      c2 <= c1 +. 1e-6 *. Float.max 1.0 c1 || c2 <= c1 *. 1.05)

let prop_replication_never_hurts =
  property ~count:25 "a replica never raises any flow's route cost"
    (fun seed ->
      let problem, rates, rng = random_problem seed in
      let p = (Placement_dp.solve problem ~rates ()).placement in
      let base = Ppdc_extensions.Replication.of_placement p in
      (* Add one replica of a random VNF at a random free switch. *)
      let switches = Problem.switches problem in
      let free =
        Array.of_list
          (List.filter
             (fun s -> not (Array.exists (( = ) s) p))
             (Array.to_list switches))
      in
      if Array.length free = 0 then true
      else begin
        let j = Rng.int rng (Array.length p) in
        let s = Rng.pick rng free in
        let replicated =
          {
            Ppdc_extensions.Replication.replicas =
              Array.mapi
                (fun j' c -> if j' = j then Array.append c [| s |] else c)
                base.replicas;
          }
        in
        let ok = ref true in
        Array.iter
          (fun (f : Flow.t) ->
            let before =
              Ppdc_extensions.Replication.flow_route_cost problem base
                ~src:f.src_host ~dst:f.dst_host
            in
            let after =
              Ppdc_extensions.Replication.flow_route_cost problem replicated
                ~src:f.src_host ~dst:f.dst_host
            in
            if after > before +. 1e-6 then ok := false)
          (Problem.flows problem);
        !ok
      end)

(* --- differential oracles ------------------------------------------------------ *)

(* The paper's approximation guarantee, as a testable bound: on metric
   cost matrices (all-pairs shortest paths always are) the stroll DP is
   a 2-approximation, and the pair scan preserves the factor, so the
   whole-chain DP never lands below the optimum and never beyond twice
   it. *)
let prop_dp_paper_factor_two =
  property ~count:40 "paper bound: Optimal <= DP <= 2·Optimal" (fun seed ->
      let problem, rates, _ = random_problem seed in
      let dp = (Placement_dp.solve problem ~rates ()).cost in
      let opt = Placement_opt.solve problem ~rates () in
      opt.cost <= dp +. (1e-6 *. Float.max 1.0 dp)
      && ((not opt.proven_optimal)
         || dp <= (2.0 *. opt.cost) +. (1e-6 *. Float.max 1.0 dp)))

let prop_mpareto_bounded_below_by_tom =
  property ~count:40 "mPareto total cost is never below Optimal-TOM's"
    (fun seed ->
      let problem, _, rng = random_problem seed in
      let current = Placement.random ~rng problem in
      let rates = Workload.redraw_rates ~rng (Problem.flows problem) in
      let mu = Rng.float rng 500.0 in
      let mp = Mpareto.migrate problem ~rates ~mu ~current () in
      let tom =
        Migration_opt.solve problem ~rates ~mu ~current
          ~incumbent:mp.migration ()
      in
      tom.cost <= mp.total_cost +. 1e-6)

(* Engine-vs-library differential: drive the full RPC conversation
   (load → place optimal → place dp → rates_update → migrate) through
   [Engine.handle_line] and replay the engine's documented construction
   through the library API. Agreement must be exact — same floats, same
   switches — because the engine is a thin shell over these very
   functions; any drift means the RPC layer computes something else
   than the paper code. *)
module Engine = Ppdc_server.Engine
module Json = Ppdc_prelude.Json

let rpc engine line =
  let j = Json.parse (Engine.handle_line engine line) in
  match (Json.member "ok" j, Json.member "result" j) with
  | Some (Json.Bool true), Some r -> r
  | _ -> QCheck.Test.fail_reportf "rpc request failed: %s" (Json.to_string j)

let jnum field j =
  match Json.member field j with
  | Some (Json.Num x) -> x
  | _ ->
      QCheck.Test.fail_reportf "missing numeric %S in %s" field
        (Json.to_string j)

let jplacement j =
  match Json.member "placement" j with
  | Some (Json.List xs) ->
      Array.of_list
        (List.map
           (function
             | Json.Num x -> int_of_float x
             | _ -> QCheck.Test.fail_reportf "non-numeric placement entry")
           xs)
  | _ ->
      QCheck.Test.fail_reportf "missing placement in %s" (Json.to_string j)

let same_float a b = Float.compare a b = 0

let prop_engine_matches_library =
  property ~count:12 "RPC engine agrees exactly with the library API"
    (fun seed ->
      let k = 4 and l = 4 + (seed mod 5) and n = 2 + (seed mod 3) in
      let mu = 100.0 in
      (* Engine side: one session, the documented request sequence. *)
      let engine = Engine.create () in
      let req fmt = Printf.ksprintf (rpc engine) fmt in
      ignore
        (req
           {|{"id":1,"method":"load_topology","params":{"session":"d","k":%d,"l":%d,"n":%d,"seed":%d}}|}
           k l n seed);
      let e_opt =
        req {|{"id":2,"method":"place","params":{"session":"d","algo":"optimal"}}|}
      in
      let e_dp =
        req {|{"id":3,"method":"place","params":{"session":"d","algo":"dp"}}|}
      in
      ignore
        (req
           {|{"id":4,"method":"rates_update","params":{"session":"d","seed":%d}}|}
           (seed + 1));
      let e_mig =
        req
          {|{"id":5,"method":"migrate","params":{"session":"d","algo":"mpareto","mu":%g}}|}
          mu
      in
      (* Library side: the same instance built the way the engine
         documents building it. *)
      let rng = Rng.create seed in
      let ft = Fat_tree.build k in
      let flows = Workload.generate_on_fat_tree ~rng ~l ft in
      let problem =
        Problem.make ~cm:(Cost_matrix.compute ft.Fat_tree.graph) ~flows ~n ()
      in
      let rates = Flow.base_rates flows in
      let opt = Placement_opt.solve problem ~rates () in
      let dp = Placement_dp.solve problem ~rates () in
      let rates' = Workload.redraw_rates ~rng:(Rng.create (seed + 1)) flows in
      (* The engine applied place dp last, so its session placement —
         the migration's starting point — is dp's. *)
      let mp =
        Mpareto.migrate problem ~rates:rates' ~mu ~current:dp.placement ()
      in
      jplacement e_opt = opt.placement
      && same_float (jnum "cost" e_opt) opt.cost
      && jplacement e_dp = dp.placement
      && same_float (jnum "cost" e_dp) dp.cost
      && jplacement e_mig = mp.migration
      && same_float (jnum "migration_cost" e_mig) mp.migration_cost
      && same_float (jnum "comm_cost" e_mig) mp.comm_cost
      && same_float (jnum "total_cost" e_mig) mp.total_cost
      && jnum "moved" e_mig
         = float_of_int (Cost.moved ~src:dp.placement ~dst:mp.migration))

let qsuite name tests = (name, List.map (fun t -> QCheck_alcotest.to_alcotest t) tests)

let () =
  Alcotest.run "ppdc_properties"
    [
      qsuite "cost-model"
        [
          prop_comm_cost_nonnegative;
          prop_attach_agrees_with_direct;
          prop_scaling_rates_scales_cost;
          prop_migration_cost_symmetric;
          prop_migration_cost_identity;
          prop_migration_triangle;
        ];
      qsuite "placement"
        [
          prop_dp_upper_bounds_optimal;
          prop_placements_valid;
          prop_optimal_is_permutation_invariant_lower_bound;
          prop_theorem1_top1_equals_stroll;
        ];
      qsuite "stroll"
        [ prop_stroll_dp_bounded; prop_stroll_visits_requested_count ];
      qsuite "migration"
        [
          prop_mpareto_sandwich;
          prop_mpareto_accounting;
          prop_frontier_pareto_shape;
          prop_tom_mu_zero_equals_top;
        ];
      qsuite "traces" [ prop_trace_roundtrip; prop_trace_diurnal_consistent ];
      qsuite "extensions"
        [ prop_capacity_monotone; prop_replication_never_hurts ];
      qsuite "differential"
        [
          prop_dp_paper_factor_two;
          prop_mpareto_bounded_below_by_tom;
          prop_engine_matches_library;
        ];
    ]
