module Fat_tree = Ppdc_topology.Fat_tree
module Cost_matrix = Ppdc_topology.Cost_matrix
module Workload = Ppdc_traffic.Workload
module Diurnal = Ppdc_traffic.Diurnal
module Rng = Ppdc_prelude.Rng
module Scenario = Ppdc_sim.Scenario
module Engine = Ppdc_sim.Engine
open Ppdc_core

let problem ~l ~n ~seed =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let rng = Rng.create seed in
  let flows = Workload.generate_on_fat_tree ~rng ~l ft in
  Problem.make ~cm ~flows ~n ()

let scenario ?initial ?(mu = 1e3) ~seed () =
  Scenario.make ~mu ?initial (problem ~l:20 ~n:4 ~seed)

let test_day_structure () =
  let run = Engine.run_day (scenario ~seed:1 ()) ~policy:Engine.Mpareto in
  Alcotest.(check int) "one record per hour" Diurnal.default.hours
    (Array.length run.hours);
  Array.iteri
    (fun i (h : Engine.hour_record) ->
      Alcotest.(check int) "hours numbered from 1" (i + 1) h.hour;
      Alcotest.(check (float 1e-6)) "total = comm + migration"
        (h.comm_cost +. h.migration_cost)
        h.total_cost;
      Alcotest.(check bool) "non-negative costs" true
        (h.comm_cost >= 0.0 && h.migration_cost >= 0.0))
    run.hours;
  let sum =
    Array.fold_left
      (fun acc (h : Engine.hour_record) -> acc +. h.total_cost)
      0.0 run.hours
  in
  Alcotest.(check (float 1e-6)) "day total is the sum" sum run.total_cost

let test_day_deterministic () =
  let go () = Engine.run_day (scenario ~seed:3 ()) ~policy:Engine.Mpareto in
  let a = go () and b = go () in
  Alcotest.(check (float 0.0)) "same total" a.total_cost b.total_cost;
  Alcotest.(check int) "same migrations" a.total_migrations b.total_migrations

let test_no_migration_policy_never_migrates () =
  let run = Engine.run_day (scenario ~seed:2 ()) ~policy:Engine.No_migration in
  Alcotest.(check int) "zero moves" 0 run.total_migrations;
  Array.iter
    (fun (h : Engine.hour_record) ->
      Alcotest.(check (float 0.0)) "zero migration cost" 0.0 h.migration_cost)
    run.hours

let test_mpareto_beats_no_migration () =
  for seed = 1 to 4 do
    let mp = Engine.run_day (scenario ~seed ()) ~policy:Engine.Mpareto in
    let stay =
      Engine.run_day (scenario ~seed ()) ~policy:Engine.No_migration
    in
    Alcotest.(check bool)
      (Printf.sprintf "mPareto <= NoMigration (seed %d)" seed)
      true
      (mp.total_cost <= stay.total_cost +. 1e-6)
  done

let test_optimal_at_least_matches_mpareto () =
  for seed = 1 to 3 do
    let mp = Engine.run_day (scenario ~seed ()) ~policy:Engine.Mpareto in
    let opt = Engine.run_day (scenario ~seed ()) ~policy:Engine.Optimal in
    (* Both policies act greedily per hour, so the day totals can diverge
       slightly in either direction; the per-hour Optimal step is never
       worse than mPareto's from the same state, which in practice keeps
       day totals within a whisker. *)
    Alcotest.(check bool)
      (Printf.sprintf "optimal within 2%% of mPareto (seed %d)" seed)
      true
      (opt.total_cost <= (1.02 *. mp.total_cost) +. 1e-6)
  done

let test_hour1_initial_needs_no_correction () =
  let run =
    Engine.run_day (scenario ~initial:Scenario.Hour1 ~seed:5 ())
      ~policy:Engine.Mpareto
  in
  (* The placement is already optimal(-ish) for hour 1, so the hour-1
     mPareto target equals the current placement: no migration. *)
  Alcotest.(check int) "no hour-1 migration" 0 run.hours.(0).migrations

let test_uninformed_initial_is_seeded () =
  let placement seed =
    (Engine.run_day
       (scenario ~initial:(Scenario.Uninformed seed) ~seed:1 ())
       ~policy:Engine.No_migration)
      .initial_placement
  in
  Alcotest.(check bool) "same seed, same deployment" true
    (placement 7 = placement 7);
  Alcotest.(check bool) "different seeds differ" true (placement 7 <> placement 8)

let test_vm_policies_keep_vnfs_fixed () =
  List.iter
    (fun policy ->
      let run = Engine.run_day (scenario ~seed:6 ()) ~policy in
      (* VM-migration baselines never move VNFs: the recorded migrations
         are VM moves and the initial placement persists, which we can
         observe via zero VNF-migration charge when mu_vm is huge. *)
      ignore run)
    Engine.[ Plan; Mcf ];
  let frozen_mu =
    Scenario.make ~mu:1e3 ~mu_vm:1e12 (problem ~l:20 ~n:4 ~seed:6)
  in
  List.iter
    (fun policy ->
      let run = Engine.run_day frozen_mu ~policy in
      Alcotest.(check int)
        (Engine.policy_name policy ^ " frozen by huge mu_vm")
        0 run.total_migrations)
    Engine.[ Plan; Mcf ]

let test_lookahead_policy_runs () =
  for seed = 1 to 3 do
    let fc =
      Engine.run_day (scenario ~seed ()) ~policy:Engine.Mpareto_lookahead
    in
    let stay =
      Engine.run_day (scenario ~seed ()) ~policy:Engine.No_migration
    in
    Alcotest.(check bool)
      (Printf.sprintf "forecast day is coherent (seed %d)" seed)
      true
      (fc.total_cost > 0.0 && fc.total_cost <= stay.total_cost *. 1.05)
  done

let test_run_trace_equals_run_day () =
  (* The horizon contract (engine.mli): both paths substitute the zero
     vector for the forecast one epoch past the end, so the replay is
     bit-identical hour for hour — lookahead included. *)
  let sc = scenario ~seed:4 () in
  let flows = Problem.flows (problem ~l:20 ~n:4 ~seed:4) in
  let trace = Ppdc_traffic.Trace.of_diurnal Ppdc_traffic.Diurnal.default ~flows in
  List.iter
    (fun policy ->
      let day = Engine.run_day sc ~policy in
      let replay = Engine.run_trace sc ~policy ~trace in
      Alcotest.(check (float 1e-6))
        (Engine.policy_name policy ^ ": replay = diurnal day")
        day.Engine.total_cost replay.Engine.total_cost;
      Array.iteri
        (fun i (h : Engine.hour_record) ->
          let r = replay.Engine.hours.(i) in
          Alcotest.(check (float 0.0))
            (Printf.sprintf "%s: hour %d comm" (Engine.policy_name policy)
               h.hour)
            h.comm_cost r.comm_cost;
          Alcotest.(check (float 0.0))
            (Printf.sprintf "%s: hour %d migration" (Engine.policy_name policy)
               h.hour)
            h.migration_cost r.migration_cost;
          Alcotest.(check int)
            (Printf.sprintf "%s: hour %d moves" (Engine.policy_name policy)
               h.hour)
            h.migrations r.migrations)
        day.Engine.hours)
    Engine.[ Mpareto; Mpareto_lookahead; No_migration; Plan ]

let test_lookahead_zero_forecast_past_horizon () =
  (* A one-epoch trace: the only "next hour" lies past the horizon, so
     the lookahead decision must average this epoch's rates with the
     zero vector — reproduced here by hand from the exposed initial
     placement. *)
  let sc = scenario ~seed:7 () in
  let flows = Problem.flows sc.Scenario.problem in
  let rates = Ppdc_traffic.Flow.base_rates flows in
  let trace = Ppdc_traffic.Trace.make ~flows ~rates:[| rates |] in
  let run = Engine.run_trace sc ~policy:Engine.Mpareto_lookahead ~trace in
  Alcotest.(check int) "one epoch" 1 (Array.length run.hours);
  let decision = Array.map (fun r -> 0.5 *. r) rates in
  let out =
    Mpareto.migrate sc.Scenario.problem ~rates:decision ~mu:sc.Scenario.mu
      ~current:run.initial_placement ?pair_limit:sc.Scenario.pair_limit ()
  in
  let comm = Cost.comm_cost sc.Scenario.problem ~rates out.migration in
  Alcotest.(check (float 0.0)) "comm charged against reality" comm
    run.hours.(0).comm_cost;
  Alcotest.(check (float 0.0)) "migration cost of the half-rate decision"
    out.migration_cost run.hours.(0).migration_cost

let test_metrics_events_per_epoch () =
  let module Obs = Ppdc_prelude.Obs in
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.set_enabled false)
    (fun () ->
      let run = Engine.run_day (scenario ~seed:2 ()) ~policy:Engine.Mpareto in
      let snap = Obs.snapshot () in
      let epochs =
        List.filter (fun (e : Obs.event) -> e.Obs.name = "sim.epoch")
          snap.Obs.events
      in
      Alcotest.(check int) "one sim.epoch event per hour"
        (Array.length run.hours) (List.length epochs);
      Alcotest.(check bool) "policy step span recorded" true
        (List.mem_assoc "sim.step.mPareto" snap.Obs.spans);
      Alcotest.(check bool) "solver span recorded" true
        (List.mem_assoc "placement_dp.solve" snap.Obs.spans))

let test_run_trace_rejects_mismatch () =
  let sc = scenario ~seed:5 () in
  let other_flows = Problem.flows (problem ~l:7 ~n:3 ~seed:6) in
  let trace =
    Ppdc_traffic.Trace.of_diurnal Ppdc_traffic.Diurnal.default ~flows:other_flows
  in
  Alcotest.(check bool) "flow-count mismatch raises" true
    (try
       ignore (Engine.run_trace sc ~policy:Engine.Mpareto ~trace);
       false
     with Invalid_argument _ -> true)

let test_policy_names () =
  Alcotest.(check string) "mPareto" "mPareto" (Engine.policy_name Engine.Mpareto);
  Alcotest.(check string) "NoMigration" "NoMigration"
    (Engine.policy_name Engine.No_migration)

let () =
  Alcotest.run "ppdc_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "day structure and accounting" `Quick
            test_day_structure;
          Alcotest.test_case "deterministic runs" `Quick test_day_deterministic;
          Alcotest.test_case "NoMigration never migrates" `Quick
            test_no_migration_policy_never_migrates;
          Alcotest.test_case "mPareto beats NoMigration" `Quick
            test_mpareto_beats_no_migration;
          Alcotest.test_case "Optimal tracks mPareto" `Quick
            test_optimal_at_least_matches_mpareto;
          Alcotest.test_case "hour-1-aware deployment needs no correction"
            `Quick test_hour1_initial_needs_no_correction;
          Alcotest.test_case "uninformed deployment is seeded" `Quick
            test_uninformed_initial_is_seeded;
          Alcotest.test_case "VM policies freeze under huge mu_vm" `Quick
            test_vm_policies_keep_vnfs_fixed;
          Alcotest.test_case "forecast policy coherent" `Quick
            test_lookahead_policy_runs;
          Alcotest.test_case "trace replay equals diurnal day" `Quick
            test_run_trace_equals_run_day;
          Alcotest.test_case "zero forecast past the horizon" `Quick
            test_lookahead_zero_forecast_past_horizon;
          Alcotest.test_case "metrics events per epoch" `Quick
            test_metrics_events_per_epoch;
          Alcotest.test_case "trace replay validates flows" `Quick
            test_run_trace_rejects_mismatch;
          Alcotest.test_case "policy names" `Quick test_policy_names;
        ] );
    ]
