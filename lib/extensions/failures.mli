(** Link-failure injection.

    Data-center links fail; the PPDC reroutes around the failure (costs
    change) and the now-misplaced chain should migrate. This module
    removes a seeded random subset of switch-switch links while
    preserving connectivity (host uplinks are never failed — a host with
    a dead uplink would leave the PPDC, which is VM-failover territory,
    not VNF placement), so the TOP/TOM algorithms can be exercised on a
    degraded fabric. *)

val fail_links :
  rng:Ppdc_prelude.Rng.t ->
  fraction:float ->
  Ppdc_topology.Graph.t ->
  Ppdc_topology.Graph.t * (int * int) list
(** [fail_links ~rng ~fraction g] removes up to
    [⌊fraction · (#switch-switch links)⌋] randomly chosen switch-switch
    links, skipping any removal that would disconnect the graph.
    Returns the degraded graph and the failed links in the order they
    failed (possibly fewer than requested if connectivity kept blocking
    candidates). When the budget is zero — [fraction = 0.], a fraction
    too small to buy one whole link, or a fabric with no switch-switch
    links — the input graph is returned unchanged (same value, same
    digest) with an empty failure list. Raises [Invalid_argument] if
    [fraction] is outside [0, 1] or not finite. *)

type impact = {
  failed : (int * int) list;
  cost_before : float;  (** [C_a] of the placement on the healthy fabric *)
  cost_after : float;  (** [C_a] of the same placement after rerouting *)
  cost_migrated : float;
      (** [C_t] after mPareto reacts on the degraded fabric *)
  moved : int;
}

val impact :
  rng:Ppdc_prelude.Rng.t ->
  fraction:float ->
  mu:float ->
  Ppdc_core.Problem.t ->
  rates:float array ->
  placement:Ppdc_core.Placement.t ->
  impact
(** One failure episode: degrade the fabric, derive the degraded cost
    matrix incrementally ({!Ppdc_topology.Cost_matrix.repair_to} — only
    rows whose shortest-path trees used a failed link are re-run;
    bit-identical to a cold recompute), re-evaluate the placement, and
    let mPareto respond. *)
