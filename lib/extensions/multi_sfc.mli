(** Future-work extension: different VM flows request different SFCs.

    The paper assumes a single SFC shared by all flows and lists
    per-flow chains as future work. Here a PPDC hosts several chains at
    once; each flow is bound to one chain, every chain's VNFs occupy
    their own switches (one VNF per switch, chains may not share a
    switch), and the total cost is the sum of Eq. 1 over the chains'
    flow populations.

    Placement is sequential by traffic weight: chains are placed in
    descending order of their total traffic rate, each with Algo. 3
    restricted to the switches still free — the heaviest chain gets the
    pick of the fabric. Migration runs mPareto per chain under the same
    exclusion discipline. *)

type spec = {
  chains : Ppdc_core.Chain.t array;
  assignment : int array;
      (** [assignment.(i)] is the chain index of flow [i] *)
}

type t

val make :
  cm:Ppdc_topology.Cost_matrix.t ->
  flows:Ppdc_traffic.Flow.t array ->
  spec:spec ->
  t
(** Raises [Invalid_argument] if an assignment index is out of range, if
    the chains jointly need more switches than exist, or [flows] is
    empty. *)

val num_chains : t -> int

val flows_of_chain : t -> int -> Ppdc_traffic.Flow.t array
(** The flows bound to a chain (their ids keep indexing the global rate
    vector). *)

type placement = Ppdc_core.Placement.t array
(** One placement per chain, indexed like [spec.chains]. *)

val validate : t -> placement -> unit
(** Every chain placed on distinct switches and no switch shared across
    chains. *)

val total_cost : t -> rates:float array -> placement -> float
(** Σ over chains of Eq. 1 restricted to that chain's flows. *)

type outcome = { placement : placement; cost : float }

val place : t -> rates:float array -> outcome
(** Traffic-weighted sequential DP placement. *)

val migrate :
  t ->
  rates:float array ->
  mu:float ->
  current:placement ->
  outcome * float * int
(** Per-chain mPareto under cross-chain exclusion; returns the new
    placements, the total cost including migration ([C_b + C_a] summed
    over chains), the migration cost alone, and the number of VNF moves
    — as [(outcome, migration_cost, moves)] where [outcome.cost] is the
    total [C_t]. *)
