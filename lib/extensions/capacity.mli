(** Future-work extension: multiple VNFs per switch.

    The paper's model installs at most one VNF on each switch's attached
    server; its conclusion asks about "a more general scenario wherein
    each switch can install multiple VNFs". This module lifts the
    one-per-switch restriction to a per-switch capacity [c >= 1].

    {b Reduction.} With capacity [c], a placement is a sequence of [n]
    switches where no switch appears more than [c] times. Consecutive
    VNFs on the same switch add zero chain-internal cost, and by the
    triangle inequality collapsing two visits of a switch into one block
    never increases the cost of the chain path — so some optimal
    placement consists of [q = ceil(n / c)] blocks of co-located VNFs on
    [q] distinct switches. Capacity-TOP on [n] VNFs therefore reduces to
    plain TOP on [q] "super-VNFs": solve that with Algo. 3 (or Algo. 4)
    and expand each super-VNF into a block of up to [c] chain positions.
    [capacity_tests] verifies the reduction against a capacity-aware
    exhaustive search on small instances. *)

val validate :
  Ppdc_core.Problem.t -> capacity:int -> Ppdc_core.Placement.t -> unit
(** Like {!Ppdc_core.Placement.validate} but allowing each switch to
    appear up to [capacity] times. *)

val is_valid :
  Ppdc_core.Problem.t -> capacity:int -> Ppdc_core.Placement.t -> bool

type outcome = {
  placement : Ppdc_core.Placement.t;  (** length [n]; switches may repeat *)
  cost : float;  (** [C_a] under Eq. 1 (repeated switches contribute zero
                     internal cost between their co-located VNFs) *)
  blocks : int;  (** number of distinct switches used, [ceil(n/c)] *)
}

val solve :
  Ppdc_core.Problem.t -> rates:float array -> capacity:int -> outcome
(** Capacity-aware DP placement via the block reduction. [capacity >= n]
    degenerates to "stack the whole chain on the single best switch".
    Raises [Invalid_argument] if [capacity < 1]. *)

val solve_optimal :
  Ppdc_core.Problem.t ->
  rates:float array ->
  capacity:int ->
  ?budget:int ->
  unit ->
  outcome * bool
(** Exhaustive capacity-aware branch-and-bound (benchmark; the boolean
    is [proven_optimal]). Searches sequences directly without the block
    reduction, so it certifies the reduction in tests. *)
