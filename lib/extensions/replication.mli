(** Future-work extension: VNF replication as an alternative to
    migration.

    The paper's conclusion asks "to which extent VNF replication could be
    beneficial in terms of dynamic traffic mitigation when compared to
    VNF migration". Here each VNF [f_j] may run [r_j >= 1] replicas on
    distinct switches; a flow is free to use whichever replica of each
    position is best for it, so its policy-preserving route cost is

    {v
      min over (a_1..a_n)  c(src, p_1^{a_1})
                         + Σ_j c(p_j^{a_j}, p_{j+1}^{a_{j+1}})
                         + c(p_n^{a_n}, dst)
    v}

    which is a per-flow Viterbi pass over the replica layers,
    O(n · r²). Replicas are placed once (no migration): starting from
    the Algo. 3 single-copy placement, a greedy loop spends a replica
    [budget] one copy at a time on the (position, switch) pair with the
    largest cost reduction. The [ext_replication] experiment compares a
    replicated-but-static chain against mPareto migration over a
    diurnal day. *)

type t = { replicas : int array array }
(** [replicas.(j)] are the switches hosting copies of [f_{j+1}]; every
    array is non-empty and duplicate-free, and no switch hosts two
    copies of different VNFs. *)

val validate : Ppdc_core.Problem.t -> t -> unit

val of_placement : Ppdc_core.Placement.t -> t
(** Single-copy deployment (degenerates to the paper's model). *)

val flow_route_cost :
  Ppdc_core.Problem.t -> t -> src:int -> dst:int -> float
(** Cheapest replica-aware route of one flow (the Viterbi pass). *)

val comm_cost : Ppdc_core.Problem.t -> rates:float array -> t -> float
(** Total replica-aware communication cost: Σ_i λ_i · route_i. With
    single copies this equals Eq. 1. *)

val total_replicas : t -> int

type outcome = {
  deployment : t;
  cost : float;  (** replica-aware [comm_cost] under the given rates *)
  added : int;  (** replicas placed beyond the base chain *)
}

val place :
  Ppdc_core.Problem.t -> rates:float array -> budget:int -> outcome
(** Greedy replication: Algo. 3 base placement plus up to [budget] extra
    replicas, each chosen to maximize the marginal cost reduction; stops
    early when no replica helps. Raises [Invalid_argument] if
    [budget < 0]. *)
