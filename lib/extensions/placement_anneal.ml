open Ppdc_core
module Rng = Ppdc_prelude.Rng

type config = {
  iterations : int;
  initial_temperature : float;
  cooling : float;
}

let default_config =
  { iterations = 20_000; initial_temperature = 0.1; cooling = 0.9995 }

type outcome = {
  placement : Placement.t;
  cost : float;
  accepted : int;
}

let solve ?(config = default_config) ~rng problem ~rates =
  let att = Cost.attach problem ~rates in
  let switches = Problem.switches problem in
  let n = Problem.n problem in
  let evaluate p = Cost.comm_cost_with_attach problem att p in
  let current = Placement.random ~rng problem in
  let current_cost = ref (evaluate current) in
  let best = ref (Array.copy current) in
  let best_cost = ref !current_cost in
  let in_use = Hashtbl.create n in
  Array.iter (fun s -> Hashtbl.replace in_use s ()) current;
  let temperature = ref (config.initial_temperature *. !current_cost) in
  let accepted = ref 0 in
  for _ = 1 to config.iterations do
    (* Proposal: relocate one VNF to a free switch, or swap two chain
       positions. *)
    let j = Rng.int rng n in
    let proposal =
      if Rng.bool rng && n > 1 then begin
        let j' = Rng.int rng n in
        if j = j' then None
        else begin
          let p = Array.copy current in
          let tmp = p.(j) in
          p.(j) <- p.(j');
          p.(j') <- tmp;
          Some (p, None)
        end
      end
      else begin
        let s = Rng.pick rng switches in
        if Hashtbl.mem in_use s then None
        else begin
          let p = Array.copy current in
          let old = p.(j) in
          p.(j) <- s;
          Some (p, Some (old, s))
        end
      end
    in
    (match proposal with
    | None -> ()
    | Some (p, relocation) ->
        let cost = evaluate p in
        let delta = cost -. !current_cost in
        let accept =
          delta <= 0.0
          || (!temperature > 0.0
             && Rng.float rng 1.0 < Float.exp (-.delta /. !temperature))
        in
        if accept then begin
          incr accepted;
          Array.blit p 0 current 0 n;
          current_cost := cost;
          (match relocation with
          | Some (old, fresh) ->
              Hashtbl.remove in_use old;
              Hashtbl.replace in_use fresh ()
          | None -> ());
          if cost < !best_cost then begin
            best_cost := cost;
            best := Array.copy p
          end
        end);
    temperature := !temperature *. config.cooling
  done;
  { placement = !best; cost = !best_cost; accepted = !accepted }
