open Ppdc_core
module Flow = Ppdc_traffic.Flow

type t = { replicas : int array array }

let validate problem t =
  let n = Problem.n problem in
  if Array.length t.replicas <> n then
    invalid_arg "Replication.validate: one replica set per VNF expected";
  let owner = Hashtbl.create 16 in
  Array.iteri
    (fun j copies ->
      if Array.length copies = 0 then
        invalid_arg (Printf.sprintf "Replication.validate: VNF %d has no copy" j);
      Array.iter
        (fun s ->
          if not (Problem.is_candidate problem s) then
            invalid_arg
              (Printf.sprintf "Replication.validate: %d is not a candidate" s);
          match Hashtbl.find_opt owner s with
          | Some j' when j' <> j ->
              invalid_arg
                (Printf.sprintf
                   "Replication.validate: switch %d hosts VNFs %d and %d" s j' j)
          | Some _ ->
              invalid_arg
                (Printf.sprintf
                   "Replication.validate: duplicate copy of VNF %d at %d" j s)
          | None -> Hashtbl.add owner s j)
        copies)
    t.replicas

let of_placement p = { replicas = Array.map (fun s -> [| s |]) p }

let flow_route_cost problem t ~src ~dst =
  let n = Array.length t.replicas in
  let d = Problem.cost problem in
  (* Viterbi over replica layers. *)
  let layer = ref (Array.map (fun s -> d src s) t.replicas.(0)) in
  for j = 1 to n - 1 do
    let previous = !layer and prev_copies = t.replicas.(j - 1) in
    layer :=
      Array.map
        (fun s ->
          let best = ref infinity in
          Array.iteri
            (fun a p ->
              let candidate = previous.(a) +. d p s in
              if candidate < !best then best := candidate)
            prev_copies;
          !best)
        t.replicas.(j)
  done;
  let best = ref infinity in
  Array.iteri
    (fun a s ->
      let candidate = !layer.(a) +. d s dst in
      if candidate < !best then best := candidate)
    t.replicas.(n - 1);
  !best

let comm_cost problem ~rates t =
  let acc = ref 0.0 in
  Array.iter
    (fun (f : Flow.t) ->
      let rate = rates.(f.id) in
      if rate > 0.0 then
        acc :=
          !acc +. (rate *. flow_route_cost problem t ~src:f.src_host ~dst:f.dst_host))
    (Problem.flows problem);
  !acc

let total_replicas t =
  Array.fold_left (fun acc copies -> acc + Array.length copies) 0 t.replicas

type outcome = {
  deployment : t;
  cost : float;
  added : int;
}

let place problem ~rates ~budget =
  if budget < 0 then invalid_arg "Replication.place: negative budget";
  let base = (Placement_dp.solve problem ~rates ()).placement in
  let deployment = ref (of_placement base) in
  let cost = ref (comm_cost problem ~rates !deployment) in
  let used = Hashtbl.create 16 in
  Array.iter (fun s -> Hashtbl.add used s ()) base;
  let switches = Problem.switches problem in
  let added = ref 0 in
  let improved = ref true in
  while !added < budget && !improved do
    improved := false;
    let best_gain = ref 0.0 in
    let best_move = ref None in
    Array.iteri
      (fun j copies ->
        Array.iter
          (fun s ->
            if not (Hashtbl.mem used s) then begin
              let candidate =
                {
                  replicas =
                    Array.mapi
                      (fun j' c ->
                        if j' = j then Array.append c [| s |] else c)
                      !deployment.replicas;
                }
              in
              let candidate_cost = comm_cost problem ~rates candidate in
              let gain = !cost -. candidate_cost in
              if gain > !best_gain +. 1e-9 then begin
                best_gain := gain;
                best_move := Some (candidate, candidate_cost, s)
              end
            end)
          switches;
        ignore copies)
      !deployment.replicas;
    match !best_move with
    | Some (candidate, candidate_cost, s) ->
        deployment := candidate;
        cost := candidate_cost;
        Hashtbl.add used s ();
        incr added;
        improved := true
    | None -> ()
  done;
  { deployment = !deployment; cost = !cost; added = !added }
