open Ppdc_core
module Flow = Ppdc_traffic.Flow
module Graph = Ppdc_topology.Graph

type spec = {
  chains : Chain.t array;
  assignment : int array;
}

type t = {
  cm : Ppdc_topology.Cost_matrix.t;
  flows : Flow.t array;
  spec : spec;
  per_chain : Flow.t array array;  (* re-indexed flows per chain *)
  originals : int array array;  (* per_chain.(c).(j).id -> global flow id *)
}

let make ~cm ~flows ~spec =
  if Array.length spec.chains = 0 then invalid_arg "Multi_sfc.make: no chains";
  if Array.length spec.assignment <> Array.length flows then
    invalid_arg "Multi_sfc.make: assignment length mismatch";
  Array.iter
    (fun c ->
      if c < 0 || c >= Array.length spec.chains then
        invalid_arg "Multi_sfc.make: chain index out of range")
    spec.assignment;
  let needed =
    Array.fold_left (fun acc c -> acc + Chain.length c) 0 spec.chains
  in
  let available = Graph.num_switches (Ppdc_topology.Cost_matrix.graph cm) in
  if needed > available then
    invalid_arg "Multi_sfc.make: chains need more switches than exist";
  let buckets = Array.make (Array.length spec.chains) [] in
  Array.iteri
    (fun i (f : Flow.t) ->
      let c = spec.assignment.(i) in
      buckets.(c) <- f :: buckets.(c))
    flows;
  let per_chain_and_originals =
    Array.map
      (fun bucket ->
        let originals = List.rev_map (fun (f : Flow.t) -> f.id) bucket in
        let reindexed =
          List.rev bucket
          |> List.mapi (fun j (f : Flow.t) -> { f with id = j })
        in
        (Array.of_list reindexed, Array.of_list originals))
      buckets
  in
  Array.iteri
    (fun c (fs, _) ->
      if Array.length fs = 0 then
        invalid_arg (Printf.sprintf "Multi_sfc.make: chain %d has no flows" c))
    per_chain_and_originals;
  {
    cm;
    flows = Array.copy flows;
    spec;
    per_chain = Array.map fst per_chain_and_originals;
    originals = Array.map snd per_chain_and_originals;
  }

let num_chains t = Array.length t.spec.chains

let flows_of_chain t c = Array.map (fun id -> t.flows.(id)) t.originals.(c)

type placement = Placement.t array

(* Rate vector of chain [c]'s re-indexed flows, projected from the global
   rates. *)
let project_rates t c rates =
  Array.map (fun id -> rates.(id)) t.originals.(c)

let sub_problem t c ~candidates =
  Problem.make ~switch_candidates:candidates ~cm:t.cm ~flows:t.per_chain.(c)
    ~n:(Chain.length t.spec.chains.(c))
    ()

let all_switches t =
  Graph.switches (Ppdc_topology.Cost_matrix.graph t.cm)

let candidates_excluding t ~taken =
  Array.of_list
    (List.filter
       (fun s -> not (Hashtbl.mem taken s))
       (Array.to_list (all_switches t)))

let validate t placement =
  if Array.length placement <> num_chains t then
    invalid_arg "Multi_sfc.validate: one placement per chain expected";
  let taken = Hashtbl.create 16 in
  Array.iteri
    (fun c p ->
      if Array.length p <> Chain.length t.spec.chains.(c) then
        invalid_arg (Printf.sprintf "Multi_sfc.validate: chain %d length" c);
      Array.iter
        (fun s ->
          if Hashtbl.mem taken s then
            invalid_arg
              (Printf.sprintf "Multi_sfc.validate: switch %d used twice" s);
          Hashtbl.add taken s ())
        p;
      (* Per-chain structural validity on the unrestricted instance. *)
      let problem = sub_problem t c ~candidates:(all_switches t) in
      Placement.validate problem p)
    placement

let total_cost t ~rates placement =
  let acc = ref 0.0 in
  Array.iteri
    (fun c p ->
      let problem = sub_problem t c ~candidates:(all_switches t) in
      let sub_rates = project_rates t c rates in
      acc := !acc +. Cost.comm_cost problem ~rates:sub_rates p)
    placement;
  !acc

type outcome = { placement : placement; cost : float }

(* Chains in descending order of their current total traffic: the
   heaviest chain chooses its switches first. *)
let chain_order t ~rates =
  let weights =
    Array.init (num_chains t) (fun c ->
        (Flow.total_rate (project_rates t c rates), c))
  in
  Array.sort (fun (a, _) (b, _) -> Float.compare b a) weights;
  Array.map snd weights

let place t ~rates =
  let taken = Hashtbl.create 16 in
  let placement = Array.make (num_chains t) [||] in
  Array.iter
    (fun c ->
      let problem = sub_problem t c ~candidates:(candidates_excluding t ~taken) in
      let sub_rates = project_rates t c rates in
      let out = Placement_dp.solve problem ~rates:sub_rates () in
      placement.(c) <- out.placement;
      Array.iter (fun s -> Hashtbl.add taken s ()) out.placement)
    (chain_order t ~rates);
  { placement; cost = total_cost t ~rates placement }

let migrate t ~rates ~mu ~current =
  if Array.length current <> num_chains t then
    invalid_arg "Multi_sfc.migrate: one placement per chain expected";
  (* Unprocessed chains pin their current switches; processed chains pin
     their new ones. *)
  let taken = Hashtbl.create 16 in
  Array.iter (Array.iter (fun s -> Hashtbl.replace taken s ())) current;
  let placement = Array.map Array.copy current in
  let migration_cost = ref 0.0 in
  let moves = ref 0 in
  Array.iter
    (fun c ->
      Array.iter (fun s -> Hashtbl.remove taken s) placement.(c);
      let candidates = candidates_excluding t ~taken in
      let problem = sub_problem t c ~candidates in
      let sub_rates = project_rates t c rates in
      let out =
        Mpareto.migrate problem ~rates:sub_rates ~mu ~current:placement.(c) ()
      in
      placement.(c) <- out.migration;
      migration_cost := !migration_cost +. out.migration_cost;
      moves := !moves + out.moved;
      Array.iter (fun s -> Hashtbl.replace taken s ()) placement.(c))
    (chain_order t ~rates);
  let comm = total_cost t ~rates placement in
  ({ placement; cost = comm +. !migration_cost }, !migration_cost, !moves)
