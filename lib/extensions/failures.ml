module Graph = Ppdc_topology.Graph
module Cost_matrix = Ppdc_topology.Cost_matrix
module Union_find = Ppdc_prelude.Union_find
module Rng = Ppdc_prelude.Rng
open Ppdc_core

let connected_without g ~removed =
  let n = Graph.num_nodes g in
  let uf = Union_find.create n in
  List.iter
    (fun (u, v, _) ->
      if not (Hashtbl.mem removed (min u v, max u v)) then
        ignore (Union_find.union uf u v))
    (Graph.edges g);
  Union_find.count_sets uf = 1

let fail_links ~rng ~fraction g =
  if (not (Float.is_finite fraction)) || fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Failures.fail_links: fraction outside [0,1]";
  let switch_links =
    List.filter
      (fun (u, v, _) -> Graph.is_switch g u && Graph.is_switch g v)
      (Graph.edges g)
    |> Array.of_list
  in
  (* "Up to ⌊fraction · links⌋": truncation, not rounding — a fraction
     that buys less than one whole link fails nothing. *)
  let target =
    int_of_float (fraction *. float_of_int (Array.length switch_links))
  in
  if target = 0 then (g, [])
    (* Nothing to fail (fraction too small, or a fabric with no
       switch-switch links at all): return the graph unchanged — same
       value, same digest, no rebuild. *)
  else begin
    Rng.shuffle rng switch_links;
    let removed = Hashtbl.create target in
    let failed = ref [] in
    let failed_count = ref 0 in
    Array.iter
      (fun (u, v, _) ->
        if !failed_count < target then begin
          let k = (min u v, max u v) in
          Hashtbl.add removed k ();
          if connected_without g ~removed then begin
            failed := k :: !failed;
            incr failed_count
          end
          else Hashtbl.remove removed k
        end)
      switch_links;
    let kinds = Array.init (Graph.num_nodes g) (Graph.kind g) in
    let surviving =
      List.filter
        (fun (u, v, _) -> not (Hashtbl.mem removed (min u v, max u v)))
        (Graph.edges g)
    in
    (Graph.make ~kinds ~edges:surviving, List.rev !failed)
  end

type impact = {
  failed : (int * int) list;
  cost_before : float;
  cost_after : float;
  cost_migrated : float;
  moved : int;
}

let impact ~rng ~fraction ~mu problem ~rates ~placement =
  let cost_before = Cost.comm_cost problem ~rates placement in
  let degraded_graph, failed = fail_links ~rng ~fraction (Problem.graph problem) in
  (* The degraded fabric is the healthy one minus a few links — the
     shape Cost_matrix.repair_to localizes. Only the rows whose
     shortest-path trees used a failed link are re-run; the result is
     bit-identical to the cold compute this used to do. *)
  let degraded_cm =
    match Cost_matrix.repair_to (Problem.cm problem) degraded_graph with
    | Some (cm, _repaired_rows) -> cm
    | None -> Cost_matrix.compute degraded_graph
  in
  let degraded_problem =
    Problem.make ~cm:degraded_cm ~flows:(Problem.flows problem)
      ~n:(Problem.n problem) ()
  in
  let cost_after = Cost.comm_cost degraded_problem ~rates placement in
  let response =
    Mpareto.migrate degraded_problem ~rates ~mu ~current:placement ()
  in
  {
    failed;
    cost_before;
    cost_after;
    cost_migrated = response.total_cost;
    moved = response.moved;
  }
