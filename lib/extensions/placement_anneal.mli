(** Simulated-annealing VNF placement — a generic metaheuristic
    comparator.

    Not part of the paper's Table II, but the comparator a practitioner
    would reach for first: start from a random valid placement, propose
    single-VNF relocations and position swaps, accept worsening moves
    with probability [exp(-Δ/T)] under a geometric cooling schedule, and
    keep the best placement seen. Useful both as a sanity bound in tests
    (annealing should land between Optimal and random) and as a
    reference for how much the problem structure the DP exploits is
    actually worth. *)

type config = {
  iterations : int;  (** proposal count (default 20_000) *)
  initial_temperature : float;
      (** as a fraction of the initial cost (default 0.1) *)
  cooling : float;  (** geometric factor per iteration (default 0.9995) *)
}

val default_config : config

type outcome = {
  placement : Ppdc_core.Placement.t;
  cost : float;
  accepted : int;  (** accepted proposals, for diagnostics *)
}

val solve :
  ?config:config ->
  rng:Ppdc_prelude.Rng.t ->
  Ppdc_core.Problem.t ->
  rates:float array ->
  outcome
(** Anneal from a random valid placement. Deterministic given the
    generator state. *)
