open Ppdc_core
module Graph = Ppdc_topology.Graph

let validate problem ~capacity p =
  if capacity < 1 then invalid_arg "Capacity.validate: capacity must be >= 1";
  let n = Problem.n problem in
  if Array.length p <> n then
    invalid_arg
      (Printf.sprintf "Capacity.validate: length %d, expected %d"
         (Array.length p) n);
  let g = Problem.graph problem in
  let uses = Hashtbl.create n in
  Array.iter
    (fun s ->
      if s < 0 || s >= Graph.num_nodes g || not (Graph.is_switch g s) then
        invalid_arg (Printf.sprintf "Capacity.validate: %d is not a switch" s);
      let count = Option.value (Hashtbl.find_opt uses s) ~default:0 in
      if count >= capacity then
        invalid_arg
          (Printf.sprintf "Capacity.validate: switch %d over capacity %d" s
             capacity);
      Hashtbl.replace uses s (count + 1))
    p

let is_valid problem ~capacity p =
  match validate problem ~capacity p with
  | () -> true
  | exception Invalid_argument _ -> false

type outcome = {
  placement : Placement.t;
  cost : float;
  blocks : int;
}

(* Expand [q] block switches into an n-slot placement: the first blocks
   get [capacity] VNFs, the last one the remainder. *)
let expand ~n ~capacity blocks =
  let q = Array.length blocks in
  let placement = Array.make n (-1) in
  let position = ref 0 in
  Array.iteri
    (fun b s ->
      let width = if b = q - 1 then n - !position else min capacity (n - !position) in
      for _ = 1 to width do
        placement.(!position) <- s;
        incr position
      done)
    blocks;
  assert (!position = n);
  placement

let solve problem ~rates ~capacity =
  if capacity < 1 then invalid_arg "Capacity.solve: capacity must be >= 1";
  let n = Problem.n problem in
  let q = (n + capacity - 1) / capacity in
  let reduced = Problem.with_n problem q in
  let dp = Placement_dp.solve reduced ~rates () in
  let placement = expand ~n ~capacity dp.placement in
  {
    placement;
    cost = Cost.comm_cost problem ~rates placement;
    blocks = q;
  }

let solve_optimal problem ~rates ~capacity ?(budget = 5_000_000) () =
  if capacity < 1 then invalid_arg "Capacity.solve_optimal: capacity must be >= 1";
  let att = Cost.attach problem ~rates in
  let switches = Problem.switches problem in
  let n = Problem.n problem in
  let d u v = Problem.cost problem u v in
  let lambda = att.total_rate in
  (* Seed with the block reduction. *)
  let seed = solve problem ~rates ~capacity in
  let best_cost = ref seed.cost in
  let best = ref (Array.copy seed.placement) in
  let uses = Hashtbl.create n in
  let chosen = Array.make n (-1) in
  let explored = ref 0 in
  let exhausted = ref false in
  let min_a_out =
    Array.fold_left (fun acc s -> Float.min acc att.a_out.(s)) infinity switches
  in
  let rec dfs depth partial =
    if !explored >= budget then exhausted := true
    else begin
      incr explored;
      if depth = n then begin
        let total = partial +. att.a_out.(chosen.(n - 1)) in
        if total < !best_cost then begin
          best_cost := total;
          best := Array.copy chosen
        end
      end
      else
        (* No sibling ordering/cutoff here: the search certifies the
           reduction on small instances, so clarity wins over speed. *)
        Array.iter
          (fun x ->
            if not !exhausted then begin
              let count = Option.value (Hashtbl.find_opt uses x) ~default:0 in
              if count < capacity then begin
                let partial' =
                  if depth = 0 then att.a_in.(x)
                  else partial +. (lambda *. d chosen.(depth - 1) x)
                in
                if partial' +. min_a_out < !best_cost then begin
                  Hashtbl.replace uses x (count + 1);
                  chosen.(depth) <- x;
                  dfs (depth + 1) partial';
                  if count = 0 then Hashtbl.remove uses x
                  else Hashtbl.replace uses x count
                end
              end
            end)
          switches
    end
  in
  dfs 0 0.0;
  let distinct =
    Array.to_list !best |> List.sort_uniq Int.compare |> List.length
  in
  ( { placement = !best; cost = !best_cost; blocks = distinct },
    not !exhausted )
