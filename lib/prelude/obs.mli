(** Zero-dependency, domain-safe observability: counters, histograms,
    wall-clock span timers, per-epoch events and an NDJSON exporter.

    Disabled by default: every recording entry point first reads one
    atomic flag and returns immediately when metrics are off, so
    instrumented hot loops pay a single load and a predictable branch.
    Nothing is allocated, no clock is read and no shard is touched until
    {!set_enabled}[ true] (or the [PPDC_METRICS] environment variable)
    turns the layer on.

    Domain safety: each domain records into its own shard (domain-local
    storage), so instrumented code inside {!Parallel} sections never
    contends on shared tables. Shards are registered globally on first
    use and merged by {!snapshot} — counters are summed, histogram and
    span samples concatenated, and events interleaved by a global
    sequence number, so the merged view is independent of the domain
    count. Take snapshots outside parallel sections (e.g. at the end of
    a CLI run); per-shard locks make a concurrent snapshot safe but the
    partial data it sees is only meaningful once the section finished.

    Emitted NDJSON schema (one JSON object per line):
    - [{"type":"meta","schema":"ppdc.metrics/1","domains":D}] — [D] is
      the number of domain shards merged into the snapshot;
    - [{"type":"event","seq":S,"name":N,...}] — one per {!emit}, fields
      inlined, in [seq] order;
    - [{"type":"counter","name":N,"value":V}]
    - [{"type":"span","name":N,"count":C,"total_s":T,"mean_s":M,
       "p50_s":P,"p95_s":Q,"max_s":X}] — seconds, from {!time};
    - [{"type":"hist","name":N,"count":C,"total":T,"mean":M,"p50":P,
       "p95":Q,"max":X}] — unitless samples, from {!observe}. *)

type value = Int of int | Float of float | String of string | Bool of bool

val enabled : unit -> bool
(** One atomic load; [false] unless {!set_enabled} was called or
    [PPDC_METRICS] is set in the environment. *)

val set_enabled : bool -> unit

val env_path : unit -> string option
(** The [PPDC_METRICS] output path, if the variable is set and
    non-empty. Reading it does not enable the layer. *)

val now : unit -> float
(** Monotonic seconds ({!Clock.now}, arbitrary epoch); for span math
    around code the {!time} combinator cannot wrap. Durations built
    from it are immune to wall-clock (NTP) steps. *)

val incr : ?by:int -> string -> unit
(** Add [by] (default 1) to a named monotonic counter. No-op when
    disabled. *)

val observe : string -> float -> unit
(** Record one sample into a named histogram. Rejects nothing — callers
    own their units — but non-finite samples are dropped so summaries
    stay NaN-free. No-op when disabled. *)

val observe_span : string -> float -> unit
(** Record an externally measured duration (seconds) under a span name,
    as if {!time} had produced it. No-op when disabled. *)

val time : string -> (unit -> 'a) -> 'a
(** [time name f] runs [f ()]; when enabled, the wall-clock duration is
    recorded under span [name] (also on exception). When disabled this
    is exactly [f ()]. *)

val emit : string -> (string * value) list -> unit
(** Append a structured event record; events carry a global sequence
    number so the exported order is the record order even across
    domains. No-op when disabled. *)

(** {1 Snapshot and export} *)

type dist_summary = {
  count : int;
  total : float;
  mean : float;
  p50 : float;
  p95 : float;
  max : float;
}

type event = { seq : int; name : string; fields : (string * value) list }

type snapshot = {
  counters : (string * int) list;  (** name-sorted *)
  spans : (string * dist_summary) list;  (** name-sorted, seconds *)
  hists : (string * dist_summary) list;  (** name-sorted *)
  events : event list;  (** sequence order *)
}

val snapshot : unit -> snapshot
(** Merge all domain shards (see the header note on when). *)

val reset : unit -> unit
(** Drop all recorded data in every shard (the enabled flag is left
    alone). Intended for tests and long-lived embedders. *)

val to_ndjson : snapshot -> string
(** Render the schema above, one record per line, trailing newline. *)

val export : path:string -> unit
(** [to_ndjson (snapshot ())] written to [path] (truncates). The
    emitted NDJSON parses back with {!Json.parse} (one line at a
    time) — that shared module holds the reader half of this wire
    format. *)
