type t = {
  parent : int array;
  rank : int array;
  set_size : int array;
  mutable sets : int;
}

let create n =
  {
    parent = Array.init n (fun i -> i);
    rank = Array.make n 0;
    set_size = Array.make n 1;
    sets = n;
  }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then ra
  else begin
    t.sets <- t.sets - 1;
    let low, high =
      if t.rank.(ra) < t.rank.(rb) then (ra, rb) else (rb, ra)
    in
    t.parent.(low) <- high;
    if t.rank.(low) = t.rank.(high) then t.rank.(high) <- t.rank.(high) + 1;
    t.set_size.(high) <- t.set_size.(high) + t.set_size.(low);
    high
  end

let same t a b = find t a = find t b

let size t x = t.set_size.(find t x)

let count_sets t = t.sets
