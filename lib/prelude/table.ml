type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;  (* stored reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row (%s): expected %d cells, got %d" t.title
         (List.length t.columns) (List.length cells));
  t.rows <- cells :: t.rows

let default_float_fmt v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.2f" v

let add_float_row t ?(fmt = default_float_fmt) label values =
  add_row t (label :: List.map fmt values);
  t

let title t = t.title

let rows_in_order t = List.rev t.rows

let to_string t =
  let all = t.columns :: rows_in_order t in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  let record_row row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter record_row all;
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer ("== " ^ t.title ^ " ==\n");
  let render_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buffer "  ";
        Buffer.add_string buffer cell;
        Buffer.add_string buffer (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buffer '\n'
  in
  render_row t.columns;
  let total_width = Array.fold_left ( + ) (2 * (ncols - 1)) widths in
  Buffer.add_string buffer (String.make total_width '-');
  Buffer.add_char buffer '\n';
  List.iter render_row (rows_in_order t);
  Buffer.contents buffer

let csv_cell cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then begin
    let escaped =
      String.concat "\"\"" (String.split_on_char '"' cell)
    in
    "\"" ^ escaped ^ "\""
  end
  else cell

let to_csv t =
  let line row = String.concat "," (List.map csv_cell row) in
  String.concat "\n" (List.map line (t.columns :: rows_in_order t)) ^ "\n"

let print t =
  print_string (to_string t);
  print_newline ()
