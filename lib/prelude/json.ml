type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- parser ------------------------------------------------------------ *)

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let fail c msg =
  failwith (Printf.sprintf "Json.parse: %s at offset %d" msg c.pos)

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        c.pos <- c.pos + 1;
        true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = word
  then begin
    c.pos <- c.pos + n;
    v
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let buffer = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
        c.pos <- c.pos + 1;
        match peek c with
        | Some 'n' -> Buffer.add_char buffer '\n'; c.pos <- c.pos + 1; loop ()
        | Some 't' -> Buffer.add_char buffer '\t'; c.pos <- c.pos + 1; loop ()
        | Some 'r' -> Buffer.add_char buffer '\r'; c.pos <- c.pos + 1; loop ()
        | Some (('"' | '\\' | '/') as ch) ->
            Buffer.add_char buffer ch;
            c.pos <- c.pos + 1;
            loop ()
        | Some 'u' ->
            if c.pos + 5 > String.length c.text then fail c "bad \\u escape";
            let hex = String.sub c.text (c.pos + 1) 4 in
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some v -> v
              | None -> fail c "bad \\u escape"
            in
            (* Our writer only escapes control characters, so a raw
               byte is enough. *)
            if code < 0x100 then Buffer.add_char buffer (Char.chr code)
            else fail c "unsupported \\u escape";
            c.pos <- c.pos + 5;
            loop ()
        | _ -> fail c "bad escape")
    | Some ch ->
        Buffer.add_char buffer ch;
        c.pos <- c.pos + 1;
        loop ()
  in
  loop ();
  Buffer.contents buffer

let parse_number c =
  let start = c.pos in
  let number_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek c with Some ch when number_char ch -> true | _ -> false do
    c.pos <- c.pos + 1
  done;
  match float_of_string_opt (String.sub c.text start (c.pos - start)) with
  | Some x -> x
  | None -> fail c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let key = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              members ((key, v) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              List.rev ((key, v) :: acc)
          | _ -> fail c "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              elements (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List.rev (v :: acc)
          | _ -> fail c "expected ',' or ']'"
        in
        List (elements [])
      end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> Num (parse_number c)

let parse text =
  let c = { text; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length text then fail c "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* --- printer ------------------------------------------------------------ *)

let escape_into buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"'

let float_repr x =
  if not (Float.is_finite x) then "null"
  else begin
    (* Shortest representation that still round-trips. *)
    let s = Printf.sprintf "%.12g" x in
    if Float.equal (float_of_string s) x then s
    else Printf.sprintf "%.17g" x
  end

let rec to_buffer buffer = function
  | Null -> Buffer.add_string buffer "null"
  | Bool b -> Buffer.add_string buffer (string_of_bool b)
  | Num x -> Buffer.add_string buffer (float_repr x)
  | Str s -> escape_into buffer s
  | List elts ->
      Buffer.add_char buffer '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buffer ',';
          to_buffer buffer v)
        elts;
      Buffer.add_char buffer ']'
  | Obj fields ->
      Buffer.add_char buffer '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buffer ',';
          escape_into buffer k;
          Buffer.add_char buffer ':';
          to_buffer buffer v)
        fields;
      Buffer.add_char buffer '}'

let to_string v =
  let buffer = Buffer.create 256 in
  to_buffer buffer v;
  Buffer.contents buffer

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> Bool.equal x y
  | Num x, Num y -> Float.compare x y = 0
  | Str x, Str y -> String.equal x y
  | List xs, List ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
           xs ys
  | (Null | Bool _ | Num _ | Str _ | List _ | Obj _), _ -> false
