(** Fixed-capacity least-recently-used cache.

    A hash table paired with an intrusive recency list: {!find} and
    {!put} are O(1), and when an insert would exceed the capacity the
    entry that has gone longest without being touched is evicted. Built
    for the repo's two expensive-value caches — the cost-matrix caches
    in [Ppdc_experiments.Runner] and [Ppdc_server] — where values are
    tens of megabytes and an unbounded table is a slow leak.

    Not thread-safe: callers that share a cache across domains guard it
    with their own mutex (both in-tree users do), which also lets them
    make "concurrent misses for the same key wait for one build" a
    matter of calling {!find_or_add} under the lock. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** Raises [Invalid_argument] if [capacity < 1]. Keys use polymorphic
    hashing, so they must be hashable (ints and strings in-tree). *)

val capacity : ('k, 'v) t -> int

val length : ('k, 'v) t -> int
(** Live entries; always [<= capacity]. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit refreshes the entry's recency and is counted in
    {!hits}, a miss in {!misses}. *)

val put : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace, making the entry most recent; evicts the least
    recently used entry if the capacity would be exceeded. Does not
    touch the hit/miss counters. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> bool * 'v
(** [find_or_add t k build] is [(true, v)] on a hit and
    [(false, build ())] on a miss, caching the built value. Counts as
    one {!find}. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Presence test; does not refresh recency or touch the counters. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Lookup that does not refresh recency and does not touch the
    hit/miss counters — for secondary uses of a cached value (e.g.
    reading a parent cost matrix as the seed of an incremental repair)
    that should not perturb the cache's observable behaviour. *)

val hits : ('k, 'v) t -> int

val misses : ('k, 'v) t -> int
