(** Imperative binary min-heap priority queue with [float] priorities.

    Used by Dijkstra shortest paths, the primal-dual moat growing, and the
    min-cost-flow solver. Elements are arbitrary; ties between equal
    priorities are broken arbitrarily. All operations are O(log n) except
    [is_empty], [length] and [create] which are O(1). *)

type 'a t

val create : unit -> 'a t
(** [create ()] is a fresh empty queue. *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push q prio x] inserts [x] with priority [prio]. *)

val pop_min : 'a t -> (float * 'a) option
(** Remove and return the element with smallest priority, or [None] if the
    queue is empty. *)

val peek_min : 'a t -> (float * 'a) option
(** Return (without removing) the smallest element. *)

val clear : 'a t -> unit
(** Remove all elements, keeping the underlying storage. *)

(** Monomorphic min-heap with [float] priorities and [int] payloads.

    Functionally a specialization of the polymorphic queue above, but
    both backing arrays are unboxed so [push]/[pop] never allocate —
    this is the queue the Dijkstra hot paths use. To drain without
    allocating, pair {!Int_heap.min_prio} with {!Int_heap.pop}. *)
module Int_heap : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val is_empty : t -> bool

  val push : t -> float -> int -> unit

  val min_prio : t -> float
  (** Priority of the smallest element. Raises [Invalid_argument] when
      empty. *)

  val pop : t -> int
  (** Remove and return the payload of the smallest element. Raises
      [Invalid_argument] when empty. *)

  val clear : t -> unit
end
