(** Imperative binary min-heap priority queue with [float] priorities.

    Used by Dijkstra shortest paths, the primal-dual moat growing, and the
    min-cost-flow solver. Elements are arbitrary; ties between equal
    priorities are broken arbitrarily. All operations are O(log n) except
    [is_empty], [length] and [create] which are O(1). *)

type 'a t

val create : unit -> 'a t
(** [create ()] is a fresh empty queue. *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push q prio x] inserts [x] with priority [prio]. *)

val pop_min : 'a t -> (float * 'a) option
(** Remove and return the element with smallest priority, or [None] if the
    queue is empty. *)

val peek_min : 'a t -> (float * 'a) option
(** Return (without removing) the smallest element. *)

val clear : 'a t -> unit
(** Remove all elements, keeping the underlying storage. *)

(** Deterministic min-heap keyed by [(priority, insertion sequence)].

    Equal-priority elements pop in push order (FIFO stability), so the
    drain order is a pure function of the push history — the property
    the discrete-event simulator's timeline needs: two events scheduled
    at the same virtual time replay in the order they were scheduled,
    on every machine and at every domain count. All operations are
    O(log n); [push] rejects NaN priorities with [Invalid_argument]. *)
module Stable : sig
  type 'a t

  val create : unit -> 'a t
  val length : 'a t -> int
  val is_empty : 'a t -> bool

  val push : 'a t -> float -> 'a -> unit
  (** [push q prio x] inserts [x] with priority [prio], sequenced after
      every earlier push. Raises [Invalid_argument] on a NaN priority. *)

  val pop_min : 'a t -> (float * 'a) option
  (** Remove and return the element with the smallest [(prio, seq)]
      key, or [None] when empty. *)

  val peek_min : 'a t -> (float * 'a) option

  val clear : 'a t -> unit
  (** Remove all elements. Does {e not} reset the sequence counter:
      elements pushed after a [clear] still sequence after everything
      pushed before it. *)

  val to_sorted_list : 'a t -> (float * 'a) list
  (** Snapshot of the queue contents in pop order, without draining.
      O(n log n). *)
end

(** Monomorphic min-heap with [float] priorities and [int] payloads.

    Functionally a specialization of the polymorphic queue above, but
    both backing arrays are unboxed so [push]/[pop] never allocate —
    this is the queue the Dijkstra hot paths use. To drain without
    allocating, pair {!Int_heap.min_prio} with {!Int_heap.pop}. *)
module Int_heap : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val is_empty : t -> bool

  val push : t -> float -> int -> unit

  val min_prio : t -> float
  (** Priority of the smallest element. Raises [Invalid_argument] when
      empty. *)

  val pop : t -> int
  (** Remove and return the payload of the smallest element. Raises
      [Invalid_argument] when empty. *)

  val clear : t -> unit
end
