type value = Int of int | Float of float | String of string | Bool of bool

(* Lock hierarchy of this module (checked by ppdc-lint R6): the shard
   registry mutex and the per-shard locks never nest — snapshot/reset
   copy the registry under its mutex, release it, then visit shards one
   at a time — so the declared order only documents the intended
   direction should nesting ever appear. *)
[@@@ppdc.lock_order "obs.registry obs.shard"]

(* --- enabled flag ------------------------------------------------------ *)

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "PPDC_METRICS" with
    | Some p when String.trim p <> "" -> true
    | _ -> false)

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let env_path () =
  match Sys.getenv_opt "PPDC_METRICS" with
  | Some p when String.trim p <> "" -> Some p
  | _ -> None

(* Monotonic, not gettimeofday: span durations must survive NTP steps. *)
let now () = Clock.now ()

(* --- growable sample buffer ------------------------------------------- *)

type buf = { mutable data : float array; mutable len : int }

let buf_create () = { data = Array.make 16 0.0; len = 0 }

let buf_push b x =
  if b.len = Array.length b.data then begin
    let data = Array.make (2 * b.len) 0.0 in
    Array.blit b.data 0 data 0 b.len;
    b.data <- data
  end;
  b.data.(b.len) <- x;
  b.len <- b.len + 1

let buf_contents b = Array.sub b.data 0 b.len

(* --- per-domain shards ------------------------------------------------- *)

type event = { seq : int; name : string; fields : (string * value) list }

type shard = {
  lock : Mutex.t; [@ppdc.guards "obs.shard"]
      (* Writes come only from the owning domain; the lock exists so a
         merging/resetting domain can read or clear a shard without
         tearing a concurrent write. Uncontended in steady state. *)
  counters : (string, int ref) Hashtbl.t;
  spans : (string, buf) Hashtbl.t;
  hists : (string, buf) Hashtbl.t;
  mutable events : event list;  (* newest first *)
}

let registry : shard list ref = ref []
[@@ppdc.domain_safe
  "appended under registry_mutex at shard creation (Domain.DLS init); \
   snapshot/reset iterate a copy taken under the same mutex, and each \
   shard's contents are protected by its own per-shard lock"]

let registry_mutex = Mutex.create () [@@ppdc.guards "obs.registry"]
let event_seq = Atomic.make 0

let shard_key =
  Domain.DLS.new_key (fun () ->
      let s =
        {
          lock = Mutex.create ();
          counters = Hashtbl.create 16;
          spans = Hashtbl.create 16;
          hists = Hashtbl.create 16;
          events = [];
        }
      in
      Mutexes.with_lock registry_mutex (fun () -> registry := s :: !registry);
      s)

let my_shard () = Domain.DLS.get shard_key

(* The shard lock is per-domain and uncontended in steady state, and is
   never held across user code — safe to take from inside Parallel
   sections, hence the [@@ppdc.domain_safe] exempting callers from the
   R8 transitive-lock check. *)
let with_shard f =
  let s = my_shard () in
  Mutexes.with_lock s.lock (fun () -> f s)
[@@ppdc.domain_safe
  "per-domain DLS shard; its lock is uncontended and never held across \
   user code, so acquiring it inside a Parallel section cannot deadlock \
   or serialize the pool"]
[@@ppdc.calls_under "obs.shard"]

(* --- recording --------------------------------------------------------- *)

let incr ?(by = 1) name =
  if Atomic.get enabled_flag then
    with_shard (fun s ->
        match Hashtbl.find_opt s.counters name with
        | Some r -> r := !r + by
        | None -> Hashtbl.add s.counters name (ref by))

let record_into table name x =
  if Float.is_finite x then
    with_shard (fun s ->
        let b =
          match Hashtbl.find_opt (table s) name with
          | Some b -> b
          | None ->
              let b = buf_create () in
              Hashtbl.add (table s) name b;
              b
        in
        buf_push b x)

let observe name x =
  if Atomic.get enabled_flag then record_into (fun s -> s.hists) name x

let observe_span name dt =
  if Atomic.get enabled_flag then record_into (fun s -> s.spans) name dt

let time name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = now () in
    Fun.protect
      ~finally:(fun () -> observe_span name (now () -. t0))
      f
  end

let emit name fields =
  if Atomic.get enabled_flag then begin
    let seq = Atomic.fetch_and_add event_seq 1 in
    with_shard (fun s -> s.events <- { seq; name; fields } :: s.events)
  end

(* --- snapshot ----------------------------------------------------------- *)

type dist_summary = {
  count : int;
  total : float;
  mean : float;
  p50 : float;
  p95 : float;
  max : float;
}

type snapshot = {
  counters : (string * int) list;
  spans : (string * dist_summary) list;
  hists : (string * dist_summary) list;
  events : event list;
}

let summarize samples =
  let count = Array.length samples in
  if count = 0 then
    { count = 0; total = 0.0; mean = 0.0; p50 = 0.0; p95 = 0.0; max = 0.0 }
  else
    let total = Array.fold_left ( +. ) 0.0 samples in
    {
      count;
      total;
      mean = total /. float_of_int count;
      p50 = Stats.percentile samples 0.5;
      p95 = Stats.percentile samples 0.95;
      max = Array.fold_left Float.max samples.(0) samples;
    }

let shards () = Mutexes.with_lock registry_mutex (fun () -> !registry)

let snapshot () =
  let counters = Hashtbl.create 16 in
  let spans = Hashtbl.create 16 in
  let hists = Hashtbl.create 16 in
  let events = ref [] in
  List.iter
    (fun s ->
      Mutexes.with_lock s.lock (fun () ->
          Hashtbl.iter
            (fun name r ->
              match Hashtbl.find_opt counters name with
              | Some acc -> acc := !acc + !r
              | None -> Hashtbl.add counters name (ref !r))
            s.counters;
          let merge dst =
            Hashtbl.iter (fun name b ->
                let samples = buf_contents b in
                match Hashtbl.find_opt dst name with
                | Some acc -> Hashtbl.replace dst name (samples :: acc)
                | None -> Hashtbl.add dst name [ samples ])
          in
          merge spans s.spans;
          merge hists s.hists;
          events := List.rev_append s.events !events))
    (shards ());
  let sorted_assoc of_value table =
    Hashtbl.fold (fun name v acc -> (name, of_value v) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    counters = sorted_assoc (fun r -> !r) counters;
    spans = sorted_assoc (fun chunks -> summarize (Array.concat chunks)) spans;
    hists = sorted_assoc (fun chunks -> summarize (Array.concat chunks)) hists;
    events =
      List.sort (fun (a : event) b -> Stdlib.compare a.seq b.seq) !events;
  }

let reset () =
  List.iter
    (fun s ->
      Mutexes.with_lock s.lock (fun () ->
          Hashtbl.reset s.counters;
          Hashtbl.reset s.spans;
          Hashtbl.reset s.hists;
          s.events <- []))
    (shards ());
  Atomic.set event_seq 0

(* --- NDJSON writer ------------------------------------------------------ *)

(* String escaping and float formatting live in the shared prelude
   [Json] module (the reader half of this wire format lives there
   too). *)
let escape_into = Json.escape_into
let float_repr = Json.float_repr

let value_into buffer = function
  | Int i -> Buffer.add_string buffer (string_of_int i)
  | Float x -> Buffer.add_string buffer (float_repr x)
  | String s -> escape_into buffer s
  | Bool b -> Buffer.add_string buffer (string_of_bool b)

let record_into_buffer buffer fields =
  Buffer.add_char buffer '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buffer ',';
      escape_into buffer k;
      Buffer.add_char buffer ':';
      value_into buffer v)
    fields;
  Buffer.add_string buffer "}\n"

let to_ndjson snap =
  let buffer = Buffer.create 4096 in
  record_into_buffer buffer
    [
      ("type", String "meta");
      ("schema", String "ppdc.metrics/1");
      ("domains", Int (List.length (shards ())));
    ];
  List.iter
    (fun e ->
      record_into_buffer buffer
        (("type", String "event") :: ("seq", Int e.seq)
        :: ("name", String e.name) :: e.fields))
    snap.events;
  List.iter
    (fun (name, v) ->
      record_into_buffer buffer
        [ ("type", String "counter"); ("name", String name); ("value", Int v) ])
    snap.counters;
  let dist kind ~unit_suffix (name, d) =
    record_into_buffer buffer
      [
        ("type", String kind);
        ("name", String name);
        ("count", Int d.count);
        ("total" ^ unit_suffix, Float d.total);
        ("mean" ^ unit_suffix, Float d.mean);
        ("p50" ^ unit_suffix, Float d.p50);
        ("p95" ^ unit_suffix, Float d.p95);
        ("max" ^ unit_suffix, Float d.max);
      ]
  in
  List.iter (dist "span" ~unit_suffix:"_s") snap.spans;
  List.iter (dist "hist" ~unit_suffix:"") snap.hists;
  Buffer.contents buffer

let export ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_ndjson (snapshot ())))
