type summary = {
  n : int;
  mean : float;
  stddev : float;
  ci95 : float;
  min : float;
  max : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let sum_sq = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sum_sq /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

(* Two-sided 95% critical values of Student's t distribution by degrees of
   freedom; beyond 30 the normal approximation 1.96 is within 2%. *)
let t_critical_95 = function
  | 1 -> 12.706
  | 2 -> 4.303
  | 3 -> 3.182
  | 4 -> 2.776
  | 5 -> 2.571
  | 6 -> 2.447
  | 7 -> 2.365
  | 8 -> 2.306
  | 9 -> 2.262
  | 10 -> 2.228
  | 11 -> 2.201
  | 12 -> 2.179
  | 13 -> 2.160
  | 14 -> 2.145
  | 15 -> 2.131
  | 16 -> 2.120
  | 17 -> 2.110
  | 18 -> 2.101
  | 19 -> 2.093
  | df when df >= 20 && df < 30 -> 2.06
  | df when df >= 30 -> 1.96
  | _ -> invalid_arg "t_critical_95: non-positive degrees of freedom"

let summary xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summary: empty data";
  let m = mean xs in
  let sd = stddev xs in
  let ci95 =
    if n < 2 then 0.0 else t_critical_95 (n - 1) *. sd /. sqrt (float_of_int n)
  in
  let mn = Array.fold_left Float.min xs.(0) xs in
  let mx = Array.fold_left Float.max xs.(0) xs in
  { n; mean = m; stddev = sd; ci95; min = mn; max = mx }

let percentile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty data";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.percentile: q outside [0,1]";
  if Array.exists Float.is_nan xs then
    invalid_arg "Stats.percentile: NaN in data";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let pp_summary fmt s = Format.fprintf fmt "%.2f ± %.2f" s.mean s.ci95
