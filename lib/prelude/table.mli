(** Plain-text table rendering for experiment output.

    The benchmark harness prints one table per paper figure/table; this
    module renders them with aligned columns and can also emit CSV so the
    series can be re-plotted externally. *)

type t

val create : title:string -> columns:string list -> t
(** A table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row. Raises [Invalid_argument] if the number of cells differs
    from the number of columns. *)

val add_float_row : t -> ?fmt:(float -> string) -> string -> float list -> t
(** [add_float_row t label values] appends [label :: formatted values] and
    returns [t] for chaining. Default format is [%.2f] with thousands kept
    plain. *)

val title : t -> string

val to_string : t -> string
(** Aligned, boxed plain-text rendering (title, header rule, rows). *)

val to_csv : t -> string
(** Comma-separated rendering, header first. Cells containing commas or
    quotes are quoted per RFC 4180. *)

val print : t -> unit
(** [to_string] to stdout followed by a blank line. *)
