type t = { mutable state : int64 }

(* splitmix64 constants, Steele et al., "Fast splittable pseudorandom
   number generators" (OOPSLA 2014). *)
let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = mix seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias: draw 63 non-negative bits and
     reject draws falling in the final partial bucket. *)
  let bound64 = Int64.of_int bound in
  let limit = Int64.sub Int64.max_int (Int64.rem Int64.max_int bound64) in
  let rec loop () =
    let raw = Int64.shift_right_logical (bits64 t) 1 in
    if raw < limit then Int64.to_int (Int64.rem raw bound64) else loop ()
  in
  loop ()

let float t bound =
  (* 53 uniform bits mapped into [0, 1). *)
  let raw = Int64.shift_right_logical (bits64 t) 11 in
  let unit = Int64.to_float raw *. (1.0 /. 9007199254740992.0) in
  unit *. bound

let uniform t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.uniform: lo > hi";
  lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))
