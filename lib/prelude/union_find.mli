(** Disjoint-set forest with union by rank and path compression.

    Used by the primal-dual moat growing (component merging) and spanning
    tree construction. Elements are the integers [0 .. n-1]. Amortized
    near-O(1) per operation. *)

type t

val create : int -> t
(** [create n] is a forest of [n] singleton sets [{0}, ..., {n-1}]. *)

val find : t -> int -> int
(** Canonical representative of the set containing the given element. *)

val union : t -> int -> int -> int
(** [union t a b] merges the sets of [a] and [b] and returns the
    representative of the merged set. Merging a set with itself is a
    no-op returning its representative. *)

val same : t -> int -> int -> bool
(** Whether two elements are in the same set. *)

val size : t -> int -> int
(** Number of elements in the set containing the given element. *)

val count_sets : t -> int
(** Number of distinct sets currently in the forest. *)
