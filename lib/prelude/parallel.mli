(** Deterministic parallel execution on OCaml 5 domains.

    A fixed pool of worker domains executes index-based task sets. The
    pool size is, in decreasing priority: the last value passed to
    {!set_domains} (the CLI [-j] flag), the [PPDC_DOMAINS] environment
    variable, or [Domain.recommended_domain_count ()].

    Determinism contract: every combinator writes task results into
    per-index slots and reduces them in index order after a full
    barrier, so the value produced is a pure function of the task
    bodies — bit-identical for any domain count, including the
    sequential fallback ([PPDC_DOMAINS=1]). If several tasks raise, the
    exception of the lowest index is re-raised (matching what a
    sequential left-to-right loop would have raised first).

    Nested parallel sections degrade gracefully: a task body that
    itself calls into this module runs its inner task set sequentially
    on the calling domain, so callers never need to know whether they
    are already inside a parallel region. *)

val domain_count : unit -> int
(** Effective parallelism width (≥ 1). *)

val set_domains : int -> unit
(** Override the pool size (≥ 1); takes effect on the next parallel
    call, resizing the pool if needed. Raises [Invalid_argument] on
    non-positive values. *)

val parallel_for : int -> (int -> unit) -> unit
(** [parallel_for n f] runs [f 0 .. f (n-1)], distributing indices over
    the pool. Returns after all tasks complete. *)

val init : int -> (int -> 'a) -> 'a array
(** Parallel [Array.init]: element [i] of the result is [f i]. *)

val parallel_map : ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] (same result, element for element). *)

val map_reduce :
  n:int -> map:(int -> 'b) -> init:'a -> combine:('a -> 'b -> 'a) -> 'a
(** [map_reduce ~n ~map ~init ~combine] computes [map i] for each index
    in parallel, then folds [combine] over the results **in index
    order** on the calling domain — equivalent to
    [Array.fold_left combine init (Array.init n map)]. *)

val shutdown : unit -> unit
(** Join all pool workers (idempotent; also registered via [at_exit]).
    Only needed by embedders that fork or want a quiet teardown. *)
