(* Fixed domain pool with deterministic index-ordered results.

   Scheduling is dynamic (workers claim indices from an atomic counter)
   but every observable output is keyed by index and reduced in index
   order after a barrier, so results do not depend on the schedule. *)

(* Lock hierarchy of this module, machine-checked by ppdc-lint R6:
   the pool-state registry mutex is taken before any pool's own mutex
   (shutdown/resize hold it while draining a pool), and the per-job
   error mutex nests innermost. *)
[@@@ppdc.lock_order "parallel.pool_state parallel.pool parallel.err"]

let env_domains () =
  match Sys.getenv_opt "PPDC_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> Some d
      | _ -> None)

(* 0 = no explicit override. *)
let requested = Atomic.make 0

let domain_count () =
  match Atomic.get requested with
  | d when d >= 1 -> d
  | _ -> (
      match env_domains () with
      | Some d -> d
      | None -> max 1 (Domain.recommended_domain_count ()))

let set_domains d =
  if d < 1 then invalid_arg "Parallel.set_domains: need at least one domain";
  Atomic.set requested d

(* --- job: one index-based task set ------------------------------------ *)

type job = {
  body : int -> unit;
  total : int;
  next : int Atomic.t;  (* next index to claim *)
  pending : int Atomic.t;  (* indices not yet finished *)
  failed : int Atomic.t;  (* lowest failing index, or max_int *)
  mutable error : exn option;  (* exception at [failed]; err_mutex *)
  err_mutex : Mutex.t; [@ppdc.guards "parallel.err"]
}

let record_error job i exn =
  Mutexes.with_lock job.err_mutex (fun () ->
      if i < Atomic.get job.failed then begin
        Atomic.set job.failed i;
        job.error <- Some exn
      end)

(* Claim and run indices until the set is drained (or an earlier index
   failed, in which case later indices are abandoned — a sequential loop
   would never have reached them). Returns the number completed, so the
   caller can account for them against [pending] in one atomic. *)
let work job =
  let done_here = ref 0 in
  let continue = ref true in
  while !continue do
    let i = Atomic.fetch_and_add job.next 1 in
    if i >= job.total then continue := false
    else begin
      if i > Atomic.get job.failed then ()
      else begin
        try job.body i with exn -> record_error job i exn
      end;
      incr done_here
    end
  done;
  !done_here

(* --- pool -------------------------------------------------------------- *)

type pool = {
  mutable workers : unit Domain.t array;
  mutex : Mutex.t; [@ppdc.guards "parallel.pool"]
  work_cond : Condition.t;  (* new job or stop *)
  done_cond : Condition.t;  (* a job drained *)
  mutable generation : int;
  mutable job : job option;
  mutable stop : bool;
}

let finish_indices pool job k =
  if Atomic.fetch_and_add job.pending (-k) = k then
    (* Last batch: wake the submitter. The lock orders this broadcast
       after the submitter's check of [pending] under the same mutex. *)
    Mutexes.with_lock pool.mutex (fun () ->
        Condition.broadcast pool.done_cond)

let rec worker_loop pool seen_generation =
  let generation, job, stop =
    Mutexes.with_lock pool.mutex (fun () ->
        while pool.generation = seen_generation && not pool.stop do
          Condition.wait pool.work_cond pool.mutex
        done;
        (pool.generation, pool.job, pool.stop))
  in
  if not stop then begin
    (match job with
    | Some j ->
        let k = work j in
        if k > 0 then finish_indices pool j k
    | None -> ());
    worker_loop pool generation
  end

let make_pool num_workers =
  let pool =
    {
      workers = [||];
      mutex = Mutex.create ();
      work_cond = Condition.create ();
      done_cond = Condition.create ();
      generation = 0;
      job = None;
      stop = false;
    }
  in
  pool.workers <-
    Array.init num_workers (fun _ ->
        Domain.spawn (fun () -> worker_loop pool 0));
  pool

let pool_state : pool option ref = ref None
[@@ppdc.domain_safe "read and written only while holding pool_mutex"]

let pool_mutex = Mutex.create () [@@ppdc.guards "parallel.pool_state"]

let exit_hook_registered = ref false
[@@ppdc.domain_safe "flipped once under pool_mutex inside obtain_pool"]

let shutdown_locked () =
  match !pool_state with
  | None -> ()
  | Some pool ->
      Mutexes.with_lock pool.mutex (fun () ->
          pool.stop <- true;
          Condition.broadcast pool.work_cond);
      Array.iter Domain.join pool.workers;
      pool_state := None

let shutdown () = Mutexes.with_lock pool_mutex shutdown_locked

(* A pool with [width - 1] workers (the caller is the remaining lane),
   resized when the requested width changes. *)
let obtain_pool width =
  Mutexes.with_lock pool_mutex (fun () ->
      (match !pool_state with
      | Some pool when Array.length pool.workers = width - 1 -> ()
      | Some _ -> shutdown_locked ()
      | None -> ());
      match !pool_state with
      | Some pool -> pool
      | None ->
          let pool = make_pool (width - 1) in
          pool_state := Some pool;
          if not !exit_hook_registered then begin
            exit_hook_registered := true;
            at_exit shutdown
          end;
          pool)

(* Reentrancy guard: a task body calling back into this module runs its
   inner task set sequentially, keeping the pool single-purpose and the
   schedule deadlock-free. *)
let busy = Atomic.make false

let run_sequential n body =
  for i = 0 to n - 1 do
    body i
  done

let run n body =
  if n <= 0 then ()
  else
    let width = domain_count () in
    if width = 1 || n = 1 then run_sequential n body
    else if not (Atomic.compare_and_set busy false true) then
      run_sequential n body
    else
      Fun.protect
        ~finally:(fun () -> Atomic.set busy false)
        (fun () ->
          let pool = obtain_pool width in
          let job =
            {
              body;
              total = n;
              next = Atomic.make 0;
              pending = Atomic.make n;
              failed = Atomic.make max_int;
              error = None;
              err_mutex = Mutex.create ();
            }
          in
          Mutexes.with_lock pool.mutex (fun () ->
              pool.job <- Some job;
              pool.generation <- pool.generation + 1;
              Condition.broadcast pool.work_cond);
          let k = work job in
          if k > 0 then finish_indices pool job k;
          Mutexes.with_lock pool.mutex (fun () ->
              while Atomic.get job.pending > 0 do
                Condition.wait pool.done_cond pool.mutex
              done;
              pool.job <- None);
          match job.error with Some exn -> raise exn | None -> ())
[@@ppdc.domain_safe
  "the pool/err mutexes taken here are the scheduler's own, never held \
   across user code, and a reentrant call observes the busy flag and \
   runs sequentially — so task bodies calling back into Parallel cannot \
   deadlock; exempted from the R8 roll-up for that reason"]

let parallel_for n f = run n f

let init n f =
  (* [||] for n = 0 is Array.init's own contract, not a sentinel: the
     empty result is exactly what a zero-length init means. *)
  if n = 0 then ([||] [@ppdc.allow "R5"])
  else begin
    let slots = Array.make n None in
    run n (fun i -> slots.(i) <- Some (f i));
    Array.map
      (function Some v -> v | None -> assert false (* barrier filled it *))
      slots
  end

let parallel_map f a = init (Array.length a) (fun i -> f a.(i))

let map_reduce ~n ~map ~init:acc0 ~combine =
  let results = init n map in
  Array.fold_left combine acc0 results
