type 'a t = {
  mutable prio : float array;
  mutable data : 'a option array;
  mutable size : int;
}

let create () = { prio = Array.make 16 0.0; data = Array.make 16 None; size = 0 }

let length q = q.size

let is_empty q = q.size = 0

let grow q =
  let capacity = Array.length q.prio in
  let prio = Array.make (2 * capacity) 0.0 in
  let data = Array.make (2 * capacity) None in
  Array.blit q.prio 0 prio 0 q.size;
  Array.blit q.data 0 data 0 q.size;
  q.prio <- prio;
  q.data <- data

let swap q i j =
  let p = q.prio.(i) and d = q.data.(i) in
  q.prio.(i) <- q.prio.(j);
  q.data.(i) <- q.data.(j);
  q.prio.(j) <- p;
  q.data.(j) <- d

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if q.prio.(i) < q.prio.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < q.size && q.prio.(left) < q.prio.(!smallest) then smallest := left;
  if right < q.size && q.prio.(right) < q.prio.(!smallest) then smallest := right;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let push q prio x =
  if q.size = Array.length q.prio then grow q;
  q.prio.(q.size) <- prio;
  q.data.(q.size) <- Some x;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop_min q =
  if q.size = 0 then None
  else begin
    let prio = q.prio.(0) in
    let x =
      match q.data.(0) with
      | Some x -> x
      | None -> assert false
    in
    q.size <- q.size - 1;
    q.prio.(0) <- q.prio.(q.size);
    q.data.(0) <- q.data.(q.size);
    q.data.(q.size) <- None;
    if q.size > 0 then sift_down q 0;
    Some (prio, x)
  end

let peek_min q =
  if q.size = 0 then None
  else
    match q.data.(0) with
    | Some x -> Some (q.prio.(0), x)
    | None -> assert false

let clear q =
  Array.fill q.data 0 q.size None;
  q.size <- 0

(* Deterministic heap for the discrete-event simulator: the effective
   key is the pair (priority, insertion sequence number), compared
   lexicographically, so equal-priority elements pop in push order.
   The plain heap above breaks ties by heap position — fine for
   Dijkstra, where ties are resolved downstream by the canonical-tree
   rule, but fatal for an event timeline whose replay order must be a
   pure function of the push history. *)
module Stable = struct
  type 'a t = {
    mutable prio : float array;
    mutable seq : int array;
    mutable data : 'a option array;
    mutable size : int;
    mutable next_seq : int;
  }

  let create () =
    {
      prio = Array.make 16 0.0;
      seq = Array.make 16 0;
      data = Array.make 16 None;
      size = 0;
      next_seq = 0;
    }

  let length q = q.size
  let is_empty q = q.size = 0

  let grow q =
    let capacity = Array.length q.prio in
    let prio = Array.make (2 * capacity) 0.0 in
    let seq = Array.make (2 * capacity) 0 in
    let data = Array.make (2 * capacity) None in
    Array.blit q.prio 0 prio 0 q.size;
    Array.blit q.seq 0 seq 0 q.size;
    Array.blit q.data 0 data 0 q.size;
    q.prio <- prio;
    q.seq <- seq;
    q.data <- data

  (* (prio, seq) lexicographic order. [Float.compare] keeps the float
     comparison explicit; NaN priorities are rejected at [push]. *)
  let lt q i j =
    match Float.compare q.prio.(i) q.prio.(j) with
    | 0 -> q.seq.(i) < q.seq.(j)
    | c -> c < 0

  let swap q i j =
    let p = q.prio.(i) and s = q.seq.(i) and d = q.data.(i) in
    q.prio.(i) <- q.prio.(j);
    q.seq.(i) <- q.seq.(j);
    q.data.(i) <- q.data.(j);
    q.prio.(j) <- p;
    q.seq.(j) <- s;
    q.data.(j) <- d

  let rec sift_up q i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if lt q i parent then begin
        swap q i parent;
        sift_up q parent
      end
    end

  let rec sift_down q i =
    let left = (2 * i) + 1 and right = (2 * i) + 2 in
    let smallest = ref i in
    if left < q.size && lt q left !smallest then smallest := left;
    if right < q.size && lt q right !smallest then smallest := right;
    if !smallest <> i then begin
      swap q i !smallest;
      sift_down q !smallest
    end

  let push q prio x =
    if Float.is_nan prio then invalid_arg "Pqueue.Stable.push: NaN priority";
    if q.size = Array.length q.prio then grow q;
    q.prio.(q.size) <- prio;
    q.seq.(q.size) <- q.next_seq;
    q.data.(q.size) <- Some x;
    q.next_seq <- q.next_seq + 1;
    q.size <- q.size + 1;
    sift_up q (q.size - 1)

  let pop_min q =
    if q.size = 0 then None
    else begin
      let prio = q.prio.(0) in
      let x =
        match q.data.(0) with Some x -> x | None -> assert false
      in
      q.size <- q.size - 1;
      q.prio.(0) <- q.prio.(q.size);
      q.seq.(0) <- q.seq.(q.size);
      q.data.(0) <- q.data.(q.size);
      q.data.(q.size) <- None;
      if q.size > 0 then sift_down q 0;
      Some (prio, x)
    end

  let peek_min q =
    if q.size = 0 then None
    else
      match q.data.(0) with
      | Some x -> Some (q.prio.(0), x)
      | None -> assert false

  let clear q =
    Array.fill q.data 0 q.size None;
    q.size <- 0

  (* Non-destructive snapshot in pop order: clone the backing arrays
     and drain the clone. O(n log n); the simulator's forecast scan is
     the only caller and queues are small. *)
  let to_sorted_list q =
    let c =
      {
        prio = Array.copy q.prio;
        seq = Array.copy q.seq;
        data = Array.copy q.data;
        size = q.size;
        next_seq = q.next_seq;
      }
    in
    let rec drain acc =
      match pop_min c with
      | None -> List.rev acc
      | Some pair -> drain (pair :: acc)
    in
    drain []
end

(* Monomorphic (float priority, int payload) heap for solver hot loops:
   both backing arrays are unboxed, so push/pop allocate nothing — the
   polymorphic heap above wraps every payload in [Some]. *)
module Int_heap = struct
  type t = {
    mutable prio : float array;
    mutable data : int array;
    mutable size : int;
  }

  let create ?(capacity = 16) () =
    let capacity = max 1 capacity in
    { prio = Array.make capacity 0.0; data = Array.make capacity 0; size = 0 }

  let length q = q.size
  let is_empty q = q.size = 0

  let grow q =
    let capacity = Array.length q.prio in
    let prio = Array.make (2 * capacity) 0.0 in
    let data = Array.make (2 * capacity) 0 in
    Array.blit q.prio 0 prio 0 q.size;
    Array.blit q.data 0 data 0 q.size;
    q.prio <- prio;
    q.data <- data

  let rec sift_up q i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if q.prio.(i) < q.prio.(parent) then begin
        let p = q.prio.(i) and d = q.data.(i) in
        q.prio.(i) <- q.prio.(parent);
        q.data.(i) <- q.data.(parent);
        q.prio.(parent) <- p;
        q.data.(parent) <- d;
        sift_up q parent
      end
    end

  let rec sift_down q i =
    let left = (2 * i) + 1 and right = (2 * i) + 2 in
    let smallest = ref i in
    if left < q.size && q.prio.(left) < q.prio.(!smallest) then
      smallest := left;
    if right < q.size && q.prio.(right) < q.prio.(!smallest) then
      smallest := right;
    if !smallest <> i then begin
      let j = !smallest in
      let p = q.prio.(i) and d = q.data.(i) in
      q.prio.(i) <- q.prio.(j);
      q.data.(i) <- q.data.(j);
      q.prio.(j) <- p;
      q.data.(j) <- d;
      sift_down q j
    end

  let push q prio x =
    if q.size = Array.length q.prio then grow q;
    q.prio.(q.size) <- prio;
    q.data.(q.size) <- x;
    q.size <- q.size + 1;
    sift_up q (q.size - 1)

  let min_prio q =
    if q.size = 0 then invalid_arg "Pqueue.Int_heap.min_prio: empty";
    q.prio.(0)

  let pop q =
    if q.size = 0 then invalid_arg "Pqueue.Int_heap.pop: empty";
    let x = q.data.(0) in
    q.size <- q.size - 1;
    q.prio.(0) <- q.prio.(q.size);
    q.data.(0) <- q.data.(q.size);
    if q.size > 0 then sift_down q 0;
    x

  let clear q = q.size <- 0
end
