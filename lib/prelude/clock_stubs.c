/* Monotonic clock for Ppdc_prelude.Clock.
 *
 * OCaml's Unix library exposes only gettimeofday, which steps whenever
 * NTP (or an operator) adjusts the wall clock — a stepped clock turns
 * request latencies negative and fires spurious deadline errors.
 * CLOCK_MONOTONIC never steps, so durations and deadlines computed
 * from it are immune.  One tiny stub keeps the prelude free of
 * external dependencies. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value ppdc_clock_monotonic_s(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
}
