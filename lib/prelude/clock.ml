external now : unit -> float = "ppdc_clock_monotonic_s"

let elapsed_s ~since = now () -. since
