(* Bounded multi-producer/multi-worker job queue on domains.

   One mutex guards all state; [work] wakes workers when a job arrives
   or shutdown begins, [idle] wakes shutdown waiters when the last job
   finishes. Workers drain the pending queue even after [shutdown] —
   accepted jobs always run. *)

type push_result = Accepted | Overloaded | Stopped

type 'a t = {
  run : 'a -> unit;
  pending : 'a Queue.t;
  max_pending : int;
  mutex : Mutex.t; [@ppdc.guards "work_queue"]
  work : Condition.t;  (* job pushed or shutdown began *)
  idle : Condition.t;  (* accepted work fully drained *)
  mutable stopping : bool;
  mutable joined : bool;
  mutable active : int;
  mutable rejected : int;
  mutable completed : int;
  mutable failures : int;
  mutable workers : unit Domain.t array;
}

let locked t f = Mutexes.with_lock t.mutex f
[@@ppdc.calls_under "work_queue"]

let rec worker_loop t =
  let job =
    locked t (fun () ->
        while Queue.is_empty t.pending && not t.stopping do
          Condition.wait t.work t.mutex
        done;
        if Queue.is_empty t.pending then None (* stopping, nothing left *)
        else begin
          let job = Queue.pop t.pending in
          t.active <- t.active + 1;
          Some job
        end)
  in
  match job with
  | None -> ()
  | Some job ->
      let failed = match t.run job with () -> false | exception _ -> true in
      locked t (fun () ->
          t.active <- t.active - 1;
          t.completed <- t.completed + 1;
          if failed then t.failures <- t.failures + 1;
          if t.active = 0 && Queue.is_empty t.pending then
            Condition.broadcast t.idle);
      worker_loop t

let create ~workers ~max_pending run =
  if workers < 1 then
    invalid_arg "Work_queue.create: need at least one worker";
  if max_pending < 0 then
    invalid_arg "Work_queue.create: max_pending must be >= 0";
  let t =
    {
      run;
      pending = Queue.create ();
      max_pending;
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      stopping = false;
      joined = false;
      active = 0;
      rejected = 0;
      completed = 0;
      failures = 0;
      workers = [||];
    }
  in
  t.workers <- Array.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let push t job =
  locked t (fun () ->
      if t.stopping then begin
        t.rejected <- t.rejected + 1;
        Stopped
      end
      else if Queue.length t.pending >= t.max_pending && t.active >= Array.length t.workers
      then begin
        t.rejected <- t.rejected + 1;
        Overloaded
      end
      else begin
        Queue.push job t.pending;
        Condition.signal t.work;
        Accepted
      end)

let depth t = locked t (fun () -> Queue.length t.pending)
let active t = locked t (fun () -> t.active)
let rejected t = locked t (fun () -> t.rejected)
let completed t = locked t (fun () -> t.completed)
let failures t = locked t (fun () -> t.failures)

let shutdown t =
  let join_here =
    locked t (fun () ->
        let first = not t.stopping in
        t.stopping <- true;
        Condition.broadcast t.work;
        while t.active > 0 || not (Queue.is_empty t.pending) do
          Condition.wait t.idle t.mutex
        done;
        if first && not t.joined then begin
          t.joined <- true;
          true
        end
        else false)
  in
  if join_here then Array.iter Domain.join t.workers
