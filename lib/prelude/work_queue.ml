(* Bounded multi-producer/multi-worker job queue on domains, with
   optional per-tenant fairness lanes.

   One mutex guards all state; [work] wakes workers when a job arrives,
   a job completes (a tenant at its active cap may have become
   dispatchable) or shutdown begins; [idle] wakes shutdown waiters when
   the last job finishes. Workers drain the pending queues even after
   [shutdown] — accepted jobs always run.

   Jobs are grouped into per-tenant buckets and dispatched by
   deficit-round-robin over the bucket rotation. Every job has unit
   cost and every visit grants a unit quantum, so the deficit
   bookkeeping degenerates and DRR reduces to exact per-tenant
   round-robin: each rotation pass dispatches at most one job per
   tenant, which is the fairness the caps need without weighting. Jobs
   pushed without a tenant share the "" bucket, so an untenanted queue
   is plain FIFO — bit-for-bit the pre-fairness behavior. *)

type push_result = Accepted | Overloaded | Stopped

type 'a bucket = {
  jobs : 'a Queue.t;
  mutable b_active : int;  (* this tenant's jobs currently executing *)
  mutable queued : bool;  (* bucket present in [rotation] *)
}

type 'a t = {
  run : 'a -> unit;
  buckets : (string, 'a bucket) Hashtbl.t;
  rotation : string Queue.t;  (* round-robin order of non-empty buckets *)
  max_pending : int;
  tenant_pending : int option;
  tenant_active : int option;
  mutex : Mutex.t; [@ppdc.guards "work_queue"]
  work : Condition.t;  (* job pushed, job completed, or shutdown began *)
  idle : Condition.t;  (* accepted work fully drained *)
  mutable pending_count : int;  (* jobs accepted, not yet started *)
  mutable stopping : bool;
  mutable joined : bool;
  mutable active : int;
  mutable rejected : int;
  mutable tenant_rejected : int;
  mutable completed : int;
  mutable failures : int;
  mutable workers : unit Domain.t array;
}

let locked t f = Mutexes.with_lock t.mutex f
[@@ppdc.calls_under "work_queue"]

(* All bucket helpers run under the lock. *)

let bucket_of t tenant =
  match Hashtbl.find_opt t.buckets tenant with
  | Some b -> b
  | None ->
      let b = { jobs = Queue.create (); b_active = 0; queued = false } in
      Hashtbl.add t.buckets tenant b;
      b

(* A bucket is dropped only when fully quiescent, so [b_active]
   accounting never loses its record mid-flight. *)
let drop_if_quiescent t tenant b =
  if Queue.is_empty b.jobs && b.b_active = 0 && not b.queued then
    Hashtbl.remove t.buckets tenant

(* One round-robin pass over the rotation: dispatch the first tenant
   not at its active cap; tenants at cap are rotated to the back and
   retried on the next pass (a completion broadcasts [work]). [None]
   means nothing is dispatchable right now — either no pending jobs or
   every pending tenant is at cap. *)
let take_job t =
  let passes = Queue.length t.rotation in
  let rec go i =
    if i >= passes then None
    else
      match Queue.pop t.rotation with
      | exception Queue.Empty -> None
      | tenant -> (
          match Hashtbl.find_opt t.buckets tenant with
          | None -> go i (* stale entry; not a real pass *)
          | Some b ->
              let capped =
                match t.tenant_active with
                | Some cap -> b.b_active >= cap
                | None -> false
              in
              if capped then begin
                Queue.push tenant t.rotation;
                go (i + 1)
              end
              else begin
                let job = Queue.pop b.jobs in
                b.b_active <- b.b_active + 1;
                t.pending_count <- t.pending_count - 1;
                if Queue.is_empty b.jobs then b.queued <- false
                else Queue.push tenant t.rotation;
                Some (tenant, job)
              end)
  in
  go 0

let rec worker_loop t =
  let job =
    locked t (fun () ->
        let rec wait () =
          match take_job t with
          | Some picked ->
              t.active <- t.active + 1;
              Some picked
          | None ->
              if t.stopping && t.pending_count = 0 then None
              else begin
                Condition.wait t.work t.mutex;
                wait ()
              end
        in
        wait ())
  in
  match job with
  | None -> ()
  | Some (tenant, job) ->
      let failed = match t.run job with () -> false | exception _ -> true in
      locked t (fun () ->
          t.active <- t.active - 1;
          t.completed <- t.completed + 1;
          if failed then t.failures <- t.failures + 1;
          (match Hashtbl.find_opt t.buckets tenant with
          | Some b ->
              b.b_active <- b.b_active - 1;
              drop_if_quiescent t tenant b
          | None -> ());
          (* This completion may unblock a tenant that was at its
             active cap, and shutdown waiters. *)
          Condition.broadcast t.work;
          if t.active = 0 && t.pending_count = 0 then
            Condition.broadcast t.idle);
      worker_loop t

let create ~workers ~max_pending ?tenant_pending ?tenant_active run =
  if workers < 1 then
    invalid_arg "Work_queue.create: need at least one worker";
  if max_pending < 0 then
    invalid_arg "Work_queue.create: max_pending must be >= 0";
  (match tenant_pending with
  | Some v when v < 0 ->
      invalid_arg "Work_queue.create: tenant_pending must be >= 0"
  | _ -> ());
  (match tenant_active with
  | Some v when v < 1 ->
      invalid_arg "Work_queue.create: tenant_active must be >= 1"
  | _ -> ());
  let t =
    {
      run;
      buckets = Hashtbl.create 8;
      rotation = Queue.create ();
      max_pending;
      tenant_pending;
      tenant_active;
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      pending_count = 0;
      stopping = false;
      joined = false;
      active = 0;
      rejected = 0;
      tenant_rejected = 0;
      completed = 0;
      failures = 0;
      workers = [||];
    }
  in
  t.workers <- Array.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let push ?(tenant = "") t job =
  locked t (fun () ->
      if t.stopping then begin
        t.rejected <- t.rejected + 1;
        Stopped
      end
      else
        let b = bucket_of t tenant in
        let tenant_full =
          match t.tenant_pending with
          | Some cap -> Queue.length b.jobs >= cap
          | None -> false
        in
        if tenant_full then begin
          t.rejected <- t.rejected + 1;
          t.tenant_rejected <- t.tenant_rejected + 1;
          drop_if_quiescent t tenant b;
          Overloaded
        end
        else if
          t.pending_count >= t.max_pending
          && t.active >= Array.length t.workers
        then begin
          t.rejected <- t.rejected + 1;
          drop_if_quiescent t tenant b;
          Overloaded
        end
        else begin
          Queue.push job b.jobs;
          t.pending_count <- t.pending_count + 1;
          if not b.queued then begin
            b.queued <- true;
            Queue.push tenant t.rotation
          end;
          Condition.signal t.work;
          Accepted
        end)

let depth t = locked t (fun () -> t.pending_count)
let active t = locked t (fun () -> t.active)
let rejected t = locked t (fun () -> t.rejected)
let tenant_rejected t = locked t (fun () -> t.tenant_rejected)
let completed t = locked t (fun () -> t.completed)
let failures t = locked t (fun () -> t.failures)

let shutdown t =
  let join_here =
    locked t (fun () ->
        let first = not t.stopping in
        t.stopping <- true;
        Condition.broadcast t.work;
        while t.active > 0 || t.pending_count > 0 do
          Condition.wait t.idle t.mutex
        done;
        if first && not t.joined then begin
          t.joined <- true;
          true
        end
        else false)
  in
  if join_here then Array.iter Domain.join t.workers
