(* Doubly-linked recency list threaded through a hash table. [head] is
   the most recently used entry, [tail] the eviction candidate. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (* towards head *)
  mutable next : ('k, 'v) node option;  (* towards tail *)
}

type ('k, 'v) t = {
  cap : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable hit_count : int;
  mutable miss_count : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  {
    cap = capacity;
    table = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    hit_count = 0;
    miss_count = 0;
  }

let capacity t = t.cap
let length t = Hashtbl.length t.table
let hits t = t.hit_count
let misses t = t.miss_count
let mem t k = Hashtbl.mem t.table k

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let touch t node =
  match node.prev with
  | None -> ()  (* already at the head *)
  | Some _ ->
      unlink t node;
      push_front t node

let find t k =
  match Hashtbl.find_opt t.table k with
  | Some node ->
      t.hit_count <- t.hit_count + 1;
      touch t node;
      Some node.value
  | None ->
      t.miss_count <- t.miss_count + 1;
      None

let peek t k =
  match Hashtbl.find_opt t.table k with
  | Some node -> Some node.value
  | None -> None

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key

let put t k v =
  match Hashtbl.find_opt t.table k with
  | Some node ->
      node.value <- v;
      touch t node
  | None ->
      if Hashtbl.length t.table >= t.cap then evict_lru t;
      let node = { key = k; value = v; prev = None; next = None } in
      push_front t node;
      Hashtbl.replace t.table k node

let find_or_add t k build =
  match find t k with
  | Some v -> (true, v)
  | None ->
      let v = build () in
      put t k v;
      (false, v)
