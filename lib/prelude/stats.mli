(** Descriptive statistics for experiment reporting.

    Each data point in the paper's plots is "an average of 20 runs with a
    95% confidence interval"; [summary] computes exactly that. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  ci95 : float;  (** half-width of the 95% confidence interval *)
  min : float;
  max : float;
}

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val variance : float array -> float
(** Unbiased sample variance; 0 when fewer than two points. *)

val stddev : float array -> float

val summary : float array -> summary
(** Full summary. The confidence interval uses Student's t critical value
    for small n (two-sided 95%), converging to 1.96 for large n. Raises
    [Invalid_argument] on an empty array. *)

val percentile : float array -> float -> float
(** [percentile xs q] with [q] in [0,1]: linear-interpolation percentile
    of the data, ordered by [Float.compare]. Raises [Invalid_argument]
    on an empty array, [q] outside [0,1], or a NaN data point (NaN has
    no rank; polymorphic [compare] used to place it arbitrarily and
    poison the interpolation). The input array is not modified. *)

val pp_summary : Format.formatter -> summary -> unit
(** Renders as ["mean ± ci95"]. *)
