(** Bounded worker pool on OCaml 5 domains.

    A fixed set of worker domains drains a bounded FIFO of jobs. The
    bound is the backpressure mechanism: {!push} never blocks the
    producer and never queues silently past the limit — when every
    worker is busy and the pending queue is full it returns
    [Overloaded] immediately, so the caller can answer the client with
    a structured rejection instead of letting latency grow without
    bound. Built for [Ppdc_server.Transport]'s accept loop, where a job
    is one accepted connection, but the module is generic.

    {b Tenant fairness.} {!push} optionally tags a job with a tenant.
    Jobs are kept in per-tenant lanes and dispatched by
    deficit-round-robin over the lanes; with unit job cost DRR reduces
    to exact per-tenant round-robin, so one tenant's burst cannot
    starve another's single pending job. [create]'s [tenant_pending]
    cap bounds one tenant's lane (excess rejected [Overloaded] even
    when the global queue has room) and [tenant_active] bounds one
    tenant's concurrently executing jobs (its lane is skipped until a
    completion frees a slot). Untagged jobs share one lane, so a queue
    used without tenants behaves exactly like the original global
    FIFO.

    This pool is deliberately not {!Parallel}: that module runs one
    index-based task set at a time to completion (a compute barrier),
    while this one runs an open-ended stream of independent,
    long-lived jobs (connections) concurrently. Jobs may themselves
    enter [Parallel] sections; the two pools do not interact beyond
    [Parallel]'s own reentrancy guard.

    Thread safety: every operation may be called from any domain.
    Job-body exceptions are contained (counted in {!failures}, the
    worker survives). *)

type 'a t

type push_result =
  | Accepted  (** queued (or about to be picked up by an idle worker) *)
  | Overloaded  (** pending queue full — job rejected, run nothing *)
  | Stopped  (** {!shutdown} already began — job rejected *)

val create :
  workers:int ->
  max_pending:int ->
  ?tenant_pending:int ->
  ?tenant_active:int ->
  ('a -> unit) ->
  'a t
(** [create ~workers ~max_pending run] spawns [workers] domains that
    execute [run job] for each accepted job, in FIFO order of
    acceptance within a tenant lane (and globally when all jobs share
    one lane). A push is accepted when a worker is free (fewer than
    [workers] jobs executing) or the pending queue holds fewer than
    [max_pending] jobs, so at most [workers + max_pending] accepted
    jobs are ever waiting to start; [max_pending = 0] rejects exactly
    when every worker is busy. [tenant_pending] additionally bounds
    one tenant's pending lane; [tenant_active] bounds one tenant's
    executing jobs (omitted caps are unlimited). Raises
    [Invalid_argument] if [workers < 1], [max_pending < 0],
    [tenant_pending < 0] or [tenant_active < 1]. *)

val push : ?tenant:string -> 'a t -> 'a -> push_result
(** Submit a job; never blocks. [tenant] selects the fairness lane
    (default: the shared anonymous lane). *)

val depth : 'a t -> int
(** Jobs accepted but not yet started. *)

val active : 'a t -> int
(** Jobs currently being executed by a worker. *)

val rejected : 'a t -> int
(** Pushes that returned [Overloaded] or [Stopped]. *)

val tenant_rejected : 'a t -> int
(** The subset of {!rejected} caused by a [tenant_pending] lane cap
    rather than the global bound. *)

val completed : 'a t -> int
(** Jobs whose [run] returned or raised. *)

val failures : 'a t -> int
(** Jobs whose [run] raised. *)

val shutdown : 'a t -> unit
(** Stop accepting new jobs, wait until every already-accepted job
    (pending and active) has finished, then join the worker domains.
    Idempotent; concurrent calls all block until the drain completes. *)
