(** Bounded worker pool on OCaml 5 domains.

    A fixed set of worker domains drains a bounded FIFO of jobs. The
    bound is the backpressure mechanism: {!push} never blocks the
    producer and never queues silently past the limit — when every
    worker is busy and the pending queue is full it returns
    [Overloaded] immediately, so the caller can answer the client with
    a structured rejection instead of letting latency grow without
    bound. Built for [Ppdc_server.Transport]'s accept loop, where a job
    is one accepted connection, but the module is generic.

    This pool is deliberately not {!Parallel}: that module runs one
    index-based task set at a time to completion (a compute barrier),
    while this one runs an open-ended stream of independent,
    long-lived jobs (connections) concurrently. Jobs may themselves
    enter [Parallel] sections; the two pools do not interact beyond
    [Parallel]'s own reentrancy guard.

    Thread safety: every operation may be called from any domain.
    Job-body exceptions are contained (counted in {!failures}, the
    worker survives). *)

type 'a t

type push_result =
  | Accepted  (** queued (or about to be picked up by an idle worker) *)
  | Overloaded  (** pending queue full — job rejected, run nothing *)
  | Stopped  (** {!shutdown} already began — job rejected *)

val create : workers:int -> max_pending:int -> ('a -> unit) -> 'a t
(** [create ~workers ~max_pending run] spawns [workers] domains that
    execute [run job] for each accepted job, in FIFO order of
    acceptance. A push is accepted when a worker is free (fewer than
    [workers] jobs executing) or the pending queue holds fewer than
    [max_pending] jobs, so at most [workers + max_pending] accepted
    jobs are ever waiting to start; [max_pending = 0] rejects exactly
    when every worker is busy. Raises [Invalid_argument] if
    [workers < 1] or [max_pending < 0]. *)

val push : 'a t -> 'a -> push_result
(** Submit a job; never blocks. *)

val depth : 'a t -> int
(** Jobs accepted but not yet started. *)

val active : 'a t -> int
(** Jobs currently being executed by a worker. *)

val rejected : 'a t -> int
(** Pushes that returned [Overloaded] or [Stopped]. *)

val completed : 'a t -> int
(** Jobs whose [run] returned or raised. *)

val failures : 'a t -> int
(** Jobs whose [run] raised. *)

val shutdown : 'a t -> unit
(** Stop accepting new jobs, wait until every already-accepted job
    (pending and active) has finished, then join the worker domains.
    Idempotent; concurrent calls all block until the drain completes. *)
