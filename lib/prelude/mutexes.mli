(** The one sanctioned way to hold a mutex.

    [with_lock m f] runs [f ()] with [m] held and releases [m] on every
    exit path, exceptional ones included. Using it (instead of a bare
    [Mutex.lock]/[Mutex.unlock] pair) is what makes a critical section
    visible to ppdc-lint's concurrency rules: R7 (exception-unsafe
    locking) accepts this shape without proving the body non-raising,
    and R6 (lock order) learns which lock class is held inside [f] from
    the [@ppdc.guards] annotation on [m]'s binding or record field.

    [Condition.wait] works as usual inside [f] — it releases and
    re-acquires the same mutex internally, so the protect-on-exit
    discipline is preserved. *)

val with_lock : Mutex.t -> (unit -> 'a) -> 'a
