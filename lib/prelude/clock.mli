(** Monotonic time source for durations and deadlines.

    [Unix.gettimeofday] follows the wall clock: an NTP step (or a
    manual clock adjustment) moves it backwards or forwards by an
    arbitrary amount, which turns measured latencies negative and makes
    absolute deadlines fire early or never. Everything in this repo
    that measures a {e duration} or arms a {e deadline} — request
    latency, uptime, [Obs] spans, the server's admission-control
    deadlines, bench timers — goes through this module instead, which
    reads [CLOCK_MONOTONIC] via a local C stub (the OCaml [Unix]
    library does not expose [clock_gettime]).

    The epoch is arbitrary (typically system boot): values are only
    meaningful relative to other {!now} readings from the same process.
    Never mix them with [Unix.gettimeofday] instants. *)

val now : unit -> float
(** Seconds on the monotonic clock, arbitrary epoch. Successive calls
    never decrease. Resolution is the platform clock's (nanoseconds on
    Linux), well below the double-precision ulp at typical uptimes. *)

val elapsed_s : since:float -> float
(** [elapsed_s ~since:t0] is [now () -. t0] — non-negative whenever
    [t0] came from {!now} earlier in this process. *)
