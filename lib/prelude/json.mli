(** Minimal JSON tree: parser, compact one-line printer, helpers.

    Enough JSON for the repo's own wire formats — the [ppdc.metrics/1]
    NDJSON written by {!Obs} and the [ppdc.rpc/1] protocol spoken by
    [Ppdc_server] — without pulling a JSON dependency into the prelude.
    Objects, arrays, strings, numbers, booleans and null are supported;
    every number is an OCaml [float] (ints round-trip exactly up to
    2{^53}).

    Printing is the inverse of parsing for finite data: for any [t]
    whose [Num]s are finite, [parse (to_string t)] is {!equal} to [t].
    Non-finite numbers print as [null] (JSON has no NaN/infinity), so
    they do not round-trip — by design, matching the metrics schema. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> t
(** Raises [Failure] on malformed input or trailing garbage. *)

val to_string : t -> string
(** Compact rendering, no whitespace, no trailing newline. The result
    never contains a raw newline (strings are escaped), so it is safe as
    one NDJSON line. *)

val to_buffer : Buffer.t -> t -> unit
(** [to_string] into an existing buffer. *)

val member : string -> t -> t option
(** Field lookup on [Obj] (first match); [None] otherwise. *)

val equal : t -> t -> bool
(** Structural equality; [Num]s compare with [Float.compare] (so equal
    NaNs are equal and [0. <> -0.]), object fields must match in order. *)

val escape_into : Buffer.t -> string -> unit
(** Append a quoted, escaped JSON string literal — the string printer
    the NDJSON writer in {!Obs} builds on. *)

val float_repr : float -> string
(** Shortest decimal representation that round-trips through
    [float_of_string]; ["null"] for non-finite values. *)
