(* ppdc-lint R7 recognizes exactly this lock/protect shape; every other
   critical section in the codebase goes through [with_lock] so the
   exception path provably releases the mutex. *)

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f
