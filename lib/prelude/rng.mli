(** Deterministic, splittable pseudo-random number generator.

    Every experiment in this repository is seeded, so results are exactly
    reproducible run-to-run. The implementation is splitmix64, which has a
    64-bit state, passes BigCrush, and supports cheap stream splitting —
    convenient for giving each trial of an experiment an independent
    stream derived from one master seed. *)

type t

val create : int -> t
(** [create seed] is a generator initialized from [seed]. Two generators
    created with the same seed produce identical streams. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [lo, hi). Requires [lo <= hi]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)
