module Rng = Ppdc_prelude.Rng

type t = int array

let validate problem p =
  let n = Problem.n problem in
  if Array.length p <> n then
    invalid_arg
      (Printf.sprintf "Placement.validate: length %d, expected %d"
         (Array.length p) n);
  let seen = Hashtbl.create n in
  Array.iter
    (fun s ->
      if not (Problem.is_candidate problem s) then
        invalid_arg
          (Printf.sprintf "Placement.validate: %d is not a candidate switch" s);
      if Hashtbl.mem seen s then
        invalid_arg
          (Printf.sprintf "Placement.validate: switch %d used twice" s);
      Hashtbl.add seen s ())
    p

let is_valid problem p =
  match validate problem p with
  | () -> true
  | exception Invalid_argument _ -> false

let equal = ( = )

let random ~rng problem =
  let switches = Problem.switches problem in
  Rng.shuffle rng switches;
  Array.sub switches 0 (Problem.n problem)

let pp fmt p =
  Format.fprintf fmt "[%s]"
    (String.concat " "
       (List.mapi (fun j s -> Printf.sprintf "f%d@s%d" (j + 1) s)
          (Array.to_list p)))
