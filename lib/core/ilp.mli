(** ILP export (CPLEX LP file format).

    The related work the paper contrasts with solves TOP/TOM-style
    problems as ILPs "which lack scalability"; this module emits those
    formulations so they can be fed to an external solver (CPLEX,
    Gurobi, HiGHS, SCIP all read the LP format) — to sanity-check the
    branch-and-bound optimum, or to experience the scalability cliff
    first-hand.

    Formulation (assignment form): binaries [x_j_s] = "VNF j rests on
    switch s", with one-switch-per-VNF and one-VNF-per-switch
    constraints. The chain-internal term [c(p(j), p(j+1))] is quadratic
    in x, linearized with [y_j_s_t = x_j_s · x_{j+1}_t]
    (McCormick: [y ≥ x_j_s + x_{j+1}_t − 1], [y ≤ x_j_s],
    [y ≤ x_{j+1}_t], [y ≥ 0]). The TOM variant adds the linear
    migration term [μ · c(current(j), s) · x_j_s].

    Variable count: [n·|V_s| + (n−1)·|V_s|²] — the quadratic blow-up is
    the scalability wall the paper's DP sidesteps. *)

val top_lp : Problem.t -> rates:float array -> string
(** The TOP instance as an LP document. *)

val tom_lp :
  Problem.t -> rates:float array -> mu:float -> current:Placement.t -> string
(** The TOM instance (Eq. 8) as an LP document. *)

val variable_count : Problem.t -> int
(** Number of variables either export declares. *)

val constraint_count : Problem.t -> int
(** Number of constraint rows either export declares. *)
