(** Algo. 2 — the DP stroll heuristic for TOP-1 (and the engine inside
    Algo. 3).

    Finding a cheapest s–t stroll that visits [n] *distinct* switches is
    NP-hard (the n-stroll problem), but a cheapest s–t stroll with a fixed
    *edge count* is polynomial. Algo. 2 therefore works on the metric
    completion of the PPDC (edge [(u,v)] costs [c(u,v)]) and searches for
    the cheapest stroll with [e = n+1] edges, escalating [e] until the
    stroll visits [n] distinct switches. Immediate backtracking
    ([... → u → x → u → ...]) is forbidden (line 6 of Algo. 2), which
    empirically keeps the walks from looping instead of exploring.

    The DP table for a fixed destination [t] simultaneously answers
    queries from *every* source, which Algo. 3 exploits: one [prepare]
    per candidate egress switch serves all candidate ingress switches.
    [prepare] is O(|V''|²) per edge level; a query is O(e). *)

type table

type workspace
(** Reusable buffer bundle backing a {!table}. Preparing into the same
    workspace again rebuilds the table in place (buffers only grow), so
    per-destination fan-outs — one table per candidate egress in
    Algo. 3 — allocate nothing after the first round. A workspace must
    not be shared between concurrent preparations; give each domain its
    own (e.g. via [Domain.DLS]). *)

val workspace : unit -> workspace
(** A fresh, empty workspace. *)

val prepare_in :
  workspace ->
  cm:Ppdc_topology.Cost_matrix.t ->
  dst:int ->
  candidates:int array ->
  extras:int array ->
  table
(** Like {!prepare}, but (re)builds the table inside [workspace] instead
    of allocating. The returned table aliases the workspace: it is valid
    until the next [prepare_in] on the same workspace. *)

val prepare :
  cm:Ppdc_topology.Cost_matrix.t ->
  dst:int ->
  candidates:int array ->
  extras:int array ->
  table
(** [prepare ~cm ~dst ~candidates ~extras] builds the lazily-extended DP
    table on the metric completion over [candidates ∪ extras ∪ {dst}].
    [candidates] are the switches that count towards the "n distinct"
    requirement (and may be transited); [extras] are transit-only nodes,
    e.g. a source host. Raises [Invalid_argument] if [candidates] is
    empty or contains duplicates. *)

type result = {
  cost : float;  (** metric length of the stroll found *)
  switches : int array;
      (** the first [n] distinct counting switches, in visit order — the
          VNF locations [f_1 .. f_n] *)
  walk : int array;  (** the full stroll node sequence, [src] to [dst] *)
  edges : int;  (** number of edges of the stroll *)
}

val query :
  table -> src:int -> n:int -> ?exclude:int array -> ?max_edges:int -> unit ->
  result option
(** Cheapest stroll from [src] (which must be a node of the table) to the
    table's destination visiting at least [n] distinct counting switches,
    where switches in [exclude] (and the physical [src]/[dst] nodes) do
    not count. [None] if no such stroll is found within [max_edges]
    (default [2·n + 8]) edges.

    [n = 0] asks for the direct hop (or the empty stroll when
    [src = dst]). The edge budget still applies: [max_edges] defaults to
    [1] and the result is [None] when the required stroll does not fit
    (e.g. [~max_edges:0] with [src <> dst]). [exclude] only withdraws
    counting credit, so with [n = 0] it is accepted but cannot affect
    the answer. *)

val nearest_neighbour :
  cm:Ppdc_topology.Cost_matrix.t ->
  src:int ->
  dst:int ->
  n:int ->
  eligible:int array ->
  result
(** Greedy stroll: hop to the closest unused eligible switch until [n]
    are collected, then to [dst]. Always succeeds when [eligible] holds
    at least [n] distinct switches, and raises [Invalid_argument]
    otherwise (rather than failing mid-walk on an undersized topology);
    used as the safety net when the DP's edge budget runs out, and as a
    comparison point in tests. *)

val solve :
  cm:Ppdc_topology.Cost_matrix.t ->
  src:int ->
  dst:int ->
  n:int ->
  ?candidates:int array ->
  ?max_edges:int ->
  unit ->
  result
(** One-shot TOP-1 entry point: prepares a table (candidates default to
    all switches of the graph) and queries it. If the DP fails to expose
    [n] distinct switches within the edge budget, falls back to a
    nearest-neighbour stroll so a valid result is always produced.
    Raises [Invalid_argument] if fewer than [n] counting switches
    exist. *)
