(** The paper's cost model: Eq. 1 and Eq. 8.

    With placement [p], the total policy-preserving communication cost is

    {v
      C_a(p) = Σ_i λ_i · Σ_{j<n} c(p(j), p(j+1))
             + Σ_i λ_i · ( c(s(v_i), p(1)) + c(p(n), s(v'_i)) )        (Eq. 1)
    v}

    and migrating from [p] to [m] additionally costs
    [C_b(p, m) = μ · Σ_j c(p(j), m(j))], for a total of
    [C_t(p, m) = C_b(p, m) + C_a(m)] (Eq. 8).

    The per-switch attachment sums [A_in(s) = Σ_i λ_i c(s(v_i), s)] and
    [A_out(s) = Σ_i λ_i c(s, s(v'_i))] appear in every placement
    algorithm's inner loop, so they are precomputed once per rate vector
    in an {!attach} value. *)

type attach = {
  a_in : float array;
      (** indexed by node id; [a_in.(s) = Σ_i λ_i · c(s(v_i), s)] *)
  a_out : float array;  (** [a_out.(s) = Σ_i λ_i · c(s, s(v'_i))] *)
  total_rate : float;  (** [Λ = Σ_i λ_i] *)
}

val attach : Problem.t -> rates:float array -> attach
(** O(l · |V_s|). Raises [Invalid_argument] if [rates] has a length other
    than the number of flows or contains a negative or non-finite rate. *)

val chain_cost : Problem.t -> Placement.t -> float
(** [Σ_{j<n} c(p(j), p(j+1))] — the chain-internal path cost, rate-free. *)

val comm_cost_with_attach : Problem.t -> attach -> Placement.t -> float
(** [C_a(p)] using precomputed attachments: O(n). *)

val comm_cost : Problem.t -> rates:float array -> Placement.t -> float
(** [C_a(p)] from scratch (Eq. 1): O(l + n). *)

val migration_cost : Problem.t -> mu:float -> src:Placement.t -> dst:Placement.t -> float
(** [C_b(src, dst) = μ · Σ_j c(src.(j), dst.(j))]. Raises
    [Invalid_argument] if the placements have different lengths or
    [mu < 0]. *)

val total_cost :
  Problem.t -> rates:float array -> mu:float -> src:Placement.t -> dst:Placement.t -> float
(** [C_t(src, dst) = C_b(src, dst) + C_a(dst)] (Eq. 8). *)

val moved : src:Placement.t -> dst:Placement.t -> int
(** Number of VNFs whose switch differs between the two placements — the
    migration count reported in Fig. 11(b). *)
