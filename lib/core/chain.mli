(** Service function chains (SFCs).

    An SFC [(f_1, ..., f_n)] is an ordered sequence of VNFs that every VM
    flow must traverse in order; [f_1] is the ingress VNF and [f_n] the
    egress VNF. Real-world chains combine *access* functions (firewall,
    IDS, ...) and *application* functions (cache, load balancer, ...); a
    typical chain has 5–6 access plus 4–5 application functions, which is
    why the paper evaluates up to n = 13. *)

type vnf_kind = Access | Application

type t

val make : string array -> t
(** A chain with the given VNF names, in traversal order. Raises
    [Invalid_argument] on an empty array or duplicate names. *)

val typical : int -> t
(** [typical n] is a realistic n-VNF chain drawn from the standard
    catalogue (firewall, IDS, NAT, WAN optimizer, proxy, cache, load
    balancer, DPI, ...), access functions first. Supports
    [1 <= n <= 13]. *)

val length : t -> int
(** The [n] of the chain. *)

val name : t -> int -> string
(** [name c j] is the name of [f_{j+1}] (0-based index). *)

val kind : t -> int -> vnf_kind

val names : t -> string array

val pp : Format.formatter -> t -> unit
(** Renders as [f1 -> f2 -> ... -> fn]. *)
