module Cost_matrix = Ppdc_topology.Cost_matrix
module Graph = Ppdc_topology.Graph

type outcome = {
  cost : float;
  switches : int array;
  proven_optimal : bool;
  explored : int;
}

let solve ~cm ~src ~dst ~n ?candidates ?(budget = 20_000_000) ?incumbent () =
  if n < 0 then invalid_arg "Stroll_exact.solve: negative n";
  let candidates =
    match candidates with
    | Some c -> Array.of_list (List.filter (fun v -> v <> src && v <> dst) (Array.to_list c))
    | None ->
        let all = Graph.switches (Cost_matrix.graph cm) in
        Array.of_list
          (List.filter (fun v -> v <> src && v <> dst) (Array.to_list all))
  in
  let k = Array.length candidates in
  if k < n then invalid_arg "Stroll_exact.solve: not enough candidates";
  if n = 0 then
    {
      cost = Cost_matrix.cost cm src dst;
      switches = [||];
      proven_optimal = true;
      explored = 0;
    }
  else begin
    let d u v = Cost_matrix.cost cm u v in
    (* Admissible bound ingredients. *)
    let delta_min = ref infinity in
    for i = 0 to k - 1 do
      for j = 0 to k - 1 do
        if i <> j then delta_min := Float.min !delta_min (d candidates.(i) candidates.(j))
      done
    done;
    let min_to_dst =
      Array.fold_left (fun acc x -> Float.min acc (d x dst)) infinity candidates
    in
    let delta_min = if k > 1 then !delta_min else 0.0 in
    (* Children of a node, nearest first, cached per "from" node. *)
    let order_cache = Hashtbl.create (k + 2) in
    let ordered_from u =
      match Hashtbl.find_opt order_cache u with
      | Some o -> o
      | None ->
          let o = Array.copy candidates in
          Array.sort
            (fun a b ->
              match Float.compare (d u a) (d u b) with
              | 0 -> Int.compare a b
              | c -> c)
            o;
          Hashtbl.add order_cache u o;
          o
    in
    let best_cost = ref infinity in
    let best_seq = ref [||] in
    (match incumbent with
    | Some (c, seq) when Array.length seq = n ->
        best_cost := c;
        best_seq := Array.copy seq
    | Some _ | None -> ());
    let used = Hashtbl.create n in
    let chosen = Array.make n (-1) in
    let explored = ref 0 in
    let exhausted = ref false in
    let rec dfs depth current partial =
      if !explored >= budget then exhausted := true
      else begin
        incr explored;
        if depth = n then begin
          let total = partial +. d current dst in
          if total < !best_cost then begin
            best_cost := total;
            best_seq := Array.copy chosen
          end
        end
        else begin
          let remaining_after_pick = n - depth - 1 in
          let order = ordered_from current in
          let i = ref 0 in
          let stop = ref false in
          while (not !stop) && !i < k do
            let x = order.(!i) in
            incr i;
            if not (Hashtbl.mem used x) then begin
              let partial' = partial +. d current x in
              let bound =
                partial'
                +. (float_of_int remaining_after_pick *. delta_min)
                +. min_to_dst
              in
              (* Children are nearest-first, so once even the cheapest
                 extension cannot beat the incumbent, no later sibling
                 can either. *)
              if bound >= !best_cost then stop := true
              else begin
                Hashtbl.add used x ();
                chosen.(depth) <- x;
                dfs (depth + 1) x partial';
                Hashtbl.remove used x
              end;
              if !exhausted then stop := true
            end
          done
        end
      end
    in
    dfs 0 src 0.0;
    if Array.length !best_seq <> n then
      (* Budget exhausted before any complete solution and no incumbent:
         fall back to the greedy sequence so the result is well-formed. *)
      begin
        let greedy =
          Stroll_dp.nearest_neighbour ~cm ~src ~dst ~n ~eligible:candidates
        in
        best_cost := greedy.Stroll_dp.cost;
        best_seq := greedy.Stroll_dp.switches
      end;
    {
      cost = !best_cost;
      switches = !best_seq;
      proven_optimal = not !exhausted;
      explored = !explored;
    }
  end
