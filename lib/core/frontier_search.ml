type outcome = {
  migration : Placement.t;
  total_cost : float;
  migration_cost : float;
  comm_cost : float;
  moved : int;
  frontiers_evaluated : int;
  truncated : bool;
}

let migrate problem ~rates ~mu ~current ?(max_combinations = 100_000) ?rescore
    ?pair_limit () =
  Placement.validate problem current;
  let att = Cost.attach problem ~rates in
  let target =
    (Placement_dp.solve problem ~rates ?rescore ?pair_limit ()).placement
  in
  let paths = Frontier.migration_paths problem ~src:current ~dst:target in
  let n = Array.length paths in
  let frontier = Array.make n (-1) in
  let best = ref (Array.copy current) in
  let best_total = ref infinity in
  let evaluated = ref 0 in
  let truncated = ref false in
  (* The Definition-1 set contains the parallel frontiers; evaluate them
     up front so a truncated enumeration can never report worse than the
     subset Algo. 5 scans. *)
  let consider row =
    if not (Frontier.has_collision row) && Placement.is_valid problem row then begin
      let total =
        Cost.migration_cost problem ~mu ~src:current ~dst:row
        +. Cost.comm_cost_with_attach problem att row
      in
      if total < !best_total then begin
        best_total := total;
        best := Array.copy row
      end
    end
  in
  Array.iter consider (Frontier.parallel paths);
  (* DFS over the product of the per-VNF paths, pruning in-branch
     collisions with an occupancy table. *)
  let occupied = Hashtbl.create n in
  let rec enumerate j =
    if !evaluated >= max_combinations then truncated := true
    else if j = n then begin
      incr evaluated;
      let total =
        Cost.migration_cost problem ~mu ~src:current ~dst:frontier
        +. Cost.comm_cost_with_attach problem att frontier
      in
      if total < !best_total then begin
        best_total := total;
        best := Array.copy frontier
      end
    end
    else
      Array.iter
        (fun s ->
          if (not (Hashtbl.mem occupied s)) && not !truncated then begin
            Hashtbl.add occupied s ();
            frontier.(j) <- s;
            enumerate (j + 1);
            Hashtbl.remove occupied s
          end)
        paths.(j)
  in
  enumerate 0;
  (* "Stay" is collision-free and always enumerable (it is the all-first
     combination), but guard against a truncation landing before it. *)
  let stay = Cost.comm_cost_with_attach problem att current in
  if stay < !best_total then begin
    best_total := stay;
    best := Array.copy current
  end;
  let migration = !best in
  let migration_cost =
    Cost.migration_cost problem ~mu ~src:current ~dst:migration
  in
  {
    migration;
    total_cost = !best_total;
    migration_cost;
    comm_cost = !best_total -. migration_cost;
    moved = Cost.moved ~src:current ~dst:migration;
    frontiers_evaluated = !evaluated;
    truncated = !truncated;
  }
