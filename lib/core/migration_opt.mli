(** Algo. 6 — optimal VNF migration (the "Optimal" benchmark for TOM).

    Minimizes [C_t(p, m) = μ·Σ c(p(j), m(j)) + C_a(m)] over all valid
    placements [m], with the same branch-and-bound machinery as
    {!Placement_opt} plus the per-position migration term (whose
    admissible lower bound is 0, attained by leaving the VNF in place).
    The incumbent is seeded with the mPareto solution, so within budget
    the result is provably optimal and never worse than mPareto. *)

type outcome = {
  migration : Placement.t;
  cost : float;  (** [C_t(p, migration)] *)
  proven_optimal : bool;
  explored : int;
}

val solve :
  Problem.t ->
  rates:float array ->
  mu:float ->
  current:Placement.t ->
  ?budget:int ->
  ?incumbent:Placement.t ->
  unit ->
  outcome
(** [budget] defaults to 20 million search nodes; [incumbent] defaults to
    the mPareto frontier solution. *)
