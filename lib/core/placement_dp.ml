module Parallel = Ppdc_prelude.Parallel
module Obs = Ppdc_prelude.Obs

let stroll_workspace = Domain.DLS.new_key Stroll_dp.workspace

type outcome = {
  placement : Placement.t;
  cost : float;
  objective : float;
}

(* The k switches with the smallest (float) key. Monomorphic on purpose:
   a polymorphic [compare] here would silently misorder NaN keys — the
   generalized-helper variant of the Stats.percentile bug that ppdc-lint
   R1 cannot see through instantiation. *)
let top_k (keys : float array) switches k =
  let sorted = Array.copy switches in
  Array.sort
    (fun a b ->
      match Float.compare keys.(a) keys.(b) with
      | 0 -> Int.compare a b
      | c -> c)
    sorted;
  if k >= Array.length sorted then sorted else Array.sub sorted 0 k

let solve_n1 (att : Cost.attach) switches =
  let best = ref infinity and best_switch = ref (-1) in
  Array.iter
    (fun s ->
      let value = att.a_in.(s) +. att.a_out.(s) in
      if value < !best then begin
        best := value;
        best_switch := s
      end)
    switches;
  { placement = [| !best_switch |]; cost = !best; objective = !best }

let solve_n2 problem att ingresses egresses =
  let best = ref infinity and best_pair = ref (-1, -1) in
  let tried = ref 0 in
  Array.iter
    (fun s ->
      Array.iter
        (fun t ->
          if s <> t then begin
            incr tried;
            let value =
              att.Cost.a_in.(s)
              +. (att.Cost.total_rate *. Problem.cost problem s t)
              +. att.Cost.a_out.(t)
            in
            if value < !best then begin
              best := value;
              best_pair := (s, t)
            end
          end)
        egresses)
    ingresses;
  Obs.incr ~by:!tried "placement_dp.pairs_tried";
  if Float.equal !best infinity then
    invalid_arg
      "Placement_dp.solve: no feasible ingress/egress pair (widen pair_limit)";
  let s, t = !best_pair in
  { placement = [| s; t |]; cost = !best; objective = !best }

let solve problem ~rates ?(rescore = false) ?pair_limit ?max_edges () =
  Obs.time "placement_dp.solve" @@ fun () ->
  let att = Cost.attach problem ~rates in
  let switches = Problem.switches problem in
  let n = Problem.n problem in
  let ingresses, egresses =
    match pair_limit with
    | None -> (switches, switches)
    | Some k -> (top_k att.a_in switches k, top_k att.a_out switches k)
  in
  if n = 1 then solve_n1 att switches
  else if n = 2 then solve_n2 problem att ingresses egresses
  else begin
    let cm = Problem.cm problem in
    if Array.length switches < n then
      invalid_arg
        (Printf.sprintf
           "Placement_dp.solve: chain of %d VNFs needs %d candidate \
            switches, have %d"
           n n (Array.length switches));
    (* One DP table per candidate egress, each answering every ingress
       query — embarrassingly parallel across egresses. Each task scans
       its ingresses in the original inner-loop order and keeps the
       first strict improvement, and the per-egress winners are reduced
       in egress index order with the same strict [<], so the outcome is
       bit-identical to the sequential double loop for any
       PPDC_DOMAINS. *)
    let egress_best egress =
      (* Re-prepare into this domain's workspace: the per-egress fan-out
         rebuilds the DP table in place instead of allocating one per
         egress. Tasks on different domains get distinct workspaces, so
         the parallel map stays race-free. *)
      let table =
        Stroll_dp.prepare_in
          (Domain.DLS.get stroll_workspace)
          ~cm ~dst:egress ~candidates:switches ~extras:[||]
      in
      let local = ref None in
      let consider ~ingress ~middles ~stroll_cost =
        Obs.incr "placement_dp.pairs_tried";
        let placement = Array.concat [ [| ingress |]; middles; [| egress |] ] in
        let objective =
          att.a_in.(ingress)
          +. (att.total_rate *. stroll_cost)
          +. att.a_out.(egress)
        in
        let actual = Cost.comm_cost_with_attach problem att placement in
        let key = if rescore then actual else objective in
        match !local with
        | Some (best_key, _, _, _) when key >= best_key -> ()
        | _ -> local := Some (key, actual, placement, objective)
      in
      Array.iter
        (fun ingress ->
          if ingress <> egress then begin
            match
              Stroll_dp.query table ~src:ingress ~n:(n - 2) ?max_edges ()
            with
            | Some r ->
                consider ~ingress ~middles:r.switches ~stroll_cost:r.cost
            | None ->
                (* Edge budget exhausted for this pair: greedy filler so
                   the pair still competes. *)
                let eligible =
                  Array.of_list
                    (List.filter
                       (fun v -> v <> ingress && v <> egress)
                       (Array.to_list switches))
                in
                let r =
                  Stroll_dp.nearest_neighbour ~cm ~src:ingress ~dst:egress
                    ~n:(n - 2) ~eligible
                in
                consider ~ingress ~middles:r.switches ~stroll_cost:r.cost
          end)
        ingresses;
      !local
    in
    let best =
      Parallel.map_reduce
        ~n:(Array.length egresses)
        ~map:(fun ei -> egress_best egresses.(ei))
        ~init:None
        ~combine:(fun acc candidate ->
          match (acc, candidate) with
          | None, c -> c
          | a, None -> a
          | Some (best_key, _, _, _), Some (key, _, _, _) when key >= best_key
            ->
              acc
          | _, c -> c)
    in
    match best with
    | Some (_, cost, placement, objective) -> { placement; cost; objective }
    | None -> invalid_arg "Placement_dp.solve: no feasible ingress/egress pair"
  end
