type outcome = {
  placement : Placement.t;
  cost : float;
  objective : float;
}

(* The k switches with the smallest key. *)
let top_k keys switches k =
  let sorted = Array.copy switches in
  Array.sort
    (fun a b ->
      match compare keys.(a) keys.(b) with 0 -> compare a b | c -> c)
    sorted;
  if k >= Array.length sorted then sorted else Array.sub sorted 0 k

let solve_n1 (att : Cost.attach) switches =
  let best = ref infinity and best_switch = ref (-1) in
  Array.iter
    (fun s ->
      let value = att.a_in.(s) +. att.a_out.(s) in
      if value < !best then begin
        best := value;
        best_switch := s
      end)
    switches;
  { placement = [| !best_switch |]; cost = !best; objective = !best }

let solve_n2 problem att ingresses egresses =
  let best = ref infinity and best_pair = ref (-1, -1) in
  Array.iter
    (fun s ->
      Array.iter
        (fun t ->
          if s <> t then begin
            let value =
              att.Cost.a_in.(s)
              +. (att.Cost.total_rate *. Problem.cost problem s t)
              +. att.Cost.a_out.(t)
            in
            if value < !best then begin
              best := value;
              best_pair := (s, t)
            end
          end)
        egresses)
    ingresses;
  let s, t = !best_pair in
  { placement = [| s; t |]; cost = !best; objective = !best }

let solve problem ~rates ?(rescore = false) ?pair_limit ?max_edges () =
  let att = Cost.attach problem ~rates in
  let switches = Problem.switches problem in
  let n = Problem.n problem in
  let ingresses, egresses =
    match pair_limit with
    | None -> (switches, switches)
    | Some k -> (top_k att.a_in switches k, top_k att.a_out switches k)
  in
  if n = 1 then solve_n1 att switches
  else if n = 2 then solve_n2 problem att ingresses egresses
  else begin
    let cm = Problem.cm problem in
    let best = ref infinity in
    let best_placement = ref None in
    let best_cost = ref infinity in
    let consider ~ingress ~egress ~middles ~stroll_cost =
      let placement = Array.concat [ [| ingress |]; middles; [| egress |] ] in
      let objective =
        att.a_in.(ingress)
        +. (att.total_rate *. stroll_cost)
        +. att.a_out.(egress)
      in
      let actual = Cost.comm_cost_with_attach problem att placement in
      let key = if rescore then actual else objective in
      if key < !best then begin
        best := key;
        best_cost := actual;
        best_placement := Some (placement, objective)
      end
    in
    Array.iter
      (fun egress ->
        let table =
          Stroll_dp.prepare ~cm ~dst:egress ~candidates:switches ~extras:[||]
        in
        Array.iter
          (fun ingress ->
            if ingress <> egress then begin
              match
                Stroll_dp.query table ~src:ingress ~n:(n - 2) ?max_edges ()
              with
              | Some r ->
                  consider ~ingress ~egress ~middles:r.switches
                    ~stroll_cost:r.cost
              | None ->
                  (* Edge budget exhausted for this pair: greedy filler so
                     the pair still competes. *)
                  let eligible =
                    Array.of_list
                      (List.filter
                         (fun v -> v <> ingress && v <> egress)
                         (Array.to_list switches))
                  in
                  let r =
                    Stroll_dp.nearest_neighbour ~cm ~src:ingress ~dst:egress
                      ~n:(n - 2) ~eligible
                  in
                  consider ~ingress ~egress ~middles:r.switches
                    ~stroll_cost:r.cost
            end)
          ingresses)
      egresses;
    match !best_placement with
    | Some (placement, objective) ->
        { placement; cost = !best_cost; objective }
    | None -> invalid_arg "Placement_dp.solve: no feasible ingress/egress pair"
  end
