type vnf_kind = Access | Application

type t = { vnf_names : string array; kinds : vnf_kind array }

(* Standard data-center SFC catalogue (IETF SFC use-cases draft): access
   functions guard the perimeter, application functions optimize
   delivery. *)
let catalogue =
  [|
    ("firewall", Access);
    ("ids", Access);
    ("nat", Access);
    ("vpn-gateway", Access);
    ("dpi", Access);
    ("ddos-scrubber", Access);
    ("cache-proxy", Application);
    ("load-balancer", Application);
    ("wan-optimizer", Application);
    ("tls-terminator", Application);
    ("video-transcoder", Application);
    ("http-header-enricher", Application);
    ("packet-monitor", Application);
  |]
[@@ppdc.domain_safe
  "array literal initialised at module load and never mutated; \
   read-only catalogue shared freely across domains"]

let classify name =
  match Array.find_opt (fun (n, _) -> n = name) catalogue with
  | Some (_, k) -> k
  | None -> Application

let make vnf_names =
  if Array.length vnf_names = 0 then invalid_arg "Chain.make: empty chain";
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun n ->
      if Hashtbl.mem seen n then
        invalid_arg (Printf.sprintf "Chain.make: duplicate VNF %S" n);
      Hashtbl.add seen n ())
    vnf_names;
  { vnf_names = Array.copy vnf_names; kinds = Array.map classify vnf_names }

let typical n =
  if n < 1 || n > Array.length catalogue then
    invalid_arg
      (Printf.sprintf "Chain.typical: n must be in [1, %d]"
         (Array.length catalogue));
  make (Array.init n (fun i -> fst catalogue.(i)))

let length c = Array.length c.vnf_names

let name c j = c.vnf_names.(j)

let kind c j = c.kinds.(j)

let names c = Array.copy c.vnf_names

let pp fmt c =
  Format.fprintf fmt "%s" (String.concat " -> " (Array.to_list c.vnf_names))
