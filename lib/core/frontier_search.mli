(** Exhaustive search over *all* migration frontiers (Definition 1).

    Algo. 5 restricts itself to the [h_max] *parallel* frontiers for
    tractability; Definition 1 actually allows any combination of one
    switch per migration path — [Π_j h_j] frontiers. This module
    enumerates that full set (up to a combination cap) so the cost of
    the parallel restriction can be measured: the [abl_parallel]
    ablation shows how often a non-parallel frontier beats the parallel
    ones, and by how much.

    Note the full frontier set still only contains stop-points along
    each VNF's shortest path to its Algo. 3 target — Algo. 6
    ([Migration_opt]) remains the true TOM optimum. *)

type outcome = {
  migration : Placement.t;
  total_cost : float;
  migration_cost : float;
  comm_cost : float;
  moved : int;
  frontiers_evaluated : int;
  truncated : bool;  (** the combination cap was hit *)
}

val migrate :
  Problem.t ->
  rates:float array ->
  mu:float ->
  current:Placement.t ->
  ?max_combinations:int ->
  ?rescore:bool ->
  ?pair_limit:int ->
  unit ->
  outcome
(** Like {!Mpareto.migrate} but minimizing over every collision-free
    frontier of Definition 1 (row 0, "stay", is always included, so the
    result never loses to doing nothing). Enumeration stops after
    [max_combinations] (default 100_000) frontiers, flagged by
    [truncated]. *)
