(* LP-format writer. Variable naming: x_j_s (VNF j on switch s, both by
   index: s indexes Problem.switches, not raw node ids) and y_j_s_t
   (consecutive pair linearization). *)

let x j s = Printf.sprintf "x_%d_%d" j s

let y j s t = Printf.sprintf "y_%d_%d_%d" j s t

let variable_count problem =
  let n = Problem.n problem in
  let k = Array.length (Problem.switches problem) in
  (n * k) + ((n - 1) * k * k)

let constraint_count problem =
  let n = Problem.n problem in
  let k = Array.length (Problem.switches problem) in
  (* one-switch-per-VNF (n) + one-VNF-per-switch (k) + three McCormick
     rows per y variable. *)
  n + k + (3 * (n - 1) * k * k)

let emit problem ~rates ~migration_term =
  let att = Cost.attach problem ~rates in
  let switches = Problem.switches problem in
  let k = Array.length switches in
  let n = Problem.n problem in
  let buffer = Buffer.create 4096 in
  let add = Buffer.add_string buffer in
  (* Objective: accumulate coefficients per variable first, so a
     variable that picks up several contributions (e.g. x_0_s when
     n = 1 carries both attachments) appears exactly once. *)
  add "\\ TOP/TOM exported by ppdc (Eq. 1 / Eq. 8 assignment form)\n";
  add "Minimize\n obj:";
  let order = ref [] in
  let coefficients = Hashtbl.create 256 in
  let term coefficient name =
    if not (Float.equal coefficient 0.0) then begin
      if not (Hashtbl.mem coefficients name) then order := name :: !order;
      Hashtbl.replace coefficients name
        (coefficient
        +. Option.value (Hashtbl.find_opt coefficients name) ~default:0.0)
    end
  in
  Array.iteri
    (fun si s ->
      term att.a_in.(s) (x 0 si);
      term att.a_out.(s) (x (n - 1) si);
      for j = 0 to n - 1 do
        term (migration_term j s) (x j si)
      done)
    switches;
  for j = 0 to n - 2 do
    Array.iteri
      (fun si s ->
        Array.iteri
          (fun ti t ->
            term (att.total_rate *. Problem.cost problem s t) (y j si ti))
          switches)
      switches
  done;
  let started = ref false in
  List.iter
    (fun name ->
      let coefficient = Hashtbl.find coefficients name in
      if !started then
        add
          (Printf.sprintf " %s %.12g %s"
             (if coefficient >= 0.0 then "+" else "-")
             (Float.abs coefficient) name)
      else begin
        add (Printf.sprintf " %.12g %s" coefficient name);
        started := true
      end)
    (List.rev !order);
  add "\nSubject To\n";
  (* Each VNF on exactly one switch. *)
  for j = 0 to n - 1 do
    add (Printf.sprintf " vnf_%d:" j);
    for si = 0 to k - 1 do
      add (Printf.sprintf " %s%s" (if si = 0 then "" else "+ ") (x j si))
    done;
    add " = 1\n"
  done;
  (* Each switch hosts at most one VNF. *)
  for si = 0 to k - 1 do
    add (Printf.sprintf " switch_%d:" si);
    for j = 0 to n - 1 do
      add (Printf.sprintf " %s%s" (if j = 0 then "" else "+ ") (x j si))
    done;
    add " <= 1\n"
  done;
  (* McCormick linearization of the consecutive products. *)
  for j = 0 to n - 2 do
    for si = 0 to k - 1 do
      for ti = 0 to k - 1 do
        add
          (Printf.sprintf " mc_a_%d_%d_%d: %s - %s - %s >= -1\n" j si ti
             (y j si ti) (x j si) (x (j + 1) ti));
        add
          (Printf.sprintf " mc_b_%d_%d_%d: %s - %s <= 0\n" j si ti (y j si ti)
             (x j si));
        add
          (Printf.sprintf " mc_c_%d_%d_%d: %s - %s <= 0\n" j si ti (y j si ti)
             (x (j + 1) ti))
      done
    done
  done;
  (* Bounds for the continuous linearization variables; binaries below. *)
  add "Bounds\n";
  for j = 0 to n - 2 do
    for si = 0 to k - 1 do
      for ti = 0 to k - 1 do
        add (Printf.sprintf " 0 <= %s <= 1\n" (y j si ti))
      done
    done
  done;
  add "Binaries\n";
  for j = 0 to n - 1 do
    for si = 0 to k - 1 do
      add (Printf.sprintf " %s\n" (x j si))
    done
  done;
  add "End\n";
  Buffer.contents buffer

let top_lp problem ~rates = emit problem ~rates ~migration_term:(fun _ _ -> 0.0)

let tom_lp problem ~rates ~mu ~current =
  Placement.validate problem current;
  if mu < 0.0 then invalid_arg "Ilp.tom_lp: negative mu";
  emit problem ~rates ~migration_term:(fun j s ->
      mu *. Problem.cost problem current.(j) s)
