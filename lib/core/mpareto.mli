(** Algo. 5 — mPareto, the paper's VNF migration algorithm for TOM.

    Given the current placement [p] and a new rate vector, mPareto

    + computes the placement [p'] that is optimal-ish for the new rates
      (Algo. 3);
    + walks every VNF along its cheapest migration path [p(j) → p'(j)];
    + evaluates the total cost [C_t = C_b + C_a] at each of the
      [h_max] parallel migration frontiers — a scan over the Pareto
      front trading migration traffic [C_b] against communication
      traffic [C_a] (Fig. 6(b)) — and commits the cheapest one.

    Frontier row 0 is "do not migrate", so the result never costs more
    than staying put; the last row is "migrate fully to [p']". Complexity
    O(Algo. 3 + n · D) where D is the network diameter. *)

type point = {
  frontier : int array;
  migration_cost : float;  (** [C_b(p, frontier)] *)
  comm_cost : float;  (** [C_a(frontier)] under the new rates *)
  collides : bool;  (** frontier places two VNFs on one switch *)
}
(** One evaluated parallel frontier — the Pareto-front data of
    Fig. 6(b). *)

type outcome = {
  migration : Placement.t;  (** the chosen [m] *)
  total_cost : float;  (** [C_t(p, m)] *)
  migration_cost : float;  (** [C_b(p, m)] *)
  comm_cost : float;  (** [C_a(m)] *)
  moved : int;  (** VNFs that changed switch *)
  target : Placement.t;  (** the [p'] Algo. 3 produced *)
  points : point list;  (** all parallel frontiers, row 0 first *)
}

val migrate :
  Problem.t ->
  rates:float array ->
  mu:float ->
  current:Placement.t ->
  ?collisions:[ `Skip | `Allow ] ->
  ?rescore:bool ->
  ?pair_limit:int ->
  unit ->
  outcome
(** [migrate problem ~rates ~mu ~current ()] picks the cheapest parallel
    frontier. [collisions] (default [`Skip]) controls whether frontiers
    that co-locate two VNFs may be chosen (they are always *reported* in
    [points]); [rescore]/[pair_limit] are passed to {!Placement_dp}. *)
