(** A TOP/TOM problem instance.

    Bundles what every placement and migration algorithm needs: the PPDC
    cost matrix, the VM flows (their host endpoints), and the SFC length
    [n]. The traffic-rate vector [λ] is passed separately to each
    algorithm call because it changes over time in a dynamic PPDC.

    An instance may restrict the candidate switches VNFs can rest on
    (default: every switch of the graph) — the multi-SFC extension uses
    this to keep concurrent chains off each other's switches. Transit is
    never restricted; only placement is. *)

type t

val make :
  ?switch_candidates:int array ->
  cm:Ppdc_topology.Cost_matrix.t ->
  flows:Ppdc_traffic.Flow.t array ->
  n:int ->
  unit ->
  t
(** Raises [Invalid_argument] if [n < 1], if [n] exceeds the number of
    candidate switches (each VNF needs its own switch), if there are no
    flows, if a flow endpoint is not a host of the graph, or if a
    candidate is not a switch / appears twice. *)

val cm : t -> Ppdc_topology.Cost_matrix.t
val graph : t -> Ppdc_topology.Graph.t
val flows : t -> Ppdc_traffic.Flow.t array
val n : t -> int
(** Chain length. *)

val num_flows : t -> int

val switches : t -> int array
(** Candidate switches for VNF placement (fresh array). *)

val is_candidate : t -> int -> bool
(** Whether a node is a candidate switch; O(1). *)

val cost : t -> int -> int -> float
(** Shortcut for [Cost_matrix.cost (cm t)]. *)

val with_n : t -> int -> t
(** Same instance with a different chain length. *)

val with_flows : t -> Ppdc_traffic.Flow.t array -> t
(** Same instance with different flows (e.g. after VM migration by the
    PLAN/MCF baselines). *)

val with_switches : t -> int array -> t
(** Same instance restricted to the given candidate switches. *)

val with_cm : t -> Ppdc_topology.Cost_matrix.t -> t
(** Same instance on a different cost matrix (e.g. after a link
    failure or repair re-derived it). Candidate switches and flow
    endpoints are re-validated against the new graph, so the matrix
    must cover the same node ids and kinds. *)
