(** Algo. 3 — DP-based VNF placement for TOP (the paper's "DP").

    For every ordered pair of switches [(p(1), p(n))] — candidate ingress
    and egress — the middle of the chain is filled with an (n−2)-stroll
    from Algo. 2, and the pair with the smallest
    [A_in(p(1)) + Λ · stroll + A_out(p(n))] wins. One DP table per egress
    switch answers *all* ingress queries, so the overall cost is
    O(|V_s| · (table + |V_s| · extraction)) rather than |V_s|² tables.

    [n = 1] and [n = 2] have closed-form optimal solutions (scan switches
    / switch pairs), as the paper notes. *)

type outcome = {
  placement : Placement.t;
  cost : float;  (** actual [C_a(placement)] under the given rates *)
  objective : float;
      (** the stroll-based value the pair selection minimized; ≥ [cost]
          can differ from it when the stroll revisits edges *)
}

val solve :
  Problem.t ->
  rates:float array ->
  ?rescore:bool ->
  ?pair_limit:int ->
  ?max_edges:int ->
  unit ->
  outcome
(** [solve problem ~rates ()] computes a placement for the current rate
    vector.

    [rescore] (default [false], the paper's behaviour) selects each
    ingress/egress pair by the *recomputed exact* [C_a] of the extracted
    placement instead of the stroll length — never worse, slightly
    slower; quantified by the [abl-rescore] ablation.

    [pair_limit k] restricts candidate ingresses to the [k] switches with
    the smallest [A_in] and egresses to the [k] smallest [A_out] — a
    scalability knob for very large PPDCs (used by the k=16 simulation);
    omit for the paper-faithful full scan.

    [max_edges] is passed through to {!Stroll_dp.query}. *)
