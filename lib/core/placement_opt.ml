module Parallel = Ppdc_prelude.Parallel
module Obs = Ppdc_prelude.Obs

type outcome = {
  placement : Placement.t;
  cost : float;
  proven_optimal : bool;
  explored : int;
}

(* Read-only search context, shared by every branch (and every domain in
   the parallel fan-out). *)
type context = {
  att : Cost.attach;
  switches : int array;
  n : int;
  k : int;
  d : int -> int -> float;
  lambda : float;
  delta_min : float;
  min_a_out : float;
  first_order : int array;
}

(* Per-branch mutable search state. The parallel fan-out gives every
   depth-0 subtree its own state (including its own child-order cache),
   so branches never share mutable data. *)
type state = {
  used : (int, unit) Hashtbl.t;
  chosen : int array;
  mutable best_cost : float;
  mutable best : Placement.t;
  mutable explored : int;
  mutable exhausted : bool;
  budget : int;
  order_cache : (int, int array) Hashtbl.t;
}

let make_state ctx ~budget ~seed_cost ~seed =
  {
    used = Hashtbl.create ctx.n;
    chosen = Array.make ctx.n (-1);
    best_cost = seed_cost;
    best = Array.copy seed;
    explored = 0;
    exhausted = false;
    budget;
    order_cache = Hashtbl.create ctx.k;
  }

let ordered_from ctx st u =
  match Hashtbl.find_opt st.order_cache u with
  | Some o -> o
  | None ->
      let o = Array.copy ctx.switches in
      Array.sort
        (fun a b ->
          match Float.compare (ctx.d u a) (ctx.d u b) with
          | 0 -> Int.compare a b
          | c -> c)
        o;
      Hashtbl.add st.order_cache u o;
      o

(* [partial] = A_in(chosen.(0)) + Λ · chain cost so far. *)
let rec dfs ctx st depth partial =
  if st.explored >= st.budget then st.exhausted <- true
  else begin
    st.explored <- st.explored + 1;
    if depth = ctx.n then begin
      let total = partial +. ctx.att.a_out.(st.chosen.(ctx.n - 1)) in
      if total < st.best_cost then begin
        st.best_cost <- total;
        st.best <- Array.copy st.chosen
      end
    end
    else begin
      let order =
        if depth = 0 then ctx.first_order
        else ordered_from ctx st st.chosen.(depth - 1)
      in
      let remaining_after = ctx.n - depth - 1 in
      let i = ref 0 in
      let stop = ref false in
      while (not !stop) && !i < ctx.k do
        let x = order.(!i) in
        incr i;
        if not (Hashtbl.mem st.used x) then begin
          let partial' =
            if depth = 0 then ctx.att.a_in.(x)
            else partial +. (ctx.lambda *. ctx.d st.chosen.(depth - 1) x)
          in
          let tail_bound =
            if remaining_after = 0 then ctx.att.a_out.(x)
            else
              (ctx.lambda *. float_of_int remaining_after *. ctx.delta_min)
              +. ctx.min_a_out
          in
          (* Children are sorted by exactly the term in [partial'] that
             grows, so once even [min_a_out] cannot rescue a sibling,
             none that follow can do better. [tail_bound] itself uses
             the child's own A_out at the last level, which is not
             monotone in the sort key — it only prunes the child. *)
          let sibling_cutoff =
            if remaining_after = 0 then partial' +. ctx.min_a_out
            else partial' +. tail_bound
          in
          if sibling_cutoff >= st.best_cost then begin
            stop := true;
            if depth = 0 then Obs.incr "placement_opt.subtrees_pruned"
          end
          else if partial' +. tail_bound < st.best_cost then begin
            Hashtbl.add st.used x ();
            st.chosen.(depth) <- x;
            dfs ctx st (depth + 1) partial';
            Hashtbl.remove st.used x
          end
          else if depth = 0 then Obs.incr "placement_opt.subtrees_pruned";
          if st.exhausted then stop := true
        end
      done
    end
  end

(* One depth-0 subtree, searched in isolation with the shared seed as its
   only incumbent: the pruning is weaker than the sequential scan's
   (which threads the evolving incumbent through later subtrees), so
   [explored] grows, but any strictly improving leaf survives both, and
   the subtree minimum is unchanged. *)
let subtree ctx ~budget ~seed_cost ~seed x =
  let st = make_state ctx ~budget ~seed_cost ~seed in
  st.explored <- 1 (* the shared depth-0 node, counted once per task *);
  let partial' = ctx.att.a_in.(x) in
  let tail_bound =
    if ctx.n = 1 then ctx.att.a_out.(x)
    else
      (ctx.lambda *. float_of_int (ctx.n - 1) *. ctx.delta_min)
      +. ctx.min_a_out
  in
  if partial' +. tail_bound < st.best_cost then begin
    Hashtbl.add st.used x ();
    st.chosen.(0) <- x;
    dfs ctx st 1 partial'
  end
  else Obs.incr "placement_opt.subtrees_pruned";
  st

let solve problem ~rates ?(budget = 20_000_000) ?incumbent () =
  Obs.time "placement_opt.solve" @@ fun () ->
  let att = Cost.attach problem ~rates in
  let switches = Problem.switches problem in
  let n = Problem.n problem in
  let k = Array.length switches in
  let d u v = Problem.cost problem u v in
  let lambda = att.total_rate in
  (* Bound ingredients. *)
  let delta_min = ref infinity in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      if i <> j then
        delta_min := Float.min !delta_min (d switches.(i) switches.(j))
    done
  done;
  let delta_min = if k > 1 then !delta_min else 0.0 in
  let min_a_out =
    Array.fold_left (fun acc s -> Float.min acc att.a_out.(s)) infinity switches
  in
  (* Incumbent. *)
  let seed =
    match incumbent with
    | Some p -> p
    | None -> (Placement_dp.solve problem ~rates ()).placement
  in
  let seed_cost = Cost.comm_cost_with_attach problem att seed in
  (* Child orders are cached per state: depth 0 sorts by A_in, deeper
     levels by distance from the previously placed switch. *)
  let first_order =
    let o = Array.copy switches in
    Array.sort
      (fun a b ->
        match Float.compare att.a_in.(a) att.a_in.(b) with
        | 0 -> Int.compare a b
        | c -> c)
      o;
    o
  in
  let ctx =
    { att; switches; n; k; d; lambda; delta_min; min_a_out; first_order }
  in
  if Parallel.domain_count () = 1 then begin
    let st = make_state ctx ~budget ~seed_cost ~seed in
    dfs ctx st 0 0.0;
    Obs.incr ~by:st.explored "placement_opt.explored";
    {
      placement = st.best;
      cost = st.best_cost;
      proven_optimal = not st.exhausted;
      explored = st.explored;
    }
  end
  else begin
    (* Deterministic parallel fan-out: one task per depth-0 candidate in
       [first_order] order, each with an equal budget share, reduced in
       index order with the same strict [<] as the sequential scan — so
       placement and cost match the sequential search whenever neither
       run exhausts its budget (exploration counts differ, since each
       subtree prunes only against the seed incumbent). *)
    let share = max 1 ((budget + k - 1) / k) in
    let states =
      Parallel.init k (fun i ->
          subtree ctx ~budget:share ~seed_cost ~seed ctx.first_order.(i))
    in
    let best_cost = ref seed_cost in
    let best = ref (Array.copy seed) in
    let explored = ref 0 in
    let exhausted = ref false in
    Array.iter
      (fun st ->
        explored := !explored + st.explored;
        if st.exhausted then exhausted := true;
        if st.best_cost < !best_cost then begin
          best_cost := st.best_cost;
          best := st.best
        end)
      states;
    Obs.incr ~by:!explored "placement_opt.explored";
    {
      placement = !best;
      cost = !best_cost;
      proven_optimal = not !exhausted;
      explored = !explored;
    }
  end
