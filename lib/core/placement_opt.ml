type outcome = {
  placement : Placement.t;
  cost : float;
  proven_optimal : bool;
  explored : int;
}

let solve problem ~rates ?(budget = 20_000_000) ?incumbent () =
  let att = Cost.attach problem ~rates in
  let switches = Problem.switches problem in
  let n = Problem.n problem in
  let k = Array.length switches in
  let d u v = Problem.cost problem u v in
  let lambda = att.total_rate in
  (* Bound ingredients. *)
  let delta_min = ref infinity in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      if i <> j then
        delta_min := Float.min !delta_min (d switches.(i) switches.(j))
    done
  done;
  let delta_min = if k > 1 then !delta_min else 0.0 in
  let min_a_out =
    Array.fold_left (fun acc s -> Float.min acc att.a_out.(s)) infinity switches
  in
  (* Incumbent. *)
  let seed =
    match incumbent with
    | Some p -> p
    | None -> (Placement_dp.solve problem ~rates ()).placement
  in
  let best_cost = ref (Cost.comm_cost_with_attach problem att seed) in
  let best = ref (Array.copy seed) in
  (* Child orders, cached: depth 0 sorts by A_in, deeper levels by
     distance from the previously placed switch. *)
  let first_order =
    let o = Array.copy switches in
    Array.sort
      (fun a b ->
        match compare att.a_in.(a) att.a_in.(b) with
        | 0 -> compare a b
        | c -> c)
      o;
    o
  in
  let order_cache = Hashtbl.create k in
  let ordered_from u =
    match Hashtbl.find_opt order_cache u with
    | Some o -> o
    | None ->
        let o = Array.copy switches in
        Array.sort
          (fun a b -> match compare (d u a) (d u b) with 0 -> compare a b | c -> c)
          o;
        Hashtbl.add order_cache u o;
        o
  in
  let used = Hashtbl.create n in
  let chosen = Array.make n (-1) in
  let explored = ref 0 in
  let exhausted = ref false in
  (* [partial] = A_in(chosen.(0)) + Λ · chain cost so far. *)
  let rec dfs depth partial =
    if !explored >= budget then exhausted := true
    else begin
      incr explored;
      if depth = n then begin
        let total = partial +. att.a_out.(chosen.(n - 1)) in
        if total < !best_cost then begin
          best_cost := total;
          best := Array.copy chosen
        end
      end
      else begin
        let order = if depth = 0 then first_order else ordered_from chosen.(depth - 1) in
        let remaining_after = n - depth - 1 in
        let i = ref 0 in
        let stop = ref false in
        while (not !stop) && !i < k do
          let x = order.(!i) in
          incr i;
          if not (Hashtbl.mem used x) then begin
            let partial' =
              if depth = 0 then att.a_in.(x)
              else partial +. (lambda *. d chosen.(depth - 1) x)
            in
            let tail_bound =
              if remaining_after = 0 then att.a_out.(x)
              else
                (lambda *. float_of_int remaining_after *. delta_min)
                +. min_a_out
            in
            (* Children are sorted by exactly the term in [partial'] that
               grows, so once even [min_a_out] cannot rescue a sibling,
               none that follow can do better. [tail_bound] itself uses
               the child's own A_out at the last level, which is not
               monotone in the sort key — it only prunes the child. *)
            let sibling_cutoff =
              if remaining_after = 0 then partial' +. min_a_out
              else partial' +. tail_bound
            in
            if sibling_cutoff >= !best_cost then stop := true
            else if partial' +. tail_bound < !best_cost then begin
              Hashtbl.add used x ();
              chosen.(depth) <- x;
              dfs (depth + 1) partial';
              Hashtbl.remove used x
            end;
            if !exhausted then stop := true
          end
        done
      end
    end
  in
  dfs 0 0.0;
  {
    placement = !best;
    cost = !best_cost;
    proven_optimal = not !exhausted;
    explored = !explored;
  }
