(** Exact n-stroll (the "Optimal" benchmark for TOP-1).

    In the metric completion, an optimal stroll visiting [n] distinct
    switches shortcuts to an optimal *sequence* of [n] distinct switches
    (triangle inequality), so the optimum is
    [min over ordered distinct (x_1..x_n) of
      c(src,x_1) + Σ c(x_j, x_{j+1}) + c(x_n, dst)].
    This module searches that space with depth-first branch-and-bound:
    children are tried nearest-first and a subtree is pruned when
    [partial + (n−k)·δ_min + min_x c(x, dst)] cannot beat the incumbent
    (an admissible bound, so within budget the result is provably
    optimal). A literal enumeration is O(|V_s|^n) as the paper notes;
    the bound makes moderate instances practical, and a node [budget]
    caps the worst case — if it is exhausted, the best incumbent is
    returned with [proven_optimal = false]. *)

type outcome = {
  cost : float;
  switches : int array;  (** the optimal VNF sequence *)
  proven_optimal : bool;
  explored : int;  (** number of search-tree nodes expanded *)
}

val solve :
  cm:Ppdc_topology.Cost_matrix.t ->
  src:int ->
  dst:int ->
  n:int ->
  ?candidates:int array ->
  ?budget:int ->
  ?incumbent:float * int array ->
  unit ->
  outcome
(** [solve ~cm ~src ~dst ~n ()] finds the cheapest sequence of [n]
    distinct switches between [src] and [dst]. [candidates] defaults to
    every switch except [src]/[dst]; [budget] defaults to 20 million
    nodes; [incumbent] seeds the upper bound (e.g. from
    {!Stroll_dp.solve}) which can prune dramatically. Raises
    [Invalid_argument] if fewer than [n] candidates exist. *)
