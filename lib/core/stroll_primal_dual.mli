(** Algo. 1 — primal-dual approximation for TOP-1.

    The paper sketches the Chaudhuri–Godfrey–Rao–Talwar primal-dual for
    the n-stroll: grow duals ("moats") paying for edges, prune, and walk
    the resulting tree. We implement the standard Lagrangian realization
    of that family:

    + put a uniform prize [π] on every candidate switch and run
      Goemans–Williamson moat growing for the prize-collecting Steiner
      tree rooted at [src] with [dst] as a mandatory terminal (its prize
      is infinite). Active components grow uniformly; an edge joins the
      forest when the moats on its two sides pay for it; a component
      deactivates when its prize potential is exhausted;
    + prune leaves whose connecting edge costs more than the prize they
      bring (the Lagrangian prune);
    + binary-search [π] for the smallest prize whose pruned tree spans at
      least [n] counting switches;
    + double the tree, shortcut the Euler walk (visiting the subtree that
      contains [dst] last), and stop after [n] distinct switches.

    Everything runs on the metric completion, where the triangle
    inequality required by the analysis holds by construction. The
    classic analysis gives cost ≤ 2(1+ε) · OPT; empirically DP-Stroll
    (Algo. 2) beats this bound, which is exactly the paper's Fig. 7
    claim. *)

type outcome = {
  cost : float;  (** metric length of the produced stroll *)
  switches : int array;  (** [n] distinct switches in visit order *)
  tree_cost : float;  (** cost of the pruned GW tree that was walked *)
  prize : float;  (** the π found by the binary search *)
  iterations : int;  (** binary-search iterations performed *)
}

val solve :
  cm:Ppdc_topology.Cost_matrix.t ->
  src:int ->
  dst:int ->
  n:int ->
  ?candidates:int array ->
  ?iterations:int ->
  unit ->
  outcome
(** [solve ~cm ~src ~dst ~n ()] returns a stroll visiting [n] distinct
    switches. [candidates] defaults to all switches except [src]/[dst];
    [iterations] bounds the binary search (default 40). Raises
    [Invalid_argument] if fewer than [n] candidates exist. *)
