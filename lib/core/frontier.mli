(** VNF migration frontiers (Definitions 1 and 2 of the paper).

    When VNF [f_j] migrates from [p(j)] towards [p'(j)], it moves along
    the cheapest path between them; [S_j] is the sequence of switches on
    that path ([S_j = [p(j)]] when the VNF stays). A *migration frontier*
    picks one switch from each [S_j]; the [h_max = max_j |S_j|] *parallel
    frontiers* advance all VNFs in lock-step — row 0 is [p] (no
    migration), the last row is [p'] (full migration) — and are the
    candidate set Algo. 5 scans. *)

val migration_paths :
  Problem.t -> src:Placement.t -> dst:Placement.t -> int array array
(** [migration_paths problem ~src ~dst] returns [S_1 .. S_n]:
    [S_j] is the switch sequence of the cheapest [src.(j) → dst.(j)]
    path (inclusive; a single element when the VNF does not move).
    Raises [Invalid_argument] on length mismatch. *)

val parallel : int array array -> int array array
(** [parallel paths] is the [h_max × n] matrix of parallel frontiers:
    row [i], column [j] is [S_j]'s switch [min(i, h_j - 1)]. Row 0
    equals the source placement and row [h_max - 1] the destination. *)

val has_collision : int array -> bool
(** Whether a frontier places two VNFs on the same switch — transiently
    possible mid-migration, but invalid as a resting placement under the
    one-VNF-per-switch model. *)
