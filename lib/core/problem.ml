module Cost_matrix = Ppdc_topology.Cost_matrix
module Graph = Ppdc_topology.Graph
module Flow = Ppdc_traffic.Flow

type t = {
  cm : Cost_matrix.t;
  flows : Flow.t array;
  n : int;
  switch_ids : int array;
  candidate : (int, unit) Hashtbl.t;
}

let validate cm flows n switch_ids =
  let g = Cost_matrix.graph cm in
  if n < 1 then invalid_arg "Problem.make: chain length must be positive";
  if n > Array.length switch_ids then
    invalid_arg "Problem.make: more VNFs than candidate switches";
  if Array.length flows = 0 then invalid_arg "Problem.make: no flows";
  Array.iter
    (fun (f : Flow.t) ->
      if not (Graph.is_host g f.src_host && Graph.is_host g f.dst_host) then
        invalid_arg
          (Printf.sprintf "Problem.make: flow %d endpoint is not a host" f.id))
    flows;
  let seen = Hashtbl.create (Array.length switch_ids) in
  Array.iter
    (fun s ->
      if s < 0 || s >= Graph.num_nodes g || not (Graph.is_switch g s) then
        invalid_arg
          (Printf.sprintf "Problem.make: candidate %d is not a switch" s);
      if Hashtbl.mem seen s then
        invalid_arg (Printf.sprintf "Problem.make: duplicate candidate %d" s);
      Hashtbl.add seen s ())
    switch_ids;
  seen

let build cm flows n switch_ids =
  let candidate = validate cm flows n switch_ids in
  { cm; flows = Array.copy flows; n; switch_ids = Array.copy switch_ids; candidate }

let make ?switch_candidates ~cm ~flows ~n () =
  let switch_ids =
    match switch_candidates with
    | Some c -> c
    | None -> Graph.switches (Cost_matrix.graph cm)
  in
  build cm flows n switch_ids

let cm t = t.cm
let graph t = Cost_matrix.graph t.cm
let flows t = t.flows
let n t = t.n
let num_flows t = Array.length t.flows
let switches t = Array.copy t.switch_ids
let is_candidate t s = Hashtbl.mem t.candidate s
let cost t u v = Cost_matrix.cost t.cm u v

let with_n t n = build t.cm t.flows n t.switch_ids

let with_flows t flows = build t.cm flows t.n t.switch_ids

let with_cm t cm = build cm t.flows t.n t.switch_ids

let with_switches t switch_ids = build t.cm t.flows t.n switch_ids
