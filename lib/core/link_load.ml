module Cost_matrix = Ppdc_topology.Cost_matrix
module Graph = Ppdc_topology.Graph
module Flow = Ppdc_traffic.Flow

type t = {
  graph : Graph.t;
  loads : (int * int, float) Hashtbl.t;  (* key: (min u v, max u v) *)
}

let key u v = (min u v, max u v)

let add_path t ~rate path =
  let rec walk = function
    | u :: (v :: _ as rest) ->
        let k = key u v in
        Hashtbl.replace t.loads k
          (rate +. Option.value (Hashtbl.find_opt t.loads k) ~default:0.0);
        walk rest
    | [ _ ] | [] -> ()
  in
  walk path

let of_graph graph = { graph; loads = Hashtbl.create 16 }

let compute problem ~rates placement =
  Placement.validate problem placement;
  let cm = Problem.cm problem in
  let t = { graph = Problem.graph problem; loads = Hashtbl.create 256 } in
  let n = Array.length placement in
  Array.iter
    (fun (f : Flow.t) ->
      let rate = rates.(f.id) in
      if Float.is_nan rate then
        invalid_arg
          (Printf.sprintf "Link_load.compute: NaN rate for flow %d" f.id);
      if rate > 0.0 then begin
        (* Legs: src -> p(1), p(j) -> p(j+1), p(n) -> dst. *)
        add_path t ~rate (Cost_matrix.path cm ~src:f.src_host ~dst:placement.(0));
        for j = 0 to n - 2 do
          add_path t ~rate
            (Cost_matrix.path cm ~src:placement.(j) ~dst:placement.(j + 1))
        done;
        add_path t ~rate
          (Cost_matrix.path cm ~src:placement.(n - 1) ~dst:f.dst_host)
      end)
    (Problem.flows problem);
  t

let load t u v =
  Option.value (Hashtbl.find_opt t.loads (key u v)) ~default:0.0

let max_load t = Hashtbl.fold (fun _ l acc -> Float.max l acc) t.loads 0.0

let mean_load t =
  let edges = Graph.num_edges t.graph in
  if edges = 0 then 0.0
  else
    let total = Hashtbl.fold (fun _ l acc -> acc +. l) t.loads 0.0 in
    total /. float_of_int edges

let weighted_total t =
  Hashtbl.fold
    (fun (u, v) l acc ->
      match Graph.edge_weight t.graph u v with
      | Some w -> acc +. (l *. w)
      | None -> acc)
    t.loads 0.0

let hottest t k =
  Hashtbl.fold (fun (u, v) l acc -> (u, v, l) :: acc) t.loads []
  |> List.sort (fun (_, _, a) (_, _, b) -> Float.compare b a)
  |> List.filteri (fun i _ -> i < k)
