type point = {
  frontier : int array;
  migration_cost : float;
  comm_cost : float;
  collides : bool;
}

type outcome = {
  migration : Placement.t;
  total_cost : float;
  migration_cost : float;
  comm_cost : float;
  moved : int;
  target : Placement.t;
  points : point list;
}

module Obs = Ppdc_prelude.Obs

let migrate problem ~rates ~mu ~current ?(collisions = `Skip) ?rescore
    ?pair_limit () =
  Obs.time "mpareto.migrate" @@ fun () ->
  Placement.validate problem current;
  let att = Cost.attach problem ~rates in
  let target =
    (Placement_dp.solve problem ~rates ?rescore ?pair_limit ()).placement
  in
  let paths = Frontier.migration_paths problem ~src:current ~dst:target in
  let rows = Frontier.parallel paths in
  let evaluate frontier =
    {
      frontier;
      migration_cost = Cost.migration_cost problem ~mu ~src:current ~dst:frontier;
      comm_cost = Cost.comm_cost_with_attach problem att frontier;
      collides = Frontier.has_collision frontier;
    }
  in
  let points = Array.to_list (Array.map evaluate rows) in
  (* A frontier row is a legal resting placement only if it is collision-
     free AND every switch is a candidate of the (possibly restricted)
     instance — migration paths may transit foreign switches, but VNFs
     may not stop on them. *)
  let eligible p =
    match collisions with
    | `Allow -> true
    | `Skip -> (not p.collides) && Placement.is_valid problem p.frontier
  in
  let best, _, skipped =
    List.fold_left
      (fun (acc, row, skipped) p ->
        if not (eligible p) then (acc, row + 1, skipped + 1)
        else
          let total = p.migration_cost +. p.comm_cost in
          match acc with
          | Some (best_total, _, _) when best_total <= total ->
              (acc, row + 1, skipped)
          | _ -> (Some (total, p, row), row + 1, skipped))
      (None, 0, 0) points
  in
  if Obs.enabled () then begin
    Obs.incr ~by:(List.length points) "mpareto.rows_evaluated";
    Obs.incr ~by:skipped "mpareto.rows_skipped";
    Obs.incr
      ~by:(List.length (List.filter (fun p -> p.collides) points))
      "mpareto.collisions"
  end;
  match best with
  | None ->
      (* Row 0 never collides (it is the current valid placement), so
         this is unreachable; keep the typechecker honest. *)
      assert false
  | Some (total, p, chosen_row) ->
      Obs.observe "mpareto.chosen_row" (float_of_int chosen_row);
      {
        migration = p.frontier;
        total_cost = total;
        migration_cost = p.migration_cost;
        comm_cost = p.comm_cost;
        moved = Cost.moved ~src:current ~dst:p.frontier;
        target;
        points;
      }
