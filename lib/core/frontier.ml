module Cost_matrix = Ppdc_topology.Cost_matrix

let migration_paths problem ~src ~dst =
  if Array.length src <> Array.length dst then
    invalid_arg "Frontier.migration_paths: placement length mismatch";
  let cm = Problem.cm problem in
  Array.init (Array.length src) (fun j ->
      if src.(j) = dst.(j) then [| src.(j) |]
      else
        Array.of_list (Cost_matrix.switch_path cm ~src:src.(j) ~dst:dst.(j)))

let parallel paths =
  let n = Array.length paths in
  let h_max = Array.fold_left (fun acc s -> max acc (Array.length s)) 1 paths in
  Array.init h_max (fun i ->
      Array.init n (fun j ->
          let s = paths.(j) in
          s.(min i (Array.length s - 1))))

let has_collision frontier =
  let seen = Hashtbl.create (Array.length frontier) in
  Array.exists
    (fun s ->
      if Hashtbl.mem seen s then true
      else begin
        Hashtbl.add seen s ();
        false
      end)
    frontier
