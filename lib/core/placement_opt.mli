(** Algo. 4 — optimal VNF placement (the "Optimal" benchmark for TOP).

    Enumerating all [|V_s|·(|V_s|−1)···(|V_s|−n+1)] placements, as the
    paper's Algo. 4 states, is hopeless beyond toy sizes; this module
    searches the same space with depth-first branch-and-bound over
    ordered distinct switch sequences:

    - the value of a partial sequence is
      [A_in(p(1)) + Λ·chain-so-far], and the admissible completion bound
      adds [Λ·(n−k)·δ_min + min_s A_out(s)];
    - children are expanded cheapest-first, allowing sibling cutoff;
    - the incumbent is seeded with the Algo. 3 (DP) solution, which makes
      the bound bite immediately.

    Within the node [budget] the result is provably optimal
    ([proven_optimal = true]); if the budget is exhausted the best
    incumbent found so far is returned and flagged, which is how the
    "Optimal" curves are produced at paper scale (see DESIGN.md §4).

    With [Ppdc_prelude.Parallel.domain_count () > 1] the depth-0
    subtrees are searched on the domain pool, each against the seed
    incumbent only, with an equal share of [budget], and the subtree
    winners are reduced in deterministic child order. [placement] and
    [cost] then still match the sequential search whenever neither run
    exhausts its budget, but [explored] (and, near the budget limit,
    [proven_optimal]) can differ because per-subtree pruning is weaker
    than threading one evolving incumbent through the whole scan. *)

type outcome = {
  placement : Placement.t;
  cost : float;  (** [C_a(placement)] *)
  proven_optimal : bool;
  explored : int;
}

val solve :
  Problem.t -> rates:float array -> ?budget:int -> ?incumbent:Placement.t ->
  unit -> outcome
(** [budget] defaults to 20 million search nodes. [incumbent] defaults to
    the Algo. 3 solution computed internally. *)
