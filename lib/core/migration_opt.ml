type outcome = {
  migration : Placement.t;
  cost : float;
  proven_optimal : bool;
  explored : int;
}

let solve problem ~rates ~mu ~current ?(budget = 20_000_000) ?incumbent () =
  Placement.validate problem current;
  let att = Cost.attach problem ~rates in
  let switches = Problem.switches problem in
  let n = Problem.n problem in
  let k = Array.length switches in
  let d u v = Problem.cost problem u v in
  let lambda = att.total_rate in
  let delta_min = ref infinity in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      if i <> j then
        delta_min := Float.min !delta_min (d switches.(i) switches.(j))
    done
  done;
  let delta_min = if k > 1 then !delta_min else 0.0 in
  let min_a_out =
    Array.fold_left (fun acc s -> Float.min acc att.a_out.(s)) infinity switches
  in
  let total_of m = Cost.total_cost problem ~rates ~mu ~src:current ~dst:m in
  let seed =
    match incumbent with
    | Some m -> m
    | None -> (Mpareto.migrate problem ~rates ~mu ~current ()).migration
  in
  let best_cost = ref (total_of seed) in
  let best = ref (Array.copy seed) in
  let used = Hashtbl.create n in
  let chosen = Array.make n (-1) in
  let explored = ref 0 in
  let exhausted = ref false in
  (* Child key at position [j] (0-based): the full marginal cost of
     resting f_{j+1} on x, including its migration leg. *)
  let child_key depth x =
    let migration_leg = mu *. d current.(depth) x in
    if depth = 0 then att.a_in.(x) +. migration_leg
    else (lambda *. d chosen.(depth - 1) x) +. migration_leg
  in
  let rec dfs depth partial =
    if !explored >= budget then exhausted := true
    else begin
      incr explored;
      if depth = n then begin
        let total = partial +. att.a_out.(chosen.(n - 1)) in
        if total < !best_cost then begin
          best_cost := total;
          best := Array.copy chosen
        end
      end
      else begin
        (* Sort children by their marginal key at this node. The key mixes
           two metrics, so it must be recomputed per node (no cache). *)
        let order = Array.copy switches in
        Array.sort
          (fun a b ->
            match Float.compare (child_key depth a) (child_key depth b) with
            | 0 -> Int.compare a b
            | c -> c)
          order;
        let remaining_after = n - depth - 1 in
        let i = ref 0 in
        let stop = ref false in
        while (not !stop) && !i < k do
          let x = order.(!i) in
          incr i;
          if not (Hashtbl.mem used x) then begin
            let partial' = partial +. child_key depth x in
            let tail_bound =
              if remaining_after = 0 then att.a_out.(x)
              else
                (lambda *. float_of_int remaining_after *. delta_min)
                +. min_a_out
            in
            let sibling_cutoff =
              if remaining_after = 0 then partial' +. min_a_out
              else partial' +. tail_bound
            in
            if sibling_cutoff >= !best_cost then stop := true
            else if partial' +. tail_bound < !best_cost then begin
              Hashtbl.add used x ();
              chosen.(depth) <- x;
              dfs (depth + 1) partial';
              Hashtbl.remove used x
            end;
            if !exhausted then stop := true
          end
        done
      end
    end
  in
  dfs 0 0.0;
  {
    migration = !best;
    cost = !best_cost;
    proven_optimal = not !exhausted;
    explored = !explored;
  }
