(** Per-link traffic loads induced by a placement.

    The paper assumes link bandwidth is never binding ("links are
    generally provisioned around 40% of utilization"); this module makes
    that assumption checkable: route every flow's policy-preserving walk
    — source host → p(1) → ... → p(n) → destination host, each leg along
    the cheapest path — and accumulate each flow's rate on every link it
    crosses.

    Invariant (tested): [Σ_e load(e) · w(e) = C_a(p)] — the cost model
    of Eq. 1 is exactly the weight-weighted sum of link loads. *)

type t

val compute : Problem.t -> rates:float array -> Placement.t -> t
(** Route all flows under the placement. O(l · n · D) where D is the
    network diameter. *)

val of_graph : Ppdc_topology.Graph.t -> t
(** An all-idle load table over the graph: every link carries zero. The
    zero-traffic baseline for the accessors below. *)

val load : t -> int -> int -> float
(** [load t u v] is the total rate crossing the (undirected) link
    [(u, v)]; 0 for absent links. *)

val max_load : t -> float
(** The hottest link's load. *)

val mean_load : t -> float
(** Mean load over all links of the graph (including idle ones). *)

val weighted_total : t -> float
(** [Σ_e load(e) · w(e)] — equals [C_a] (Eq. 1). *)

val hottest : t -> int -> (int * int * float) list
(** The [k] most loaded links as [(u, v, load)], descending. *)
