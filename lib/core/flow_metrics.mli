(** Per-flow end-to-end metrics under a placement.

    [C_a] aggregates everything into one number; operators also care
    about the distribution: how long is each flow's policy-preserving
    route, who suffers the worst detour, and how does that compare to
    the direct (chain-free) path? This module reports per-flow route
    delays and the stretch each flow pays for policy preservation. *)

type per_flow = {
  flow : int;  (** flow id *)
  route_delay : float;
      (** [c(src, p(1)) + chain + c(p(n), dst)] — the policy route *)
  direct_delay : float;  (** [c(src, dst)] — the chain-free path *)
  stretch : float;
      (** [route / max(direct, min positive)]; colocated VM pairs
          (direct = 0) report the route against the cheapest non-zero
          direct delay of the instance so the value stays finite *)
}

type t = {
  per_flow : per_flow array;  (** indexed by flow id *)
  mean_delay : float;
  p95_delay : float;
  max_delay : float;
  mean_stretch : float;
}

val compute : Problem.t -> Placement.t -> t
(** Rate-independent route metrics (delay is topology-weighted length;
    rates only weight the aggregate cost, not a single flow's delay). *)

val pp_summary : Format.formatter -> t -> unit
(** ["mean 8.0, p95 10.0, max 12.0 (stretch 3.2x)"]. *)
