module Flow = Ppdc_traffic.Flow
module Stats = Ppdc_prelude.Stats

type per_flow = {
  flow : int;
  route_delay : float;
  direct_delay : float;
  stretch : float;
}

type t = {
  per_flow : per_flow array;
  mean_delay : float;
  p95_delay : float;
  max_delay : float;
  mean_stretch : float;
}

let compute problem placement =
  Placement.validate problem placement;
  let n = Array.length placement in
  let chain = Cost.chain_cost problem placement in
  let flows = Problem.flows problem in
  (* Floor for colocated pairs: the cheapest positive direct delay. *)
  let min_positive =
    Array.fold_left
      (fun acc (f : Flow.t) ->
        let d = Problem.cost problem f.src_host f.dst_host in
        if d > 0.0 then Float.min acc d else acc)
      infinity flows
  in
  let floor = if min_positive = infinity then 1.0 else min_positive in
  let per_flow =
    Array.map
      (fun (f : Flow.t) ->
        let route_delay =
          Problem.cost problem f.src_host placement.(0)
          +. chain
          +. Problem.cost problem placement.(n - 1) f.dst_host
        in
        let direct_delay = Problem.cost problem f.src_host f.dst_host in
        {
          flow = f.id;
          route_delay;
          direct_delay;
          stretch = route_delay /. Float.max direct_delay floor;
        })
      flows
  in
  let delays = Array.map (fun m -> m.route_delay) per_flow in
  {
    per_flow;
    mean_delay = Stats.mean delays;
    p95_delay = Stats.percentile delays 0.95;
    max_delay = Array.fold_left Float.max 0.0 delays;
    mean_stretch =
      Stats.mean (Array.map (fun m -> m.stretch) per_flow);
  }

let pp_summary fmt t =
  Format.fprintf fmt "mean %.1f, p95 %.1f, max %.1f (stretch %.1fx)"
    t.mean_delay t.p95_delay t.max_delay t.mean_stretch
