module Cost_matrix = Ppdc_topology.Cost_matrix
module Graph = Ppdc_topology.Graph
module Obs = Ppdc_prelude.Obs

type table = {
  nodes : int array;  (* local index -> graph node; dst is local 0 *)
  local : (int, int) Hashtbl.t;  (* graph node -> local index *)
  counting : bool array;  (* local index counts towards "n distinct" *)
  dist : float array array;  (* metric completion, local indices *)
  dst : int;  (* graph node *)
  (* Growable level store: slot [e - 1] holds level [e] once computed.
     Capacity doubles on demand, so [level] is O(1) and the edge-budget
     escalation in [query] is linear in the number of levels rather
     than quadratic (the former list store paid List.nth per access). *)
  mutable best : float array array;
  mutable succ : int array array;
  mutable levels : int;  (* number of levels computed *)
}

(* [level t e] fetches level [e] (1-based); [e <= t.levels] required. *)
let level t e = (t.best.(e - 1), t.succ.(e - 1))

let grow_levels t =
  let capacity = Array.length t.best in
  if t.levels = capacity then begin
    let capacity' = max 8 (2 * capacity) in
    let best = Array.make capacity' [||] and succ = Array.make capacity' [||] in
    Array.blit t.best 0 best 0 capacity;
    Array.blit t.succ 0 succ 0 capacity;
    t.best <- best;
    t.succ <- succ
  end

let prepare ~cm ~dst ~candidates ~extras =
  if Array.length candidates = 0 then
    invalid_arg "Stroll_dp.prepare: no candidates";
  let local = Hashtbl.create 64 in
  let add_node acc v =
    if Hashtbl.mem local v then acc
    else begin
      Hashtbl.add local v (List.length acc);
      v :: acc
    end
  in
  (* dst first so it gets local index 0. *)
  let rev_nodes = add_node [] dst in
  let rev_nodes = Array.fold_left add_node rev_nodes candidates in
  let rev_nodes = Array.fold_left add_node rev_nodes extras in
  let nodes = Array.of_list (List.rev rev_nodes) in
  let nn = Array.length nodes in
  if
    Array.length candidates
    <> Hashtbl.length
         (let h = Hashtbl.create 64 in
          Array.iter (fun c -> Hashtbl.replace h c ()) candidates;
          h)
  then invalid_arg "Stroll_dp.prepare: duplicate candidates";
  let counting = Array.make nn false in
  Array.iter (fun c -> counting.(Hashtbl.find local c) <- true) candidates;
  counting.(0) <- false;
  (* dst never counts *)
  let dist =
    Array.init nn (fun i ->
        Array.init nn (fun j -> Cost_matrix.cost cm nodes.(i) nodes.(j)))
  in
  (* Level 1: direct hop to dst. A self "hop" (possible when a node other
     than local-0 maps to the same graph node, which prepare prevents) and
     the dst->dst hop are forbidden. *)
  let best1 = Array.init nn (fun i -> if i = 0 then infinity else dist.(i).(0)) in
  let succ1 = Array.init nn (fun i -> if i = 0 then -1 else 0) in
  let best = Array.make 8 [||] and succ = Array.make 8 [||] in
  best.(0) <- best1;
  succ.(0) <- succ1;
  Obs.incr "stroll_dp.tables";
  Obs.observe "stroll_dp.table_nodes" (float_of_int nn);
  { nodes; local; counting; dist; dst; best; succ; levels = 1 }

let extend_one_level t =
  let nn = Array.length t.nodes in
  let prev_best, prev_succ = level t t.levels in
  let best = Array.make nn infinity in
  let succ = Array.make nn (-1) in
  for i = 0 to nn - 1 do
    (* Intermediate u: not i itself, not dst (local 0), and no immediate
       backtrack (the previous level's stroll from u must not return
       straight to i). *)
    for u = 1 to nn - 1 do
      if u <> i && prev_succ.(u) <> i && prev_best.(u) < infinity then begin
        let candidate = t.dist.(i).(u) +. prev_best.(u) in
        if candidate < best.(i) then begin
          best.(i) <- candidate;
          succ.(i) <- u
        end
      end
    done
  done;
  grow_levels t;
  t.best.(t.levels) <- best;
  t.succ.(t.levels) <- succ;
  t.levels <- t.levels + 1;
  Obs.incr "stroll_dp.levels_extended"

let ensure_levels t e = while t.levels < e do extend_one_level t done

type result = {
  cost : float;
  switches : int array;
  walk : int array;
  edges : int;
}

let extract_walk t ~src_local ~edges =
  let walk = Array.make (edges + 1) (-1) in
  walk.(0) <- t.nodes.(src_local);
  let current = ref src_local in
  for step = 1 to edges do
    let _, succ = level t (edges - step + 1) in
    current := succ.(!current);
    walk.(step) <- t.nodes.(!current)
  done;
  walk

let distinct_counting t ~walk ~src ~excluded =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  Array.iter
    (fun v ->
      if
        v <> src && v <> t.dst
        && (not (Hashtbl.mem seen v))
        && (not (Hashtbl.mem excluded v))
        &&
        match Hashtbl.find_opt t.local v with
        | Some idx -> t.counting.(idx)
        | None -> false
      then begin
        Hashtbl.add seen v ();
        acc := v :: !acc
      end)
    walk;
  Array.of_list (List.rev !acc)

let query t ~src ~n ?(exclude = [||]) ?max_edges () =
  let src_local =
    match Hashtbl.find_opt t.local src with
    | Some i -> i
    | None -> invalid_arg "Stroll_dp.query: source not in table"
  in
  if n < 0 then invalid_arg "Stroll_dp.query: negative n";
  if n = 0 then begin
    (* [exclude] only withdraws counting credit, so with n = 0 it cannot
       change the answer; [max_edges] still bounds the stroll length. *)
    ignore exclude;
    let max_edges = Option.value max_edges ~default:1 in
    if max_edges < 0 then None
    else if src = t.dst then
      Some { cost = 0.0; switches = [||]; walk = [| src |]; edges = 0 }
    else if max_edges < 1 then None
    else begin
      ensure_levels t 1;
      let best, _ = level t 1 in
      Some
        {
          cost = best.(src_local);
          switches = [||];
          walk = [| src; t.dst |];
          edges = 1;
        }
    end
  end
  else begin
    let max_edges = Option.value max_edges ~default:((2 * n) + 8) in
    let excluded = Hashtbl.create (Array.length exclude) in
    Array.iter (fun v -> Hashtbl.replace excluded v ()) exclude;
    let first_attempt = n + 1 in
    let rec attempt edges =
      if edges > max_edges then None
      else begin
        (* Every retry past the minimum edge count is a budget
           escalation: the level-[edges] stroll existed but did not
           collect enough distinct counting switches. *)
        if edges > first_attempt then Obs.incr "stroll_dp.edge_escalations";
        ensure_levels t edges;
        let best, _ = level t edges in
        if Float.equal best.(src_local) infinity then attempt (edges + 1)
        else begin
          let walk = extract_walk t ~src_local ~edges in
          let distinct = distinct_counting t ~walk ~src ~excluded in
          if Array.length distinct >= n then
            Some
              {
                cost = best.(src_local);
                switches = Array.sub distinct 0 n;
                walk;
                edges;
              }
          else attempt (edges + 1)
        end
      end
    in
    attempt (n + 1)
  end

(* Nearest-neighbour fallback: hop to the closest unused counting switch
   until n are collected, then to dst. Guarantees a valid stroll whenever
   enough counting switches exist. *)
let nearest_neighbour ~cm ~src ~dst ~n ~eligible =
  Obs.incr "stroll_dp.nn_fallbacks";
  let remaining = Hashtbl.create 16 in
  Array.iter (fun v -> Hashtbl.replace remaining v ()) eligible;
  if Hashtbl.length remaining < n then
    invalid_arg
      (Printf.sprintf
         "Stroll_dp.nearest_neighbour: need %d eligible switches, have %d" n
         (Hashtbl.length remaining));
  let order = ref [] in
  let current = ref src in
  let total = ref 0.0 in
  for _ = 1 to n do
    let chosen = ref (-1) and best = ref infinity in
    Hashtbl.iter
      (fun v () ->
        let d = Cost_matrix.cost cm !current v in
        if d < !best || (Float.equal d !best && (!chosen = -1 || v < !chosen))
        then begin
          best := d;
          chosen := v
        end)
      remaining;
    assert (!chosen >= 0);
    Hashtbl.remove remaining !chosen;
    order := !chosen :: !order;
    total := !total +. !best;
    current := !chosen
  done;
  total := !total +. Cost_matrix.cost cm !current dst;
  let switches = Array.of_list (List.rev !order) in
  let walk = Array.concat [ [| src |]; switches; [| dst |] ] in
  { cost = !total; switches; walk; edges = n + 1 }

let solve ~cm ~src ~dst ~n ?candidates ?max_edges () =
  let candidates =
    match candidates with
    | Some c -> c
    | None -> Graph.switches (Cost_matrix.graph cm)
  in
  let eligible =
    Array.of_list
      (List.filter
         (fun v -> v <> src && v <> dst)
         (Array.to_list candidates))
  in
  if Array.length eligible < n then
    invalid_arg "Stroll_dp.solve: not enough candidate switches";
  let extras =
    List.filter
      (fun v -> not (Array.exists (( = ) v) candidates))
      [ src; dst ]
  in
  let table = prepare ~cm ~dst ~candidates ~extras:(Array.of_list extras) in
  match query table ~src ~n ?max_edges () with
  | Some r -> r
  | None -> nearest_neighbour ~cm ~src ~dst ~n ~eligible
