module Cost_matrix = Ppdc_topology.Cost_matrix
module Obs = Ppdc_prelude.Obs
module Graph = Ppdc_topology.Graph

(* The DP state is a bundle of growable flat buffers so that one table
   can be re-prepared for a new destination without allocating: Algo. 3
   prepares one table per candidate egress, and rebuilding the metric
   completion in place turns that fan-out's inner loops zero-alloc.
   Valid data always lives in the prefix dictated by [nn] (or [levels]);
   capacities only grow. *)
type table = {
  mutable nn : int;  (* number of local nodes; dst is local 0 *)
  mutable nodes : int array;  (* capacity >= nn: local index -> graph node *)
  mutable local : int array;
      (* capacity >= |V| of the graph: graph node -> local index, -1 when
         the node is not in the table *)
  mutable counting : Bytes.t;
      (* capacity >= nn: local index counts towards "n distinct" *)
  mutable dist : float array;
      (* capacity >= nn²: metric completion, row stride nn *)
  mutable dst : int;  (* graph node *)
  (* Growable level store: slot [e - 1] holds level [e] once computed.
     Row arrays are kept across re-prepares (only the valid prefix [nn]
     is ever read), and capacity doubles on demand so [level] is O(1)
     and the edge-budget escalation in [query] is linear in the number
     of levels. *)
  mutable best : float array array;
  mutable succ : int array array;
  mutable levels : int;  (* number of levels computed *)
}

type workspace = table

let workspace () =
  {
    nn = 0;
    nodes = [||];
    local = [||];
    counting = Bytes.empty;
    dist = [||];
    dst = -1;
    best = [||];
    succ = [||];
    levels = 0;
  }

(* [level t e] fetches level [e] (1-based); [e <= t.levels] required.
   Returned arrays may be longer than [t.nn] — only the prefix is
   meaningful. *)
let level t e = (t.best.(e - 1), t.succ.(e - 1))

let grow_levels t =
  let capacity = Array.length t.best in
  if t.levels = capacity then begin
    let capacity' = max 8 (2 * capacity) in
    let best = Array.make capacity' [||] and succ = Array.make capacity' [||] in
    Array.blit t.best 0 best 0 capacity;
    Array.blit t.succ 0 succ 0 capacity;
    t.best <- best;
    t.succ <- succ
  end

(* Fetch (allocating only on first use or growth) the row for the next
   level to be written. *)
let level_row t store =
  if Array.length store.(t.levels) < t.nn then
    store.(t.levels) <- Array.make t.nn 0.0;
  store.(t.levels)

let level_row_int t store =
  if Array.length store.(t.levels) < t.nn then
    store.(t.levels) <- Array.make t.nn 0;
  store.(t.levels)

let prepare_in t ~cm ~dst ~candidates ~extras =
  if Array.length candidates = 0 then
    invalid_arg "Stroll_dp.prepare: no candidates";
  let num_nodes = Cost_matrix.num_nodes cm in
  (* Reset the node->local map: clear the previous table's entries (the
     prefix of [nodes] tells us exactly which slots are dirty), then
     grow if this graph is larger than any seen before. *)
  for i = 0 to t.nn - 1 do
    t.local.(t.nodes.(i)) <- -1
  done;
  if Array.length t.local < num_nodes then t.local <- Array.make num_nodes (-1);
  let max_nn = 1 + Array.length candidates + Array.length extras in
  if Array.length t.nodes < max_nn then t.nodes <- Array.make max_nn (-1);
  t.nn <- 0;
  let add_node v =
    if t.local.(v) = -1 then begin
      t.local.(v) <- t.nn;
      t.nodes.(t.nn) <- v;
      t.nn <- t.nn + 1
    end
  in
  (* dst first so it gets local index 0. *)
  add_node dst;
  let before_candidates = t.nn in
  Array.iter add_node candidates;
  let added = t.nn - before_candidates in
  (* Duplicate detection without an auxiliary set: folding [candidates]
     adds every distinct candidate except [dst] (already present), so
     with no duplicates [added = length - occurrences-of-dst] and [dst]
     occurs at most once. *)
  let occ_dst =
    Array.fold_left (fun n c -> if c = dst then n + 1 else n) 0 candidates
  in
  if occ_dst > 1 || added <> Array.length candidates - occ_dst then
    invalid_arg "Stroll_dp.prepare: duplicate candidates";
  Array.iter add_node extras;
  let nn = t.nn in
  if Bytes.length t.counting < nn then t.counting <- Bytes.create nn;
  Bytes.fill t.counting 0 nn '\000';
  Array.iter (fun c -> Bytes.set t.counting t.local.(c) '\001') candidates;
  Bytes.set t.counting 0 '\000';
  (* dst never counts *)
  if Array.length t.dist < nn * nn then t.dist <- Array.make (nn * nn) 0.0;
  for i = 0 to nn - 1 do
    let row = i * nn in
    let u = t.nodes.(i) in
    for j = 0 to nn - 1 do
      t.dist.(row + j) <- Cost_matrix.cost cm u t.nodes.(j)
    done
  done;
  t.dst <- dst;
  (* Level 1: direct hop to dst. A self "hop" (possible only when two
     local indices map to the same graph node, which prepare prevents)
     and the dst->dst hop are forbidden. *)
  t.levels <- 0;
  grow_levels t;
  let best1 = level_row t t.best and succ1 = level_row_int t t.succ in
  best1.(0) <- infinity;
  succ1.(0) <- -1;
  for i = 1 to nn - 1 do
    best1.(i) <- t.dist.(i * nn);
    succ1.(i) <- 0
  done;
  t.levels <- 1;
  Obs.incr "stroll_dp.tables";
  Obs.observe "stroll_dp.table_nodes" (float_of_int nn);
  t

let prepare ~cm ~dst ~candidates ~extras =
  prepare_in (workspace ()) ~cm ~dst ~candidates ~extras

let extend_one_level t =
  let nn = t.nn in
  let prev_best, prev_succ = level t t.levels in
  grow_levels t;
  let best = level_row t t.best and succ = level_row_int t t.succ in
  for i = 0 to nn - 1 do
    best.(i) <- infinity;
    succ.(i) <- -1;
    let row = i * nn in
    (* Intermediate u: not i itself, not dst (local 0), and no immediate
       backtrack (the previous level's stroll from u must not return
       straight to i). The ban is exempt at i = 0: a walk from local 0
       only exists when src = dst, and there u "returning" to 0 is the
       walk's final hop into dst — the optimal closed stroll
       dst -> u -> dst — not a mid-walk bounce. best.(0) is never read
       as a predecessor level (u ranges over 1..nn-1), so the exemption
       cannot feed a bounce into any longer walk. *)
    for u = 1 to nn - 1 do
      if
        u <> i
        && (i = 0 || prev_succ.(u) <> i)
        && prev_best.(u) < infinity
      then begin
        let candidate = t.dist.(row + u) +. prev_best.(u) in
        if candidate < best.(i) then begin
          best.(i) <- candidate;
          succ.(i) <- u
        end
      end
    done
  done;
  t.levels <- t.levels + 1;
  Obs.incr "stroll_dp.levels_extended"

let ensure_levels t e = while t.levels < e do extend_one_level t done

type result = {
  cost : float;
  switches : int array;
  walk : int array;
  edges : int;
}

let extract_walk t ~src_local ~edges =
  let walk = Array.make (edges + 1) (-1) in
  walk.(0) <- t.nodes.(src_local);
  let current = ref src_local in
  for step = 1 to edges do
    let _, succ = level t (edges - step + 1) in
    current := succ.(!current);
    walk.(step) <- t.nodes.(!current)
  done;
  walk

let distinct_counting t ~walk ~src ~excluded =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  Array.iter
    (fun v ->
      if
        v <> src && v <> t.dst
        && (not (Hashtbl.mem seen v))
        && (not (Hashtbl.mem excluded v))
        &&
        let idx = t.local.(v) in
        idx >= 0 && Bytes.get t.counting idx <> '\000'
      then begin
        Hashtbl.add seen v ();
        acc := v :: !acc
      end)
    walk;
  Array.of_list (List.rev !acc)

let query t ~src ~n ?(exclude = [||]) ?max_edges () =
  let src_local =
    if src < 0 || src >= Array.length t.local || t.local.(src) = -1 then
      invalid_arg "Stroll_dp.query: source not in table"
    else t.local.(src)
  in
  if n < 0 then invalid_arg "Stroll_dp.query: negative n";
  if n = 0 then begin
    (* [exclude] only withdraws counting credit, so with n = 0 it cannot
       change the answer; [max_edges] still bounds the stroll length. *)
    ignore exclude;
    let max_edges = Option.value max_edges ~default:1 in
    if max_edges < 0 then None
    else if src = t.dst then
      Some { cost = 0.0; switches = [||]; walk = [| src |]; edges = 0 }
    else if max_edges < 1 then None
    else begin
      ensure_levels t 1;
      let best, _ = level t 1 in
      Some
        {
          cost = best.(src_local);
          switches = [||];
          walk = [| src; t.dst |];
          edges = 1;
        }
    end
  end
  else begin
    let max_edges = Option.value max_edges ~default:((2 * n) + 8) in
    let excluded = Hashtbl.create (Array.length exclude) in
    Array.iter (fun v -> Hashtbl.replace excluded v ()) exclude;
    let first_attempt = n + 1 in
    let rec attempt edges =
      if edges > max_edges then None
      else begin
        (* Every retry past the minimum edge count is a budget
           escalation: the level-[edges] stroll existed but did not
           collect enough distinct counting switches. *)
        if edges > first_attempt then Obs.incr "stroll_dp.edge_escalations";
        ensure_levels t edges;
        let best, _ = level t edges in
        if Float.equal best.(src_local) infinity then attempt (edges + 1)
        else begin
          let walk = extract_walk t ~src_local ~edges in
          let distinct = distinct_counting t ~walk ~src ~excluded in
          if Array.length distinct >= n then
            Some
              {
                cost = best.(src_local);
                switches = Array.sub distinct 0 n;
                walk;
                edges;
              }
          else attempt (edges + 1)
        end
      end
    in
    attempt (n + 1)
  end

(* Nearest-neighbour fallback: hop to the closest unused counting switch
   until n are collected, then to dst. Guarantees a valid stroll whenever
   enough counting switches exist. *)
let nearest_neighbour ~cm ~src ~dst ~n ~eligible =
  Obs.incr "stroll_dp.nn_fallbacks";
  let remaining = Hashtbl.create 16 in
  Array.iter (fun v -> Hashtbl.replace remaining v ()) eligible;
  if Hashtbl.length remaining < n then
    invalid_arg
      (Printf.sprintf
         "Stroll_dp.nearest_neighbour: need %d eligible switches, have %d" n
         (Hashtbl.length remaining));
  let order = ref [] in
  let current = ref src in
  let total = ref 0.0 in
  for _ = 1 to n do
    let chosen = ref (-1) and best = ref infinity in
    Hashtbl.iter
      (fun v () ->
        let d = Cost_matrix.cost cm !current v in
        if d < !best || (Float.equal d !best && (!chosen = -1 || v < !chosen))
        then begin
          best := d;
          chosen := v
        end)
      remaining;
    assert (!chosen >= 0);
    Hashtbl.remove remaining !chosen;
    order := !chosen :: !order;
    total := !total +. !best;
    current := !chosen
  done;
  total := !total +. Cost_matrix.cost cm !current dst;
  let switches = Array.of_list (List.rev !order) in
  let walk = Array.concat [ [| src |]; switches; [| dst |] ] in
  { cost = !total; switches; walk; edges = n + 1 }

let solve ~cm ~src ~dst ~n ?candidates ?max_edges () =
  let candidates =
    match candidates with
    | Some c -> c
    | None -> Graph.switches (Cost_matrix.graph cm)
  in
  let eligible =
    Array.of_list
      (List.filter
         (fun v -> v <> src && v <> dst)
         (Array.to_list candidates))
  in
  if Array.length eligible < n then
    invalid_arg "Stroll_dp.solve: not enough candidate switches";
  let extras =
    List.filter
      (fun v -> not (Array.exists (( = ) v) candidates))
      [ src; dst ]
  in
  let table = prepare ~cm ~dst ~candidates ~extras:(Array.of_list extras) in
  match query table ~src ~n ?max_edges () with
  | Some r -> r
  | None -> nearest_neighbour ~cm ~src ~dst ~n ~eligible
