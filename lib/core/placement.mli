(** VNF placement functions.

    A placement [p : {f_1..f_n} → V_s] is represented as an [int array] of
    length [n]: [p.(j)] is the switch hosting VNF [f_{j+1}]. Per the
    paper's model, the VNFs of a chain occupy distinct switches (each
    switch's attached server runs one VNF). *)

type t = int array

val validate : Problem.t -> t -> unit
(** Raises [Invalid_argument] unless the array has length [n], every
    entry is a switch of the graph, and entries are pairwise distinct. *)

val is_valid : Problem.t -> t -> bool

val equal : t -> t -> bool

val random : rng:Ppdc_prelude.Rng.t -> Problem.t -> t
(** Uniformly random valid placement — useful as a baseline starting
    point and in property tests. *)

val pp : Format.formatter -> t -> unit
(** Renders as [[f1@s3 f2@s7 ...]]. *)
