module Cost_matrix = Ppdc_topology.Cost_matrix
module Graph = Ppdc_topology.Graph
module Union_find = Ppdc_prelude.Union_find

(* --- Goemans-Williamson moat growing on the metric completion ------- *)

type component = {
  mutable active : bool;
  mutable potential : float;  (* prize money left to spend on growth *)
  members : int list;
}

(* [grow ~dist ~prize ~root ~terminal nn] runs rooted PCST moat growth on
   the complete graph with [nn] nodes and returns the forest edges chosen.
   [prize.(v)] is v's prize; the root component is never active; the
   terminal has infinite prize so it keeps growing until it reaches the
   root. *)
let grow ~dist ~prize ~root nn =
  let uf = Union_find.create nn in
  let comps = Hashtbl.create nn in
  for v = 0 to nn - 1 do
    Hashtbl.replace comps v
      { active = v <> root; potential = prize.(v); members = [ v ] }
  done;
  let moat = Array.make nn 0.0 in
  (* y(v): accumulated growth of components containing v *)
  let forest = ref [] in
  let comp_of v = Hashtbl.find comps (Union_find.find uf v) in
  let finished = ref false in
  while not !finished do
    (* Find the next event across all edges and all active components. *)
    let best_delta = ref infinity in
    let best_event = ref `None in
    for u = 0 to nn - 1 do
      for v = u + 1 to nn - 1 do
        if not (Union_find.same uf u v) then begin
          let cu = comp_of u and cv = comp_of v in
          let speed =
            (if cu.active then 1.0 else 0.0) +. if cv.active then 1.0 else 0.0
          in
          if speed > 0.0 then begin
            let slack = dist.(u).(v) -. moat.(u) -. moat.(v) in
            let delta = Float.max 0.0 (slack /. speed) in
            if delta < !best_delta then begin
              best_delta := delta;
              best_event := `Edge (u, v)
            end
          end
        end
      done
    done;
    Hashtbl.iter
      (fun r c ->
        if Union_find.find uf r = r && c.active && c.potential < !best_delta
        then begin
          best_delta := c.potential;
          best_event := `Deactivate r
        end)
      comps;
    match !best_event with
    | `None -> finished := true
    | event ->
        let delta = !best_delta in
        (* Advance time: charge every active component and its members. *)
        Hashtbl.iter
          (fun r c ->
            if Union_find.find uf r = r && c.active then begin
              c.potential <- c.potential -. delta;
              List.iter (fun v -> moat.(v) <- moat.(v) +. delta) c.members
            end)
          comps;
        (match event with
        | `Edge (u, v) ->
            forest := (u, v) :: !forest;
            let ru = Union_find.find uf u and rv = Union_find.find uf v in
            let cu = Hashtbl.find comps ru and cv = Hashtbl.find comps rv in
            let merged = Union_find.union uf ru rv in
            let c = {
              active = not (Union_find.same uf merged root);
              potential = cu.potential +. cv.potential;
              members = List.rev_append cu.members cv.members;
            }
            in
            Hashtbl.remove comps ru;
            Hashtbl.remove comps rv;
            Hashtbl.replace comps merged c
        | `Deactivate r -> (Hashtbl.find comps r).active <- false
        | `None -> ());
        (* Stop when nothing is active anymore. *)
        let any_active = ref false in
        Hashtbl.iter
          (fun r c ->
            if Union_find.find uf r = r && c.active then any_active := true)
          comps;
        if not !any_active then finished := true
  done;
  !forest

(* --- tree utilities -------------------------------------------------- *)

let tree_adjacency nn edges =
  let adj = Array.make nn [] in
  List.iter
    (fun (u, v) ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    edges;
  adj

(* Connected component of [root] in the forest. *)
let reachable nn edges root =
  let adj = tree_adjacency nn edges in
  let seen = Array.make nn false in
  let rec visit v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter visit adj.(v)
    end
  in
  visit root;
  seen

(* Lagrangian prune: repeatedly drop a leaf (other than the protected
   nodes) whose connecting edge costs more than its prize. *)
let prune ~dist ~prize ~keep nn edges =
  let edges = ref edges in
  let changed = ref true in
  while !changed do
    changed := false;
    let degree = Array.make nn 0 in
    List.iter
      (fun (u, v) ->
        degree.(u) <- degree.(u) + 1;
        degree.(v) <- degree.(v) + 1)
      !edges;
    let survives (u, v) =
      let leaf_drop leaf other =
        degree.(leaf) = 1 && (not keep.(leaf)) && dist.(leaf).(other) > prize.(leaf)
      in
      if leaf_drop u v || leaf_drop v u then begin
        changed := true;
        false
      end
      else true
    in
    edges := List.filter survives !edges
  done;
  !edges

(* Euler-style preorder of the tree from [src], visiting the child whose
   subtree contains [dst] last so the stroll naturally ends near dst. *)
let preorder ~adj ~src ~dst nn =
  let contains_dst = Array.make nn false in
  let visited = Array.make nn false in
  let rec mark v =
    visited.(v) <- true;
    let found = ref (v = dst) in
    List.iter
      (fun u ->
        if not visited.(u) then begin
          mark u;
          if contains_dst.(u) then found := true
        end)
      adj.(v);
    contains_dst.(v) <- !found
  in
  mark src;
  Array.fill visited 0 nn false;
  let order = ref [] in
  let rec walk v =
    visited.(v) <- true;
    order := v :: !order;
    let children = List.filter (fun u -> not visited.(u)) adj.(v) in
    (* Mark children visited up-front so the dst-last partition is
       stable, then recurse. *)
    let dst_side, rest = List.partition (fun u -> contains_dst.(u)) children in
    List.iter walk rest;
    List.iter (fun u -> if not visited.(u) then walk u) dst_side
  in
  walk src;
  List.rev !order

(* --- public entry ----------------------------------------------------- *)

type outcome = {
  cost : float;
  switches : int array;
  tree_cost : float;
  prize : float;
  iterations : int;
}

let solve ~cm ~src ~dst ~n ?candidates ?(iterations = 40) () =
  let candidates =
    match candidates with
    | Some c -> Array.of_list (List.filter (fun v -> v <> src && v <> dst) (Array.to_list c))
    | None ->
        Array.of_list
          (List.filter
             (fun v -> v <> src && v <> dst)
             (Array.to_list (Graph.switches (Cost_matrix.graph cm))))
  in
  if Array.length candidates < n then
    invalid_arg "Stroll_primal_dual.solve: not enough candidates";
  if n = 0 then
    {
      cost = Cost_matrix.cost cm src dst;
      switches = [||];
      tree_cost = Cost_matrix.cost cm src dst;
      prize = 0.0;
      iterations = 0;
    }
  else begin
    (* Local node table: 0 = src, 1 = dst, 2.. = candidates. *)
    let nodes = Array.concat [ [| src; dst |]; candidates ] in
    let nn = Array.length nodes in
    let dist =
      Array.init nn (fun i ->
          Array.init nn (fun j -> Cost_matrix.cost cm nodes.(i) nodes.(j)))
    in
    let keep = Array.make nn false in
    keep.(0) <- true;
    keep.(1) <- true;
    let max_dist =
      Array.fold_left
        (fun acc row -> Array.fold_left Float.max acc row)
        0.0 dist
    in
    let counting_switches edges =
      let seen = reachable nn edges 0 in
      let count = ref 0 in
      for v = 2 to nn - 1 do
        if seen.(v) then incr count
      done;
      !count
    in
    let run prize_value =
      let prize = Array.make nn prize_value in
      prize.(0) <- 0.0;
      prize.(1) <- infinity;
      let forest = grow ~dist ~prize ~root:0 nn in
      let seen = reachable nn forest 0 in
      let tree = List.filter (fun (u, v) -> seen.(u) && seen.(v)) forest in
      prune ~dist ~prize ~keep nn tree
    in
    (* Binary search for the smallest prize spanning >= n switches. *)
    let lo = ref 0.0 and hi = ref (Float.max max_dist 1.0) in
    while counting_switches (run !hi) < n do
      hi := !hi *. 2.0
    done;
    let best_tree = ref (run !hi) in
    let best_prize = ref !hi in
    let iters = ref 0 in
    for _ = 1 to iterations do
      incr iters;
      let mid = 0.5 *. (!lo +. !hi) in
      let tree = run mid in
      if counting_switches tree >= n then begin
        hi := mid;
        best_tree := tree;
        best_prize := mid
      end
      else lo := mid
    done;
    let tree = !best_tree in
    let tree_cost =
      List.fold_left (fun acc (u, v) -> acc +. dist.(u).(v)) 0.0 tree
    in
    (* Walk: shortcut the doubled tree in preorder, dst-side last; stop
       after n distinct switches; end at dst. *)
    let adj = tree_adjacency nn tree in
    let order = preorder ~adj ~src:0 ~dst:1 nn in
    let chosen = ref [] in
    let count = ref 0 in
    List.iter
      (fun v -> if v >= 2 && !count < n then begin
          chosen := v :: !chosen;
          incr count
        end)
      order;
    let sequence = List.rev !chosen in
    let cost = ref 0.0 in
    let last = ref 0 in
    List.iter
      (fun v ->
        cost := !cost +. dist.(!last).(v);
        last := v)
      sequence;
    cost := !cost +. dist.(!last).(1);
    {
      cost = !cost;
      switches = Array.of_list (List.map (fun v -> nodes.(v)) sequence);
      tree_cost;
      prize = !best_prize;
      iterations = !iters;
    }
  end
