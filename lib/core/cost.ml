module Flow = Ppdc_traffic.Flow

type attach = {
  a_in : float array;
  a_out : float array;
  total_rate : float;
}

let check_rates problem rates =
  if Array.length rates <> Problem.num_flows problem then
    invalid_arg "Cost: rate vector length mismatch";
  Array.iter
    (fun r ->
      if r < 0.0 || not (Float.is_finite r) then
        invalid_arg "Cost: rates must be finite and non-negative")
    rates

let attach problem ~rates =
  check_rates problem rates;
  let g = Problem.graph problem in
  let num_nodes = Ppdc_topology.Graph.num_nodes g in
  let a_in = Array.make num_nodes 0.0 in
  let a_out = Array.make num_nodes 0.0 in
  let flows = Problem.flows problem in
  let switches = Problem.switches problem in
  Array.iter
    (fun s ->
      Array.iter
        (fun (f : Flow.t) ->
          let rate = rates.(f.id) in
          a_in.(s) <- a_in.(s) +. (rate *. Problem.cost problem f.src_host s);
          a_out.(s) <- a_out.(s) +. (rate *. Problem.cost problem s f.dst_host))
        flows)
    switches;
  { a_in; a_out; total_rate = Flow.total_rate rates }

let chain_cost problem p =
  let acc = ref 0.0 in
  for j = 0 to Array.length p - 2 do
    acc := !acc +. Problem.cost problem p.(j) p.(j + 1)
  done;
  !acc

let comm_cost_with_attach problem att p =
  let n = Array.length p in
  att.a_in.(p.(0)) +. (att.total_rate *. chain_cost problem p)
  +. att.a_out.(p.(n - 1))

let comm_cost problem ~rates p =
  check_rates problem rates;
  let flows = Problem.flows problem in
  let n = Array.length p in
  let internal = chain_cost problem p in
  Array.fold_left
    (fun acc (f : Flow.t) ->
      let rate = rates.(f.id) in
      acc
      +. (rate
          *. (Problem.cost problem f.src_host p.(0)
              +. internal
              +. Problem.cost problem p.(n - 1) f.dst_host)))
    0.0 flows

let migration_cost problem ~mu ~src ~dst =
  if Array.length src <> Array.length dst then
    invalid_arg "Cost.migration_cost: placement length mismatch";
  if mu < 0.0 then invalid_arg "Cost.migration_cost: negative mu";
  let acc = ref 0.0 in
  for j = 0 to Array.length src - 1 do
    acc := !acc +. Problem.cost problem src.(j) dst.(j)
  done;
  mu *. !acc

let total_cost problem ~rates ~mu ~src ~dst =
  migration_cost problem ~mu ~src ~dst +. comm_cost problem ~rates dst

let moved ~src ~dst =
  if Array.length src <> Array.length dst then
    invalid_arg "Cost.moved: placement length mismatch";
  let count = ref 0 in
  Array.iteri (fun j s -> if s <> dst.(j) then incr count) src;
  !count
