module Rng = Ppdc_prelude.Rng

type t = {
  graph : Graph.t;
  switches : int array;
  hosts : int array;
}

let build ?(weight = fun () -> 1.0) ~rng ~num_switches ~extra_edges
    ~hosts_per_switch () =
  if num_switches < 1 then
    invalid_arg "Random_topology.build: need at least one switch";
  if extra_edges < 0 || hosts_per_switch < 0 then
    invalid_arg "Random_topology.build: negative count";
  let num_hosts = num_switches * hosts_per_switch in
  let kinds =
    Array.init (num_switches + num_hosts) (fun i ->
        if i < num_switches then Graph.Switch else Graph.Host)
  in
  let present = Hashtbl.create (num_switches * 2) in
  let edges = ref [] in
  let add u v =
    let key = (min u v, max u v) in
    if u <> v && not (Hashtbl.mem present key) then begin
      Hashtbl.add present key ();
      edges := (u, v, weight ()) :: !edges;
      true
    end
    else false
  in
  (* Random spanning tree: attach each switch to a uniformly random
     earlier switch of a shuffled order. *)
  let order = Array.init num_switches (fun i -> i) in
  Rng.shuffle rng order;
  for i = 1 to num_switches - 1 do
    let parent = order.(Rng.int rng i) in
    ignore (add order.(i) parent)
  done;
  (* Extra random switch-switch links. *)
  let max_possible = num_switches * (num_switches - 1) / 2 in
  let target = min extra_edges (max_possible - (num_switches - 1)) in
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < target && !attempts < 50 * (target + 1) do
    incr attempts;
    let u = Rng.int rng num_switches and v = Rng.int rng num_switches in
    if add u v then incr added
  done;
  (* Hosts. *)
  for s = 0 to num_switches - 1 do
    for h = 0 to hosts_per_switch - 1 do
      ignore (add s (num_switches + (s * hosts_per_switch) + h))
    done
  done;
  let graph = Graph.make ~kinds ~edges:!edges in
  {
    graph;
    switches = Array.init num_switches (fun i -> i);
    hosts = Array.init num_hosts (fun i -> num_switches + i);
  }
