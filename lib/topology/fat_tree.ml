type t = {
  graph : Graph.t;
  k : int;
  core : int array;
  aggregation : int array;
  edge : int array;
  hosts : int array;
}

let build ?(weight = fun _ _ -> 1.0) k =
  if k < 2 || k mod 2 <> 0 then
    invalid_arg "Fat_tree.build: k must be even and >= 2";
  let half = k / 2 in
  let num_core = half * half in
  let num_agg = k * half in
  let num_edge = k * half in
  let num_hosts = k * half * half in
  let num_switches = num_core + num_agg + num_edge in
  (* Node layout: switches first (core, then aggregation pod-major, then
     edge pod-major), hosts last, grouped by edge switch. *)
  let core = Array.init num_core (fun i -> i) in
  let aggregation = Array.init num_agg (fun i -> num_core + i) in
  let edge = Array.init num_edge (fun i -> num_core + num_agg + i) in
  let hosts = Array.init num_hosts (fun i -> num_switches + i) in
  let kinds =
    Array.init (num_switches + num_hosts) (fun i ->
        if i < num_switches then Graph.Switch else Graph.Host)
  in
  let edges = ref [] in
  let connect u v = edges := (u, v, weight u v) :: !edges in
  (* Core <-> aggregation: aggregation switch j of a pod connects to core
     switches [j*half .. (j+1)*half - 1]. *)
  for pod = 0 to k - 1 do
    for j = 0 to half - 1 do
      let agg = aggregation.((pod * half) + j) in
      for c = 0 to half - 1 do
        connect core.((j * half) + c) agg
      done
    done
  done;
  (* Aggregation <-> edge: complete bipartite within each pod. *)
  for pod = 0 to k - 1 do
    for j = 0 to half - 1 do
      for e = 0 to half - 1 do
        connect aggregation.((pod * half) + j) edge.((pod * half) + e)
      done
    done
  done;
  (* Edge <-> hosts: half hosts per edge switch. *)
  for e = 0 to num_edge - 1 do
    for h = 0 to half - 1 do
      connect edge.(e) hosts.((e * half) + h)
    done
  done;
  let graph = Graph.make ~kinds ~edges:!edges in
  { graph; k; core; aggregation; edge; hosts }

let host_index t host =
  let first_host = t.hosts.(0) in
  let idx = host - first_host in
  if idx < 0 || idx >= Array.length t.hosts then
    invalid_arg (Printf.sprintf "Fat_tree: node %d is not a host" host);
  idx

let rack_of_host t host = host_index t host / (t.k / 2)

let edge_switch_of_host t host = t.edge.(rack_of_host t host)

let pod_of_host t host = rack_of_host t host / (t.k / 2)

let num_racks t = Array.length t.edge

let hosts_of_rack t rack =
  let half = t.k / 2 in
  if rack < 0 || rack >= num_racks t then
    invalid_arg (Printf.sprintf "Fat_tree.hosts_of_rack: rack %d out of range" rack);
  Array.sub t.hosts (rack * half) half
