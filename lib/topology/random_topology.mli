(** Random connected data-center topologies (jellyfish-style).

    The paper notes its problems and solutions "apply to any data center
    topology"; this builder produces seeded random switch fabrics so the
    algorithms can be exercised beyond fat-trees (tests, ablations). The
    switch fabric is a uniform random spanning tree plus [extra_edges]
    additional random switch-switch links, so it is always connected. *)

type t = {
  graph : Graph.t;
  switches : int array;
  hosts : int array;
}

val build :
  ?weight:(unit -> float) ->
  rng:Ppdc_prelude.Rng.t ->
  num_switches:int ->
  extra_edges:int ->
  hosts_per_switch:int ->
  unit ->
  t
(** [build ~rng ~num_switches ~extra_edges ~hosts_per_switch ()] makes a
    connected random fabric; each switch carries [hosts_per_switch] hosts.
    [weight] samples each link's weight (default: constant 1.0). Fewer
    than [extra_edges] may be added if the switch graph saturates. Raises
    [Invalid_argument] if [num_switches < 1] or counts are negative. *)
