let of_graph ?(highlight = []) ?(labels = fun _ -> None) g =
  let buffer = Buffer.create 1024 in
  let highlighted = Hashtbl.create (List.length highlight) in
  List.iter (fun v -> Hashtbl.replace highlighted v ()) highlight;
  Buffer.add_string buffer "graph ppdc {\n";
  Buffer.add_string buffer "  node [fontname=\"sans-serif\"];\n";
  (* Stable human labels: switches and hosts numbered within their kind. *)
  let switch_index = Hashtbl.create 16 and host_index = Hashtbl.create 16 in
  Array.iteri (fun i s -> Hashtbl.replace switch_index s i) (Graph.switches g);
  Array.iteri (fun i h -> Hashtbl.replace host_index h i) (Graph.hosts g);
  let default_label v =
    match Graph.kind g v with
    | Graph.Switch -> Printf.sprintf "s%d" (Hashtbl.find switch_index v)
    | Graph.Host -> Printf.sprintf "h%d" (Hashtbl.find host_index v)
  in
  for v = 0 to Graph.num_nodes g - 1 do
    let shape =
      match Graph.kind g v with Graph.Switch -> "box" | Graph.Host -> "ellipse"
    in
    let fill =
      if Hashtbl.mem highlighted v then ", style=filled, fillcolor=\"#ffd27f\""
      else ""
    in
    let label = Option.value (labels v) ~default:(default_label v) in
    Buffer.add_string buffer
      (Printf.sprintf "  n%d [label=\"%s\", shape=%s%s];\n" v label shape fill)
  done;
  List.iter
    (fun (u, v, w) ->
      if Float.equal w 1.0 then
        Buffer.add_string buffer (Printf.sprintf "  n%d -- n%d;\n" u v)
      else
        Buffer.add_string buffer
          (Printf.sprintf "  n%d -- n%d [label=\"%.2g\"];\n" u v w))
    (Graph.edges g);
  Buffer.add_string buffer "}\n";
  Buffer.contents buffer
