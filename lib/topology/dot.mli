(** Graphviz (DOT) export of PPDC topologies.

    For documentation and debugging: switches render as boxes, hosts as
    ellipses, and an optional highlight set (e.g. the switches of a VNF
    placement) is filled. Pipe through [dot -Tsvg] / [neato -Tpng] to
    render. *)

val of_graph :
  ?highlight:int list ->
  ?labels:(int -> string option) ->
  Graph.t ->
  string
(** [of_graph g] is a complete [graph { ... }] document. [highlight]
    fills the listed nodes; [labels] overrides a node's label (default:
    [sN] for switches, [hN] for hosts, numbered within their kind). Edge
    labels show non-unit weights. *)
