(** Two-tier leaf–spine (folded Clos) data-center topology.

    The dominant modern alternative to the fat-tree: [leaves] top-of-rack
    switches each connect to every one of the [spines] switches, and each
    leaf carries [hosts_per_leaf] hosts. Any two hosts in different racks
    are exactly four hops apart (host–leaf–spine–leaf–host), which makes
    leaf–spine a useful stress case for the placement algorithms: unlike
    a fat-tree there is no "core equidistance" tier — spines are 2 hops
    from every host, leaves are 1 hop from their own rack and 3 from the
    rest. The paper's problems and solutions "apply to any data center
    topology"; this builder (and {!Random_topology}) back that claim in
    tests. *)

type t = {
  graph : Graph.t;
  spines : int array;
  leaves : int array;
  hosts : int array;  (** grouped by leaf *)
}

val build :
  ?weight:(int -> int -> float) ->
  spines:int ->
  leaves:int ->
  hosts_per_leaf:int ->
  unit ->
  t
(** [build ~spines ~leaves ~hosts_per_leaf ()] constructs the fabric
    with [weight u v] on each link (default constant 1.0). Raises
    [Invalid_argument] if any count is < 1. *)

val leaf_of_host : t -> int -> int
(** The leaf (rack) switch a host attaches to. *)

val hosts_of_leaf : t -> int -> int array
(** Hosts under the given leaf index (0-based). *)
