(* The whole all-pairs result lives in two flat Bigarrays with row
   stride [n]: [dist.{src * n + dst}] and [pred.{src * n + dst}]. Flat
   rows keep the per-source Dijkstra writes and the solvers' row scans
   on contiguous memory, and Bigarray storage keeps the matrices out of
   the GC-scanned heap — a |V|² [int array] of predecessors is a tag-0
   block the major collector would otherwise walk in full (~700 MB per
   mark cycle at k=32). This is the layout the flat-graph benches
   (BENCH_flatgraph.json) hold the line on. *)
type t = {
  graph : Graph.t;
  n : int;  (* row stride *)
  dist : Shortest_paths.dist_row;  (* length n * n *)
  pred : Shortest_paths.pred_row;
      (* length n * n; row src is the tree rooted at src *)
}

module Obs = Ppdc_prelude.Obs

(* One Dijkstra per source, distributed over the domain pool: each task
   writes only its own row segment [src*n .. src*n + n - 1] of the
   shared flat arrays, so the result is identical to the sequential
   loop's for any PPDC_DOMAINS. *)
let compute ?algo graph =
  Obs.time "cost_matrix.compute" @@ fun () ->
  let n = Graph.num_nodes graph in
  let dist = Shortest_paths.alloc_dist_rows (max (n * n) 1) in
  let pred = Shortest_paths.alloc_pred_rows (max (n * n) 1) in
  Ppdc_prelude.Parallel.parallel_for n (fun src ->
      let base = src * n in
      (Obs.time "cost_matrix.dijkstra" @@ fun () ->
       Shortest_paths.dijkstra_into ?algo graph ~src ~dist ~pred ~base);
      for v = base to base + n - 1 do
        if not (Float.is_finite dist.{v}) then
          invalid_arg "Cost_matrix.compute: graph is not connected"
      done);
  Obs.incr ~by:n "cost_matrix.dijkstra_runs";
  { graph; n; dist; pred }

let graph t = t.graph

let cost t u v = t.dist.{(u * t.n) + v}

let stride t = t.n
let costs t = t.dist

let path t ~src ~dst =
  let base = src * t.n in
  if t.pred.{base + dst} = -1 then
    (* [compute] rejects disconnected graphs, so every pair has a path;
       an unreachable row entry here means memory corruption. *)
    invalid_arg "Cost_matrix.path: unreachable destination"
  else begin
    let rec walk v acc =
      if v = src then v :: acc else walk t.pred.{base + v} (v :: acc)
    in
    walk dst []
  end

let switch_path t ~src ~dst =
  List.filter (Graph.is_switch t.graph) (path t ~src ~dst)

(* [path] never returns [] (it is [[src]] when [src = dst]), so the hop
   count is unambiguous: 0 exactly when [src = dst]. The former
   [max 0 (len - 1)] collapsed "unreachable" and "same node" to 0. *)
let hop_count t ~src ~dst = List.length (path t ~src ~dst) - 1

let diameter t =
  let acc = ref 0.0 in
  for i = 0 to (t.n * t.n) - 1 do
    acc := Float.max !acc t.dist.{i}
  done;
  !acc

let num_nodes t = t.n
