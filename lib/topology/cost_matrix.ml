(* The whole all-pairs result lives in two flat Bigarrays with row
   stride [n]: [dist.{src * n + dst}] and [pred.{src * n + dst}]. Flat
   rows keep the per-source Dijkstra writes and the solvers' row scans
   on contiguous memory, and Bigarray storage keeps the matrices out of
   the GC-scanned heap — a |V|² [int array] of predecessors is a tag-0
   block the major collector would otherwise walk in full (~700 MB per
   mark cycle at k=32). This is the layout the flat-graph benches
   (BENCH_flatgraph.json) hold the line on. *)
type t = {
  graph : Graph.t;
  n : int;  (* row stride *)
  dist : Shortest_paths.dist_row;  (* length n * n *)
  pred : Shortest_paths.pred_row;
      (* length n * n; row src is the tree rooted at src *)
}

module Obs = Ppdc_prelude.Obs

(* One Dijkstra per source, distributed over the domain pool: each task
   writes only its own row segment [src*n .. src*n + n - 1] of the
   shared flat arrays, so the result is identical to the sequential
   loop's for any PPDC_DOMAINS. *)
let compute ?algo graph =
  Obs.time "cost_matrix.compute" @@ fun () ->
  let n = Graph.num_nodes graph in
  let dist = Shortest_paths.alloc_dist_rows (max (n * n) 1) in
  let pred = Shortest_paths.alloc_pred_rows (max (n * n) 1) in
  Ppdc_prelude.Parallel.parallel_for n (fun src ->
      let base = src * n in
      (Obs.time "cost_matrix.dijkstra" @@ fun () ->
       Shortest_paths.dijkstra_into ?algo graph ~src ~dist ~pred ~base);
      for v = base to base + n - 1 do
        if not (Float.is_finite dist.{v}) then
          invalid_arg "Cost_matrix.compute: graph is not connected"
      done);
  Obs.incr ~by:n "cost_matrix.dijkstra_runs";
  { graph; n; dist; pred }

(* --- dynamic repair ------------------------------------------------------ *)

(* A structural delta that repair can localize. [Delete]/[Increase]
   can only lengthen paths, so they affect exactly the sources whose
   shortest-path trees used the edge. [Relax (u, v, w)] — a weight
   decrease or a restored/inserted edge of new weight [w] — can only
   shorten paths *through* the edge, so it affects exactly the sources
   for which the edge is now competitive at either endpoint (the
   distance test in [row_affected]). Only a node-count or node-kind
   change remains non-localizable and forces a cold [compute]. *)
type change =
  | Delete of int * int
  | Increase of int * int
  | Relax of int * int * float  (* new (decreased or inserted) weight *)

(* Diff two canonically sorted edge arrays (u < v, sorted — the
   [Graph.edges] contract). [None] only when the node sets/kinds
   differ; every edge-level delta maps to a [change]. O(|E|). *)
let diff_changes g g' =
  let kinds_equal =
    Graph.num_nodes g = Graph.num_nodes g'
    && (let ok = ref true in
        for v = 0 to Graph.num_nodes g - 1 do
          if Graph.kind g v <> Graph.kind g' v then ok := false
        done;
        !ok)
  in
  if not kinds_equal then None
  else begin
    let old_edges = Array.of_list (Graph.edges g) in
    let new_edges = Array.of_list (Graph.edges g') in
    let changes = ref [] in
    let i = ref 0 and j = ref 0 in
    let no = Array.length old_edges and nn = Array.length new_edges in
    while !i < no || !j < nn do
      if !j >= nn then begin
        let u, v, _ = old_edges.(!i) in
        changes := Delete (u, v) :: !changes;
        incr i
      end
      else if !i >= no then begin
        let u', v', w' = new_edges.(!j) in
        changes := Relax (u', v', w') :: !changes;
        incr j
      end
      else begin
        let u, v, w = old_edges.(!i) in
        let u', v', w' = new_edges.(!j) in
        match Int.compare u u' with
        | 0 -> (
            match Int.compare v v' with
            | 0 ->
                (match Float.compare w' w with
                | 0 -> ()
                | c when c > 0 -> changes := Increase (u, v) :: !changes
                | _ -> changes := Relax (u, v, w') :: !changes);
                incr i;
                incr j
            | c when c < 0 ->
                changes := Delete (u, v) :: !changes;
                incr i
            | _ ->
                changes := Relax (u', v', w') :: !changes;
                incr j)
        | c when c < 0 ->
            changes := Delete (u, v) :: !changes;
            incr i
        | _ ->
            changes := Relax (u', v', w') :: !changes;
            incr j
      end
    done;
    Some !changes
  end

(* A source [src] is affected by a [Delete]/[Increase] of edge (u, v)
   exactly when its shortest-path tree uses that edge. Every tree edge
   appears as exactly one parent link, so the membership test is O(1)
   per (source, edge): the tree uses (u, v) iff [pred.(v) = u] or
   [pred.(u) = v] in [src]'s row — no scan of the row is needed.

   A [Relax (u, v, w)] (decrease or restored edge) cannot be tested by
   tree membership — a brand-new edge is in nobody's tree — but it can
   only shorten paths that cross it, so [src] is affected exactly when
   the edge is competitive at one endpoint against the *old* distances:
   [dist(src, u) + w <= dist(src, v)] or symmetrically. Strictly-less
   would miss the equality case, where distances stay put but the new
   edge becomes an equal-cost parent candidate and can displace the
   canonical (lowest-numbered-predecessor) tree's choice at [u] or
   [v] — hence [<=], which re-runs exactly those rows too.

   Why unaffected rows survive byte-identical, even under a mixed
   change set: if a row fails every test above, its old tree avoids
   every deleted/increased edge, so all its paths survive in [g'] at
   unchanged cost; and any allegedly shorter new path must cross some
   relaxed edge (u, v, w) — say first at (u → v) — which costs at least
   [dist(u) + w > dist(v)] by the failed test (old distances are lower
   bounds for prefixes of any path, by induction on the number of
   changed-edge traversals), so it shortens nothing. Distances
   unchanged, and since both engines freeze the tree as the
   lowest-numbered-predecessor tree — a pure function of [dist] and
   the adjacency (see Shortest_paths) — [pred.(x)] is the least
   neighbour [y] with [dist.(y) + w(y, x) = dist.(x)]: a deleted edge
   with [pred.(v) <> u] was not the ranking candidate, an increase
   only pushes a non-candidate further from candidacy (Dijkstra's
   invariant gives [dist.(u) + w >= dist.(v)] beforehand), and a
   relaxed edge that failed the [<=] test is strictly
   non-competitive. *)
let row_affected t ~base changes =
  List.exists
    (fun c ->
      match c with
      | Delete (u, v) | Increase (u, v) ->
          t.pred.{base + v} = u || t.pred.{base + u} = v
      | Relax (u, v, w) ->
          t.dist.{base + u} +. w <= t.dist.{base + v}
          || t.dist.{base + v} +. w <= t.dist.{base + u})
    changes

let repair_rows ?algo t g' changes =
  Obs.time "cost_matrix.repair" @@ fun () ->
  let n = t.n in
  let dist = Shortest_paths.alloc_dist_rows (max (n * n) 1) in
  let pred = Shortest_paths.alloc_pred_rows (max (n * n) 1) in
  (* Copy-on-write at matrix granularity: the parent's rows are blitted
     once (a flat memcpy, no GC traffic) and only affected rows are
     overwritten, so the parent matrix — possibly still cached under
     its own digest — is never mutated, and unaffected rows are
     byte-identical to the parent's by construction. *)
  Bigarray.Array1.blit t.dist dist;
  Bigarray.Array1.blit t.pred pred;
  let affected =
    Array.init n (fun src -> row_affected t ~base:(src * n) changes)
  in
  let repaired = ref 0 in
  Array.iter (fun a -> if a then incr repaired) affected;
  Ppdc_prelude.Parallel.parallel_for n (fun src ->
      if affected.(src) then begin
        let base = src * n in
        (Obs.time "cost_matrix.dijkstra" @@ fun () ->
         Shortest_paths.dijkstra_into ?algo g' ~src ~dist ~pred ~base);
        for v = base to base + n - 1 do
          if not (Float.is_finite dist.{v}) then
            invalid_arg "Cost_matrix.repair: graph is not connected"
        done
      end);
  Obs.incr ~by:!repaired "cost_matrix.repair.rows";
  Obs.incr "cost_matrix.repair.calls";
  ({ graph = g'; n; dist; pred }, !repaired)

let repair_to ?algo t g' =
  match diff_changes t.graph g' with
  | None -> None
  | Some [] ->
      (* Structurally identical fabric: the matrices can be shared as
         they are; only the graph handle moves. *)
      Some ({ t with graph = g' }, 0)
  | Some changes -> Some (repair_rows ?algo t g' changes)

let graph_without_edge g ~u ~v =
  let found = ref false in
  let edges =
    List.filter
      (fun (a, b, _) ->
        let hit = (a = u && b = v) || (a = v && b = u) in
        if hit then found := true;
        not hit)
      (Graph.edges g)
  in
  if not !found then None
  else
    Some
      (Graph.make
         ~kinds:(Array.init (Graph.num_nodes g) (Graph.kind g))
         ~edges)

let delete_edge ?algo t ~u ~v =
  match graph_without_edge t.graph ~u ~v with
  | None -> invalid_arg "Cost_matrix.delete_edge: no such edge"
  | Some g' -> fst (repair_rows ?algo t g' [ Delete (u, v) ])

let increase_weight ?algo t ~u ~v ~weight =
  match Graph.edge_weight t.graph u v with
  | None -> invalid_arg "Cost_matrix.increase_weight: no such edge"
  | Some w when Float.compare weight w < 0 ->
      invalid_arg
        "Cost_matrix.increase_weight: new weight is smaller (use \
         decrease_weight)"
  | Some w ->
      let g' =
        Graph.map_weights t.graph (fun a b wab ->
            if (a = u && b = v) || (a = v && b = u) then weight else wab)
      in
      if Float.compare weight w = 0 then { t with graph = g' }
      else fst (repair_rows ?algo t g' [ Increase (min u v, max u v) ])

let decrease_weight ?algo t ~u ~v ~weight =
  if not (Float.is_finite weight) || weight <= 0.0 then
    invalid_arg "Cost_matrix.decrease_weight: weight must be finite positive";
  match Graph.edge_weight t.graph u v with
  | None -> invalid_arg "Cost_matrix.decrease_weight: no such edge"
  | Some w when Float.compare weight w > 0 ->
      invalid_arg
        "Cost_matrix.decrease_weight: new weight is larger (use \
         increase_weight)"
  | Some w ->
      let g' =
        Graph.map_weights t.graph (fun a b wab ->
            if (a = u && b = v) || (a = v && b = u) then weight else wab)
      in
      if Float.compare weight w = 0 then { t with graph = g' }
      else fst (repair_rows ?algo t g' [ Relax (min u v, max u v, weight) ])

let restore_edge ?algo t ~u ~v ~weight =
  if not (Float.is_finite weight) || weight <= 0.0 then
    invalid_arg "Cost_matrix.restore_edge: weight must be finite positive";
  (match Graph.edge_weight t.graph u v with
  | Some _ -> invalid_arg "Cost_matrix.restore_edge: edge already present"
  | None -> ());
  let g' =
    (* [Graph.make] re-validates (self-loop, range, host-host). *)
    Graph.make
      ~kinds:(Array.init (Graph.num_nodes t.graph) (Graph.kind t.graph))
      ~edges:((min u v, max u v, weight) :: Graph.edges t.graph)
  in
  fst (repair_rows ?algo t g' [ Relax (min u v, max u v, weight) ])

let graph t = t.graph

let cost t u v = t.dist.{(u * t.n) + v}

let stride t = t.n
let costs t = t.dist

let path t ~src ~dst =
  let base = src * t.n in
  if t.pred.{base + dst} = -1 then
    (* [compute] rejects disconnected graphs, so every pair has a path;
       an unreachable row entry here means memory corruption. *)
    invalid_arg "Cost_matrix.path: unreachable destination"
  else begin
    let rec walk v acc =
      if v = src then v :: acc else walk t.pred.{base + v} (v :: acc)
    in
    walk dst []
  end

let switch_path t ~src ~dst =
  List.filter (Graph.is_switch t.graph) (path t ~src ~dst)

(* [path] never returns [] (it is [[src]] when [src = dst]), so the hop
   count is unambiguous: 0 exactly when [src = dst]. The former
   [max 0 (len - 1)] collapsed "unreachable" and "same node" to 0. *)
let hop_count t ~src ~dst = List.length (path t ~src ~dst) - 1

let diameter t =
  let acc = ref 0.0 in
  for i = 0 to (t.n * t.n) - 1 do
    acc := Float.max !acc t.dist.{i}
  done;
  !acc

let num_nodes t = t.n
