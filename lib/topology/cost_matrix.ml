type t = {
  graph : Graph.t;
  dist : float array array;  (* dist.(src).(dst) *)
  pred : int array array;  (* pred.(src).(dst) on the tree rooted at src *)
}

module Obs = Ppdc_prelude.Obs

(* One Dijkstra per source, distributed over the domain pool: each task
   only writes its own [dist]/[pred] slot, so the rows are identical to
   the sequential loop's for any PPDC_DOMAINS. *)
let compute graph =
  Obs.time "cost_matrix.compute" @@ fun () ->
  let n = Graph.num_nodes graph in
  let dist = Array.make n [||] and pred = Array.make n [||] in
  Ppdc_prelude.Parallel.parallel_for n (fun src ->
      let d, p =
        Obs.time "cost_matrix.dijkstra" @@ fun () ->
        Shortest_paths.dijkstra graph ~src
      in
      Array.iter
        (fun x ->
          if Float.equal x infinity then
            invalid_arg "Cost_matrix.compute: graph is not connected")
        d;
      dist.(src) <- d;
      pred.(src) <- p);
  Obs.incr ~by:n "cost_matrix.dijkstra_runs";
  { graph; dist; pred }

let graph t = t.graph

let cost t u v = t.dist.(u).(v)

let path t ~src ~dst =
  Shortest_paths.path_from_pred ~pred:t.pred.(src) ~src ~dst

let switch_path t ~src ~dst =
  List.filter (Graph.is_switch t.graph) (path t ~src ~dst)

let hop_count t ~src ~dst = max 0 (List.length (path t ~src ~dst) - 1)

let diameter t =
  Array.fold_left
    (fun acc row -> Array.fold_left Float.max acc row)
    0.0 t.dist

let num_nodes t = Array.length t.dist
