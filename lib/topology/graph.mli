(** Undirected weighted PPDC graph.

    A policy-preserving data center is modelled as [G(V, E)] with
    [V = V_h ∪ V_s]: hosts (where VMs live) and switches (each of which has
    an attached server able to run one VNF). Edges connect a switch to a
    switch or a switch to a host, and carry a positive weight — the
    network-delay or energy cost of one unit of traffic crossing the link
    (Section III of the paper).

    Node identifiers are dense integers [0 .. num_nodes - 1]. The structure
    is immutable once built.

    Internally the adjacency is a flat CSR (compressed sparse row)
    layout — one [row_ptr] index array plus parallel [targets]/[weights]
    arrays — so whole-graph sweeps (Dijkstra per source) touch memory
    linearly. The {!csr_row_ptr}/{!csr_targets}/{!csr_weights} accessors
    expose the raw arrays to hot paths; see DESIGN.md "Memory layout". *)

type node_kind = Host | Switch

type t

val make : kinds:node_kind array -> edges:(int * int * float) list -> t
(** [make ~kinds ~edges] builds a graph whose node [i] has kind
    [kinds.(i)], with the given undirected weighted edges.

    Raises [Invalid_argument] if an edge is a self-loop, has a
    non-positive weight, references an out-of-range node, connects two
    hosts (hosts attach only to switches in a PPDC), or appears twice. *)

val num_nodes : t -> int
val num_edges : t -> int
val num_hosts : t -> int
val num_switches : t -> int

val kind : t -> int -> node_kind
val is_host : t -> int -> bool
val is_switch : t -> int -> bool

val hosts : t -> int array
(** Host node ids in increasing order. The returned array is fresh. *)

val switches : t -> int array
(** Switch node ids in increasing order. The returned array is fresh. *)

val degree : t -> int -> int

val iter_neighbors : t -> int -> (int -> float -> unit) -> unit
(** [iter_neighbors g u f] calls [f v w] for every edge [(u, v)] of
    weight [w]. *)

val neighbors : t -> int -> (int * float) list

val edge_weight : t -> int -> int -> float option
(** Weight of the edge between two nodes, if present. *)

val edges : t -> (int * int * float) list
(** All edges, each reported once with endpoints in increasing order. *)

val csr_row_ptr : t -> int array
(** CSR row index: the neighbours of [u] occupy slots
    [csr_row_ptr g.(u) .. csr_row_ptr g.(u+1) - 1] of {!csr_targets} and
    {!csr_weights}. Length [num_nodes g + 1]. The returned array is the
    graph's own storage — callers must not mutate it. *)

val csr_targets : t -> int array
(** CSR neighbour array (length [2 · num_edges g]), parallel to
    {!csr_weights}. Shared storage — do not mutate. *)

val csr_weights : t -> float array
(** CSR weight array, parallel to {!csr_targets}. Shared storage — do
    not mutate. *)

val integral_weights : t -> (int array * int) option
(** [Some (iw, bound)] when every edge weight is an integer in
    [1 .. 4096]: [iw] carries the weights as ints, parallel to
    {!csr_targets}, and [bound] is the largest weight. This is the
    precondition for the dial (bucket-queue) Dijkstra fast path — unit-
    weight fat-tree/leaf-spine fabrics always qualify. [None] otherwise
    (fractional, non-positive-after-mapping, or very coarse weights).
    Shared storage — do not mutate. *)

val map_weights : t -> (int -> int -> float -> float) -> t
(** [map_weights g f] is [g] with each edge [(u, v, w)], [u < v], carrying
    weight [f u v w] instead. Used to turn an unweighted (unit-cost)
    topology into a weighted one, e.g. uniform link delays. Raises
    [Invalid_argument] if [f] produces a non-positive weight. *)

val digest : t -> string
(** Structural fingerprint (hex MD5) over node kinds, edges and edge
    weights. Independent of the order edges were passed to {!make} (the
    edge list is canonicalized at build time), so two graphs built from
    the same node/edge data always agree; changing a single weight —
    weights hash by IEEE bit pattern — or any node kind or edge changes
    the digest. [Ppdc_server] uses this as the cache key for all-pairs
    cost matrices. *)

val pp : Format.formatter -> t -> unit
(** One-line structural summary for logs. *)
