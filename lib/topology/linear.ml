type t = {
  graph : Graph.t;
  switches : int array;
  hosts : int array;
}

let build ?(weight = 1.0) ?host_positions ~num_switches () =
  if num_switches < 1 then invalid_arg "Linear.build: need at least one switch";
  let host_positions =
    match host_positions with
    | Some ps -> ps
    | None -> if num_switches = 1 then [ 0 ] else [ 0; num_switches - 1 ]
  in
  List.iter
    (fun p ->
      if p < 0 || p >= num_switches then
        invalid_arg (Printf.sprintf "Linear.build: host position %d out of range" p))
    host_positions;
  let num_hosts = List.length host_positions in
  let kinds =
    Array.init (num_switches + num_hosts) (fun i ->
        if i < num_switches then Graph.Switch else Graph.Host)
  in
  let chain =
    List.init (max 0 (num_switches - 1)) (fun i -> (i, i + 1, weight))
  in
  let host_links =
    List.mapi (fun i p -> (p, num_switches + i, weight)) host_positions
  in
  let graph = Graph.make ~kinds ~edges:(chain @ host_links) in
  {
    graph;
    switches = Array.init num_switches (fun i -> i);
    hosts = Array.init num_hosts (fun i -> num_switches + i);
  }
