type t = {
  graph : Graph.t;
  spines : int array;
  leaves : int array;
  hosts : int array;
}

let build ?(weight = fun _ _ -> 1.0) ~spines ~leaves ~hosts_per_leaf () =
  if spines < 1 || leaves < 1 || hosts_per_leaf < 1 then
    invalid_arg "Leaf_spine.build: all counts must be >= 1";
  let num_switches = spines + leaves in
  let num_hosts = leaves * hosts_per_leaf in
  let kinds =
    Array.init (num_switches + num_hosts) (fun i ->
        if i < num_switches then Graph.Switch else Graph.Host)
  in
  let spine_ids = Array.init spines (fun i -> i) in
  let leaf_ids = Array.init leaves (fun i -> spines + i) in
  let host_ids = Array.init num_hosts (fun i -> num_switches + i) in
  let edges = ref [] in
  Array.iter
    (fun leaf ->
      Array.iter
        (fun spine -> edges := (spine, leaf, weight spine leaf) :: !edges)
        spine_ids)
    leaf_ids;
  Array.iteri
    (fun i host ->
      let leaf = leaf_ids.(i / hosts_per_leaf) in
      edges := (leaf, host, weight leaf host) :: !edges)
    host_ids;
  {
    graph = Graph.make ~kinds ~edges:!edges;
    spines = spine_ids;
    leaves = leaf_ids;
    hosts = host_ids;
  }

let leaf_of_host t host =
  let first = t.hosts.(0) in
  let idx = host - first in
  if idx < 0 || idx >= Array.length t.hosts then
    invalid_arg (Printf.sprintf "Leaf_spine: node %d is not a host" host);
  let hosts_per_leaf = Array.length t.hosts / Array.length t.leaves in
  t.leaves.(idx / hosts_per_leaf)

let hosts_of_leaf t leaf =
  let hosts_per_leaf = Array.length t.hosts / Array.length t.leaves in
  if leaf < 0 || leaf >= Array.length t.leaves then
    invalid_arg (Printf.sprintf "Leaf_spine.hosts_of_leaf: leaf %d" leaf);
  Array.sub t.hosts (leaf * hosts_per_leaf) hosts_per_leaf
