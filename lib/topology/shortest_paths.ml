module Int_heap = Ppdc_prelude.Pqueue.Int_heap

type dist_row = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
type pred_row = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type algo = Auto | Heap | Dial

(* All-pairs rows live in Bigarrays, not OCaml arrays, for a reason that
   is easy to miss: a flat [int array] of |V|² predecessor slots is a
   scannable (tag-0) heap block, so every major GC mark pass reads the
   whole matrix — ~700 MB per cycle on a k=32 fat-tree, which throttled
   the previous nested representation far below memory bandwidth.
   Bigarray storage is off-heap: never scanned, never moved, no
   initialization cost at allocation. *)

(* Both engines share the relaxation discipline:

   - strict improvement moves [dist]/[pred] and (re)queues the node;
   - an equal-cost candidate only rewrites [pred.(v)] towards the
     lowest-numbered predecessor while [v] is NOT yet settled.

   The [settled] guard is load-bearing. Without it, a node [u] settling
   *after* [v] (possible when [d +. w = d] under floating-point rounding,
   i.e. equal queue priorities) could rewrite [pred.(v)] after paths
   through [v] were already extracted from the old tree — and if [v] lies
   on [u]'s own predecessor chain, the rewrite creates a pred cycle and
   path extraction diverges. With the guard, [pred.(v)] freezes at
   settlement, and since every equal-cost predecessor of [v] settles no
   later than [v], the final tree is still the lowest-numbered-
   predecessor tree, independent of the queue discipline — which is why
   the dial and heap engines agree bit-for-bit on integral weights. *)

(* Per-domain scratch, reused across the all-pairs per-source fan-out so
   the inner loops stop allocating: [settled] is a byte mask (Bytes, not
   [bool array], to keep it off the scan path too), [idist]/[bucket]s
   serve the dial engine, [heap] the heap engine. Keyed by Domain.DLS —
   each worker domain owns one scratch, so concurrent sources never
   share. Reuse cannot leak state between runs: every field is reset (or
   provably empty, see the bucket invariant below) before use. *)
type scratch = {
  mutable settled : Bytes.t;
  mutable idist : int array;
  mutable bucket : int array array;
  mutable bucket_len : int array;
  heap : Int_heap.t;
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      {
        settled = Bytes.empty;
        idist = [||];
        bucket = [||];
        bucket_len = [||];
        heap = Int_heap.create ();
      })

let scratch_settled s n =
  if Bytes.length s.settled < n then s.settled <- Bytes.create n;
  Bytes.fill s.settled 0 n '\000';
  s.settled

let heap_into g ~src ~(dist : dist_row) ~(pred : pred_row) ~base =
  let n = Graph.num_nodes g in
  let row_ptr = Graph.csr_row_ptr g in
  let targets = Graph.csr_targets g in
  let weights = Graph.csr_weights g in
  Bigarray.Array1.fill (Bigarray.Array1.sub dist base n) infinity;
  Bigarray.Array1.fill (Bigarray.Array1.sub pred base n) (-1);
  let s = Domain.DLS.get scratch_key in
  let settled = scratch_settled s n in
  let queue = s.heap in
  Int_heap.clear queue;
  dist.{base + src} <- 0.0;
  pred.{base + src} <- src;
  Int_heap.push queue 0.0 src;
  while not (Int_heap.is_empty queue) do
    let d = Int_heap.min_prio queue in
    let u = Int_heap.pop queue in
    if Bytes.get settled u = '\000' then begin
      Bytes.set settled u '\001';
      for i = row_ptr.(u) to row_ptr.(u + 1) - 1 do
        let v = Array.unsafe_get targets i in
        let candidate = d +. Array.unsafe_get weights i in
        let dv = dist.{base + v} in
        if candidate < dv then begin
          dist.{base + v} <- candidate;
          pred.{base + v} <- u;
          Int_heap.push queue candidate v
        end
        else if
          Float.equal candidate dv
          && Bytes.get settled v = '\000'
          && u < pred.{base + v}
        then pred.{base + v} <- u
      done
    end
  done

(* Dial's algorithm: a circular array of [maxw + 1] buckets indexed by
   distance modulo the bucket count. Valid because every queued entry's
   distance lies within [maxw] of the current settling distance, so the
   residue is unambiguous. Integer distance arithmetic is exact, and
   [float_of_int] of a small int is exact, so the emitted rows are
   bit-identical to the heap engine's. *)
let dial_into g ~iw ~maxw ~src ~(dist : dist_row) ~(pred : pred_row) ~base =
  let n = Graph.num_nodes g in
  let row_ptr = Graph.csr_row_ptr g in
  let targets = Graph.csr_targets g in
  let nb = maxw + 1 in
  let s = Domain.DLS.get scratch_key in
  if Array.length s.bucket < nb then begin
    s.bucket <- Array.make nb [||];
    s.bucket_len <- Array.make nb 0
  end;
  (* Every push is matched by exactly one pop before [pending] reaches
     zero, so a previous run leaves all bucket_len at 0 — but a run
     aborted by an exception would not, so reset defensively. *)
  Array.fill s.bucket_len 0 (Array.length s.bucket_len) 0;
  let bucket = s.bucket and bucket_len = s.bucket_len in
  let push b x =
    let a = bucket.(b) in
    let len = bucket_len.(b) in
    if len = Array.length a then begin
      let a' = Array.make (max 8 (2 * len)) 0 in
      Array.blit a 0 a' 0 len;
      bucket.(b) <- a'
    end;
    bucket.(b).(len) <- x;
    bucket_len.(b) <- len + 1
  in
  if Array.length s.idist < n then s.idist <- Array.make n max_int
  else Array.fill s.idist 0 n max_int;
  let idist = s.idist in
  let settled = scratch_settled s n in
  Bigarray.Array1.fill (Bigarray.Array1.sub pred base n) (-1);
  idist.(src) <- 0;
  pred.{base + src} <- src;
  push 0 src;
  let pending = ref 1 in
  let d = ref 0 in
  while !pending > 0 do
    let b = !d mod nb in
    if bucket_len.(b) = 0 then incr d
    else begin
      let len = bucket_len.(b) - 1 in
      let u = bucket.(b).(len) in
      bucket_len.(b) <- len;
      decr pending;
      (* [u] is stale if it was re-queued at a smaller distance and
         settled when that earlier bucket drained. *)
      if Bytes.get settled u = '\000' then begin
        Bytes.set settled u '\001';
        let du = !d in
        for i = row_ptr.(u) to row_ptr.(u + 1) - 1 do
          let v = Array.unsafe_get targets i in
          let candidate = du + Array.unsafe_get iw i in
          let dv = Array.unsafe_get idist v in
          if candidate < dv then begin
            Array.unsafe_set idist v candidate;
            pred.{base + v} <- u;
            push (candidate mod nb) v;
            incr pending
          end
          else if
            candidate = dv
            && Bytes.get settled v = '\000'
            && u < pred.{base + v}
          then pred.{base + v} <- u
        done
      end
    end
  done;
  for v = 0 to n - 1 do
    let dv = Array.unsafe_get idist v in
    dist.{base + v} <- (if dv = max_int then infinity else float_of_int dv)
  done

(* Dial wins on fine-grained integral weights (unit-weight fabrics
   especially) but pays one empty-bucket scan per unit of distance, so
   coarse weights fall back to the heap. *)
let max_auto_dial_weight = 64

type engine = E_heap | E_dial of int array * int

let select g algo =
  match algo with
  | Heap -> E_heap
  | Dial -> (
      match Graph.integral_weights g with
      | Some (iw, maxw) -> E_dial (iw, maxw)
      | None ->
          invalid_arg
            "Shortest_paths: Dial requires small integral edge weights")
  | Auto -> (
      match Graph.integral_weights g with
      | Some (iw, maxw) when maxw <= max_auto_dial_weight -> E_dial (iw, maxw)
      | _ -> E_heap)

let dijkstra_into ?(algo = Auto) g ~src ~dist ~pred ~base =
  let n = Graph.num_nodes g in
  if src < 0 || src >= n then invalid_arg "Shortest_paths.dijkstra: bad source";
  if
    base < 0
    || base + n > Bigarray.Array1.dim dist
    || base + n > Bigarray.Array1.dim pred
  then invalid_arg "Shortest_paths.dijkstra_into: row out of bounds";
  match select g algo with
  | E_heap -> heap_into g ~src ~dist ~pred ~base
  | E_dial (iw, maxw) -> dial_into g ~iw ~maxw ~src ~dist ~pred ~base

let alloc_dist_rows len : dist_row =
  Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout len

let alloc_pred_rows len : pred_row =
  Bigarray.Array1.create Bigarray.int Bigarray.c_layout len

let dijkstra ?algo g ~src =
  let n = Graph.num_nodes g in
  let dist = alloc_dist_rows (max n 1) in
  let pred = alloc_pred_rows (max n 1) in
  dijkstra_into ?algo g ~src ~dist ~pred ~base:0;
  (Array.init n (fun v -> dist.{v}), Array.init n (fun v -> pred.{v}))

let path_from_pred ?(base = 0) ~pred ~src ~dst () =
  if pred.(base + dst) = -1 then None
  else begin
    let rec walk v acc =
      if v = src then v :: acc else walk pred.(base + v) (v :: acc)
    in
    Some (walk dst [])
  end
