module Pqueue = Ppdc_prelude.Pqueue

let dijkstra g ~src =
  let n = Graph.num_nodes g in
  if src < 0 || src >= n then invalid_arg "Shortest_paths.dijkstra: bad source";
  let dist = Array.make n infinity in
  let pred = Array.make n (-1) in
  let settled = Array.make n false in
  let queue = Pqueue.create () in
  dist.(src) <- 0.0;
  pred.(src) <- src;
  Pqueue.push queue 0.0 src;
  let rec drain () =
    match Pqueue.pop_min queue with
    | None -> ()
    | Some (d, u) ->
        if not settled.(u) then begin
          settled.(u) <- true;
          Graph.iter_neighbors g u (fun v w ->
              let candidate = d +. w in
              if candidate < dist.(v) then begin
                dist.(v) <- candidate;
                pred.(v) <- u;
                Pqueue.push queue candidate v
              end
              else if Float.equal candidate dist.(v) && u < pred.(v) then
                (* Equal cost via a lower-numbered predecessor: keeps
                   extracted paths deterministic; [v] is already queued at
                   this priority so no re-push is needed. *)
                pred.(v) <- u)
        end;
        drain ()
  in
  drain ();
  (dist, pred)

let path_from_pred ~pred ~src ~dst =
  if pred.(dst) = -1 then []
  else begin
    let rec walk v acc =
      if v = src then v :: acc
      else walk pred.(v) (v :: acc)
    in
    walk dst []
  end
