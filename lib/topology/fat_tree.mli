(** k-ary fat-tree data-center topology (Al-Fares et al., SIGCOMM 2008).

    A fat-tree of parameter [k] (even, ≥ 2) has [k] pods. Each pod contains
    [k/2] edge switches and [k/2] aggregation switches; every edge switch
    connects to [k/2] hosts and to every aggregation switch in its pod;
    [(k/2)²] core switches each connect to one aggregation switch per pod.
    Totals: [5k²/4] switches and [k³/4] hosts — e.g. k=8 → 128 hosts and
    k=16 → 1024 hosts, the two PPDC scales evaluated in the paper.

    All links have unit weight by default ("unweighted" PPDC = hop
    counts); use [weight] or {!Graph.map_weights} for weighted PPDCs. *)

type t = {
  graph : Graph.t;
  k : int;
  core : int array;  (** core switch ids, [(k/2)²] of them *)
  aggregation : int array;  (** aggregation switch ids, pod-major *)
  edge : int array;  (** edge switch ids, pod-major *)
  hosts : int array;  (** host ids, grouped by edge switch *)
}

val build : ?weight:(int -> int -> float) -> int -> t
(** [build k] constructs the fat-tree. [weight u v] gives each link's
    weight (default: constant 1.0). Raises [Invalid_argument] if [k] is
    odd or < 2. *)

val pod_of_host : t -> int -> int
(** Pod index (0-based) of a host. *)

val edge_switch_of_host : t -> int -> int
(** The edge (top-of-rack) switch a host attaches to. *)

val rack_of_host : t -> int -> int
(** Rack index = global index of the host's edge switch; two hosts are in
    the same rack iff they share an edge switch. *)

val hosts_of_rack : t -> int -> int array
(** Hosts attached to the given edge switch (by rack index as returned by
    {!rack_of_host}). *)

val num_racks : t -> int
