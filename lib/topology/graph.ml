type node_kind = Host | Switch

type t = {
  kinds : node_kind array;
  adj : (int * float) array array;
  edge_list : (int * int * float) array;  (* u < v *)
  host_ids : int array;
  switch_ids : int array;
}

let validate_edges kinds edges =
  let n = Array.length kinds in
  let seen = Hashtbl.create (List.length edges) in
  List.iter
    (fun (u, v, w) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg (Printf.sprintf "Graph.make: edge (%d,%d) out of range" u v);
      if u = v then invalid_arg (Printf.sprintf "Graph.make: self-loop at %d" u);
      if w <= 0.0 then
        invalid_arg (Printf.sprintf "Graph.make: non-positive weight on (%d,%d)" u v);
      if kinds.(u) = Host && kinds.(v) = Host then
        invalid_arg (Printf.sprintf "Graph.make: host-host edge (%d,%d)" u v);
      let key = (min u v, max u v) in
      if Hashtbl.mem seen key then
        invalid_arg (Printf.sprintf "Graph.make: duplicate edge (%d,%d)" u v);
      Hashtbl.add seen key ())
    edges

let make ~kinds ~edges =
  validate_edges kinds edges;
  let n = Array.length kinds in
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v, _) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let adj = Array.init n (fun i -> Array.make deg.(i) (0, 0.0)) in
  let fill = Array.make n 0 in
  List.iter
    (fun (u, v, w) ->
      adj.(u).(fill.(u)) <- (v, w);
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- (u, w);
      fill.(v) <- fill.(v) + 1)
    edges;
  let edge_list =
    edges
    |> List.map (fun (u, v, w) -> if u < v then (u, v, w) else (v, u, w))
    |> List.sort (fun (u1, v1, w1) (u2, v2, w2) ->
           match Int.compare u1 u2 with
           | 0 -> (
               match Int.compare v1 v2 with
               | 0 -> Float.compare w1 w2
               | c -> c)
           | c -> c)
    |> Array.of_list
  in
  let ids_of_kind k =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      if kinds.(i) = k then acc := i :: !acc
    done;
    Array.of_list !acc
  in
  {
    kinds = Array.copy kinds;
    adj;
    edge_list;
    host_ids = ids_of_kind Host;
    switch_ids = ids_of_kind Switch;
  }

let num_nodes g = Array.length g.kinds
let num_edges g = Array.length g.edge_list
let num_hosts g = Array.length g.host_ids
let num_switches g = Array.length g.switch_ids

let kind g u = g.kinds.(u)
let is_host g u = g.kinds.(u) = Host
let is_switch g u = g.kinds.(u) = Switch

let hosts g = Array.copy g.host_ids
let switches g = Array.copy g.switch_ids

let degree g u = Array.length g.adj.(u)

let iter_neighbors g u f = Array.iter (fun (v, w) -> f v w) g.adj.(u)

let neighbors g u = Array.to_list g.adj.(u)

let edge_weight g u v =
  let found = ref None in
  iter_neighbors g u (fun x w -> if x = v then found := Some w);
  !found

let edges g = Array.to_list g.edge_list

let map_weights g f =
  let edges' =
    List.map
      (fun (u, v, w) ->
        let w' = f u v w in
        if w' <= 0.0 then
          invalid_arg "Graph.map_weights: produced non-positive weight";
        (u, v, w'))
      (edges g)
  in
  make ~kinds:g.kinds ~edges:edges'

let digest g =
  (* [edge_list] is canonical (u < v, sorted at build time), so the
     serialization — and hence the hash — is independent of the order
     the edges were handed to [make]. Weights hash by their IEEE bit
     pattern: any weight change, however small, changes the digest. *)
  let b = Buffer.create (64 + (16 * Array.length g.edge_list)) in
  Buffer.add_string b "ppdc.graph/1|";
  Buffer.add_string b (string_of_int (Array.length g.kinds));
  Buffer.add_char b '|';
  Array.iter
    (fun k -> Buffer.add_char b (match k with Host -> 'h' | Switch -> 's'))
    g.kinds;
  Array.iter
    (fun (u, v, w) ->
      Buffer.add_char b '|';
      Buffer.add_string b (string_of_int u);
      Buffer.add_char b ',';
      Buffer.add_string b (string_of_int v);
      Buffer.add_char b ',';
      Buffer.add_string b (Int64.to_string (Int64.bits_of_float w)))
    g.edge_list;
  Digest.to_hex (Digest.string (Buffer.contents b))

let pp fmt g =
  Format.fprintf fmt "graph{hosts=%d switches=%d edges=%d}" (num_hosts g)
    (num_switches g) (num_edges g)
