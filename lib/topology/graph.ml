type node_kind = Host | Switch

(* Adjacency is a flat CSR layout: the neighbours of node [u] are
   [targets.(row_ptr.(u)) .. targets.(row_ptr.(u+1) - 1)] with parallel
   [weights]. One contiguous int array and one contiguous float array
   replace the former [(int * float) array array]: no per-node array
   headers, no tuple boxing, and the per-source Dijkstra sweep walks
   memory linearly. [int_weights] additionally carries every weight as an
   int (parallel to [targets]) when the whole graph has small integral
   weights — the precondition for the dial (bucket-queue) Dijkstra fast
   path in [Shortest_paths]. *)
type t = {
  kinds : node_kind array;
  row_ptr : int array;  (* length n+1; row_ptr.(n) = 2|E| *)
  targets : int array;  (* length 2|E| *)
  weights : float array;  (* length 2|E|, parallel to targets *)
  int_weights : int array;  (* parallel to targets; [||] unless integral *)
  int_weight_bound : int;  (* max integral weight; 0 = not integral *)
  edge_list : (int * int * float) array;  (* u < v, canonically sorted *)
  host_ids : int array;
  switch_ids : int array;
}

(* Weights strictly above this bound fall back to the heap path even if
   integral: dial buckets are Θ(max weight) empty-bucket scans per
   settled distance unit, which stops paying off for coarse weights. *)
let max_dial_weight = 4096

let validate_edges kinds edges =
  let n = Array.length kinds in
  let seen = Hashtbl.create (List.length edges) in
  List.iter
    (fun (u, v, w) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg (Printf.sprintf "Graph.make: edge (%d,%d) out of range" u v);
      if u = v then invalid_arg (Printf.sprintf "Graph.make: self-loop at %d" u);
      if w <= 0.0 then
        invalid_arg (Printf.sprintf "Graph.make: non-positive weight on (%d,%d)" u v);
      if kinds.(u) = Host && kinds.(v) = Host then
        invalid_arg (Printf.sprintf "Graph.make: host-host edge (%d,%d)" u v);
      let key = (min u v, max u v) in
      if Hashtbl.mem seen key then
        invalid_arg (Printf.sprintf "Graph.make: duplicate edge (%d,%d)" u v);
      Hashtbl.add seen key ())
    edges

let make ~kinds ~edges =
  validate_edges kinds edges;
  let n = Array.length kinds in
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v, _) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let row_ptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + deg.(i)
  done;
  let m2 = row_ptr.(n) in
  let targets = Array.make m2 0 in
  let weights = Array.make m2 0.0 in
  (* [fill] tracks the next free slot of each row; filling in the order
     the edges were given reproduces the neighbour order of the former
     nested-array representation exactly. *)
  let fill = Array.copy row_ptr in
  List.iter
    (fun (u, v, w) ->
      targets.(fill.(u)) <- v;
      weights.(fill.(u)) <- w;
      fill.(u) <- fill.(u) + 1;
      targets.(fill.(v)) <- u;
      weights.(fill.(v)) <- w;
      fill.(v) <- fill.(v) + 1)
    edges;
  let integral =
    let ok = ref (m2 > 0) in
    let bound = ref 0 in
    Array.iter
      (fun w ->
        if Float.is_integer w && w >= 1.0 && w <= float_of_int max_dial_weight
        then bound := max !bound (int_of_float w)
        else ok := false)
      weights;
    if !ok then !bound else 0
  in
  let int_weights =
    if integral > 0 then Array.map int_of_float weights else [||]
  in
  let edge_list =
    edges
    |> List.map (fun (u, v, w) -> if u < v then (u, v, w) else (v, u, w))
    |> List.sort (fun (u1, v1, w1) (u2, v2, w2) ->
           match Int.compare u1 u2 with
           | 0 -> (
               match Int.compare v1 v2 with
               | 0 -> Float.compare w1 w2
               | c -> c)
           | c -> c)
    |> Array.of_list
  in
  let ids_of_kind k =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      if kinds.(i) = k then acc := i :: !acc
    done;
    Array.of_list !acc
  in
  {
    kinds = Array.copy kinds;
    row_ptr;
    targets;
    weights;
    int_weights;
    int_weight_bound = integral;
    edge_list;
    host_ids = ids_of_kind Host;
    switch_ids = ids_of_kind Switch;
  }

let num_nodes g = Array.length g.kinds
let num_edges g = Array.length g.edge_list
let num_hosts g = Array.length g.host_ids
let num_switches g = Array.length g.switch_ids

let kind g u = g.kinds.(u)
let is_host g u = g.kinds.(u) = Host
let is_switch g u = g.kinds.(u) = Switch

let hosts g = Array.copy g.host_ids
let switches g = Array.copy g.switch_ids

let degree g u = g.row_ptr.(u + 1) - g.row_ptr.(u)

let iter_neighbors g u f =
  for i = g.row_ptr.(u) to g.row_ptr.(u + 1) - 1 do
    f g.targets.(i) g.weights.(i)
  done

let neighbors g u =
  List.init (degree g u) (fun j ->
      let i = g.row_ptr.(u) + j in
      (g.targets.(i), g.weights.(i)))

let edge_weight g u v =
  let found = ref None in
  iter_neighbors g u (fun x w -> if x = v then found := Some w);
  !found

let edges g = Array.to_list g.edge_list

let csr_row_ptr g = g.row_ptr
let csr_targets g = g.targets
let csr_weights g = g.weights

let integral_weights g =
  if g.int_weight_bound > 0 then Some (g.int_weights, g.int_weight_bound)
  else None

let map_weights g f =
  let edges' =
    List.map
      (fun (u, v, w) ->
        let w' = f u v w in
        if w' <= 0.0 then
          invalid_arg "Graph.map_weights: produced non-positive weight";
        (u, v, w'))
      (edges g)
  in
  make ~kinds:g.kinds ~edges:edges'

let digest g =
  (* [edge_list] is canonical (u < v, sorted at build time), so the
     serialization — and hence the hash — is independent of the order
     the edges were handed to [make]. Weights hash by their IEEE bit
     pattern: any weight change, however small, changes the digest.
     The CSR arrays deliberately do not participate: the digest is a
     function of the abstract node/edge structure, so it is byte-stable
     across adjacency-representation changes (the server's cost-matrix
     cache keys must survive exactly such refactors). *)
  let b = Buffer.create (64 + (16 * Array.length g.edge_list)) in
  Buffer.add_string b "ppdc.graph/1|";
  Buffer.add_string b (string_of_int (Array.length g.kinds));
  Buffer.add_char b '|';
  Array.iter
    (fun k -> Buffer.add_char b (match k with Host -> 'h' | Switch -> 's'))
    g.kinds;
  Array.iter
    (fun (u, v, w) ->
      Buffer.add_char b '|';
      Buffer.add_string b (string_of_int u);
      Buffer.add_char b ',';
      Buffer.add_string b (string_of_int v);
      Buffer.add_char b ',';
      Buffer.add_string b (Int64.to_string (Int64.bits_of_float w)))
    g.edge_list;
  Digest.to_hex (Digest.string (Buffer.contents b))

let pp fmt g =
  Format.fprintf fmt "graph{hosts=%d switches=%d edges=%d}" (num_hosts g)
    (num_switches g) (num_edges g)
