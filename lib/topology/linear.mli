(** Linear PPDC topology from Fig. 1 of the paper: a chain of switches
    [s_1 - s_2 - ... - s_m] with hosts hanging off selected switches.

    Fig. 1's instance is [build ~num_switches:5 ()]: hosts [h_1] at [s_1]
    and [h_2] at [s_5]. *)

type t = {
  graph : Graph.t;
  switches : int array;  (** chain order, left to right *)
  hosts : int array;  (** in the order of [host_positions] *)
}

val build :
  ?weight:float -> ?host_positions:int list -> num_switches:int -> unit -> t
(** [build ~num_switches ()] is a chain of that many switches with one
    host attached at each end ([host_positions] defaults to
    [[0; num_switches - 1]]). Every link has weight [weight] (default
    1.0). Raises [Invalid_argument] if [num_switches < 1] or a host
    position is out of range. *)
