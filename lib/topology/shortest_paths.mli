(** Single-source shortest paths (Dijkstra with a binary heap). *)

val dijkstra : Graph.t -> src:int -> float array * int array
(** [dijkstra g ~src] returns [(dist, pred)]: [dist.(v)] is the cheapest
    cost from [src] to [v] ([infinity] if unreachable) and [pred.(v)] is
    [v]'s predecessor on one cheapest path ([src] for the source itself,
    [-1] if unreachable). Ties are broken deterministically towards the
    lowest-numbered neighbour, so extracted paths are stable across
    runs. *)

val path_from_pred : pred:int array -> src:int -> dst:int -> int list
(** Reconstruct the node sequence [src; ...; dst] from a predecessor
    array. Returns [[]] if [dst] is unreachable. *)
