(** Single-source shortest paths over the CSR graph.

    Two engines produce identical rows:

    - a binary-heap Dijkstra (works for any positive float weights);
    - a dial (bucket-queue) Dijkstra used automatically when the graph
      reports small integral weights ({!Graph.integral_weights} with a
      bound ≤ 64) — the common unit-weight fat-tree/leaf-spine case,
      where it replaces O(log n) heap sifts with O(1) bucket pushes.

    Both engines break shortest-path ties towards the lowest-numbered
    predecessor, and the tie-break only applies while the target is not
    yet settled, so the predecessor tree is frozen at settlement: the
    resulting [(dist, pred)] rows are a pure function of the graph,
    independent of the queue discipline. On integral weights the two
    engines agree bit-for-bit (integer arithmetic is exact in both). *)

type dist_row = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Flat distance storage, one or more rows of a source-major matrix.
    Bigarray rather than [float array] so the |V|²-sized all-pairs
    matrices live off the OCaml heap: never scanned by the major GC,
    never moved, no initialization cost at allocation. *)

type pred_row = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Flat predecessor storage; same layout contract as {!dist_row}. *)

val alloc_dist_rows : int -> dist_row
(** [alloc_dist_rows len] allocates uninitialized off-heap storage for
    [len] entries. Each {!dijkstra_into} call fully overwrites its own
    row, so no global fill is needed (or performed). *)

val alloc_pred_rows : int -> pred_row

type algo =
  | Auto  (** dial when {!Graph.integral_weights} holds with bound ≤ 64 *)
  | Heap  (** force the binary-heap engine *)
  | Dial
      (** force the bucket-queue engine; raises [Invalid_argument] if
          the graph does not report integral weights *)

val dijkstra : ?algo:algo -> Graph.t -> src:int -> float array * int array
(** [dijkstra g ~src] returns [(dist, pred)]: [dist.(v)] is the cheapest
    cost from [src] to [v] ([infinity] if unreachable) and [pred.(v)] is
    [v]'s predecessor on one cheapest path ([src] for the source itself,
    [-1] if unreachable). Ties are broken deterministically towards the
    lowest-numbered predecessor, so extracted paths are stable across
    runs and engines. *)

val dijkstra_into :
  ?algo:algo ->
  Graph.t ->
  src:int ->
  dist:dist_row ->
  pred:pred_row ->
  base:int ->
  unit
(** Zero-copy variant for flat all-pairs storage: writes the row into
    [dist.{base} .. dist.{base + n - 1}] (same for [pred]) instead of
    allocating. [Cost_matrix] calls this once per source with
    [base = src * n] on one shared [n²] Bigarray. Raises
    [Invalid_argument] if the row does not fit. *)

val path_from_pred :
  ?base:int -> pred:int array -> src:int -> dst:int -> unit -> int list option
(** Reconstruct the node sequence [src; ...; dst] from a predecessor
    row ([pred.(base + v)], [base] defaults to [0]). [None] when [dst]
    is unreachable — distinct from the one-node path [Some [src]] when
    [src = dst], so callers can no longer confuse "no path" with "empty
    path" (the former [[]] return collapsed both). *)
