(** All-pairs topology-aware cost model.

    Precomputes [c(u, v)] — the total weight of a cheapest path between any
    two nodes — for the whole PPDC, together with predecessor trees so
    actual paths (needed by VNF migration frontiers) can be extracted.
    This realizes the paper's topology-aware cost model: the communication
    cost of flow [(v_i, v'_i)] is [λ_i · c(s(v_i), s(v'_i))] and migrating
    a VNF from switch [u] to [v] costs [μ · c(u, v)].

    Memory is Θ(|V|²) in two flat arrays of row stride [num_nodes]; a
    k=16 fat-tree (1344 nodes) needs ≈ 30 MB. *)

type t

val compute : ?algo:Shortest_paths.algo -> Graph.t -> t
(** Run Dijkstra from every node ([?algo] selects the engine, default
    {!Shortest_paths.Auto}; every engine produces identical matrices).
    Raises [Invalid_argument] if the graph is not connected (a PPDC is
    always connected). *)

val graph : t -> Graph.t

val cost : t -> int -> int -> float
(** [cost t u v] is [c(u, v)]; 0 when [u = v]. *)

val costs : t -> Shortest_paths.dist_row
(** The flat distance matrix itself: [c(u, v)] lives at index
    [u * stride t + v]. Off-heap shared storage for solver hot loops —
    callers must not mutate it. *)

val stride : t -> int
(** Row stride of {!costs} (equals {!num_nodes}). *)

val path : t -> src:int -> dst:int -> int list
(** Node sequence of one cheapest path, inclusive of both endpoints;
    [[src]] when [src = dst]. Deterministic for a given graph. *)

val switch_path : t -> src:int -> dst:int -> int list
(** [path] restricted to switch nodes. When both endpoints are switches
    this is the sequence [S_j] of Definition 1 (VNF migration frontiers):
    the switches a VNF passes while migrating from [src] to [dst]. *)

val hop_count : t -> src:int -> dst:int -> int
(** Number of edges on the extracted cheapest path: 0 exactly when
    [src = dst]. (Unreachable pairs cannot occur — {!compute} rejects
    disconnected graphs — so 0 is no longer an ambiguous sentinel.) *)

val diameter : t -> float
(** Greatest cost between any pair of nodes (the [D] in Algo. 5's
    complexity bound). *)

val num_nodes : t -> int
