(** All-pairs topology-aware cost model.

    Precomputes [c(u, v)] — the total weight of a cheapest path between any
    two nodes — for the whole PPDC, together with predecessor trees so
    actual paths (needed by VNF migration frontiers) can be extracted.
    This realizes the paper's topology-aware cost model: the communication
    cost of flow [(v_i, v'_i)] is [λ_i · c(s(v_i), s(v'_i))] and migrating
    a VNF from switch [u] to [v] costs [μ · c(u, v)].

    Memory is Θ(|V|²) in two flat arrays of row stride [num_nodes]; a
    k=16 fat-tree (1344 nodes) needs ≈ 30 MB. *)

type t

val compute : ?algo:Shortest_paths.algo -> Graph.t -> t
(** Run Dijkstra from every node ([?algo] selects the engine, default
    {!Shortest_paths.Auto}; every engine produces identical matrices).
    Raises [Invalid_argument] if the graph is not connected (a PPDC is
    always connected). *)

val graph : t -> Graph.t

(** {1 Dynamic repair}

    A dynamic fabric changes by link failures, weight drifts, and link
    repairs — all deltas whose effect on all-pairs shortest paths can
    be localized per source. A source [s] is affected by a {e deletion
    or increase} of edge [(u, v)] iff [s]'s shortest-path tree uses
    that edge, and because every tree edge appears as exactly one
    parent link, that test is O(1) per (source, edge) on the
    predecessor row: [pred(v) = u] or [pred(u) = v]. A {e decrease or
    restored edge} of new weight [w] is in nobody's tree, but it can
    only shorten paths that cross it, so [s] is affected iff the edge
    is competitive against the old distances at either endpoint:
    [dist(s, u) + w <= dist(s, v)] or symmetrically (the [<=] also
    catches equal-cost candidates that would displace the canonical
    predecessor choice). Repair copies the two flat matrices once (the
    parent stays valid — it may still be cached under its own digest)
    and re-runs Dijkstra only for affected rows; unaffected rows are
    byte-identical to the parent's, and the whole result is
    bit-identical to a cold {!compute} on the new graph (differentially
    tested in [test/test_dynamic.ml]).

    Only a node-count or node-kind change is non-localizable:
    {!repair_to} refuses it and the caller falls back to {!compute}
    (see EXTENDING.md). *)

val repair_to : ?algo:Shortest_paths.algo -> t -> Graph.t -> (t * int) option
(** [repair_to t g'] derives the all-pairs matrix of [g'] from [t]
    when [g'] has the same node count and kinds as [graph t]; any mix
    of deleted, added, and reweighted edges is localized per the tests
    above. Returns the repaired matrix and the number of rows that
    were re-run ([Some (t', 0)] with shared matrix storage when the
    edge lists are identical); [None] on a node/kind mismatch, in
    which case the caller should run a cold {!compute}. Raises
    [Invalid_argument] if [g'] is disconnected (as {!compute}
    would). *)

val delete_edge : ?algo:Shortest_paths.algo -> t -> u:int -> v:int -> t
(** [delete_edge t ~u ~v] is the matrix of [graph t] minus the edge
    [(u, v)], repairing only the rows whose tree used it. Raises
    [Invalid_argument] if the edge does not exist or its removal
    disconnects the graph. *)

val increase_weight : ?algo:Shortest_paths.algo -> t -> u:int -> v:int -> weight:float -> t
(** [increase_weight t ~u ~v ~weight] is the matrix of [graph t] with
    edge [(u, v)] reweighted to [weight >=] its current weight.
    Raises [Invalid_argument] if the edge does not exist or [weight]
    is smaller than the current weight (use {!decrease_weight}). *)

val decrease_weight : ?algo:Shortest_paths.algo -> t -> u:int -> v:int -> weight:float -> t
(** [decrease_weight t ~u ~v ~weight] is the matrix of [graph t] with
    edge [(u, v)] reweighted to [weight <=] its current weight,
    repairing only the rows where the cheaper edge is competitive.
    Raises [Invalid_argument] if the edge does not exist, [weight] is
    not finite positive, or [weight] exceeds the current weight (use
    {!increase_weight}). *)

val restore_edge : ?algo:Shortest_paths.algo -> t -> u:int -> v:int -> weight:float -> t
(** [restore_edge t ~u ~v ~weight] is the matrix of [graph t] plus the
    edge [(u, v)] at [weight] — the inverse of {!delete_edge}, used
    when a failed link comes back. Only rows where the restored edge
    is competitive are re-run; restoring a just-deleted edge at its
    old weight yields a matrix bit-identical to the pre-deletion one.
    Raises [Invalid_argument] if the edge already exists, [weight] is
    not finite positive, or the edge is invalid for the graph (self
    loop, host-host, out of range). *)

val cost : t -> int -> int -> float
(** [cost t u v] is [c(u, v)]; 0 when [u = v]. *)

val costs : t -> Shortest_paths.dist_row
(** The flat distance matrix itself: [c(u, v)] lives at index
    [u * stride t + v]. Off-heap shared storage for solver hot loops —
    callers must not mutate it. *)

val stride : t -> int
(** Row stride of {!costs} (equals {!num_nodes}). *)

val path : t -> src:int -> dst:int -> int list
(** Node sequence of one cheapest path, inclusive of both endpoints;
    [[src]] when [src = dst]. Deterministic for a given graph. *)

val switch_path : t -> src:int -> dst:int -> int list
(** [path] restricted to switch nodes. When both endpoints are switches
    this is the sequence [S_j] of Definition 1 (VNF migration frontiers):
    the switches a VNF passes while migrating from [src] to [dst]. *)

val hop_count : t -> src:int -> dst:int -> int
(** Number of edges on the extracted cheapest path: 0 exactly when
    [src = dst]. (Unreachable pairs cannot occur — {!compute} rejects
    disconnected graphs — so 0 is no longer an ambiguous sentinel.) *)

val diameter : t -> float
(** Greatest cost between any pair of nodes (the [D] in Algo. 5's
    complexity bound). *)

val num_nodes : t -> int
