type initial = Uninformed of int | Hour1

type t = {
  problem : Ppdc_core.Problem.t;
  diurnal : Ppdc_traffic.Diurnal.t;
  mu : float;
  mu_vm : float;
  pair_limit : int option;
  opt_budget : int;
  initial : initial;
}

let make ?(diurnal = Ppdc_traffic.Diurnal.default) ?(mu = 1e4) ?mu_vm
    ?pair_limit ?(opt_budget = 2_000_000) ?(initial = Uninformed 0) problem =
  {
    problem;
    diurnal;
    mu;
    mu_vm = Option.value mu_vm ~default:mu;
    pair_limit;
    opt_budget;
    initial;
  }

module Events = Ppdc_traffic.Events

let events_of_diurnal t =
  Events.of_diurnal t.diurnal ~flows:(Ppdc_core.Problem.flows t.problem)

let failure_episode ~rng ~at ~duration ~fraction t =
  if not (Float.is_finite at) || at < 0.0 then
    invalid_arg "Scenario.failure_episode: at must be finite >= 0";
  if not (Float.is_finite duration) || duration <= 0.0 then
    invalid_arg "Scenario.failure_episode: duration must be finite positive";
  let g = Ppdc_core.Problem.graph t.problem in
  let _, failed = Ppdc_extensions.Failures.fail_links ~rng ~fraction g in
  let weight (u, v) =
    match Ppdc_topology.Graph.edge_weight g u v with
    | Some w -> w
    | None -> assert false (* fail_links only reports existing links *)
  in
  let failures =
    List.map
      (fun (u, v) -> { Events.time = at; kind = Events.Link_failure { u; v } })
      failed
  in
  (* Repairs land in reverse failure order (last failed, first
     repaired) — any order is valid, but this one is the deterministic
     convention the committed benches replay. *)
  let repairs =
    List.rev_map
      (fun (u, v) ->
        {
          Events.time = at +. duration;
          kind = Events.Link_repair { u; v; weight = weight (u, v) };
        })
      failed
  in
  Events.make ~horizon:(at +. duration) (failures @ repairs)
