type initial = Uninformed of int | Hour1

type t = {
  problem : Ppdc_core.Problem.t;
  diurnal : Ppdc_traffic.Diurnal.t;
  mu : float;
  mu_vm : float;
  pair_limit : int option;
  opt_budget : int;
  initial : initial;
}

let make ?(diurnal = Ppdc_traffic.Diurnal.default) ?(mu = 1e4) ?mu_vm
    ?pair_limit ?(opt_budget = 2_000_000) ?(initial = Uninformed 0) problem =
  {
    problem;
    diurnal;
    mu;
    mu_vm = Option.value mu_vm ~default:mu;
    pair_limit;
    opt_budget;
    initial;
  }
