open Ppdc_core
module Diurnal = Ppdc_traffic.Diurnal
module Obs = Ppdc_prelude.Obs
module Plan_baseline = Ppdc_baselines.Plan
module Mcf_baseline = Ppdc_baselines.Mcf_migration

type policy = Mpareto | Optimal | Mpareto_lookahead | Plan | Mcf | No_migration

let policy_name = function
  | Mpareto -> "mPareto"
  | Optimal -> "Optimal"
  | Mpareto_lookahead -> "mPareto+forecast"
  | Plan -> "PLAN"
  | Mcf -> "MCF"
  | No_migration -> "NoMigration"

type hour_record = {
  hour : int;
  comm_cost : float;
  migration_cost : float;
  migrations : int;
  total_cost : float;
}

type run = {
  policy : policy;
  initial_placement : Placement.t;
  hours : hour_record array;
  total_cost : float;
  total_migrations : int;
}

(* Mutable per-day state: the VNF placement (moved by VNF policies) and
   the flow endpoints (moved by VM policies). *)
type state = {
  mutable placement : Placement.t;
  mutable problem : Problem.t;  (* flows evolve under VM policies *)
}

let step scenario state ~policy ~rates ~next_rates =
  let { Scenario.mu; mu_vm; pair_limit; opt_budget; _ } = scenario in
  match policy with
  | No_migration ->
      let comm = Cost.comm_cost state.problem ~rates state.placement in
      (comm, 0.0, 0)
  | Mpareto_lookahead ->
      (* Decide against the mean of the current and (forecast) next rate
         vectors; charge against reality. *)
      let decision =
        Array.mapi (fun i r -> 0.5 *. (r +. next_rates.(i))) rates
      in
      let out =
        Mpareto.migrate state.problem ~rates:decision ~mu
          ~current:state.placement ?pair_limit ()
      in
      let comm = Cost.comm_cost state.problem ~rates out.migration in
      state.placement <- out.migration;
      (comm, out.migration_cost, out.moved)
  | Mpareto ->
      let out =
        Mpareto.migrate state.problem ~rates ~mu ~current:state.placement
          ?pair_limit ()
      in
      state.placement <- out.migration;
      (out.comm_cost, out.migration_cost, out.moved)
  | Optimal ->
      let seed =
        (Mpareto.migrate state.problem ~rates ~mu ~current:state.placement
           ?pair_limit ())
          .migration
      in
      let out =
        Migration_opt.solve state.problem ~rates ~mu ~current:state.placement
          ~budget:opt_budget ~incumbent:seed ()
      in
      let migration_cost =
        Cost.migration_cost state.problem ~mu ~src:state.placement
          ~dst:out.migration
      in
      let comm = Cost.comm_cost state.problem ~rates out.migration in
      let moved = Cost.moved ~src:state.placement ~dst:out.migration in
      state.placement <- out.migration;
      (comm, migration_cost, moved)
  | Plan ->
      let out =
        Plan_baseline.migrate state.problem ~rates ~mu_vm
          ~placement:state.placement ()
      in
      state.problem <- Problem.with_flows state.problem out.flows;
      (out.comm_cost, out.migration_cost, out.migrations)
  | Mcf ->
      let out =
        Mcf_baseline.migrate state.problem ~rates ~mu_vm
          ~placement:state.placement ()
      in
      state.problem <- Problem.with_flows state.problem out.flows;
      (out.comm_cost, out.migration_cost, out.migrations)

(* Shared loop: step the policy through a sequence of rate epochs.
   The forecast handed to the lookahead policy one epoch past the end
   is the zero vector (the horizon contract documented in the mli), so
   [rates_of] is only ever asked for epochs [0 .. epochs-1]. *)
let run_epochs scenario ~policy ~initial_placement ~epochs ~rates_of =
  let state =
    { placement = Array.copy initial_placement; problem = scenario.Scenario.problem }
  in
  let hours =
    Array.init epochs (fun i ->
        let hour = i + 1 in
        let current_flows = Problem.flows state.problem in
        let rates = rates_of ~flows:current_flows ~epoch:i in
        let next_rates =
          if i + 1 >= epochs then Array.make (Array.length current_flows) 0.0
          else rates_of ~flows:current_flows ~epoch:(i + 1)
        in
        let t0 = if Obs.enabled () then Obs.now () else 0.0 in
        let comm_cost, migration_cost, migrations =
          step scenario state ~policy ~rates ~next_rates
        in
        if Obs.enabled () then begin
          let dt = Obs.now () -. t0 in
          Obs.observe_span ("sim.step." ^ policy_name policy) dt;
          Obs.emit "sim.epoch"
            [
              ("policy", Obs.String (policy_name policy));
              ("hour", Obs.Int hour);
              ("comm_cost", Obs.Float comm_cost);
              ("migration_cost", Obs.Float migration_cost);
              ("migrations", Obs.Int migrations);
              ("decision_s", Obs.Float dt);
            ]
        end;
        {
          hour;
          comm_cost;
          migration_cost;
          migrations;
          total_cost = comm_cost +. migration_cost;
        })
  in
  {
    policy;
    initial_placement;
    hours;
    total_cost =
      Array.fold_left
        (fun acc (h : hour_record) -> acc +. h.total_cost)
        0.0 hours;
    total_migrations =
      Array.fold_left (fun acc (h : hour_record) -> acc + h.migrations) 0 hours;
  }

let initial_placement_of scenario ~first_rates =
  let { Scenario.problem; pair_limit; initial; _ } = scenario in
  match initial with
  | Scenario.Uninformed seed ->
      (* Deployment happens before traffic exists (Eq. 9 gives hour 0 a
         zero rate vector): all placements cost the same, so the
         operator's choice is arbitrary. *)
      Placement.random ~rng:(Ppdc_prelude.Rng.create (seed + 0x5eed)) problem
  | Scenario.Hour1 ->
      (Placement_dp.solve problem ~rates:first_rates ?pair_limit ()).placement

let run_day scenario ~policy =
  let { Scenario.problem; diurnal; _ } = scenario in
  let flows = Problem.flows problem in
  let initial_placement =
    initial_placement_of scenario
      ~first_rates:(Diurnal.rates_at diurnal ~flows ~hour:1)
  in
  run_epochs scenario ~policy ~initial_placement ~epochs:diurnal.hours
    ~rates_of:(fun ~flows ~epoch ->
      Diurnal.rates_at diurnal ~flows ~hour:(epoch + 1))

let run_trace scenario ~policy ~trace =
  let { Scenario.problem; _ } = scenario in
  if
    Ppdc_traffic.Trace.num_flows trace <> Problem.num_flows problem
  then invalid_arg "Engine.run_trace: trace flow count mismatch";
  let epochs = Ppdc_traffic.Trace.num_epochs trace in
  if epochs = 0 then invalid_arg "Engine.run_trace: empty trace";
  let initial_placement =
    initial_placement_of scenario
      ~first_rates:(Ppdc_traffic.Trace.rates_at trace ~epoch:0)
  in
  run_epochs scenario ~policy ~initial_placement ~epochs
    ~rates_of:(fun ~flows:_ ~epoch -> Ppdc_traffic.Trace.rates_at trace ~epoch)
