(** Configuration of one simulated PPDC day.

    Bundles the problem instance with the dynamic-traffic model and the
    cost coefficients so every migration policy is charged identically.
    A scenario is immutable; the engine copies what it mutates. *)

type initial =
  | Uninformed of int
      (** the SFC is deployed before any traffic exists (Eq. 9 has
          τ_0 = 0, so at deployment time every placement costs zero and
          TOP has nothing to optimize): a seeded arbitrary placement.
          This matches the paper's lifecycle and is what makes the
          NoMigration baseline progressively expensive. *)
  | Hour1
      (** deploy with knowledge of the first hour's rates (Algo. 3 on the
          hour-1 vector) — an idealized operator; used by the
          [abl_initial] ablation. *)

type t = {
  problem : Ppdc_core.Problem.t;
  diurnal : Ppdc_traffic.Diurnal.t;
  mu : float;  (** VNF migration coefficient (paper: 10^4–10^5) *)
  mu_vm : float;
      (** VM migration coefficient for the PLAN/MCF baselines; defaults
          to [mu] since containerized VNF and VM memory footprints are of
          the same order (DESIGN.md §4) *)
  pair_limit : int option;
      (** ingress/egress candidate cap handed to {!Ppdc_core.Placement_dp}
          inside mPareto — a scalability knob for k=16 runs *)
  opt_budget : int;
      (** branch-and-bound node budget for the Optimal migration policy *)
  initial : initial;  (** how the day-0 placement is chosen *)
}

val make :
  ?diurnal:Ppdc_traffic.Diurnal.t ->
  ?mu:float ->
  ?mu_vm:float ->
  ?pair_limit:int ->
  ?opt_budget:int ->
  ?initial:initial ->
  Ppdc_core.Problem.t ->
  t
(** Defaults: the paper's 12-hour diurnal model, [mu = 1e4],
    [mu_vm = mu], no pair limit, 2-million-node optimal budget,
    [Uninformed 0] deployment. *)

(** {1 Event-stream constructors}

    The graph-aware bridges into the discrete-event simulator
    ({!Event_engine}); the pure-data constructors (traces, Poisson
    churn, probes) live in {!Ppdc_traffic.Events}. *)

val events_of_diurnal : t -> Ppdc_traffic.Events.t
(** The scenario's diurnal day as an hourly event stream —
    [Events.of_diurnal] of its own model and flows. Replaying it with
    [Periodic 1.0] is bit-identical to {!Engine.run_day}. *)

val failure_episode :
  rng:Ppdc_prelude.Rng.t ->
  at:float ->
  duration:float ->
  fraction:float ->
  t ->
  Ppdc_traffic.Events.t
(** One failure episode on the scenario's fabric: at time [at], a
    seeded connectivity-preserving random subset of switch-switch
    links fails ({!Ppdc_extensions.Failures.fail_links} with
    [fraction]); at [at + duration] every failed link is repaired at
    its original weight, in reverse failure order. The stream's
    horizon is [at + duration] — merge it with a traffic stream
    ({!Ppdc_traffic.Events.merge}) whose horizon extends further,
    otherwise the repairs sit exactly at the horizon and are never
    processed. Raises [Invalid_argument] on a negative/non-finite
    [at], non-positive [duration], or [fraction] outside [0, 1]. *)
