(** Discrete-event reconfiguration simulator.

    Generalizes {!Engine} from the hour grid to an arbitrary
    {!Ppdc_traffic.Events} timeline: virtual time advances event by
    event, communication cost accrues {e continuously} — each segment
    between consecutive events is charged
    [elapsed × C_a(current problem, rates, placement)], the limit of
    which the per-hour charge is the unit-step special case — and
    migration cost is charged per reconfiguration, exactly as
    {!Engine.step} reports it. {e When} to reconfigure is a
    first-class {!trigger} policy, decoupled from {e how} (the
    {!Engine.policy} invoked when the trigger fires).

    {b Determinism.} Events are drained from a
    {!Ppdc_prelude.Pqueue.Stable} keyed by [(time, insertion seq)], so
    equal-time events replay in stream order on every machine and at
    every domain count; every policy step is itself deterministic.
    Replaying an [Events.of_trace] stream with [Periodic 1.0]
    reproduces {!Engine.run_trace} (and hence [run_day] on diurnal
    streams) bit-identically for all six policies — the regression in
    [test/test_events.ml].

    Observability: when {!Ppdc_prelude.Obs} is enabled, every
    processed event emits a [sim.event] event (kind, virtual time,
    whether the trigger fired, moves), each firing bumps the
    [sim.trigger.<name>] counter, and the invoked policy's decision
    time lands in the [sim.reconfig] span. *)

type trigger =
  | Periodic of float
      (** fire at the first event at or after each multiple of the
          span since the last firing (first opportunity: time 0) *)
  | Threshold of float
      (** fire when the current communication-cost {e rate} exceeds
          [ratio ×] the rate measured right after the last
          reconfiguration (cost drift) *)
  | Hysteresis of { up : float; down : float }
      (** like [Threshold up], but after firing the trigger disarms
          until the cost rate falls back to [down × baseline] — the
          anti-thrashing variant: a reconfiguration that could not
          shed the drift does not fire again every event *)
  | On_event  (** fire at every processed event *)

val trigger_name : trigger -> string
(** "periodic" | "threshold" | "hysteresis" | "on_event" — the tag
    used by the [sim.trigger.<name>] Obs counters. *)

val trigger_of_string : string -> trigger
(** Parse ["periodic:SPAN"], ["threshold:RATIO"],
    ["hysteresis:UP,DOWN"], or ["on-event"] (case-insensitive); the
    CLI and RPC surface share this grammar. Raises [Invalid_argument]
    on anything else or on out-of-domain parameters (span/ratio must
    be finite positive, [up >= down > 0]). *)

type event_record = {
  time : float;  (** virtual time of the event *)
  kind : string;  (** {!Ppdc_traffic.Events.kind_name} *)
  comm_charge : float;
      (** communication cost accrued over the segment ending at this
          event (at the {e previous} segment's rate) *)
  fired : bool;  (** did the trigger invoke the migration policy *)
  migration_cost : float;  (** 0 unless [fired] *)
  moved : int;
}

type run = {
  policy : Engine.policy;
  trigger : trigger;
  initial_placement : Ppdc_core.Placement.t;
  final_placement : Ppdc_core.Placement.t;
  records : event_record array;  (** one per processed event *)
  final_comm : float;
      (** the tail segment [last event, horizon) — charged after the
          last record *)
  total_comm : float;
  total_migration : float;
  total_cost : float;  (** [total_comm + total_migration] *)
  total_moves : int;
  reconfigurations : int;  (** trigger firings *)
}

val run :
  ?lookahead:float ->
  ?migration_delay:float ->
  Scenario.t ->
  policy:Engine.policy ->
  trigger:trigger ->
  events:Ppdc_traffic.Events.t ->
  unit ->
  run
(** Replay the stream against the scenario's problem. Flows start at
    rate zero; the initial placement follows {!Scenario.initial}
    (an [Hour1] deployment sees the rate vector left by the events at
    the stream's earliest timestamp). Only events strictly before the
    horizon are processed. [Link_failure]/[Link_repair] events evolve
    the problem's cost matrix incrementally
    ({!Ppdc_topology.Cost_matrix.delete_edge} / [restore_edge]).

    [lookahead] (default 1.0): the [Mpareto_lookahead] forecast is the
    rate vector after every pending event within
    [t, t + lookahead] — perfect short-range prediction, the
    continuous generalization of the hour engine's next-hour vector.

    [migration_delay] (default 0 = instantaneous): when positive, each
    reconfiguration that moved something holds the trigger {e in
    flight} for that long (a [Migration_complete] event is scheduled;
    further firings are suppressed until it lands) — migrations take
    time, and a policy should not be re-invoked mid-move.

    Raises [Invalid_argument] on negative/non-finite [lookahead] or
    [migration_delay], an out-of-range flow id or link endpoint in the
    stream, a [Link_failure] naming an absent edge or one whose
    removal disconnects the fabric, or a [Link_repair] of a present
    edge. *)
