(** Discrete-hour PPDC day simulator.

    Realizes the paper's lifecycle: the SFC is deployed at hour 0 (per
    {!Scenario.initial} — by default before any traffic exists, since
    Eq. 9 has τ_0 = 0), then the chosen migration policy runs once per
    hour against the diurnal rate vector (Eq. 9 with the east/west
    offset), and every hour is charged its migration traffic plus one
    hour of communication traffic. This is the harness behind the
    Fig. 11 experiments.

    Policies:
    - [Mpareto] — Algo. 5 VNF migration (the paper's contribution);
    - [Optimal] — Algo. 6 branch-and-bound VNF migration (budgeted);
    - [Mpareto_lookahead] — mPareto driven by a perfect one-hour traffic
      forecast: the frontier is evaluated against the *average* of this
      hour's and next hour's rate vectors, so the chain starts moving
      toward where the traffic is going rather than where it is. An
      upper-bound study of what prediction is worth (not in the paper).
      {b Horizon contract}: at the final epoch the "next hour" does not
      exist; the forecast used there is the all-zero rate vector — the
      day (or trace) simply ends. [run_day] and [run_trace] share this
      contract (the engine substitutes the zero vector itself, in one
      place), so replaying [Trace.of_diurnal] of a scenario's flows is
      bit-identical to [run_day] under every policy, lookahead
      included;
    - [Plan] / [Mcf] — the VM-migration baselines: the VNFs stay at the
      initial placement and the VMs chase them;
    - [No_migration] — the initial placement rides out the whole day.

    Observability: when {!Ppdc_prelude.Obs} is enabled, every simulated
    epoch emits a [sim.epoch] event (policy, hour, comm/migration cost,
    moves, decision latency) and records the policy's decision time
    under the [sim.step.<policy>] span; the layer is a no-op
    otherwise. *)

type policy = Mpareto | Optimal | Mpareto_lookahead | Plan | Mcf | No_migration

val policy_name : policy -> string

type hour_record = {
  hour : int;
  comm_cost : float;  (** one hour of [C_a] after the policy acted *)
  migration_cost : float;  (** [C_b] (VNF) or VM migration traffic *)
  migrations : int;  (** VNF moves or VM moves this hour *)
  total_cost : float;  (** [comm_cost + migration_cost] *)
}

type run = {
  policy : policy;
  initial_placement : Ppdc_core.Placement.t;
  hours : hour_record array;  (** hour 1 .. N *)
  total_cost : float;
  total_migrations : int;
}

(** {1 Single-step interface}

    The pieces {!Event_engine} reuses so that one policy step means
    exactly the same thing at hour granularity and between arbitrary
    events. *)

type state = {
  mutable placement : Ppdc_core.Placement.t;
  mutable problem : Ppdc_core.Problem.t;
      (** flows evolve under the VM policies (PLAN/MCF); the cost
          matrix evolves under link failure/repair events *)
}

val step :
  Scenario.t ->
  state ->
  policy:policy ->
  rates:float array ->
  next_rates:float array ->
  float * float * int
(** Let the policy act once against [rates] (with [next_rates] as the
    lookahead forecast — ignored by every policy except
    [Mpareto_lookahead]), mutating [state]. Returns
    [(comm_cost, migration_cost, moves)]: the communication cost of
    one epoch at [rates] after the move, the migration traffic, and
    the move count. Deterministic. *)

val initial_placement_of :
  Scenario.t -> first_rates:float array -> Ppdc_core.Placement.t
(** The day-0 placement per the scenario's {!Scenario.initial}:
    seeded-arbitrary for [Uninformed], Algo. 3 on [first_rates] for
    [Hour1]. *)

val run_day : Scenario.t -> policy:policy -> run
(** Simulate one day: choose the day-0 placement per the scenario's
    {!Scenario.initial}, then let the policy act at every hour 1..N.
    Deterministic given the scenario. *)

val run_trace : Scenario.t -> policy:policy -> trace:Ppdc_traffic.Trace.t -> run
(** Replay an arbitrary {!Ppdc_traffic.Trace} instead of the diurnal
    model: the policy acts once per trace epoch. The trace's flows must
    match the scenario's problem ([run_day scenario] is equivalent to
    replaying [Trace.of_diurnal] of the scenario's flows). One caveat
    for the VM-migration policies: the trace's *rates* are replayed
    as-is, but the flow endpoints evolve with the policy's VM moves.
    Raises [Invalid_argument] on a flow-count mismatch or empty
    trace. *)
