open Ppdc_core
module Events = Ppdc_traffic.Events
module Cost_matrix = Ppdc_topology.Cost_matrix
module Graph = Ppdc_topology.Graph
module Pqueue = Ppdc_prelude.Pqueue
module Obs = Ppdc_prelude.Obs

type trigger =
  | Periodic of float
  | Threshold of float
  | Hysteresis of { up : float; down : float }
  | On_event

let trigger_name = function
  | Periodic _ -> "periodic"
  | Threshold _ -> "threshold"
  | Hysteresis _ -> "hysteresis"
  | On_event -> "on_event"

let validate_trigger = function
  | Periodic span ->
      if not (Float.is_finite span) || span <= 0.0 then
        invalid_arg "Event_engine: periodic span must be finite positive"
  | Threshold ratio ->
      if not (Float.is_finite ratio) || ratio <= 0.0 then
        invalid_arg "Event_engine: threshold ratio must be finite positive"
  | Hysteresis { up; down } ->
      if
        (not (Float.is_finite up))
        || (not (Float.is_finite down))
        || down <= 0.0
        || Float.compare up down < 0
      then
        invalid_arg
          "Event_engine: hysteresis needs finite up >= down > 0"
  | On_event -> ()

let trigger_of_string s =
  let float_of s what =
    match float_of_string_opt s with
    | Some f -> f
    | None -> invalid_arg (Printf.sprintf "Event_engine: bad %s %S" what s)
  in
  let t =
    match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
    | [ "on-event" ] | [ "on_event" ] -> On_event
    | [ "periodic"; span ] -> Periodic (float_of span "periodic span")
    | [ "threshold"; ratio ] -> Threshold (float_of ratio "threshold ratio")
    | [ "hysteresis"; updown ] -> (
        match String.split_on_char ',' updown with
        | [ up; down ] ->
            Hysteresis
              {
                up = float_of up "hysteresis up";
                down = float_of down "hysteresis down";
              }
        | _ ->
            invalid_arg
              "Event_engine: hysteresis spec must be hysteresis:UP,DOWN")
    | _ ->
        invalid_arg
          (Printf.sprintf
             "Event_engine: unknown trigger %S (periodic:SPAN | \
              threshold:RATIO | hysteresis:UP,DOWN | on-event)"
             s)
  in
  validate_trigger t;
  t

type event_record = {
  time : float;
  kind : string;
  comm_charge : float;
  fired : bool;
  migration_cost : float;
  moved : int;
}

type run = {
  policy : Engine.policy;
  trigger : trigger;
  initial_placement : Placement.t;
  final_placement : Placement.t;
  records : event_record array;
  final_comm : float;
  total_comm : float;
  total_migration : float;
  total_cost : float;
  total_moves : int;
  reconfigurations : int;
}

(* The rate vector the stream leaves in place after every event at the
   earliest timestamp — what an [Hour1] deployment gets to see. *)
let first_rates_of events ~l =
  match Events.events events with
  | [] -> Array.make l 0.0
  | first :: _ as all ->
      let rates = Array.make l 0.0 in
      List.iter
        (fun (e : Events.event) ->
          if Float.compare e.time first.time = 0 then
            match e.kind with
            | Events.Flow_arrival { flow; rate } ->
                if flow < l then rates.(flow) <- rate
            | Events.Flow_departure { flow } ->
                if flow < l then rates.(flow) <- 0.0
            | Events.Rate_update updates ->
                List.iter (fun (f, r) -> if f < l then rates.(f) <- r) updates
            | _ -> ())
        all;
      rates

let run ?(lookahead = 1.0) ?(migration_delay = 0.0) scenario ~policy ~trigger
    ~events () =
  validate_trigger trigger;
  if not (Float.is_finite lookahead) || lookahead < 0.0 then
    invalid_arg "Event_engine.run: lookahead must be finite >= 0";
  if not (Float.is_finite migration_delay) || migration_delay < 0.0 then
    invalid_arg "Event_engine.run: migration_delay must be finite >= 0";
  let problem0 = scenario.Scenario.problem in
  let l = Problem.num_flows problem0 in
  let num_nodes = Graph.num_nodes (Problem.graph problem0) in
  let horizon = Events.horizon events in
  let rates = Array.make l 0.0 in
  let initial_placement =
    Engine.initial_placement_of scenario
      ~first_rates:(first_rates_of events ~l)
  in
  let state =
    { Engine.placement = Array.copy initial_placement; problem = problem0 }
  in
  let q : Events.event Pqueue.Stable.t = Pqueue.Stable.create () in
  Events.iter (fun e -> Pqueue.Stable.push q e.time e) events;
  (* [comm_rate] is the communication cost per unit of virtual time
     under the current (problem, rates, placement); each segment
     between consecutive events is charged [dt *. comm_rate] — the
     generalization of the hour engine's "one hour of C_a". After a
     reconfiguration the policy's own comm evaluation becomes the
     rate, exactly as [Engine.run_epochs] records it (the policies
     differ from [Cost.comm_cost] in float association, so adopting
     the step's value is what keeps hourly replay bit-identical). *)
  let comm_rate = ref (Cost.comm_cost state.problem ~rates state.placement) in
  let baseline = ref !comm_rate in
  let next_due = ref 0.0 in
  let armed = ref true in
  let in_flight = ref false in
  let t_now = ref 0.0 in
  let total_comm = ref 0.0 in
  let total_migration = ref 0.0 in
  let total_moves = ref 0 in
  let reconfigs = ref 0 in
  let records = ref [] in
  let bad fmt = Printf.ksprintf invalid_arg fmt in
  let set_rate flow r =
    if flow < 0 || flow >= l then
      bad "Event_engine.run: flow %d out of range (have %d flows)" flow l;
    rates.(flow) <- r
  in
  let apply_kind = function
    | Events.Flow_arrival { flow; rate } -> set_rate flow rate
    | Events.Flow_departure { flow } -> set_rate flow 0.0
    | Events.Rate_update updates ->
        List.iter (fun (f, r) -> set_rate f r) updates
    | Events.Link_failure { u; v } ->
        if u >= num_nodes || v >= num_nodes then
          bad "Event_engine.run: link (%d, %d) out of range" u v;
        state.problem <-
          Problem.with_cm state.problem
            (Cost_matrix.delete_edge (Problem.cm state.problem) ~u ~v)
    | Events.Link_repair { u; v; weight } ->
        if u >= num_nodes || v >= num_nodes then
          bad "Event_engine.run: link (%d, %d) out of range" u v;
        state.problem <-
          Problem.with_cm state.problem
            (Cost_matrix.restore_edge (Problem.cm state.problem) ~u ~v ~weight)
    | Events.Migration_complete -> in_flight := false
    | Events.Probe -> ()
  in
  (* Perfect short-range forecast: the rate vector after every pending
     event within [t, t + lookahead], applied in replay order. An
     [of_trace] stream carries its all-zero vector *at* the horizon
     precisely so this scan reproduces the hour engine's zero-forecast
     end-of-day contract. *)
  let forecast t =
    let next = Array.copy rates in
    List.iter
      (fun ((_ : float), (e : Events.event)) ->
        if Float.compare e.time (t +. lookahead) <= 0 then
          match e.kind with
          | Events.Flow_arrival { flow; rate } ->
              if flow >= 0 && flow < l then next.(flow) <- rate
          | Events.Flow_departure { flow } ->
              if flow >= 0 && flow < l then next.(flow) <- 0.0
          | Events.Rate_update updates ->
              List.iter
                (fun (f, r) -> if f >= 0 && f < l then next.(f) <- r)
                updates
          | _ -> ())
      (Pqueue.Stable.to_sorted_list q);
    next
  in
  let continue = ref true in
  while !continue do
    match Pqueue.Stable.peek_min q with
    | None -> continue := false
    | Some (t, _) when Float.compare t horizon >= 0 -> continue := false
    | Some _ ->
        let t, e =
          match Pqueue.Stable.pop_min q with
          | Some te -> te
          | None -> assert false
        in
        let charge = (t -. !t_now) *. !comm_rate in
        total_comm := !total_comm +. charge;
        t_now := t;
        apply_kind e.kind;
        (match e.kind with
        | Events.Probe | Events.Migration_complete -> ()
        | _ ->
            comm_rate := Cost.comm_cost state.problem ~rates state.placement);
        let fired =
          (not !in_flight)
          &&
          match trigger with
          | On_event -> true
          | Periodic _ -> Float.compare t !next_due >= 0
          | Threshold ratio ->
              Float.compare !comm_rate (ratio *. !baseline) > 0
          | Hysteresis { up; down } ->
              if !armed then Float.compare !comm_rate (up *. !baseline) > 0
              else begin
                if Float.compare !comm_rate (down *. !baseline) <= 0 then
                  armed := true;
                false
              end
        in
        let migration_cost, moved =
          if not fired then (0.0, 0)
          else begin
            incr reconfigs;
            let next_rates =
              match policy with
              | Engine.Mpareto_lookahead -> forecast t
              | _ -> rates
            in
            let t0 = if Obs.enabled () then Obs.now () else 0.0 in
            let comm, migration_cost, moved =
              Engine.step scenario state ~policy ~rates ~next_rates
            in
            if Obs.enabled () then begin
              Obs.observe_span "sim.reconfig" (Obs.now () -. t0);
              Obs.incr ("sim.trigger." ^ trigger_name trigger)
            end;
            comm_rate := comm;
            baseline := comm;
            (match trigger with
            | Periodic span -> next_due := t +. span
            | Hysteresis _ -> armed := false
            | Threshold _ | On_event -> ());
            if migration_delay > 0.0 && moved > 0 then begin
              in_flight := true;
              Pqueue.Stable.push q
                (t +. migration_delay)
                { Events.time = t +. migration_delay;
                  kind = Events.Migration_complete }
            end;
            (migration_cost, moved)
          end
        in
        total_migration := !total_migration +. migration_cost;
        total_moves := !total_moves + moved;
        if Obs.enabled () then
          Obs.emit "sim.event"
            [
              ("kind", Obs.String (Events.kind_name e.kind));
              ("t", Obs.Float t);
              ("fired", Obs.Bool fired);
              ("moved", Obs.Int moved);
            ];
        records :=
          {
            time = t;
            kind = Events.kind_name e.kind;
            comm_charge = charge;
            fired;
            migration_cost;
            moved;
          }
          :: !records
  done;
  let final_comm = (horizon -. !t_now) *. !comm_rate in
  total_comm := !total_comm +. final_comm;
  {
    policy;
    trigger;
    initial_placement;
    final_placement = Array.copy state.Engine.placement;
    records = Array.of_list (List.rev !records);
    final_comm;
    total_comm = !total_comm;
    total_migration = !total_migration;
    total_cost = !total_comm +. !total_migration;
    total_moves = !total_moves;
    reconfigurations = !reconfigs;
  }
