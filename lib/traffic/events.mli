(** Typed event timelines for the discrete-event simulator.

    An event stream is the dynamic half of a scenario freed from the
    hour grid: flows arrive, depart, and change rate, links fail and
    come back — each at an arbitrary virtual time in [0, horizon).
    The stream itself is pure data (no graph or problem attached);
    {!Ppdc_sim.Event_engine} interprets it against a scenario, and
    {!Ppdc_sim.Scenario} builds the graph-dependent streams (failure
    episodes) that need topology knowledge.

    {b Determinism contract.} [make] stable-sorts events by time, so
    equal-time events keep the order the caller listed them in; the
    engine's queue ({!Ppdc_prelude.Pqueue.Stable}) then preserves that
    order through replay. A stream is therefore replayed identically
    on every machine and at every domain count. *)

type kind =
  | Flow_arrival of { flow : int; rate : float }
      (** flow [flow] starts sending at [rate] *)
  | Flow_departure of { flow : int }  (** flow's rate drops to zero *)
  | Rate_update of (int * float) list
      (** batched rate changes, applied atomically: the engine sees one
          event (and evaluates its trigger once), not one per flow *)
  | Link_failure of { u : int; v : int }
  | Link_repair of { u : int; v : int; weight : float }
  | Migration_complete
      (** end of a migration in flight; normally scheduled by the
          engine itself when a migration delay is configured *)
  | Probe  (** no state change; gives periodic triggers a tick *)

type event = { time : float; kind : kind }

type t
(** An immutable stream: events sorted by time, plus the horizon. *)

val make : horizon:float -> event list -> t
(** Stable-sorts by time. Raises [Invalid_argument] on a non-finite or
    negative time/horizon, negative flow id, non-finite or negative
    rate, self-loop link, or non-positive repair weight. (Flow ids and
    link endpoints are validated against the actual problem by the
    engine, which is where the graph lives.) *)

val kind_name : kind -> string
(** Stable lowercase tag ("flow_arrival", "link_repair", ...) used by
    Obs events and the CLI. *)

val events : t -> event list
(** In time order (stable for equal times). *)

val horizon : t -> float
val length : t -> int
val iter : (event -> unit) -> t -> unit

val of_trace : Trace.t -> t
(** One atomic full-vector [Rate_update] per trace epoch at times
    [0 .. epochs-1], horizon [epochs], plus a final all-zero vector
    {e at} the horizon — never processed, but visible to forecasts
    (the hour engine's zero-forecast horizon contract). Replaying this
    stream with a [Periodic 1.0] trigger is bit-identical to
    {!Ppdc_sim.Engine.run_trace} — see [test/test_events.ml]. Raises
    [Invalid_argument] on an empty trace. *)

val of_diurnal : Diurnal.t -> flows:Flow.t array -> t
(** [of_trace (Trace.of_diurnal diurnal ~flows)]. *)

val poisson :
  rng:Ppdc_prelude.Rng.t ->
  horizon:float ->
  mean_active:float ->
  ?jitter:float ->
  Flow.t array ->
  t
(** Session churn as a Poisson process: flows arrive with exponential
    inter-arrival times (population spread over the first half of the
    horizon), each at its base rate scaled by a uniform factor in
    [1 ± jitter] (default 0.2), and stay active for an
    Exponential([mean_active]) duration before departing. Departures
    past the horizon are dropped (the run ends first). Deterministic
    given the rng seed. Raises [Invalid_argument] on a non-positive
    horizon or [mean_active], [jitter] outside [0, 1], or no flows. *)

val probes : every:float -> horizon:float -> t
(** [Probe] ticks at [every, 2·every, ...) below the horizon — gives a
    [Periodic] trigger a chance to fire between state changes. *)

val merge : t -> t -> t
(** Union of two streams; horizon is the max. Equal-time events order
    first-stream-before-second. *)
