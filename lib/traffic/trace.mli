(** Workload traces: a set of flows plus their per-epoch rate vectors.

    A trace freezes the dynamic part of an experiment — "at epoch [t],
    flow [i] ran at [λ]" — so a workload can be generated once, saved,
    shared, and replayed bit-for-bit (or produced by an external tool and
    imported). The on-disk format is a small CSV:

    {v
      flow,src_host,dst_host,base_rate,coast
      0,25,26,4200.5,east
      ...
      rates,epoch,λ_0,λ_1,...
      rates,0,0.0,0.0,...
    v}

    Epochs are abstract; the diurnal experiments use hours 1..N. *)

type t = {
  flows : Flow.t array;
  rates : float array array;  (** [rates.(epoch).(flow_id)] *)
}

val make : flows:Flow.t array -> rates:float array array -> t
(** Raises [Invalid_argument] if any epoch's vector length differs from
    the flow count, a rate is negative/non-finite, or flow ids are not
    the dense range [0 .. l-1]. *)

val of_diurnal : Diurnal.t -> flows:Flow.t array -> t
(** The paper's dynamic model as a trace: epochs are hours 1..N of
    Eq. 9 with the coast offset. *)

val churn :
  rng:Ppdc_prelude.Rng.t ->
  epochs:int ->
  ?jitter:float ->
  Flow.t array ->
  t
(** User churn: each flow is assigned a random active window
    [arrival, departure) within the trace (arrival in the first half,
    departure after it) and runs at its base rate — multiplied per epoch
    by a uniform factor in [1-jitter, 1+jitter] (default 0.2) — while
    active, zero otherwise. "New users joining for the first time" is
    the rates-go-from-zero-to-positive special case of TOM the paper
    points at (Liu et al. [35]). Raises [Invalid_argument] if
    [epochs < 2] or [jitter] is outside [0, 1]. *)

val num_epochs : t -> int
val num_flows : t -> int

val rates_at : t -> epoch:int -> float array
(** Fresh copy of the epoch's rate vector (0-based epoch index). *)

val to_csv : t -> string
val of_csv : string -> t
(** Raises [Invalid_argument] on malformed input — including [rates]
    rows whose epoch column is not the dense in-order sequence
    [0, 1, 2, ...] (a gap, duplicate or reordering would otherwise be
    silently renumbered by line position). [of_csv (to_csv t) = t] up
    to float printing precision. *)

val save : t -> path:string -> unit
val load : path:string -> t
