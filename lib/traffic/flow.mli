(** Pairwise VM flows.

    The paper models east-west traffic as [l] pairs of communicating VMs
    [(v_i, v'_i)] already placed on hosts; flow [i] has a traffic rate
    [λ_i] that changes over time. A [Flow.t] records the static part (the
    hosts of the two endpoint VMs, the base rate, and which US coast the
    submitting user is on, for the diurnal model); the current rate vector
    [λ] lives in a separate [float array] indexed by flow id. *)

type coast = East | West

type t = {
  id : int;  (** dense index into the rate vector *)
  src_host : int;  (** [s(v_i)] *)
  dst_host : int;  (** [s(v'_i)] *)
  base_rate : float;  (** peak rate [λ_i] before diurnal scaling *)
  coast : coast;
}

val make :
  id:int -> src_host:int -> dst_host:int -> base_rate:float -> coast:coast -> t
(** Raises [Invalid_argument] on a negative rate or id. *)

val base_rates : t array -> float array
(** The rate vector [⟨λ_1, ..., λ_l⟩] at full (base) intensity. *)

val total_rate : float array -> float
(** [Σ_i λ_i] — the multiplier of the chain-internal cost in Eq. 1. *)

val pp : Format.formatter -> t -> unit
