type kind =
  | Flow_arrival of { flow : int; rate : float }
  | Flow_departure of { flow : int }
  | Rate_update of (int * float) list
  | Link_failure of { u : int; v : int }
  | Link_repair of { u : int; v : int; weight : float }
  | Migration_complete
  | Probe

type event = { time : float; kind : kind }

type t = { events : event array; horizon : float }

let kind_name = function
  | Flow_arrival _ -> "flow_arrival"
  | Flow_departure _ -> "flow_departure"
  | Rate_update _ -> "rate_update"
  | Link_failure _ -> "link_failure"
  | Link_repair _ -> "link_repair"
  | Migration_complete -> "migration_complete"
  | Probe -> "probe"

let check_rate what r =
  if not (Float.is_finite r) || r < 0.0 then
    invalid_arg (Printf.sprintf "Events.make: %s rate must be finite >= 0" what)

let check_kind = function
  | Flow_arrival { flow; rate } ->
      if flow < 0 then invalid_arg "Events.make: negative flow id";
      check_rate "arrival" rate
  | Flow_departure { flow } ->
      if flow < 0 then invalid_arg "Events.make: negative flow id"
  | Rate_update updates ->
      List.iter
        (fun (flow, rate) ->
          if flow < 0 then invalid_arg "Events.make: negative flow id";
          check_rate "update" rate)
        updates
  | Link_failure { u; v } ->
      if u < 0 || v < 0 || u = v then invalid_arg "Events.make: bad link"
  | Link_repair { u; v; weight } ->
      if u < 0 || v < 0 || u = v then invalid_arg "Events.make: bad link";
      if not (Float.is_finite weight) || weight <= 0.0 then
        invalid_arg "Events.make: repair weight must be finite positive"
  | Migration_complete | Probe -> ()

let make ~horizon events =
  if not (Float.is_finite horizon) || horizon < 0.0 then
    invalid_arg "Events.make: horizon must be finite >= 0";
  List.iter
    (fun e ->
      if not (Float.is_finite e.time) || e.time < 0.0 then
        invalid_arg "Events.make: event time must be finite >= 0";
      check_kind e.kind)
    events;
  (* Stable sort on time only: equal-time events keep list order, the
     same tie-break the simulator's (time, seq) queue then preserves. *)
  let events =
    List.stable_sort
      (fun (a : event) (b : event) -> Float.compare a.time b.time)
      events
  in
  { events = Array.of_list events; horizon }

let events t = Array.to_list t.events
let horizon t = t.horizon
let length t = Array.length t.events

let iter f t = Array.iter f t.events

(* One full-vector rate event per trace epoch, at integer times
   0 .. epochs-1, plus a final all-zero vector at [t = epochs]. The
   horizon equals [epochs], so the engine never *processes* the final
   event — but a forecast scanning pending events does see it, which
   reproduces the hour engine's horizon contract (the forecast one
   epoch past the end is the zero vector). *)
let of_trace trace =
  let epochs = Trace.num_epochs trace in
  let l = Trace.num_flows trace in
  if epochs = 0 then invalid_arg "Events.of_trace: empty trace";
  let full_vector rates = List.init l (fun i -> (i, rates.(i))) in
  let per_epoch =
    List.init epochs (fun e ->
        {
          time = float_of_int e;
          kind = Rate_update (full_vector (Trace.rates_at trace ~epoch:e));
        })
  in
  let final =
    {
      time = float_of_int epochs;
      kind = Rate_update (List.init l (fun i -> (i, 0.0)));
    }
  in
  make ~horizon:(float_of_int epochs) (per_epoch @ [ final ])

let of_diurnal diurnal ~flows = of_trace (Trace.of_diurnal diurnal ~flows)

let exponential rng ~mean =
  (* Inverse-CDF sample; [uniform] never returns exactly [hi], so the
     log argument stays positive. *)
  let u = Ppdc_prelude.Rng.uniform rng ~lo:0.0 ~hi:1.0 in
  -.mean *. log (1.0 -. u)

let poisson ~rng ~horizon ~mean_active ?(jitter = 0.2) flows =
  if not (Float.is_finite horizon) || horizon <= 0.0 then
    invalid_arg "Events.poisson: horizon must be finite positive";
  if not (Float.is_finite mean_active) || mean_active <= 0.0 then
    invalid_arg "Events.poisson: mean_active must be finite positive";
  if not (Float.is_finite jitter) || jitter < 0.0 || jitter > 1.0 then
    invalid_arg "Events.poisson: jitter must be in [0, 1]";
  let l = Array.length flows in
  if l = 0 then invalid_arg "Events.poisson: no flows";
  (* Flows join as a Poisson process: exponential inter-arrivals with
     the full population spread over the first half of the horizon (so
     the tail still has traffic to observe), each session staying
     Exponential(mean_active). Departures past the horizon are dropped —
     the run ends with the flow still active, which is fine: nothing
     after the horizon is ever processed. *)
  let inter_mean = horizon /. 2.0 /. float_of_int l in
  let clock = ref 0.0 in
  let evs = ref [] in
  Array.iter
    (fun (f : Flow.t) ->
      clock := !clock +. exponential rng ~mean:inter_mean;
      let arrival = !clock in
      if arrival < horizon then begin
        let rate =
          f.base_rate
          *. Ppdc_prelude.Rng.uniform rng ~lo:(1.0 -. jitter)
               ~hi:(1.0 +. jitter)
        in
        evs :=
          { time = arrival; kind = Flow_arrival { flow = f.id; rate } }
          :: !evs;
        let departure = arrival +. exponential rng ~mean:mean_active in
        if departure < horizon then
          evs :=
            { time = departure; kind = Flow_departure { flow = f.id } }
            :: !evs
      end)
    flows;
  make ~horizon (List.rev !evs)

let probes ~every ~horizon =
  if not (Float.is_finite every) || every <= 0.0 then
    invalid_arg "Events.probes: period must be finite positive";
  if not (Float.is_finite horizon) || horizon < 0.0 then
    invalid_arg "Events.probes: horizon must be finite >= 0";
  let rec ticks t acc =
    if t >= horizon then List.rev acc
    else ticks (t +. every) ({ time = t; kind = Probe } :: acc)
  in
  make ~horizon (ticks every [])

let merge a b =
  (* [make] stable-sorts, so equal-time events order a-before-b. *)
  make
    ~horizon:(Float.max a.horizon b.horizon)
    (Array.to_list a.events @ Array.to_list b.events)
