type coast = East | West

type t = {
  id : int;
  src_host : int;
  dst_host : int;
  base_rate : float;
  coast : coast;
}

let make ~id ~src_host ~dst_host ~base_rate ~coast =
  if id < 0 then invalid_arg "Flow.make: negative id";
  if base_rate < 0.0 then invalid_arg "Flow.make: negative rate";
  { id; src_host; dst_host; base_rate; coast }

let base_rates flows = Array.map (fun f -> f.base_rate) flows

let total_rate rates = Array.fold_left ( +. ) 0.0 rates

let pp fmt f =
  Format.fprintf fmt "flow%d(%d->%d, λ=%.1f, %s)" f.id f.src_host f.dst_host
    f.base_rate
    (match f.coast with East -> "east" | West -> "west")
