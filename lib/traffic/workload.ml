module Rng = Ppdc_prelude.Rng
module Fat_tree = Ppdc_topology.Fat_tree

type rate_mix = {
  light_share : float;
  light_range : float * float;
  medium_share : float;
  medium_range : float * float;
  heavy_range : float * float;
}

let facebook_mix =
  {
    light_share = 0.25;
    light_range = (0.0, 3000.0);
    medium_share = 0.70;
    medium_range = (3000.0, 7000.0);
    heavy_range = (7000.0, 10000.0);
  }

let sample_rate rng mix =
  let bucket = Rng.float rng 1.0 in
  let lo, hi =
    if bucket < mix.light_share then mix.light_range
    else if bucket < mix.light_share +. mix.medium_share then mix.medium_range
    else mix.heavy_range
  in
  Rng.uniform rng ~lo ~hi

let coast_of_index i = if i mod 2 = 0 then Flow.East else Flow.West

(* Rack-popularity sampler. [skew = 0] is uniform; [skew > 0] draws rack
   ranks from a Zipf law with that exponent, with the rank->rack mapping
   shuffled so the hot racks land anywhere in the fabric. Production
   measurements (Roy et al., SIGCOMM 2015) report exactly this kind of
   heavy rack skew. *)
let rack_sampler rng ~skew ~num_racks =
  if skew <= 0.0 then fun () -> Rng.int rng num_racks
  else begin
    let order = Array.init num_racks (fun i -> i) in
    Rng.shuffle rng order;
    let cumulative = Array.make num_racks 0.0 in
    let total = ref 0.0 in
    Array.iteri
      (fun i _ ->
        total := !total +. (1.0 /. Float.pow (float_of_int (i + 1)) skew);
        cumulative.(i) <- !total)
      cumulative;
    fun () ->
      let x = Rng.float rng !total in
      (* cumulative is sorted: binary search for the first entry >= x. *)
      let lo = ref 0 and hi = ref (num_racks - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if cumulative.(mid) >= x then hi := mid else lo := mid + 1
      done;
      order.(!lo)
  end

let generate_on_fat_tree ?(rack_locality = 0.8) ?(rack_skew = 0.0)
    ?(mix = facebook_mix) ~rng ~l ft =
  if l < 0 then invalid_arg "Workload.generate_on_fat_tree: negative l";
  if rack_locality < 0.0 || rack_locality > 1.0 then
    invalid_arg "Workload.generate_on_fat_tree: rack_locality outside [0,1]";
  if rack_skew < 0.0 then
    invalid_arg "Workload.generate_on_fat_tree: negative rack_skew";
  let num_racks = Fat_tree.num_racks ft in
  let sample_rack = rack_sampler rng ~skew:rack_skew ~num_racks in
  (* Coast follows the source pod: jobs of one region land in one half of
     the data center, so the diurnal offset moves the traffic hotspot
     across the fabric over the day (the effect the paper's time-zone
     model is after). *)
  let west_from_pod = (ft.Fat_tree.k + 1) / 2 in
  Array.init l (fun i ->
      let src_rack = sample_rack () in
      let src_host = Rng.pick rng (Fat_tree.hosts_of_rack ft src_rack) in
      let dst_rack =
        if Rng.float rng 1.0 < rack_locality || num_racks = 1 then src_rack
        else begin
          (* A fresh popularity draw, rejecting the source rack. *)
          let rec other () =
            let r = sample_rack () in
            if r = src_rack then other () else r
          in
          other ()
        end
      in
      let dst_host = Rng.pick rng (Fat_tree.hosts_of_rack ft dst_rack) in
      let coast =
        if Fat_tree.pod_of_host ft src_host < west_from_pod then Flow.East
        else Flow.West
      in
      Flow.make ~id:i ~src_host ~dst_host ~base_rate:(sample_rate rng mix)
        ~coast)

let generate_on_hosts ?(mix = facebook_mix) ~rng ~l ~hosts () =
  if l < 0 then invalid_arg "Workload.generate_on_hosts: negative l";
  if Array.length hosts = 0 then
    invalid_arg "Workload.generate_on_hosts: no hosts";
  Array.init l (fun i ->
      Flow.make ~id:i ~src_host:(Rng.pick rng hosts)
        ~dst_host:(Rng.pick rng hosts) ~base_rate:(sample_rate rng mix)
        ~coast:(coast_of_index i))

let redraw_rates ?(mix = facebook_mix) ~rng flows =
  Array.map (fun (_ : Flow.t) -> sample_rate rng mix) flows
