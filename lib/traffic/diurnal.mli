(** Diurnal traffic-scale model (Eq. 9 of the paper).

    Cloud traffic is cycle-stationary: the paper models an N = 12-hour day
    (6 AM–6 PM) in which rates ramp up linearly to noon and back down,

    {v
      τ_h = 0                       h = 0
      τ_h = 2 (h/N) (1 − τ_min)     h = 1 .. N/2
      τ_h = 2 ((N−h)/N) (1 − τ_min) h = N/2+1 .. N
    v}

    with τ_min = 0.2 (after Eramo et al.). To model the US time-zone
    effect, east-coast flows lead west-coast flows by three hours: a
    west-coast flow at hour [h] is scaled by [τ_{h−3}], with the index
    wrapped modulo the period (Eq. 9 is cycle-stationary), so hours 1–3
    carry the tail of the west curve and both coasts see the same total
    daily volume. Outside [1, N] both coasts are zero — there is no
    day.

    Note: as printed in the paper the peak value is [2·(1/2)·(1−τ_min) =
    0.8], i.e. τ_min caps the peak rather than flooring the valley; we
    implement the formula literally and keep [τ_min] a parameter. *)

type t = { hours : int;  (** N; must be even and positive *) tau_min : float }

val default : t
(** N = 12, τ_min = 0.2. *)

val tau : t -> int -> float
(** [tau m h] is τ_h; zero outside [1, N]. *)

val coast_offset_hours : int
(** Hours by which west-coast activity lags east-coast activity (3). *)

val scale : t -> coast:Flow.coast -> hour:int -> float
(** Traffic scale of a flow at the given hour: [τ_h] for east-coast
    flows, [τ_{h−3 mod N}] for west-coast (the offset wraps around the
    period). Zero for hours outside [1, N] on both coasts, so a
    forecast one epoch past the horizon is the zero vector. *)

val rates_at : t -> flows:Flow.t array -> hour:int -> float array
(** The rate vector [λ] at the given hour:
    [λ_i = base_rate_i · scale coast_i hour]. *)
