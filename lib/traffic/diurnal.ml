type t = { hours : int; tau_min : float }

let default = { hours = 12; tau_min = 0.2 }

let tau m h =
  if m.hours <= 0 || m.hours mod 2 <> 0 then
    invalid_arg "Diurnal.tau: N must be even and positive";
  let n = float_of_int m.hours in
  if h <= 0 || h > m.hours then 0.0
  else if h <= m.hours / 2 then
    2.0 *. (float_of_int h /. n) *. (1.0 -. m.tau_min)
  else 2.0 *. (float_of_int (m.hours - h) /. n) *. (1.0 -. m.tau_min)

let coast_offset_hours = 3

let scale m ~coast ~hour =
  match (coast : Flow.coast) with
  | East -> tau m hour
  | West -> tau m (hour - coast_offset_hours)

let rates_at m ~flows ~hour =
  Array.map
    (fun (f : Flow.t) -> f.base_rate *. scale m ~coast:f.coast ~hour)
    flows
