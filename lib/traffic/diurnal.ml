type t = { hours : int; tau_min : float }

let default = { hours = 12; tau_min = 0.2 }

let tau m h =
  if m.hours <= 0 || m.hours mod 2 <> 0 then
    invalid_arg "Diurnal.tau: N must be even and positive";
  let n = float_of_int m.hours in
  if h <= 0 || h > m.hours then 0.0
  else if h <= m.hours / 2 then
    2.0 *. (float_of_int h /. n) *. (1.0 -. m.tau_min)
  else 2.0 *. (float_of_int (m.hours - h) /. n) *. (1.0 -. m.tau_min)

let coast_offset_hours = 3

(* West-coast flows run the same τ curve shifted by the coast offset,
   wrapped modulo the period so the early hours see the tail of the
   curve (Eq. 9 is cycle-stationary). Clamping instead of wrapping —
   the old behaviour — silenced West flows for hours 1..3 and skipped
   the tail, so the two coasts carried unequal daily volume. Outside
   [1, N] there is no day at all and both coasts are zero. *)
let scale m ~coast ~hour =
  if hour <= 0 || hour > m.hours then 0.0
  else
    match (coast : Flow.coast) with
    | East -> tau m hour
    | West ->
        let shifted =
          ((hour - 1 - coast_offset_hours) mod m.hours + m.hours) mod m.hours
        in
        tau m (shifted + 1)

let rates_at m ~flows ~hour =
  Array.map
    (fun (f : Flow.t) -> f.base_rate *. scale m ~coast:f.coast ~hour)
    flows
