type t = {
  flows : Flow.t array;
  rates : float array array;
}

let validate flows rates =
  let l = Array.length flows in
  Array.iteri
    (fun i (f : Flow.t) ->
      if f.id <> i then
        invalid_arg "Trace.make: flow ids must be the dense range 0..l-1")
    flows;
  Array.iteri
    (fun e row ->
      if Array.length row <> l then
        invalid_arg (Printf.sprintf "Trace.make: epoch %d has %d rates, expected %d"
                       e (Array.length row) l);
      Array.iter
        (fun r ->
          if r < 0.0 || not (Float.is_finite r) then
            invalid_arg "Trace.make: rates must be finite and non-negative")
        row)
    rates

let make ~flows ~rates =
  validate flows rates;
  { flows = Array.copy flows; rates = Array.map Array.copy rates }

let of_diurnal m ~flows =
  let rates =
    Array.init m.Diurnal.hours (fun i ->
        Diurnal.rates_at m ~flows ~hour:(i + 1))
  in
  make ~flows ~rates

let churn ~rng ~epochs ?(jitter = 0.2) flows =
  if epochs < 2 then invalid_arg "Trace.churn: need at least two epochs";
  if jitter < 0.0 || jitter > 1.0 then
    invalid_arg "Trace.churn: jitter outside [0,1]";
  let windows =
    Array.map
      (fun (_ : Flow.t) ->
        let arrival = Ppdc_prelude.Rng.int rng (epochs / 2) in
        let departure =
          arrival + 1 + Ppdc_prelude.Rng.int rng (epochs - arrival)
        in
        (arrival, departure))
      flows
  in
  let rates =
    Array.init epochs (fun e ->
        Array.mapi
          (fun i (f : Flow.t) ->
            let arrival, departure = windows.(i) in
            if e >= arrival && e < departure then
              f.base_rate
              *. Ppdc_prelude.Rng.uniform rng ~lo:(1.0 -. jitter)
                   ~hi:(1.0 +. jitter)
            else 0.0)
          flows)
  in
  make ~flows ~rates

let num_epochs t = Array.length t.rates
let num_flows t = Array.length t.flows

let rates_at t ~epoch =
  if epoch < 0 || epoch >= num_epochs t then
    invalid_arg (Printf.sprintf "Trace.rates_at: epoch %d out of range" epoch);
  Array.copy t.rates.(epoch)

let coast_name = function Flow.East -> "east" | Flow.West -> "west"

let coast_of_name = function
  | "east" -> Flow.East
  | "west" -> Flow.West
  | s -> invalid_arg (Printf.sprintf "Trace.of_csv: bad coast %S" s)

let to_csv t =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "flow,src_host,dst_host,base_rate,coast\n";
  Array.iter
    (fun (f : Flow.t) ->
      Buffer.add_string buffer
        (Printf.sprintf "%d,%d,%d,%.17g,%s\n" f.id f.src_host f.dst_host
           f.base_rate (coast_name f.coast)))
    t.flows;
  Array.iteri
    (fun e row ->
      Buffer.add_string buffer (Printf.sprintf "rates,%d" e);
      Array.iter (fun r -> Buffer.add_string buffer (Printf.sprintf ",%.17g" r)) row;
      Buffer.add_char buffer '\n')
    t.rates;
  Buffer.contents buffer

let of_csv text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> invalid_arg "Trace.of_csv: empty input"
  | header :: rest ->
      if header <> "flow,src_host,dst_host,base_rate,coast" then
        invalid_arg "Trace.of_csv: unexpected header";
      let flows = ref [] and rates = ref [] in
      let next_epoch = ref 0 in
      let parse line =
        match String.split_on_char ',' line with
        | "rates" :: epoch :: values ->
            (* The epoch column is authoritative, not decorative: rows
               must arrive dense and in order, or the file's epochs
               would be silently renumbered by line position. *)
            let e = int_of_string epoch in
            if e <> !next_epoch then
              invalid_arg
                (Printf.sprintf
                   "Trace.of_csv: rates row carries epoch %d, expected %d \
                    (epochs must be dense and in order)"
                   e !next_epoch);
            incr next_epoch;
            rates := Array.of_list (List.map float_of_string values) :: !rates
        | [ id; src; dst; rate; coast ] ->
            flows :=
              Flow.make ~id:(int_of_string id) ~src_host:(int_of_string src)
                ~dst_host:(int_of_string dst)
                ~base_rate:(float_of_string rate)
                ~coast:(coast_of_name coast)
              :: !flows
        | _ -> invalid_arg (Printf.sprintf "Trace.of_csv: bad line %S" line)
      in
      List.iter
        (fun line ->
          try parse line with
          | Failure _ ->
              invalid_arg (Printf.sprintf "Trace.of_csv: bad number in %S" line))
        rest;
      make
        ~flows:(Array.of_list (List.rev !flows))
        ~rates:(Array.of_list (List.rev !rates))

let save t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv t))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_csv (really_input_string ic (in_channel_length ic)))
