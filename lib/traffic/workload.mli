(** Seeded synthetic workload generator.

    Reproduces the experiment setup of Section VI:

    - traffic rates follow the flow characteristics reported for Facebook
      data centers: 25 % light flows in [0, 3000), 70 % medium in
      [3000, 7000], 5 % heavy in (7000, 10000];
    - 80 % of VM pairs are placed under the same edge switch (rack
      locality), the rest on uniformly random distinct racks;
    - half of the flows are "east coast", half "west coast" for the
      diurnal time-zone offset.

    All sampling is driven by an explicit {!Ppdc_prelude.Rng.t}, so every
    workload is reproducible from its seed. *)

type rate_mix = {
  light_share : float;
  light_range : float * float;
  medium_share : float;
  medium_range : float * float;
  heavy_range : float * float;
}

val facebook_mix : rate_mix
(** The 25/70/5 mix over [0, 10000] described above. *)

val sample_rate : Ppdc_prelude.Rng.t -> rate_mix -> float
(** One rate draw from the mix. *)

val generate_on_fat_tree :
  ?rack_locality:float ->
  ?rack_skew:float ->
  ?mix:rate_mix ->
  rng:Ppdc_prelude.Rng.t ->
  l:int ->
  Ppdc_topology.Fat_tree.t ->
  Flow.t array
(** [generate_on_fat_tree ~rng ~l ft] draws [l] flows on the fat-tree's
    hosts with the given rack locality (default 0.8) and rate mix
    (default {!facebook_mix}). A flow's coast follows its source pod —
    pods in the first half of the fabric are "east", the rest "west" —
    so the diurnal time-zone offset physically moves the traffic hotspot
    across the data center over the day, as the paper's model intends
    (with a uniform rack draw roughly half the flows are on each coast).

    [rack_skew] (default 0 = uniform racks) draws rack popularity from a
    Zipf law with that exponent over a shuffled rack order — the
    rack-level concentration production data centers exhibit; higher
    skew concentrates traffic in fewer racks and makes placement more
    location-sensitive.

    Raises [Invalid_argument] if [l < 0], [rack_locality] is outside
    [0, 1], or [rack_skew < 0]. *)

val generate_on_hosts :
  ?mix:rate_mix ->
  rng:Ppdc_prelude.Rng.t ->
  l:int ->
  hosts:int array ->
  unit ->
  Flow.t array
(** Generator for arbitrary topologies: both endpoints uniform over
    [hosts] (they may coincide — VMs of a pair can share a host, as in
    Fig. 3). Raises [Invalid_argument] if [hosts] is empty or [l < 0]. *)

val redraw_rates :
  ?mix:rate_mix -> rng:Ppdc_prelude.Rng.t -> Flow.t array -> float array
(** Fresh independent rate vector for the same flows — the "traffic
    changed" event that motivates TOM in the single-step experiments. *)
