(** Experiments for the paper's future-work extensions.

    - [capacity]: how much does letting a switch host [c] VNFs save?
      (conclusion: "each switch can install multiple VNFs")
    - [multi_sfc]: several chains sharing one PPDC, placed by traffic
      weight ("different VM flows can request different SFCs")
    - [replication]: static replication vs mPareto migration over a
      diurnal day ("to which extent VNF replication could be beneficial
      ... compared to VNF migration") *)

val capacity : Mode.t -> Ppdc_prelude.Table.t list
val multi_sfc : Mode.t -> Ppdc_prelude.Table.t list
val replication : Mode.t -> Ppdc_prelude.Table.t list
val failures : Mode.t -> Ppdc_prelude.Table.t list
val utilization : Mode.t -> Ppdc_prelude.Table.t list
val churn : Mode.t -> Ppdc_prelude.Table.t list
