(** Shared helpers for the figure-reproduction experiments. *)

val unweighted_fat_tree :
  int -> Ppdc_topology.Fat_tree.t * Ppdc_topology.Cost_matrix.t
(** Memoized unit-weight fat-tree and its all-pairs matrix for a given
    k (the k=16 matrix costs ~45M operations and 30 MB to build, and the
    dynamic experiments reuse it hundreds of times). The memo is an LRU
    ({!Ppdc_prelude.Lru}) holding at most
    {!cost_matrix_cache_capacity} fabrics, so sweeping many ks cannot
    accumulate matrices without bound. *)

val cost_matrix_cache_capacity : int
(** Upper bound on simultaneously cached fabrics (currently 4 — any
    single experiment touches at most two or three ks). *)

val cost_matrix_cache_stats : unit -> int * int * int
(** [(live_entries, hits, misses)] of the fat-tree cache, for tests and
    diagnostics; [live_entries <= cost_matrix_cache_capacity]. *)

val fat_tree_problem :
  ?weighted:bool ->
  ?rack_locality:float ->
  k:int ->
  l:int ->
  n:int ->
  seed:int ->
  unit ->
  Ppdc_core.Problem.t
(** Build a seeded experiment instance: a k-ary fat-tree (unit link
    weights, or — with [weighted] — link delays uniform with mean 1.5 ms
    and variance 0.5 ms², the setting Fig. 10 takes from Liu et al.),
    [l] flows with the paper's rack locality and Facebook rate mix, and
    an SFC of length [n]. The same seed always yields the same
    instance. *)

val average :
  trials:int -> (seed:int -> float) -> Ppdc_prelude.Stats.summary
(** Run [f ~seed] for seeds 1..trials and summarize (mean ± 95% CI), the
    paper's "average of 20 runs" protocol. *)

val mean_cell : Ppdc_prelude.Stats.summary -> string
(** Render a summary as ["mean±ci"] for table cells. *)
