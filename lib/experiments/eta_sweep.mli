(** The eta-sweep experiment: when-to-migrate policies under the
    discrete-event simulator.

    Three tables over one composite day (the diurnal wave as hourly
    rate updates, quarter-hour probe ticks, and a mid-day
    failure/repair episode), all replayed by
    {!Ppdc_sim.Event_engine} with the mPareto policy:

    - the migration-coefficient sweep under a fixed threshold trigger
      — as mu grows, migration traffic falls and communication cost
      rises (the committed trade-off gated by [BENCH_events.json]);
    - the threshold drift-ratio (eta) sweep at fixed mu — lower eta
      reconfigures more eagerly;
    - the trigger-policy comparison (on-event, periodic, threshold,
      hysteresis) at equal migration coefficient — the adaptive
      triggers match periodic cost with fewer reconfigurations. *)

val run : Mode.t -> Ppdc_prelude.Table.t list
