module Table = Ppdc_prelude.Table
module Stats = Ppdc_prelude.Stats
module Rng = Ppdc_prelude.Rng
module Flow = Ppdc_traffic.Flow
module Workload = Ppdc_traffic.Workload
module Scenario = Ppdc_sim.Scenario
module Engine = Ppdc_sim.Engine
open Ppdc_core

let rescore mode =
  let k = Mode.k_placement mode in
  let l = Mode.l_fixed mode in
  let trials = Mode.trials mode in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Ablation: Algo. 3 pair selection by stroll value vs rescored C_a \
            (k=%d, l=%d)"
           k l)
      ~columns:[ "n"; "paper (stroll value)"; "rescored"; "gain" ]
  in
  List.iter
    (fun n ->
      let instance ~seed = Runner.fat_tree_problem ~k ~l ~n ~seed () in
      let plain =
        Runner.average ~trials (fun ~seed ->
            let problem = instance ~seed in
            let rates = Flow.base_rates (Problem.flows problem) in
            (Placement_dp.solve problem ~rates ()).cost)
      in
      let rescored =
        Runner.average ~trials (fun ~seed ->
            let problem = instance ~seed in
            let rates = Flow.base_rates (Problem.flows problem) in
            (Placement_dp.solve problem ~rates ~rescore:true ()).cost)
      in
      Table.add_row table
        [
          string_of_int n;
          Runner.mean_cell plain;
          Runner.mean_cell rescored;
          Printf.sprintf "%.2f%%"
            (100.0 *. (1.0 -. (rescored.Stats.mean /. plain.Stats.mean)));
        ])
    (Mode.n_sweep mode);
  [ table ]

let frontier mode =
  let k = Mode.k_placement mode in
  let l = Mode.l_fixed mode in
  let trials = Mode.trials mode in
  let mu = 1e4 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Ablation: mPareto frontier collision policy (k=%d, l=%d, mu=1e4)" k
           l)
      ~columns:[ "n"; "skip collisions"; "allow collisions"; "colliding rows" ]
  in
  List.iter
    (fun n ->
      let run_with policy ~seed =
        let problem = Runner.fat_tree_problem ~k ~l ~n ~seed () in
        let rates0 = Flow.base_rates (Problem.flows problem) in
        let current = (Placement_dp.solve problem ~rates:rates0 ()).placement in
        let rng = Rng.create (seed * 101) in
        let rates = Workload.redraw_rates ~rng (Problem.flows problem) in
        Mpareto.migrate problem ~rates ~mu ~current ~collisions:policy ()
      in
      let skip =
        Runner.average ~trials (fun ~seed -> (run_with `Skip ~seed).total_cost)
      in
      let allow =
        Runner.average ~trials (fun ~seed -> (run_with `Allow ~seed).total_cost)
      in
      let colliding =
        Runner.average ~trials (fun ~seed ->
            let out = run_with `Skip ~seed in
            float_of_int
              (List.length (List.filter (fun p -> p.Mpareto.collides) out.points)))
      in
      Table.add_row table
        [
          string_of_int n;
          Runner.mean_cell skip;
          Runner.mean_cell allow;
          Printf.sprintf "%.1f" colliding.Stats.mean;
        ])
    (Mode.n_sweep mode);
  [ table ]

let mu mode =
  let k = Mode.k_placement mode in
  let l = Mode.l_fixed mode in
  let n = Mode.n_dynamic mode in
  let trials = Mode.trials_dynamic mode in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Ablation: migration coefficient sweep over a simulated day (k=%d, \
            l=%d, n=%d)"
           k l n)
      ~columns:
        [ "mu"; "mPareto total"; "VNF moves/day"; "NoMigration"; "reduction" ]
  in
  List.iter
    (fun mu ->
      let day policy ~seed =
        let problem = Runner.fat_tree_problem ~k ~l ~n ~seed () in
        Engine.run_day (Scenario.make ~mu problem) ~policy
      in
      let mp =
        Runner.average ~trials (fun ~seed ->
            (day Engine.Mpareto ~seed).Engine.total_cost)
      in
      let moves =
        Runner.average ~trials (fun ~seed ->
            float_of_int (day Engine.Mpareto ~seed).Engine.total_migrations)
      in
      let stay =
        Runner.average ~trials (fun ~seed ->
            (day Engine.No_migration ~seed).Engine.total_cost)
      in
      Table.add_row table
        [
          Printf.sprintf "1e%d" (int_of_float (Float.log10 mu));
          Runner.mean_cell mp;
          Printf.sprintf "%.1f" moves.Stats.mean;
          Runner.mean_cell stay;
          Printf.sprintf "%.1f%%"
            (100.0 *. (1.0 -. (mp.Stats.mean /. stay.Stats.mean)));
        ])
    [ 1e2; 1e3; 1e4; 1e5; 1e6 ];
  [ table ]

let pair_limit mode =
  let k = Mode.k_placement mode in
  let l = Mode.l_fixed mode in
  let trials = Mode.trials mode in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Ablation: DP placement ingress/egress candidate cap (k=%d, l=%d)" k
           l)
      ~columns:[ "n"; "full scan"; "cap=16"; "cap=4"; "cap=16 penalty" ]
  in
  List.iter
    (fun n ->
      let cost ?pair_limit ~seed () =
        let problem = Runner.fat_tree_problem ~k ~l ~n ~seed () in
        let rates = Flow.base_rates (Problem.flows problem) in
        (Placement_dp.solve problem ~rates ?pair_limit ()).cost
      in
      let full = Runner.average ~trials (fun ~seed -> cost ~seed ()) in
      let cap16 =
        Runner.average ~trials (fun ~seed -> cost ~pair_limit:16 ~seed ())
      in
      let cap4 =
        Runner.average ~trials (fun ~seed -> cost ~pair_limit:4 ~seed ())
      in
      Table.add_row table
        [
          string_of_int n;
          Runner.mean_cell full;
          Runner.mean_cell cap16;
          Runner.mean_cell cap4;
          Printf.sprintf "%.2f%%"
            (100.0 *. ((cap16.Stats.mean /. full.Stats.mean) -. 1.0));
        ])
    (Mode.n_sweep mode);
  [ table ]

let initial mode =
  let k = Mode.k_placement mode in
  let l = Mode.l_fixed mode in
  let n = Mode.n_dynamic mode in
  let trials = Mode.trials_dynamic mode in
  let mu_val, _ = Mode.mu_dynamic mode in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Ablation: day-0 deployment policy (k=%d, l=%d, n=%d, mu=%g)" k l n
           mu_val)
      ~columns:
        [
          "initial placement";
          "mPareto total";
          "NoMigration total";
          "migration gain";
        ]
  in
  let day ~initial policy ~seed =
    let problem = Runner.fat_tree_problem ~k ~l ~n ~seed () in
    Engine.run_day
      (Scenario.make ~mu:mu_val
         ~initial:(match initial with
           | `Uninformed -> Scenario.Uninformed seed
           | `Hour1 -> Scenario.Hour1)
         problem)
      ~policy
  in
  List.iter
    (fun (label, initial) ->
      let mp =
        Runner.average ~trials (fun ~seed ->
            (day ~initial Engine.Mpareto ~seed).Engine.total_cost)
      in
      let stay =
        Runner.average ~trials (fun ~seed ->
            (day ~initial Engine.No_migration ~seed).Engine.total_cost)
      in
      Table.add_row table
        [
          label;
          Runner.mean_cell mp;
          Runner.mean_cell stay;
          Printf.sprintf "%.1f%%"
            (100.0 *. (1.0 -. (mp.Stats.mean /. stay.Stats.mean)));
        ])
    [
      ("uninformed (tau_0 = 0, paper lifecycle)", `Uninformed);
      ("idealized hour-1 aware operator", `Hour1);
    ];
  [ table ]

let lookahead mode =
  let k = Mode.k_placement mode in
  let l = Mode.l_fixed mode in
  let n = Mode.n_dynamic mode in
  let trials = Mode.trials_dynamic mode in
  let mu_val, _ = Mode.mu_dynamic mode in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Ablation: value of a perfect one-hour traffic forecast (k=%d, \
            l=%d, n=%d, mu=%g)"
           k l n mu_val)
      ~columns:[ "policy"; "day total"; "VNF moves"; "vs reactive mPareto" ]
  in
  let day policy ~seed =
    let problem = Runner.fat_tree_problem ~k ~l ~n ~seed () in
    Engine.run_day
      (Scenario.make ~mu:mu_val ~initial:(Scenario.Uninformed seed) problem)
      ~policy
  in
  let summarize policy =
    ( Runner.average ~trials (fun ~seed -> (day policy ~seed).Engine.total_cost),
      Runner.average ~trials (fun ~seed ->
          float_of_int (day policy ~seed).Engine.total_migrations) )
  in
  let reactive, reactive_moves = summarize Engine.Mpareto in
  let forecast, forecast_moves = summarize Engine.Mpareto_lookahead in
  Table.add_row table
    [
      "mPareto (reactive)";
      Runner.mean_cell reactive;
      Printf.sprintf "%.1f" reactive_moves.Stats.mean;
      "100%";
    ];
  Table.add_row table
    [
      "mPareto + forecast";
      Runner.mean_cell forecast;
      Printf.sprintf "%.1f" forecast_moves.Stats.mean;
      Printf.sprintf "%.1f%%"
        (100.0 *. forecast.Stats.mean /. reactive.Stats.mean);
    ];
  [ table ]

let parallel_frontiers mode =
  let k = Mode.k_placement mode in
  let l = Mode.l_fixed mode in
  let trials = Mode.trials mode in
  let mu_val, _ = Mode.mu_dynamic mode in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Ablation: Algo. 5's parallel frontiers vs all Definition-1 \
            frontiers (k=%d, l=%d, mu=%g)"
           k l mu_val)
      ~columns:
        [ "n"; "parallel (Algo 5)"; "all frontiers"; "optimal TOM"; "gap" ]
  in
  List.iter
    (fun n ->
      let instance ~seed =
        let problem = Runner.fat_tree_problem ~k ~l ~n ~seed () in
        (* Start from an uninformed deployment so the migration paths are
           long and the frontier sets rich. *)
        let current =
          Placement.random ~rng:(Rng.create (seed + 0x5eed)) problem
        in
        let rates =
          Ppdc_traffic.Diurnal.rates_at Ppdc_traffic.Diurnal.default
            ~flows:(Problem.flows problem) ~hour:6
        in
        (problem, current, rates)
      in
      let parallel =
        Runner.average ~trials (fun ~seed ->
            let problem, current, rates = instance ~seed in
            (Mpareto.migrate problem ~rates ~mu:mu_val ~current ()).total_cost)
      in
      let full =
        Runner.average ~trials (fun ~seed ->
            let problem, current, rates = instance ~seed in
            (Frontier_search.migrate problem ~rates ~mu:mu_val ~current ())
              .total_cost)
      in
      let opt =
        Runner.average ~trials (fun ~seed ->
            let problem, current, rates = instance ~seed in
            (Migration_opt.solve problem ~rates ~mu:mu_val ~current
               ~budget:(Mode.opt_budget mode) ())
              .cost)
      in
      Table.add_row table
        [
          string_of_int n;
          Runner.mean_cell parallel;
          Runner.mean_cell full;
          Runner.mean_cell opt;
          Printf.sprintf "%.2f%%"
            (100.0 *. ((parallel.Stats.mean /. full.Stats.mean) -. 1.0));
        ])
    (Mode.n_sweep mode);
  [ table ]
