module Table = Ppdc_prelude.Table
module Rng = Ppdc_prelude.Rng
module Flow = Ppdc_traffic.Flow
module Workload = Ppdc_traffic.Workload
open Ppdc_core
open Ppdc_baselines

let run mode =
  let k = Mode.k_placement mode in
  let n = 4 in
  let problem = Runner.fat_tree_problem ~k ~l:10 ~n ~seed:1 () in
  let rates = Flow.base_rates (Problem.flows problem) in
  let ft, cm = Runner.unweighted_fat_tree k in
  let table =
    Table.create
      ~title:(Printf.sprintf "Table II: algorithm matrix smoke run (k=%d)" k)
      ~columns:[ "problem"; "algorithm"; "cost" ]
  in
  let add problem_name algorithm cost =
    Table.add_row table [ problem_name; algorithm; Printf.sprintf "%.0f" cost ]
  in
  (* TOP-1 (n-stroll) on one host pair. *)
  let src = ft.Ppdc_topology.Fat_tree.hosts.(0) in
  let dst = ft.Ppdc_topology.Fat_tree.hosts.(Array.length ft.hosts - 1) in
  add "TOP-1" "DP-Stroll (Algo 2)" (Stroll_dp.solve ~cm ~src ~dst ~n ()).cost;
  add "TOP-1" "PrimalDual (Algo 1)"
    (Stroll_primal_dual.solve ~cm ~src ~dst ~n ()).cost;
  add "TOP-1" "Optimal (exact stroll)"
    (Stroll_exact.solve ~cm ~src ~dst ~n ~budget:(Mode.opt_budget mode) ())
      .cost;
  (* TOP. *)
  add "TOP" "DP (Algo 3)" (Placement_dp.solve problem ~rates ()).cost;
  add "TOP" "Optimal (Algo 4)"
    (Placement_opt.solve problem ~rates ~budget:(Mode.opt_budget mode) ()).cost;
  add "TOP" "Steering [55]" (Steering.place problem ~rates).cost;
  add "TOP" "Greedy [34]" (Greedy_liu.place problem ~rates).cost;
  add "TOP" "Annealing (extension)"
    (Ppdc_extensions.Placement_anneal.solve ~rng:(Rng.create 3) problem ~rates)
      .cost;
  (* TOM after a rate redraw. *)
  let current = (Placement_dp.solve problem ~rates ()).placement in
  let rng = Rng.create 2 in
  let rates' = Workload.redraw_rates ~rng (Problem.flows problem) in
  let mu = 1e4 in
  add "TOM" "mPareto (Algo 5)"
    (Mpareto.migrate problem ~rates:rates' ~mu ~current ()).total_cost;
  add "TOM" "Optimal (Algo 6)"
    (Migration_opt.solve problem ~rates:rates' ~mu ~current
       ~budget:(Mode.opt_budget mode) ())
      .cost;
  add "TOM" "PLAN [17]"
    (Plan.migrate problem ~rates:rates' ~mu_vm:mu ~placement:current ())
      .total_cost;
  add "TOM" "MCF [24]"
    (Mcf_migration.migrate problem ~rates:rates' ~mu_vm:mu ~placement:current
       ())
      .total_cost;
  add "TOM" "NoMigration"
    (No_migration.evaluate problem ~rates:rates' ~placement:current).total_cost;
  [ table ]
