(** Table II — one smoke run of every algorithm in the comparison matrix.

    A single seeded instance; each algorithm of Table II (our solutions
    and the existing work we compare against) reports its cost, so a
    reader can see at a glance that everything is wired and who wins
    where. *)

val run : Mode.t -> Ppdc_prelude.Table.t list
