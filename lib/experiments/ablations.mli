(** Ablation experiments for the design choices called out in DESIGN.md.

    - [rescore]: Algo. 3 selects ingress/egress pairs by the stroll value
      (paper behaviour) vs by the recomputed exact C_a of the extracted
      placement — how much does the cheaper selection rule cost?
    - [frontier]: mPareto skipping vs allowing colliding parallel
      frontiers — does the one-VNF-per-switch constraint ever bind?
    - [mu]: migration-coefficient sweep — how μ throttles migration
      aggressiveness and where NoMigration becomes competitive.
    - [pair_limit]: the DP placement's ingress/egress candidate cap used
      for k=16 scalability — solution quality vs the faithful full
      scan.
    - [initial]: day-0 deployment policy. Eq. 9 has τ_0 = 0, so the
      paper's SFC is deployed before any traffic exists (uninformed,
      arbitrary placement) — the setting under which NoMigration loses
      badly. This ablation compares against an idealized operator who
      already knows the hour-1 rates, quantifying how much of the
      migration gain comes from correcting the blind deployment vs from
      tracking the east/west hotspot drift. *)

val rescore : Mode.t -> Ppdc_prelude.Table.t list
val frontier : Mode.t -> Ppdc_prelude.Table.t list
val mu : Mode.t -> Ppdc_prelude.Table.t list
val pair_limit : Mode.t -> Ppdc_prelude.Table.t list
val initial : Mode.t -> Ppdc_prelude.Table.t list
val lookahead : Mode.t -> Ppdc_prelude.Table.t list
val parallel_frontiers : Mode.t -> Ppdc_prelude.Table.t list
