module Table = Ppdc_prelude.Table
module Rng = Ppdc_prelude.Rng
module Workload = Ppdc_traffic.Workload
open Ppdc_core

let run mode =
  let k = Mode.k_dynamic mode in
  let n = 6 in
  let mu = 200.0 in
  let l = Mode.l_dynamic mode in
  let problem = Runner.fat_tree_problem ~k ~l ~n ~seed:1 () in
  (* The chain was deployed before traffic existed (tau_0 = 0), so the
     VNFs start far from where the live traffic wants them — the setting
     in which the frontier walk of Fig. 6 is interesting. *)
  let current = Placement.random ~rng:(Rng.create 1) problem in
  let rng = Rng.create 2 in
  let rates = Workload.redraw_rates ~rng (Problem.flows problem) in
  let outcome =
    Mpareto.migrate problem ~rates ~mu ~current
      ?pair_limit:(Mode.pair_limit mode) ()
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Fig. 6(b): parallel-frontier Pareto front (k=%d, n=%d, mu=%.0f)" k
           n mu)
      ~columns:[ "frontier"; "C_b (migration)"; "C_a (communication)"; "C_t"; "chosen" ]
  in
  List.iteri
    (fun i (p : Mpareto.point) ->
      Table.add_row table
        [
          (if i = 0 then "0 (=p)"
           else if i = List.length outcome.points - 1 then
             Printf.sprintf "%d (=p')" i
           else string_of_int i);
          Printf.sprintf "%.0f" p.migration_cost;
          Printf.sprintf "%.0f" p.comm_cost;
          Printf.sprintf "%.0f" (p.migration_cost +. p.comm_cost);
          (if Placement.equal p.frontier outcome.migration then "<-- mPareto"
           else if p.collides then "(collides)"
           else "");
        ])
    outcome.points;
  [ table ]
