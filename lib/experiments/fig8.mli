(** Fig. 8 — the daily traffic-rate pattern (Eq. 9).

    Prints τ_h for east- and west-coast flows over the 12-hour day plus
    the aggregate scale of a 50/50 coast mix: rates ramp to the noon
    peak and back, with the west coast lagging by three hours. *)

val run : Mode.t -> Ppdc_prelude.Table.t list
