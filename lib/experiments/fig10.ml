module Table = Ppdc_prelude.Table
module Stats = Ppdc_prelude.Stats

let run mode =
  let k = Mode.k_placement mode in
  let l = Mode.l_fixed mode in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Fig. 10: TOP with uniform link delays (k=%d, l=%d, delay mean \
            1.5ms var 0.5)"
           k l)
      ~columns:
        [
          "n"; "Optimal"; "DP"; "Greedy"; "Steering"; "DP/Opt"; "DP/Steering";
        ]
  in
  List.iter
    (fun n ->
      let optimal, dp, greedy, steering =
        Fig9.compare_algorithms ~weighted:true ~mode ~k ~l ~n
      in
      Table.add_row table
        [
          string_of_int n;
          Runner.mean_cell optimal;
          Runner.mean_cell dp;
          Runner.mean_cell greedy;
          Runner.mean_cell steering;
          Printf.sprintf "%.3f" (dp.Stats.mean /. optimal.Stats.mean);
          Printf.sprintf "%.3f" (dp.Stats.mean /. steering.Stats.mean);
        ])
    (Mode.n_sweep mode);
  [ table ]
