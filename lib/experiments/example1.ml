module Table = Ppdc_prelude.Table
module Linear = Ppdc_topology.Linear
module Cost_matrix = Ppdc_topology.Cost_matrix
module Flow = Ppdc_traffic.Flow
open Ppdc_core

let run _mode =
  let lin = Linear.build ~num_switches:5 () in
  let cm = Cost_matrix.compute lin.graph in
  let h1 = lin.hosts.(0) and h2 = lin.hosts.(1) in
  let flows =
    [|
      Flow.make ~id:0 ~src_host:h1 ~dst_host:h1 ~base_rate:100.0 ~coast:East;
      Flow.make ~id:1 ~src_host:h2 ~dst_host:h2 ~base_rate:1.0 ~coast:West;
    |]
  in
  let problem = Problem.make ~cm ~flows ~n:2 () in
  let table =
    Table.create ~title:"Example 1 / Fig. 3: worked migration example (mu=1)"
      ~columns:[ "step"; "value"; "paper" ]
  in
  let initial = Placement_opt.solve problem ~rates:[| 100.0; 1.0 |] () in
  Table.add_row table
    [
      "optimal C_a under lambda=<100,1>";
      Printf.sprintf "%.0f" initial.cost;
      "410";
    ];
  let p = [| 0; 1 |] in
  let stale = Cost.comm_cost problem ~rates:[| 1.0; 100.0 |] p in
  Table.add_row table
    [ "stale C_a after swap to <1,100>"; Printf.sprintf "%.0f" stale; "1004" ];
  let migrated =
    Mpareto.migrate problem ~rates:[| 1.0; 100.0 |] ~mu:1.0 ~current:p ()
  in
  Table.add_row table
    [
      "mPareto migration cost C_b";
      Printf.sprintf "%.0f" migrated.migration_cost;
      "6";
    ];
  Table.add_row table
    [
      "post-migration C_a";
      Printf.sprintf "%.0f" migrated.comm_cost;
      "410";
    ];
  Table.add_row table
    [
      "total-cost reduction";
      Printf.sprintf "%.1f%%" (100.0 *. (1.0 -. (migrated.total_cost /. stale)));
      "58.6%";
    ];
  [ table ]
