module Table = Ppdc_prelude.Table
module Stats = Ppdc_prelude.Stats
module Scenario = Ppdc_sim.Scenario
module Engine = Ppdc_sim.Engine

let scenario ~mode ~k ~l ~n ~mu ~seed =
  let problem = Runner.fat_tree_problem ~k ~l ~n ~seed () in
  Scenario.make ~mu
    ?pair_limit:(Mode.pair_limit mode)
    ~opt_budget:(Mode.opt_budget mode)
    ~initial:(Scenario.Uninformed seed) problem

(* Average per-hour series of a policy across seeds. *)
let hourly ~mode ~k ~l ~n ~mu ~trials policy =
  let runs =
    Array.init trials (fun i ->
        Engine.run_day (scenario ~mode ~k ~l ~n ~mu ~seed:(i + 1)) ~policy)
  in
  let hours = Array.length runs.(0).Engine.hours in
  Array.init hours (fun h ->
      let costs =
        Array.map (fun r -> r.Engine.hours.(h).Engine.total_cost) runs
      in
      let migrations =
        Array.map
          (fun r -> float_of_int r.Engine.hours.(h).Engine.migrations)
          runs
      in
      (Stats.summary costs, Stats.summary migrations))

let total ~mode ~k ~l ~n ~mu ~trials policy =
  Runner.average ~trials (fun ~seed ->
      (Engine.run_day (scenario ~mode ~k ~l ~n ~mu ~seed) ~policy)
        .Engine.total_cost)

let run mode =
  let k = Mode.k_dynamic mode in
  let l = Mode.l_dynamic mode in
  let n = Mode.n_dynamic mode in
  let trials = Mode.trials_dynamic mode in
  let mu_lo, mu_hi = Mode.mu_dynamic mode in
  let mu_name mu = Printf.sprintf "%g" mu in
  let policies = Engine.[ Mpareto; Optimal; Plan; Mcf ] in
  (* (a) and (b): one set of day simulations feeds both tables. *)
  let series =
    List.map (fun p -> (p, hourly ~mode ~k ~l ~n ~mu:mu_lo ~trials p)) policies
  in
  let hours = Array.length (snd (List.hd series)) in
  let table_a =
    Table.create
      ~title:
        (Printf.sprintf
           "Fig. 11(a): hourly total cost under dynamic traffic (k=%d, l=%d, \
            n=%d, mu=%s)"
           k l n (mu_name mu_lo))
      ~columns:("hour" :: List.map Engine.policy_name policies)
  in
  let table_b =
    Table.create
      ~title:
        (Printf.sprintf
           "Fig. 11(b): hourly migrations — VNF moves (mPareto/Optimal) vs \
            VM moves (PLAN/MCF), k=%d, l=%d, n=%d"
           k l n)
      ~columns:("hour" :: List.map Engine.policy_name policies)
  in
  for h = 0 to hours - 1 do
    Table.add_row table_a
      (string_of_int (h + 1)
      :: List.map (fun (_, s) -> Runner.mean_cell (fst s.(h))) series);
    Table.add_row table_b
      (string_of_int (h + 1)
      :: List.map
           (fun (_, s) -> Printf.sprintf "%.1f" (snd s.(h)).Stats.mean)
           series)
  done;
  (* (c): total daily cost vs l for two migration coefficients. *)
  let table_c =
    Table.create
      ~title:
        (Printf.sprintf
           "Fig. 11(c): total daily cost vs number of flows (k=%d, n=%d)" k n)
      ~columns:
        [
          "l";
          Printf.sprintf "mPareto mu=%s" (mu_name mu_lo);
          Printf.sprintf "Optimal mu=%s" (mu_name mu_lo);
          Printf.sprintf "mPareto mu=%s" (mu_name mu_hi);
          Printf.sprintf "Optimal mu=%s" (mu_name mu_hi);
          "NoMigration";
          "reduction";
        ]
  in
  List.iter
    (fun l ->
      let mp4 = total ~mode ~k ~l ~n ~mu:mu_lo ~trials Engine.Mpareto in
      let op4 = total ~mode ~k ~l ~n ~mu:mu_lo ~trials Engine.Optimal in
      let mp5 = total ~mode ~k ~l ~n ~mu:mu_hi ~trials Engine.Mpareto in
      let op5 = total ~mode ~k ~l ~n ~mu:mu_hi ~trials Engine.Optimal in
      let stay = total ~mode ~k ~l ~n ~mu:mu_lo ~trials Engine.No_migration in
      Table.add_row table_c
        [
          string_of_int l;
          Runner.mean_cell mp4;
          Runner.mean_cell op4;
          Runner.mean_cell mp5;
          Runner.mean_cell op5;
          Runner.mean_cell stay;
          Printf.sprintf "%.1f%%"
            (100.0 *. (1.0 -. (mp4.Stats.mean /. stay.Stats.mean)));
        ])
    (Mode.l_dynamic_sweep mode);
  (* (d): total daily cost vs n, mPareto vs NoMigration. *)
  let table_d =
    Table.create
      ~title:
        (Printf.sprintf
           "Fig. 11(d): total daily cost vs chain length (k=%d, l=%d, mu=%s)"
           k l (mu_name mu_lo))
      ~columns:[ "n"; "mPareto"; "NoMigration"; "reduction" ]
  in
  List.iter
    (fun n ->
      let mp = total ~mode ~k ~l ~n ~mu:mu_lo ~trials Engine.Mpareto in
      let stay = total ~mode ~k ~l ~n ~mu:mu_lo ~trials Engine.No_migration in
      Table.add_row table_d
        [
          string_of_int n;
          Runner.mean_cell mp;
          Runner.mean_cell stay;
          Printf.sprintf "%.1f%%"
            (100.0 *. (1.0 -. (mp.Stats.mean /. stay.Stats.mean)));
        ])
    (Mode.n_dynamic_sweep mode);
  [ table_a; table_b; table_c; table_d ]
