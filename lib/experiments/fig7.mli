(** Fig. 7 — TOP-1 (n-stroll) algorithm comparison.

    One VM pair on an unweighted fat-tree (paper: k=8), chain length
    swept. Series: Optimal (exact stroll), DP-Stroll (Algo. 2), the
    concrete primal-dual stroll (Algo. 1), and the paper's plotted
    2·Optimal guarantee line. Expected shape: costs grow with n,
    DP-Stroll tracks Optimal within ~8% and stays well under the
    guarantee. *)

val run : Mode.t -> Ppdc_prelude.Table.t list
