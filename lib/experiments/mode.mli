(** Experiment scaling modes.

    [Full] reproduces the paper's parameters (k=8 and k=16 fat-trees,
    l up to 1000, 20 trials per data point) and takes tens of minutes;
    [Quick] shrinks the topologies and trial counts so the entire bench
    suite finishes in a couple of minutes while preserving every
    qualitative comparison. The bench harness reads the mode from the
    [PPDC_BENCH_MODE] environment variable ([quick] is the default). *)

type t = Quick | Full

val of_env : unit -> t
(** [PPDC_BENCH_MODE=full] selects [Full]; anything else is [Quick]. *)

val name : t -> string

val trials : t -> int
(** Runs averaged per data point: 5 quick, 20 full (the paper's count). *)

val k_placement : t -> int
(** Fat-tree arity for the placement experiments (Figs. 7, 9, 10):
    4 quick, 8 full. *)

val k_dynamic : t -> int
(** Fat-tree arity for the dynamic-traffic experiments (Figs. 6(b), 11):
    4 quick, 16 full. *)

val l_sweep : t -> int list
(** Flow counts for the "vary l" experiments. *)

val l_fixed : t -> int
(** Flow count for the "vary n" experiments. *)

val l_dynamic : t -> int
(** Flow count for the Fig. 11 day simulations (paper: 1000). *)

val mu_dynamic : t -> float * float
(** The two migration coefficients for the dynamic experiments. Full
    mode uses the paper's (10^4, 10^5); quick mode scales them down to
    (10^2, 10^3) because on a k=4 fabric (distances ≤ 6, l = 20) a
    10^4-sized migration can never amortize — the comparison would
    degenerate to "nobody moves". *)

val trials_dynamic : t -> int
(** Trials for the day simulations — smaller than {!trials} because each
    data point is a full 12-hour simulation of four policies. *)

val l_dynamic_sweep : t -> int list
(** Flow counts for Fig. 11(c). *)

val n_dynamic_sweep : t -> int list
(** Chain lengths for Fig. 11(d). *)

val n_sweep : t -> int list
(** Chain lengths for the "vary n" experiments (paper: up to 13). *)

val n_stroll_sweep : t -> int list
(** Chain lengths for the TOP-1 experiment (Fig. 7). *)

val n_dynamic : t -> int
(** Chain length for Fig. 11(a)-(c) (paper: 7). *)

val opt_budget : t -> int
(** Branch-and-bound node budget for "Optimal" curves. *)

val pair_limit : t -> int option
(** Ingress/egress candidate cap for DP placement inside day
    simulations; [None] in quick mode (topologies are small enough for
    the faithful full scan). *)
