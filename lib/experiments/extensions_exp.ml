module Table = Ppdc_prelude.Table
module Stats = Ppdc_prelude.Stats
module Rng = Ppdc_prelude.Rng
module Flow = Ppdc_traffic.Flow
module Workload = Ppdc_traffic.Workload
module Diurnal = Ppdc_traffic.Diurnal
module Scenario = Ppdc_sim.Scenario
module Engine = Ppdc_sim.Engine
open Ppdc_core
open Ppdc_extensions

let capacity mode =
  let k = Mode.k_placement mode in
  let l = Mode.l_fixed mode in
  let trials = Mode.trials mode in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Extension: per-switch VNF capacity (k=%d, l=%d; cost of the DP \
            block reduction)"
           k l)
      ~columns:[ "n"; "c=1 (paper)"; "c=2"; "c=4"; "c=n (stacked)"; "c=2 saving" ]
  in
  List.iter
    (fun n ->
      let cost ~capacity ~seed =
        let problem = Runner.fat_tree_problem ~k ~l ~n ~seed () in
        let rates = Flow.base_rates (Problem.flows problem) in
        (Capacity.solve problem ~rates ~capacity).cost
      in
      let point capacity =
        Runner.average ~trials (fun ~seed -> cost ~capacity ~seed)
      in
      let c1 = point 1 and c2 = point 2 and c4 = point 4 and cn = point n in
      Table.add_row table
        [
          string_of_int n;
          Runner.mean_cell c1;
          Runner.mean_cell c2;
          Runner.mean_cell c4;
          Runner.mean_cell cn;
          Printf.sprintf "%.1f%%"
            (100.0 *. (1.0 -. (c2.Stats.mean /. c1.Stats.mean)));
        ])
    (Mode.n_sweep mode);
  [ table ]

let multi_sfc mode =
  let k = Mode.k_placement mode in
  let l = Mode.l_fixed mode in
  let trials = Mode.trials_dynamic mode in
  let chains = [| Chain.typical 3; Chain.typical 5; Chain.typical 7 |] in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Extension: three concurrent SFCs (n=3/5/7) sharing a k=%d PPDC, \
            l=%d flows"
           k l)
      ~columns:
        [
          "metric";
          "joint placement";
          "after rate redraw (stay)";
          "after per-chain mPareto";
        ]
  in
  let totals =
    Ppdc_prelude.Parallel.init trials (fun i ->
        let seed = i + 1 in
        let ft, cm = Runner.unweighted_fat_tree k in
        let rng = Rng.create seed in
        let flows = Workload.generate_on_fat_tree ~rng ~l ft in
        let spec =
          { Multi_sfc.chains; assignment = Array.init l (fun i -> i mod 3) }
        in
        let t = Multi_sfc.make ~cm ~flows ~spec in
        let rates0 = Flow.base_rates flows in
        let placed = Multi_sfc.place t ~rates:rates0 in
        let rates = Workload.redraw_rates ~rng flows in
        let stay = Multi_sfc.total_cost t ~rates placed.placement in
        let migrated, _, _ =
          Multi_sfc.migrate t ~rates ~mu:(fst (Mode.mu_dynamic mode))
            ~current:placed.placement
        in
        (placed.cost, stay, migrated.cost))
  in
  let summarize f = Stats.summary (Array.map f totals) in
  let initial = summarize (fun (a, _, _) -> a) in
  let stay = summarize (fun (_, b, _) -> b) in
  let migrated = summarize (fun (_, _, c) -> c) in
  Table.add_row table
    [
      "total cost";
      Runner.mean_cell initial;
      Runner.mean_cell stay;
      Runner.mean_cell migrated;
    ];
  Table.add_row table
    [
      "vs staying";
      "";
      "100%";
      Printf.sprintf "%.1f%%" (100.0 *. migrated.Stats.mean /. stay.Stats.mean);
    ];
  [ table ]

let replication mode =
  let k = Mode.k_placement mode in
  let l = Mode.l_fixed mode in
  let n = Mode.n_dynamic mode in
  let trials = Mode.trials_dynamic mode in
  let mu, _ = Mode.mu_dynamic mode in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Extension: static replication vs migration over a diurnal day \
            (k=%d, l=%d, n=%d, mu=%g)"
           k l n mu)
      ~columns:
        [
          "replica budget";
          "replication (static) day cost";
          "mPareto (migration) day cost";
          "static single copy";
        ]
  in
  (* Replication deploys once using hour-1 rates, then rides the day with
     per-flow replica choice but no moves; mPareto migrates hourly; the
     static single copy is the NoMigration reference. All start informed
     (hour-1), isolating "replicas vs movement". *)
  let day ~seed ~budget =
    let problem = Runner.fat_tree_problem ~k ~l ~n ~seed () in
    let flows = Problem.flows problem in
    let m = Diurnal.default in
    let r1 = Diurnal.rates_at m ~flows ~hour:1 in
    let deployment = (Replication.place problem ~rates:r1 ~budget).deployment in
    let total = ref 0.0 in
    for hour = 1 to m.hours do
      let rates = Diurnal.rates_at m ~flows ~hour in
      total := !total +. Replication.comm_cost problem ~rates deployment
    done;
    !total
  in
  let mpareto_day ~seed =
    let problem = Runner.fat_tree_problem ~k ~l ~n ~seed () in
    (Ppdc_sim.Engine.run_day
       (Ppdc_sim.Scenario.make ~mu ~initial:Ppdc_sim.Scenario.Hour1 problem)
       ~policy:Ppdc_sim.Engine.Mpareto)
      .Ppdc_sim.Engine.total_cost
  in
  let mp = Runner.average ~trials (fun ~seed -> mpareto_day ~seed) in
  let static = Runner.average ~trials (fun ~seed -> day ~seed ~budget:0) in
  List.iter
    (fun budget ->
      let rep = Runner.average ~trials (fun ~seed -> day ~seed ~budget) in
      Table.add_row table
        [
          string_of_int budget;
          Runner.mean_cell rep;
          Runner.mean_cell mp;
          Runner.mean_cell static;
        ])
    [ 1; 2; 4; 8 ];
  [ table ]

let failures mode =
  let k = Mode.k_placement mode in
  let l = Mode.l_fixed mode in
  let n = Mode.n_dynamic mode in
  let trials = Mode.trials_dynamic mode in
  let mu, _ = Mode.mu_dynamic mode in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Extension: link failures and the migration response (k=%d, l=%d, \
            n=%d, mu=%g)"
           k l n mu)
      ~columns:
        [
          "failed fraction";
          "healthy C_a";
          "degraded C_a";
          "after mPareto (C_t)";
          "VNF moves";
        ]
  in
  List.iter
    (fun fraction ->
      let episode ~seed =
        let problem = Runner.fat_tree_problem ~k ~l ~n ~seed () in
        let rates = Flow.base_rates (Problem.flows problem) in
        let placement = (Placement_dp.solve problem ~rates ()).placement in
        Failures.impact ~rng:(Rng.create (seed * 71)) ~fraction ~mu problem
          ~rates ~placement
      in
      let before =
        Runner.average ~trials (fun ~seed -> (episode ~seed).Failures.cost_before)
      in
      let after =
        Runner.average ~trials (fun ~seed -> (episode ~seed).Failures.cost_after)
      in
      let migrated =
        Runner.average ~trials (fun ~seed ->
            (episode ~seed).Failures.cost_migrated)
      in
      let moves =
        Runner.average ~trials (fun ~seed ->
            float_of_int (episode ~seed).Failures.moved)
      in
      Table.add_row table
        [
          Printf.sprintf "%.0f%%" (100.0 *. fraction);
          Runner.mean_cell before;
          Runner.mean_cell after;
          Runner.mean_cell migrated;
          Printf.sprintf "%.1f" moves.Stats.mean;
        ])
    [ 0.1; 0.25; 0.4 ];
  [ table ]

let utilization mode =
  let k = Mode.k_placement mode in
  let l = Mode.l_fixed mode in
  let trials = Mode.trials mode in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Link utilization under DP placement (k=%d, l=%d) — checking the \
            paper's bandwidth-headroom assumption"
           k l)
      ~columns:[ "n"; "max link load"; "mean link load"; "max/mean" ]
  in
  List.iter
    (fun n ->
      let loads ~seed =
        let problem = Runner.fat_tree_problem ~k ~l ~n ~seed () in
        let rates = Flow.base_rates (Problem.flows problem) in
        let p = (Placement_dp.solve problem ~rates ()).placement in
        Link_load.compute problem ~rates p
      in
      let max_load =
        Runner.average ~trials (fun ~seed -> Link_load.max_load (loads ~seed))
      in
      let mean_load =
        Runner.average ~trials (fun ~seed -> Link_load.mean_load (loads ~seed))
      in
      Table.add_row table
        [
          string_of_int n;
          Runner.mean_cell max_load;
          Runner.mean_cell mean_load;
          Printf.sprintf "%.1fx" (max_load.Stats.mean /. mean_load.Stats.mean);
        ])
    (Mode.n_sweep mode);
  [ table ]

let churn mode =
  let k = Mode.k_placement mode in
  let l = Mode.l_fixed mode in
  let n = Mode.n_dynamic mode in
  let trials = Mode.trials_dynamic mode in
  let mu, _ = Mode.mu_dynamic mode in
  let epochs = 24 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Extension: user churn — flows arrive and depart (k=%d, l=%d, \
            n=%d, %d epochs, mu=%g)"
           k l n epochs mu)
      ~columns:
        [ "policy"; "trace total"; "moves"; "vs NoMigration" ]
  in
  let day policy ~seed =
    let problem = Runner.fat_tree_problem ~k ~l ~n ~seed () in
    let trace =
      Ppdc_traffic.Trace.churn ~rng:(Rng.create (seed * 37)) ~epochs
        (Problem.flows problem)
    in
    Ppdc_sim.Engine.run_trace
      (Scenario.make ~mu ~initial:(Scenario.Uninformed seed) problem)
      ~policy ~trace
  in
  let stay =
    Runner.average ~trials (fun ~seed ->
        (day Engine.No_migration ~seed).Engine.total_cost)
  in
  List.iter
    (fun policy ->
      let total =
        Runner.average ~trials (fun ~seed -> (day policy ~seed).Engine.total_cost)
      in
      let moves =
        Runner.average ~trials (fun ~seed ->
            float_of_int (day policy ~seed).Engine.total_migrations)
      in
      Table.add_row table
        [
          Engine.policy_name policy;
          Runner.mean_cell total;
          Printf.sprintf "%.1f" moves.Stats.mean;
          Printf.sprintf "%.1f%%" (100.0 *. total.Stats.mean /. stay.Stats.mean);
        ])
    Engine.[ Mpareto; Plan; No_migration ];
  [ table ]
