(** Fig. 10 — TOP placement comparison with link time delays.

    Same algorithms as Fig. 9(b) but on weighted PPDCs: link delays drawn
    uniformly with mean 1.5 ms and variance 0.5 (the setting Fig. 10
    adopts from Liu et al.). The paper reports DP within 6–12% of
    Optimal and 56–64% below Steering/Greedy; the summary table prints
    those two ratios per n. *)

val run : Mode.t -> Ppdc_prelude.Table.t list
