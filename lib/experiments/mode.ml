type t = Quick | Full

let of_env () =
  match Sys.getenv_opt "PPDC_BENCH_MODE" with
  | Some s when String.lowercase_ascii s = "full" -> Full
  | Some _ | None -> Quick

let name = function Quick -> "quick" | Full -> "full"

let trials = function Quick -> 5 | Full -> 20

let k_placement = function Quick -> 4 | Full -> 8

let k_dynamic = function Quick -> 4 | Full -> 16

let l_sweep = function
  | Quick -> [ 4; 8; 16; 32 ]
  | Full -> [ 50; 100; 200; 400; 800 ]

let l_fixed = function Quick -> 10 | Full -> 200

let l_dynamic = function Quick -> 40 | Full -> 1000

let mu_dynamic = function Quick -> (3e3, 1e4) | Full -> (1e4, 1e5)

let trials_dynamic = function Quick -> 3 | Full -> 5

let l_dynamic_sweep = function
  | Quick -> [ 20; 40; 80 ]
  | Full -> [ 250; 500; 1000 ]

let n_dynamic_sweep = function
  | Quick -> [ 3; 4; 5 ]
  | Full -> [ 3; 5; 7; 9; 11; 13 ]

let n_sweep = function Quick -> [ 3; 4; 5; 6 ] | Full -> [ 3; 5; 7; 9; 11; 13 ]

let n_stroll_sweep = function
  | Quick -> [ 2; 3; 4; 5; 6 ]
  | Full -> [ 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let n_dynamic = function Quick -> 4 | Full -> 7

let opt_budget = function Quick -> 2_000_000 | Full -> 200_000

let pair_limit = function Quick -> None | Full -> Some 16
