module Table = Ppdc_prelude.Table
module Flow = Ppdc_traffic.Flow
open Ppdc_core
open Ppdc_baselines

(* One data point: mean cost of the four algorithms on fresh seeded
   instances. Shared with Fig. 10, which only flips [weighted]. *)
let compare_algorithms ~weighted ~mode ~k ~l ~n =
  let trials = Mode.trials mode in
  let budget = Mode.opt_budget mode in
  let point f = Runner.average ~trials f in
  let instance ~seed = Runner.fat_tree_problem ~weighted ~k ~l ~n ~seed () in
  let optimal =
    point (fun ~seed ->
        let problem = instance ~seed in
        let rates = Flow.base_rates (Problem.flows problem) in
        (Placement_opt.solve problem ~rates ~budget ()).cost)
  in
  let dp =
    point (fun ~seed ->
        let problem = instance ~seed in
        let rates = Flow.base_rates (Problem.flows problem) in
        (Placement_dp.solve problem ~rates ()).cost)
  in
  let greedy =
    point (fun ~seed ->
        let problem = instance ~seed in
        let rates = Flow.base_rates (Problem.flows problem) in
        (Greedy_liu.place problem ~rates).cost)
  in
  let steering =
    point (fun ~seed ->
        let problem = instance ~seed in
        let rates = Flow.base_rates (Problem.flows problem) in
        (Steering.place problem ~rates).cost)
  in
  (optimal, dp, greedy, steering)

let row label (optimal, dp, greedy, steering) =
  [
    label;
    Runner.mean_cell optimal;
    Runner.mean_cell dp;
    Runner.mean_cell greedy;
    Runner.mean_cell steering;
  ]

let columns = [ "param"; "Optimal"; "DP"; "Greedy"; "Steering" ]

let run mode =
  let k = Mode.k_placement mode in
  let n_fixed = 5 in
  let table_a =
    Table.create
      ~title:
        (Printf.sprintf "Fig. 9(a): TOP vs number of flows l (k=%d, n=%d)" k
           n_fixed)
      ~columns
  in
  List.iter
    (fun l ->
      Table.add_row table_a
        (row
           (Printf.sprintf "l=%d" l)
           (compare_algorithms ~weighted:false ~mode ~k ~l ~n:n_fixed)))
    (Mode.l_sweep mode);
  let l_fixed = Mode.l_fixed mode in
  let table_b =
    Table.create
      ~title:
        (Printf.sprintf "Fig. 9(b): TOP vs chain length n (k=%d, l=%d)" k
           l_fixed)
      ~columns
  in
  List.iter
    (fun n ->
      Table.add_row table_b
        (row
           (Printf.sprintf "n=%d" n)
           (compare_algorithms ~weighted:false ~mode ~k ~l:l_fixed ~n)))
    (Mode.n_sweep mode);
  [ table_a; table_b ]
