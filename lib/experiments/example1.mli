(** Example 1 / Fig. 3 — the paper's worked migration example.

    The 5-switch linear PPDC (equivalently the k=2 fat-tree) with two VM
    pairs: the optimal placement costs 410; swapping the rate vector
    ⟨100,1⟩ → ⟨1,100⟩ inflates the stale placement to 1004; migrating
    both VNFs for 6 restores 410, a 58.6% total-cost reduction. The
    table replays each step with the library's own algorithms. *)

val run : Mode.t -> Ppdc_prelude.Table.t list
