(** Fig. 11 — VNF migration under dynamic diurnal traffic.

    A simulated 12-hour day on the large PPDC (paper: k=16, l=1000,
    n=7, μ = 10^4 or 10^5):

    - (a) per-hour total (communication + migration) cost of mPareto,
      PLAN, MCF and budgeted-Optimal — mPareto within a few percent of
      Optimal and far below the VM-migration baselines;
    - (b) per-hour migration counts — a handful of VNF moves vs droves
      of VM moves;
    - (c) total daily cost vs l for μ ∈ {10^4, 10^5}, mPareto /
      Optimal / NoMigration;
    - (d) total daily cost vs n, mPareto vs NoMigration — the "up to
      73% reduction" headline. *)

val run : Mode.t -> Ppdc_prelude.Table.t list
(** Returns the (a), (b), (c), (d) tables in order. *)
