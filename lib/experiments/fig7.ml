module Table = Ppdc_prelude.Table
module Rng = Ppdc_prelude.Rng
module Fat_tree = Ppdc_topology.Fat_tree
open Ppdc_core

let run mode =
  let k = Mode.k_placement mode in
  let trials = Mode.trials mode in
  let ft, cm = Runner.unweighted_fat_tree k in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "Fig. 7: TOP-1 stroll costs (k=%d, l=1, %d trials)" k
           trials)
      ~columns:[ "n"; "Optimal"; "DP-Stroll"; "PrimalDual"; "2xOptimal" ]
  in
  List.iter
    (fun n ->
      let endpoints seed =
        let rng = Rng.create (1000 + seed) in
        let src = Rng.pick rng ft.Fat_tree.hosts in
        let dst = Rng.pick rng ft.Fat_tree.hosts in
        (src, dst)
      in
      let budget = Mode.opt_budget mode in
      let optimal =
        Runner.average ~trials (fun ~seed ->
            let src, dst = endpoints seed in
            let dp = Stroll_dp.solve ~cm ~src ~dst ~n () in
            (Stroll_exact.solve ~cm ~src ~dst ~n ~budget
               ~incumbent:(dp.cost, dp.switches) ())
              .cost)
      in
      let dp =
        Runner.average ~trials (fun ~seed ->
            let src, dst = endpoints seed in
            (Stroll_dp.solve ~cm ~src ~dst ~n ()).cost)
      in
      let pd =
        Runner.average ~trials (fun ~seed ->
            let src, dst = endpoints seed in
            (Stroll_primal_dual.solve ~cm ~src ~dst ~n ()).cost)
      in
      Table.add_row table
        [
          string_of_int n;
          Runner.mean_cell optimal;
          Runner.mean_cell dp;
          Runner.mean_cell pd;
          Printf.sprintf "%.1f" (2.0 *. optimal.mean);
        ])
    (Mode.n_stroll_sweep mode);
  [ table ]
