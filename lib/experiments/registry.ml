type entry = {
  id : string;
  summary : string;
  run : Mode.t -> Ppdc_prelude.Table.t list;
}

let all =
  [
    {
      id = "example1";
      summary = "Example 1 / Fig. 3 worked migration example (410/1004/6/410)";
      run = Example1.run;
    };
    {
      id = "fig6b";
      summary = "Pareto front of parallel migration frontiers";
      run = Fig6b.run;
    };
    {
      id = "fig7";
      summary = "TOP-1 stroll algorithms: Optimal / DP-Stroll / PrimalDual";
      run = Fig7.run;
    };
    { id = "fig8"; summary = "Eq. 9 daily traffic-rate pattern"; run = Fig8.run };
    {
      id = "fig9";
      summary = "TOP placement comparison, unweighted (varying l and n)";
      run = Fig9.run;
    };
    {
      id = "fig10";
      summary = "TOP placement comparison with uniform link delays";
      run = Fig10.run;
    };
    {
      id = "fig11";
      summary = "Dynamic-traffic day: mPareto vs Optimal vs PLAN/MCF/NoMigration";
      run = Fig11.run;
    };
    {
      id = "tab2";
      summary = "Table II algorithm-matrix smoke run";
      run = Tab2.run;
    };
    {
      id = "abl_rescore";
      summary = "Ablation: stroll-value vs rescored pair selection in Algo. 3";
      run = Ablations.rescore;
    };
    {
      id = "abl_frontier";
      summary = "Ablation: frontier collision policy in mPareto";
      run = Ablations.frontier;
    };
    {
      id = "abl_mu";
      summary = "Ablation: migration-coefficient sweep";
      run = Ablations.mu;
    };
    {
      id = "abl_pair_limit";
      summary = "Ablation: DP placement candidate cap";
      run = Ablations.pair_limit;
    };
    {
      id = "abl_initial";
      summary = "Ablation: uninformed vs hour-1-aware day-0 deployment";
      run = Ablations.initial;
    };
    {
      id = "abl_parallel";
      summary = "Ablation: parallel frontiers vs the full Definition-1 set";
      run = Ablations.parallel_frontiers;
    };
    {
      id = "abl_lookahead";
      summary = "Ablation: value of a perfect one-hour traffic forecast";
      run = Ablations.lookahead;
    };
    {
      id = "eta_sweep";
      summary =
        "Event-driven day: migration-coefficient and trigger-policy sweeps";
      run = Eta_sweep.run;
    };
    {
      id = "ext_capacity";
      summary = "Extension: multiple VNFs per switch (block reduction)";
      run = Extensions_exp.capacity;
    };
    {
      id = "ext_multi_sfc";
      summary = "Extension: concurrent per-flow SFCs sharing one PPDC";
      run = Extensions_exp.multi_sfc;
    };
    {
      id = "ext_replication";
      summary = "Extension: static VNF replication vs migration";
      run = Extensions_exp.replication;
    };
    {
      id = "ext_failures";
      summary = "Extension: link failures and the migration response";
      run = Extensions_exp.failures;
    };
    {
      id = "ext_churn";
      summary = "Extension: user churn (arrivals/departures) over a trace";
      run = Extensions_exp.churn;
    };
    {
      id = "ext_utilization";
      summary = "Link utilization under DP placement (bandwidth headroom)";
      run = Extensions_exp.utilization;
    };
  ]

let find id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun e -> e.id = id) all

let ids () = List.map (fun e -> e.id) all
