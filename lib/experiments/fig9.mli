(** Fig. 9 — TOP placement comparison on unweighted PPDCs.

    (a) sweeps the number of VM flows [l] at a fixed chain length;
    (b) sweeps the chain length [n] at a fixed [l]. Series: Optimal
    (Algo. 4 branch-and-bound), DP (Algo. 3), Greedy (Liu et al.) and
    Steering (Zhang et al.). Expected shape: DP hugs Optimal while both
    baselines sit far above. *)

val run : Mode.t -> Ppdc_prelude.Table.t list
(** Returns the 9(a) and 9(b) tables. *)

val compare_algorithms :
  weighted:bool ->
  mode:Mode.t ->
  k:int ->
  l:int ->
  n:int ->
  Ppdc_prelude.Stats.summary
  * Ppdc_prelude.Stats.summary
  * Ppdc_prelude.Stats.summary
  * Ppdc_prelude.Stats.summary
(** One data point — mean costs of (Optimal, DP, Greedy, Steering) over
    the mode's trial count. Shared with Fig. 10, which sets
    [weighted]. *)
