(** Fig. 6(b) — the Pareto front of parallel migration frontiers.

    One rate redraw on a large PPDC with n = 6 and μ = 200: the table
    lists every parallel frontier's migration cost C_b (x-axis of the
    paper's scatter) and communication cost C_a (y-axis), plus which one
    mPareto committed. Expected shape: C_a falls monotonically as C_b
    grows — a Pareto front — and mPareto picks the row minimizing the
    sum. *)

val run : Mode.t -> Ppdc_prelude.Table.t list
