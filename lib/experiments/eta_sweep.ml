module Table = Ppdc_prelude.Table
module Rng = Ppdc_prelude.Rng
module Stats = Ppdc_prelude.Stats
module Events = Ppdc_traffic.Events
module Scenario = Ppdc_sim.Scenario
module Engine = Ppdc_sim.Engine
module Event_engine = Ppdc_sim.Event_engine

(* The composite day every row replays: the diurnal rate wave as
   hourly updates, quarter-hour probe ticks so triggers can fire
   between state changes, and one mid-day failure episode (a link goes
   down at hour 5.25 and comes back 1.5 hours later). Deterministic
   given the seed. *)
let stream ~seed scenario =
  let base = Scenario.events_of_diurnal scenario in
  let horizon = Events.horizon base in
  let probes = Events.probes ~every:0.25 ~horizon in
  let episode =
    Scenario.failure_episode
      ~rng:(Rng.create (seed + 0xfa11))
      ~at:5.25 ~duration:1.5 ~fraction:0.05 scenario
  in
  Events.merge (Events.merge base probes) episode

let scenario ~mu ~seed ~k ~l ~n =
  let problem = Runner.fat_tree_problem ~k ~l ~n ~seed () in
  Scenario.make ~mu ~initial:(Scenario.Uninformed seed) problem

let replay ~mu ~trigger ~seed ~k ~l ~n =
  let sc = scenario ~mu ~seed ~k ~l ~n in
  Event_engine.run sc ~policy:Engine.Mpareto ~trigger ~events:(stream ~seed sc)
    ()

(* Averages over trials of one run statistic. *)
let avg ~trials ~mu ~trigger ~k ~l ~n f =
  Runner.average ~trials (fun ~seed -> f (replay ~mu ~trigger ~seed ~k ~l ~n))

let mu_sweep mode =
  let k = Mode.k_placement mode in
  let l = Mode.l_fixed mode in
  let n = Mode.n_dynamic mode in
  let trials = Mode.trials_dynamic mode in
  let trigger = Event_engine.Threshold 1.2 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Eta sweep: migration coefficient under a threshold trigger (k=%d, \
            l=%d, n=%d, eta=1.2)"
           k l n)
      ~columns:
        [ "mu"; "comm cost"; "VNF moves"; "reconfigs"; "day total" ]
  in
  List.iter
    (fun mu ->
      let stat f = avg ~trials ~mu ~trigger ~k ~l ~n f in
      let comm = stat (fun r -> r.Event_engine.total_comm) in
      let moves =
        stat (fun r -> float_of_int r.Event_engine.total_moves)
      in
      let reconfigs =
        stat (fun r -> float_of_int r.Event_engine.reconfigurations)
      in
      let total = stat (fun r -> r.Event_engine.total_cost) in
      Table.add_row table
        [
          Printf.sprintf "1e%d" (int_of_float (Float.log10 mu));
          Runner.mean_cell comm;
          Printf.sprintf "%.1f" moves.Stats.mean;
          Printf.sprintf "%.1f" reconfigs.Stats.mean;
          Runner.mean_cell total;
        ])
    [ 1e2; 1e3; 1e4; 1e5; 1e6 ];
  table

let eta_sweep mode =
  let k = Mode.k_placement mode in
  let l = Mode.l_fixed mode in
  let n = Mode.n_dynamic mode in
  let trials = Mode.trials_dynamic mode in
  let mu, _ = Mode.mu_dynamic mode in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Eta sweep: threshold drift ratio (k=%d, l=%d, n=%d, mu=%g)" k l n
           mu)
      ~columns:
        [ "eta"; "comm cost"; "VNF moves"; "reconfigs"; "day total" ]
  in
  List.iter
    (fun eta ->
      let trigger = Event_engine.Threshold eta in
      let stat f = avg ~trials ~mu ~trigger ~k ~l ~n f in
      let comm = stat (fun r -> r.Event_engine.total_comm) in
      let moves =
        stat (fun r -> float_of_int r.Event_engine.total_moves)
      in
      let reconfigs =
        stat (fun r -> float_of_int r.Event_engine.reconfigurations)
      in
      let total = stat (fun r -> r.Event_engine.total_cost) in
      Table.add_row table
        [
          Printf.sprintf "%.2f" eta;
          Runner.mean_cell comm;
          Printf.sprintf "%.1f" moves.Stats.mean;
          Printf.sprintf "%.1f" reconfigs.Stats.mean;
          Runner.mean_cell total;
        ])
    [ 1.05; 1.1; 1.2; 1.5; 2.0 ];
  table

let triggers mode =
  let k = Mode.k_placement mode in
  let l = Mode.l_fixed mode in
  let n = Mode.n_dynamic mode in
  let trials = Mode.trials_dynamic mode in
  let mu, _ = Mode.mu_dynamic mode in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Trigger policies over the composite day (k=%d, l=%d, n=%d, mu=%g)"
           k l n mu)
      ~columns:
        [ "trigger"; "comm cost"; "VNF moves"; "reconfigs"; "day total" ]
  in
  List.iter
    (fun (label, trigger) ->
      let stat f = avg ~trials ~mu ~trigger ~k ~l ~n f in
      let comm = stat (fun r -> r.Event_engine.total_comm) in
      let moves =
        stat (fun r -> float_of_int r.Event_engine.total_moves)
      in
      let reconfigs =
        stat (fun r -> float_of_int r.Event_engine.reconfigurations)
      in
      let total = stat (fun r -> r.Event_engine.total_cost) in
      Table.add_row table
        [
          label;
          Runner.mean_cell comm;
          Printf.sprintf "%.1f" moves.Stats.mean;
          Printf.sprintf "%.1f" reconfigs.Stats.mean;
          Runner.mean_cell total;
        ])
    [
      ("on-event", Event_engine.On_event);
      ("periodic:1", Event_engine.Periodic 1.0);
      ("periodic:3", Event_engine.Periodic 3.0);
      ("threshold:1.2", Event_engine.Threshold 1.2);
      ("hysteresis:1.2,1.05", Event_engine.Hysteresis { up = 1.2; down = 1.05 });
    ];
  table

let run mode = [ mu_sweep mode; eta_sweep mode; triggers mode ]
