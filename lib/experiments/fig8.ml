module Table = Ppdc_prelude.Table
module Diurnal = Ppdc_traffic.Diurnal

let run _mode =
  let m = Diurnal.default in
  let table =
    Table.create ~title:"Fig. 8: daily traffic-rate pattern (Eq. 9)"
      ~columns:[ "hour"; "tau_east"; "tau_west"; "fleet_average" ]
  in
  for hour = 0 to m.hours do
    let east = Diurnal.scale m ~coast:East ~hour in
    let west = Diurnal.scale m ~coast:West ~hour in
    Table.add_row table
      [
        string_of_int hour;
        Printf.sprintf "%.3f" east;
        Printf.sprintf "%.3f" west;
        Printf.sprintf "%.3f" (0.5 *. (east +. west));
      ]
  done;
  [ table ]
