module Fat_tree = Ppdc_topology.Fat_tree
module Cost_matrix = Ppdc_topology.Cost_matrix
module Workload = Ppdc_traffic.Workload
module Rng = Ppdc_prelude.Rng
module Stats = Ppdc_prelude.Stats
open Ppdc_core

(* The unweighted fat-tree and its all-pairs matrix depend only on k;
   cache them across trials (the k=16 matrix costs ~45M operations and
   30 MB, and Fig. 11 uses it hundreds of times). The cache is an LRU
   bounded at [cost_matrix_cache_capacity] entries — an experiment
   sweeping many fabric sizes no longer accumulates one 30 MB matrix
   per k forever; any single experiment touches at most two or three
   ks, so trials still hit. Trials may run on several domains, so the
   cache is mutex-protected; the build happens under the lock on
   purpose — concurrent misses for the same k should wait for one
   build rather than redo it. *)
let cost_matrix_cache_capacity = 4

let unweighted_cache : (int, Fat_tree.t * Cost_matrix.t) Ppdc_prelude.Lru.t =
  Ppdc_prelude.Lru.create ~capacity:cost_matrix_cache_capacity
[@@ppdc.domain_safe
  "every lookup and insert happens inside unweighted_fat_tree under \
   unweighted_cache_mutex; the cached values are immutable after build"]

let unweighted_cache_mutex = Mutex.create () [@@ppdc.guards "runner.cache"]

let unweighted_fat_tree k =
  Ppdc_prelude.Mutexes.with_lock unweighted_cache_mutex (fun () ->
      let hit, pair =
        Ppdc_prelude.Lru.find_or_add unweighted_cache k (fun () ->
            let ft = Fat_tree.build k in
            (ft, Cost_matrix.compute ft.graph))
      in
      Ppdc_prelude.Obs.incr
        (if hit then "runner.cost_matrix_cache_hits"
         else "runner.cost_matrix_cache_misses");
      pair)
[@@ppdc.domain_safe
  "taking the cache mutex inside parallel trials is the documented \
   discipline (concurrent misses for the same k wait for one build); \
   the lock nests nothing and is never held across a trial body"]

let cost_matrix_cache_stats () =
  Ppdc_prelude.Mutexes.with_lock unweighted_cache_mutex (fun () ->
      Ppdc_prelude.Lru.
        ( length unweighted_cache,
          hits unweighted_cache,
          misses unweighted_cache ))

let fat_tree_problem ?(weighted = false) ?(rack_locality = 0.8) ~k ~l ~n ~seed
    () =
  let rng = Rng.create seed in
  let ft, cm =
    if weighted then begin
      (* Link delays ~ U(mean 1.5, variance 0.5): half-width sqrt(3*0.5). *)
      let half_width = sqrt 1.5 in
      let weight_rng = Rng.split rng in
      let ft =
        Fat_tree.build
          ~weight:(fun _ _ ->
            Rng.uniform weight_rng ~lo:(1.5 -. half_width)
              ~hi:(1.5 +. half_width))
          k
      in
      (ft, Cost_matrix.compute ft.graph)
    end
    else unweighted_fat_tree k
  in
  let flows = Workload.generate_on_fat_tree ~rack_locality ~rng ~l ft in
  Problem.make ~cm ~flows ~n ()

(* Seeded trials are independent; spread them over the domain pool.
   Results land in seed order, so the summary is bit-identical to the
   sequential protocol for any PPDC_DOMAINS. *)
let average ~trials f =
  Stats.summary
    (Ppdc_prelude.Parallel.init trials (fun i ->
         Ppdc_prelude.Obs.time "runner.trial" (fun () -> f ~seed:(i + 1))))

let mean_cell (s : Stats.summary) = Printf.sprintf "%.1f±%.1f" s.mean s.ci95
