(** Name → experiment dispatch, shared by the CLI and the bench harness. *)

type entry = {
  id : string;  (** e.g. ["fig9"], ["abl_mu"] *)
  summary : string;
  run : Mode.t -> Ppdc_prelude.Table.t list;
}

val all : entry list
(** Every experiment, in the paper's order (worked example, then figures,
    then Table II and the ablations). *)

val find : string -> entry option
(** Lookup by id (case-insensitive). *)

val ids : unit -> string list
