(** PLAN [Cui et al., IEEE TPDS 2017] — policy-aware VM migration
    baseline.

    PLAN reduces dynamic traffic by migrating *VMs* (the VNF placement
    stays fixed): the utility of moving a VM is the reduction of its
    policy-preserving communication cost minus its migration cost, and
    VMs may only move to hosts with spare capacity. We implement the
    greedy scheme the paper compares against: repeatedly apply the
    highest positive-utility move until none remains (or [max_moves] is
    hit).

    Because one VM move only improves that flow's own attachment leg —
    whereas one VNF move improves every flow traversing the chain — PLAN
    needs many more migrations for less benefit, which is exactly the
    Fig. 11(a)/(b) comparison. *)

val migrate :
  Ppdc_core.Problem.t ->
  rates:float array ->
  mu_vm:float ->
  placement:Ppdc_core.Placement.t ->
  ?capacity:int ->
  ?max_moves:int ->
  unit ->
  Vm.outcome
(** [capacity] defaults to {!Vm.default_capacity}; [max_moves] defaults
    to the number of VMs. *)
