open Ppdc_core
module Graph = Ppdc_topology.Graph
module Mcf = Ppdc_mcf.Min_cost_flow

let migrate problem ~rates ~mu_vm ~placement ?capacity ?(candidate_limit = 64)
    () =
  Placement.validate problem placement;
  let capacity =
    match capacity with Some c -> c | None -> Vm.default_capacity problem
  in
  let vms = Vm.all problem in
  let hosts = Graph.hosts (Problem.graph problem) in
  let flows = Problem.flows problem in
  let num_vms = Array.length vms in
  let num_hosts = Array.length hosts in
  (* Node layout: 0 = source, 1..num_vms = VMs, then hosts, then sink. *)
  let host_node = Hashtbl.create num_hosts in
  Array.iteri (fun i h -> Hashtbl.add host_node h (1 + num_vms + i)) hosts;
  let sink = 1 + num_vms + num_hosts in
  let net = Mcf.create ~num_nodes:(sink + 1) in
  (* Supply arcs and per-VM host candidates. *)
  let vm_arcs =
    Array.mapi
      (fun i vm ->
        ignore (Mcf.add_arc net ~src:0 ~dst:(1 + i) ~capacity:1 ~cost:0.0);
        let from_host = Vm.host flows vm in
        let score to_host =
          Vm.comm_leg problem ~rates ~placement ~vm ~at:to_host
          +. (mu_vm *. Problem.cost problem from_host to_host)
        in
        let ranked =
          Array.to_list hosts
          |> List.map (fun h -> (score h, h))
          |> List.sort (fun (a, ha) (b, hb) ->
                 match Float.compare a b with
                 | 0 -> Int.compare ha hb
                 | c -> c)
        in
        let shortlist =
          let rec take k = function
            | [] -> []
            | _ when k = 0 -> []
            | x :: rest -> x :: take (k - 1) rest
          in
          take candidate_limit ranked
        in
        let shortlist =
          if List.exists (fun (_, h) -> h = from_host) shortlist then shortlist
          else (score from_host, from_host) :: shortlist
        in
        List.map
          (fun (cost, h) ->
            let arc =
              Mcf.add_arc net ~src:(1 + i) ~dst:(Hashtbl.find host_node h)
                ~capacity:1 ~cost
            in
            (arc, h))
          shortlist)
      vms
  in
  Array.iter
    (fun h ->
      ignore
        (Mcf.add_arc net ~src:(Hashtbl.find host_node h) ~dst:sink
           ~capacity ~cost:0.0))
    hosts;
  let result = Mcf.solve net ~source:0 ~sink in
  if result.flow <> num_vms then
    invalid_arg "Mcf_migration.migrate: could not place every VM (capacity too tight)";
  (* Read the assignment back. *)
  let new_flows = ref flows in
  let migrations = ref 0 in
  let migration_cost = ref 0.0 in
  Array.iteri
    (fun i vm ->
      let assigned =
        List.find_opt (fun (arc, _) -> Mcf.flow_on net arc = 1) vm_arcs.(i)
      in
      match assigned with
      | None -> assert false
      | Some (_, to_host) ->
          let from_host = Vm.host flows vm in
          if to_host <> from_host then begin
            new_flows := Vm.move !new_flows ~vm ~to_host;
            incr migrations;
            migration_cost :=
              !migration_cost +. (mu_vm *. Problem.cost problem from_host to_host)
          end)
    vms;
  let moved_problem = Problem.with_flows problem !new_flows in
  let comm_cost = Cost.comm_cost moved_problem ~rates placement in
  {
    Vm.flows = !new_flows;
    migrations = !migrations;
    migration_cost = !migration_cost;
    comm_cost;
    total_cost = !migration_cost +. comm_cost;
  }
