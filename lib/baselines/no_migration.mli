(** NoMigration — the do-nothing baseline of Fig. 11(c)/(d).

    Keeps the initial VNF placement for the PPDC's whole lifetime; the
    only cost is the communication cost of the stale placement under the
    current rates. The gap between this and mPareto is the paper's
    headline "up to 73% traffic reduction". *)

type outcome = { comm_cost : float; total_cost : float }

val evaluate :
  Ppdc_core.Problem.t ->
  rates:float array ->
  placement:Ppdc_core.Placement.t ->
  outcome
