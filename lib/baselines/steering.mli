(** Steering [Zhang et al., ICNP 2013] — VNF placement baseline.

    Steering repeatedly picks the service with the highest dependency
    degree (the traffic flowing between consecutive services of requested
    chains) and places it at its individually best location — the switch
    minimizing the average delay between the service and the VM traffic
    using it. The location choice is *chain-oblivious*: it never looks at
    where the neighbouring services of the chain landed. With a single
    SFC every dependency degree is equal, so services are processed in
    chain order and each is dropped at the best unused traffic-weighted
    median switch [argmin A_in(s) + A_out(s)]; the chain then zig-zags
    between those median switches, which is what Figs. 9/10 charge it
    for. *)

type outcome = { placement : Ppdc_core.Placement.t; cost : float }

val place : Ppdc_core.Problem.t -> rates:float array -> outcome
(** Greedy one-by-one placement; [cost] is the exact [C_a] (Eq. 1) of the
    result. *)
