(** Greedy [Liu et al., IEEE TSC 2017] — VNF placement baseline.

    Liu et al. sort middleboxes by importance factor (the number of
    policies that traverse them — identical for every VNF of a single
    SFC, so chain order is kept) and then place each at the switch with
    the minimum *cost score*: the increment of the total end-to-end delay
    caused by resting the middlebox there, plus the weighted average
    delay from there to the still-unplaced middleboxes. We realize the
    look-ahead term as [(#unplaced) · Λ · avg_s' c(s, s')]: the expected
    cost of the remaining chain hops if future VNFs land on an average
    switch. The look-ahead spreads placements more than Steering, but
    the score is still myopic about the actual future locations. *)

type outcome = { placement : Ppdc_core.Placement.t; cost : float }

val place : Ppdc_core.Problem.t -> rates:float array -> outcome
(** [cost] is the exact [C_a] (Eq. 1) of the greedy result. *)
