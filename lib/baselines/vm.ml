open Ppdc_core
module Flow = Ppdc_traffic.Flow
module Graph = Ppdc_topology.Graph

type endpoint = Src | Dst

type t = { flow : int; endpoint : endpoint }

let all problem =
  let l = Problem.num_flows problem in
  Array.init (2 * l) (fun i ->
      if i < l then { flow = i; endpoint = Src }
      else { flow = i - l; endpoint = Dst })

let host flows vm =
  let f = flows.(vm.flow) in
  match vm.endpoint with Src -> f.Flow.src_host | Dst -> f.Flow.dst_host

let comm_leg problem ~rates ~placement ~vm ~at =
  let n = Array.length placement in
  let rate = rates.(vm.flow) in
  match vm.endpoint with
  | Src -> rate *. Problem.cost problem at placement.(0)
  | Dst -> rate *. Problem.cost problem placement.(n - 1) at

let occupancy problem flows =
  let g = Problem.graph problem in
  let occ = Array.make (Graph.num_nodes g) 0 in
  Array.iter
    (fun (f : Flow.t) ->
      occ.(f.src_host) <- occ.(f.src_host) + 1;
      occ.(f.dst_host) <- occ.(f.dst_host) + 1)
    flows;
  occ

let default_capacity problem =
  let g = Problem.graph problem in
  let flows = Problem.flows problem in
  let vms = 2 * Array.length flows in
  let hosts = Graph.num_hosts g in
  let average = (vms + hosts - 1) / hosts in
  let occ = occupancy problem flows in
  let current_max = Array.fold_left max 0 occ in
  max (2 * average) current_max

let move flows ~vm ~to_host =
  let flows = Array.copy flows in
  let f = flows.(vm.flow) in
  flows.(vm.flow) <-
    (match vm.endpoint with
    | Src -> { f with Flow.src_host = to_host }
    | Dst -> { f with Flow.dst_host = to_host });
  flows

type outcome = {
  flows : Flow.t array;
  migrations : int;
  migration_cost : float;
  comm_cost : float;
  total_cost : float;
}
