(** MCF [Flores et al., INFOCOM 2020] — min-cost-flow VM migration
    baseline.

    Flores et al. observe that "minimize total VM communication +
    migration cost" with unit-size VMs and host slot capacities is a
    minimum-cost-flow problem: one unit of supply per VM, an arc to each
    candidate host costing that VM's attachment leg there plus its
    migration cost, and capacity arcs from hosts to the sink. We solve
    it with the {!Ppdc_mcf.Min_cost_flow} substrate; because the flow is
    integral, the solution is a globally cost-minimal reassignment of
    VMs to hosts — strictly stronger than PLAN's greedy, but still
    limited to moving VMs while the VNFs stay put.

    For large PPDCs each VM's arcs are restricted to its
    [candidate_limit] cheapest hosts (plus its current host); with the
    default of 64 this is lossless in practice since a cost-optimal
    assignment never uses a host that is dominated by dozens of closer
    ones, and keeps the network size linear in [l]. *)

val migrate :
  Ppdc_core.Problem.t ->
  rates:float array ->
  mu_vm:float ->
  placement:Ppdc_core.Placement.t ->
  ?capacity:int ->
  ?candidate_limit:int ->
  unit ->
  Vm.outcome
(** [capacity] defaults to {!Vm.default_capacity}; [candidate_limit] to
    64. *)
