(** Shared machinery for the VM-migration baselines (PLAN and MCF).

    Each flow contributes two VMs — its source and destination endpoint.
    With the VNF placement fixed at [p], a VM's contribution to [C_a] is
    the attachment leg it is responsible for: [λ_i·c(h, p(1))] for a
    source VM on host [h], [λ_i·c(p(n), h)] for a destination VM. Moving
    a VM between hosts costs [μ_vm·c(h, h')]. Hosts have a slot
    capacity; all VMs have unit size (paper model). *)

type endpoint = Src | Dst

type t = { flow : int;  (** flow id *) endpoint : endpoint }

val all : Ppdc_core.Problem.t -> t array
(** The [2l] VMs of the instance, sources first. *)

val host : Ppdc_traffic.Flow.t array -> t -> int
(** Current host of a VM. *)

val comm_leg :
  Ppdc_core.Problem.t -> rates:float array -> placement:Ppdc_core.Placement.t ->
  vm:t -> at:int -> float
(** The VM's attachment cost if it lived on host [at]. *)

val occupancy : Ppdc_core.Problem.t -> Ppdc_traffic.Flow.t array -> int array
(** VMs per host, indexed by node id (zero for switches). *)

val default_capacity : Ppdc_core.Problem.t -> int
(** Default host slot capacity: twice the average load, but at least the
    current maximum occupancy (so the initial state is always
    feasible). *)

val move : Ppdc_traffic.Flow.t array -> vm:t -> to_host:int -> Ppdc_traffic.Flow.t array
(** Fresh flow array with the VM rehosted. *)

type outcome = {
  flows : Ppdc_traffic.Flow.t array;  (** endpoints after the VM moves *)
  migrations : int;  (** number of VMs that moved *)
  migration_cost : float;  (** [μ_vm · Σ c(old, new)] *)
  comm_cost : float;  (** [C_a] with the new endpoints, placement fixed *)
  total_cost : float;  (** [migration_cost + comm_cost] *)
}
(** Common result type for both VM-migration baselines. *)
