open Ppdc_core

type outcome = { placement : Placement.t; cost : float }

(* Steering picks the service with the highest dependency degree and
   places it at its individually best location — the switch minimizing
   the average delay between the service and the VM traffic that uses
   it. Crucially, the location choice is *chain-oblivious*: it scores a
   switch by the flows' attachment delays only, never by where the
   neighbouring services of the chain ended up. With a single SFC all
   dependency degrees are equal, so services are processed in chain
   order, and every VNF gravitates to the same traffic-weighted median
   region of the fabric — on distinct switches — leaving the chain to
   zig-zag between them. That myopia is exactly what Figs. 9/10 charge
   it for. *)
let place problem ~rates =
  let att = Cost.attach problem ~rates in
  let switches = Problem.switches problem in
  let n = Problem.n problem in
  let used = Hashtbl.create n in
  let placement = Array.make n (-1) in
  for j = 0 to n - 1 do
    let best = ref infinity and best_switch = ref (-1) in
    Array.iter
      (fun s ->
        if not (Hashtbl.mem used s) then begin
          let average_delay = att.a_in.(s) +. att.a_out.(s) in
          if average_delay < !best then begin
            best := average_delay;
            best_switch := s
          end
        end)
      switches;
    placement.(j) <- !best_switch;
    Hashtbl.add used !best_switch ()
  done;
  { placement; cost = Cost.comm_cost_with_attach problem att placement }
