open Ppdc_core

type outcome = { comm_cost : float; total_cost : float }

let evaluate problem ~rates ~placement =
  Placement.validate problem placement;
  let comm_cost = Cost.comm_cost problem ~rates placement in
  { comm_cost; total_cost = comm_cost }
