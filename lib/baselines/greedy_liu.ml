open Ppdc_core

type outcome = { placement : Placement.t; cost : float }

let place problem ~rates =
  let att = Cost.attach problem ~rates in
  let switches = Problem.switches problem in
  let k = Array.length switches in
  let n = Problem.n problem in
  (* Average distance from each switch to all switches: the "weighted
     average delay of all unplaced MBs" proxy. *)
  let avg_dist = Array.make (Ppdc_topology.Graph.num_nodes (Problem.graph problem)) 0.0 in
  Array.iter
    (fun s ->
      let total =
        Array.fold_left (fun acc t -> acc +. Problem.cost problem s t) 0.0 switches
      in
      avg_dist.(s) <- total /. float_of_int k)
    switches;
  let used = Hashtbl.create n in
  let placement = Array.make n (-1) in
  for j = 0 to n - 1 do
    let unplaced_after = n - 1 - j in
    let best = ref infinity and best_switch = ref (-1) in
    Array.iter
      (fun s ->
        if not (Hashtbl.mem used s) then begin
          let direct =
            (if j = 0 then att.a_in.(s)
             else att.total_rate *. Problem.cost problem placement.(j - 1) s)
            +. if j = n - 1 then att.a_out.(s) else 0.0
          in
          let lookahead =
            float_of_int unplaced_after *. att.total_rate *. avg_dist.(s)
          in
          let score = direct +. lookahead in
          if score < !best then begin
            best := score;
            best_switch := s
          end
        end)
      switches;
    placement.(j) <- !best_switch;
    Hashtbl.add used !best_switch ()
  done;
  { placement; cost = Cost.comm_cost_with_attach problem att placement }
