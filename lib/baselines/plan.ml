open Ppdc_core
module Graph = Ppdc_topology.Graph

(* A VM's utility for a target host is independent of where other VMs sit
   (only its own attachment leg changes), so the "repeatedly apply the
   best positive-utility move" greedy reaches the same fixed point as:
   give each VM, in descending order of its best utility, the best
   still-feasible host. That is how we implement it — one O(l·|V_h|)
   scoring pass instead of one per move. *)
let migrate problem ~rates ~mu_vm ~placement ?capacity ?max_moves () =
  Placement.validate problem placement;
  (* A NaN rate would poison every utility and let the descending sort
     order candidates arbitrarily; fail loudly instead of migrating on
     garbage. *)
  Array.iteri
    (fun i r ->
      if Float.is_nan r then
        invalid_arg (Printf.sprintf "Plan.migrate: NaN rate for flow %d" i))
    rates;
  let capacity =
    match capacity with Some c -> c | None -> Vm.default_capacity problem
  in
  let vms = Vm.all problem in
  let max_moves = Option.value max_moves ~default:(Array.length vms) in
  let hosts = Graph.hosts (Problem.graph problem) in
  let flows = ref (Problem.flows problem) in
  let occ = Vm.occupancy problem !flows in
  (* Candidate list per VM: (utility, host), positive utilities only,
     best first. *)
  let candidates vm =
    let from_host = Vm.host !flows vm in
    let here = Vm.comm_leg problem ~rates ~placement ~vm ~at:from_host in
    let options = ref [] in
    Array.iter
      (fun to_host ->
        if to_host <> from_host then begin
          let there = Vm.comm_leg problem ~rates ~placement ~vm ~at:to_host in
          let utility =
            here -. there -. (mu_vm *. Problem.cost problem from_host to_host)
          in
          if utility > 1e-12 then options := (utility, to_host) :: !options
        end)
      hosts;
    List.sort (fun (a, _) (b, _) -> Float.compare b a) !options
  in
  let scored =
    Array.to_list vms
    |> List.filter_map (fun vm ->
           match candidates vm with
           | [] -> None
           | (u, _) :: _ as options -> Some (u, vm, options))
    |> List.sort (fun (a, _, _) (b, _, _) -> Float.compare b a)
  in
  let migration_cost = ref 0.0 in
  let migrations = ref 0 in
  List.iter
    (fun (_, vm, options) ->
      if !migrations < max_moves then begin
        let from_host = Vm.host !flows vm in
        match
          List.find_opt (fun (_, to_host) -> occ.(to_host) < capacity) options
        with
        | None -> ()
        | Some (_, to_host) ->
            flows := Vm.move !flows ~vm ~to_host;
            occ.(from_host) <- occ.(from_host) - 1;
            occ.(to_host) <- occ.(to_host) + 1;
            migration_cost :=
              !migration_cost +. (mu_vm *. Problem.cost problem from_host to_host);
            incr migrations
      end)
    scored;
  let moved_problem = Problem.with_flows problem !flows in
  let comm_cost = Cost.comm_cost moved_problem ~rates placement in
  {
    Vm.flows = !flows;
    migrations = !migrations;
    migration_cost = !migration_cost;
    comm_cost;
    total_cost = !migration_cost +. comm_cost;
  }
