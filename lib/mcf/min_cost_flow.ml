module Pqueue = Ppdc_prelude.Pqueue

(* Arcs are stored in one growable array; arc 2i and 2i+1 are a
   forward/residual pair (xor-pairing). *)
type t = {
  num_nodes : int;
  mutable arc_to : int array;
  mutable arc_cap : int array;
  mutable arc_cost : float array;
  mutable arc_count : int;
  head : int list array;  (* arc indices leaving each node *)
  mutable solved : bool;
}

type arc = int

let create ~num_nodes =
  if num_nodes <= 0 then invalid_arg "Min_cost_flow.create: need nodes";
  {
    num_nodes;
    arc_to = Array.make 16 0;
    arc_cap = Array.make 16 0;
    arc_cost = Array.make 16 0.0;
    arc_count = 0;
    head = Array.make num_nodes [];
    solved = false;
  }

let grow t =
  let capacity = Array.length t.arc_to in
  let extend arr zero =
    let fresh = Array.make (2 * capacity) zero in
    Array.blit arr 0 fresh 0 t.arc_count;
    fresh
  in
  t.arc_to <- extend t.arc_to 0;
  t.arc_cap <- extend t.arc_cap 0;
  t.arc_cost <- extend t.arc_cost 0.0

let push_raw t ~dst ~capacity ~cost =
  if t.arc_count = Array.length t.arc_to then grow t;
  let id = t.arc_count in
  t.arc_to.(id) <- dst;
  t.arc_cap.(id) <- capacity;
  t.arc_cost.(id) <- cost;
  t.arc_count <- t.arc_count + 1;
  id

let add_arc t ~src ~dst ~capacity ~cost =
  if t.solved then invalid_arg "Min_cost_flow.add_arc: network already solved";
  if src < 0 || src >= t.num_nodes || dst < 0 || dst >= t.num_nodes then
    invalid_arg "Min_cost_flow.add_arc: node out of range";
  if capacity < 0 then invalid_arg "Min_cost_flow.add_arc: negative capacity";
  if not (Float.is_finite cost) then
    invalid_arg "Min_cost_flow.add_arc: non-finite cost";
  let forward = push_raw t ~dst ~capacity ~cost in
  let _backward = push_raw t ~dst:src ~capacity:0 ~cost:(-.cost) in
  t.head.(src) <- forward :: t.head.(src);
  t.head.(dst) <- (forward lxor 1) :: t.head.(dst);
  forward

type result = { flow : int; cost : float }

(* Bellman-Ford over residual arcs to obtain initial potentials; detects
   negative cycles. *)
let initial_potentials t ~source =
  let dist = Array.make t.num_nodes infinity in
  dist.(source) <- 0.0;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed do
    changed := false;
    incr rounds;
    if !rounds > t.num_nodes then
      invalid_arg "Min_cost_flow.solve: negative-cost cycle";
    for u = 0 to t.num_nodes - 1 do
      if dist.(u) < infinity then
        List.iter
          (fun a ->
            if t.arc_cap.(a) > 0 then begin
              let v = t.arc_to.(a) in
              let candidate = dist.(u) +. t.arc_cost.(a) in
              if candidate < dist.(v) -. 1e-12 then begin
                dist.(v) <- candidate;
                changed := true
              end
            end)
          t.head.(u)
    done
  done;
  (* Keep [infinity] for nodes unreachable from [source]. The former
     mapping to 0.0 manufactured a fake finite potential: an arc from an
     unreachable region into the reachable one then got reduced cost
     [cost + 0.0 - potential.(v)], which can be negative — violating the
     invariant Dijkstra-with-potentials rests on. Reachability from the
     source is monotone under augmentation (pushing flow only adds
     residual arcs between already-reachable nodes), so an unreachable
     node can never lie on an augmenting path and needs no potential at
     all. *)
  dist

let solve ?(max_flow = max_int) t ~source ~sink =
  if t.solved then invalid_arg "Min_cost_flow.solve: already solved";
  if source < 0 || source >= t.num_nodes || sink < 0 || sink >= t.num_nodes
  then invalid_arg "Min_cost_flow.solve: node out of range";
  t.solved <- true;
  if source = sink then { flow = 0; cost = 0.0 }
  else begin
    let potential = initial_potentials t ~source in
    (* Freeze adjacency into flat arrays: the augmentation loop below
       re-scans it thousands of times, and int arrays beat boxed lists by
       a large constant. *)
    let head = Array.map Array.of_list t.head in
    let total_flow = ref 0 and total_cost = ref 0.0 in
    let dist = Array.make t.num_nodes infinity in
    let pred_arc = Array.make t.num_nodes (-1) in
    let settled = Array.make t.num_nodes false in
    let continue = ref true in
    while !continue && !total_flow < max_flow do
      (* Dijkstra on reduced costs, stopping once the sink is settled —
         nodes beyond it cannot lie on the cheapest augmenting path. *)
      Array.fill dist 0 t.num_nodes infinity;
      Array.fill pred_arc 0 t.num_nodes (-1);
      Array.fill settled 0 t.num_nodes false;
      dist.(source) <- 0.0;
      let queue = Pqueue.create () in
      Pqueue.push queue 0.0 source;
      let rec drain () =
        match Pqueue.pop_min queue with
        | None -> ()
        | Some (d, u) ->
            if not settled.(u) then begin
              settled.(u) <- true;
              if u <> sink then begin
                let arcs = head.(u) in
                for i = 0 to Array.length arcs - 1 do
                  let a = arcs.(i) in
                  if t.arc_cap.(a) > 0 then begin
                    let v = t.arc_to.(a) in
                    (* An infinite potential marks a node unreachable
                       from the source; no augmenting path can use it,
                       and relaxing through it would turn the reduced
                       cost into -infinity/NaN. *)
                    if Float.is_finite potential.(v) then begin
                      let reduced =
                        t.arc_cost.(a) +. potential.(u) -. potential.(v)
                      in
                      let candidate = d +. Float.max 0.0 reduced in
                      if candidate < dist.(v) then begin
                        dist.(v) <- candidate;
                        pred_arc.(v) <- a;
                        Pqueue.push queue candidate v
                      end
                    end
                  end
                done
              end
            end;
            if not settled.(sink) then drain ()
      in
      drain ();
      if Float.equal dist.(sink) infinity then continue := false
      else begin
        (* Partial potential update: settled nodes advance by their own
           distance, everything else by the sink's — this keeps reduced
           costs non-negative without finishing the Dijkstra. *)
        let d_sink = dist.(sink) in
        for v = 0 to t.num_nodes - 1 do
          if Float.is_finite potential.(v) then
            potential.(v) <- potential.(v) +. Float.min dist.(v) d_sink
        done;
        (* Bottleneck along the augmenting path. *)
        let bottleneck = ref (max_flow - !total_flow) in
        let v = ref sink in
        while !v <> source do
          let a = pred_arc.(!v) in
          bottleneck := min !bottleneck t.arc_cap.(a);
          v := t.arc_to.(a lxor 1)
        done;
        let v = ref sink in
        while !v <> source do
          let a = pred_arc.(!v) in
          t.arc_cap.(a) <- t.arc_cap.(a) - !bottleneck;
          t.arc_cap.(a lxor 1) <- t.arc_cap.(a lxor 1) + !bottleneck;
          total_cost := !total_cost +. (float_of_int !bottleneck *. t.arc_cost.(a));
          v := t.arc_to.(a lxor 1)
        done;
        total_flow := !total_flow + !bottleneck
      end
    done;
    { flow = !total_flow; cost = !total_cost }
  end

let flow_on t a =
  (* Flow on a forward arc equals the residual capacity of its pair. *)
  t.arc_cap.(a lxor 1)
