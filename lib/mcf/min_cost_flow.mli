(** Minimum-cost flow solver.

    Substrate for the MCF VM-migration baseline of Flores et al. [24],
    which casts "minimize total VM communication + migration cost" as a
    min-cost-flow problem. The solver is successive shortest augmenting
    paths with Johnson node potentials: Bellman–Ford initializes the
    potentials (so negative arc costs are accepted as long as there is no
    negative cycle), then each augmentation runs Dijkstra on reduced
    costs. Capacities are integers; costs are floats.

    Complexity: O(F · m log n) for total flow F. The baseline's instances
    are small bipartite assignment networks, far below this bound. *)

type t

type arc
(** Handle to an arc, for querying its final flow. *)

val create : num_nodes:int -> t
(** A network on nodes [0 .. num_nodes - 1] with no arcs. *)

val add_arc : t -> src:int -> dst:int -> capacity:int -> cost:float -> arc
(** Add a directed arc. Raises [Invalid_argument] on out-of-range nodes,
    negative capacity, or a non-finite cost. Arcs may be added only
    before [solve]. *)

type result = {
  flow : int;  (** total flow pushed from source to sink *)
  cost : float;  (** Σ over arcs of flow · cost *)
}

val initial_potentials : t -> source:int -> float array
[@@ppdc.sentinel
  "infinity marks a node unreachable from the source; such nodes can \
   never lie on an augmenting path (reachability is monotone under \
   augmentation) and must not receive a fabricated finite potential"]
(** Johnson node potentials from one Bellman–Ford pass over the residual
    network: entry [v] is the cheapest cost from [source] to [v], or
    [infinity] when [v] is unreachable. Exposed for testing the
    potential invariant (every capacitated arc between reachable nodes
    has non-negative reduced cost); [solve] calls it internally. Raises
    [Invalid_argument] on a negative-cost cycle reachable from
    [source]. *)

val solve : ?max_flow:int -> t -> source:int -> sink:int -> result
(** Push up to [max_flow] units (default: as much as possible) along
    successively cheapest paths. May be called once per network. Raises
    [Invalid_argument] if called twice, on a bad node, or if the network
    contains a negative-cost cycle reachable from [source]. *)

val flow_on : t -> arc -> int
(** Flow routed on an arc after [solve]. *)
