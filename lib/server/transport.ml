let default_max_line = 1 lsl 20

type read = Line of string | Overlong | Eof

(* Bounded line reader. On overflow the rest of the line is drained so
   the stream resynchronizes at the next newline — one oversized
   request costs one error response, not the connection. *)
let read_line_bounded ic ~max_line =
  let buffer = Buffer.create 256 in
  let rec go overflow =
    match input_char ic with
    | '\n' -> if overflow then Overlong else Line (Buffer.contents buffer)
    | c ->
        if Buffer.length buffer >= max_line then go true
        else begin
          Buffer.add_char buffer c;
          go overflow
        end
    | exception End_of_file ->
        if Buffer.length buffer = 0 then Eof
        else if overflow then Overlong
        else Line (Buffer.contents buffer)
  in
  go false

let serve_channel ?(max_line = default_max_line) engine ic oc =
  let respond line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    if not (Engine.stopped engine) then
      match read_line_bounded ic ~max_line with
      | Eof -> ()
      | Overlong ->
          respond Engine.overlong_response;
          loop ()
      | Line l when String.trim l = "" -> loop ()
      | Line l ->
          respond (Engine.handle_line engine l);
          loop ()
  in
  loop ()

let serve_stdio ?max_line engine = serve_channel ?max_line engine stdin stdout

let remove_stale_socket path =
  if Sys.file_exists path then begin
    match (Unix.lstat path).Unix.st_kind with
    | Unix.S_SOCK -> Unix.unlink path
    | _ ->
        invalid_arg
          (Printf.sprintf
             "Transport.serve_unix: %s exists and is not a socket" path)
  end

let serve_unix ?max_line ~path engine =
  (* A client closing mid-response must surface as EPIPE on this
     connection, not as a fatal SIGPIPE for the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  remove_stale_socket path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 16;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    (fun () ->
      while not (Engine.stopped engine) do
        let fd, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        (* Errors here mean this client died; the daemon carries on. *)
        (try serve_channel ?max_line engine ic oc
         with Sys_error _ | Unix.Unix_error _ | End_of_file -> ());
        (try flush oc with Sys_error _ -> ());
        (* The two channels share [fd]; closing the input side closes
           the descriptor. *)
        try close_in ic with Sys_error _ -> ()
      done)

let call ~path requests =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_UNIX path);
      let ic = Unix.in_channel_of_descr sock in
      let oc = Unix.out_channel_of_descr sock in
      List.map
        (fun req ->
          output_string oc req;
          output_char oc '\n';
          flush oc;
          match input_line ic with
          | line -> line
          | exception End_of_file ->
              failwith "Transport.call: server closed the connection")
        requests)
