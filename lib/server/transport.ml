module Clock = Ppdc_prelude.Clock
module Obs = Ppdc_prelude.Obs
module Parallel = Ppdc_prelude.Parallel
module Work_queue = Ppdc_prelude.Work_queue

let default_max_line = 1 lsl 20
let default_max_pending = 64

type read = Line of string | Overlong | Eof

(* Bounded line reader. On overflow the rest of the line is drained so
   the stream resynchronizes at the next newline — one oversized
   request costs one error response, not the connection. *)
let read_line_bounded ic ~max_line =
  let buffer = Buffer.create 256 in
  let rec go overflow =
    match input_char ic with
    | '\n' -> if overflow then Overlong else Line (Buffer.contents buffer)
    | c ->
        if Buffer.length buffer >= max_line then go true
        else begin
          Buffer.add_char buffer c;
          go overflow
        end
    | exception End_of_file ->
        if Buffer.length buffer = 0 then Eof
        else if overflow then Overlong
        else Line (Buffer.contents buffer)
  in
  go false

let serve_channel ?(max_line = default_max_line) ?request_timeout
    ?first_arrival engine ic oc =
  (* Deadline for the connection's first request, and only when the
     worker picked the connection up after the budget already ran out
     in the accept queue. Evaluated here — at pickup — so a client
     that connects promptly but sends its first line late is not
     penalized for its own idling. Subsequent requests start their
     budget when their line is read, which a lock-step worker does
     immediately before dispatch, so the deadline is pure admission
     control against queueing delay (Engine.handle_line's contract). *)
  let first_deadline =
    match (request_timeout, first_arrival) with
    | Some rt, Some t0 ->
        let d = t0 +. rt in
        if Float.compare (Clock.now ()) d > 0 then Some d else None
    | _ -> None
  in
  let first = ref true in
  let respond line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    if not (Engine.stopped engine) then
      match read_line_bounded ic ~max_line with
      | Eof -> ()
      | Overlong ->
          respond Engine.overlong_response;
          loop ()
      | Line l when String.trim l = "" -> loop ()
      | Line l ->
          let deadline =
            if !first then first_deadline
            else
              Option.map (fun rt -> Clock.now () +. rt) request_timeout
          in
          first := false;
          respond (Engine.handle_line ?deadline engine l);
          loop ()
  in
  loop ()

let serve_stdio ?max_line engine = serve_channel ?max_line engine stdin stdout

let remove_stale_socket path =
  if Sys.file_exists path then begin
    match (Unix.lstat path).Unix.st_kind with
    | Unix.S_SOCK -> Unix.unlink path
    | _ ->
        invalid_arg
          (Printf.sprintf
             "Transport.serve_unix: %s exists and is not a socket" path)
  end

(* Answer a rejected connection with the canned overloaded line, best
   effort: the client may already be gone, which changes nothing. *)
let reject_connection fd =
  let line = Engine.overloaded_response ^ "\n" in
  (try ignore (Unix.write_substring fd line 0 (String.length line))
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve_unix ?max_line ?workers ?(max_pending = default_max_pending)
    ?request_timeout ?on_ready ~path engine =
  (* A client closing mid-response must surface as EPIPE on this
     connection, not as a fatal SIGPIPE for the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  remove_stale_socket path;
  let workers =
    match workers with Some w -> w | None -> Parallel.domain_count ()
  in
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let active = Atomic.make 0 in
  let rejected = Atomic.make 0 in
  (* Everything past socket creation — bind, listen, pool setup, the
     accept loop — runs inside one protect, so the socket file is
     removed however this function exits, normal return or exception. *)
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 64;
      let serve_connection (fd, accepted_at) =
        Atomic.incr active;
        Fun.protect
          ~finally:(fun () ->
            Atomic.decr active;
            try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            let ic = Unix.in_channel_of_descr fd in
            let oc = Unix.out_channel_of_descr fd in
            (* Errors here mean this client died; the daemon carries on. *)
            (try
               serve_channel ?max_line ?request_timeout
                 ~first_arrival:accepted_at engine ic oc
             with Sys_error _ | Unix.Unix_error _ | End_of_file -> ());
            try flush oc with Sys_error _ -> ())
      in
      let queue = Work_queue.create ~workers ~max_pending serve_connection in
      Engine.set_load_probe engine (fun () ->
          {
            Engine.workers;
            active_connections = Atomic.get active;
            queue_depth = Work_queue.depth queue;
            rejected_connections = Atomic.get rejected;
          });
      (* Graceful shutdown: stop accepting the moment the engine stops,
         then drain — the queue runs every accepted connection, whose
         serve loop answers its in-flight request and exits on the next
         read because the engine is stopped. *)
      Fun.protect
        ~finally:(fun () -> Work_queue.shutdown queue)
        (fun () ->
          (match on_ready with Some f -> f () | None -> ());
          while not (Engine.stopped engine) do
            (* Short poll so a shutdown answered by a worker stops this
               loop within a tick even when no client ever connects
               again. *)
            match Unix.select [ sock ] [] [] 0.05 with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | [], _, _ -> ()
            | _ :: _, _, _ -> (
                let fd, _ = Unix.accept sock in
                Obs.observe "server.queue.depth"
                  (float_of_int (Work_queue.depth queue));
                Obs.observe "server.connections.active"
                  (float_of_int (Atomic.get active));
                match Work_queue.push queue (fd, Clock.now ()) with
                | Work_queue.Accepted -> ()
                | Work_queue.Overloaded | Work_queue.Stopped ->
                    Atomic.incr rejected;
                    Obs.incr "server.rejected";
                    reject_connection fd)
          done))

let call ?timeout ~path requests =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_UNIX path);
      let send line =
        let data = line ^ "\n" in
        let len = String.length data in
        let off = ref 0 in
        while !off < len do
          off := !off + Unix.write_substring sock data !off (len - !off)
        done
      in
      (* Buffered line reader over the raw descriptor: [Unix.select]
         enforces the per-response deadline, which a blocking
         [input_line] cannot. Bytes past the first newline stay in
         [buf] for the next response. *)
      let buf = Buffer.create 256 in
      let chunk = Bytes.create 4096 in
      let line_from_buffer () =
        let s = Buffer.contents buf in
        match String.index_opt s '\n' with
        | None -> None
        | Some i ->
            Buffer.clear buf;
            Buffer.add_substring buf s (i + 1) (String.length s - i - 1);
            Some (String.sub s 0 i)
      in
      let fill () =
        let n = Unix.read sock chunk 0 (Bytes.length chunk) in
        if n = 0 then failwith "Transport.call: server closed the connection";
        Buffer.add_subbytes buf chunk 0 n
      in
      let timeout_fail rt =
        failwith
          (Printf.sprintf
             "Transport.call: timed out after %gs waiting for a response" rt)
      in
      let rec read_line deadline =
        match line_from_buffer () with
        | Some l -> l
        | None -> (
            match (deadline, timeout) with
            | Some d, Some rt -> (
                let remaining = d -. Clock.now () in
                if Float.compare remaining 0.0 <= 0 then timeout_fail rt;
                match Unix.select [ sock ] [] [] remaining with
                | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                    read_line deadline
                | [], _, _ -> timeout_fail rt
                | _ :: _, _, _ ->
                    fill ();
                    read_line deadline)
            | _ ->
                fill ();
                read_line deadline)
      in
      List.map
        (fun req ->
          send req;
          let deadline =
            Option.map (fun rt -> Clock.now () +. rt) timeout
          in
          read_line deadline)
        requests)
