(** Sharded, tenant-aware session store with LRU budgets.

    The engine's replacement for its former single mutex-guarded
    session table (DESIGN.md §4j). A key (session name) is mapped to a
    shard by a {e stable} FNV-1a hash masked to a power-of-two shard
    count, so two requests for different sessions contend only when
    their names hash to the same shard. Each shard is guarded by its
    own mutex (lock class ["shard"], the outermost class in the
    engine's declared order); no operation ever holds two shard locks
    at once.

    {b Tenancy.} The tenant of a session is the name prefix before the
    first ['-'] ({!tenant_of}; a name without ['-'] is its own
    tenant). Per-tenant counters (live sessions, bytes, in-flight
    requests) live in the tenant's {e home shard} — the shard its
    tenant id hashes to — regardless of where its sessions land.

    {b Budgets and eviction.} [put] enforces, in order: the tenant's
    session-count cap, the tenant's byte budget, then the global
    session budget — each by evicting least-recently-used entries.
    Recency is a single global atomic logical clock (bumped on every
    create/touch), which totally orders entries {e across} shards:
    for a sequential workload the eviction victims are identical for
    every shard count, the invariant the model-based test replays.
    The entry just created is never its own victim. Evicted names are
    remembered in a bounded per-shard tombstone set so a later {!find}
    answers {!Was_evicted} (→ the wire's [session_evicted]) rather
    than {!Unknown} (→ [unknown_session]); re-creating the name clears
    its tombstone.

    {b Thread safety.} Every operation may be called from any domain.
    Eviction under concurrent touches is phased (scan one shard at a
    time, then re-check the victim's stamp under its own lock) and
    retries a bounded number of times, so a victim that was touched
    meanwhile is simply no longer the victim. *)

type 'v t

type reason =
  | Budget  (** global session budget exceeded *)
  | Tenant_sessions  (** the owning tenant's session-count cap *)
  | Tenant_bytes  (** the owning tenant's byte budget *)

val reason_slug : reason -> string
(** Stable wire name: ["budget"], ["tenant_sessions"], ["tenant_bytes"]. *)

type eviction = { victim : string; victim_tenant : string; reason : reason }
type put_outcome = { replaced : bool; evicted : eviction list }

type 'v find_result =
  | Found of 'v
  | Was_evicted  (** the name existed and was reclaimed by a budget *)
  | Unknown

type limits = {
  session_budget : int option;
  tenant_sessions : int option;
  tenant_bytes : int option;
  tenant_inflight : int option;
}

val create :
  ?shards:int ->
  ?session_budget:int ->
  ?tenant_sessions:int ->
  ?tenant_bytes:int ->
  ?tenant_inflight:int ->
  ?tombstone_cap:int ->
  unit ->
  'v t
(** [shards] (default {!Ppdc_prelude.Parallel.domain_count}[ ()]) is
    rounded up to a power of two. Omitted budgets are unlimited.
    [tombstone_cap] (default 1024) bounds each shard's evicted-name
    memory; 0 disables tombstones (evicted names answer {!Unknown}).
    Raises [Invalid_argument] on a non-positive count or budget. *)

val tenant_of : string -> string
(** Name prefix before the first ['-']; the whole name when absent. *)

val shard_count : 'v t -> int
val shard_id : 'v t -> string -> int
(** Stable shard of a name (machine- and run-independent). *)

val put : 'v t -> name:string -> bytes:int -> 'v -> put_outcome
(** Insert or replace, then enforce budgets. [bytes] is the caller's
    size estimate, charged to the tenant. The outcome lists every
    entry evicted to make room, oldest first. *)

val find : 'v t -> string -> 'v find_result
(** Lookup; a hit refreshes the entry's recency. *)

val evict : 'v t -> string -> bool
(** Explicit removal (tombstoned like a budget eviction, but not
    counted in {!counters}); [false] when the name is absent. *)

val length : 'v t -> int
(** Live entries across all shards. *)

val shard_sizes : 'v t -> int array

val fold :
  'v t -> init:'a -> f:('a -> name:string -> tenant:string -> 'v -> 'a) -> 'a
(** Snapshot fold over live entries, one shard lock at a time, in
    unspecified order. *)

val enter_tenant : 'v t -> string -> bool
(** Per-tenant in-flight admission: [false] (and a fairness-rejection
    count) when the tenant already has [tenant_inflight] requests
    executing. Always [true] when no cap was configured. *)

val exit_tenant : 'v t -> string -> unit
(** Release one in-flight slot taken by {!enter_tenant}. *)

type counters = {
  evicted_budget : int;
  evicted_tenant_sessions : int;
  evicted_tenant_bytes : int;
  fairness_rejections : int;
}

val counters : 'v t -> counters
val limits : 'v t -> limits

val set_test_hook : 'v t -> (string -> unit) option -> unit
(** Test-only: [f name] runs inside the shard critical section of
    every {!put}, so a test can block a shard and prove creates on
    distinct shards proceed concurrently. *)
