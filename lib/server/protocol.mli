(** The [ppdc.rpc/1] wire protocol.

    Line-delimited JSON: each request is one JSON object on one line,
    each response is exactly one JSON object on one line, in request
    order. A request is

    {v {"id": <any json>, "method": "<name>", "params": { ... }} v}

    ([id] is echoed verbatim in the response and otherwise
    uninterpreted; [params] defaults to [{}]). A response is either

    {v {"id": <echo>, "ok": true, "result": { ... }} v}

    or

    {v {"id": <echo>, "ok": false,
        "error": {"code": "<slug>", "message": "<text>"}} v}

    When a request cannot be parsed at all (malformed JSON, not an
    object, oversized line) the error response carries [id: null] —
    there is nothing trustworthy to echo. Malformed input never
    terminates the connection or the server; the stream resynchronizes
    at the next newline. *)

type error_code =
  | Parse_error  (** the line is not valid JSON *)
  | Invalid_request  (** valid JSON but not a request object *)
  | Line_too_long  (** request line exceeded the transport bound *)
  | Unknown_method
  | Unknown_session  (** the named session does not exist *)
  | Session_evicted
      (** the named session existed but was evicted by the per-tenant
          or global session budget; the client must [load_topology]
          again (distinct from [Unknown_session] so a well-behaved
          client can tell "typo" from "reclaimed") *)
  | Invalid_params  (** missing/ill-typed parameter, infeasible value *)
  | Overloaded
      (** worker pool and pending queue full — the connection was
          rejected at accept time; retry later *)
  | Deadline_exceeded
      (** the request could not start within [--request-timeout] of its
          arrival (it spent the whole budget queued) *)
  | Internal_error  (** handler raised; the message carries details *)

val code_slug : error_code -> string
(** Stable wire name, e.g. [Parse_error] -> ["parse_error"]. *)

type request = {
  id : Ppdc_prelude.Json.t;  (** [Null] when absent *)
  meth : string;
  params : Ppdc_prelude.Json.t;  (** [Obj []] when absent *)
}

val request_of_line : string -> (request, error_code * string) result
(** Parse one request line. [Error] covers malformed JSON
    ([Parse_error]) and structurally invalid requests
    ([Invalid_request]); the caller answers those with
    {!error_response} [~id:Null]. *)

val ok_response : id:Ppdc_prelude.Json.t -> Ppdc_prelude.Json.t -> string
(** Render a success line (no trailing newline). *)

val error_response :
  id:Ppdc_prelude.Json.t -> error_code -> string -> string
(** Render an error line (no trailing newline). *)

(** {1 Typed parameter extraction}

    Helpers for handlers; each raises {!Bad_params} with a
    human-readable message when the field is present but ill-typed,
    out of range, or (for the [req_*] variants) missing. *)

exception Bad_params of string

val str_param : Ppdc_prelude.Json.t -> string -> string option
val req_str_param : Ppdc_prelude.Json.t -> string -> string

val int_param : Ppdc_prelude.Json.t -> string -> int option
(** Accepts only integral [Num]s. *)

val float_param : Ppdc_prelude.Json.t -> string -> float option
val bool_param : Ppdc_prelude.Json.t -> string -> bool option

val float_list_param : Ppdc_prelude.Json.t -> string -> float array option
(** A [List] of [Num]s. *)
