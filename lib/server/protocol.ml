module Json = Ppdc_prelude.Json

type error_code =
  | Parse_error
  | Invalid_request
  | Line_too_long
  | Unknown_method
  | Unknown_session
  | Session_evicted
  | Invalid_params
  | Overloaded
  | Deadline_exceeded
  | Internal_error

let code_slug = function
  | Parse_error -> "parse_error"
  | Invalid_request -> "invalid_request"
  | Line_too_long -> "line_too_long"
  | Unknown_method -> "unknown_method"
  | Unknown_session -> "unknown_session"
  | Session_evicted -> "session_evicted"
  | Invalid_params -> "invalid_params"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Internal_error -> "internal_error"

type request = { id : Json.t; meth : string; params : Json.t }

let request_of_line line =
  match Json.parse line with
  | exception Failure msg -> Error (Parse_error, msg)
  | Obj _ as json -> (
      let id = Option.value ~default:Json.Null (Json.member "id" json) in
      match Json.member "method" json with
      | Some (Str meth) -> (
          match Json.member "params" json with
          | None -> Ok { id; meth; params = Json.Obj [] }
          | Some (Obj _ as params) -> Ok { id; meth; params }
          | Some _ -> Error (Invalid_request, "\"params\" must be an object"))
      | Some _ -> Error (Invalid_request, "\"method\" must be a string")
      | None -> Error (Invalid_request, "missing \"method\""))
  | _ -> Error (Invalid_request, "request must be a JSON object")

let ok_response ~id result =
  Json.to_string
    (Obj [ ("id", id); ("ok", Bool true); ("result", result) ])

let error_response ~id code message =
  Json.to_string
    (Obj
       [
         ("id", id);
         ("ok", Bool false);
         ( "error",
           Obj
             [
               ("code", Str (code_slug code)); ("message", Str message);
             ] );
       ])

(* --- typed parameter extraction ----------------------------------------- *)

exception Bad_params of string

let bad fmt = Printf.ksprintf (fun msg -> raise (Bad_params msg)) fmt

let str_param params key =
  match Json.member key params with
  | None | Some Null -> None
  | Some (Str s) -> Some s
  | Some _ -> bad "parameter %S must be a string" key

let req_str_param params key =
  match str_param params key with
  | Some s -> s
  | None -> bad "missing required parameter %S" key

let int_param params key =
  match Json.member key params with
  | None | Some Null -> None
  | Some (Num n) when Float.is_integer n && Float.abs n <= 1e15 ->
      Some (int_of_float n)
  | Some _ -> bad "parameter %S must be an integer" key

let float_param params key =
  match Json.member key params with
  | None | Some Null -> None
  | Some (Num n) -> Some n
  | Some _ -> bad "parameter %S must be a number" key

let bool_param params key =
  match Json.member key params with
  | None | Some Null -> None
  | Some (Bool b) -> Some b
  | Some _ -> bad "parameter %S must be a boolean" key

let float_list_param params key =
  match Json.member key params with
  | None | Some Null -> None
  | Some (List elts) ->
      Some
        (Array.of_list
           (List.map
              (function
                | Json.Num n -> n
                | _ -> bad "parameter %S must be an array of numbers" key)
              elts))
  | Some _ -> bad "parameter %S must be an array of numbers" key
