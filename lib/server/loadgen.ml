(* Open-loop load generator for the ppdc daemon (DESIGN.md §4j).

   Arrivals follow a Poisson process at a fixed rate, independent of
   how fast the daemon answers — the defining property of an open-loop
   driver: when the server slows down, requests queue and the measured
   latency includes that queueing, instead of the generator politely
   backing off and hiding the regression (closed-loop coordination
   omission).

   Each of [tenants] tenants owns [sessions] sessions named
   "t<i>-s<j>" (so {!Registry.tenant_of} groups them) and
   [connections] sockets to the daemon. A session is pinned to one of
   its tenant's connections (session index mod connections): the
   server answers each connection's lines in order, so pinning keeps
   one session's requests strictly ordered — its place can never be
   served before its load_topology — and an in-flight FIFO per
   connection matches responses to requests without ids doing double
   duty. Note the daemon dedicates a worker to a connection for its
   lifetime, so the fleet needs [tenants × connections ≤ workers] to
   be fully served.

   Per-session workload is a tiny state machine: a session that is not
   loaded issues [load_topology]; one that is loaded but never placed
   issues [place]; a placed session draws [place]/[migrate]/
   [rates_update] at weights 2/2/1. A [session_evicted] answer flips
   the session back to not-loaded — the client-side recovery the
   protocol documents — so eviction shows up as extra load_topology
   traffic, not as a stuck generator. *)

module Json = Ppdc_prelude.Json
module Rng = Ppdc_prelude.Rng
module Clock = Ppdc_prelude.Clock
module Stats = Ppdc_prelude.Stats

type config = {
  path : string;
  rate : float;  (* arrivals per second, whole fleet *)
  requests : int;
  tenants : int;
  sessions : int;  (* per tenant *)
  connections : int;  (* per tenant *)
  seed : int;
  k : int;
  l : int;
  n : int;
  timeout : float;  (* wall-clock cap on the whole run, seconds *)
}

let default_config =
  {
    path = "/tmp/ppdc.sock";
    rate = 200.;
    requests = 1000;
    tenants = 4;
    sessions = 4;
    connections = 2;
    seed = 1;
    k = 4;
    l = 6;
    n = 3;
    timeout = 60.;
  }

type outcome = {
  sent : int;
  completed : int;
  ok : int;
  evicted : int;  (* session_evicted answers *)
  overloaded : int;
  deadline : int;
  other_errors : int;
  duration_s : float;
  throughput : float;  (* completed / duration *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

type session_state = Unloaded | Loaded | Placed

type inflight = {
  if_tenant : int;
  if_session : int;
  if_arrival : float;  (* scheduled arrival on the Clock.now timebase *)
}

type conn = {
  fd : Unix.file_descr;
  mutable rbuf : string;  (* bytes read but not yet newline-framed *)
  fifo : inflight Queue.t;
}

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     Unix.close fd;
     raise e);
  fd

(* The sockets are non-blocking for the read side; a full send buffer
   (daemon busy, many pipelined lines) surfaces as EAGAIN here, where
   we briefly block on writability — arrivals already fired stay
   charged to their scheduled time, so this pause costs accuracy
   nothing. *)
let write_line fd line =
  let msg = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length msg in
  let off = ref 0 in
  while !off < len do
    match Unix.write fd msg !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        ignore (Unix.select [] [ fd ] [] 1.0)
  done

(* One request for [session], advancing its state machine. The seed
   makes a given (tenant, session) load the same topology every time,
   so a reload after eviction is a cache-warm load_topology. *)
let next_request cfg rng states ~tenant ~session ~id =
  let name = Printf.sprintf "t%d-s%d" tenant session in
  match states.(tenant).(session) with
  | Unloaded ->
      states.(tenant).(session) <- Loaded;
      Printf.sprintf
        {|{"id":%d,"method":"load_topology","params":{"session":%S,"k":%d,"l":%d,"n":%d,"seed":%d}}|}
        id name cfg.k cfg.l cfg.n
        (cfg.seed + (tenant * 1009) + session)
  | Loaded ->
      states.(tenant).(session) <- Placed;
      Printf.sprintf {|{"id":%d,"method":"place","params":{"session":%S}}|} id
        name
  | Placed -> (
      match Rng.int rng 5 with
      | 0 | 1 ->
          Printf.sprintf {|{"id":%d,"method":"place","params":{"session":%S}}|}
            id name
      | 2 | 3 ->
          Printf.sprintf
            {|{"id":%d,"method":"migrate","params":{"session":%S,"mu":100}}|}
            id name
      | _ ->
          Printf.sprintf
            {|{"id":%d,"method":"rates_update","params":{"session":%S,"seed":%d}}|}
            id name (id land 0xffff))

type tally = {
  mutable t_completed : int;
  mutable t_ok : int;
  mutable t_evicted : int;
  mutable t_overloaded : int;
  mutable t_deadline : int;
  mutable t_other : int;
  mutable latencies : float list;  (* seconds *)
}

let absorb_response tally states now req line =
  tally.t_completed <- tally.t_completed + 1;
  tally.latencies <- (now -. req.if_arrival) :: tally.latencies;
  let j = try Json.parse line with Failure _ -> Json.Null in
  match Json.member "ok" j with
  | Some (Json.Bool true) -> tally.t_ok <- tally.t_ok + 1
  | _ -> (
      let code =
        match Json.member "error" j with
        | Some err -> (
            match Json.member "code" err with
            | Some (Json.Str c) -> c
            | _ -> "?")
        | None -> "?"
      in
      match code with
      | "session_evicted" | "unknown_session" ->
          (* unknown_session can only mean our load_topology itself was
             rejected earlier; either way the recovery is a reload. *)
          tally.t_evicted <- tally.t_evicted + 1;
          states.(req.if_tenant).(req.if_session) <- Unloaded
      | "overloaded" -> tally.t_overloaded <- tally.t_overloaded + 1
      | "deadline_exceeded" -> tally.t_deadline <- tally.t_deadline + 1
      | _ -> tally.t_other <- tally.t_other + 1)

(* Drain every complete line currently buffered on [c]. *)
let drain_conn tally states c now =
  let chunk = Bytes.create 65536 in
  let read_once () =
    match Unix.read c.fd chunk 0 (Bytes.length chunk) with
    | 0 -> failwith "loadgen: daemon closed the connection"
    | n ->
        c.rbuf <- c.rbuf ^ Bytes.sub_string chunk 0 n;
        (* Only the bytes already delivered; do not block for more. *)
        ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
  in
  read_once ();
  let rec split () =
    match String.index_opt c.rbuf '\n' with
    | None -> ()
    | Some i ->
        let line = String.sub c.rbuf 0 i in
        c.rbuf <- String.sub c.rbuf (i + 1) (String.length c.rbuf - i - 1);
        (match Queue.take_opt c.fifo with
        | Some req -> absorb_response tally states now req line
        | None -> failwith "loadgen: response without a request in flight");
        split ()
  in
  split ()

let percentile_ms lats q =
  match lats with
  | [] -> 0.
  | l -> 1000. *. Stats.percentile (Array.of_list l) q

let run (cfg : config) : outcome =
  if cfg.rate <= 0. then invalid_arg "Loadgen.run: rate must be > 0";
  if cfg.tenants < 1 || cfg.sessions < 1 || cfg.connections < 1 then
    invalid_arg "Loadgen.run: tenants/sessions/connections must be >= 1";
  let rng = Rng.create cfg.seed in
  let states =
    Array.init cfg.tenants (fun _ -> Array.make cfg.sessions Unloaded)
  in
  let conns =
    Array.init cfg.tenants (fun _ ->
        Array.init cfg.connections (fun _ ->
            let fd = connect cfg.path in
            Unix.set_nonblock fd;
            { fd; rbuf = ""; fifo = Queue.create () }))
  in
  let tally =
    {
      t_completed = 0;
      t_ok = 0;
      t_evicted = 0;
      t_overloaded = 0;
      t_deadline = 0;
      t_other = 0;
      latencies = [];
    }
  in
  let t0 = Clock.now () in
  let sent = ref 0 in
  (* Next scheduled arrival, as an offset from t0. Exponential
     inter-arrival times make the process Poisson. *)
  let next_arrival = ref 0. in
  let advance_arrival () =
    next_arrival :=
      !next_arrival +. (-.log (1. -. Rng.float rng 1.0) /. cfg.rate)
  in
  let all_fds =
    Array.to_list conns |> Array.concat |> Array.map (fun c -> c.fd)
    |> Array.to_list
  in
  let conn_of_fd fd =
    let found = ref None in
    Array.iter
      (Array.iter (fun c -> if c.fd == fd then found := Some c))
      conns;
    match !found with Some c -> c | None -> assert false
  in
  let inflight_total () =
    let n = ref 0 in
    Array.iter (Array.iter (fun c -> n := !n + Queue.length c.fifo)) conns;
    !n
  in
  (try
     while
       (!sent < cfg.requests || inflight_total () > 0)
       && Clock.elapsed_s ~since:t0 < cfg.timeout
     do
       let now = Clock.elapsed_s ~since:t0 in
       (* Fire every arrival that is due. *)
       while !sent < cfg.requests && !next_arrival <= now do
         let tenant = !sent mod cfg.tenants in
         let session = Rng.int rng cfg.sessions in
         let line = next_request cfg rng states ~tenant ~session ~id:!sent in
         let c = conns.(tenant).(session mod cfg.connections) in
         Queue.push
           {
             if_tenant = tenant;
             if_session = session;
             if_arrival = t0 +. !next_arrival;
           }
           c.fifo;
         write_line c.fd line;
         incr sent;
         advance_arrival ()
       done;
       let wait =
         if !sent < cfg.requests then Float.max 0. (!next_arrival -. now)
         else 0.05
       in
       match Unix.select all_fds [] [] (Float.min wait 0.05) with
       | readable, _, _ ->
           let now = Clock.now () in
           List.iter (fun fd -> drain_conn tally states (conn_of_fd fd) now)
             readable
       | exception Unix.Unix_error (EINTR, _, _) -> ()
     done
   with e ->
     Array.iter (Array.iter (fun c -> try Unix.close c.fd with _ -> ())) conns;
     raise e);
  Array.iter (Array.iter (fun c -> try Unix.close c.fd with _ -> ())) conns;
  let duration = Clock.elapsed_s ~since:t0 in
  let lats = tally.latencies in
  {
    sent = !sent;
    completed = tally.t_completed;
    ok = tally.t_ok;
    evicted = tally.t_evicted;
    overloaded = tally.t_overloaded;
    deadline = tally.t_deadline;
    other_errors = tally.t_other;
    duration_s = duration;
    throughput =
      (if duration > 0. then float_of_int tally.t_completed /. duration
       else 0.);
    p50_ms = percentile_ms lats 0.5;
    p95_ms = percentile_ms lats 0.95;
    p99_ms = percentile_ms lats 0.99;
  }

(* ppdc.bench/1 rendering, schema-compatible with bench_common: the
   latency/throughput statistics land in [seconds] slots of named
   entries, which is exactly how deterministic stats are gated by
   `make bench-check` (normalized against the in-run reference). *)
let outcome_to_bench_json ?(extra = []) o =
  let entry name v =
    Json.Obj
      [ ("name", Json.Str name); ("seconds", Json.Num v); ("reps", Json.Num 1.) ]
  in
  Json.Obj
    [
      ("schema", Json.Str "ppdc.bench/1");
      ( "domains",
        Json.Num (float_of_int (Ppdc_prelude.Parallel.domain_count ())) );
      ("mode", Json.Str "full");
      ("reference", Json.Str "loadgen_throughput");
      ( "entries",
        Json.List
          ([
             entry "loadgen_throughput" o.throughput;
             entry "loadgen_p50_ms" o.p50_ms;
             entry "loadgen_p95_ms" o.p95_ms;
             entry "loadgen_p99_ms" o.p99_ms;
             entry "loadgen_ok" (float_of_int o.ok);
             entry "loadgen_evicted" (float_of_int o.evicted);
             entry "loadgen_overloaded" (float_of_int o.overloaded);
             entry "loadgen_errors" (float_of_int o.other_errors);
           ]
          @ extra) );
    ]

let pp_outcome ppf o =
  Format.fprintf ppf
    "sent %d  completed %d  ok %d  evicted %d  overloaded %d  deadline %d  \
     errors %d@\n\
     %.2f req/s over %.2fs   p50 %.2fms  p95 %.2fms  p99 %.2fms"
    o.sent o.completed o.ok o.evicted o.overloaded o.deadline o.other_errors
    o.throughput o.duration_s o.p50_ms o.p95_ms o.p99_ms
