(** Open-loop load generator for the daemon ([ppdc loadgen]).

    Drives a running Unix-socket daemon with Poisson arrivals at a
    fixed rate — {e open loop}: arrivals do not wait for responses, so
    when the server slows down the measured latency includes the
    queueing delay instead of the generator silently backing off
    (coordinated omission). [tenants] × [sessions] sessions named
    ["t<i>-s<j>"] are driven through a mixed
    [load_topology]/[place]/[migrate]/[rates_update] workload over
    [connections] pipelined sockets per tenant; a [session_evicted]
    answer flips the session back to unloaded and the generator
    reloads it on its next turn, exactly the recovery the protocol
    documents.

    Latency for each request is measured from its {e scheduled}
    arrival to the arrival of its response line. *)

type config = {
  path : string;  (** daemon socket path *)
  rate : float;  (** arrivals per second across the whole fleet *)
  requests : int;  (** total requests to send *)
  tenants : int;
  sessions : int;  (** sessions per tenant *)
  connections : int;  (** sockets per tenant *)
  seed : int;
  k : int;  (** fat-tree arity of the per-session topology *)
  l : int;  (** SFC length *)
  n : int;  (** flow count *)
  timeout : float;  (** wall-clock cap on the whole run, seconds *)
}

val default_config : config
(** 1000 requests at 200/s, 4 tenants × 4 sessions × 2 connections. *)

type outcome = {
  sent : int;
  completed : int;
  ok : int;
  evicted : int;  (** [session_evicted] answers (plus reload-races) *)
  overloaded : int;
  deadline : int;
  other_errors : int;
  duration_s : float;
  throughput : float;  (** completed responses per second *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

val run : config -> outcome
(** Run to completion: all responses received, or [timeout] elapsed.
    Raises [Unix.Unix_error] when the daemon is unreachable and
    [Failure] when a connection is closed mid-run. *)

val outcome_to_bench_json : ?extra:Ppdc_prelude.Json.t list -> outcome -> Ppdc_prelude.Json.t
(** Render as a [ppdc.bench/1] document (reference entry
    [loadgen_throughput]), the same schema `make bench-check` gates.
    [extra] appends caller-provided entry objects. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** Two-line human summary. *)
