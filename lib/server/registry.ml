(* Sharded, tenant-aware session store (DESIGN.md §4j).

   Keys are session names; the shard of a name is a stable hash masked
   to a power-of-two shard count, so the mapping never depends on the
   machine, the run, or insertion order. Each shard owns a hash table,
   an intrusive LRU recency list, a bounded tombstone set (names that
   were evicted, so lookups can answer "evicted" rather than
   "unknown"), and the accounting records of the tenants whose *tenant
   id* hashes into it (a tenant's counters live in exactly one shard —
   its home shard — regardless of where its sessions land).

   Lock discipline: every shard has its own mutex, class "shard" in
   the engine's declared order (shard > session > cache > stats). No
   operation ever holds two shard locks at once — eviction is phased:
   pick a victim reading one shard at a time, then remove it under its
   own shard lock, re-checking the recency stamp in case the victim
   was touched in between. Recency stamps come from one global atomic
   logical clock, which makes LRU choice a total order across shards:
   for any sequential workload the eviction victims are identical for
   every shard count — the invariant the model-based test in
   test/test_server_shard.ml replays. *)

module Mutexes = Ppdc_prelude.Mutexes

type reason = Budget | Tenant_sessions | Tenant_bytes

let reason_slug = function
  | Budget -> "budget"
  | Tenant_sessions -> "tenant_sessions"
  | Tenant_bytes -> "tenant_bytes"

type 'v node = {
  name : string;
  tenant : string;
  mutable value : 'v;
  mutable bytes : int;
  mutable stamp : int;  (* global logical clock at last create/touch *)
  (* Intrusive doubly-linked recency list: head = most recent. *)
  mutable prev : 'v node option;
  mutable next : 'v node option;
}

type tenant_state = {
  mutable t_sessions : int;
  mutable t_bytes : int;
  mutable t_inflight : int;
}

type 'v shard = {
  mutex : Mutex.t; [@ppdc.guards "shard"]
  table : (string, 'v node) Hashtbl.t;
  mutable head : 'v node option;
  mutable tail : 'v node option;
  (* Evicted names, bounded by [tombstone_cap]; [tomb_fifo] may hold
     stale entries (a re-created name clears its tombstone without
     scrubbing the FIFO) — overflow pops until it removed a live one. *)
  tombs : (string, unit) Hashtbl.t;
  tomb_fifo : string Queue.t;
  tenants : (string, tenant_state) Hashtbl.t;  (* home-shard tenants only *)
}

type limits = {
  session_budget : int option;
  tenant_sessions : int option;
  tenant_bytes : int option;
  tenant_inflight : int option;
}

type 'v t = {
  shards : 'v shard array;
  mask : int;
  limits : limits;
  tombstone_cap : int;
  clock : int Atomic.t;
  total : int Atomic.t;
  evicted_budget : int Atomic.t;
  evicted_tenant_sessions : int Atomic.t;
  evicted_tenant_bytes : int Atomic.t;
  fairness_rejections : int Atomic.t;
  (* Test hook: called with the name being put, inside the shard
     critical section. Lets a test prove two creates on different
     shards hold their locks concurrently (regression for the old
     global registry lock). *)
  put_hook : (string -> unit) option Atomic.t;
}

type eviction = { victim : string; victim_tenant : string; reason : reason }
type put_outcome = { replaced : bool; evicted : eviction list }
type 'v find_result = Found of 'v | Was_evicted | Unknown

(* Tenant = session-name prefix before the first '-'; a name with no
   '-' is its own tenant. Stable, documented wire-level convention
   ("acme-edge3" belongs to tenant "acme"). *)
let tenant_of name =
  match String.index_opt name '-' with
  | Some i -> String.sub name 0 i
  | None -> name

(* FNV-1a over the bytes, folded into OCaml's 63-bit int (the 64-bit
   offset basis is truncated to fit a native literal; wrap-around
   multiplication is the usual FNV behavior). Stability matters more
   than quality here: the shard of a name must never change across
   runs or machines, because the committed bench and the model tests
   partition work by shard id. *)
let hash_name s =
  let h = ref 0x1bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h land max_int

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?shards ?session_budget ?tenant_sessions ?tenant_bytes
    ?tenant_inflight ?(tombstone_cap = 1024) () =
  let requested =
    match shards with
    | Some s -> s
    | None -> Ppdc_prelude.Parallel.domain_count ()
  in
  if requested < 1 then invalid_arg "Registry.create: shards must be >= 1";
  let check label = function
    | Some v when v < 1 ->
        invalid_arg (Printf.sprintf "Registry.create: %s must be >= 1" label)
    | _ -> ()
  in
  check "session_budget" session_budget;
  check "tenant_sessions" tenant_sessions;
  check "tenant_bytes" tenant_bytes;
  check "tenant_inflight" tenant_inflight;
  if tombstone_cap < 0 then
    invalid_arg "Registry.create: tombstone_cap must be >= 0";
  let n = next_pow2 requested in
  {
    shards =
      Array.init n (fun _ ->
          {
            mutex = Mutex.create ();
            table = Hashtbl.create 16;
            head = None;
            tail = None;
            tombs = Hashtbl.create 16;
            tomb_fifo = Queue.create ();
            tenants = Hashtbl.create 8;
          });
    mask = n - 1;
    limits = { session_budget; tenant_sessions; tenant_bytes; tenant_inflight };
    tombstone_cap;
    clock = Atomic.make 0;
    total = Atomic.make 0;
    evicted_budget = Atomic.make 0;
    evicted_tenant_sessions = Atomic.make 0;
    evicted_tenant_bytes = Atomic.make 0;
    fairness_rejections = Atomic.make 0;
    put_hook = Atomic.make None;
  }

let shard_count t = Array.length t.shards
let shard_id t name = hash_name name land t.mask
let shard_of t name = t.shards.(shard_id t name)
let home_of t tenant = t.shards.(hash_name tenant land t.mask)
let next_stamp t = Atomic.fetch_and_add t.clock 1
let set_test_hook t hook = Atomic.set t.put_hook hook

(* --- recency list (all under the owning shard's lock) ------------------- *)

let unlink sh node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> sh.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> sh.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front sh node =
  node.prev <- None;
  node.next <- sh.head;
  (match sh.head with Some h -> h.prev <- Some node | None -> ());
  sh.head <- Some node;
  match sh.tail with None -> sh.tail <- Some node | Some _ -> ()

let touch sh node stamp =
  node.stamp <- stamp;
  match sh.head with
  | Some h when h == node -> ()
  | _ ->
      unlink sh node;
      push_front sh node

let add_tombstone t sh name =
  if t.tombstone_cap > 0 then begin
    if not (Hashtbl.mem sh.tombs name) then Queue.push name sh.tomb_fifo;
    Hashtbl.replace sh.tombs name ();
    while Hashtbl.length sh.tombs > t.tombstone_cap do
      match Queue.pop sh.tomb_fifo with
      | popped -> Hashtbl.remove sh.tombs popped
      | exception Queue.Empty -> Hashtbl.reset sh.tombs (* unreachable *)
    done
  end

(* --- tenant accounting (under the tenant's home-shard lock) ------------- *)

let tenant_state sh tenant =
  match Hashtbl.find_opt sh.tenants tenant with
  | Some ts -> ts
  | None ->
      let ts = { t_sessions = 0; t_bytes = 0; t_inflight = 0 } in
      Hashtbl.add sh.tenants tenant ts;
      ts

let drop_if_idle sh tenant ts =
  if ts.t_sessions = 0 && ts.t_bytes = 0 && ts.t_inflight = 0 then
    Hashtbl.remove sh.tenants tenant

(* --- eviction ------------------------------------------------------------ *)

(* Remove [name] if its stamp still equals [stamp] (i.e. it was not
   touched since the victim scan); returns the node's byte size. *)
let remove_if_unstamped t name stamp =
  let sh = shard_of t name in
  let removed =
    Mutexes.with_lock sh.mutex (fun () ->
        match Hashtbl.find_opt sh.table name with
        | Some node when node.stamp = stamp ->
            unlink sh node;
            Hashtbl.remove sh.table name;
            add_tombstone t sh name;
            Some (node.tenant, node.bytes)
        | Some _ | None -> None)
  in
  match removed with
  | None -> None
  | Some (tenant, bytes) ->
      let home = home_of t tenant in
      Mutexes.with_lock home.mutex (fun () ->
          let ts = tenant_state home tenant in
          ts.t_sessions <- ts.t_sessions - 1;
          ts.t_bytes <- ts.t_bytes - bytes;
          drop_if_idle home tenant ts);
      ignore (Atomic.fetch_and_add t.total (-1));
      Some tenant

(* Oldest node of [tenant] across all shards (one shard lock at a
   time), excluding [keep]; [None] filter scans every tenant. The
   global logical clock totally orders stamps, so "oldest" is
   well-defined across shards. *)
let victim_scan t ?tenant ~keep () =
  let best = ref None in
  Array.iter
    (fun sh ->
      Mutexes.with_lock sh.mutex (fun () ->
          (* Walk from the LRU tail; the first matching node in this
             shard is this shard's oldest candidate. *)
          let rec from_tail = function
            | None -> ()
            | Some node ->
                let matches =
                  (not (String.equal node.name keep))
                  && match tenant with
                     | Some tn -> String.equal node.tenant tn
                     | None -> true
                in
                if matches then begin
                  match !best with
                  | Some (stamp, _, _) when stamp <= node.stamp -> ()
                  | _ -> best := Some (node.stamp, node.name, node.tenant)
                end
                else from_tail node.prev
          in
          from_tail sh.tail))
    t.shards;
  !best

(* Evict one LRU entry (of [tenant] when given), never holding two
   shard locks at once. A concurrent touch can invalidate the chosen
   victim between scan and removal; retry a bounded number of times —
   sequential callers always succeed on the first pass. *)
let evict_one t ?tenant ~keep ~reason () =
  let rec go attempts =
    if attempts = 0 then None
    else
      match victim_scan t ?tenant ~keep () with
      | None -> None
      | Some (stamp, name, victim_tenant) -> (
          match remove_if_unstamped t name stamp with
          | Some _ ->
              (match reason with
              | Budget -> Atomic.incr t.evicted_budget
              | Tenant_sessions -> Atomic.incr t.evicted_tenant_sessions
              | Tenant_bytes -> Atomic.incr t.evicted_tenant_bytes);
              Some { victim = name; victim_tenant; reason }
          | None -> go (attempts - 1))
  in
  go 8

let tenant_usage t tenant =
  let home = home_of t tenant in
  Mutexes.with_lock home.mutex (fun () ->
      match Hashtbl.find_opt home.tenants tenant with
      | Some ts -> (ts.t_sessions, ts.t_bytes)
      | None -> (0, 0))

(* Enforce limits after a put: per-tenant session count, per-tenant
   bytes, then the global budget. Each loop re-reads the live counters
   so concurrent evictions are never double-counted. The entry just
   created ([keep]) is never the victim — a put must succeed even when
   it alone exceeds a byte budget (the next put will reclaim it). *)
let enforce t ~tenant ~keep =
  let evictions = ref [] in
  let note = function
    | Some e -> evictions := e :: !evictions; true
    | None -> false
  in
  (match t.limits.tenant_sessions with
  | None -> ()
  | Some cap ->
      let continue = ref true in
      while !continue && fst (tenant_usage t tenant) > cap do
        continue := note (evict_one t ~tenant ~keep ~reason:Tenant_sessions ())
      done);
  (match t.limits.tenant_bytes with
  | None -> ()
  | Some cap ->
      let continue = ref true in
      while !continue && snd (tenant_usage t tenant) > cap do
        continue := note (evict_one t ~tenant ~keep ~reason:Tenant_bytes ())
      done);
  (match t.limits.session_budget with
  | None -> ()
  | Some cap ->
      let continue = ref true in
      while !continue && Atomic.get t.total > cap do
        continue := note (evict_one t ~keep ~reason:Budget ())
      done);
  List.rev !evictions

(* --- public operations --------------------------------------------------- *)

let put t ~name ~bytes v =
  let tenant = tenant_of name in
  let sh = shard_of t name in
  let stamp = next_stamp t in
  let replaced, delta_sessions, delta_bytes =
    Mutexes.with_lock sh.mutex (fun () ->
        (match Atomic.get t.put_hook with Some f -> f name | None -> ());
        if Hashtbl.mem sh.tombs name then Hashtbl.remove sh.tombs name;
        match Hashtbl.find_opt sh.table name with
        | Some node ->
            let old_bytes = node.bytes in
            node.value <- v;
            node.bytes <- bytes;
            touch sh node stamp;
            (true, 0, bytes - old_bytes)
        | None ->
            let node =
              { name; tenant; value = v; bytes; stamp; prev = None; next = None }
            in
            Hashtbl.add sh.table name node;
            push_front sh node;
            (false, 1, bytes))
  in
  let home = home_of t tenant in
  Mutexes.with_lock home.mutex (fun () ->
      let ts = tenant_state home tenant in
      ts.t_sessions <- ts.t_sessions + delta_sessions;
      ts.t_bytes <- ts.t_bytes + delta_bytes);
  if not replaced then Atomic.incr t.total;
  { replaced; evicted = enforce t ~tenant ~keep:name }

let find t name =
  let sh = shard_of t name in
  Mutexes.with_lock sh.mutex (fun () ->
      match Hashtbl.find_opt sh.table name with
      | Some node ->
          touch sh node (next_stamp t);
          Found node.value
      | None -> if Hashtbl.mem sh.tombs name then Was_evicted else Unknown)

(* Explicit removal (administrative, and the model test's op set).
   Tombstones like an eviction — a later request for the name answers
   session_evicted, not unknown_session. *)
let evict t name =
  let sh = shard_of t name in
  let removed =
    Mutexes.with_lock sh.mutex (fun () ->
        match Hashtbl.find_opt sh.table name with
        | Some node ->
            unlink sh node;
            Hashtbl.remove sh.table name;
            add_tombstone t sh name;
            Some (node.tenant, node.bytes)
        | None -> None)
  in
  match removed with
  | None -> false
  | Some (tenant, bytes) ->
      let home = home_of t tenant in
      Mutexes.with_lock home.mutex (fun () ->
          let ts = tenant_state home tenant in
          ts.t_sessions <- ts.t_sessions - 1;
          ts.t_bytes <- ts.t_bytes - bytes;
          drop_if_idle home tenant ts);
      ignore (Atomic.fetch_and_add t.total (-1));
      true

let length t = Atomic.get t.total

let shard_sizes t =
  Array.map
    (fun sh -> Mutexes.with_lock sh.mutex (fun () -> Hashtbl.length sh.table))
    t.shards

(* Snapshot fold, one shard lock at a time. The order is unspecified
   (callers sort); the snapshot is consistent per shard, not global. *)
let fold t ~init ~f =
  Array.fold_left
    (fun acc sh ->
      let entries =
        Mutexes.with_lock sh.mutex (fun () ->
            Hashtbl.fold
              (fun name node l -> (name, node.tenant, node.value) :: l)
              sh.table [])
      in
      List.fold_left
        (fun acc (name, tenant, v) -> f acc ~name ~tenant v)
        acc entries)
    init t.shards

(* --- per-tenant in-flight admission -------------------------------------- *)

let enter_tenant t tenant =
  match t.limits.tenant_inflight with
  | None -> true
  | Some cap ->
      let home = home_of t tenant in
      let admitted =
        Mutexes.with_lock home.mutex (fun () ->
            let ts = tenant_state home tenant in
            if ts.t_inflight >= cap then false
            else begin
              ts.t_inflight <- ts.t_inflight + 1;
              true
            end)
      in
      if not admitted then Atomic.incr t.fairness_rejections;
      admitted

let exit_tenant t tenant =
  match t.limits.tenant_inflight with
  | None -> ()
  | Some _ ->
      let home = home_of t tenant in
      Mutexes.with_lock home.mutex (fun () ->
          match Hashtbl.find_opt home.tenants tenant with
          | Some ts ->
              ts.t_inflight <- max 0 (ts.t_inflight - 1);
              drop_if_idle home tenant ts
          | None -> ())

(* --- counters ------------------------------------------------------------ *)

type counters = {
  evicted_budget : int;
  evicted_tenant_sessions : int;
  evicted_tenant_bytes : int;
  fairness_rejections : int;
}

let counters (t : _ t) =
  {
    evicted_budget = Atomic.get t.evicted_budget;
    evicted_tenant_sessions = Atomic.get t.evicted_tenant_sessions;
    evicted_tenant_bytes = Atomic.get t.evicted_tenant_bytes;
    fairness_rejections = Atomic.get t.fairness_rejections;
  }

let limits t = t.limits
