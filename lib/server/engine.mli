(** Request engine of the placement/migration daemon.

    Holds the server's mutable state — named sessions (topology +
    workload + current placement) and an LRU cache of all-pairs cost
    matrices keyed by {!Ppdc_topology.Graph.digest} — and turns one
    request line into one response line. Transports (stdio, Unix
    socket) own the framing; the engine never reads or writes a file
    descriptor, which is what makes the full protocol drivable from a
    unit test.

    The cost-matrix cache is the server's point: [load_topology] and
    [fail_links] are cheap (no all-pairs recompute), and each
    [place]/[migrate] resolves its matrix through the cache, so a warm
    query against a fabric the server has seen — including a
    previously seen degraded fabric, whose digest is remembered —
    skips the Θ(|V|²·log|V|) Dijkstra sweep entirely. Handlers run the
    existing solver stack, so heavy requests fan out onto the
    {!Ppdc_prelude.Parallel} domain pool exactly as the batch CLI
    does.

    Every request is counted and timed under an [Obs] span
    ([rpc.<method>]); cache traffic shows up as
    [server.cache.hits]/[server.cache.misses]. A malformed or failing
    request produces a structured error response and leaves the engine
    serving — no handler exception escapes {!handle_line}.

    Methods: [health], [load_topology], [place] (primal_dual / dp /
    optimal / steering / greedy), [migrate] (mpareto / optimal / plan /
    mcf / none), [rates_update], [fail_links], [stats], [shutdown].
    See DESIGN.md for the full parameter/result schema. *)

type t

val create : ?cache_capacity:int -> unit -> t
(** Fresh engine with no sessions. [cache_capacity] (default 8) bounds
    the cost-matrix LRU. Raises [Invalid_argument] if it is < 1. *)

val handle_line : t -> string -> string
(** Answer one request line with one response line (no trailing
    newline). Total: parse errors, unknown methods, bad parameters and
    handler exceptions all come back as [ok: false] responses. *)

val overlong_response : string
(** The [line_too_long] error line a transport answers with when a
    request line exceeded its bound (the engine never sees the line,
    so the id is [null]). *)

val stopped : t -> bool
(** True once a [shutdown] request has been answered; transports
    drain their current connection and stop accepting. *)
