(** Request engine of the placement/migration daemon.

    Holds the server's mutable state — named sessions (topology +
    workload + current placement) and an LRU cache of all-pairs cost
    matrices keyed by {!Ppdc_topology.Graph.digest} — and turns one
    request line into one response line. Transports (stdio, Unix
    socket) own the framing; the engine never reads or writes a file
    descriptor, which is what makes the full protocol drivable from a
    unit test.

    {b Thread safety.} {!handle_line} may be called concurrently from
    any number of domains — the socket transport runs one call per
    worker. Internally (DESIGN.md §4e/§4j): sessions live in a
    {!Registry} sharded by a stable hash of the session name, one
    mutex per shard (lock class ["shard"]), so two creates or lookups
    contend only when their names share a shard; each session carries
    its own lock, so two requests against the same session serialize
    while distinct sessions run in parallel; the shared cost-matrix
    LRU has a dedicated mutex under which missing matrices are also
    built, so concurrent misses for one fabric wait for a single
    build; and a leaf stats mutex guards the per-method latency table
    (plain request counters are atomics). Lock order is always
    shard > session > cache > stats. Solver outputs are bit-identical
    to a sequential run — and independent of the shard count: handlers
    are deterministic given the session state they serialized on, and
    the {!Ppdc_prelude.Parallel} sections they use are
    schedule-independent by contract.

    {b Budgets, eviction and fairness.} [create] optionally bounds the
    registry: a global session budget, per-tenant session and byte
    budgets (tenant = session-name prefix before the first ['-']),
    enforced by LRU eviction whose victims are deterministic for a
    sequential workload at any shard count. A request naming an
    evicted session is answered with the structured [session_evicted]
    error; a tenant exceeding its in-flight request cap is answered
    [overloaded] before its handler starts. The [stats] result's
    [registry] and [fairness] sections expose the shard sizes and the
    eviction/rejection counters.

    The cost-matrix cache is the server's point: [load_topology] and
    [fail_links] are cheap (no all-pairs recompute), and each
    [place]/[migrate] resolves its matrix through the cache, so a warm
    query against a fabric the server has seen — including a
    previously seen degraded fabric, whose digest is remembered —
    skips the Θ(|V|²·log|V|) Dijkstra sweep entirely. [fail_links]
    additionally derives the degraded fabric's matrix {e incrementally}
    from the cached parent matrix
    ({!Ppdc_topology.Cost_matrix.repair_to}: copy the flat matrices,
    re-run Dijkstra only for sources whose shortest-path trees used a
    failed link) and installs it under the new digest, so the first
    [place] after a failure is already a warm hit. The [stats] result
    reports [cache.repairs] vs [cache.rebuilds] so a regression in the
    fast path is observable in production.

    Every request is counted and timed under an [Obs] span
    ([rpc.<method>]); cache traffic shows up as
    [server.cache.hits]/[server.cache.misses], and per-method latency
    is also aggregated into the [stats] result ([requests.latency_ms]).
    A malformed or failing request produces a structured error
    response and leaves the engine serving — no handler exception
    escapes {!handle_line}.

    Methods: [health], [load_topology], [place] (primal_dual / dp /
    optimal / steering / greedy), [migrate] (mpareto / optimal / plan /
    mcf / none), [rates_update], [fail_links], [simulate_events]
    (replay a discrete-event day under a trigger policy, on copies —
    the session state is untouched), [stats], [shutdown]. See
    DESIGN.md for the full parameter/result schema. *)

type t

val create :
  ?cache_capacity:int ->
  ?shards:int ->
  ?session_budget:int ->
  ?tenant_sessions:int ->
  ?tenant_bytes:int ->
  ?tenant_inflight:int ->
  unit ->
  t
(** Fresh engine with no sessions. [cache_capacity] (default 8) bounds
    the cost-matrix LRU; raises [Invalid_argument] if it is < 1.
    [shards] (default {!Ppdc_prelude.Parallel.domain_count}[ ()], i.e.
    [-j]/[PPDC_DOMAINS]) is rounded up to a power of two.
    [session_budget] bounds live sessions globally; [tenant_sessions]
    and [tenant_bytes] bound each tenant's session count and estimated
    resident bytes — all enforced by LRU eviction with structured
    [session_evicted] answers. [tenant_inflight] caps one tenant's
    concurrently executing handlers (excess answered [overloaded]).
    Omitted budgets are unlimited, which preserves the PR-4/5
    behavior exactly. *)

val handle_line : ?deadline:float -> t -> string -> string
(** Answer one request line with one response line (no trailing
    newline). Total: parse errors, unknown methods, bad parameters and
    handler exceptions all come back as [ok: false] responses.

    [deadline] is an absolute instant on the monotonic clock
    ({!Ppdc_prelude.Clock.now} timebase — immune to NTP steps, never
    mix with [Unix.gettimeofday]): if it has
    already passed when the request is about to dispatch, the handler
    is never started and the response is a [deadline_exceeded] error
    (id echoed). A request whose handler has begun always runs to
    completion — solvers are not preemptible — so the deadline is
    admission control against queueing delay, not an execution
    timeout. *)

type load = {
  workers : int;
  active_connections : int;
  queue_depth : int;
  rejected_connections : int;
}
(** Transport-side load gauges surfaced through the [stats] method. *)

val set_load_probe : t -> (unit -> load) -> unit
(** Install the transport's gauge snapshot; [stats] then includes a
    [server] section. Without a probe (e.g. [--stdio]) the section is
    omitted. *)

val overlong_response : string
(** The [line_too_long] error line a transport answers with when a
    request line exceeded its bound (the engine never sees the line,
    so the id is [null]). *)

val overloaded_response : string
(** The [overloaded] error line the socket transport writes to a
    connection it rejects because the worker pool and its pending
    queue are full (no request was read, so the id is [null]). *)

val stopped : t -> bool
(** True once a [shutdown] request has been answered; transports
    drain their current connection and stop accepting. *)

val set_registry_test_hook : t -> (string -> unit) option -> unit
(** Test-only ({!Registry.set_test_hook} on the engine's registry):
    runs inside the shard critical section of every session create, so
    a test can prove creates on distinct shards hold their shard locks
    concurrently. Never set this in production. *)
