module Json = Ppdc_prelude.Json
module Clock = Ppdc_prelude.Clock
module Mutexes = Ppdc_prelude.Mutexes
module Lru = Ppdc_prelude.Lru
module Obs = Ppdc_prelude.Obs
module Rng = Ppdc_prelude.Rng
module Graph = Ppdc_topology.Graph
module Fat_tree = Ppdc_topology.Fat_tree
module Cost_matrix = Ppdc_topology.Cost_matrix
module Flow = Ppdc_traffic.Flow
module Workload = Ppdc_traffic.Workload
module Failures = Ppdc_extensions.Failures
open Ppdc_core

(* Concurrency model (see DESIGN.md §4e/§4j). Four lock classes,
   always taken in this order and never the reverse:

     shard (Registry)  >  session.lock  >  cache_mutex  >  stats_mutex

   ["shard"] is the per-shard mutex of the sharded session registry
   ({!Registry}): a lookup or insert locks only the shard its session
   name hashes to, so distinct sessions contend only on hash
   collisions instead of one global lock. [session.lock] serializes
   the requests of one session (two clients of the same session see a
   consistent placement/rates/graph) while distinct sessions run in
   parallel on the transport's worker pool. [cache_mutex] guards the
   shared cost-matrix LRU, including building a missing matrix, so
   concurrent misses for the same digest wait for one build instead of
   computing it twice. [stats_mutex] is a leaf guarding the per-method
   latency table and the load probe; the plain request counters are
   atomics and need no lock at all. *)
[@@@ppdc.lock_order "shard session cache stats"]

type session = {
  k : int;
  lock : Mutex.t; [@ppdc.guards "session"]
      (* serializes requests against this session *)
  mutable graph : Graph.t;
  mutable digest : string;
  mutable flows : Flow.t array;
  mutable rates : float array;
  n : int;
  mutable placement : Placement.t option;
  (* Episode log of every link failed so far, kept newest-first so each
     episode is a constant-time [List.rev_append] instead of the former
     [old @ new] — which re-copied the whole log every episode and made
     a long failure stream quadratic. Readers use [failed_links]. *)
  mutable failed_rev : (int * int) list;
  mutable failed_count : int;
}

let failed_links (s : session) = List.rev s.failed_rev

type method_stats = {
  mutable calls : int;
  mutable total_s : float;
  mutable max_s : float;
}

type load = {
  workers : int;
  active_connections : int;
  queue_depth : int;
  rejected_connections : int;
}

type t = {
  cache : (string, Cost_matrix.t) Lru.t;
  cache_mutex : Mutex.t; [@ppdc.guards "cache"]
  registry : session Registry.t;
  started : float;
  by_method : (string, method_stats) Hashtbl.t;
  stats_mutex : Mutex.t; [@ppdc.guards "stats"]
  total_requests : int Atomic.t;
  errors : int Atomic.t;
  deadline_errors : int Atomic.t;
  (* Requests answered [session_evicted]: the client-visible cost of
     the budgets, distinct from the eviction counts themselves (one
     eviction can cause any number of evicted answers). *)
  evicted_answers : int Atomic.t;
  mutable load_probe : (unit -> load) option;  (* under [stats_mutex] *)
  (* Cost-matrix provenance counters, guarded by [cache_mutex] (both
     are only touched while the cache is): [cm_rebuilds] counts cold
     all-pairs computes, [cm_repairs] counts matrices derived
     incrementally from a cached parent. A healthy dynamic fabric
     shows repairs ≫ rebuilds; the ratio regressing towards rebuilds
     means the fast path stopped firing. *)
  mutable cm_rebuilds : int;
  mutable cm_repairs : int;
  stop : bool Atomic.t;
}

let create ?(cache_capacity = 8) ?shards ?session_budget ?tenant_sessions
    ?tenant_bytes ?tenant_inflight () =
  {
    cache = Lru.create ~capacity:cache_capacity;
    cache_mutex = Mutex.create ();
    registry =
      Registry.create ?shards ?session_budget ?tenant_sessions ?tenant_bytes
        ?tenant_inflight ();
    started = Clock.now ();
    by_method = Hashtbl.create 16;
    stats_mutex = Mutex.create ();
    total_requests = Atomic.make 0;
    errors = Atomic.make 0;
    deadline_errors = Atomic.make 0;
    evicted_answers = Atomic.make 0;
    load_probe = None;
    cm_rebuilds = 0;
    cm_repairs = 0;
    stop = Atomic.make false;
  }

let set_registry_test_hook t hook = Registry.set_test_hook t.registry hook
let stopped t = Atomic.get t.stop

let set_load_probe t probe =
  Mutexes.with_lock t.stats_mutex (fun () -> t.load_probe <- Some probe)

(* Handler-side failure: mapped to an error response by [handle_line]. *)
exception Reject of Protocol.error_code * string

let reject code fmt =
  Printf.ksprintf (fun msg -> raise (Reject (code, msg))) fmt

(* --- small JSON builders ------------------------------------------------ *)

let num i = Json.Num (float_of_int i)
let fnum x = Json.Num x
let placement_json (p : Placement.t) = Json.List (Array.to_list (Array.map num p))

(* --- session helpers ---------------------------------------------------- *)

(* Look the session up in the sharded registry (which locks only the
   name's shard and refreshes its LRU recency), then run [f] holding
   only the session's own lock, so requests against distinct sessions
   proceed in parallel while two against the same session serialize.
   [load_topology] may replace the registry entry meanwhile; the
   in-flight request keeps operating on the record it resolved — the
   same outcome as finishing just before the replacement. A session
   reclaimed by a budget answers [session_evicted] (with the id
   echoed by [handle_line]) so the client knows to re-create it,
   rather than the "typo" semantics of [unknown_session]. *)
let with_session t params f =
  let name = Protocol.req_str_param params "session" in
  match Registry.find t.registry name with
  | Registry.Found s -> Mutexes.with_lock s.lock (fun () -> f s)
  | Registry.Was_evicted ->
      Atomic.incr t.evicted_answers;
      Obs.incr "rpc.session_evicted";
      reject Session_evicted
        "session %S was evicted by a session budget; load_topology again" name
  | Registry.Unknown ->
      reject Unknown_session "no session named %S; load_topology first" name
[@@ppdc.calls_under "session"]

(* Resolve the session's all-pairs matrix through the LRU: the single
   expensive step of every query, skipped whenever this fabric (by
   structural digest) has been seen before. The build runs under
   [cache_mutex], so a concurrent miss for the same fabric waits for
   the first build instead of duplicating it. *)
let resolve_cm t (s : session) =
  let hit, cm =
    Mutexes.with_lock t.cache_mutex (fun () ->
        Lru.find_or_add t.cache s.digest (fun () ->
            t.cm_rebuilds <- t.cm_rebuilds + 1;
            Obs.time "server.cost_matrix.compute" (fun () ->
                Cost_matrix.compute s.graph)))
  in
  Obs.incr (if hit then "server.cache.hits" else "server.cache.misses");
  (hit, cm)

let problem_of t s =
  let hit, cm = resolve_cm t s in
  (hit, Problem.make ~cm ~flows:s.flows ~n:s.n ())

(* --- handlers ----------------------------------------------------------- *)

let health t _params =
  Json.Obj
    [
      ("status", Str "ok");
      ("schema", Str "ppdc.rpc/1");
      ("version", Str "1.0.0");
      ("uptime_s", fnum (Clock.elapsed_s ~since:t.started));
      ("sessions", num (Registry.length t.registry));
    ]

(* Resident-size estimate charged against the owning tenant's byte
   budget: the CSR graph (two int arrays over edges plus node offsets),
   the flow records and the rates vector. Deliberately coarse — the
   budgets exist to bound a tenant's footprint, not to audit the
   allocator — but deterministic, so byte-budget eviction choreography
   is reproducible in tests. The shared cost-matrix cache is bounded
   separately and charged to nobody. *)
let session_bytes ~graph ~flows =
  64
  + (16 * Graph.num_nodes graph)
  + (32 * Graph.num_edges graph)
  + (48 * Array.length flows)

let load_topology t params =
  let name = Protocol.req_str_param params "session" in
  let k = Option.value ~default:8 (Protocol.int_param params "k") in
  let l = Option.value ~default:100 (Protocol.int_param params "l") in
  let n = Option.value ~default:5 (Protocol.int_param params "n") in
  let seed = Option.value ~default:1 (Protocol.int_param params "seed") in
  let weighted =
    Option.value ~default:false (Protocol.bool_param params "weighted")
  in
  if l < 1 then reject Invalid_params "l must be >= 1";
  if n < 1 then reject Invalid_params "n must be >= 1";
  let rng = Rng.create seed in
  let ft =
    if weighted then begin
      (* Same recipe as Runner.fat_tree_problem: link delays uniform
         with mean 1.5 and variance 0.5. *)
      let half_width = sqrt 1.5 in
      let weight_rng = Rng.split rng in
      Fat_tree.build
        ~weight:(fun _ _ ->
          Rng.uniform weight_rng ~lo:(1.5 -. half_width)
            ~hi:(1.5 +. half_width))
        k
    end
    else Fat_tree.build k
  in
  let flows = Workload.generate_on_fat_tree ~rng ~l ft in
  let graph = ft.Fat_tree.graph in
  let digest = Graph.digest graph in
  let session =
    {
      k;
      lock = Mutex.create ();
      graph;
      digest;
      flows;
      rates = Flow.base_rates flows;
      n;
      placement = None;
      failed_rev = [];
      failed_count = 0;
    }
  in
  (* The session was fully constructed above, outside every lock: the
     fat-tree build and workload draw are the expensive part of a
     create, and holding the (per-shard) registry lock across them
     would serialize creates that land on the same shard — the
     regression the concurrent-create test in test_server_shard.ml
     pins. [put] holds only the name's shard lock for the table
     insert, then enforces the budgets. *)
  let outcome =
    Registry.put t.registry ~name ~bytes:(session_bytes ~graph ~flows) session
  in
  List.iter
    (fun (e : Registry.eviction) ->
      Obs.incr "server.session.evicted";
      Obs.incr ("server.session.evicted." ^ Registry.reason_slug e.reason))
    outcome.evicted;
  let cached = Mutexes.with_lock t.cache_mutex (fun () -> Lru.mem t.cache digest) in
  Json.Obj
    [
      ("session", Str name);
      ("tenant", Str (Registry.tenant_of name));
      ("replaced", Bool outcome.replaced);
      ( "evicted",
        Json.List
          (List.map
             (fun (e : Registry.eviction) ->
               Json.Obj
                 [
                   ("session", Json.Str e.victim);
                   ("tenant", Json.Str e.victim_tenant);
                   ("reason", Json.Str (Registry.reason_slug e.reason));
                 ])
             outcome.evicted) );
      ("k", num k);
      ("hosts", num (Graph.num_hosts graph));
      ("switches", num (Graph.num_switches graph));
      ("links", num (Graph.num_edges graph));
      ("flows", num (Array.length flows));
      ("n", num n);
      ("digest", Str digest);
      ("cached_cost_matrix", Bool cached);
    ]

(* Algo. 1 lifted to a whole-chain placement: greedy traffic-weighted
   ingress/egress, primal-dual prize-collecting stroll for the middle
   n-2 switches. Approximate by construction — the point of exposing it
   over RPC is comparing it against dp/optimal on live instances. *)
let primal_dual_place problem ~rates =
  let att = Cost.attach problem ~rates in
  let sw = Problem.switches problem in
  let argmin ?(exclude = -1) score =
    let best = ref (-1) in
    let best_v = ref infinity in
    Array.iter
      (fun s ->
        if s <> exclude then begin
          let v = score s in
          if Float.compare v !best_v < 0 then begin
            best := s;
            best_v := v
          end
        end)
      sw;
    !best
  in
  let n = Problem.n problem in
  if n = 1 then
    let s = argmin (fun s -> att.a_in.(s) +. att.a_out.(s)) in
    ([| s |], Json.Obj [])
  else begin
    let p1 = argmin (fun s -> att.a_in.(s)) in
    let pn = argmin ~exclude:p1 (fun s -> att.a_out.(s)) in
    if n = 2 then ([| p1; pn |], Json.Obj [])
    else begin
      let candidates =
        Array.of_list
          (List.filter (fun s -> s <> p1 && s <> pn) (Array.to_list sw))
      in
      let o =
        Stroll_primal_dual.solve ~cm:(Problem.cm problem) ~src:p1 ~dst:pn
          ~n:(n - 2) ~candidates ()
      in
      ( Array.concat [ [| p1 |]; o.switches; [| pn |] ],
        Json.Obj
          [ ("prize", fnum o.prize); ("iterations", num o.iterations) ] )
    end
  end

let place t params =
  with_session t params @@ fun s ->
  let algo = Option.value ~default:"dp" (Protocol.str_param params "algo") in
  let budget = Protocol.int_param params "budget" in
  let pair_limit = Protocol.int_param params "pair_limit" in
  let t0 = Clock.now () in
  let hit, problem = problem_of t s in
  let rates = s.rates in
  let placement, cost, extra =
    match algo with
    | "dp" ->
        let o = Placement_dp.solve problem ~rates ?pair_limit () in
        (o.placement, o.cost, [ ("objective", fnum o.objective) ])
    | "optimal" ->
        let o = Placement_opt.solve problem ~rates ?budget () in
        ( o.placement,
          o.cost,
          [
            ("proven_optimal", Json.Bool o.proven_optimal);
            ("explored", num o.explored);
          ] )
    | "primal_dual" ->
        let placement, detail = primal_dual_place problem ~rates in
        let cost = Cost.comm_cost problem ~rates placement in
        (placement, cost, [ ("primal_dual", detail) ])
    | "steering" ->
        let o = Ppdc_baselines.Steering.place problem ~rates in
        (o.placement, o.cost, [])
    | "greedy" ->
        let o = Ppdc_baselines.Greedy_liu.place problem ~rates in
        (o.placement, o.cost, [])
    | other ->
        reject Invalid_params
          "unknown algo %S (expected primal_dual, dp, optimal, steering or \
           greedy)"
          other
  in
  s.placement <- Some placement;
  Json.Obj
    (("algo", Json.Str algo)
    :: ("placement", placement_json placement)
    :: ("cost", fnum cost)
    :: ("cache_hit", Json.Bool hit)
    :: ("elapsed_ms", fnum (1000.0 *. Clock.elapsed_s ~since:t0))
    :: extra)

let migrate t params =
  with_session t params @@ fun s ->
  let algo =
    Option.value ~default:"mpareto" (Protocol.str_param params "algo")
  in
  let mu = Option.value ~default:1e4 (Protocol.float_param params "mu") in
  let budget = Protocol.int_param params "budget" in
  let current =
    match s.placement with
    | Some p -> p
    | None ->
        reject Invalid_params
          "session has no current placement; call place first"
  in
  let t0 = Clock.now () in
  let hit, problem = problem_of t s in
  let rates = s.rates in
  let vnf_result migration ~migration_cost ~comm_cost ~total_cost extra =
    s.placement <- Some migration;
    ("placement", placement_json migration)
    :: ("moved", num (Cost.moved ~src:current ~dst:migration))
    :: ("migration_cost", fnum migration_cost)
    :: ("comm_cost", fnum comm_cost)
    :: ("total_cost", fnum total_cost)
    :: extra
  in
  let vm_result (o : Ppdc_baselines.Vm.outcome) =
    (* VM baselines move endpoints, not VNFs: persist the rehosted
       flows so later requests see the migrated workload. *)
    s.flows <- o.flows;
    [
      ("moved_vms", num o.migrations);
      ("migration_cost", fnum o.migration_cost);
      ("comm_cost", fnum o.comm_cost);
      ("total_cost", fnum o.total_cost);
    ]
  in
  let fields =
    match algo with
    | "mpareto" ->
        let o = Mpareto.migrate problem ~rates ~mu ~current () in
        vnf_result o.migration ~migration_cost:o.migration_cost
          ~comm_cost:o.comm_cost ~total_cost:o.total_cost
          [ ("frontiers", num (List.length o.points)) ]
    | "optimal" ->
        let o = Migration_opt.solve problem ~rates ~mu ~current ?budget () in
        let migration_cost =
          Cost.migration_cost problem ~mu ~src:current ~dst:o.migration
        in
        vnf_result o.migration ~migration_cost
          ~comm_cost:(Cost.comm_cost problem ~rates o.migration)
          ~total_cost:o.cost
          [
            ("proven_optimal", Json.Bool o.proven_optimal);
            ("explored", num o.explored);
          ]
    | "plan" ->
        vm_result
          (Ppdc_baselines.Plan.migrate problem ~rates ~mu_vm:mu
             ~placement:current ())
    | "mcf" ->
        vm_result
          (Ppdc_baselines.Mcf_migration.migrate problem ~rates ~mu_vm:mu
             ~placement:current ())
    | "none" ->
        let o =
          Ppdc_baselines.No_migration.evaluate problem ~rates
            ~placement:current
        in
        [
          ("moved", num 0);
          ("migration_cost", fnum 0.0);
          ("comm_cost", fnum o.comm_cost);
          ("total_cost", fnum o.total_cost);
        ]
    | other ->
        reject Invalid_params
          "unknown algo %S (expected mpareto, optimal, plan, mcf or none)"
          other
  in
  Json.Obj
    (("algo", Json.Str algo)
    :: ("cache_hit", Json.Bool hit)
    :: ("elapsed_ms", fnum (1000.0 *. Clock.elapsed_s ~since:t0))
    :: fields)

let rates_update t params =
  with_session t params @@ fun s ->
  let explicit = Protocol.float_list_param params "rates" in
  let seed = Protocol.int_param params "seed" in
  let scale = Protocol.float_param params "scale" in
  let chosen =
    List.filter_map Fun.id
      [
        Option.map (fun _ -> `Rates) explicit;
        Option.map (fun _ -> `Seed) seed;
        Option.map (fun _ -> `Scale) scale;
      ]
  in
  (match chosen with
  | [ _ ] -> ()
  | _ ->
      reject Invalid_params
        "exactly one of \"rates\", \"seed\" or \"scale\" is required");
  let rates =
    match (explicit, seed, scale) with
    | Some r, _, _ ->
        if Array.length r <> Array.length s.flows then
          reject Invalid_params "expected %d rates, got %d"
            (Array.length s.flows) (Array.length r);
        Array.iter
          (fun x ->
            if (not (Float.is_finite x)) || Float.compare x 0.0 < 0 then
              reject Invalid_params "rates must be finite and non-negative")
          r;
        r
    | None, Some seed, _ ->
        Workload.redraw_rates ~rng:(Rng.create seed) s.flows
    | None, None, Some c ->
        if (not (Float.is_finite c)) || Float.compare c 0.0 < 0 then
          reject Invalid_params "scale must be finite and non-negative";
        Array.map (fun x -> c *. x) s.rates
    | None, None, None -> assert false
  in
  s.rates <- rates;
  Json.Obj
    [
      ("flows", num (Array.length rates));
      ("total_rate", fnum (Flow.total_rate rates));
    ]

let fail_links t params =
  with_session t params @@ fun s ->
  let fraction =
    match Protocol.float_param params "fraction" with
    | Some f -> f
    | None -> reject Invalid_params "missing required parameter \"fraction\""
  in
  let seed = Option.value ~default:0 (Protocol.int_param params "seed") in
  let parent_digest = s.digest in
  let degraded, failed =
    Failures.fail_links ~rng:(Rng.create seed) ~fraction s.graph
  in
  s.graph <- degraded;
  s.digest <- Graph.digest degraded;
  s.failed_rev <- List.rev_append failed s.failed_rev;
  s.failed_count <- s.failed_count + List.length failed;
  (* Incremental repair: the degraded fabric is the parent minus the
     failed links, so when the parent's matrix is cached we derive the
     degraded matrix from it (only rows whose shortest-path trees used
     a failed link re-run) and install it under the new digest — the
     next [place] is a warm hit instead of a cold all-pairs sweep.
     [Lru.peek] reads the parent without disturbing recency or the
     hit/miss counters. *)
  let repaired, cached =
    Mutexes.with_lock t.cache_mutex (fun () ->
        if Lru.mem t.cache s.digest then (false, true)
        else
          match Lru.peek t.cache parent_digest with
          | None -> (false, false)
          | Some parent -> (
              match
                Obs.time "server.cost_matrix.repair" (fun () ->
                    Cost_matrix.repair_to parent degraded)
              with
              | Some (cm, _rows) ->
                  Lru.put t.cache s.digest cm;
                  t.cm_repairs <- t.cm_repairs + 1;
                  (true, true)
              | None -> (false, false)))
  in
  if repaired then Obs.incr "server.cache.repairs";
  Json.Obj
    [
      ("failed_count", num (List.length failed));
      ( "failed",
        Json.List
          (List.map (fun (u, v) -> Json.List [ num u; num v ]) failed) );
      ("links", num (Graph.num_edges degraded));
      ("digest", Str s.digest);
      ("cached_cost_matrix", Bool cached);
      ("repaired_cost_matrix", Bool repaired);
    ]

(* Replay a discrete-event day against the session's fabric and
   workload. Everything runs on copies — the event engine owns its
   placement/problem state and the session's graph, flows, rates and
   placement are left untouched — so a monitoring client can explore
   "what would a threshold trigger have done" without perturbing the
   live session. *)
let simulate_events t params =
  with_session t params @@ fun s ->
  let mu = Option.value ~default:1e4 (Protocol.float_param params "mu") in
  let trigger =
    let spec =
      Option.value ~default:"periodic:1" (Protocol.str_param params "trigger")
    in
    match Ppdc_sim.Event_engine.trigger_of_string spec with
    | trigger -> trigger
    | exception Invalid_argument msg -> reject Invalid_params "%s" msg
  in
  let policy =
    match
      Option.value ~default:"mpareto" (Protocol.str_param params "policy")
    with
    | "mpareto" -> Ppdc_sim.Engine.Mpareto
    | "optimal" -> Ppdc_sim.Engine.Optimal
    | "forecast" -> Ppdc_sim.Engine.Mpareto_lookahead
    | "plan" -> Ppdc_sim.Engine.Plan
    | "mcf" -> Ppdc_sim.Engine.Mcf
    | "none" -> Ppdc_sim.Engine.No_migration
    | other ->
        reject Invalid_params
          "unknown policy %S (expected mpareto, optimal, forecast, plan, mcf \
           or none)"
          other
  in
  let t0 = Clock.now () in
  let hit, problem = problem_of t s in
  let scenario = Ppdc_sim.Scenario.make ~mu problem in
  let events =
    let base = Ppdc_sim.Scenario.events_of_diurnal scenario in
    match Protocol.float_param params "probe_every" with
    | None -> base
    | Some every when Float.is_finite every && Float.compare every 0.0 > 0 ->
        Ppdc_traffic.Events.merge base
          (Ppdc_traffic.Events.probes ~every
             ~horizon:(Ppdc_traffic.Events.horizon base))
    | Some _ -> reject Invalid_params "probe_every must be finite positive"
  in
  let r =
    match
      Ppdc_sim.Event_engine.run scenario ~policy ~trigger ~events ()
    with
    | r -> r
    | exception Invalid_argument msg -> reject Invalid_params "%s" msg
  in
  Json.Obj
    [
      ("policy", Json.Str (Ppdc_sim.Engine.policy_name policy));
      ("trigger", Json.Str (Ppdc_sim.Event_engine.trigger_name trigger));
      ("mu", fnum mu);
      ("events", num (Array.length r.Ppdc_sim.Event_engine.records));
      ("reconfigurations", num r.Ppdc_sim.Event_engine.reconfigurations);
      ("moves", num r.Ppdc_sim.Event_engine.total_moves);
      ("comm_cost", fnum r.Ppdc_sim.Event_engine.total_comm);
      ("migration_cost", fnum r.Ppdc_sim.Event_engine.total_migration);
      ("total_cost", fnum r.Ppdc_sim.Event_engine.total_cost);
      ( "final_placement",
        placement_json r.Ppdc_sim.Event_engine.final_placement );
      ("cache_hit", Json.Bool hit);
      ("elapsed_ms", fnum (1000.0 *. Clock.elapsed_s ~since:t0));
    ]

let num_opt = function None -> Json.Null | Some v -> num v

let stats t _params =
  (* Snapshot the registry one shard lock at a time, then render
     session fields without taking the per-session locks: single
     mutable-field reads are atomic in OCaml, and stats is a
     monitoring view — a request racing it simply shows its
     before-or-after state. Sessions are sorted by name so the
     rendering never depends on shard count or hash order. *)
  let session_list =
    Registry.fold t.registry ~init:[] ~f:(fun acc ~name ~tenant s ->
        (name, tenant, s) :: acc)
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  in
  let by_method, probe =
    Mutexes.with_lock t.stats_mutex (fun () ->
        let by_method =
          Hashtbl.fold
            (fun m st acc -> (m, (st.calls, st.total_s, st.max_s)) :: acc)
            t.by_method []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        in
        (by_method, t.load_probe))
  in
  let totals =
    (Atomic.get t.total_requests, Atomic.get t.errors, Atomic.get t.deadline_errors)
  in
  let sessions =
    List.map
      (fun (name, tenant, (s : session)) ->
        Json.Obj
          [
            ("name", Str name);
            ("tenant", Str tenant);
            ("k", num s.k);
            ("nodes", num (Graph.num_nodes s.graph));
            ("links", num (Graph.num_edges s.graph));
            ("flows", num (Array.length s.flows));
            ("n", num s.n);
            ("placed", Bool (Option.is_some s.placement));
            ("failed_links", num s.failed_count);
            (* Episode order, oldest first — the log the operator
               replays to reconstruct the fabric's lineage. *)
            ( "failed",
              Json.List
                (List.map
                   (fun (u, v) -> Json.List [ num u; num v ])
                   (failed_links s)) );
            ("digest", Str s.digest);
          ])
      session_list
  in
  let total_requests, errors, deadline_errors = totals in
  let counts =
    List.map (fun (m, (calls, _, _)) -> (m, num calls)) by_method
  in
  let latency =
    List.map
      (fun (m, (calls, total_s, max_s)) ->
        ( m,
          Json.Obj
            [
              ("count", num calls);
              ("total_ms", fnum (1000.0 *. total_s));
              ( "mean_ms",
                fnum
                  (if calls = 0 then 0.0
                   else 1000.0 *. total_s /. float_of_int calls) );
              ("max_ms", fnum (1000.0 *. max_s));
            ] ))
      by_method
  in
  let cache =
    Mutexes.with_lock t.cache_mutex (fun () ->
        Json.Obj
          [
            ("capacity", num (Lru.capacity t.cache));
            ("entries", num (Lru.length t.cache));
            ("hits", num (Lru.hits t.cache));
            ("misses", num (Lru.misses t.cache));
            ("repairs", num t.cm_repairs);
            ("rebuilds", num t.cm_rebuilds);
          ])
  in
  let registry_section =
    let c = Registry.counters t.registry in
    let l = Registry.limits t.registry in
    Json.Obj
      [
        ("shards", num (Registry.shard_count t.registry));
        ("sessions", num (Registry.length t.registry));
        ( "shard_sessions",
          Json.List
            (Array.to_list (Array.map num (Registry.shard_sizes t.registry)))
        );
        ("session_budget", num_opt l.session_budget);
        ("tenant_sessions", num_opt l.tenant_sessions);
        ("tenant_bytes", num_opt l.tenant_bytes);
        ( "evictions",
          Json.Obj
            [
              ( "total",
                num
                  (c.evicted_budget + c.evicted_tenant_sessions
                 + c.evicted_tenant_bytes) );
              ("budget", num c.evicted_budget);
              ("tenant_sessions", num c.evicted_tenant_sessions);
              ("tenant_bytes", num c.evicted_tenant_bytes);
            ] );
        ("evicted_answers", num (Atomic.get t.evicted_answers));
      ]
  in
  let fairness_section =
    let c = Registry.counters t.registry in
    let l = Registry.limits t.registry in
    Json.Obj
      [
        ("tenant_inflight", num_opt l.tenant_inflight);
        ("rejections", num c.fairness_rejections);
      ]
  in
  let server =
    match probe with
    | None -> []
    | Some probe ->
        let l = probe () in
        [
          ( "server",
            Json.Obj
              [
                ("workers", num l.workers);
                ("connections", Json.Obj [ ("active", num l.active_connections) ]);
                ("queue", Json.Obj [ ("depth", num l.queue_depth) ]);
                ("rejected", num l.rejected_connections);
              ] );
        ]
  in
  Json.Obj
    ([
       ("schema", Json.Str "ppdc.rpc/1");
       ("uptime_s", fnum (Clock.elapsed_s ~since:t.started));
       ( "requests",
         Json.Obj
           [
             ("total", num total_requests);
             ("errors", num errors);
             ("deadline_exceeded", num deadline_errors);
             ("by_method", Json.Obj counts);
             ("latency_ms", Json.Obj latency);
           ] );
       ("cache", cache);
       ("registry", registry_section);
       ("fairness", fairness_section);
     ]
    @ server
    @ [ ("sessions", Json.List sessions) ])

let shutdown t _params =
  Atomic.set t.stop true;
  Json.Obj [ ("stopping", Bool true) ]

(* --- dispatch ----------------------------------------------------------- *)

let dispatch t (req : Protocol.request) =
  let handler =
    match req.meth with
    | "health" -> health
    | "load_topology" -> load_topology
    | "place" -> place
    | "migrate" -> migrate
    | "rates_update" -> rates_update
    | "fail_links" -> fail_links
    | "simulate_events" -> simulate_events
    | "stats" -> stats
    | "shutdown" -> shutdown
    | other -> reject Unknown_method "unknown method %S" other
  in
  Obs.time ("rpc." ^ req.meth) (fun () -> handler t req.params)

let note_error t =
  Atomic.incr t.errors;
  Obs.incr "rpc.errors"

let record_latency t meth elapsed =
  Mutexes.with_lock t.stats_mutex (fun () ->
      let st =
        match Hashtbl.find_opt t.by_method meth with
        | Some st -> st
        | None ->
            let st = { calls = 0; total_s = 0.0; max_s = 0.0 } in
            Hashtbl.add t.by_method meth st;
            st
      in
      st.calls <- st.calls + 1;
      st.total_s <- st.total_s +. elapsed;
      if Float.compare elapsed st.max_s > 0 then st.max_s <- elapsed)

(* Tenant of a tenant-scoped request (one that names a session). Total:
   an ill-typed "session" field is left for the handler's own parameter
   checking — admission must never turn a type error into overloaded. *)
let request_tenant (req : Protocol.request) =
  match Json.member "session" req.params with
  | Some (Json.Str name) -> Some (Registry.tenant_of name)
  | _ -> None

let run_handler t (req : Protocol.request) =
  let t0 = Clock.now () in
  let finish response =
    record_latency t req.meth (Clock.elapsed_s ~since:t0);
    response
  in
  match dispatch t req with
  | result -> finish (Protocol.ok_response ~id:req.id result)
  | exception Reject (code, msg) ->
      note_error t;
      finish (Protocol.error_response ~id:req.id code msg)
  | exception Protocol.Bad_params msg ->
      note_error t;
      finish (Protocol.error_response ~id:req.id Invalid_params msg)
  | exception Invalid_argument msg ->
      note_error t;
      finish (Protocol.error_response ~id:req.id Invalid_params msg)
  | exception exn ->
      note_error t;
      finish
        (Protocol.error_response ~id:req.id Internal_error
           (Printexc.to_string exn))

let handle_line ?deadline t line =
  Atomic.incr t.total_requests;
  Obs.incr "rpc.requests";
  match Protocol.request_of_line line with
  | Error (code, msg) ->
      note_error t;
      Protocol.error_response ~id:Json.Null code msg
  | Ok req -> (
      match deadline with
      | Some d when Float.compare (Clock.now ()) d > 0 ->
          (* The request spent its whole time budget queued; answer
             without starting the handler so the worker moves on. *)
          Atomic.incr t.errors;
          Atomic.incr t.deadline_errors;
          Obs.incr "rpc.errors";
          Obs.incr "rpc.deadline_exceeded";
          Protocol.error_response ~id:req.id Deadline_exceeded
            "request deadline expired before the handler could start"
      | _ -> (
          (* Per-tenant admission: a tenant already running its
             configured share of concurrent handlers is answered
             overloaded before the handler starts, so one tenant's
             burst cannot occupy every worker. Requests that name no
             session (health, stats, shutdown) are never gated. *)
          match request_tenant req with
          | Some tenant when not (Registry.enter_tenant t.registry tenant) ->
              note_error t;
              Obs.incr "server.fairness.rejected";
              Protocol.error_response ~id:req.id Overloaded
                (Printf.sprintf
                   "tenant %S is at its in-flight request cap; retry later"
                   tenant)
          | Some tenant ->
              Fun.protect
                ~finally:(fun () -> Registry.exit_tenant t.registry tenant)
                (fun () -> run_handler t req)
          | None -> run_handler t req))

let overlong_response =
  Protocol.error_response ~id:Json.Null Line_too_long
    "request line exceeds the transport's maximum length"

let overloaded_response =
  Protocol.error_response ~id:Json.Null Overloaded
    "server is overloaded (worker pool and pending queue are full); retry \
     later"
