(** Transports for the [ppdc.rpc/1] NDJSON protocol.

    Two server transports share one line loop: [--stdio] (requests on
    stdin, responses on stdout — what tests and CI drive) and a
    Unix-domain socket daemon. Both isolate failures per connection:
    an oversized line is consumed up to its newline and answered with
    a [line_too_long] error, a mid-line disconnect abandons only that
    connection, and [SIGPIPE] is ignored so a client vanishing between
    request and response never kills the daemon. *)

val default_max_line : int
(** Longest accepted request line in bytes (1 MiB). Longer lines are
    drained and answered with {!Engine.overlong_response}. *)

val serve_channel :
  ?max_line:int -> Engine.t -> in_channel -> out_channel -> unit
(** Serve one connection: read request lines, write response lines
    (flushed after each), until EOF or the engine is {!Engine.stopped}
    by a [shutdown] request. Blank lines are ignored. *)

val serve_stdio : ?max_line:int -> Engine.t -> unit
(** [serve_channel] over stdin/stdout. *)

val serve_unix : ?max_line:int -> path:string -> Engine.t -> unit
(** Listen on a Unix-domain socket at [path] (an existing socket file
    there is replaced; any other kind of file raises
    [Invalid_argument]) and serve connections sequentially until a
    [shutdown] request. Connection-level I/O errors are contained;
    the socket file is removed on return. *)

val call : path:string -> string list -> string list
(** Client side: connect to the daemon at [path], send each request
    line in order, and return the response line each received —
    lock-step, over a single connection. Raises [Unix.Unix_error] if
    the daemon is unreachable and [Failure] if it hangs up early. *)
