(** Transports for the [ppdc.rpc/1] NDJSON protocol.

    Two server transports share one line loop: [--stdio] (requests on
    stdin, responses on stdout — what tests and CI drive) and a
    Unix-domain socket daemon whose accept loop hands each connection
    to a bounded {!Ppdc_prelude.Work_queue} worker pool, so one slow
    request no longer starves every other client. Both isolate
    failures per connection: an oversized line is consumed up to its
    newline and answered with a [line_too_long] error, a mid-line
    disconnect abandons only that connection, and [SIGPIPE] is ignored
    so a client vanishing between request and response never kills the
    daemon. Overload is explicit: a connection that arrives while
    every worker is busy and the pending queue is full is answered
    with one structured [overloaded] error line and closed — never
    silently queued without bound, never silently dropped. *)

val default_max_line : int
(** Longest accepted request line in bytes (1 MiB). Longer lines are
    drained and answered with {!Engine.overlong_response}. *)

val default_max_pending : int
(** Connections allowed to wait for a worker beyond the ones being
    served (64). *)

val serve_channel :
  ?max_line:int ->
  ?request_timeout:float ->
  ?first_arrival:float ->
  Engine.t ->
  in_channel ->
  out_channel ->
  unit
(** Serve one connection: read request lines, write response lines
    (flushed after each), until EOF or the engine is {!Engine.stopped}
    by a [shutdown] request. Blank lines are ignored.

    [request_timeout] (seconds) enables per-request deadlines: a
    request that could not start within the budget of its arrival is
    answered with a [deadline_exceeded] error instead of running its
    handler (see {!Engine.handle_line}). [first_arrival] is the
    absolute time the connection was accepted — when the gap between
    it and this call (the time spent queued for a worker) already
    exceeds [request_timeout], the connection's first request is
    answered [deadline_exceeded]. *)

val serve_stdio : ?max_line:int -> Engine.t -> unit
(** [serve_channel] over stdin/stdout. *)

val serve_unix :
  ?max_line:int ->
  ?workers:int ->
  ?max_pending:int ->
  ?request_timeout:float ->
  ?on_ready:(unit -> unit) ->
  path:string ->
  Engine.t ->
  unit
(** Listen on a Unix-domain socket at [path] (an existing socket file
    there is replaced; any other kind of file raises
    [Invalid_argument]) and serve until a [shutdown] request.

    Connections are handed to a pool of [workers] domains (default
    {!Ppdc_prelude.Parallel.domain_count}, i.e. the CLI [-j] /
    [PPDC_DOMAINS] setting) over a pending queue bounded by
    [max_pending] (default {!default_max_pending}); a connection
    rejected by the full queue is answered with
    {!Engine.overloaded_response} and closed. [request_timeout] is
    passed to each connection's {!serve_channel}. [on_ready] runs once
    the socket is bound and listening, before the first accept —
    tests use it instead of polling the filesystem.

    Shutdown is graceful: once a worker answers [shutdown], the accept
    loop stops accepting (within its 50 ms poll tick), every accepted
    connection finishes its in-flight request, and the call returns.
    Connection-level I/O errors are contained; the socket file is
    removed on every exit path, including an exception out of the
    accept loop. *)

val call : ?timeout:float -> path:string -> string list -> string list
(** Client side: connect to the daemon at [path], send each request
    line in order, and return the response line each received —
    lock-step, over a single connection. [timeout] (seconds) bounds
    the wait for each response; on expiry the call raises [Failure]
    with a message containing ["timed out"], distinguishable from the
    [Failure] raised when the daemon hangs up early. Raises
    [Unix.Unix_error] if the daemon is unreachable. *)
