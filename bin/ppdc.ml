(* ppdc — command-line front end.

   Subcommands:
     topology    inspect a fat-tree PPDC (summary or Graphviz DOT)
     place       run one VNF placement algorithm on a seeded workload
     migrate     run one migration algorithm after a traffic redraw
     simulate    run a diurnal day (or replay a trace) under a policy
     trace       generate a diurnal workload trace as CSV
     ilp         export the TOP/TOM MIP in CPLEX-LP format
     experiment  regenerate one of the paper's tables/figures
     list        list available experiments
     serve       run the placement/migration RPC daemon (ppdc.rpc/1)
     rpc         send requests to a running ppdc serve daemon *)

open Cmdliner
module Table = Ppdc_prelude.Table
module Rng = Ppdc_prelude.Rng
module Obs = Ppdc_prelude.Obs
module Json = Ppdc_prelude.Json
module Graph = Ppdc_topology.Graph
module Cost_matrix = Ppdc_topology.Cost_matrix
module Flow = Ppdc_traffic.Flow
module Workload = Ppdc_traffic.Workload
module Mode = Ppdc_experiments.Mode
module Registry = Ppdc_experiments.Registry
module Runner = Ppdc_experiments.Runner
module Scenario = Ppdc_sim.Scenario
module Engine = Ppdc_sim.Engine
open Ppdc_core

(* --- shared arguments -------------------------------------------------- *)

let k_arg =
  let doc = "Fat-tree arity k (even). k=8 gives 128 hosts, k=16 gives 1024." in
  Arg.(value & opt int 8 & info [ "k" ] ~docv:"K" ~doc)

let l_arg =
  let doc = "Number of communicating VM pairs." in
  Arg.(value & opt int 100 & info [ "l"; "flows" ] ~docv:"L" ~doc)

let n_arg =
  let doc = "SFC length (number of VNFs)." in
  Arg.(value & opt int 5 & info [ "n"; "vnfs" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed (workloads are fully reproducible)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let mu_arg =
  let doc = "VNF migration coefficient mu (paper: 1e4..1e5)." in
  Arg.(value & opt float 1e4 & info [ "mu" ] ~docv:"MU" ~doc)

let weighted_arg =
  let doc = "Use uniform link delays (mean 1.5, variance 0.5) instead of hop counts." in
  Arg.(value & flag & info [ "weighted" ] ~doc)

let domains_arg =
  let doc =
    "Number of OCaml domains for the parallel sections (all-pairs \
     shortest paths, DP placement, experiment trials). Defaults to \
     $(b,PPDC_DOMAINS) or the machine's recommended domain count; 1 \
     forces the exact-sequential path. Results are identical for every \
     value."
  in
  let domain_count =
    let parse s =
      match int_of_string_opt s with
      | Some d when d >= 1 -> Ok d
      | Some _ -> Error (`Msg "expected a domain count of at least 1")
      | None -> Error (`Msg "expected an integer")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value
    & opt (some domain_count) None
    & info [ "j"; "domains" ] ~docv:"DOMAINS" ~doc)

let apply_domains = function
  | None -> ()
  | Some d -> Ppdc_prelude.Parallel.set_domains d

let metrics_arg =
  let doc =
    "Collect metrics (counters, solver span timings, per-epoch events) \
     during the run and write them as NDJSON to $(docv). Setting the \
     $(b,PPDC_METRICS) environment variable to a path does the same \
     without the flag; the flag wins when both are given. Inspect the \
     file with $(b,ppdc metrics-summary)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let with_metrics metrics f =
  let path = match metrics with Some _ -> metrics | None -> Obs.env_path () in
  match path with
  | None -> f ()
  | Some path ->
      Obs.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          Obs.export ~path;
          Printf.eprintf "metrics written to %s\n%!" path)
        f

let problem_of ~weighted ~k ~l ~n ~seed =
  Runner.fat_tree_problem ~weighted ~k ~l ~n ~seed ()

(* --- topology ----------------------------------------------------------- *)

let topology_cmd =
  let run j k dot =
    apply_domains j;
    let ft, cm = Runner.unweighted_fat_tree k in
    if dot then
      print_string (Ppdc_topology.Dot.of_graph ft.Ppdc_topology.Fat_tree.graph)
    else begin
    let g = ft.Ppdc_topology.Fat_tree.graph in
    let table =
      Table.create ~title:(Printf.sprintf "k=%d fat-tree PPDC" k)
        ~columns:[ "property"; "value" ]
    in
    Table.add_row table [ "switches"; string_of_int (Graph.num_switches g) ];
    Table.add_row table [ "hosts"; string_of_int (Graph.num_hosts g) ];
    Table.add_row table [ "links"; string_of_int (Graph.num_edges g) ];
    Table.add_row table [ "racks"; string_of_int (Ppdc_topology.Fat_tree.num_racks ft) ];
    Table.add_row table
      [ "diameter (hops)"; Printf.sprintf "%.0f" (Cost_matrix.diameter cm) ];
    Table.print table
    end
  in
  let dot_arg =
    let doc = "Emit the topology as Graphviz DOT instead of a summary." in
    Arg.(value & flag & info [ "dot" ] ~doc)
  in
  let doc = "Inspect a fat-tree PPDC topology." in
  Cmd.v (Cmd.info "topology" ~doc)
    Term.(const run $ domains_arg $ k_arg $ dot_arg)

(* --- place --------------------------------------------------------------- *)

let place_algo_arg =
  let doc = "Placement algorithm: dp (Algo 3), optimal (Algo 4), steering, greedy." in
  Arg.(
    value
    & opt (enum [ ("dp", `Dp); ("optimal", `Optimal); ("steering", `Steering); ("greedy", `Greedy) ]) `Dp
    & info [ "algo" ] ~docv:"ALGO" ~doc)

let place_cmd =
  let run j k l n seed weighted algo metrics =
    apply_domains j;
    with_metrics metrics @@ fun () ->
    let problem = problem_of ~weighted ~k ~l ~n ~seed in
    let rates = Flow.base_rates (Problem.flows problem) in
    let name, placement, cost =
      match algo with
      | `Dp ->
          let o = Placement_dp.solve problem ~rates () in
          ("DP (Algo 3)", o.placement, o.cost)
      | `Optimal ->
          let o = Placement_opt.solve problem ~rates () in
          ( (if o.proven_optimal then "Optimal (Algo 4)" else "Optimal* (budget hit)"),
            o.placement,
            o.cost )
      | `Steering ->
          let o = Ppdc_baselines.Steering.place problem ~rates in
          ("Steering [55]", o.placement, o.cost)
      | `Greedy ->
          let o = Ppdc_baselines.Greedy_liu.place problem ~rates in
          ("Greedy [34]", o.placement, o.cost)
    in
    Format.printf "%s placement: %a@.C_a = %.1f@." name Placement.pp placement
      cost
  in
  let doc = "Place an SFC with one of the TOP algorithms." in
  Cmd.v (Cmd.info "place" ~doc)
    Term.(
      const run $ domains_arg $ k_arg $ l_arg $ n_arg $ seed_arg
      $ weighted_arg $ place_algo_arg $ metrics_arg)

(* --- migrate -------------------------------------------------------------- *)

let migrate_algo_arg =
  let doc = "Migration algorithm: mpareto (Algo 5), optimal (Algo 6), plan, mcf, none." in
  Arg.(
    value
    & opt
        (enum
           [ ("mpareto", `Mpareto); ("optimal", `Optimal); ("plan", `Plan);
             ("mcf", `Mcf); ("none", `None) ])
        `Mpareto
    & info [ "algo" ] ~docv:"ALGO" ~doc)

let migrate_cmd =
  let run j k l n seed weighted mu algo metrics =
    apply_domains j;
    with_metrics metrics @@ fun () ->
    let problem = problem_of ~weighted ~k ~l ~n ~seed in
    let rates0 = Flow.base_rates (Problem.flows problem) in
    let current = (Placement_dp.solve problem ~rates:rates0 ()).placement in
    let rng = Rng.create (seed + 1000) in
    let rates = Workload.redraw_rates ~rng (Problem.flows problem) in
    let stale = Cost.comm_cost problem ~rates current in
    Format.printf "initial placement: %a@.stale C_a after rate redraw: %.1f@."
      Placement.pp current stale;
    (match algo with
    | `Mpareto ->
        let o = Mpareto.migrate problem ~rates ~mu ~current () in
        Format.printf
          "mPareto: moved %d VNFs, C_b = %.1f, C_a = %.1f, C_t = %.1f@."
          o.moved o.migration_cost o.comm_cost o.total_cost
    | `Optimal ->
        let o = Migration_opt.solve problem ~rates ~mu ~current () in
        Format.printf "Optimal%s: C_t = %.1f, %d nodes explored@."
          (if o.proven_optimal then "" else "*")
          o.cost o.explored
    | `Plan ->
        let o = Ppdc_baselines.Plan.migrate problem ~rates ~mu_vm:mu ~placement:current () in
        Format.printf "PLAN: moved %d VMs, C_b = %.1f, C_a = %.1f, C_t = %.1f@."
          o.migrations o.migration_cost o.comm_cost o.total_cost
    | `Mcf ->
        let o =
          Ppdc_baselines.Mcf_migration.migrate problem ~rates ~mu_vm:mu
            ~placement:current ()
        in
        Format.printf "MCF: moved %d VMs, C_b = %.1f, C_a = %.1f, C_t = %.1f@."
          o.migrations o.migration_cost o.comm_cost o.total_cost
    | `None ->
        let o = Ppdc_baselines.No_migration.evaluate problem ~rates ~placement:current in
        Format.printf "NoMigration: C_t = %.1f@." o.total_cost)
  in
  let doc = "Migrate after a traffic redraw with one of the TOM algorithms." in
  Cmd.v (Cmd.info "migrate" ~doc)
    Term.(
      const run $ domains_arg $ k_arg $ l_arg $ n_arg $ seed_arg
      $ weighted_arg $ mu_arg $ migrate_algo_arg $ metrics_arg)

(* --- simulate ------------------------------------------------------------- *)

let policy_arg =
  let doc =
    "Migration policy: mpareto, optimal, forecast (mPareto with a perfect \
     one-hour forecast), plan, mcf, none."
  in
  Arg.(
    value
    & opt
        (enum
           [ ("mpareto", Engine.Mpareto); ("optimal", Engine.Optimal);
             ("forecast", Engine.Mpareto_lookahead); ("plan", Engine.Plan);
             ("mcf", Engine.Mcf); ("none", Engine.No_migration) ])
        Engine.Mpareto
    & info [ "policy" ] ~docv:"POLICY" ~doc)

let trace_cmd =
  let run k l seed output =
    let ft, _ = Runner.unweighted_fat_tree k in
    let rng = Rng.create seed in
    let flows = Workload.generate_on_fat_tree ~rng ~l ft in
    let trace =
      Ppdc_traffic.Trace.of_diurnal Ppdc_traffic.Diurnal.default ~flows
    in
    (match output with
    | Some path ->
        Ppdc_traffic.Trace.save trace ~path;
        Printf.printf "wrote %d flows x %d epochs to %s\n"
          (Ppdc_traffic.Trace.num_flows trace)
          (Ppdc_traffic.Trace.num_epochs trace)
          path
    | None -> print_string (Ppdc_traffic.Trace.to_csv trace))
  in
  let output_arg =
    let doc = "Write the trace to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let doc = "Generate a diurnal workload trace (CSV) for later replay." in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ k_arg $ l_arg $ seed_arg $ output_arg)

(* The discrete-event variant of `simulate`: the same diurnal day as
   an event stream, replayed by Event_engine under a when-to-migrate
   trigger, optionally enriched with probe ticks and a failure
   episode. *)
let simulate_events ~problem ~trace_path ~seed ~mu ~policy ~trigger
    ~probe_every ~failure_at =
  let module Events = Ppdc_traffic.Events in
  let module Event_engine = Ppdc_sim.Event_engine in
  let scenario, base =
    match trace_path with
    | None ->
        let scenario = Scenario.make ~mu problem in
        (scenario, Scenario.events_of_diurnal scenario)
    | Some path ->
        let trace = Ppdc_traffic.Trace.load ~path in
        let problem =
          Problem.make ~cm:(Problem.cm problem)
            ~flows:trace.Ppdc_traffic.Trace.flows ~n:(Problem.n problem) ()
        in
        (Scenario.make ~mu problem, Events.of_trace trace)
  in
  let stream = ref base in
  (match probe_every with
  | None -> ()
  | Some every ->
      stream :=
        Events.merge !stream
          (Events.probes ~every ~horizon:(Events.horizon base)));
  (match failure_at with
  | None -> ()
  | Some at ->
      stream :=
        Events.merge !stream
          (Scenario.failure_episode
             ~rng:(Rng.create (seed + 0xfa11))
             ~at ~duration:1.5 ~fraction:0.05 scenario));
  let r = Event_engine.run scenario ~policy ~trigger ~events:!stream () in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "event-driven day: %s, trigger %s (mu=%g)"
           (Engine.policy_name policy)
           (Event_engine.trigger_name trigger)
           mu)
      ~columns:[ "time"; "event"; "comm"; "fired"; "migration"; "moves" ]
  in
  Array.iter
    (fun (e : Event_engine.event_record) ->
      Table.add_row table
        [
          Printf.sprintf "%.2f" e.time;
          e.kind;
          Printf.sprintf "%.0f" e.comm_charge;
          (if e.fired then "*" else "");
          Printf.sprintf "%.0f" e.migration_cost;
          string_of_int e.moved;
        ])
    r.records;
  Table.print table;
  Printf.printf
    "day total: %.0f (comm %.0f + migration %.0f; %d reconfigurations, %d \
     moves)\n"
    r.total_cost r.total_comm r.total_migration r.reconfigurations
    r.total_moves

let trigger_conv =
  let parse s =
    match Ppdc_sim.Event_engine.trigger_of_string s with
    | t -> Ok t
    | exception Invalid_argument msg -> Error (`Msg msg)
  in
  Arg.conv
    ( parse,
      fun fmt t ->
        Format.pp_print_string fmt (Ppdc_sim.Event_engine.trigger_name t) )

let simulate_cmd =
  let run j k l n seed mu policy trace_path events trigger probe_every
      failure_at metrics =
    apply_domains j;
    with_metrics metrics @@ fun () ->
    let problem = problem_of ~weighted:false ~k ~l ~n ~seed in
    if events || Option.is_some trigger then
      simulate_events ~problem ~trace_path ~seed ~mu ~policy
        ~trigger:
          (Option.value ~default:(Ppdc_sim.Event_engine.Periodic 1.0) trigger)
        ~probe_every ~failure_at
    else begin
      let scenario = Scenario.make ~mu problem in
      let run =
        match trace_path with
        | None -> Engine.run_day scenario ~policy
        | Some path ->
            let trace = Ppdc_traffic.Trace.load ~path in
            let flows = trace.Ppdc_traffic.Trace.flows in
            let problem =
              Problem.make ~cm:(Problem.cm problem) ~flows
                ~n:(Problem.n problem) ()
            in
            Engine.run_trace (Scenario.make ~mu problem) ~policy ~trace
      in
      let table =
        Table.create
          ~title:
            (Printf.sprintf "simulated day: %s (k=%d, l=%d, n=%d, mu=%g)"
               (Engine.policy_name policy) k l n mu)
          ~columns:[ "hour"; "comm"; "migration"; "moves"; "total" ]
      in
      Array.iter
        (fun (h : Engine.hour_record) ->
          Table.add_row table
            [
              string_of_int h.hour;
              Printf.sprintf "%.0f" h.comm_cost;
              Printf.sprintf "%.0f" h.migration_cost;
              string_of_int h.migrations;
              Printf.sprintf "%.0f" h.total_cost;
            ])
        run.hours;
      Table.print table;
      Printf.printf "day total: %.0f (%d migrations)\n" run.total_cost
        run.total_migrations
    end
  in
  let trace_arg =
    let doc = "Replay a trace file (from $(b,ppdc trace)) instead of the built-in diurnal model; -l and --seed are then ignored for the workload." in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let events_arg =
    let doc =
      "Run the discrete-event simulator instead of the hour engine: the day \
       becomes an event stream (one rate update per hour, or per trace \
       epoch with $(b,--trace)) and reconfiguration is decided by \
       $(b,--trigger). Implied by $(b,--trigger)."
    in
    Arg.(value & flag & info [ "events" ] ~doc)
  in
  let trigger_arg =
    let doc =
      "When-to-migrate trigger for $(b,--events): $(b,periodic:SPAN), \
       $(b,threshold:RATIO), $(b,hysteresis:UP,DOWN) or $(b,on-event). \
       Default periodic:1 (which reproduces the hour engine exactly)."
    in
    Arg.(
      value
      & opt (some trigger_conv) None
      & info [ "trigger" ] ~docv:"TRIGGER" ~doc)
  in
  let probe_every_arg =
    let doc =
      "With $(b,--events): add probe ticks every $(docv) hours so triggers \
       can fire between state changes."
    in
    Arg.(
      value & opt (some float) None & info [ "probe-every" ] ~docv:"SPAN" ~doc)
  in
  let failure_at_arg =
    let doc =
      "With $(b,--events): fail a random 5% of switch-switch links at \
       $(docv) hours and repair them 1.5 hours later."
    in
    Arg.(
      value & opt (some float) None & info [ "failure-at" ] ~docv:"T" ~doc)
  in
  let doc = "Simulate a 12-hour diurnal day under a migration policy." in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const run $ domains_arg $ k_arg $ l_arg $ n_arg $ seed_arg $ mu_arg
      $ policy_arg $ trace_arg $ events_arg $ trigger_arg $ probe_every_arg
      $ failure_at_arg $ metrics_arg)

(* --- ilp ------------------------------------------------------------------ *)

let ilp_cmd =
  let run k l n seed mu tom output =
    let problem = problem_of ~weighted:false ~k ~l ~n ~seed in
    let rates = Flow.base_rates (Problem.flows problem) in
    let lp =
      if tom then begin
        let current = (Placement_dp.solve problem ~rates ()).placement in
        let rng = Rng.create (seed + 1000) in
        let rates' = Workload.redraw_rates ~rng (Problem.flows problem) in
        Ilp.tom_lp problem ~rates:rates' ~mu ~current
      end
      else Ilp.top_lp problem ~rates
    in
    match output with
    | Some path ->
        let oc = open_out path in
        output_string oc lp;
        close_out oc;
        Printf.printf "wrote %s (%d variables, %d constraints)\n" path
          (Ilp.variable_count problem)
          (Ilp.constraint_count problem)
    | None -> print_string lp
  in
  let tom_arg =
    let doc =
      "Export the TOM instance (after a traffic redraw, migrating from the \
       DP placement) instead of TOP."
    in
    Arg.(value & flag & info [ "tom" ] ~doc)
  in
  let output_arg =
    let doc = "Write the LP document to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let doc =
    "Export the instance as a CPLEX-LP MIP for an external solver."
  in
  Cmd.v (Cmd.info "ilp" ~doc)
    Term.(
      const run $ k_arg $ l_arg $ n_arg $ seed_arg $ mu_arg $ tom_arg
      $ output_arg)

(* --- experiment / list ------------------------------------------------------ *)

let mode_arg =
  let doc = "Experiment scale: quick or full (paper-scale parameters)." in
  Arg.(
    value
    & opt (enum [ ("quick", Mode.Quick); ("full", Mode.Full) ]) (Mode.of_env ())
    & info [ "mode" ] ~docv:"MODE" ~doc)

let experiment_cmd =
  let slug title =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Char.lowercase_ascii c
        | _ -> '-')
      title
  in
  let run j mode id csv_dir metrics =
    apply_domains j;
    with_metrics metrics @@ fun () ->
    match Registry.find id with
    | Some e ->
        let tables = e.run mode in
        List.iter Table.print tables;
        (match csv_dir with
        | None -> ()
        | Some dir ->
            if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
            List.iteri
              (fun i t ->
                let path =
                  Filename.concat dir
                    (Printf.sprintf "%s-%d-%s.csv" e.id i
                       (String.sub (slug (Table.title t)) 0
                          (min 40 (String.length (Table.title t)))))
                in
                let oc = open_out path in
                output_string oc (Table.to_csv t);
                close_out oc;
                Printf.printf "wrote %s\n" path)
              tables)
    | None ->
        Printf.eprintf "unknown experiment %S; try: %s\n" id
          (String.concat ", " (Registry.ids ()));
        exit 1
  in
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
  in
  let csv_arg =
    let doc = "Also write each table as CSV into $(docv) (created if missing)." in
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)
  in
  let doc = "Regenerate one of the paper's tables or figures." in
  Cmd.v (Cmd.info "experiment" ~doc)
    Term.(const run $ domains_arg $ mode_arg $ id_arg $ csv_arg $ metrics_arg)

(* --- metrics-summary -------------------------------------------------------- *)

let metrics_summary_cmd =
  let read_records path =
    let ic = open_in path in
    let records = ref [] in
    let lineno = ref 0 in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            incr lineno;
            if String.trim line <> "" then
              match Json.parse line with
              | json -> records := json :: !records
              | exception Failure msg ->
                  Printf.eprintf "%s:%d: %s\n" path !lineno msg;
                  exit 1
          done;
          assert false
        with End_of_file -> List.rev !records)
  in
  let run path =
    if not (Sys.file_exists path) then begin
      Printf.eprintf "no such file: %s\n" path;
      exit 1
    end;
    let records = read_records path in
    let str_of = function Some (Json.Str s) -> s | _ -> "" in
    let num_of = function Some (Json.Num n) -> n | _ -> Float.nan in
    let of_type ty =
      List.filter (fun r -> str_of (Json.member "type" r) = ty) records
    in
    let seconds v = Printf.sprintf "%.6f" v in
    (match of_type "meta" with
    | m :: _ ->
        Printf.printf "schema %s, %d domain shard(s), %d record(s)\n"
          (str_of (Json.member "schema" m))
          (int_of_float (num_of (Json.member "domains" m)))
          (List.length records)
    | [] -> Printf.printf "%d record(s), no meta line\n" (List.length records));
    let counters = of_type "counter" in
    if counters <> [] then begin
      let t = Table.create ~title:"counters" ~columns:[ "name"; "value" ] in
      List.iter
        (fun c ->
          Table.add_row t
            [
              str_of (Json.member "name" c);
              Printf.sprintf "%.0f" (num_of (Json.member "value" c));
            ])
        counters;
      Table.print t
    end;
    let dist_table ~title ~unit_suffix rows =
      if rows <> [] then begin
        let t =
          Table.create ~title
            ~columns:[ "name"; "count"; "total"; "mean"; "p50"; "p95"; "max" ]
        in
        List.iter
          (fun s ->
            let field name = num_of (Json.member (name ^ unit_suffix) s) in
            Table.add_row t
              [
                str_of (Json.member "name" s);
                Printf.sprintf "%.0f" (num_of (Json.member "count" s));
                seconds (field "total");
                seconds (field "mean");
                seconds (field "p50");
                seconds (field "p95");
                seconds (field "max");
              ])
          rows;
        Table.print t
      end
    in
    dist_table ~title:"spans (seconds)" ~unit_suffix:"_s" (of_type "span");
    dist_table ~title:"histograms" ~unit_suffix:"" (of_type "hist");
    let events = of_type "event" in
    if events <> [] then begin
      let tally = Hashtbl.create 8 in
      List.iter
        (fun e ->
          let name = str_of (Json.member "name" e) in
          Hashtbl.replace tally name
            (1 + Option.value ~default:0 (Hashtbl.find_opt tally name)))
        events;
      let t = Table.create ~title:"events" ~columns:[ "name"; "count" ] in
      Hashtbl.fold (fun name count acc -> (name, count) :: acc) tally []
      |> List.sort compare
      |> List.iter (fun (name, count) ->
             Table.add_row t [ name; string_of_int count ]);
      Table.print t
    end
  in
  let path_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"NDJSON metrics file written by --metrics or PPDC_METRICS.")
  in
  let doc = "Pretty-print an NDJSON metrics file." in
  Cmd.v (Cmd.info "metrics-summary" ~doc) Term.(const run $ path_arg)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Registry.entry) -> Printf.printf "%-15s %s\n" e.id e.summary)
      Registry.all
  in
  let doc = "List the available experiments." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* --- serve / rpc ------------------------------------------------------------ *)

let max_line_arg =
  let doc =
    "Longest accepted request line in bytes; longer lines are drained \
     and answered with a line_too_long error."
  in
  Arg.(
    value
    & opt int Ppdc_server.Transport.default_max_line
    & info [ "max-line" ] ~docv:"BYTES" ~doc)

let serve_cmd =
  let run j socket stdio cache_capacity max_line max_pending request_timeout
      shards session_budget tenant_sessions tenant_bytes tenant_inflight
      metrics =
    apply_domains j;
    with_metrics metrics @@ fun () ->
    let engine =
      Ppdc_server.Engine.create ~cache_capacity ?shards ?session_budget
        ?tenant_sessions ?tenant_bytes ?tenant_inflight ()
    in
    match (stdio, socket) with
    | true, _ -> Ppdc_server.Transport.serve_stdio ~max_line engine
    | false, Some path ->
        let workers = Ppdc_prelude.Parallel.domain_count () in
        Printf.eprintf "ppdc: serving ppdc.rpc/1 on %s (%d workers)\n%!" path
          workers;
        Ppdc_server.Transport.serve_unix ~max_line ~workers ~max_pending
          ?request_timeout ~path engine;
        Printf.eprintf "ppdc: shutdown complete\n%!"
    | false, None ->
        Printf.eprintf "ppdc serve: pass --socket PATH or --stdio\n";
        exit 2
  in
  let socket_arg =
    let doc = "Listen on a Unix-domain socket at $(docv)." in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let stdio_arg =
    let doc =
      "Serve a single connection on stdin/stdout instead of a socket \
       (tests, CI, and inetd-style supervisors)."
    in
    Arg.(value & flag & info [ "stdio" ] ~doc)
  in
  let cache_arg =
    let doc =
      "Capacity of the cost-matrix LRU cache (entries are Θ(|V|²) \
       floats, ≈30 MB for k=16; keyed by structural topology digest)."
    in
    Arg.(value & opt int 8 & info [ "cache" ] ~docv:"ENTRIES" ~doc)
  in
  let max_pending_arg =
    let doc =
      "Connections allowed to wait for a worker beyond the ones being \
       served. A connection arriving past this bound is answered with \
       one structured $(i,overloaded) error and closed, instead of \
       queueing without bound."
    in
    Arg.(
      value
      & opt int Ppdc_server.Transport.default_max_pending
      & info [ "max-pending" ] ~docv:"N" ~doc)
  in
  let request_timeout_arg =
    let doc =
      "Per-request deadline in seconds (default: none). A request that \
       could not start within this budget of its arrival — it spent \
       the whole budget queued behind other work — is answered with a \
       $(i,deadline_exceeded) error instead of running; a request \
       whose handler already started always runs to completion."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "request-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let shards_arg =
    let doc =
      "Session-registry shard count (rounded up to a power of two; \
       default: the $(b,-j) domain count). More shards means less lock \
       contention between unrelated sessions."
    in
    Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N" ~doc)
  in
  let session_budget_arg =
    let doc =
      "Global cap on live sessions; exceeding it evicts the \
       least-recently-used session (the evicted client's next request \
       is answered $(i,session_evicted))."
    in
    Arg.(
      value & opt (some int) None & info [ "session-budget" ] ~docv:"N" ~doc)
  in
  let tenant_sessions_arg =
    let doc =
      "Per-tenant cap on live sessions (tenant = session-name prefix \
       before the first '-'); enforced by LRU eviction within the \
       tenant."
    in
    Arg.(
      value & opt (some int) None & info [ "tenant-sessions" ] ~docv:"N" ~doc)
  in
  let tenant_bytes_arg =
    let doc =
      "Per-tenant budget on estimated resident session bytes; enforced \
       by LRU eviction within the tenant."
    in
    Arg.(
      value & opt (some int) None & info [ "tenant-bytes" ] ~docv:"BYTES" ~doc)
  in
  let tenant_inflight_arg =
    let doc =
      "Per-tenant cap on concurrently executing requests; a tenant at \
       its cap is answered $(i,overloaded) instead of queueing further \
       work, so one noisy tenant cannot monopolize the worker pool."
    in
    Arg.(
      value & opt (some int) None & info [ "tenant-inflight" ] ~docv:"N" ~doc)
  in
  let doc =
    "Run the long-lived placement/migration daemon (ppdc.rpc/1 over \
     NDJSON). Connections are served concurrently by a pool of $(b,-j) \
     worker domains with a bounded pending queue; sessions live in a \
     sharded registry with optional global and per-tenant budgets."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ domains_arg $ socket_arg $ stdio_arg $ cache_arg
      $ max_line_arg $ max_pending_arg $ request_timeout_arg $ shards_arg
      $ session_budget_arg $ tenant_sessions_arg $ tenant_bytes_arg
      $ tenant_inflight_arg $ metrics_arg)

let rpc_cmd =
  let run socket timeout requests =
    let requests =
      match requests with
      | [] ->
          (* Read request lines from stdin. *)
          let acc = ref [] in
          (try
             while true do
               let line = input_line Stdlib.stdin in
               if String.trim line <> "" then acc := line :: !acc
             done
           with End_of_file -> ());
          List.rev !acc
      | rs -> rs
    in
    (* Fill in sequential ids for requests that lack one; anything
       unparseable is sent as-is so the server's parse_error answer
       comes back to the user. *)
    let prepare i req =
      match Json.parse req with
      | Obj fields when not (List.mem_assoc "id" fields) ->
          Json.to_string (Json.Obj (("id", Json.Num (float_of_int (i + 1))) :: fields))
      | _ | (exception Failure _) -> req
    in
    let responses =
      Ppdc_server.Transport.call ?timeout ~path:socket
        (List.mapi prepare requests)
    in
    List.iter print_endline responses
  in
  let socket_arg =
    let doc = "Socket path of the running $(b,ppdc serve) daemon." in
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let timeout_arg =
    let doc =
      "Give up on a response after $(docv) seconds (default: wait \
       forever) instead of hanging on a stalled daemon."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  let requests_arg =
    let doc =
      "Requests to send, one JSON object each (reads NDJSON from stdin \
       when omitted). An \"id\" field is added when missing."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"REQUEST" ~doc)
  in
  let doc = "Send ppdc.rpc/1 requests to a running daemon and print the responses." in
  Cmd.v (Cmd.info "rpc" ~doc)
    Term.(const run $ socket_arg $ timeout_arg $ requests_arg)

let loadgen_cmd =
  let run socket rate requests tenants sessions connections seed k l n timeout
      out =
    let cfg =
      {
        Ppdc_server.Loadgen.path = socket;
        rate;
        requests;
        tenants;
        sessions;
        connections;
        seed;
        k;
        l;
        n;
        timeout;
      }
    in
    let o = Ppdc_server.Loadgen.run cfg in
    Format.eprintf "%a@." Ppdc_server.Loadgen.pp_outcome o;
    let doc = Ppdc_server.Loadgen.outcome_to_bench_json o in
    (match out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Json.to_string doc);
        output_char oc '\n';
        close_out oc;
        Printf.eprintf "ppdc loadgen: wrote %s\n%!" path);
    print_endline (Json.to_string doc);
    (* Protocol-level failures (parse errors, handler exceptions,
       responses lost to the timeout) fail the run; structured
       evicted/overloaded/deadline answers are expected under tiny
       budgets and do not. *)
    if o.other_errors > 0 || o.completed < o.sent then exit 1
  in
  let socket_arg =
    let doc = "Socket path of the running $(b,ppdc serve) daemon." in
    Arg.(
      required & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let rate_arg =
    let doc = "Open-loop Poisson arrival rate, requests per second." in
    Arg.(value & opt float 200. & info [ "rate" ] ~docv:"R" ~doc)
  in
  let requests_arg =
    let doc = "Total requests to send." in
    Arg.(value & opt int 1000 & info [ "requests" ] ~docv:"N" ~doc)
  in
  let tenants_arg =
    let doc = "Number of tenants (sessions are named t<i>-s<j>)." in
    Arg.(value & opt int 4 & info [ "tenants" ] ~docv:"N" ~doc)
  in
  let sessions_arg =
    let doc = "Sessions per tenant." in
    Arg.(value & opt int 4 & info [ "sessions" ] ~docv:"N" ~doc)
  in
  let connections_arg =
    let doc = "Pipelined daemon connections per tenant." in
    Arg.(value & opt int 2 & info [ "connections" ] ~docv:"N" ~doc)
  in
  let timeout_arg =
    let doc = "Wall-clock cap on the whole run, in seconds." in
    Arg.(value & opt float 60. & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  let out_arg =
    let doc = "Also write the ppdc.bench/1 JSON document to $(docv)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let doc =
    "Drive a running daemon with an open-loop Poisson workload (mixed \
     load_topology/place/migrate/rates_update over N tenants × M \
     sessions) and report throughput and p50/p95/p99 latency as a \
     ppdc.bench/1 JSON document."
  in
  Cmd.v (Cmd.info "loadgen" ~doc)
    Term.(
      const run $ socket_arg $ rate_arg $ requests_arg $ tenants_arg
      $ sessions_arg $ connections_arg $ seed_arg $ k_arg $ l_arg $ n_arg
      $ timeout_arg $ out_arg)

let () =
  let doc = "traffic-optimal VNF placement and migration in dynamic PPDCs" in
  let info = Cmd.info "ppdc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            topology_cmd; place_cmd; migrate_cmd; simulate_cmd; trace_cmd;
            ilp_cmd; experiment_cmd; metrics_summary_cmd; list_cmd;
            serve_cmd; rpc_cmd; loadgen_cmd;
          ]))
