# Convenience entry points; dune is the real build system.
.PHONY: all build test lint bench bench-check bench-baseline clean

all: build lint test

build:
	dune build

test:
	dune runtest

# ppdc-lint reads the .cmt typed trees dune emits, so a build must come
# first. Non-zero exit on any finding — this is the same gate CI runs.
lint: build
	dune exec ppdc-lint -- lib bin bench

bench:
	dune exec bench/main.exe

# Gate the flat-graph hot paths against the committed trajectory.
# Entries are compared after normalizing by the in-run reference entry,
# so the check is meaningful on hardware other than the one that
# recorded the baseline. Tolerance: PPDC_BENCH_TOLERANCE (default 0.10).
bench-check: build
	dune exec bench/flatgraph.exe -- --check BENCH_flatgraph.json

# Re-record the committed baseline (run on a quiet machine).
bench-baseline: build
	dune exec bench/flatgraph.exe -- --out BENCH_flatgraph.json

clean:
	dune clean
