# Convenience entry points; dune is the real build system.
.PHONY: all build test lint lint-selftest lint-baseline bench bench-check bench-baseline clean

all: build lint test

build:
	dune build

test:
	dune runtest

# ppdc-lint reads the .cmt typed trees dune emits, so a build must come
# first. Non-zero exit on any finding — this is the same gate CI runs.
lint: build
	dune exec ppdc-lint -- lib bin bench

# Prove the R6/R7 concurrency rules still fire: seed a lock-order
# inversion and a raise-path lock leak into the engine, assert the
# findings land at the expected locations, restore, assert clean.
lint-selftest: build
	sh tools/lint/selftest.sh

# Record today's findings so a new rule can land warning-only:
# `dune exec ppdc-lint -- --baseline lint-baseline.txt lib bin bench`
# then fails only on findings *beyond* the recorded counts. Shrink the
# file to zero entries to promote the rule to a hard error.
lint-baseline: build
	dune exec ppdc-lint -- --write-baseline lint-baseline.txt lib bin bench

bench:
	dune exec bench/main.exe

# Gate the flat-graph and dynamic-repair hot paths, and the
# event-simulator cost trajectory, against the committed baselines.
# Entries are compared after normalizing by each bench's in-run
# reference entry, so the check is meaningful on hardware other than
# the one that recorded the baseline; the dynamic bench additionally
# enforces its in-run repair-vs-rebuild speedup floor, and the events
# bench (deterministic costs, not times) its mu trade-off and trigger
# dominance invariants. The serve bench gates the loadgen request and
# error counts, asserts a clean end-to-end daemon run, and — on hosts
# with ≥2 cores — a ≥2x sharded-over-single-lock registry throughput
# floor. Tolerance: PPDC_BENCH_TOLERANCE (default 0.10).
bench-check: build
	dune exec bench/flatgraph.exe -- --check BENCH_flatgraph.json
	dune exec bench/dynamic.exe -- --check BENCH_dynamic.json
	dune exec bench/events.exe -- --check BENCH_events.json
	dune exec bench/serve.exe -- --check BENCH_serve.json

# Re-record the committed baselines (run on a quiet machine).
bench-baseline: build
	dune exec bench/flatgraph.exe -- --out BENCH_flatgraph.json
	dune exec bench/dynamic.exe -- --out BENCH_dynamic.json
	dune exec bench/events.exe -- --out BENCH_events.json
	dune exec bench/serve.exe -- --out BENCH_serve.json

clean:
	dune clean
