# Convenience entry points; dune is the real build system.
.PHONY: all build test lint bench clean

all: build lint test

build:
	dune build

test:
	dune runtest

# ppdc-lint reads the .cmt typed trees dune emits, so a build must come
# first. Non-zero exit on any finding — this is the same gate CI runs.
lint: build
	dune exec ppdc-lint -- lib bin bench

bench:
	dune exec bench/main.exe

clean:
	dune clean
