(* Replication or migration? (the paper's future-work question)

   Two ways to survive a moving traffic hotspot: keep one copy of each
   VNF and migrate it (mPareto, hourly), or deploy a few extra replicas
   up front and let every flow pick its nearest copy (static). This
   example runs both through the 12-hour diurnal day and prints the
   crossover.

   Run with: dune exec examples/replication_vs_migration.exe *)

module Table = Ppdc_prelude.Table
module Rng = Ppdc_prelude.Rng
module Fat_tree = Ppdc_topology.Fat_tree
module Cost_matrix = Ppdc_topology.Cost_matrix
module Workload = Ppdc_traffic.Workload
module Diurnal = Ppdc_traffic.Diurnal
module Scenario = Ppdc_sim.Scenario
module Engine = Ppdc_sim.Engine
open Ppdc_core
open Ppdc_extensions

let () =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let flows = Workload.generate_on_fat_tree ~rng:(Rng.create 21) ~l:40 ft in
  let problem = Problem.make ~cm ~flows ~n:4 () in
  let m = Diurnal.default in
  (* Static replicated deployment, sized at hour-1 traffic. *)
  let replicated_day budget =
    let r1 = Diurnal.rates_at m ~flows ~hour:1 in
    let out = Replication.place problem ~rates:r1 ~budget in
    let total = ref 0.0 in
    for hour = 1 to m.hours do
      let rates = Diurnal.rates_at m ~flows ~hour in
      total := !total +. Replication.comm_cost problem ~rates out.deployment
    done;
    (!total, Replication.total_replicas out.deployment)
  in
  (* Migrating single-copy chain. *)
  let migration_day =
    Engine.run_day
      (Scenario.make ~mu:3e3 ~initial:Scenario.Hour1 problem)
      ~policy:Engine.Mpareto
  in
  let table =
    Table.create
      ~title:"replication vs migration over one diurnal day (k=4, l=40, n=4)"
      ~columns:[ "strategy"; "replicas"; "VNF moves"; "day cost" ]
  in
  List.iter
    (fun budget ->
      let cost, copies = replicated_day budget in
      Table.add_row table
        [
          Printf.sprintf "static, +%d replica budget" budget;
          string_of_int copies;
          "0";
          Printf.sprintf "%.0f" cost;
        ])
    [ 0; 2; 4 ];
  Table.add_row table
    [
      "mPareto migration (mu=3e3)";
      "4";
      string_of_int migration_day.total_migrations;
      Printf.sprintf "%.0f" migration_day.total_cost;
    ];
  Table.print table
