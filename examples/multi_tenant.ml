(* Multi-tenant PPDC: three tenants, three different SFCs.

   A security-sensitive tenant runs a 5-VNF access chain, a CDN tenant a
   3-VNF application chain, and a video tenant a 4-VNF mixed chain. The
   chains share one fat-tree but may not share switches; placement is by
   traffic weight and each chain migrates with mPareto when rates shift.

   Run with: dune exec examples/multi_tenant.exe *)

module Table = Ppdc_prelude.Table
module Rng = Ppdc_prelude.Rng
module Fat_tree = Ppdc_topology.Fat_tree
module Cost_matrix = Ppdc_topology.Cost_matrix
module Workload = Ppdc_traffic.Workload
module Flow = Ppdc_traffic.Flow
open Ppdc_core
open Ppdc_extensions

let () =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let rng = Rng.create 33 in
  let flows = Workload.generate_on_fat_tree ~rng ~l:24 ft in
  let chains =
    [|
      Chain.make [| "firewall"; "ids"; "nat"; "vpn-gateway"; "dpi" |];
      Chain.make [| "cache-proxy"; "load-balancer"; "tls-terminator" |];
      Chain.make [| "ddos-scrubber"; "video-transcoder"; "wan-optimizer"; "packet-monitor" |];
    |]
  in
  let spec =
    { Multi_sfc.chains; assignment = Array.init 24 (fun i -> i mod 3) }
  in
  let t = Multi_sfc.make ~cm ~flows ~spec in
  let rates = Flow.base_rates flows in
  let placed = Multi_sfc.place t ~rates in
  let table =
    Table.create ~title:"three tenants sharing a k=4 PPDC"
      ~columns:[ "tenant chain"; "flows"; "placement" ]
  in
  Array.iteri
    (fun c chain ->
      Table.add_row table
        [
          Format.asprintf "%a" Chain.pp chain;
          string_of_int (Array.length (Multi_sfc.flows_of_chain t c));
          Format.asprintf "%a" Placement.pp placed.placement.(c);
        ])
    chains;
  Table.print table;
  Printf.printf "joint communication cost: %.0f\n" placed.cost;
  (* Traffic shifts; each tenant's chain migrates without stepping on
     the others' switches. *)
  let rates' = Workload.redraw_rates ~rng flows in
  let stay = Multi_sfc.total_cost t ~rates:rates' placed.placement in
  let migrated, migration_cost, moves =
    Multi_sfc.migrate t ~rates:rates' ~mu:100.0 ~current:placed.placement
  in
  Printf.printf
    "after the shift: staying costs %.0f; migrating %d VNFs (C_b %.0f) \
     brings the total to %.0f\n"
    stay moves migration_cost migrated.cost
