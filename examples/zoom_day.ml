(* A day of cloud conferencing.

   The paper's motivating workload: Zoom-style meeting connectors produce
   wildly diverse flows whose intensity follows office hours, with east-
   coast users three hours ahead of west-coast users. This example runs
   the full 12-hour diurnal day on a k=4 PPDC and shows how mPareto VNF
   migration chases the moving hotspot while a static placement pays for
   every stale hour.

   Run with: dune exec examples/zoom_day.exe *)

module Table = Ppdc_prelude.Table
module Scenario = Ppdc_sim.Scenario
module Engine = Ppdc_sim.Engine
open Ppdc_core

let () =
  let problem =
    let module R = Ppdc_prelude.Rng in
    let ft = Ppdc_topology.Fat_tree.build 4 in
    let cm = Ppdc_topology.Cost_matrix.compute ft.graph in
    let flows =
      Ppdc_traffic.Workload.generate_on_fat_tree ~rng:(R.create 7) ~l:40 ft
    in
    Problem.make ~cm ~flows ~n:4 ()
  in
  let scenario = Scenario.make ~mu:3e3 problem in
  let mpareto = Engine.run_day scenario ~policy:Engine.Mpareto in
  let frozen = Engine.run_day scenario ~policy:Engine.No_migration in
  let table =
    Table.create ~title:"a day of cloud conferencing (k=4, l=40, n=4, mu=3e3)"
      ~columns:
        [ "hour"; "mPareto cost"; "VNF moves"; "NoMigration cost"; "saved" ]
  in
  Array.iteri
    (fun i (h : Engine.hour_record) ->
      let f = frozen.hours.(i) in
      Table.add_row table
        [
          string_of_int h.hour;
          Printf.sprintf "%.0f" h.total_cost;
          string_of_int h.migrations;
          Printf.sprintf "%.0f" f.total_cost;
          Printf.sprintf "%.1f%%"
            (100.0 *. (1.0 -. (h.total_cost /. Float.max f.total_cost 1.0)));
        ])
    mpareto.hours;
  Table.print table;
  Printf.printf
    "day totals: mPareto %.0f (%d VNF migrations) vs NoMigration %.0f — %.1f%% \
     of the day's traffic avoided\n"
    mpareto.total_cost mpareto.total_migrations frozen.total_cost
    (100.0 *. (1.0 -. (mpareto.total_cost /. frozen.total_cost)))
