(* Quickstart: build a PPDC, deploy an SFC, and let it chase the traffic
   — the library's core loop in ~40 lines.

   Run with: dune exec examples/quickstart.exe *)

module Fat_tree = Ppdc_topology.Fat_tree
module Cost_matrix = Ppdc_topology.Cost_matrix
module Workload = Ppdc_traffic.Workload
module Flow = Ppdc_traffic.Flow
module Rng = Ppdc_prelude.Rng
open Ppdc_core

let () =
  (* 1. A k=4 fat-tree PPDC: 20 switches, 16 hosts, unit link costs. *)
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  Format.printf "topology: %a@." Ppdc_topology.Graph.pp ft.graph;

  (* 2. A seeded workload: 12 VM pairs, 80%% rack-local, Facebook-like
     rates; and a 5-VNF service chain every flow must traverse. *)
  let rng = Rng.create 42 in
  let flows = Workload.generate_on_fat_tree ~rng ~l:12 ft in
  let chain = Chain.typical 5 in
  Format.printf "service chain: %a@." Chain.pp chain;
  let problem = Problem.make ~cm ~flows ~n:(Chain.length chain) () in

  (* 3. The chain is deployed before any traffic exists (the paper's
     diurnal model has zero rates at hour 0), so its initial location is
     arbitrary. *)
  let deployed = Placement.random ~rng problem in
  Format.printf "day-0 deployment: %a@." Placement.pp deployed;

  (* 4. Traffic arrives; the blind deployment is expensive. *)
  let rates = Flow.base_rates flows in
  let stale = Cost.comm_cost problem ~rates deployed in
  Format.printf "C_a once traffic arrives: %.0f@." stale;
  let ideal = Placement_dp.solve problem ~rates () in
  Format.printf "(a traffic-aware placement would cost %.0f)@." ideal.cost;

  (* 5. mPareto (Algo 5) walks the VNFs toward the traffic, trading
     migration traffic against the better placement. *)
  let migrated = Mpareto.migrate problem ~rates ~mu:1e3 ~current:deployed () in
  Format.printf
    "mPareto moved %d VNFs: C_b = %.0f, C_a = %.0f, total C_t = %.0f — %.0f%% \
     of the stale cost@."
    migrated.moved migrated.migration_cost migrated.comm_cost
    migrated.total_cost
    (100.0 *. migrated.total_cost /. stale)
