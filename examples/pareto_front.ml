(* The migration Pareto front (Fig. 6(b)).

   While VNFs walk from the current placement p towards the new optimum
   p', every parallel migration frontier trades migration traffic C_b
   against communication traffic C_a. This example prints the frontier
   points as CSV (paste into any plotting tool) and marks mPareto's pick.

   Run with: dune exec examples/pareto_front.exe *)

module Rng = Ppdc_prelude.Rng
module Fat_tree = Ppdc_topology.Fat_tree
module Cost_matrix = Ppdc_topology.Cost_matrix
module Workload = Ppdc_traffic.Workload
module Flow = Ppdc_traffic.Flow
open Ppdc_core

let () =
  let ft = Fat_tree.build 8 in
  let cm = Cost_matrix.compute ft.graph in
  let rng = Rng.create 11 in
  let flows = Workload.generate_on_fat_tree ~rng ~l:60 ft in
  let problem = Problem.make ~cm ~flows ~n:6 () in
  let rates0 = Flow.base_rates flows in
  let current = (Placement_dp.solve problem ~rates:rates0 ()).placement in
  let rates = Workload.redraw_rates ~rng flows in
  let out = Mpareto.migrate problem ~rates ~mu:200.0 ~current () in
  print_endline "frontier,migration_cost_Cb,comm_cost_Ca,total_Ct,chosen";
  List.iteri
    (fun i (p : Mpareto.point) ->
      Printf.printf "%d,%.0f,%.0f,%.0f,%s\n" i p.migration_cost p.comm_cost
        (p.migration_cost +. p.comm_cost)
        (if Placement.equal p.frontier out.migration then "yes" else ""))
    out.points;
  Printf.printf
    "# mPareto chose the frontier minimizing C_t = %.0f; staying put would \
     cost %.0f\n"
    out.total_cost
    (match out.points with p0 :: _ -> p0.comm_cost | [] -> nan)
