(* Placement algorithm shoot-out on one workload (a Fig. 9-style single
   instance).

   Places the same SFC with all four TOP algorithms — Optimal (Algo 4),
   DP (Algo 3), Greedy [34], Steering [55] — plus a random placement for
   scale, and shows each one's Eq. 1 cost and gap to optimal.

   Run with: dune exec examples/placement_compare.exe *)

module Table = Ppdc_prelude.Table
module Rng = Ppdc_prelude.Rng
module Fat_tree = Ppdc_topology.Fat_tree
module Cost_matrix = Ppdc_topology.Cost_matrix
module Workload = Ppdc_traffic.Workload
module Flow = Ppdc_traffic.Flow
open Ppdc_core
open Ppdc_baselines

let () =
  let ft = Fat_tree.build 4 in
  let cm = Cost_matrix.compute ft.graph in
  let rng = Rng.create 3 in
  let flows = Workload.generate_on_fat_tree ~rng ~l:15 ft in
  let problem = Problem.make ~cm ~flows ~n:5 () in
  let rates = Flow.base_rates flows in
  let optimal = Placement_opt.solve problem ~rates () in
  let entries =
    [
      ( (if optimal.proven_optimal then "Optimal (Algo 4)" else "Optimal*"),
        optimal.placement,
        optimal.cost );
      (let o = Placement_dp.solve problem ~rates () in
       ("DP (Algo 3)", o.placement, o.cost));
      (let o = Greedy_liu.place problem ~rates in
       ("Greedy [34]", o.placement, o.cost));
      (let o = Steering.place problem ~rates in
       ("Steering [55]", o.placement, o.cost));
      (let p = Placement.random ~rng problem in
       ("Random", p, Cost.comm_cost problem ~rates p));
    ]
  in
  let table =
    Table.create ~title:"TOP algorithms on one workload (k=4, l=15, n=5)"
      ~columns:[ "algorithm"; "placement"; "C_a"; "vs optimal" ]
  in
  List.iter
    (fun (name, placement, cost) ->
      Table.add_row table
        [
          name;
          Format.asprintf "%a" Placement.pp placement;
          Printf.sprintf "%.0f" cost;
          Printf.sprintf "+%.1f%%" (100.0 *. ((cost /. optimal.cost) -. 1.0));
        ])
    entries;
  Table.print table
